// Package emprof is an end-to-end reproduction of EMPROF (Dey, Nazari,
// Zajic, Prvulovic — "EMPROF: Memory Profiling via EM-Emanation in IoT and
// Hand-Held Devices", MICRO 2018): a memory profiler that detects
// last-level-cache-miss-induced processor stalls purely from the magnitude
// of the device's electromagnetic emanations, with zero observer effect on
// the profiled system.
//
// Because the original work requires physical probes and spectrum
// analyzers, this package pairs the profiler with a full device simulation
// stack: a cycle-level in-order superscalar core with a two-level cache
// hierarchy, MSHRs, and refresh-accurate DRAM (internal/cpu, internal/mem),
// an EM acquisition chain that synthesizes what a near-field probe would
// record (internal/em), workload generators reproducing the paper's
// microbenchmark and SPEC CPU2000 memory behaviour (internal/workloads),
// and the profiler itself (internal/core). The typical flow is:
//
//	dev := emprof.DeviceOlimex()
//	w, _ := emprof.Microbenchmark(1024, 10)
//	run, _ := emprof.Simulate(dev, w, emprof.CaptureOptions{})
//	prof, _ := emprof.Analyze(run.Capture, emprof.DefaultConfig())
//	fmt.Println(prof.Misses, prof.StallCycles)
package emprof

import (
	"context"

	"emprof/internal/core"
	"emprof/internal/device"
	"emprof/internal/em"
	"emprof/internal/faults"
	"emprof/internal/sim"
	"emprof/internal/workloads"
)

// Capture is an acquired EM-signal magnitude trace with its sample rate
// and the profiled processor's clock frequency.
type Capture = em.Capture

// ProbePosition is a probe placement relative to the best-coupling
// reference point: lateral offset in millimetres plus loop-plane
// misalignment in degrees. The zero value is the reference placement
// (bit-identical to captures that predate the spatial model); see
// CaptureOptions.Probe and em.CouplingAt for the displacement physics.
type ProbePosition = em.ProbePosition

// Config tunes the profiler; see DefaultConfig.
type Config = core.Config

// Profile is the result of analysing a capture: the detected stalls, the
// reported miss count, and stall-time accounting.
type Profile = core.Profile

// Stall is one detected LLC-miss-induced stall.
type Stall = core.Stall

// Quality aggregates the profiler's signal-health findings for a capture:
// counts of corrupt, dropped, clipped and burst samples, normalisation
// resyncs after gaps or gain steps, and dips discarded across impairments.
// Available on every Profile as Profile.Quality.
type Quality = core.Quality

// FaultSpec selects and parameterises acquisition impairments to inject
// into a capture (dropouts, ADC clipping, receiver gain steps,
// probe-coupling drift, RF bursts, NaN corruption); see InjectFaults.
type FaultSpec = faults.Spec

// FaultReport is the ground-truth record of what InjectFaults did.
type FaultReport = faults.Report

// Device is a simulated profiling target (processor + memory system + EM
// acquisition path).
type Device = device.Device

// Workload is a dynamic instruction stream to execute on a device.
type Workload = sim.Stream

// DefaultConfig returns the profiler configuration used for all the
// paper's experiments.
func DefaultConfig() Config { return core.DefaultConfig() }

// Analyze runs EMPROF over a capture.
//
// Deprecated: use NewAnalyzer and Run, which add functional options
// (observability, worker pools, streaming) and context-aware execution.
// Analyze remains supported and is exactly NewAnalyzer(cfg) + Run.
func Analyze(c *Capture, cfg Config) (*Profile, error) {
	a, err := NewAnalyzer(cfg)
	if err != nil {
		return nil, err
	}
	return a.Run(context.Background(), c)
}

// AnalyzeParallel runs EMPROF over a capture using a bounded worker pool:
// the capture is sharded into chunks overlapping by one normalisation
// window (the detector's warm-up), chunks are normalised concurrently,
// and the stall detector is replayed over them in order.
//
// The result is deterministic and bit-identical to Analyze on the same
// capture — stalls, confidences and quality counters included — for every
// worker count; workers only changes speed. workers <= 0 uses
// runtime.GOMAXPROCS(0), and workers == 1 (or a capture too short to
// shard profitably) runs the plain sequential analyzer. Use this for long
// captures on multi-core hosts; for bounded-memory live acquisition use
// the streaming path instead.
//
// Deprecated: use NewAnalyzer with WithWorkers and Run. AnalyzeParallel
// remains supported and is exactly NewAnalyzer(cfg, WithWorkers(workers))
// + Run.
func AnalyzeParallel(c *Capture, cfg Config, workers int) (*Profile, error) {
	a, err := NewAnalyzer(cfg, WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	return a.Run(context.Background(), c)
}

// DeviceAlcatel returns the Alcatel Ideal phone model (Cortex-A7,
// 1.1 GHz, 1 MB LLC).
func DeviceAlcatel() Device { return device.Alcatel() }

// DeviceSamsung returns the Samsung Galaxy Centura model (Cortex-A5,
// 800 MHz, 256 KB LLC, hardware prefetcher).
func DeviceSamsung() Device { return device.Samsung() }

// DeviceOlimex returns the Olimex A13-OLinuXino-MICRO IoT board model
// (Cortex-A8, 1.008 GHz, 256 KB LLC).
func DeviceOlimex() Device { return device.Olimex() }

// DeviceSESC returns the paper's cycle-accurate-simulator validation
// configuration (4-wide in-order core whose noise-free power trace serves
// as the side-channel signal).
func DeviceSESC() Device { return device.SESC() }

// Devices returns the three physical targets in the paper's column order.
func Devices() []Device { return device.All() }

// DeviceByName looks a device up by its paper name ("alcatel", "samsung",
// "olimex", "sesc"; case-insensitive).
func DeviceByName(name string) (Device, error) { return device.ByName(name) }

// InjectFaults applies the acquisition impairments described by spec to a
// copy of the capture — the input is never modified — and returns the
// impaired copy together with a ground-truth report of every injected
// event. Injection is deterministic under spec.Seed. Profiling the result
// exercises the analyzers' signal-quality monitor (Profile.Quality).
func InjectFaults(c *Capture, spec FaultSpec) (*Capture, *FaultReport, error) {
	return faults.Apply(c, spec)
}

// Microbenchmark builds the paper's Fig. 6 microbenchmark engineering
// exactly tm LLC misses in groups of cm, delimited by marker loops.
func Microbenchmark(tm, cm int) (Workload, error) {
	return workloads.Microbenchmark(workloads.DefaultMicroParams(tm, cm))
}

// SPECWorkload builds the statistical reproduction of one of the ten SPEC
// CPU2000 benchmarks used in the paper (ammp, bzip2, crafty, equake, gzip,
// mcf, parser, twolf, vortex, vpr). scaleM is the dynamic instruction
// budget in millions.
func SPECWorkload(name string, scaleM float64) (Workload, error) {
	p, err := workloads.SPECProgram(name, scaleM)
	if err != nil {
		return nil, err
	}
	return p.Stream(), nil
}

// BootWorkload builds the phased boot-sequence workload of the Fig. 13
// experiment. scaleM is the instruction budget in millions; seed
// differentiates boot-to-boot variation.
func BootWorkload(scaleM float64, seed uint64) Workload {
	return workloads.BootProgram(scaleM, seed).Stream()
}

// CustomWorkload builds a workload from a JSON description (see
// internal/workloads.ProgramFromJSON for the schema), so callers can
// profile their own memory-behaviour models.
func CustomWorkload(jsonSpec []byte) (Workload, error) {
	p, err := workloads.ProgramFromJSON(jsonSpec)
	if err != nil {
		return nil, err
	}
	return p.Stream(), nil
}

// LoadWorkload reads a JSON workload description from a file.
func LoadWorkload(path string) (Workload, error) {
	p, err := workloads.LoadProgram(path)
	if err != nil {
		return nil, err
	}
	return p.Stream(), nil
}

// AnalyzeStream runs EMPROF incrementally over a capture in bounded
// memory — the profiling mode for captures too long to hold at once.
// Its result matches Analyze on the same data.
//
// Deprecated: use NewAnalyzer with WithStreaming and Run (which adds
// cancellation between blocks), or Analyzer.Stream for push-based live
// acquisition. AnalyzeStream remains supported and is exactly
// NewAnalyzer(cfg, WithStreaming()) + Run.
func AnalyzeStream(c *Capture, cfg Config) (*Profile, error) {
	a, err := NewAnalyzer(cfg, WithStreaming())
	if err != nil {
		return nil, err
	}
	return a.Run(context.Background(), c)
}

// StreamAnalyzer is the push-based incremental profiler; see
// NewStreamAnalyzer.
type StreamAnalyzer = core.StreamAnalyzer

// NewStreamAnalyzer returns a streaming profiler for a signal acquired at
// sampleRate from a processor clocked at clockHz. Push samples as they
// arrive; set OnStall for live event delivery; Finalize returns the
// profile.
func NewStreamAnalyzer(cfg Config, sampleRate, clockHz float64) (*StreamAnalyzer, error) {
	return core.NewStreamAnalyzer(cfg, sampleRate, clockHz)
}

// ProfileWindow is one rolling window of a continuously-profiled
// stream: the stalls whose onset falls in the window, with the same
// aggregate counters a Profile carries, scoped to the window. Served by
// emprofd's GET /v1/sessions/{id}/profiles (see Client.Profiles).
type ProfileWindow = core.ProfileWindow

// WindowRegion is one code region's share of a window's stalls, filled
// in when the daemon runs continuous stall→code-region attribution.
type WindowRegion = core.WindowRegion

// MergeWindows reassembles a full-stream profile from a session's
// complete tumbling window sequence, bit-identical to the profile
// Finalize would have returned for the same stream. The windows must
// tile (each starts where the previous ended) and include the final
// window.
func MergeWindows(ws []ProfileWindow, sampleRate, clockHz float64) (*Profile, error) {
	return core.MergeWindows(ws, sampleRate, clockHz)
}
