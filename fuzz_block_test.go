package emprof

import (
	"encoding/binary"
	"math"
	"testing"

	"emprof/internal/em"
	"emprof/internal/faults"
	"emprof/internal/sim"
)

// fuzzReceiverConfigs are the receiver variants the synthesis fuzzer picks
// from: clean proxy, noisy, drift-only, and the full impairment chain at a
// ragged (non-divisor) decimation.
func fuzzReceiverConfigs() []em.ReceiverConfig {
	clean := em.ReceiverConfig{ClockHz: 1e9, BandwidthHz: 50e6, ProbeGain: 1, SNRdB: math.Inf(1)}
	noisy := clean
	noisy.SNRdB = 12
	noisy.Seed = 5
	drifty := clean
	drifty.DriftDepth = 0.25
	drifty.DriftPeriodS = 1e-4
	full := em.ReceiverConfig{
		ClockHz:      1e9,
		BandwidthHz:  37e6, // decim 27: blocks never align with windows
		ProbeGain:    2.7,
		SNRdB:        14,
		DriftPeriodS: 7e-5,
		DriftDepth:   0.1,
		Seed:         31,
	}
	// The full chain with the probe displaced and tilted, so the spatial
	// coupling stage (blur + leak + gain) is in the block/scalar
	// equivalence loop too.
	displaced := full
	displaced.Position = em.ProbePosition{XMM: 1.5, YMM: -0.5, OrientationDeg: 20}
	return []em.ReceiverConfig{clean, noisy, drifty, full, displaced}
}

// FuzzSynthesisBlock feeds arbitrary per-cycle power series — optionally
// routed through the acquisition fault injector first, so NaN/Inf/dropout
// patterns are exercised — through the per-cycle receiver path and through
// an arbitrary interleaving of PushCycle and PushBlock calls whose block
// boundaries are derived from the fuzzed split seed. The two captures must
// be bit-identical (NaN compares equal to NaN) for every input, every
// split, and every receiver configuration.
func FuzzSynthesisBlock(f *testing.F) {
	f.Add([]byte{}, uint64(1), uint8(0), false)
	var b [8]byte
	busy := make([]byte, 0, 4096*8)
	for i := 0; i < 4096; i++ {
		v := 1.2
		if i%700 > 600 {
			v = 0.25 // stall dip
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		busy = append(busy, b[:]...)
	}
	f.Add(busy, uint64(3), uint8(1), false)
	f.Add(busy, uint64(7), uint8(3), true)
	nasty := make([]byte, 0, 256*8)
	for i := 0; i < 256; i++ {
		v := math.NaN()
		switch i % 4 {
		case 1:
			v = math.Inf(1)
		case 2:
			v = 0
		case 3:
			v = 1e300
		}
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		nasty = append(nasty, b[:]...)
	}
	f.Add(nasty, uint64(11), uint8(2), true)

	cfgs := fuzzReceiverConfigs()
	f.Fuzz(func(t *testing.T, data []byte, split uint64, sel uint8, impaired bool) {
		n := len(data) / 8
		if n > 1<<14 {
			n = 1 << 14
		}
		series := make([]float64, n)
		for i := range series {
			series[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		if impaired && n > 0 {
			c := &em.Capture{Samples: series, SampleRate: 40e6, ClockHz: 1e9}
			out, _, err := faults.Apply(c, faults.Spec{
				DropoutRate:   0.01,
				GainStepsPerS: 2000,
				DriftDepth:    0.2,
				BurstRate:     0.01,
				NaNRate:       0.005,
				ProbeDriftMM:  0.6,
				ProbeBumpMM:   1.2,
				ProbeBumpAtS:  float64(n/2) / 40e6,
				Seed:          split ^ 0xbeef,
			})
			if err != nil {
				t.Fatalf("faults.Apply: %v", err)
			}
			series = out.Samples
		}
		cfg := cfgs[int(sel)%len(cfgs)]

		ref := em.MustNewReceiver(cfg)
		for _, p := range series {
			ref.PushCycle(p)
		}
		ref.Flush()
		want := ref.Capture().Samples

		r := em.MustNewReceiver(cfg)
		rng := sim.NewRNG(split)
		pos := 0
		for pos < len(series) {
			k := rng.Intn(1500) // 0..1499, empty blocks included
			if k > len(series)-pos {
				k = len(series) - pos
			}
			if rng.Intn(4) == 0 {
				for _, p := range series[pos : pos+k] {
					r.PushCycle(p)
				}
			} else {
				r.PushBlock(series[pos : pos+k])
			}
			pos += k
		}
		r.Flush()
		got := r.Capture().Samples

		if len(got) != len(want) {
			t.Fatalf("block path emitted %d samples, per-cycle %d (n=%d cfg=%d)",
				len(got), len(want), n, int(sel)%len(cfgs))
		}
		for i := range want {
			same := got[i] == want[i] || (math.IsNaN(got[i]) && math.IsNaN(want[i]))
			if !same {
				t.Fatalf("sample %d: block %v, per-cycle %v (n=%d cfg=%d split=%d)",
					i, got[i], want[i], n, int(sel)%len(cfgs), split)
			}
		}
	})
}
