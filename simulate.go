package emprof

import (
	"fmt"
	"math"

	"emprof/internal/cpu"
	"emprof/internal/em"
	"emprof/internal/mem"
	"emprof/internal/mem/dram"
	"emprof/internal/power"
	"emprof/internal/sim"
)

// CaptureOptions controls a simulated acquisition.
type CaptureOptions struct {
	// BandwidthHz overrides the device's default measurement bandwidth
	// when non-zero (the paper sweeps 20–160 MHz in Fig. 12).
	BandwidthHz float64
	// Seed drives the run's randomness (replacement, noise). Runs with
	// equal seeds are bit-identical.
	Seed uint64
	// NoiseFree disables probe noise and supply drift, producing the
	// clean power-proxy signal of the SESC validation experiments.
	NoiseFree bool
	// PowerProxy additionally records the SESC-style power trace (one
	// averaged sample per PowerProxyCycles cycles; default 20, the
	// paper's 50 MHz at 1 GHz).
	PowerProxy       bool
	PowerProxyCycles int
	// MemoryProbe additionally synthesizes the main-memory EM signal from
	// the DRAM activity trace (the dual-probe experiment of Fig. 10).
	MemoryProbe bool
	// BatchCycles sets how many simulated cycles of power are buffered
	// before fanning out to the receiver chain (0 = default, 1 = strictly
	// per-cycle). The recorded signals are bit-identical for every batch
	// size; larger batches only amortise the simulator→receiver boundary.
	BatchCycles int
	// Exact forces the reference per-cycle simulation loop instead of the
	// event-driven skip-ahead path. The two are bit-identical by
	// construction (see internal/cpu and the equivalence tests); Exact
	// exists as an escape hatch and as the oracle those tests compare
	// against. SimulateExact is shorthand for setting it.
	Exact bool
	// Probe places the processor probe relative to the best-coupling
	// reference point (see ProbePosition). The zero value is the reference
	// placement and leaves the capture bit-identical to a run that
	// predates the spatial model; displaced probes lose amplitude, SNR
	// and envelope bandwidth per em.CouplingAt. The memory probe (with
	// MemoryProbe) is mounted independently and always stays at its own
	// reference point.
	Probe ProbePosition
}

// Run is the outcome of one simulated acquisition.
type Run struct {
	// Capture is the processor-probe signal.
	Capture *Capture
	// MemCapture is the memory-probe signal (with MemoryProbe).
	MemCapture *Capture
	// PowerTrace is the SESC-style proxy signal (with PowerProxy) and
	// PowerRate its sample rate in Hz.
	PowerTrace []float64
	PowerRate  float64
	// Truth is the simulator ground truth: cycles, misses, stalls,
	// region spans.
	Truth *cpu.Result
	// Device echoes the simulated target.
	Device Device
}

// Simulate executes the workload on the device and records the EM capture
// plus ground truth.
func Simulate(dev Device, w Workload, opts CaptureOptions) (*Run, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	// Streams are consumed as they run; rewind resettable ones so the same
	// Workload value can be simulated repeatedly (e.g. Simulate vs
	// SimulateExact over one workload). On a fresh stream this is a no-op.
	if rs, ok := w.(interface{ Reset() }); ok {
		rs.Reset()
	}
	rng := sim.NewRNG(opts.Seed ^ 0x9e3779b97f4a7c15)
	ms, err := mem.NewSystem(dev.Mem, rng, opts.MemoryProbe)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(dev.CPU, ms)
	if err != nil {
		return nil, err
	}
	c.BatchCycles = opts.BatchCycles
	c.Exact = opts.Exact

	bw := opts.BandwidthHz
	if bw == 0 {
		bw = dev.EM.DefaultBandwidthHz
	}
	rxCfg := em.ReceiverConfig{
		ClockHz:      dev.CPU.ClockHz,
		BandwidthHz:  bw,
		ProbeGain:    dev.EM.ProbeGain,
		SNRdB:        dev.EM.SNRdB,
		DriftPeriodS: dev.EM.DriftPeriodS,
		DriftDepth:   dev.EM.DriftDepth,
		Position:     opts.Probe,
		Seed:         opts.Seed,
	}
	if opts.NoiseFree {
		rxCfg.SNRdB = inf()
		rxCfg.DriftDepth = 0
		rxCfg.ProbeGain = 1
	}
	rx, err := em.NewReceiver(rxCfg)
	if err != nil {
		return nil, err
	}
	c.AddSink(rx)

	var proxy *power.IntervalSampler
	if opts.PowerProxy {
		n := opts.PowerProxyCycles
		if n <= 0 {
			n = 20
		}
		proxy = power.NewIntervalSampler(n)
		c.AddSink(proxy)
	}

	truth, err := c.Run(w)
	if err != nil {
		return nil, err
	}
	rx.Flush()

	run := &Run{
		Capture: rx.Capture(),
		Truth:   truth,
		Device:  dev,
	}
	if proxy != nil {
		proxy.Flush()
		run.PowerTrace = proxy.Samples()
		run.PowerRate = proxy.SampleRate(dev.CPU.ClockHz)
	}
	if opts.MemoryProbe {
		memCap, err := synthesizeMemoryProbe(dev, ms, truth.Cycles, rxCfg)
		if err != nil {
			return nil, err
		}
		run.MemCapture = memCap
	}
	return run, nil
}

// SimulateExact is Simulate forced onto the reference per-cycle simulation
// loop (opts.Exact = true). It exists for regression hunting and as the
// oracle in equivalence tests; for any device, workload and options the
// returned Run is bit-identical to Simulate's.
func SimulateExact(dev Device, w Workload, opts CaptureOptions) (*Run, error) {
	opts.Exact = true
	return Simulate(dev, w, opts)
}

// synthesizeMemoryProbe builds the memory-side EM capture from the DRAM
// burst trace, using the same receiver parameters as the processor probe
// (the paper places a second probe over the SDRAM and records both
// simultaneously, Fig. 9/10).
func synthesizeMemoryProbe(dev Device, ms *mem.System, cycles uint64, rxCfg em.ReceiverConfig) (*Capture, error) {
	// Rasterise the DRAM trace at the receiver's decimation factor, which
	// em.NewReceiver derives as round(clock/bandwidth). Truncating here
	// instead (the old behaviour) made the memory probe's effective sample
	// rate disagree with the processor probe's whenever clock/bandwidth is
	// not an integer, skewing the Fig. 10 time alignment.
	d := int(math.Round(dev.CPU.ClockHz / rxCfg.BandwidthHz))
	if d < 1 {
		d = 1
	}
	series := dram.ActivitySeries(ms.DRAM().Bursts(), cycles, d)
	memCfg := rxCfg
	memCfg.Seed = rxCfg.Seed ^ 0xface
	// The memory probe couples to I/O pin toggling; model a comparable
	// but distinct gain. It is mounted on its own fixture over the SDRAM,
	// so a displaced processor probe must not displace it.
	memCfg.ProbeGain = rxCfg.ProbeGain * 0.9
	memCfg.Position = em.ProbePosition{}
	return em.SynthesizeFromSeries(series, d, memCfg)
}

// RegionWindow returns the [start, end) cycle range spanned by a workload
// region in the run's ground truth, with found=false if the region never
// executed.
func (r *Run) RegionWindow(region uint16) (start, end uint64, found bool) {
	for _, sp := range r.Truth.RegionSpans {
		if sp.Region != region {
			continue
		}
		if !found {
			start = sp.StartCycle
			found = true
		}
		end = sp.EndCycle
	}
	return start, end, found
}

// SliceCycles returns the sub-capture covering the cycle range [lo, hi):
// the sample window is widened to whole samples (floor for lo, ceiling
// for hi) so the final partial sample of a range is included rather than
// silently dropped.
func (r *Run) SliceCycles(lo, hi uint64) *Capture {
	cps := r.Capture.CyclesPerSample()
	if cps <= 0 {
		return r.Capture.Slice(0, 0)
	}
	return r.Capture.Slice(int(math.Floor(float64(lo)/cps)), int(math.Ceil(float64(hi)/cps)))
}

// SliceRegion returns the sub-capture covering one workload region.
func (r *Run) SliceRegion(region uint16) (*Capture, error) {
	lo, hi, ok := r.RegionWindow(region)
	if !ok {
		return nil, fmt.Errorf("emprof: region %d not present in run", region)
	}
	return r.SliceCycles(lo, hi), nil
}

func inf() float64 { return math.Inf(1) }
