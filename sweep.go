package emprof

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"emprof/internal/batch"
)

// SweepJob is one cell of an experiment sweep: a device, a workload
// specification, a simulation seed, and optional acquisition settings.
// Jobs are self-contained — two sweeps over equal job lists produce
// identical results regardless of worker count or scheduling.
type SweepJob struct {
	// Device is a paper device name ("alcatel", "samsung", "olimex",
	// "sesc"; see DeviceByName).
	Device string
	// Workload uses the emsim specification syntax: "micro:TM:CM",
	// "spec:NAME", "boot", or "file:PATH.json" (see ParseWorkload).
	Workload string
	// ScaleM is the spec/boot instruction budget in millions (0 = 1).
	ScaleM float64
	// Seed drives the simulation; equal seeds give bit-identical runs.
	Seed uint64
	// BandwidthHz overrides the measurement bandwidth (0 = device
	// default), and NoiseFree disables probe noise and supply drift.
	BandwidthHz float64
	NoiseFree   bool
	// Probe displaces the processor probe from the reference placement
	// for this cell (the zero value is the reference).
	Probe ProbePosition
	// Faults, when enabled, impairs the capture before analysis. The
	// spec's Seed is remixed with the job's coordinates so every cell sees
	// distinct but reproducible fault patterns.
	Faults FaultSpec
}

// SweepGrid expands a device × workload × seed × bandwidth cross product
// into sweep jobs sharing the same scale, noise and fault settings.
type SweepGrid struct {
	Devices      []string
	Workloads    []string
	Seeds        []uint64
	BandwidthsHz []float64
	// ProbeOffsetsMM adds a probe-displacement dimension (innermost): each
	// offset places the probe that many millimetres from the reference
	// along the x axis. Empty means the reference placement only.
	ProbeOffsetsMM []float64
	ScaleM         float64
	NoiseFree      bool
	// Faults applies the same impairment template to every job (each with
	// a deterministically remixed seed); the zero value disables it.
	Faults FaultSpec
}

// Jobs expands the grid in deterministic order (devices outermost, then
// workloads, seeds, bandwidths). Empty dimensions are filled with the
// obvious defaults: all three physical devices, the paper microbenchmark,
// seed 1, and the device-default bandwidth.
func (g SweepGrid) Jobs() []SweepJob {
	bg := batch.Grid{
		Devices:      g.Devices,
		Workloads:    g.Workloads,
		Seeds:        g.Seeds,
		BandwidthsHz: g.BandwidthsHz,
	}
	if len(bg.Devices) == 0 {
		bg.Devices = []string{"alcatel", "samsung", "olimex"}
	}
	if len(bg.Workloads) == 0 {
		bg.Workloads = []string{"micro:256:8"}
	}
	if len(bg.Seeds) == 0 {
		bg.Seeds = []uint64{1}
	}
	offsets := g.ProbeOffsetsMM
	if len(offsets) == 0 {
		offsets = []float64{0}
	}
	pts := bg.Points()
	jobs := make([]SweepJob, 0, len(pts)*len(offsets))
	for _, p := range pts {
		for _, off := range offsets {
			jobs = append(jobs, SweepJob{
				Device:      p.Device,
				Workload:    p.Workload,
				ScaleM:      g.ScaleM,
				Seed:        p.Seed,
				BandwidthHz: p.BandwidthHz,
				NoiseFree:   g.NoiseFree,
				Probe:       ProbePosition{XMM: off},
				Faults:      g.Faults,
			})
		}
	}
	return jobs
}

// SweepResult is one sweep job's outcome. Err carries the job's own
// failure (bad device name, invalid workload, analysis error, or the
// cancellation error for jobs skipped after the context was cancelled);
// the remaining fields are valid only when Err is nil.
type SweepResult struct {
	// Index is the job's position in the input slice; results are always
	// returned in input order.
	Index int
	// Job echoes the executed job.
	Job SweepJob
	// Profile is the EMPROF analysis of the (possibly fault-impaired)
	// capture.
	Profile *Profile
	// TrueMisses, TrueStallCycles and TrueCycles are the simulator ground
	// truth, for accuracy accounting.
	TrueMisses      int
	TrueStallCycles uint64
	TrueCycles      uint64
	// FaultReport records what was injected (nil when the job's fault
	// spec is disabled).
	FaultReport *FaultReport
	// Err is the job's failure, nil on success.
	Err error
}

// SweepOptions tunes RunSweep.
type SweepOptions struct {
	// Workers bounds the number of jobs in flight; <= 0 uses
	// runtime.GOMAXPROCS(0). Results are identical for every setting.
	Workers int
	// Config overrides the profiler configuration (nil = DefaultConfig).
	Config *Config
}

// RunSweep executes the jobs concurrently on a bounded worker pool and
// returns their results in input order. Each job runs the full pipeline:
// simulate the workload on the device, optionally inject acquisition
// faults, and analyze the capture. Job failures are isolated — they are
// recorded per-result and never abort the sweep — and the whole sweep is
// deterministic: seeds come from the job specs, so worker count and
// completion order cannot change any result. Cancelling the context stops
// dispatching new jobs; already-running jobs finish, skipped jobs record
// ctx.Err(), and RunSweep returns it.
func RunSweep(ctx context.Context, jobs []SweepJob, opts SweepOptions) ([]SweepResult, error) {
	cfg := DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res, err := batch.Run(ctx, jobs, opts.Workers,
		func(ctx context.Context, i int, job SweepJob) (SweepResult, error) {
			return runSweepJob(ctx, job, cfg)
		})
	out := make([]SweepResult, len(res))
	for i, r := range res {
		out[i] = r.Value
		out[i].Index = i
		out[i].Job = jobs[i]
		if r.Err != nil {
			out[i].Err = r.Err
		}
	}
	return out, err
}

// runSweepJob executes one simulate→inject→analyze pipeline cell.
func runSweepJob(ctx context.Context, job SweepJob, cfg Config) (SweepResult, error) {
	var res SweepResult
	dev, err := DeviceByName(job.Device)
	if err != nil {
		return res, err
	}
	scale := job.ScaleM
	if scale <= 0 {
		scale = 1
	}
	wl, err := ParseWorkload(job.Workload, scale, job.Seed)
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	run, err := Simulate(dev, wl, CaptureOptions{
		Seed:        job.Seed,
		BandwidthHz: job.BandwidthHz,
		NoiseFree:   job.NoiseFree,
		Probe:       job.Probe,
	})
	if err != nil {
		return res, err
	}
	capture := run.Capture
	if job.Faults.Enabled() {
		spec := job.Faults
		// Remix the fault seed with the job coordinates so every cell
		// sees distinct, reproducible, schedule-independent impairments.
		spec.Seed = batch.MixSeed(spec.Seed, job.Seed,
			batch.MixSeedString(job.Device), batch.MixSeedString(job.Workload))
		impaired, rep, err := InjectFaults(capture, spec)
		if err != nil {
			return res, err
		}
		capture = impaired
		res.FaultReport = rep
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	prof, err := Analyze(capture, cfg)
	if err != nil {
		return res, err
	}
	res.Profile = prof
	res.TrueMisses = len(run.Truth.Misses)
	res.TrueStallCycles = run.Truth.FullStallCycles
	res.TrueCycles = run.Truth.Cycles
	return res, nil
}

// ParseWorkload builds a workload from the specification syntax shared by
// the emsim command and the sweep runner:
//
//	micro:TM:CM   the Fig. 6 microbenchmark with TM misses in groups of CM
//	spec:NAME     a SPEC CPU2000 reproduction (scaleM insts in millions)
//	boot          the Fig. 13 boot sequence (scaleM, seed differentiates boots)
//	file:PATH     a JSON program description (see CustomWorkload)
func ParseWorkload(spec string, scaleM float64, seed uint64) (Workload, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "micro":
		if len(parts) != 3 {
			return nil, fmt.Errorf("micro workload needs micro:TM:CM, got %q", spec)
		}
		tm, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad TM: %w", err)
		}
		cm, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("bad CM: %w", err)
		}
		return Microbenchmark(tm, cm)
	case "spec":
		if len(parts) != 2 {
			return nil, fmt.Errorf("spec workload needs spec:NAME, got %q", spec)
		}
		return SPECWorkload(parts[1], scaleM)
	case "boot":
		return BootWorkload(scaleM, seed), nil
	case "file":
		if len(parts) != 2 {
			return nil, fmt.Errorf("file workload needs file:PATH, got %q", spec)
		}
		return LoadWorkload(parts[1])
	default:
		return nil, fmt.Errorf("unknown workload %q (micro:TM:CM, spec:NAME, boot, file:PATH)", spec)
	}
}
