package emprof_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"emprof"
	"emprof/internal/profstore"
	"emprof/internal/service"
)

// TestContinuousProfilingEndToEnd is the acceptance test for the
// continuous-profiling API: a capture streamed to a windowing daemon
// must serve a rolling window sequence whose merge is bit-identical to
// emprof.Analyze over the same capture — and the sequence must survive a
// daemon restart when the window store is on disk.
func TestContinuousProfilingEndToEnd(t *testing.T) {
	capture := simCapture(t)
	want, err := emprof.Analyze(capture, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// ~10 windows over the capture.
	windowS := float64(len(capture.Samples)) / capture.SampleRate / 10

	dir := t.TempDir()
	store, err := profstore.Open(profstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(service.Config{WindowS: windowS, Store: store})
	ts := httptest.NewServer(srv.Handler())

	client := emprof.NewClient(ts.URL)
	client.ChunkSamples = len(capture.Samples)/5 + 1
	client.RetryBaseDelay = 1
	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate, ClockHz: capture.ClockHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.StreamCapture(ctx, id, capture); err != nil {
		t.Fatal(err)
	}

	// Live query: the already-decided windows are visible mid-session
	// (read-your-writes), stamped with the session's geometry.
	live, err := client.Profiles(ctx, id, emprof.ProfilesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if live.State != "active" {
		t.Fatalf("live state %q, want active", live.State)
	}
	if live.SampleRate != capture.SampleRate || live.ClockHz != capture.ClockHz {
		t.Fatalf("live metadata %g/%g, want %g/%g", live.SampleRate, live.ClockHz, capture.SampleRate, capture.ClockHz)
	}
	if len(live.Windows) < 5 {
		t.Fatalf("live query returned %d windows, want several", len(live.Windows))
	}

	got, err := client.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("finalize profile differs from batch Analyze")
	}

	// The finalized session's full sequence (now ending in the Final
	// window) merges back to the batch profile exactly.
	resp, err := client.Profiles(ctx, id, emprof.ProfilesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != "detached" {
		t.Fatalf("post-finalize state %q, want detached", resp.State)
	}
	merged, err := emprof.MergeWindows(resp.Windows, capture.SampleRate, capture.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatal("merged windows differ from batch Analyze")
	}

	// Restart: close the daemon and the store, reopen both over the same
	// directory. The windows must still be there, crash-safe, and still
	// merge to the same profile.
	ts.Close()
	srv.Close()
	store2, err := profstore.Open(profstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := service.New(service.Config{WindowS: windowS, Store: store2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	client2 := emprof.NewClient(ts2.URL)
	client2.RetryBaseDelay = 1
	resp2, err := client2.Profiles(ctx, id, emprof.ProfilesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.State != "detached" {
		t.Fatalf("post-restart state %q, want detached", resp2.State)
	}
	if !reflect.DeepEqual(resp2.Windows, resp.Windows) {
		t.Fatal("windows changed across daemon restart")
	}
	merged2, err := emprof.MergeWindows(resp2.Windows, capture.SampleRate, capture.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged2, want) {
		t.Fatal("post-restart merged windows differ from batch Analyze")
	}

	// Range query: the second half of the stream, paged two windows at a
	// time through the cursor, walks a suffix of the full sequence.
	half := float64(len(capture.Samples)) / capture.SampleRate / 2
	var ranged []emprof.ProfileWindow
	req := emprof.ProfilesRequest{From: half, Limit: 2}
	for {
		page, err := client2.Profiles(ctx, id, req)
		if err != nil {
			t.Fatal(err)
		}
		ranged = append(ranged, page.Windows...)
		if !page.More {
			break
		}
		req.After, req.HasAfter = page.NextAfter, true
	}
	if len(ranged) == 0 || len(ranged) >= len(resp.Windows) {
		t.Fatalf("range query returned %d of %d windows, want a proper suffix", len(ranged), len(resp.Windows))
	}
	wantSuffix := resp.Windows[len(resp.Windows)-len(ranged):]
	if !reflect.DeepEqual(ranged, wantSuffix) {
		t.Fatal("ranged windows are not the sequence suffix")
	}

	// Cursor at window 0: a Limit-1 first page ends at index 0 with
	// NextAfter 0, and HasAfter must turn that into a real cursor — a
	// bare After of 0 would restart at the front and loop forever.
	page0, err := client2.Profiles(ctx, id, emprof.ProfilesRequest{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page0.Windows) != 1 || page0.Windows[0].Index != 0 || !page0.More || page0.NextAfter != 0 {
		t.Fatalf("Limit=1 first page %+v, want window 0 with More and NextAfter 0", page0)
	}
	page1, err := client2.Profiles(ctx, id, emprof.ProfilesRequest{Limit: 1, After: page0.NextAfter, HasAfter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(page1.Windows) != 1 || page1.Windows[0].Index != 1 {
		t.Fatalf("HasAfter cursor at 0 returned %+v, want window 1", page1.Windows)
	}

	// Unknown session: 404 mapped onto ErrSessionNotFound, not the
	// endpoint sentinel.
	if _, err := client2.Profiles(ctx, "ffffffffffffffffffffffffffffffff", emprof.ProfilesRequest{}); !errors.Is(err, emprof.ErrSessionNotFound) {
		t.Fatalf("unknown session error = %v, want ErrSessionNotFound", err)
	}
}

// TestProfilesNotRetained maps the daemon's 410 — a queried range whose
// windows retention already evicted — onto ErrWindowNotRetained.
func TestProfilesNotRetained(t *testing.T) {
	capture := simCapture(t)
	store, err := profstore.Open(profstore.Options{MaxBytes: 8 << 10, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	windowS := float64(len(capture.Samples)) / capture.SampleRate / 40
	srv := service.New(service.Config{WindowS: windowS, Store: store})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	client := emprof.NewClient(ts.URL, emprof.WithRetryPolicy(2, time.Millisecond))
	ctx := context.Background()
	id, err := client.CreateSession(ctx, emprof.SessionSpec{SampleRate: capture.SampleRate, ClockHz: capture.ClockHz})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.StreamCapture(ctx, id, capture); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Profiles(ctx, id, emprof.ProfilesRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || len(resp.Windows) == 0 {
		t.Fatalf("tiny store: truncated=%v windows=%d, want eviction with a retained tail", resp.Truncated, len(resp.Windows))
	}
	first := resp.Windows[0]
	if first.Index == 0 {
		t.Fatal("nothing evicted; cannot probe the 410 path")
	}
	// A range that ends before the oldest retained window is gone for
	// good: 410, ErrWindowNotRetained.
	_, err = client.Profiles(ctx, id, emprof.ProfilesRequest{To: first.StartS / 2})
	if !errors.Is(err, emprof.ErrWindowNotRetained) {
		t.Fatalf("evicted range error = %v, want ErrWindowNotRetained", err)
	}
	var ae *emprof.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusGone {
		t.Fatalf("evicted range error = %v, want APIError 410", err)
	}
}

// TestClientOptions exercises the functional construction surface:
// WithHTTPClient, WithUserAgent and WithRetryPolicy must shape the
// requests the client sends.
func TestClientOptions(t *testing.T) {
	var gotUA string
	var hits int
	probe := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotUA = r.UserAgent()
		hits++
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(probe.Close)

	var transportUsed bool
	hc := &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		transportUsed = true
		return http.DefaultTransport.RoundTrip(r)
	})}
	client := emprof.NewClient(probe.URL,
		emprof.WithHTTPClient(hc),
		emprof.WithUserAgent("emprof-test/1.0"),
		emprof.WithRetryPolicy(2, time.Millisecond),
	)
	_, err := client.ListSessions(context.Background())
	if !errors.Is(err, emprof.ErrRetriesExhausted) {
		t.Fatalf("error = %v, want ErrRetriesExhausted", err)
	}
	if !transportUsed {
		t.Fatal("WithHTTPClient transport not used")
	}
	if gotUA != "emprof-test/1.0" {
		t.Fatalf("User-Agent %q, want emprof-test/1.0", gotUA)
	}
	if hits != 3 {
		t.Fatalf("%d attempts with WithRetryPolicy(2, ...), want 3", hits)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
