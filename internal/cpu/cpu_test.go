package cpu

import (
	"testing"

	"emprof/internal/mem"
	"emprof/internal/mem/cache"
	"emprof/internal/mem/dram"
	"emprof/internal/power"
	"emprof/internal/sim"
)

func testMemConfig() mem.Config {
	return mem.Config{
		L1I:            cache.Config{Name: "L1I", SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, Policy: cache.LRU, HitLatency: 1},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, Policy: cache.LRU, HitLatency: 2},
		LLC:            cache.Config{Name: "LLC", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, Policy: cache.LRU, HitLatency: 10},
		MSHRs:          2,
		LLCFillLatency: 4,
		DRAM: dram.Config{
			Banks: 4, RowBytes: 2048, RowHit: 50, RowMiss: 200,
			BusOccupancy: 20, RefreshInterval: 1 << 22, RefreshDuration: 2000,
		},
	}
}

func testCPUConfig(width int) Config {
	return Config{
		Name: "test", ClockHz: 1e9, Width: width, FetchQueue: 8,
		LoadQueue: 4, StoreQueue: 4, Regs: 64, BranchPenalty: 2,
		IntALULat: 1, IntMulLat: 3, IntDivLat: 20,
		FPALULat: 4, FPMulLat: 5, FPDivLat: 24,
		Power: power.DefaultWeights(),
	}
}

func newCore(t *testing.T, width int) *Core {
	t.Helper()
	ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(1), false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(testCPUConfig(width), ms)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runWarm pre-warms the instruction lines of insts (the tests target data
// behaviour; cold code misses would obscure it) and runs the core.
func runWarm(t *testing.T, c *Core, insts []sim.Inst) *Result {
	t.Helper()
	for _, in := range insts {
		c.Mem().WarmLine(in.PC, false)
		if in.Op.IsCtl() && in.Taken {
			c.Mem().WarmLine(in.Target, false)
		}
	}
	res, err := c.Run(sim.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// aluChain builds n single-cycle ALU instructions whose PCs cycle through
// a small loop-like window (so the instruction cache, once warm, stays
// warm — as in real hot loops).
func aluChain(n int, dependent bool) []sim.Inst {
	insts := make([]sim.Inst, n)
	for i := range insts {
		insts[i] = sim.Inst{
			PC: uint64(0x1000 + (i%64)*4), Op: sim.OpIntALU,
			Dst: int16(24 + i%8), Src1: sim.RegNone, Src2: sim.RegNone,
		}
		if dependent {
			insts[i].Dst = 30
			insts[i].Src1 = 30
		}
	}
	return insts
}

func TestConfigValidation(t *testing.T) {
	good := testCPUConfig(2)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.Width = 9 },
		func(c *Config) { c.FetchQueue = 1 },
		func(c *Config) { c.LoadQueue = 0 },
		func(c *Config) { c.Regs = 4 },
		func(c *Config) { c.IntDivLat = 0 },
	}
	for i, mut := range muts {
		cfg := testCPUConfig(2)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestIndependentALUThroughput(t *testing.T) {
	// Independent 1-cycle ALU ops on a width-2 core reach IPC ~2.
	c := newCore(t, 2)
	res := runWarm(t, c, aluChain(4000, false))
	if ipc := res.IPC(); ipc < 1.7 {
		t.Fatalf("independent ALU IPC %v, want >= 1.7", ipc)
	}
	if len(res.Misses) > 2 {
		t.Fatalf("unexpected LLC misses: %d", len(res.Misses))
	}
}

func TestDependentChainSerializes(t *testing.T) {
	c := newCore(t, 4)
	res := runWarm(t, c, aluChain(4000, true))
	if ipc := res.IPC(); ipc > 1.1 {
		t.Fatalf("fully dependent chain IPC %v, want ~1", ipc)
	}
}

func TestWidthScalesThroughput(t *testing.T) {
	run := func(width int) float64 {
		c := newCore(t, width)
		return runWarm(t, c, aluChain(8000, false)).IPC()
	}
	if ipc1, ipc4 := run(1), run(4); ipc4 < 2.5*ipc1 {
		t.Fatalf("width-4 IPC %v not much above width-1 %v", ipc4, ipc1)
	}
}

func TestLoadMissProducesStall(t *testing.T) {
	c := newCore(t, 2)
	var insts []sim.Inst
	// A load to a cold line whose value the next instruction needs.
	insts = append(insts, sim.Inst{PC: 0x1000, Op: sim.OpLoad, Dst: 8, Src1: sim.RegNone, Addr: 0x100000, Size: 4})
	insts = append(insts, sim.Inst{PC: 0x1004, Op: sim.OpIntALU, Dst: 24, Src1: 8})
	insts = append(insts, aluChain(200, false)...)
	res := runWarm(t, c, insts)
	if len(res.Misses) < 1 {
		t.Fatal("no LLC miss recorded")
	}
	m := res.Misses[0]
	if m.Kind != mem.KindLoad || !m.Stalled {
		t.Fatalf("miss record %+v: want stalled load", m)
	}
	if res.FullStallCycles < 150 {
		t.Fatalf("full stall cycles %d, want >= 150 for a ~216-cycle miss", res.FullStallCycles)
	}
	if len(res.Stalls) == 0 {
		t.Fatal("no stall interval recorded")
	}
	s := res.Stalls[0]
	if s.Start < m.Detect || s.End > m.Complete+2 {
		t.Fatalf("stall [%d,%d) outside miss [%d,%d]", s.Start, s.End, m.Detect, m.Complete)
	}
	if s.Stalled != s.End-s.Start {
		t.Fatalf("raw interval Stalled=%d, want %d", s.Stalled, s.End-s.Start)
	}
}

func TestHiddenMissDoesNotStall(t *testing.T) {
	c := newCore(t, 2)
	var insts []sim.Inst
	// A load whose value nobody consumes, followed by ample independent
	// work longer than the miss latency: the miss must be fully hidden.
	insts = append(insts, sim.Inst{PC: 0x1000, Op: sim.OpLoad, Dst: 8, Src1: sim.RegNone, Addr: 0x100000, Size: 4})
	insts = append(insts, aluChain(2000, false)...)
	res := runWarm(t, c, insts)
	if len(res.Misses) != 1 {
		t.Fatalf("misses %d, want 1", len(res.Misses))
	}
	if res.Misses[0].Stalled {
		t.Fatal("fully hidden miss marked as stalled")
	}
	if res.FullStallCycles != 0 {
		t.Fatalf("full stall cycles %d, want 0", res.FullStallCycles)
	}
}

func TestOverlappedMissesShareStall(t *testing.T) {
	c := newCore(t, 2)
	var insts []sim.Inst
	// Two independent loads to different cold lines in different banks,
	// then a consumer of the first: both misses overlap one stall.
	insts = append(insts, sim.Inst{PC: 0x1000, Op: sim.OpLoad, Dst: 8, Src1: sim.RegNone, Addr: 0x100000, Size: 4})
	insts = append(insts, sim.Inst{PC: 0x1004, Op: sim.OpLoad, Dst: 9, Src1: sim.RegNone, Addr: 0x200800, Size: 4})
	insts = append(insts, sim.Inst{PC: 0x1008, Op: sim.OpIntALU, Dst: 24, Src1: 8, Src2: 9})
	insts = append(insts, aluChain(100, false)...)
	res := runWarm(t, c, insts)
	if len(res.Misses) != 2 {
		t.Fatalf("misses %d, want 2", len(res.Misses))
	}
	merged := MergeStalls(res.Stalls, 4)
	if len(merged) != 1 {
		t.Fatalf("merged stalls %d, want 1 overlapped stall", len(merged))
	}
	if merged[0].Misses < 2 {
		t.Fatalf("stall covers %d misses, want 2", merged[0].Misses)
	}
}

func TestInstructionMissStallsFetch(t *testing.T) {
	c := newCore(t, 2)
	var insts []sim.Inst
	insts = append(insts, aluChain(64, false)...)
	// Jump to a distant cold code line.
	insts = append(insts, sim.Inst{PC: 0x1100, Op: sim.OpBranch, Taken: true, Target: 0x900000})
	for i := 0; i < 64; i++ {
		insts = append(insts, sim.Inst{PC: uint64(0x900000 + i*4), Op: sim.OpIntALU, Dst: 24, Src1: sim.RegNone})
	}
	// Warm only the first code block: the jump target must stay cold.
	for _, in := range insts {
		if in.PC < 0x900000 {
			c.Mem().WarmLine(in.PC, false)
		}
	}
	res, err := c.Run(sim.NewSliceStream(insts))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.Misses {
		if m.Kind == mem.KindInst {
			found = true
		}
	}
	if !found {
		t.Fatal("no instruction-side LLC miss recorded")
	}
	if res.FullStallCycles == 0 {
		t.Fatal("I-miss should fully stall an empty pipeline")
	}
}

func TestDividerUnpipelined(t *testing.T) {
	c := newCore(t, 2)
	var insts []sim.Inst
	for i := 0; i < 20; i++ {
		insts = append(insts, sim.Inst{PC: uint64(0x1000 + i*4), Op: sim.OpIntDiv, Dst: int16(24 + i%4), Src1: sim.RegNone})
	}
	res := runWarm(t, c, insts)
	// 20 divides at 20 cycles each on one unpipelined divider: >= 400.
	if res.Cycles < 380 {
		t.Fatalf("20 divides finished in %d cycles, want >= 380", res.Cycles)
	}
	if res.FullStallCycles != 0 {
		t.Fatal("divider stalls must not be attributed to memory")
	}
}

func TestRegionSpans(t *testing.T) {
	c := newCore(t, 2)
	var insts []sim.Inst
	for i := 0; i < 100; i++ {
		r := uint16(1)
		if i >= 50 {
			r = 2
		}
		insts = append(insts, sim.Inst{PC: uint64(0x1000 + i*4), Op: sim.OpIntALU, Dst: 24, Src1: sim.RegNone, Region: r})
	}
	res := runWarm(t, c, insts)
	// A short region-0 startup span may precede the first issue; the two
	// workload regions must follow, contiguously.
	spans := res.RegionSpans
	if len(spans) > 0 && spans[0].Region == 0 {
		spans = spans[1:]
	}
	if len(spans) != 2 {
		t.Fatalf("region spans %d, want 2: %+v", len(spans), spans)
	}
	if spans[0].Region != 1 || spans[1].Region != 2 {
		t.Fatalf("span regions wrong: %+v", spans)
	}
	if spans[0].EndCycle != spans[1].StartCycle {
		t.Fatal("spans must be contiguous")
	}
}

func TestTouchWarmsWithoutMiss(t *testing.T) {
	c := newCore(t, 2)
	var insts []sim.Inst
	insts = append(insts, sim.Inst{PC: 0x1000, Op: sim.OpTouch, Addr: 0x100000})
	insts = append(insts, sim.Inst{PC: 0x1004, Op: sim.OpLoad, Dst: 8, Src1: sim.RegNone, Addr: 0x100000, Size: 4})
	insts = append(insts, aluChain(50, false)...)
	res := runWarm(t, c, insts)
	if len(res.Misses) != 0 {
		t.Fatalf("touched line missed: %+v", res.Misses)
	}
}

func TestPowerSinkReceivesEveryCycle(t *testing.T) {
	c := newCore(t, 2)
	sampler := power.NewIntervalSampler(1)
	c.AddSink(sampler)
	res, err := c.Run(sim.NewSliceStream(aluChain(100, false)))
	if err != nil {
		t.Fatal(err)
	}
	sampler.Flush()
	if got := uint64(len(sampler.Samples())); got != res.Cycles {
		t.Fatalf("power samples %d, want %d cycles", got, res.Cycles)
	}
	for _, p := range sampler.Samples() {
		if p <= 0 {
			t.Fatal("non-positive power sample")
		}
	}
}

func TestStallCyclesLowerPower(t *testing.T) {
	c := newCore(t, 2)
	sampler := power.NewIntervalSampler(1)
	c.AddSink(sampler)
	var insts []sim.Inst
	insts = append(insts, aluChain(100, false)...)
	insts = append(insts, sim.Inst{PC: 0x2000, Op: sim.OpLoad, Dst: 8, Src1: sim.RegNone, Addr: 0x100000, Size: 4})
	insts = append(insts, sim.Inst{PC: 0x2004, Op: sim.OpIntALU, Dst: 24, Src1: 8})
	insts = append(insts, aluChain(100, false)...)
	res := runWarm(t, c, insts)
	sampler.Flush()
	samples := sampler.Samples()
	s := res.Stalls[0]
	// Compare the stall floor against the busiest cycle of the run.
	busy := 0.0
	for _, p := range samples[:s.Start] {
		if p > busy {
			busy = p
		}
	}
	stalled := samples[(s.Start+s.End)/2]
	if stalled >= busy/2 {
		t.Fatalf("stalled power %v not well below busy power %v", stalled, busy)
	}
}

func TestBranchRedirect(t *testing.T) {
	c := newCore(t, 2)
	// Tight loop: same instructions re-fetched; the model replays the
	// stream, so just verify taken branches add their penalty.
	var seq []sim.Inst
	for i := 0; i < 50; i++ {
		seq = append(seq, sim.Inst{PC: 0x1000, Op: sim.OpIntALU, Dst: 24, Src1: sim.RegNone})
		seq = append(seq, sim.Inst{PC: 0x1004, Op: sim.OpBranch, Taken: true, Target: 0x1000})
	}
	res := runWarm(t, c, seq)
	// Each iteration pays at least the 2-cycle redirect penalty.
	if res.Cycles < 100 {
		t.Fatalf("cycles %d, want >= 100 with branch penalties", res.Cycles)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	c := newCore(t, 1)
	c.MaxCycles = 10
	_, err := c.Run(sim.NewSliceStream(aluChain(1000, false)))
	if err == nil {
		t.Fatal("MaxCycles exceeded but no error")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Cycles: 1000, Instructions: 1500, FullStallCycles: 250}
	if r.IPC() != 1.5 {
		t.Fatalf("IPC %v", r.IPC())
	}
	if r.StallFraction() != 0.25 {
		t.Fatalf("stall fraction %v", r.StallFraction())
	}
	empty := &Result{}
	if empty.IPC() != 0 || empty.StallFraction() != 0 {
		t.Fatal("zero-cycle result helpers must return 0")
	}
}
