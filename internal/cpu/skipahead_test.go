package cpu

import (
	"reflect"
	"testing"
	"testing/quick"

	"emprof/internal/mem"
	"emprof/internal/sim"
)

// collectSink records every per-cycle power value. It deliberately does
// NOT implement power.BlockSink: batched flushes reach it through the
// MultiSink fallback as individual PushCycle calls, so it observes the
// exact per-cycle stream no matter how the core batches internally.
type collectSink struct{ ps []float64 }

func (s *collectSink) PushCycle(p float64) { s.ps = append(s.ps, p) }

// runMode runs one random program on a fresh core and returns the result
// plus the full per-cycle power series.
func runMode(t *testing.T, seed uint64, width, window, batch int, exact bool, n int) (*Result, []float64) {
	t.Helper()
	ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(seed), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCPUConfig(width)
	cfg.FetchQueue = 32
	cfg.OoOWindow = window
	c, err := New(cfg, ms)
	if err != nil {
		t.Fatal(err)
	}
	c.Exact = exact
	c.BatchCycles = batch
	sink := &collectSink{}
	c.AddSink(sink)
	res, err := c.Run(sim.NewSliceStream(randomProgram(seed, n)))
	if err != nil {
		t.Fatal(err)
	}
	return res, sink.ps
}

func assertSameRun(t *testing.T, label string, res, ref *Result, pow, refPow []float64) {
	t.Helper()
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("%s: Result diverged from per-cycle reference:\n got %+v\nwant %+v", label, res, ref)
	}
	if len(pow) != len(refPow) {
		t.Fatalf("%s: power series length %d, reference %d", label, len(pow), len(refPow))
	}
	for i := range refPow {
		if pow[i] != refPow[i] {
			t.Fatalf("%s: power[%d] = %v, reference %v", label, i, pow[i], refPow[i])
		}
	}
	if uint64(len(pow)) != res.Cycles {
		t.Fatalf("%s: %d power values for %d cycles", label, len(pow), res.Cycles)
	}
}

// TestSkipAheadMatchesExact pins the tentpole invariant on a fixed grid:
// the event-driven skip-ahead path must be bit-identical to the per-cycle
// reference — same Result (stalls, misses, spans, counters) and the same
// per-cycle power series — for in-order and out-of-order cores and for
// every batch size.
func TestSkipAheadMatchesExact(t *testing.T) {
	for _, width := range []int{1, 2} {
		for _, window := range []int{0, 8} {
			for _, seed := range []uint64{1, 42, 1 << 40} {
				refRes, refPow := runMode(t, seed, width, window, 1, true, 3000)
				for _, batch := range []int{0, 1, 7, 4096} {
					res, pow := runMode(t, seed, width, window, batch, false, 3000)
					assertSameRun(t, "skip-ahead", res, refRes, pow, refPow)
				}
			}
		}
	}
}

// TestSkipAheadMatchesExactProperty widens the grid with randomized core
// shapes and batch sizes (testing/quick picks them), mirroring
// TestRunInvariants' generator so miss-heavy and branch-heavy programs
// both appear.
func TestSkipAheadMatchesExactProperty(t *testing.T) {
	f := func(seed uint64, widthRaw, windowRaw uint8, batchRaw uint16) bool {
		width := int(widthRaw%4) + 1
		window := int(windowRaw % 24)
		batch := int(batchRaw % 600)
		refRes, refPow := runMode(t, seed, width, window, 1, true, 2000)
		res, pow := runMode(t, seed, width, window, batch, false, 2000)
		if !reflect.DeepEqual(res, refRes) || len(pow) != len(refPow) {
			t.Logf("seed=%d width=%d window=%d batch=%d diverged", seed, width, window, batch)
			return false
		}
		for i := range refPow {
			if pow[i] != refPow[i] {
				t.Logf("seed=%d width=%d window=%d batch=%d power[%d] %v != %v",
					seed, width, window, batch, i, pow[i], refPow[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestRunSteadyStateAllocs pins the satellite fix for the per-stall
// allocations: a run over a miss-heavy program (hundreds of stalls,
// thousands of batch flushes) must allocate a small constant amount —
// the run state, the result slices and the stream — never per stall or
// per flush. The pre-fix loop allocated a map per stall and a fresh batch
// per flush, putting this in the tens of thousands.
func TestRunSteadyStateAllocs(t *testing.T) {
	ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(9), false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(testCPUConfig(2), ms)
	if err != nil {
		t.Fatal(err)
	}
	c.BatchCycles = 64
	prog := randomProgram(9, 20000)
	// Warm-up run so result-slice growth reaches steady state capacity
	// inside Core's reusable scratch.
	if _, err := c.Run(sim.NewSliceStream(prog)); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := c.Run(sim.NewSliceStream(prog)); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: run state + stream + result slices (misses/stalls/spans
	// regrow per run) with generous slack; a per-stall or per-flush
	// allocation would add hundreds.
	if avg > 60 {
		t.Fatalf("steady-state Run allocates %.0f times, want <= 60", avg)
	}
}

// TestFlushNonDivisibleCycleCount pins the satellite flush fix: when the
// run length is not a multiple of BatchCycles, the tail batch must still
// reach the sinks — every simulated cycle produces exactly one power
// value.
func TestFlushNonDivisibleCycleCount(t *testing.T) {
	for _, batch := range []int{64, 1000, 1 << 20} {
		ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(3), false)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(testCPUConfig(1), ms)
		if err != nil {
			t.Fatal(err)
		}
		c.BatchCycles = batch
		sink := &collectSink{}
		c.AddSink(sink)
		res, err := c.Run(sim.NewSliceStream(randomProgram(3, 777)))
		if err != nil {
			t.Fatal(err)
		}
		if batch <= int(res.Cycles) && res.Cycles%uint64(batch) == 0 {
			t.Fatalf("batch %d: run length %d accidentally divisible; pick another program", batch, res.Cycles)
		}
		if uint64(len(sink.ps)) != res.Cycles {
			t.Fatalf("batch %d: sink saw %d cycles, run had %d (tail batch dropped?)",
				batch, len(sink.ps), res.Cycles)
		}
	}
}

// TestFlushOnMaxCyclesAbort pins the flush-on-every-exit-path fix for the
// error return: a MaxCycles abort must still deliver the partial batch,
// so the sink sees exactly MaxCycles values.
func TestFlushOnMaxCyclesAbort(t *testing.T) {
	for _, exact := range []bool{false, true} {
		ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(5), false)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(testCPUConfig(1), ms)
		if err != nil {
			t.Fatal(err)
		}
		c.Exact = exact
		c.BatchCycles = 4096
		c.MaxCycles = 1001 // deliberately not a batch multiple
		sink := &collectSink{}
		c.AddSink(sink)
		if _, err := c.Run(sim.NewSliceStream(randomProgram(5, 100000))); err == nil {
			t.Fatal("MaxCycles exceeded but no error")
		}
		if uint64(len(sink.ps)) != c.MaxCycles {
			t.Fatalf("exact=%v: sink saw %d cycles before abort, want %d",
				exact, len(sink.ps), c.MaxCycles)
		}
	}
}
