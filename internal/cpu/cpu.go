// Package cpu is the cycle-level processor model: an N-wide in-order
// superscalar core in the style of the paper's SESC configuration ("a
// 4-wide in-order processor, with two levels of caches with random
// replacement policies, which mimics the behavior of the processors
// encountered in many IoT and hand-held devices"). It executes a workload
// instruction stream against the memory system, emits a per-cycle power
// stream to registered sinks, and records the ground truth EMPROF is
// validated against: every LLC miss, and the begin/end of every
// fully-stalled interval the misses cause.
package cpu

import (
	"fmt"

	"emprof/internal/mem"
	"emprof/internal/power"
	"emprof/internal/sim"
)

// Config describes the core.
type Config struct {
	// Name labels the core in reports.
	Name string
	// ClockHz is the core clock; it converts cycles to wall time.
	ClockHz float64
	// Width is the in-order issue width.
	Width int
	// FetchQueue is the depth of the decoded-instruction buffer between
	// fetch and issue.
	FetchQueue int
	// LoadQueue and StoreQueue bound outstanding memory operations; they
	// determine how long the core can keep busy under a miss before it
	// fully stalls.
	LoadQueue  int
	StoreQueue int
	// Regs is the number of architectural registers tracked by the
	// scoreboard.
	Regs int
	// BranchPenalty is the fetch-redirect bubble of a taken branch.
	BranchPenalty int
	// OoOWindow, when > 1, enables scoreboard out-of-order issue: ready
	// instructions may issue from the first OoOWindow fetch-queue slots,
	// subject to WAW/WAR hazards, with memory and control instructions
	// kept in order. It models the paper's Section II-B observation that
	// "a sophisticated out-of-order processor" averts the full stall for
	// tens of cycles longer than the in-order cores of IoT devices.
	// 0 or 1 selects pure in-order issue (the default and the paper's
	// device class).
	OoOWindow int
	// Latencies per op class, in cycles.
	IntALULat, IntMulLat, IntDivLat int
	FPALULat, FPMulLat, FPDivLat    int
	// Power is the unit-level power model.
	Power power.Weights
}

// Validate checks the core configuration.
func (c Config) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("cpu %s: clock %v <= 0", c.Name, c.ClockHz)
	}
	if c.Width < 1 || c.Width > 8 {
		return fmt.Errorf("cpu %s: width %d out of [1,8]", c.Name, c.Width)
	}
	if c.FetchQueue < c.Width {
		return fmt.Errorf("cpu %s: fetch queue %d < width %d", c.Name, c.FetchQueue, c.Width)
	}
	if c.OoOWindow < 0 || c.OoOWindow > c.FetchQueue {
		return fmt.Errorf("cpu %s: OoO window %d out of [0, fetch queue]", c.Name, c.OoOWindow)
	}
	if c.LoadQueue < 1 || c.StoreQueue < 1 {
		return fmt.Errorf("cpu %s: load/store queues must be >= 1", c.Name)
	}
	if c.Regs < 8 {
		return fmt.Errorf("cpu %s: too few registers (%d)", c.Name, c.Regs)
	}
	for _, l := range []int{c.IntALULat, c.IntMulLat, c.IntDivLat, c.FPALULat, c.FPMulLat, c.FPDivLat} {
		if l < 1 {
			return fmt.Errorf("cpu %s: op latency %d < 1", c.Name, l)
		}
	}
	return nil
}

// StallInterval is one ground-truth fully-stalled interval caused by LLC
// miss(es): the unit the paper calls a "MISS" ("a sequence of stalled
// cycles that are all caused by one LLC miss or even by several
// highly-overlapped LLC misses").
type StallInterval struct {
	// Start is the first fully-stalled cycle, End is one past the last.
	Start, End uint64
	// Stalled is the number of actually fully-stalled cycles inside
	// [Start, End): equal to End-Start for raw intervals, possibly less
	// after merging across brief busy gaps (see MergeStalls).
	Stalled uint64
	// Misses is how many distinct LLC misses overlapped the interval.
	Misses int
	// RefreshHit is true when any contributing miss collided with DRAM
	// refresh.
	RefreshHit bool
	// Region is the workload region executing when the stall began.
	Region uint16
}

// Cycles returns the interval's length.
func (s StallInterval) Cycles() uint64 { return s.End - s.Start }

// Result summarises one simulated run.
type Result struct {
	// Cycles is the total execution time.
	Cycles uint64
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// Stalls is the ground-truth list of LLC-miss-induced full stalls.
	Stalls []StallInterval
	// Misses is the ground-truth LLC miss list (shared with the memory
	// system, with stall attribution filled in).
	Misses []mem.MissRecord
	// RegionSpans records when each workload region executed.
	RegionSpans []sim.RegionSpan
	// FullStallCycles counts all fully-stalled cycles attributed to LLC
	// misses.
	FullStallCycles uint64
	// OtherStallCycles counts fully-idle cycles not attributable to LLC
	// misses (dependence chains, branch bubbles).
	OtherStallCycles uint64
	// Mem is a copy of the memory-system counters.
	Mem mem.SystemStats
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// StallFraction returns the fraction of cycles fully stalled on LLC
// misses — the paper's "Miss Latency (%Total Time)" metric of Table IV.
func (r *Result) StallFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.FullStallCycles) / float64(r.Cycles)
}

// StalledMissCount returns how many ground-truth misses produced at least
// one fully-stalled cycle (the events a stall-based detector can see).
func (r *Result) StalledMissCount() int {
	n := 0
	for i := range r.Misses {
		if r.Misses[i].Stalled {
			n++
		}
	}
	return n
}

// Core is the processor model bound to a memory system.
type Core struct {
	cfg Config
	ms  *mem.System

	sinks power.MultiSink

	// BatchCycles sets the granularity of the power fan-out: per-cycle
	// values are buffered and handed to the sinks in blocks of this many
	// cycles (block-capable sinks get one PushBlock call, plain sinks an
	// equivalent per-cycle stream — the observable result is identical
	// either way). 0 selects the default; 1 forces the per-cycle path.
	BatchCycles int
	batch       []float64

	// MaxCycles aborts runaway simulations (0 = unlimited).
	MaxCycles uint64
}

// defaultBatchCycles amortises sink interface calls, filter updates and
// noise draws without holding a meaningful amount of memory (32 KiB).
const defaultBatchCycles = 4096

// New builds a core over the given memory system.
func New(cfg Config, ms *mem.System) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{cfg: cfg, ms: ms}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config, ms *mem.System) *Core {
	c, err := New(cfg, ms)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Mem returns the attached memory system.
func (c *Core) Mem() *mem.System { return c.ms }

// AddSink registers a per-cycle power consumer.
func (c *Core) AddSink(s power.Sink) { c.sinks = append(c.sinks, s) }

// opLatency returns the execution latency of op.
func (c *Core) opLatency(op sim.Op) int {
	switch op {
	case sim.OpIntMul:
		return c.cfg.IntMulLat
	case sim.OpIntDiv:
		return c.cfg.IntDivLat
	case sim.OpFPALU:
		return c.cfg.FPALULat
	case sim.OpFPMul:
		return c.cfg.FPMulLat
	case sim.OpFPDiv:
		return c.cfg.FPDivLat
	default:
		return c.cfg.IntALULat
	}
}

// fetchedInst is a decoded instruction waiting to issue.
type fetchedInst struct {
	inst sim.Inst
	// done marks instructions already issued out of order; they are
	// removed once they reach the queue head.
	done bool
}

// Run executes the workload stream to completion and returns the run
// summary with ground truth.
func (c *Core) Run(stream sim.Stream) (*Result, error) {
	cfg := c.cfg
	bs := c.BatchCycles
	if bs <= 0 {
		bs = defaultBatchCycles
	}
	if cap(c.batch) != bs || len(c.batch) != 0 {
		c.batch = make([]float64, 0, bs)
	}
	regReady := make([]uint64, cfg.Regs)
	// missReg marks registers whose pending value comes from an LLC miss,
	// so idle cycles can be attributed to the memory system only when the
	// miss is actually what blocks progress.
	missReg := make([]bool, cfg.Regs)
	fq := make([]fetchedInst, 0, cfg.FetchQueue)
	loadDone := make([]uint64, 0, cfg.LoadQueue)
	storeDone := make([]uint64, 0, cfg.StoreQueue)

	var (
		now          uint64
		instructions uint64
		fetchReady   uint64
		streamDone   bool
		divFreeAt    uint64
		lastILine    uint64 = ^uint64(0)
		lineMask            = uint64(c.ms.L1I().Config().LineBytes - 1)
		// fetchWaitIsMiss records whether the current front-end bubble is
		// due to an instruction-side LLC miss (as opposed to an LLC-hit
		// refill or a branch redirect).
		fetchWaitIsMiss bool

		// Stall ground truth.
		inStall      bool
		curStall     StallInterval
		stallMissSet map[int]struct{}
		stalls       []StallInterval
		fullStall    uint64
		otherStall   uint64

		// Region tracking.
		curRegion   uint16
		regionStart uint64
		spans       []sim.RegionSpan
	)
	res := &Result{}

	closeStall := func() {
		if !inStall {
			return
		}
		curStall.End = now
		curStall.Stalled = now - curStall.Start
		curStall.Misses = len(stallMissSet)
		stalls = append(stalls, curStall)
		inStall = false
	}
	closeRegion := func() {
		if now > regionStart {
			spans = append(spans, sim.RegionSpan{Region: curRegion, StartCycle: regionStart, EndCycle: now})
		}
	}

	var next sim.Inst
	havePending := false

	for {
		// Retire completed loads/stores.
		loadDone = compactDone(loadDone, now)
		storeDone = compactDone(storeDone, now)

		// --- Fetch ---
		fetchedThisCycle := false
		if !streamDone && fetchReady <= now {
			for len(fq) < cfg.FetchQueue {
				if !havePending {
					if !stream.Next(&next) {
						streamDone = true
						break
					}
					havePending = true
				}
				line := next.PC &^ lineMask
				if line != lastILine {
					r := c.ms.Access(now, next.PC, next.PC, mem.KindInst)
					lastILine = line
					if !r.L1Hit {
						// Fetch bubbles until the line arrives; L1I
						// contents were updated, so the next attempt hits.
						fetchReady = r.Ready
						fetchWaitIsMiss = r.LLCMiss || r.Coalesced
						if fetchReady > now {
							break
						}
					}
				}
				fq = append(fq, fetchedInst{inst: next})
				havePending = false
				fetchedThisCycle = true
				if next.Op.IsCtl() && next.Taken {
					// Redirect: bubble the front-end.
					fetchReady = now + uint64(cfg.BranchPenalty)
					fetchWaitIsMiss = false
					lastILine = ^uint64(0)
					break
				}
				if len(fq) >= cfg.FetchQueue {
					break
				}
			}
		}

		// --- Issue (up to Width; in order, or scoreboard-OoO within a
		// window when configured) ---
		var act power.Activity
		act.FetchActive = fetchedThisCycle
		issued := 0
		// blockedByMiss records whether the reason issue stopped this
		// cycle is an outstanding LLC miss (dependence on a missing load,
		// or a memory queue clogged by one); idle cycles are attributed
		// to the memory system only then.
		blockedByMiss := false

		// tryIssue attempts to issue one instruction. It returns
		// (true, _) when issued, or (false, structural) where structural
		// is true when a structural resource (queue, divider) blocked it
		// rather than an operand.
		tryIssue := func(in *sim.Inst) (bool, bool) {
			if in.Src1 >= 0 && regReady[in.Src1] > now {
				blockedByMiss = blockedByMiss || missReg[in.Src1]
				return false, false
			}
			if in.Src2 >= 0 && regReady[in.Src2] > now {
				blockedByMiss = blockedByMiss || missReg[in.Src2]
				return false, false
			}
			switch in.Op {
			case sim.OpTouch:
				// Warm install: no timing, no miss record.
				c.ms.WarmLine(in.Addr, false)
			case sim.OpLoad:
				if len(loadDone) >= cfg.LoadQueue {
					blockedByMiss = blockedByMiss || c.ms.OutstandingMisses(now) > 0
					return false, true
				}
				r := c.ms.Access(now, in.PC, in.Addr, mem.KindLoad)
				if in.Dst >= 0 {
					regReady[in.Dst] = r.Ready
					missReg[in.Dst] = r.LLCMiss || r.Coalesced
				}
				loadDone = append(loadDone, r.Ready)
				act.MemAccesses++
			case sim.OpStore:
				if len(storeDone) >= cfg.StoreQueue {
					blockedByMiss = blockedByMiss || c.ms.OutstandingMisses(now) > 0
					return false, true
				}
				r := c.ms.Access(now, in.PC, in.Addr, mem.KindStore)
				storeDone = append(storeDone, r.Ready)
				act.MemAccesses++
			case sim.OpIntDiv, sim.OpFPDiv:
				// Unpipelined divider.
				if divFreeAt > now {
					return false, true
				}
				lat := uint64(c.opLatency(in.Op))
				divFreeAt = now + lat
				if in.Dst >= 0 {
					regReady[in.Dst] = now + lat
					missReg[in.Dst] = false
				}
				if in.Op == sim.OpIntDiv {
					act.IntMulDiv++
				} else {
					act.FPMulDiv++
				}
			default:
				lat := uint64(c.opLatency(in.Op))
				if in.Dst >= 0 {
					regReady[in.Dst] = now + lat
					missReg[in.Dst] = false
				}
				switch in.Op {
				case sim.OpIntMul:
					act.IntMulDiv++
				case sim.OpFPALU:
					act.FPALU++
				case sim.OpFPMul:
					act.FPMulDiv++
				case sim.OpIntALU, sim.OpBranch, sim.OpCall, sim.OpReturn:
					act.IntALU++
				}
			}
			issued++
			instructions++
			return true, false
		}

		// enterRegion performs region bookkeeping for an issuing slot.
		enterRegion := func(in *sim.Inst) {
			if in.Region != curRegion {
				closeRegion()
				curRegion = in.Region
				regionStart = now
				c.ms.CurrentRegion = curRegion
			}
		}

		if cfg.OoOWindow <= 1 {
			// Pure in-order issue from the queue head.
			for issued < cfg.Width && len(fq) > 0 {
				in := &fq[0].inst
				enterRegion(in)
				ok, _ := tryIssue(in)
				if !ok {
					break
				}
				fq = fq[1:]
			}
		} else {
			c.issueOoO(fq, &act, now, regReady, missReg, tryIssue, enterRegion, &issued)
			// Retire issued entries from the head.
			for len(fq) > 0 && fq[0].done {
				fq = fq[1:]
			}
		}
		if len(fq) == 0 && fetchReady > now {
			// Front-end bubble: memory-attributable only for I-side
			// LLC misses.
			blockedByMiss = fetchWaitIsMiss
		}

		// --- Stall accounting & power ---
		outMisses := c.ms.OutstandingMisses(now)
		act.Issued = issued
		act.MissesOut = outMisses

		fullyIdle := issued == 0 && !fetchedThisCycle
		memStall := fullyIdle && outMisses > 0 && blockedByMiss
		if memStall {
			fullStall++
			if !inStall {
				inStall = true
				curStall = StallInterval{Start: now, Region: curRegion}
				stallMissSet = make(map[int]struct{}, 4)
			}
			// Attribute every outstanding miss to this interval. Records
			// are detect-ordered; outstanding ones are always among the
			// most recent, so a bounded backward scan suffices.
			misses := c.ms.Misses()
			lo := len(misses) - 64
			if lo < 0 {
				lo = 0
			}
			for id := len(misses) - 1; id >= lo; id-- {
				m := &misses[id]
				if m.Detect > now || m.Complete <= now {
					continue
				}
				if _, seen := stallMissSet[id]; !seen {
					stallMissSet[id] = struct{}{}
					if !m.Stalled {
						m.Stalled = true
						m.StallStart = now
					}
					if m.RefreshHit {
						curStall.RefreshHit = true
					}
				}
				m.StallEnd = now + 1
			}
			// Power: fully stalled core draws only its baseline.
			actStalled := power.Activity{MissesOut: outMisses}
			c.push(cfg.Power.Cycle(actStalled))
		} else {
			if fullyIdle {
				otherStall++
			}
			closeStall()
			// An active unpipelined divider keeps switching even when no
			// instruction issues, so dependence stalls on a divide do not
			// look like memory stalls in the signal.
			if divFreeAt > now {
				act.IntMulDiv++
			}
			c.push(cfg.Power.Cycle(act))
		}

		now++
		if c.MaxCycles > 0 && now >= c.MaxCycles {
			c.flushBatch()
			return nil, fmt.Errorf("cpu %s: exceeded MaxCycles=%d", cfg.Name, c.MaxCycles)
		}

		// --- Termination ---
		if streamDone && !havePending && len(fq) == 0 &&
			len(loadDone) == 0 && len(storeDone) == 0 && outMisses == 0 {
			break
		}
	}

	c.flushBatch()
	closeStall()
	closeRegion()

	res.Cycles = now
	res.Instructions = instructions
	res.Stalls = stalls
	res.Misses = c.ms.Misses()
	res.RegionSpans = spans
	res.FullStallCycles = fullStall
	res.OtherStallCycles = otherStall
	res.Mem = c.ms.Stats()
	return res, nil
}

// push buffers one cycle's power; full batches fan out to the sinks as a
// block. The buffer is sized in Run, so a full batch is cap(c.batch).
func (c *Core) push(p float64) {
	c.batch = append(c.batch, p)
	if len(c.batch) == cap(c.batch) {
		c.flushBatch()
	}
}

// flushBatch delivers any buffered cycles to the sinks.
func (c *Core) flushBatch() {
	if len(c.batch) > 0 {
		c.sinks.PushBlock(c.batch)
		c.batch = c.batch[:0]
	}
}

// compactDone removes completed entries (done <= now) in place.
func compactDone(q []uint64, now uint64) []uint64 {
	out := q[:0]
	for _, d := range q {
		if d > now {
			out = append(out, d)
		}
	}
	return out
}

// issueOoO performs scoreboard out-of-order issue within the configured
// window: any ready instruction in the first OoOWindow slots may issue,
// except that (a) memory operations stay in program order relative to
// each other, (b) control transfers issue only from the oldest unissued
// slot, and (c) WAW/WAR hazards against older unissued instructions block
// a younger one.
func (c *Core) issueOoO(fq []fetchedInst, act *power.Activity, now uint64,
	regReady []uint64, missReg []bool,
	tryIssue func(*sim.Inst) (bool, bool),
	enterRegion func(*sim.Inst), issued *int) {
	window := c.cfg.OoOWindow
	if window > len(fq) {
		window = len(fq)
	}
	memBlocked := false
	for slot := 0; slot < window && *issued < c.cfg.Width; slot++ {
		e := &fq[slot]
		if e.done {
			continue
		}
		in := &e.inst
		// Memory order: a younger memory op waits for all older ones.
		if in.Op.IsMem() && memBlocked {
			continue
		}
		// Control transfers only issue from the oldest unissued slot.
		oldest := true
		for k := 0; k < slot; k++ {
			if !fq[k].done {
				oldest = false
				break
			}
		}
		if in.Op.IsCtl() && !oldest {
			if in.Op.IsMem() {
				memBlocked = true
			}
			continue
		}
		// WAW/WAR against older unissued instructions.
		hazard := false
		for k := 0; k < slot && !hazard; k++ {
			if fq[k].done {
				continue
			}
			old := &fq[k].inst
			if in.Dst >= 0 && (old.Dst == in.Dst || old.Src1 == in.Dst || old.Src2 == in.Dst) {
				hazard = true
			}
		}
		if hazard {
			if in.Op.IsMem() {
				memBlocked = true
			}
			continue
		}
		if oldest {
			enterRegion(in)
		}
		ok, _ := tryIssue(in)
		if ok {
			e.done = true
		} else if in.Op.IsMem() {
			memBlocked = true
		}
	}
}
