// Package cpu is the cycle-level processor model: an N-wide in-order
// superscalar core in the style of the paper's SESC configuration ("a
// 4-wide in-order processor, with two levels of caches with random
// replacement policies, which mimics the behavior of the processors
// encountered in many IoT and hand-held devices"). It executes a workload
// instruction stream against the memory system, emits a per-cycle power
// stream to registered sinks, and records the ground truth EMPROF is
// validated against: every LLC miss, and the begin/end of every
// fully-stalled interval the misses cause.
//
// Execution is event-driven: on a fully-idle cycle nothing the core will
// decide next cycle can change until some future timestamp is crossed (a
// register becomes ready, a load/store completes, the divider frees, the
// front-end redirect resolves, or an outstanding miss completes), so the
// core computes the earliest such wake time, emits the idle cycle's power
// for the whole gap in one batch, and jumps `now` straight to the event.
// The skip is bit-identical to ticking every cycle — see Run. Setting
// Exact forces the per-cycle reference path.
package cpu

import (
	"fmt"

	"emprof/internal/mem"
	"emprof/internal/power"
	"emprof/internal/sim"
)

// Config describes the core.
type Config struct {
	// Name labels the core in reports.
	Name string
	// ClockHz is the core clock; it converts cycles to wall time.
	ClockHz float64
	// Width is the in-order issue width.
	Width int
	// FetchQueue is the depth of the decoded-instruction buffer between
	// fetch and issue.
	FetchQueue int
	// LoadQueue and StoreQueue bound outstanding memory operations; they
	// determine how long the core can keep busy under a miss before it
	// fully stalls.
	LoadQueue  int
	StoreQueue int
	// Regs is the number of architectural registers tracked by the
	// scoreboard.
	Regs int
	// BranchPenalty is the fetch-redirect bubble of a taken branch.
	BranchPenalty int
	// OoOWindow, when > 1, enables scoreboard out-of-order issue: ready
	// instructions may issue from the first OoOWindow fetch-queue slots,
	// subject to WAW/WAR hazards, with memory and control instructions
	// kept in order. It models the paper's Section II-B observation that
	// "a sophisticated out-of-order processor" averts the full stall for
	// tens of cycles longer than the in-order cores of IoT devices.
	// 0 or 1 selects pure in-order issue (the default and the paper's
	// device class).
	OoOWindow int
	// Latencies per op class, in cycles.
	IntALULat, IntMulLat, IntDivLat int
	FPALULat, FPMulLat, FPDivLat    int
	// Power is the unit-level power model.
	Power power.Weights
}

// Validate checks the core configuration.
func (c Config) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("cpu %s: clock %v <= 0", c.Name, c.ClockHz)
	}
	if c.Width < 1 || c.Width > 8 {
		return fmt.Errorf("cpu %s: width %d out of [1,8]", c.Name, c.Width)
	}
	if c.FetchQueue < c.Width {
		return fmt.Errorf("cpu %s: fetch queue %d < width %d", c.Name, c.FetchQueue, c.Width)
	}
	if c.FetchQueue > 64 {
		return fmt.Errorf("cpu %s: fetch queue %d > 64", c.Name, c.FetchQueue)
	}
	if c.OoOWindow < 0 || c.OoOWindow > c.FetchQueue {
		return fmt.Errorf("cpu %s: OoO window %d out of [0, fetch queue]", c.Name, c.OoOWindow)
	}
	if c.LoadQueue < 1 || c.StoreQueue < 1 {
		return fmt.Errorf("cpu %s: load/store queues must be >= 1", c.Name)
	}
	if c.Regs < 8 {
		return fmt.Errorf("cpu %s: too few registers (%d)", c.Name, c.Regs)
	}
	if c.Regs > scoreboardSize {
		return fmt.Errorf("cpu %s: %d registers > scoreboard limit %d", c.Name, c.Regs, scoreboardSize)
	}
	for _, l := range []int{c.IntALULat, c.IntMulLat, c.IntDivLat, c.FPALULat, c.FPMulLat, c.FPDivLat} {
		if l < 1 {
			return fmt.Errorf("cpu %s: op latency %d < 1", c.Name, l)
		}
	}
	return nil
}

// StallInterval is one ground-truth fully-stalled interval caused by LLC
// miss(es): the unit the paper calls a "MISS" ("a sequence of stalled
// cycles that are all caused by one LLC miss or even by several
// highly-overlapped LLC misses").
type StallInterval struct {
	// Start is the first fully-stalled cycle, End is one past the last.
	Start, End uint64
	// Stalled is the number of actually fully-stalled cycles inside
	// [Start, End): equal to End-Start for raw intervals, possibly less
	// after merging across brief busy gaps (see MergeStalls).
	Stalled uint64
	// Misses is how many distinct LLC misses overlapped the interval.
	Misses int
	// RefreshHit is true when any contributing miss collided with DRAM
	// refresh.
	RefreshHit bool
	// Region is the workload region executing when the stall began.
	Region uint16
}

// Cycles returns the interval's length.
func (s StallInterval) Cycles() uint64 { return s.End - s.Start }

// Result summarises one simulated run.
type Result struct {
	// Cycles is the total execution time.
	Cycles uint64
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// Stalls is the ground-truth list of LLC-miss-induced full stalls.
	Stalls []StallInterval
	// Misses is the ground-truth LLC miss list (shared with the memory
	// system, with stall attribution filled in).
	Misses []mem.MissRecord
	// RegionSpans records when each workload region executed.
	RegionSpans []sim.RegionSpan
	// FullStallCycles counts all fully-stalled cycles attributed to LLC
	// misses.
	FullStallCycles uint64
	// OtherStallCycles counts fully-idle cycles not attributable to LLC
	// misses (dependence chains, branch bubbles).
	OtherStallCycles uint64
	// Mem is a copy of the memory-system counters.
	Mem mem.SystemStats
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// StallFraction returns the fraction of cycles fully stalled on LLC
// misses — the paper's "Miss Latency (%Total Time)" metric of Table IV.
func (r *Result) StallFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.FullStallCycles) / float64(r.Cycles)
}

// StalledMissCount returns how many ground-truth misses produced at least
// one fully-stalled cycle (the events a stall-based detector can see).
func (r *Result) StalledMissCount() int {
	n := 0
	for i := range r.Misses {
		if r.Misses[i].Stalled {
			n++
		}
	}
	return n
}

// Core is the processor model bound to a memory system.
type Core struct {
	cfg Config
	ms  *mem.System

	sinks power.MultiSink

	// BatchCycles sets the granularity of the power fan-out: per-cycle
	// values are buffered and handed to the sinks in blocks of this many
	// cycles (block-capable sinks get one PushBlock call, plain sinks an
	// equivalent per-cycle stream — the observable result is identical
	// either way). 0 selects the default; 1 forces the per-cycle path.
	BatchCycles int
	batch       []float64

	// Exact disables event-driven skip-ahead, ticking every cycle through
	// the full fetch/issue/stall pipeline. This is the reference
	// implementation the skip-ahead path is property-tested and fuzzed
	// against; results are bit-identical either way, Exact is only slower.
	Exact bool

	// MaxCycles aborts runaway simulations (0 = unlimited).
	MaxCycles uint64

	// stallScratch is the reused stall-attribution set: the distinct miss
	// IDs overlapping the current stall interval (bounded by the record
	// window scanned per stall cycle, so linear membership tests beat a
	// freshly allocated map).
	stallScratch []int
}

// defaultBatchCycles amortises sink interface calls, filter updates and
// noise draws without holding a meaningful amount of memory (32 KiB).
const defaultBatchCycles = 4096

// scoreboardSize bounds Config.Regs so the run-time scoreboard can be a
// fixed array indexed with a mask (no per-operand bounds check in the
// issue path). Register numbers in valid traces are < Config.Regs.
const (
	scoreboardSize = 256
	scoreboardMask = scoreboardSize - 1
)

// New builds a core over the given memory system.
func New(cfg Config, ms *mem.System) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{cfg: cfg, ms: ms}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config, ms *mem.System) *Core {
	c, err := New(cfg, ms)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Mem returns the attached memory system.
func (c *Core) Mem() *mem.System { return c.ms }

// AddSink registers a per-cycle power consumer.
func (c *Core) AddSink(s power.Sink) { c.sinks = append(c.sinks, s) }

// opLatency returns the execution latency of op.
func (c *Core) opLatency(op sim.Op) int {
	switch op {
	case sim.OpIntMul:
		return c.cfg.IntMulLat
	case sim.OpIntDiv:
		return c.cfg.IntDivLat
	case sim.OpFPALU:
		return c.cfg.FPALULat
	case sim.OpFPMul:
		return c.cfg.FPMulLat
	case sim.OpFPDiv:
		return c.cfg.FPDivLat
	default:
		return c.cfg.IntALULat
	}
}

// fetchRing is the decoded-instruction buffer as a fixed-capacity ring
// (power-of-two sized, masked indexing). The previous slice
// representation (`fq = append(fq, ...)` paired with `fq = fq[1:]`)
// shrank the backing array's usable capacity on every pop, so append
// reallocated roughly once per fetched instruction — the single largest
// allocation source in the simulator. Out-of-order issue marks entries
// done via a per-slot bitmask rather than a field, keeping push a plain
// struct copy.
type fetchRing struct {
	buf  []sim.Inst
	mask int
	head int
	n    int
	done uint64 // bit per buffer slot: issued out of order
}

// newFetchRing sizes the ring for depth queued instructions.
func newFetchRing(depth int) fetchRing {
	size := 1
	for size < depth {
		size <<= 1
	}
	return fetchRing{buf: make([]sim.Inst, size), mask: size - 1}
}

// at returns slot i (0 = oldest).
func (r *fetchRing) at(i int) *sim.Inst {
	return &r.buf[(r.head+i)&r.mask]
}

// isDone reports whether slot i was already issued out of order.
func (r *fetchRing) isDone(i int) bool {
	return r.done&(1<<uint((r.head+i)&r.mask)) != 0
}

// markDone flags slot i as issued out of order.
func (r *fetchRing) markDone(i int) {
	r.done |= 1 << uint((r.head+i)&r.mask)
}

// push appends a newly fetched instruction.
func (r *fetchRing) push(in *sim.Inst) {
	idx := (r.head + r.n) & r.mask
	r.buf[idx] = *in
	r.done &^= 1 << uint(idx)
	r.n++
}

// pop removes the oldest entry.
func (r *fetchRing) pop() {
	r.head = (r.head + 1) & r.mask
	r.n--
}

// noWake means no future wake event was discovered this cycle.
const noWake = ^uint64(0)

// Run executes the workload stream to completion and returns the run
// summary with ground truth.
//
// Skip-ahead exactness: when a cycle is fully idle (nothing fetched,
// nothing issued), every decision the per-cycle loop would make on the
// following cycles is a pure function of unchanged state and the cycle
// number, and each comparison against the cycle number flips exactly when
// one of a small set of future timestamps is crossed: a blocking
// register's ready time, the head of the (sorted) load/store completion
// queues, the divider-free time, the front-end's fetchReady, or the
// earliest outstanding-miss completion. The loop collects every such
// timestamp it actually compared against while deciding this cycle was
// idle, takes the minimum, and replays the idle cycle analytically for the
// whole gap: stall/idle counters advance by the gap length, stall
// attribution is applied over the cycle range in closed form, and the
// (constant — no miss completes strictly inside the gap, so even the
// outstanding-miss count is frozen) idle power is emitted for every
// skipped cycle through the same batch boundaries push would produce.
func (c *Core) Run(stream sim.Stream) (*Result, error) {
	cfg := &c.cfg
	pw := &c.cfg.Power
	// stallPower is what Weights.Cycle returns for a fully-stalled cycle:
	// only Base and MissWait contribute, and the zero activity terms are
	// exact floating-point no-ops, so hoisting the sum out of the loop is
	// bit-identical.
	stallPower := pw.Base + pw.MissWait
	maxCycles := c.MaxCycles
	exact := c.Exact
	bs := c.BatchCycles
	if bs <= 0 {
		bs = defaultBatchCycles
	}
	if cap(c.batch) != bs || len(c.batch) != 0 {
		c.batch = make([]float64, 0, bs)
	}

	r := &runState{
		c:          c,
		ms:         c.ms,
		fq:         newFetchRing(cfg.FetchQueue),
		loadDone:   make([]uint64, 0, cfg.LoadQueue),
		storeDone:  make([]uint64, 0, cfg.StoreQueue),
		lastILine:  ^uint64(0),
		lineMask:   uint64(c.ms.L1I().Config().LineBytes - 1),
		missesLive: true,
		stallIDs:   c.stallScratch[:0],

		width:         cfg.Width,
		fqDepth:       cfg.FetchQueue,
		oooWindow:     cfg.OoOWindow,
		loadQ:         cfg.LoadQueue,
		storeQ:        cfg.StoreQueue,
		branchPenalty: uint64(cfg.BranchPenalty),
		latIntDiv:     uint64(cfg.IntDivLat),
		latFPDiv:      uint64(cfg.FPDivLat),
	}
	r.initOpTables(cfg)
	// The final partial batch must reach the sinks on every exit path —
	// normal termination and the MaxCycles abort alike — and the stall
	// scratch goes back to the core for reuse either way.
	defer r.finish()
	res := &Result{}

	// inp points at the next not-yet-decoded instruction: into the
	// stream's current block when it supports BlockStream (no per
	// instruction interface call or copy), or at next otherwise. nil
	// means nothing is buffered.
	//
	// With an in-order core over a BlockStream the fetch queue itself is
	// virtual: queued instructions are the window pending[vstart:pidx] of
	// the current block, so a fetch is a bounds check and an index
	// increment, not a struct copy into the ring. Entries still queued
	// when the block runs out are spilled into the ring (they are older
	// than anything fetched later, so ring-then-window preserves program
	// order); qn tracks the total queue length across both parts.
	// Out-of-order issue needs per-slot done bits, so it keeps copying
	// through the ring (virtualQ false, window always empty, qn == fq.n).
	var (
		inp     *sim.Inst
		next    sim.Inst
		pending []sim.Inst
		pidx    int
		vstart  int
		qn      int
	)
	bstream, blockOK := stream.(sim.BlockStream)
	virtualQ := blockOK && r.oooWindow <= 1

	for {
		r.wake = noWake
		now := r.now
		// --- Fetch ---
		r.fetchedThisCycle = false
		if !r.streamDone && r.fetchReady <= now {
			for qn < r.fqDepth {
				if inp == nil {
					if blockOK {
						if pidx >= len(pending) {
							// Spill still-queued window entries before
							// the block's memory is invalidated.
							for i := vstart; i < pidx; i++ {
								r.fq.push(&pending[i])
							}
							pending = bstream.NextBlock()
							pidx, vstart = 0, 0
							if len(pending) == 0 {
								r.streamDone = true
								break
							}
						}
						inp = &pending[pidx]
					} else {
						if !stream.Next(&next) {
							r.streamDone = true
							break
						}
						inp = &next
					}
				}
				line := inp.PC &^ r.lineMask
				if line != r.lastILine {
					rr := r.ms.Access(now, inp.PC, inp.PC, mem.KindInst)
					r.lastILine = line
					if !rr.L1Hit {
						r.missesLive = true
						// Fetch bubbles until the line arrives; L1I
						// contents were updated, so the next attempt hits.
						r.fetchReady = rr.Ready
						r.fetchWaitIsMiss = rr.LLCMiss || rr.Coalesced
						if r.fetchReady > now {
							break
						}
					}
				}
				if virtualQ {
					pidx++
				} else {
					r.fq.push(inp)
					if blockOK {
						pidx++
						vstart++
					}
				}
				qn++
				redirect := inp.Taken && inp.Op.IsCtl()
				inp = nil
				r.fetchedThisCycle = true
				if redirect {
					// Redirect: bubble the front-end.
					r.fetchReady = now + r.branchPenalty
					r.fetchWaitIsMiss = false
					r.lastILine = ^uint64(0)
					break
				}
				if qn >= r.fqDepth {
					break
				}
			}
		}
		if !r.streamDone && r.fetchReady > now {
			r.noteWake(r.fetchReady)
		}

		// --- Issue (up to Width; in order, or scoreboard-OoO within a
		// window when configured) ---
		r.act = power.Activity{FetchActive: r.fetchedThisCycle}
		r.issued = 0
		r.blockedByMiss = false

		if r.oooWindow <= 1 {
			// Pure in-order issue from the queue head (ring first — its
			// entries predate the window). The body below duplicates
			// tryIssue's operand checks and its simple-op default so the
			// common case issues without a call; ops with side effects
			// beyond the scoreboard (simpleLat 0) fall through to
			// tryIssue.
			for r.issued < r.width && qn > 0 {
				var in *sim.Inst
				if r.fq.n > 0 {
					in = r.fq.at(0)
				} else {
					in = &pending[vstart]
				}
				if in.Region != r.curRegion {
					r.enterRegion(in)
				}
				if t := r.regReady[in.Src1&scoreboardMask]; in.Src1 >= 0 && t > now {
					r.blockedByMiss = r.blockedByMiss || r.missReg[in.Src1&scoreboardMask]
					r.noteWake(t)
					break
				}
				if t := r.regReady[in.Src2&scoreboardMask]; in.Src2 >= 0 && t > now {
					r.blockedByMiss = r.blockedByMiss || r.missReg[in.Src2&scoreboardMask]
					r.noteWake(t)
					break
				}
				if lat := r.simpleLat[in.Op]; lat != 0 {
					switch r.simpleCnt[in.Op] {
					case cntIntALU:
						r.act.IntALU++
					case cntIntMulDiv:
						r.act.IntMulDiv++
					case cntFPALU:
						r.act.FPALU++
					case cntFPMulDiv:
						r.act.FPMulDiv++
					}
					if in.Dst >= 0 {
						r.regReady[in.Dst&scoreboardMask] = now + lat
						r.missReg[in.Dst&scoreboardMask] = false
					}
					r.issued++
					r.instructions++
					if r.fq.n > 0 {
						r.fq.pop()
					} else {
						vstart++
					}
					qn--
					continue
				}
				ok, _ := r.tryIssue(in)
				if !ok {
					break
				}
				if r.fq.n > 0 {
					r.fq.pop()
				} else {
					vstart++
				}
				qn--
			}
		} else {
			r.issueOoO()
			// Retire issued entries from the head.
			for r.fq.n > 0 && r.fq.isDone(0) {
				r.fq.pop()
				qn--
			}
		}
		if qn == 0 && r.fetchReady > now {
			// Front-end bubble: memory-attributable only for I-side
			// LLC misses.
			r.blockedByMiss = r.fetchWaitIsMiss
		}

		// --- Stall accounting & power ---
		outMisses := 0
		if r.missesLive {
			outMisses = r.ms.OutstandingMisses(now)
			if outMisses == 0 {
				r.missesLive = false
			}
		}
		r.act.Issued = float64(r.issued)
		r.act.MissesOut = float64(outMisses)

		fullyIdle := r.issued == 0 && !r.fetchedThisCycle
		memStall := fullyIdle && outMisses > 0 && r.blockedByMiss
		var cyclePower float64
		if memStall {
			r.fullStall++
			if !r.inStall {
				r.inStall = true
				r.curStall = StallInterval{Start: now, Region: r.curRegion}
				r.stallIDs = r.stallIDs[:0]
			}
			// Attribute every outstanding miss to this interval. Records
			// are detect-ordered; outstanding ones are always among the
			// most recent, so a bounded backward scan suffices.
			r.attributeStall(now, now+1)
			// Power: fully stalled core draws only its baseline.
			cyclePower = stallPower
		} else {
			if fullyIdle {
				r.otherStall++
			}
			r.closeStall()
			// An active unpipelined divider keeps switching even when no
			// instruction issues, so dependence stalls on a divide do not
			// look like memory stalls in the signal.
			if r.divFreeAt > now {
				r.act.IntMulDiv++
			}
			cyclePower = pw.CycleRef(&r.act)
		}
		// Inlined c.push: the method call (it carries a flush call) costs
		// more than the append on this, the hottest line in the loop.
		c.batch = append(c.batch, cyclePower)
		if len(c.batch) == cap(c.batch) {
			c.flushBatch()
		}

		// terminating mirrors the end-of-cycle termination condition; it
		// is hoisted above the skip because an idle-but-finished core
		// (e.g. a divider still draining with nothing waiting on it) must
		// stop now, not sleep until its wake event.
		terminating := false
		if r.streamDone && inp == nil && qn == 0 && outMisses == 0 {
			r.loadDone = popCompleted(r.loadDone, now)
			r.storeDone = popCompleted(r.storeDone, now)
			terminating = len(r.loadDone) == 0 && len(r.storeDone) == 0
		}

		// --- Event-driven skip-ahead ---
		if fullyIdle && !terminating && !exact {
			r.loadDone = popCompleted(r.loadDone, now)
			r.storeDone = popCompleted(r.storeDone, now)
			if len(r.loadDone) > 0 {
				r.noteWake(r.loadDone[0])
			}
			if len(r.storeDone) > 0 {
				r.noteWake(r.storeDone[0])
			}
			if r.divFreeAt > now {
				r.noteWake(r.divFreeAt)
			}
			if comp, ok := r.ms.OldestOutstanding(now); ok {
				r.noteWake(comp)
			}
			gapEnd := r.wake
			if maxCycles > 0 && gapEnd > maxCycles {
				// Clamp (also the no-event case: an idle core with no
				// wake event spins identically until the abort).
				gapEnd = maxCycles
			}
			if gapEnd != noWake && gapEnd > now+1 {
				gap := gapEnd - now - 1
				if memStall {
					r.fullStall += gap
					r.attributeStall(now+1, gapEnd)
				} else {
					r.otherStall += gap
				}
				c.pushN(cyclePower, gap)
				now = gapEnd - 1
			}
		}

		now++
		r.now = now
		if maxCycles > 0 && now >= maxCycles {
			return nil, fmt.Errorf("cpu %s: exceeded MaxCycles=%d", cfg.Name, c.MaxCycles)
		}

		// --- Termination ---
		if terminating {
			break
		}
	}

	r.closeStall()
	r.closeRegion()

	res.Cycles = r.now
	res.Instructions = r.instructions
	res.Stalls = r.stalls
	res.Misses = c.ms.Misses()
	res.RegionSpans = r.spans
	res.FullStallCycles = r.fullStall
	res.OtherStallCycles = r.otherStall
	res.Mem = c.ms.Stats()
	return res, nil
}

// cntNone and friends select which Activity counter a simple op bumps
// (see runState.initOpTables).
const (
	cntNone = iota
	cntIntALU
	cntIntMulDiv
	cntFPALU
	cntFPMulDiv
)

// runState is the flat hot-loop state of one Run. Earlier revisions kept
// this state in closure-captured locals; the compiler then boxed every
// captured variable in its own heap cell and each touch in the per-cycle
// loop paid an extra pointer chase. One struct keeps the fields
// contiguous and lets the helpers be ordinary methods.
type runState struct {
	c  *Core
	ms *mem.System

	// Scoreboard and queues. Fixed-size arrays (Validate bounds Regs by
	// scoreboardSize) let operand reads index with a mask and no bounds
	// check.
	regReady [scoreboardSize]uint64
	// missReg marks registers whose pending value comes from an LLC miss,
	// so idle cycles can be attributed to the memory system only when the
	// miss is actually what blocks progress.
	missReg [scoreboardSize]bool
	fq      fetchRing
	// loadDone/storeDone are kept sorted ascending, so completed entries
	// are a prefix and the earliest completion is the head.
	loadDone  []uint64
	storeDone []uint64

	now          uint64
	instructions uint64
	fetchReady   uint64
	divFreeAt    uint64
	lastILine    uint64
	lineMask     uint64
	// wake is the earliest future timestamp the current cycle's
	// decisions compared now against; the skip-ahead gap ends there.
	wake       uint64
	streamDone bool
	// fetchWaitIsMiss records whether the current front-end bubble is
	// due to an instruction-side LLC miss (as opposed to an LLC-hit
	// refill or a branch redirect).
	fetchWaitIsMiss bool
	// missesLive is false only when the memory system provably has no
	// outstanding misses: an L1 hit can never allocate or extend an MSHR,
	// so once OutstandingMisses reports zero the scan can be skipped
	// until some access misses L1 again.
	missesLive bool

	// Per-cycle issue state.
	act              power.Activity
	issued           int
	fetchedThisCycle bool
	// blockedByMiss records whether the reason issue stopped this
	// cycle is an outstanding LLC miss (dependence on a missing load,
	// or a memory queue clogged by one); idle cycles are attributed
	// to the memory system only then.
	blockedByMiss bool

	// Stall ground truth.
	inStall    bool
	curStall   StallInterval
	stallIDs   []int
	stalls     []StallInterval
	fullStall  uint64
	otherStall uint64

	// Region tracking.
	curRegion   uint16
	regionStart uint64
	spans       []sim.RegionSpan

	// Hoisted configuration.
	width         int
	fqDepth       int
	oooWindow     int
	loadQ         int
	storeQ        int
	branchPenalty uint64
	latIntDiv     uint64
	latFPDiv      uint64
	// simpleLat is the issue latency per op class for ops whose issue
	// touches only the scoreboard; 0 (never a real latency) marks ops
	// with side effects that must take tryIssue's explicit cases.
	// simpleCnt is the Activity counter the op bumps.
	simpleLat [256]uint64
	simpleCnt [256]uint8
}

// initOpTables fills the per-op issue tables. The entries mirror
// tryIssue's default branch (and the old opLatency fallback: unknown
// classes execute as single-cycle ALU ops with no unit activity).
func (r *runState) initOpTables(cfg *Config) {
	for op := range r.simpleLat {
		r.simpleLat[op] = uint64(cfg.IntALULat)
		r.simpleCnt[op] = cntNone
	}
	set := func(op sim.Op, lat int, cnt uint8) {
		r.simpleLat[op] = uint64(lat)
		r.simpleCnt[op] = cnt
	}
	set(sim.OpIntALU, cfg.IntALULat, cntIntALU)
	set(sim.OpBranch, cfg.IntALULat, cntIntALU)
	set(sim.OpCall, cfg.IntALULat, cntIntALU)
	set(sim.OpReturn, cfg.IntALULat, cntIntALU)
	set(sim.OpIntMul, cfg.IntMulLat, cntIntMulDiv)
	set(sim.OpFPALU, cfg.FPALULat, cntFPALU)
	set(sim.OpFPMul, cfg.FPMulLat, cntFPMulDiv)
	r.simpleLat[sim.OpLoad] = 0
	r.simpleLat[sim.OpStore] = 0
	r.simpleLat[sim.OpIntDiv] = 0
	r.simpleLat[sim.OpFPDiv] = 0
	r.simpleLat[sim.OpTouch] = 0
}

// finish returns the stall scratch to the core and flushes the last
// partial power batch; deferred in Run so both happen on every exit path.
func (r *runState) finish() {
	r.c.stallScratch = r.stallIDs[:0]
	r.c.flushBatch()
}

// noteWake records a future timestamp the current cycle compared now
// against; the earliest one bounds the skip-ahead gap.
func (r *runState) noteWake(t uint64) {
	if t > r.now && t < r.wake {
		r.wake = t
	}
}

// closeStall finalises the open stall interval, if any.
func (r *runState) closeStall() {
	if !r.inStall {
		return
	}
	r.curStall.End = r.now
	r.curStall.Stalled = r.now - r.curStall.Start
	r.curStall.Misses = len(r.stallIDs)
	r.stalls = append(r.stalls, r.curStall)
	r.inStall = false
}

// closeRegion finalises the current region span, if non-empty.
func (r *runState) closeRegion() {
	if r.now > r.regionStart {
		r.spans = append(r.spans, sim.RegionSpan{Region: r.curRegion, StartCycle: r.regionStart, EndCycle: r.now})
	}
}

// enterRegion switches region bookkeeping to in's region; callers guard
// on in.Region != r.curRegion.
func (r *runState) enterRegion(in *sim.Inst) {
	r.closeRegion()
	r.curRegion = in.Region
	r.regionStart = r.now
	r.ms.CurrentRegion = in.Region
}

// attributeStall applies the per-cycle stall attribution over the
// whole cycle range [from, to) in closed form: a miss record overlaps
// cycle t iff Detect <= t < Complete, so over the range its
// contribution is the clamp [max(Detect,from), min(Complete,to)).
// Running it per cycle (from+1 == to) reproduces the reference loop
// exactly; running it once per gap is equivalent because the record
// window (len(misses)) cannot change while the core is idle.
func (r *runState) attributeStall(from, to uint64) {
	misses := r.ms.Misses()
	lo := len(misses) - 64
	if lo < 0 {
		lo = 0
	}
	for id := len(misses) - 1; id >= lo; id-- {
		m := &misses[id]
		s, e := m.Detect, m.Complete
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if s >= e {
			continue
		}
		seen := false
		for _, sid := range r.stallIDs {
			if sid == id {
				seen = true
				break
			}
		}
		if !seen {
			r.stallIDs = append(r.stallIDs, id)
			if !m.Stalled {
				m.Stalled = true
				m.StallStart = s
			}
			if m.RefreshHit {
				r.curStall.RefreshHit = true
			}
		}
		m.StallEnd = e
	}
}

// tryIssue attempts to issue one instruction. It returns (true, _)
// when issued, or (false, structural) where structural is true when a
// structural resource (queue, divider) blocked it rather than an
// operand. Every comparison against a future timestamp notes it as a
// wake event for skip-ahead. The in-order loop in Run inlines the
// operand checks and the default branch; this full version serves
// out-of-order issue and the side-effecting op classes.
func (r *runState) tryIssue(in *sim.Inst) (bool, bool) {
	now := r.now
	if t := r.regReady[in.Src1&scoreboardMask]; in.Src1 >= 0 && t > now {
		r.blockedByMiss = r.blockedByMiss || r.missReg[in.Src1&scoreboardMask]
		r.noteWake(t)
		return false, false
	}
	if t := r.regReady[in.Src2&scoreboardMask]; in.Src2 >= 0 && t > now {
		r.blockedByMiss = r.blockedByMiss || r.missReg[in.Src2&scoreboardMask]
		r.noteWake(t)
		return false, false
	}
	switch in.Op {
	case sim.OpTouch:
		// Warm install: no timing, no miss record.
		r.ms.WarmLine(in.Addr, false)
	case sim.OpLoad:
		if len(r.loadDone) >= r.loadQ {
			r.loadDone = popCompleted(r.loadDone, now)
		}
		if len(r.loadDone) >= r.loadQ {
			r.blockedByMiss = r.blockedByMiss || r.ms.OutstandingMisses(now) > 0
			r.noteWake(r.loadDone[0])
			return false, true
		}
		rr := r.ms.Access(now, in.PC, in.Addr, mem.KindLoad)
		if !rr.L1Hit {
			r.missesLive = true
		}
		if in.Dst >= 0 {
			r.regReady[in.Dst&scoreboardMask] = rr.Ready
			r.missReg[in.Dst&scoreboardMask] = rr.LLCMiss || rr.Coalesced
		}
		r.loadDone = insertDone(r.loadDone, rr.Ready)
		r.act.MemAccesses++
	case sim.OpStore:
		if len(r.storeDone) >= r.storeQ {
			r.storeDone = popCompleted(r.storeDone, now)
		}
		if len(r.storeDone) >= r.storeQ {
			r.blockedByMiss = r.blockedByMiss || r.ms.OutstandingMisses(now) > 0
			r.noteWake(r.storeDone[0])
			return false, true
		}
		rr := r.ms.Access(now, in.PC, in.Addr, mem.KindStore)
		if !rr.L1Hit {
			r.missesLive = true
		}
		r.storeDone = insertDone(r.storeDone, rr.Ready)
		r.act.MemAccesses++
	case sim.OpIntDiv, sim.OpFPDiv:
		// Unpipelined divider.
		if r.divFreeAt > now {
			r.noteWake(r.divFreeAt)
			return false, true
		}
		lat := r.latIntDiv
		if in.Op == sim.OpFPDiv {
			lat = r.latFPDiv
		}
		r.divFreeAt = now + lat
		if in.Dst >= 0 {
			r.regReady[in.Dst&scoreboardMask] = now + lat
			r.missReg[in.Dst&scoreboardMask] = false
		}
		if in.Op == sim.OpIntDiv {
			r.act.IntMulDiv++
		} else {
			r.act.FPMulDiv++
		}
	default:
		lat := r.simpleLat[in.Op]
		switch r.simpleCnt[in.Op] {
		case cntIntALU:
			r.act.IntALU++
		case cntIntMulDiv:
			r.act.IntMulDiv++
		case cntFPALU:
			r.act.FPALU++
		case cntFPMulDiv:
			r.act.FPMulDiv++
		}
		if in.Dst >= 0 {
			r.regReady[in.Dst&scoreboardMask] = now + lat
			r.missReg[in.Dst&scoreboardMask] = false
		}
	}
	r.issued++
	r.instructions++
	return true, false
}

// issueOoO performs scoreboard out-of-order issue within the configured
// window: any ready instruction in the first OoOWindow slots may issue,
// except that (a) memory operations stay in program order relative to
// each other, (b) control transfers issue only from the oldest unissued
// slot, and (c) WAW/WAR hazards against older unissued instructions block
// a younger one.
func (r *runState) issueOoO() {
	window := r.oooWindow
	if window > r.fq.n {
		window = r.fq.n
	}
	memBlocked := false
	for slot := 0; slot < window && r.issued < r.width; slot++ {
		if r.fq.isDone(slot) {
			continue
		}
		in := r.fq.at(slot)
		// Memory order: a younger memory op waits for all older ones.
		if in.Op.IsMem() && memBlocked {
			continue
		}
		// Control transfers only issue from the oldest unissued slot.
		oldest := true
		for k := 0; k < slot; k++ {
			if !r.fq.isDone(k) {
				oldest = false
				break
			}
		}
		if in.Op.IsCtl() && !oldest {
			if in.Op.IsMem() {
				memBlocked = true
			}
			continue
		}
		// WAW/WAR against older unissued instructions.
		hazard := false
		for k := 0; k < slot && !hazard; k++ {
			if r.fq.isDone(k) {
				continue
			}
			old := r.fq.at(k)
			if in.Dst >= 0 && (old.Dst == in.Dst || old.Src1 == in.Dst || old.Src2 == in.Dst) {
				hazard = true
			}
		}
		if hazard {
			if in.Op.IsMem() {
				memBlocked = true
			}
			continue
		}
		if oldest && in.Region != r.curRegion {
			r.enterRegion(in)
		}
		ok, _ := r.tryIssue(in)
		if ok {
			r.fq.markDone(slot)
		} else if in.Op.IsMem() {
			memBlocked = true
		}
	}
}

// push buffers one cycle's power; full batches fan out to the sinks as a
// block. The buffer is sized in Run, so a full batch is cap(c.batch).
func (c *Core) push(p float64) {
	c.batch = append(c.batch, p)
	if len(c.batch) == cap(c.batch) {
		c.flushBatch()
	}
}

// pushN buffers n consecutive cycles of the same power value, flushing at
// exactly the batch boundaries the per-cycle push would hit, so sinks see
// identical PushBlock call sequences either way.
func (c *Core) pushN(p float64, n uint64) {
	for n > 0 {
		room := uint64(cap(c.batch) - len(c.batch))
		if room > n {
			room = n
		}
		base := len(c.batch)
		c.batch = c.batch[:base+int(room)]
		fill := c.batch[base:]
		for i := range fill {
			fill[i] = p
		}
		if len(c.batch) == cap(c.batch) {
			c.flushBatch()
		}
		n -= room
	}
}

// flushBatch delivers any buffered cycles to the sinks.
func (c *Core) flushBatch() {
	if len(c.batch) > 0 {
		c.sinks.PushBlock(c.batch)
		c.batch = c.batch[:0]
	}
}

// popCompleted removes the completed prefix (done <= now) of a sorted
// completion queue.
func popCompleted(q []uint64, now uint64) []uint64 {
	k := 0
	for k < len(q) && q[k] <= now {
		k++
	}
	if k == 0 {
		return q
	}
	return q[:copy(q, q[k:])]
}

// insertDone inserts v into the sorted completion queue.
func insertDone(q []uint64, v uint64) []uint64 {
	q = append(q, v)
	i := len(q) - 1
	for i > 0 && q[i-1] > v {
		q[i] = q[i-1]
		i--
	}
	q[i] = v
	return q
}
