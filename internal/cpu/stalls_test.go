package cpu

import (
	"testing"
	"testing/quick"
)

func iv(start, end uint64, misses int) StallInterval {
	return StallInterval{Start: start, End: end, Stalled: end - start, Misses: misses}
}

func TestMergeStallsAdjacent(t *testing.T) {
	in := []StallInterval{iv(0, 10, 1), iv(12, 20, 1), iv(100, 110, 2)}
	out := MergeStalls(in, 4)
	if len(out) != 2 {
		t.Fatalf("merged %d, want 2: %+v", len(out), out)
	}
	if out[0].Start != 0 || out[0].End != 20 || out[0].Misses != 2 {
		t.Fatalf("first merged %+v", out[0])
	}
	if out[0].Stalled != 18 {
		t.Fatalf("merged stalled %d, want 18 (gap excluded)", out[0].Stalled)
	}
	if out[1].Start != 100 {
		t.Fatalf("second merged %+v", out[1])
	}
}

func TestMergeStallsNoMergeBeyondGap(t *testing.T) {
	in := []StallInterval{iv(0, 10, 1), iv(20, 30, 1)}
	if out := MergeStalls(in, 4); len(out) != 2 {
		t.Fatalf("gap 10 > 4 must not merge: %+v", out)
	}
	if out := MergeStalls(in, 10); len(out) != 1 {
		t.Fatalf("gap 10 <= 10 must merge: %+v", out)
	}
}

func TestMergeStallsRefreshPropagates(t *testing.T) {
	in := []StallInterval{
		{Start: 0, End: 10, Stalled: 10},
		{Start: 11, End: 20, Stalled: 9, RefreshHit: true},
	}
	out := MergeStalls(in, 5)
	if len(out) != 1 || !out[0].RefreshHit {
		t.Fatalf("refresh flag lost: %+v", out)
	}
}

func TestMergeStallsEmpty(t *testing.T) {
	if MergeStalls(nil, 10) != nil {
		t.Fatal("merging nothing must return nil")
	}
}

// TestMergeStallsProperties checks the core invariants on arbitrary
// ordered interval lists: total stalled cycles are preserved, output is
// ordered and non-overlapping, and no output gap is <= maxGap.
func TestMergeStallsProperties(t *testing.T) {
	f := func(gaps []uint16, lens []uint16, maxGapRaw uint8) bool {
		maxGap := uint64(maxGapRaw % 32)
		var in []StallInterval
		pos := uint64(0)
		n := len(gaps)
		if len(lens) < n {
			n = len(lens)
		}
		for i := 0; i < n; i++ {
			pos += uint64(gaps[i]%64) + 1
			l := uint64(lens[i]%64) + 1
			in = append(in, iv(pos, pos+l, 1))
			pos += l
		}
		if len(in) == 0 {
			return MergeStalls(in, maxGap) == nil
		}
		out := MergeStalls(in, maxGap)
		var sumIn, sumOut uint64
		for _, s := range in {
			sumIn += s.Stalled
		}
		for i, s := range out {
			sumOut += s.Stalled
			if s.End < s.Start {
				return false
			}
			if i > 0 && s.Start <= out[i-1].End+maxGap {
				return false // should have merged
			}
		}
		return sumIn == sumOut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStalledCyclesFallback(t *testing.T) {
	s := StallInterval{Start: 5, End: 25}
	if s.StalledCycles() != 20 {
		t.Fatalf("fallback %d, want span 20", s.StalledCycles())
	}
	s.Stalled = 12
	if s.StalledCycles() != 12 {
		t.Fatalf("explicit %d, want 12", s.StalledCycles())
	}
}

func TestFilterStalls(t *testing.T) {
	in := []StallInterval{iv(0, 10, 1), iv(50, 60, 1), iv(100, 110, 1)}
	out := FilterStalls(in, 40, 100)
	if len(out) != 1 || out[0].Start != 50 {
		t.Fatalf("filtered %+v", out)
	}
}

func TestTotalStallCycles(t *testing.T) {
	in := []StallInterval{iv(0, 10, 1), iv(50, 65, 1)}
	if got := TotalStallCycles(in); got != 25 {
		t.Fatalf("total %d, want 25", got)
	}
}
