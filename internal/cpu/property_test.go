package cpu

import (
	"testing"
	"testing/quick"

	"emprof/internal/mem"
	"emprof/internal/sim"
)

// randomProgram builds a random but well-formed instruction sequence from
// a seed: mixed op classes, bounded dependence chains, loop-local PCs,
// and data addresses spanning hit and miss territory.
func randomProgram(seed uint64, n int) []sim.Inst {
	rng := sim.NewRNG(seed)
	insts := make([]sim.Inst, 0, n)
	for i := 0; i < n; i++ {
		in := sim.Inst{
			PC:   uint64(0x1000 + (i%128)*4),
			Dst:  int16(24 + rng.Intn(16)),
			Src1: sim.RegNone,
			Src2: sim.RegNone,
		}
		switch rng.Intn(10) {
		case 0, 1:
			in.Op = sim.OpLoad
			in.Dst = int16(8 + rng.Intn(8))
			in.Addr = uint64(rng.Intn(4 << 20))
			in.Size = 4
		case 2:
			in.Op = sim.OpStore
			in.Addr = uint64(rng.Intn(4 << 20))
			in.Size = 4
			in.Dst = sim.RegNone
		case 3:
			in.Op = sim.OpFPALU
		case 4:
			in.Op = sim.OpIntMul
		case 5:
			in.Op = sim.OpBranch
			in.Taken = rng.Intn(3) == 0
			in.Target = uint64(0x1000 + rng.Intn(128)*4)
		default:
			in.Op = sim.OpIntALU
		}
		if rng.Intn(3) == 0 && in.Op != sim.OpStore {
			in.Src1 = int16(24 + rng.Intn(16))
		}
		insts = append(insts, in)
	}
	return insts
}

// TestRunInvariants checks, over random programs and core shapes, the
// properties every simulation must satisfy: all instructions retire, the
// cycle count respects the issue-width bound, stalls stay inside the run,
// stall accounting is internally consistent, and runs are deterministic.
func TestRunInvariants(t *testing.T) {
	f := func(seed uint64, widthRaw, windowRaw uint8) bool {
		width := int(widthRaw%4) + 1
		window := int(windowRaw % 24)
		n := 3000

		mk := func() *Result {
			ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(seed), false)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testCPUConfig(width)
			cfg.FetchQueue = 32
			cfg.OoOWindow = window
			c, err := New(cfg, ms)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(sim.NewSliceStream(randomProgram(seed, n)))
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		res := mk()

		// Every instruction retires exactly once.
		if res.Instructions != uint64(n) {
			t.Logf("retired %d of %d", res.Instructions, n)
			return false
		}
		// The core cannot beat its issue width.
		if res.Cycles < uint64(n/width) {
			t.Logf("cycles %d below width bound %d", res.Cycles, n/width)
			return false
		}
		// Stall intervals are ordered, non-overlapping, inside the run,
		// and sum to the fully-stalled cycle count.
		var sum uint64
		prevEnd := uint64(0)
		for _, s := range res.Stalls {
			if s.Start < prevEnd || s.End <= s.Start || s.End > res.Cycles {
				t.Logf("bad interval %+v (prevEnd %d, cycles %d)", s, prevEnd, res.Cycles)
				return false
			}
			prevEnd = s.End
			sum += s.Stalled
		}
		if sum != res.FullStallCycles {
			t.Logf("interval sum %d != full stall cycles %d", sum, res.FullStallCycles)
			return false
		}
		// Stall fraction is a fraction.
		if res.StallFraction() < 0 || res.StallFraction() > 1 {
			return false
		}
		// Every stalled miss has a coherent attribution window.
		for _, m := range res.Misses {
			if m.Complete < m.Detect {
				return false
			}
			if m.Stalled && (m.StallEnd <= m.StallStart || m.StallStart < m.Detect) {
				t.Logf("bad miss attribution %+v", m)
				return false
			}
		}
		// Determinism.
		res2 := mk()
		if res2.Cycles != res.Cycles || res2.FullStallCycles != res.FullStallCycles ||
			len(res2.Misses) != len(res.Misses) {
			t.Log("nondeterministic run")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestOoONeverSlower checks that enabling the out-of-order window never
// increases total execution time on random programs (it can only find
// more work to do per cycle).
func TestOoONeverSlower(t *testing.T) {
	f := func(seed uint64) bool {
		run := func(window int) uint64 {
			ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(1), false)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testCPUConfig(2)
			cfg.FetchQueue = 32
			cfg.OoOWindow = window
			c, err := New(cfg, ms)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(sim.NewSliceStream(randomProgram(seed, 2000)))
			if err != nil {
				t.Fatal(err)
			}
			return res.Cycles
		}
		inOrder, ooo := run(0), run(16)
		// Allow a tiny slack: the OoO core's issue choices can shift a
		// DRAM bank/refresh collision by a few cycles.
		return ooo <= inOrder+inOrder/50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
