package cpu

// MergeStalls coalesces ground-truth stall intervals separated by at most
// maxGap cycles into single events. The pipeline occasionally interrupts a
// long memory stall for a cycle or two (a fetch slot opens, one queued
// instruction issues); physically that is still one stall, and no
// band-limited signal can resolve the interruption, so validation compares
// EMPROF against intervals merged at the signal's cycle resolution.
func MergeStalls(stalls []StallInterval, maxGap uint64) []StallInterval {
	if len(stalls) == 0 {
		return nil
	}
	out := make([]StallInterval, 0, len(stalls))
	cur := stalls[0]
	for _, s := range stalls[1:] {
		if s.Start <= cur.End+maxGap {
			cur.End = s.End
			cur.Stalled += s.Stalled
			cur.Misses += s.Misses
			cur.RefreshHit = cur.RefreshHit || s.RefreshHit
			continue
		}
		out = append(out, cur)
		cur = s
	}
	return append(out, cur)
}

// StalledCycles returns the interval's fully-stalled cycle count (falling
// back to the span for intervals built before merging).
func (s StallInterval) StalledCycles() uint64 {
	if s.Stalled > 0 {
		return s.Stalled
	}
	return s.Cycles()
}

// FilterStalls returns the intervals whose start lies in [lo, hi).
func FilterStalls(stalls []StallInterval, lo, hi uint64) []StallInterval {
	var out []StallInterval
	for _, s := range stalls {
		if s.Start >= lo && s.Start < hi {
			out = append(out, s)
		}
	}
	return out
}

// TotalStallCycles sums the intervals' fully-stalled cycles.
func TotalStallCycles(stalls []StallInterval) uint64 {
	var n uint64
	for _, s := range stalls {
		n += s.StalledCycles()
	}
	return n
}
