package cpu

import (
	"testing"

	"emprof/internal/mem"
	"emprof/internal/sim"
)

func newOoOCore(t *testing.T, width, window int) *Core {
	t.Helper()
	ms, err := mem.NewSystem(testMemConfig(), sim.NewRNG(1), false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCPUConfig(width)
	cfg.FetchQueue = 32
	cfg.OoOWindow = window
	c, err := New(cfg, ms)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// missThenWork builds a consumer-blocked load followed by independent
// work: an in-order core stalls for the full miss; an OoO core keeps
// issuing the independent instructions past the blocked consumer.
func missThenWork(n int) []sim.Inst {
	insts := []sim.Inst{
		{PC: 0x1000, Op: sim.OpLoad, Dst: 8, Src1: sim.RegNone, Addr: 0x100000, Size: 4},
		{PC: 0x1004, Op: sim.OpIntALU, Dst: 9, Src1: 8}, // blocked consumer
	}
	return append(insts, aluChain(n, false)...)
}

func TestOoOHidesMissLatency(t *testing.T) {
	inOrder := newOoOCore(t, 2, 0)
	resIn := runWarm(t, inOrder, missThenWork(400))

	ooo := newOoOCore(t, 2, 24)
	resOoO := runWarm(t, ooo, missThenWork(400))

	if resOoO.FullStallCycles >= resIn.FullStallCycles {
		t.Fatalf("OoO stall cycles %d not below in-order %d",
			resOoO.FullStallCycles, resIn.FullStallCycles)
	}
	if resOoO.Cycles >= resIn.Cycles {
		t.Fatalf("OoO run %d cycles not faster than in-order %d",
			resOoO.Cycles, resIn.Cycles)
	}
	// The paper's Section II-B point: the OoO core averts the full stall
	// for tens of cycles longer. With a 24-entry window past the blocked
	// consumer, most of the ~216-cycle miss should still stall (window
	// drains), but noticeably less than in-order.
	if resIn.FullStallCycles-resOoO.FullStallCycles < 10 {
		t.Fatalf("OoO hid only %d cycles", resIn.FullStallCycles-resOoO.FullStallCycles)
	}
}

func TestOoOPreservesDependences(t *testing.T) {
	// A fully dependent chain cannot go faster out of order.
	inOrder := newOoOCore(t, 4, 0)
	a := runWarm(t, inOrder, aluChain(2000, true))
	ooo := newOoOCore(t, 4, 24)
	b := runWarm(t, ooo, aluChain(2000, true))
	diff := int64(a.Cycles) - int64(b.Cycles)
	if diff < -5 || diff > 5 {
		t.Fatalf("dependent chain cycles differ: in-order %d vs OoO %d", a.Cycles, b.Cycles)
	}
}

func TestOoOKeepsMemoryInOrder(t *testing.T) {
	// A store to a line followed by a load of the same line: the load
	// must not bypass the store even when the store is blocked.
	c := newOoOCore(t, 2, 16)
	var insts []sim.Inst
	// Fill the store queue with misses so the next store blocks.
	for i := 0; i < 6; i++ {
		insts = append(insts, sim.Inst{
			PC: uint64(0x1000 + i*4), Op: sim.OpStore, Src1: sim.RegNone,
			Addr: uint64(0x100000 + i*0x10800), Size: 4,
		})
	}
	insts = append(insts, sim.Inst{PC: 0x1100, Op: sim.OpLoad, Dst: 8, Src1: sim.RegNone, Addr: 0x300000, Size: 4})
	insts = append(insts, aluChain(100, false)...)
	res := runWarm(t, c, insts)
	// Ordering is not directly observable from timings alone here; the
	// invariant we check is that all memory ops executed (misses recorded
	// for each distinct line) and the run completed deterministically.
	if len(res.Misses) < 7 {
		t.Fatalf("misses %d, want >= 7", len(res.Misses))
	}
}

func TestOoOWAWHazard(t *testing.T) {
	// Two writers of the same register with a slow first writer: the
	// second writer must not issue first (it would corrupt the consumer's
	// ready time). We detect the hazard by checking cycle counts stay
	// consistent with serialised writes.
	c := newOoOCore(t, 2, 16)
	insts := []sim.Inst{
		{PC: 0x1000, Op: sim.OpIntDiv, Dst: 9, Src1: sim.RegNone}, // slow writer
		{PC: 0x1004, Op: sim.OpIntALU, Dst: 9, Src1: sim.RegNone}, // WAW on r9
		{PC: 0x1008, Op: sim.OpIntALU, Dst: 10, Src1: 9},          // consumer
	}
	insts = append(insts, aluChain(50, false)...)
	res := runWarm(t, c, insts)
	if res.Instructions != uint64(len(insts)) {
		t.Fatalf("instructions %d, want %d", res.Instructions, len(insts))
	}
}

func TestOoOWindowValidation(t *testing.T) {
	cfg := testCPUConfig(2)
	cfg.OoOWindow = cfg.FetchQueue + 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("window larger than fetch queue accepted")
	}
	cfg.OoOWindow = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestOoODeterministic(t *testing.T) {
	run := func() *Result {
		c := newOoOCore(t, 2, 16)
		return runWarm(t, c, missThenWork(300))
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.FullStallCycles != b.FullStallCycles {
		t.Fatal("OoO execution not deterministic")
	}
}
