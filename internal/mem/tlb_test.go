package mem

import (
	"testing"

	"emprof/internal/sim"
)

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Lookup(1) {
		t.Fatal("cold TLB must miss")
	}
	if !tlb.Lookup(1) {
		t.Fatal("second access must hit")
	}
	s := tlb.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTLBLRUReplacement(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Lookup(1)
	tlb.Lookup(2)
	tlb.Lookup(1) // 2 is now LRU
	tlb.Lookup(3) // evicts 2
	if !tlb.Lookup(1) {
		t.Fatal("1 must survive")
	}
	if tlb.Lookup(2) {
		t.Fatal("2 must have been evicted")
	}
}

func TestTLBInsert(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Insert(9)
	if tlb.Stats().Accesses != 0 {
		t.Fatal("Insert must not count as an access")
	}
	if !tlb.Lookup(9) {
		t.Fatal("inserted translation must hit")
	}
}

func TestNewTLBDisabled(t *testing.T) {
	if NewTLB(0) != nil {
		t.Fatal("zero entries must return nil")
	}
}

func TestSystemTLBPenalty(t *testing.T) {
	cfg := testConfig(false)
	cfg.TLBEntries = 4
	cfg.TLBPenalty = 30
	s := MustNewSystem(cfg, newRNG(), false)

	// First access to a page: TLB miss adds the page-walk penalty.
	r1 := s.Access(1000, 0x100, 0x8000, KindLoad)
	// Same page again after warming L1: only the L1 latency.
	r2 := s.Access(50000, 0x100, 0x8000, KindLoad)
	if r2.Ready != 50000+2 {
		t.Fatalf("warm access ready %d, want %d", r2.Ready, 50002)
	}
	// The first access paid the penalty before its miss path.
	if r1.Ready < 1000+30+2+10+200 {
		t.Fatalf("cold access ready %d did not include the page walk", r1.Ready)
	}
	if s.Stats().TLBMisses != 1 {
		t.Fatalf("TLB misses %d, want 1", s.Stats().TLBMisses)
	}
}

func TestSystemTLBWarmLineInstalls(t *testing.T) {
	cfg := testConfig(false)
	cfg.TLBEntries = 4
	cfg.TLBPenalty = 30
	s := MustNewSystem(cfg, newRNG(), false)
	s.WarmLine(0x8000, false)
	s.Access(1000, 0x100, 0x8040, KindLoad) // same page
	if s.Stats().TLBMisses != 0 {
		t.Fatal("warmed page must not TLB-miss")
	}
}

func TestSystemInstFetchSkipsTLB(t *testing.T) {
	cfg := testConfig(false)
	cfg.TLBEntries = 2
	cfg.TLBPenalty = 30
	s := MustNewSystem(cfg, newRNG(), false)
	s.Access(1000, 0x4000, 0x4000, KindInst)
	if s.Stats().TLBMisses != 0 {
		t.Fatal("instruction fetches use the (unmodelled) ITLB, not the DTLB")
	}
}

// newRNG is a tiny helper for TLB tests.
func newRNG() *sim.RNG { return sim.NewRNG(1) }
