package dram

import "testing"

func testConfig() Config {
	return Config{
		Banks: 4, RowBytes: 2048,
		RowHit: 50, RowMiss: 200, BusOccupancy: 20,
		RefreshInterval: 70000, RefreshDuration: 2200,
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Banks = 3 },
		func(c *Config) { c.RowBytes = 1000 },
		func(c *Config) { c.RowHit = 0 },
		func(c *Config) { c.RowMiss = 10 },
		func(c *Config) { c.BusOccupancy = 0 },
		func(c *Config) { c.RefreshDuration = 0 },
	}
	for i, mut := range cases {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, c)
		}
	}
}

func TestRowHitVsMiss(t *testing.T) {
	d := MustNew(testConfig(), false)
	// First access opens the row: row-miss latency.
	done, _ := d.Access(10000, 0x1000, BurstRead)
	if done != 10000+200 {
		t.Fatalf("first access done at %d, want %d", done, 10200)
	}
	// Second access in the same row after the bank frees: row hit.
	done2, _ := d.Access(done+100, 0x1040, BurstRead)
	if done2 != done+100+50 {
		t.Fatalf("row hit done at %d, want %d", done2, done+150)
	}
	s := d.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 || s.Reads != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	d := MustNew(testConfig(), false)
	// Two same-bank requests issued in the same cycle: the second must
	// start after the first's bus occupancy.
	d1, _ := d.Access(10000, 0x0, BurstRead)
	d2, _ := d.Access(10000, 0x40, BurstRead) // same row, same bank
	if d2 <= d1-150 {
		t.Fatalf("second access done %d too early (first %d)", d2, d1)
	}
	if d2 != 10000+20+50 {
		t.Fatalf("second access done %d, want start+bus+rowhit=%d", d2, 10070)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	d := MustNew(testConfig(), false)
	// Rows map to banks via addr/RowBytes % Banks.
	d1, _ := d.Access(10000, 0, BurstRead)
	d2, _ := d.Access(10000, 2048, BurstRead) // next bank
	if d1 != d2 {
		t.Fatalf("independent banks should complete together: %d vs %d", d1, d2)
	}
}

func TestRefreshDelaysColliding(t *testing.T) {
	d := MustNew(testConfig(), false)
	// Request inside the refresh window starting at 70000.
	done, hit := d.Access(70100, 0x0, BurstRead)
	if !hit {
		t.Fatal("request inside refresh window must report refreshHit")
	}
	wantStart := uint64(70000 + 2200)
	if done != wantStart+200 {
		t.Fatalf("done %d, want %d", done, wantStart+200)
	}
	if d.Stats().RefreshHits != 1 {
		t.Fatalf("refresh hits %d", d.Stats().RefreshHits)
	}
}

func TestRefreshOutsideWindowUnaffected(t *testing.T) {
	d := MustNew(testConfig(), false)
	done, hit := d.Access(75000, 0x0, BurstRead)
	if hit || done != 75200 {
		t.Fatalf("non-colliding request delayed: done=%d hit=%v", done, hit)
	}
}

func TestInRefresh(t *testing.T) {
	d := MustNew(testConfig(), false)
	if d.InRefresh(75000) {
		t.Fatal("75000 is outside the refresh window")
	}
	if !d.InRefresh(70000) || !d.InRefresh(72199) {
		t.Fatal("refresh window not recognised")
	}
	// Refresh disabled.
	cfg := testConfig()
	cfg.RefreshInterval = 0
	cfg.RefreshDuration = 0
	d2 := MustNew(cfg, false)
	if d2.InRefresh(0) {
		t.Fatal("refresh disabled but InRefresh true")
	}
}

func TestBurstRecording(t *testing.T) {
	d := MustNew(testConfig(), true)
	d.Access(100, 0, BurstRead)
	d.Access(400, 4096, BurstWrite)
	d.Access(800, 8192, BurstPrefetch)
	bursts := d.Bursts()
	if len(bursts) != 3 {
		t.Fatalf("%d bursts recorded, want 3", len(bursts))
	}
	if bursts[0].Kind != BurstRead || bursts[1].Kind != BurstWrite || bursts[2].Kind != BurstPrefetch {
		t.Fatalf("burst kinds wrong: %+v", bursts)
	}
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Prefetches != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBurstRecordingDisabled(t *testing.T) {
	d := MustNew(testConfig(), false)
	d.Access(100, 0, BurstRead)
	if d.Bursts() != nil {
		t.Fatal("bursts recorded while disabled")
	}
}

func TestRefreshSpanRecorded(t *testing.T) {
	d := MustNew(testConfig(), true)
	d.Access(70100, 0, BurstRead)
	found := false
	for _, b := range d.Bursts() {
		if b.Kind == BurstRefresh && b.Start == 70000 && b.End == 72200 {
			found = true
		}
	}
	if !found {
		t.Fatalf("refresh span missing from bursts: %+v", d.Bursts())
	}
}

func TestActivitySeries(t *testing.T) {
	bursts := []Burst{
		{Start: 0, End: 10, Kind: BurstRead},   // fills sample 0 fully
		{Start: 25, End: 30, Kind: BurstWrite}, // half of sample 2
	}
	s := ActivitySeries(bursts, 40, 10)
	if len(s) != 5 {
		t.Fatalf("series length %d, want 5", len(s))
	}
	if s[0] != 1.0 {
		t.Fatalf("sample 0 = %v, want 1.0", s[0])
	}
	if s[1] != 0 {
		t.Fatalf("sample 1 = %v, want 0", s[1])
	}
	if s[2] != 0.5 {
		t.Fatalf("sample 2 = %v, want 0.5", s[2])
	}
}

func TestActivitySeriesClamps(t *testing.T) {
	bursts := []Burst{
		{Start: 0, End: 10, Kind: BurstRead},
		{Start: 0, End: 10, Kind: BurstRead},
	}
	s := ActivitySeries(bursts, 10, 10)
	if s[0] > 1 {
		t.Fatalf("activity %v exceeds 1", s[0])
	}
}

func TestBurstKindString(t *testing.T) {
	if BurstRead.String() != "read" || BurstRefresh.String() != "refresh" {
		t.Fatal("burst kind names wrong")
	}
	if BurstKind(9).String() != "kind(9)" {
		t.Fatal("unknown kind name wrong")
	}
}
