// Package dram models the main memory of the profiled device: banked DRAM
// with open-row timing, a bounded activity trace of column accesses (the
// source of the memory-probe EM signal in the paper's Fig. 10), and the
// periodic refresh behaviour responsible for the paper's Fig. 5
// observation — an LLC miss that collides with refresh stalls for 2–3 µs,
// and such collisions recur at least every ~70 µs on the Olimex board's
// H5TQ2G63BFR SDRAM.
package dram

import (
	"fmt"
	"math/bits"
)

// Config describes the DRAM timing in CPU cycles (the simulator runs a
// single clock domain; device configs convert from nanoseconds using the
// core clock).
type Config struct {
	// Banks is the number of independent banks (power of two).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// RowHit is the latency of a column access to an open row (tCAS +
	// transfer), in cycles.
	RowHit int
	// RowMiss is the latency when the row must be opened (tRP + tRCD +
	// tCAS + transfer), in cycles.
	RowMiss int
	// BusOccupancy is how long a request occupies its bank, in cycles.
	BusOccupancy int
	// RefreshInterval is the period between refresh windows, in cycles
	// (≈70 µs worth of cycles for the Olimex device, per the paper).
	RefreshInterval int
	// RefreshDuration is how long a refresh window blocks the device, in
	// cycles (≈2–3 µs worth).
	RefreshDuration int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("dram: banks %d not a power of two", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row bytes %d not a power of two", c.RowBytes)
	}
	if c.RowHit <= 0 || c.RowMiss < c.RowHit {
		return fmt.Errorf("dram: invalid row latencies hit=%d miss=%d", c.RowHit, c.RowMiss)
	}
	if c.BusOccupancy <= 0 {
		return fmt.Errorf("dram: bus occupancy %d <= 0", c.BusOccupancy)
	}
	if c.RefreshInterval > 0 && c.RefreshDuration <= 0 {
		return fmt.Errorf("dram: refresh interval set but duration %d <= 0", c.RefreshDuration)
	}
	return nil
}

// Burst records one period of memory activity, used to synthesize the
// memory-side EM signal.
type Burst struct {
	Start uint64
	End   uint64
	// Kind distinguishes demand reads, writebacks, prefetches, and
	// refresh windows.
	Kind BurstKind
}

// BurstKind labels the cause of memory activity.
type BurstKind uint8

const (
	// BurstRead is a demand line fill.
	BurstRead BurstKind = iota
	// BurstWrite is a writeback.
	BurstWrite
	// BurstPrefetch is a prefetcher-initiated fill.
	BurstPrefetch
	// BurstRefresh is a refresh window.
	BurstRefresh
)

// String returns the burst kind name.
func (k BurstKind) String() string {
	switch k {
	case BurstRead:
		return "read"
	case BurstWrite:
		return "write"
	case BurstPrefetch:
		return "prefetch"
	case BurstRefresh:
		return "refresh"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Stats counts DRAM events.
type Stats struct {
	Reads        uint64
	Writes       uint64
	Prefetches   uint64
	RowHits      uint64
	RowMisses    uint64
	RefreshHits  uint64 // requests delayed by a refresh window
	RefreshSpans uint64 // refresh windows recorded in the burst trace
}

// DRAM is the main-memory model. Bank and row extraction are pure
// shift/mask (Validate requires Banks and RowBytes to be powers of two),
// precomputed at construction.
type DRAM struct {
	cfg       Config
	rowShift  uint
	bankShift uint
	bankMask  uint64
	bankFree  []uint64
	openRow   []uint64
	hasRow    []bool
	stats     Stats
	bursts    []Burst
	// lastRefreshRecorded tracks which refresh windows were already
	// appended to the burst trace.
	lastRefreshRecorded uint64
	recordBursts        bool
}

// New builds a DRAM model. recordBursts enables the activity trace needed
// for memory-probe experiments (it costs memory proportional to traffic,
// so bulk profiling runs disable it).
func New(cfg Config, recordBursts bool) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{
		cfg:          cfg,
		rowShift:     uint(bits.TrailingZeros(uint(cfg.RowBytes))),
		bankShift:    uint(bits.TrailingZeros(uint(cfg.Banks))),
		bankMask:     uint64(cfg.Banks - 1),
		bankFree:     make([]uint64, cfg.Banks),
		openRow:      make([]uint64, cfg.Banks),
		hasRow:       make([]bool, cfg.Banks),
		recordBursts: recordBursts,
	}, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(cfg Config, recordBursts bool) *DRAM {
	d, err := New(cfg, recordBursts)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the DRAM configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// Bursts returns the recorded activity trace (nil unless enabled).
func (d *DRAM) Bursts() []Burst { return d.bursts }

// refreshWindow returns the start and end of the refresh window whose
// interval contains cycle, or ok=false when refresh is disabled.
func (d *DRAM) refreshWindow(cycle uint64) (start, end uint64, ok bool) {
	if d.cfg.RefreshInterval <= 0 {
		return 0, 0, false
	}
	interval := uint64(d.cfg.RefreshInterval)
	n := cycle / interval
	if n == 0 {
		// No refresh is due before the first interval elapses; without
		// this, every cold-boot access would collide with a phantom
		// refresh window at cycle zero.
		return 0, 0, false
	}
	start = n * interval
	end = start + uint64(d.cfg.RefreshDuration)
	return start, end, true
}

// InRefresh reports whether the device is refreshing at cycle.
func (d *DRAM) InRefresh(cycle uint64) bool {
	s, e, ok := d.refreshWindow(cycle)
	return ok && cycle >= s && cycle < e
}

// Access services a line read/write request issued at cycle `when` and
// returns the completion cycle and whether the request was delayed by a
// refresh window. Bank conflicts and row-buffer state are modelled; the
// caller (the memory system) is responsible for MSHR arbitration.
func (d *DRAM) Access(when uint64, addr uint64, kind BurstKind) (done uint64, refreshHit bool) {
	bank := int((addr >> d.rowShift) & d.bankMask)
	row := addr >> d.rowShift >> d.bankShift

	start := when
	if d.bankFree[bank] > start {
		start = d.bankFree[bank]
	}
	// Refresh: if the request would start inside a refresh window, it
	// waits for the window to end.
	if s, e, ok := d.refreshWindow(start); ok {
		d.maybeRecordRefresh(s, e)
		if start >= s && start < e {
			start = e
			refreshHit = true
			d.stats.RefreshHits++
		}
	}

	var lat int
	if d.hasRow[bank] && d.openRow[bank] == row {
		lat = d.cfg.RowHit
		d.stats.RowHits++
	} else {
		lat = d.cfg.RowMiss
		d.stats.RowMisses++
		d.openRow[bank] = row
		d.hasRow[bank] = true
	}
	done = start + uint64(lat)
	d.bankFree[bank] = start + uint64(d.cfg.BusOccupancy)

	switch kind {
	case BurstWrite:
		d.stats.Writes++
	case BurstPrefetch:
		d.stats.Prefetches++
	default:
		d.stats.Reads++
	}
	if d.recordBursts {
		d.bursts = append(d.bursts, Burst{Start: start, End: done, Kind: kind})
	}
	return done, refreshHit
}

func (d *DRAM) maybeRecordRefresh(start, end uint64) {
	if !d.recordBursts || start == 0 || start <= d.lastRefreshRecorded {
		return
	}
	d.lastRefreshRecorded = start
	d.bursts = append(d.bursts, Burst{Start: start, End: end, Kind: BurstRefresh})
	d.stats.RefreshSpans++
}

// ActivitySeries rasterizes the burst trace into a per-sample activity
// level: sample i covers cycles [i*cyclesPerSample, (i+1)*cyclesPerSample)
// and holds the fraction of that interval during which the device was
// active, weighted by burst kind (refresh is internally busy but draws a
// distinct signature; reads/writes toggle I/O pins and radiate strongest).
func ActivitySeries(bursts []Burst, totalCycles uint64, cyclesPerSample int) []float64 {
	if cyclesPerSample <= 0 {
		panic("dram: cyclesPerSample must be positive")
	}
	n := int(totalCycles)/cyclesPerSample + 1
	out := make([]float64, n)
	for _, b := range bursts {
		w := 1.0
		if b.Kind == BurstRefresh {
			w = 0.6
		}
		start, end := b.Start, b.End
		if end > totalCycles {
			end = totalCycles
		}
		for c := start; c < end; {
			i := int(c) / cyclesPerSample
			if i >= n {
				break
			}
			sampleEnd := uint64(i+1) * uint64(cyclesPerSample)
			seg := sampleEnd
			if end < seg {
				seg = end
			}
			out[i] += w * float64(seg-c) / float64(cyclesPerSample)
			c = seg
		}
	}
	// Clamp overlapping bursts to full-scale activity.
	for i, v := range out {
		if v > 1 {
			out[i] = 1
		}
	}
	return out
}
