package cache

import (
	"testing"
	"testing/quick"

	"emprof/internal/sim"
)

func testConfig(size, line, ways int, p Policy) Config {
	return Config{Name: "T", SizeBytes: size, LineBytes: line, Ways: ways, Policy: p, HitLatency: 2}
}

func newTest(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		testConfig(1024, 48, 2, LRU),   // non-pow2 line
		testConfig(1000, 64, 2, LRU),   // size not divisible
		testConfig(1024, 64, 0, LRU),   // zero ways
		testConfig(64*3*2, 64, 2, LRU), // 3 sets: not a power of two
		{Name: "L", SizeBytes: 1024, LineBytes: 64, Ways: 2, HitLatency: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v unexpectedly valid", i, cfg)
		}
	}
	if err := testConfig(32<<10, 64, 4, Random).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRandomPolicyRequiresRNG(t *testing.T) {
	if _, err := New(testConfig(1024, 64, 2, Random), nil); err == nil {
		t.Fatal("random policy without RNG must error")
	}
	if _, err := New(testConfig(1024, 64, 2, LRU), nil); err != nil {
		t.Fatalf("LRU without RNG should work: %v", err)
	}
}

func TestHitAfterFill(t *testing.T) {
	c := newTest(t, testConfig(1024, 64, 2, LRU))
	if c.Lookup(0x100, false) {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0x100, false)
	if !c.Lookup(0x100, false) {
		t.Fatal("filled line must hit")
	}
	// Same line, different offset.
	if !c.Lookup(0x13f, false) {
		t.Fatal("offset within the line must hit")
	}
	if c.Lookup(0x140, false) {
		t.Fatal("next line must miss")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// 2-way, 64B lines, 2 sets -> 256 bytes.
	c := newTest(t, testConfig(256, 64, 2, LRU))
	// Set 0 holds line addresses with (addr>>6)%2 == 0: 0x000, 0x080, 0x100.
	c.Fill(0x000, false)
	c.Fill(0x080, false)
	// Touch 0x000 so 0x080 is LRU.
	c.Lookup(0x000, false)
	ev := c.Fill(0x100, false)
	if !ev.Valid || ev.Addr != 0x080 {
		t.Fatalf("evicted %+v, want addr 0x080", ev)
	}
	if !c.Contains(0x000) || c.Contains(0x080) || !c.Contains(0x100) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := newTest(t, testConfig(128, 64, 1, LRU)) // direct-mapped, 2 sets
	c.Fill(0x000, false)
	if !c.Lookup(0x000, true) {
		t.Fatal("write hit expected")
	}
	ev := c.Fill(0x100, false) // same set as 0x000
	if !ev.Valid || !ev.Dirty || ev.Addr != 0x000 {
		t.Fatalf("eviction %+v, want dirty victim 0x000", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks %d, want 1", c.Stats().Writebacks)
	}
}

func TestFillDirtyFlag(t *testing.T) {
	c := newTest(t, testConfig(128, 64, 1, LRU))
	c.Fill(0x000, true)
	ev := c.Fill(0x100, false)
	if !ev.Dirty {
		t.Fatal("line filled dirty must write back")
	}
}

func TestFillExistingLineRefreshes(t *testing.T) {
	c := newTest(t, testConfig(256, 64, 2, LRU))
	c.Fill(0x000, false)
	ev := c.Fill(0x000, true) // refill same line, now dirty
	if ev.Valid {
		t.Fatalf("refilling a present line must not evict, got %+v", ev)
	}
	ev = c.Fill(0x100, false)
	if ev.Valid {
		t.Fatal("way 2 free, no eviction expected")
	}
	ev = c.Fill(0x200, false)
	if !ev.Valid {
		t.Fatal("set full, eviction expected")
	}
}

func TestEvictionAddressRoundTrip(t *testing.T) {
	// Property: a direct-mapped cache must report the exact address of the
	// line it displaces.
	f := func(raw uint32) bool {
		c, err := New(testConfig(4096, 64, 1, LRU), nil)
		if err != nil {
			return false
		}
		addr := uint64(raw) &^ 63
		c.Fill(addr, false)
		conflict := addr ^ 4096 // same set, different tag
		ev := c.Fill(conflict, false)
		return ev.Valid && ev.Addr == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarkDirtyAndInvalidate(t *testing.T) {
	c := newTest(t, testConfig(256, 64, 2, LRU))
	if c.MarkDirty(0x40) {
		t.Fatal("MarkDirty on absent line must return false")
	}
	c.Fill(0x40, false)
	if !c.MarkDirty(0x40) {
		t.Fatal("MarkDirty on present line must return true")
	}
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Fatalf("invalidate got (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(0x40) {
		t.Fatal("line still present after invalidate")
	}
	if p, _ := c.Invalidate(0x40); p {
		t.Fatal("double invalidate must report absent")
	}
}

func TestInvalidateAllAndValidLines(t *testing.T) {
	c := newTest(t, testConfig(1024, 64, 4, Random))
	for i := 0; i < 8; i++ {
		c.Fill(uint64(i*64), false)
	}
	if got := c.ValidLines(); got != 8 {
		t.Fatalf("valid lines %d, want 8", got)
	}
	c.InvalidateAll()
	if got := c.ValidLines(); got != 0 {
		t.Fatalf("valid lines after flush %d, want 0", got)
	}
}

func TestStatsCounting(t *testing.T) {
	c := newTest(t, testConfig(256, 64, 2, LRU))
	c.Lookup(0, false) // miss
	c.Fill(0, false)
	c.Lookup(0, false) // hit
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", s.MissRate())
	}
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Fatal("reset stats failed")
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate must be 0")
	}
}

func TestRandomReplacementStaysWithinSet(t *testing.T) {
	c := newTest(t, testConfig(512, 64, 4, Random))
	// Fill set 0 (stride 512 = set size in bytes... addresses mapping to set 0
	// are multiples of 64 where (addr>>6)%2==0).
	var fills []uint64
	for i := 0; i < 12; i++ {
		addr := uint64(i) * 128 // every other line -> set 0
		fills = append(fills, addr)
		ev := c.Fill(addr, false)
		if ev.Valid {
			// The evicted address must be one we filled into set 0.
			found := false
			for _, a := range fills {
				if a == ev.Addr {
					found = true
				}
			}
			if !found {
				t.Fatalf("evicted unknown address %#x", ev.Addr)
			}
		}
	}
	if got := c.ValidLines(); got > 8 {
		t.Fatalf("valid lines %d exceed capacity effects", got)
	}
}

func TestLineAddr(t *testing.T) {
	c := newTest(t, testConfig(256, 64, 2, LRU))
	if got := c.LineAddr(0x12345); got != 0x12340 {
		t.Fatalf("line addr %#x, want 0x12340", got)
	}
}

func TestPolicyString(t *testing.T) {
	if Random.String() != "random" || LRU.String() != "lru" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config must panic")
		}
	}()
	MustNew(testConfig(1000, 64, 2, LRU), sim.NewRNG(1))
}
