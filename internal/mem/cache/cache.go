// Package cache implements set-associative caches for the device simulator:
// split L1 instruction/data caches and a unified last-level cache (LLC),
// with the random replacement policy the paper's SESC configuration uses
// ("two levels of caches with random replacement policies"), plus LRU for
// comparison, and an optional stride prefetcher modelling the Samsung
// device's hardware prefetch.
package cache

import (
	"fmt"
	"math/bits"

	"emprof/internal/sim"
)

// Policy selects the replacement policy.
type Policy uint8

const (
	// Random replacement, as in the paper's simulator configuration.
	Random Policy = iota
	// LRU replacement.
	LRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Random:
		return "random"
	case LRU:
		return "lru"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config describes one cache level.
type Config struct {
	// Name is used in stats reporting ("L1I", "L1D", "LLC").
	Name string
	// SizeBytes is the total capacity; must be a power of two multiple of
	// LineBytes*Ways.
	SizeBytes int
	// LineBytes is the cache line size (power of two).
	LineBytes int
	// Ways is the associativity.
	Ways int
	// Policy selects the replacement policy.
	Policy Policy
	// HitLatency is the access latency in cycles.
	HitLatency int
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways %d <= 0", c.Name, c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by %d-byte ways", c.Name, c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if c.HitLatency < 1 {
		return fmt.Errorf("cache %s: hit latency %d < 1", c.Name, c.HitLatency)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// stamp is the LRU timestamp; unused under Random.
	stamp uint64
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Fills      uint64
}

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative cache level. Lines are stored in one flat
// set-major array (set s occupies lines[s*ways : (s+1)*ways]); set and tag
// extraction are pure shift/mask with all shift amounts precomputed, so a
// probe costs no division, map lookup or pointer chase.
type Cache struct {
	cfg       Config
	lineShift uint
	setShift  uint
	setMask   uint64
	ways      int
	lines     []line
	clock     uint64
	rng       *sim.RNG
	stats     Stats
}

// New builds a cache from cfg; rng drives random replacement (may be nil
// for LRU-only caches).
func New(cfg Config, rng *sim.RNG) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == Random && rng == nil {
		return nil, fmt.Errorf("cache %s: random policy requires an RNG", cfg.Name)
	}
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	return &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setShift:  uint(bits.TrailingZeros(uint(numSets))),
		setMask:   uint64(numSets - 1),
		ways:      cfg.Ways,
		lines:     make([]line, numSets*cfg.Ways),
		rng:       rng,
	}, nil
}

// MustNew is New but panics on configuration errors; intended for the
// static device tables, which are validated by tests.
func MustNew(cfg Config, rng *sim.RNG) *Cache {
	c, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineBytes) - 1)
}

func (c *Cache) decompose(addr uint64) (set uint64, tag uint64) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> c.setShift
}

// setSlice returns the ways of one set.
func (c *Cache) setSlice(set uint64) []line {
	base := int(set) * c.ways
	return c.lines[base : base+c.ways]
}

// Lookup probes the cache for addr, updating replacement state and the
// dirty bit on a write hit. It returns true on hit.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	c.stats.Accesses++
	c.clock++
	set, tag := c.decompose(addr)
	ways := c.setSlice(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].stamp = c.clock
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for addr without updating any state (used by tests and
// by the prefetcher to avoid redundant prefetches).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.decompose(addr)
	for _, l := range c.setSlice(set) {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes the line displaced by a Fill.
type Eviction struct {
	// Valid is true when a line was actually displaced.
	Valid bool
	// Addr is the line address of the victim.
	Addr uint64
	// Dirty is true when the victim must be written back.
	Dirty bool
}

// Fill inserts the line containing addr, marking it dirty when dirty is
// set, and returns the eviction it caused (if any).
func (c *Cache) Fill(addr uint64, dirty bool) Eviction {
	c.clock++
	c.stats.Fills++
	set, tag := c.decompose(addr)
	ways := c.setSlice(set)
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].tag == tag {
			// Already present (e.g. prefetch raced a demand fill); just
			// refresh state.
			ways[i].stamp = c.clock
			if dirty {
				ways[i].dirty = true
			}
			return Eviction{}
		}
	}
	if victim < 0 {
		switch c.cfg.Policy {
		case Random:
			victim = c.rng.Intn(len(ways))
		default: // LRU
			victim = 0
			for i := 1; i < len(ways); i++ {
				if ways[i].stamp < ways[victim].stamp {
					victim = i
				}
			}
		}
	}
	var ev Eviction
	if ways[victim].valid {
		c.stats.Evictions++
		ev = Eviction{
			Valid: true,
			Addr:  c.reconstruct(set, ways[victim].tag),
			Dirty: ways[victim].dirty,
		}
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	ways[victim] = line{tag: tag, valid: true, dirty: dirty, stamp: c.clock}
	return ev
}

func (c *Cache) reconstruct(set, tag uint64) uint64 {
	numSets := c.setMask + 1
	return (tag*numSets + set) << c.lineShift
}

// MarkDirty sets the dirty bit of the line containing addr if present,
// returning whether it was found. Used when a dirty L1 victim lands in the
// LLC.
func (c *Cache) MarkDirty(addr uint64) bool {
	set, tag := c.decompose(addr)
	ways := c.setSlice(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].dirty = true
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr, returning whether it was
// present and dirty. Used by the perf-baseline model's interrupt-handler
// pollution.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.decompose(addr)
	ways := c.setSlice(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			present, dirty = true, ways[i].dirty
			ways[i] = line{}
			return
		}
	}
	return false, false
}

// InvalidateAll empties the cache (cold boot).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.lines) / c.ways }

// ValidLines returns the number of valid lines currently cached.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
