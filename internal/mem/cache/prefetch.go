package cache

// Prefetcher is a PC-indexed stride prefetcher modelling the hardware
// prefetch unit of the Samsung device's Cortex-A5 memory system (the paper
// attributes Samsung's lower miss counts to it). On each demand access it
// checks whether the access continues a previously seen constant stride for
// that instruction and, after two confirmations, emits prefetch candidates
// a configurable degree ahead. The microbenchmark's randomised access
// pattern was "designed to defeat any stride-based pre-fetching", which
// this unit faithfully fails to predict.
type Prefetcher struct {
	entries []strideEntry
	mask    uint64
	degree  int
	scratch []uint64
	stats   PrefetchStats
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int8
	valid    bool
}

// PrefetchStats counts prefetcher events.
type PrefetchStats struct {
	Trained   uint64
	Issued    uint64
	Redundant uint64
}

// NewPrefetcher returns a stride prefetcher with the given table size
// (power of two) and prefetch degree (lines fetched ahead per trigger).
func NewPrefetcher(tableSize, degree int) *Prefetcher {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("cache: prefetcher table size must be a power of two")
	}
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{
		entries: make([]strideEntry, tableSize),
		mask:    uint64(tableSize - 1),
		degree:  degree,
		scratch: make([]uint64, 0, degree),
	}
}

// Stats returns a copy of the prefetcher counters.
func (p *Prefetcher) Stats() PrefetchStats { return p.stats }

// Observe records a demand access by the load/store at pc to addr and
// returns the line addresses to prefetch (nil when the pattern is not yet
// confirmed). lineBytes is the cache line size used to align candidates.
// The returned slice is reused scratch, valid only until the next Observe.
func (p *Prefetcher) Observe(pc, addr uint64, lineBytes int) []uint64 {
	e := &p.entries[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return nil
	}
	stride := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return nil
	}
	if e.conf < 2 {
		return nil
	}
	p.stats.Trained++
	line := uint64(lineBytes)
	out := p.scratch[:0]
	for i := 1; i <= p.degree; i++ {
		next := uint64(int64(addr) + stride*int64(i))
		next &^= line - 1
		// Skip candidates in the same line as the demand access.
		if next == addr&^(line-1) {
			continue
		}
		out = append(out, next)
	}
	p.stats.Issued += uint64(len(out))
	p.scratch = out
	return out
}

// NoteRedundant records that a candidate was already cached.
func (p *Prefetcher) NoteRedundant() { p.stats.Redundant++ }
