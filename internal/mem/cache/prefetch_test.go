package cache

import "testing"

func TestPrefetcherTrainsOnConstantStride(t *testing.T) {
	p := NewPrefetcher(64, 2)
	pc := uint64(0x1000)
	var got []uint64
	for i := 0; i < 6; i++ {
		addr := uint64(0x4000 + i*64)
		got = p.Observe(pc, addr, 64)
	}
	if len(got) == 0 {
		t.Fatal("constant stride must eventually emit candidates")
	}
	// The last observation was at 0x4000+5*64; candidates should be the
	// next lines ahead.
	want := uint64(0x4000 + 6*64)
	if got[0] != want {
		t.Fatalf("first candidate %#x, want %#x", got[0], want)
	}
	if p.Stats().Trained == 0 || p.Stats().Issued == 0 {
		t.Fatalf("stats not updated: %+v", p.Stats())
	}
}

func TestPrefetcherIgnoresRandomPattern(t *testing.T) {
	p := NewPrefetcher(64, 2)
	pc := uint64(0x1000)
	addrs := []uint64{0x4000, 0x9040, 0x1280, 0x77c0, 0x33100, 0x8000}
	for _, a := range addrs {
		if out := p.Observe(pc, a, 64); len(out) != 0 {
			t.Fatalf("random pattern emitted prefetches: %v", out)
		}
	}
}

func TestPrefetcherStrideChangeResets(t *testing.T) {
	p := NewPrefetcher(64, 1)
	pc := uint64(0x2000)
	for i := 0; i < 5; i++ {
		p.Observe(pc, uint64(0x4000+i*64), 64)
	}
	// Change the stride: confidence must reset, no immediate prefetch.
	if out := p.Observe(pc, 0x4000+5*64+128, 64); len(out) != 0 {
		t.Fatalf("stride change should reset, got %v", out)
	}
	// The new stride needs to be seen and then confirmed twice before the
	// prefetcher trusts it again.
	if out := p.Observe(pc, 0x4000+5*64+256, 64); len(out) != 0 {
		t.Fatalf("stride registration must not prefetch, got %v", out)
	}
	if out := p.Observe(pc, 0x4000+5*64+384, 64); len(out) != 0 {
		t.Fatalf("one confirmation is not enough, got %v", out)
	}
	out := p.Observe(pc, 0x4000+5*64+512, 64)
	if len(out) == 0 {
		t.Fatal("new stride should retrain after confirmations")
	}
}

func TestPrefetcherDistinctPCs(t *testing.T) {
	p := NewPrefetcher(64, 1)
	// Two PCs with different strides must not interfere (distinct slots).
	for i := 0; i < 6; i++ {
		p.Observe(0x1000, uint64(0x10000+i*64), 64)
		p.Observe(0x1004, uint64(0x80000+i*128), 64)
	}
	// Observe returns reused scratch, so each result must be inspected
	// before the next call (as the memory system does).
	a := p.Observe(0x1000, 0x10000+6*64, 64)
	if len(a) == 0 {
		t.Fatal("pc1 should be trained")
	}
	if a[0] != 0x10000+7*64 {
		t.Fatalf("pc1 candidate %#x", a[0])
	}
	b := p.Observe(0x1004, 0x80000+6*128, 64)
	if len(b) == 0 {
		t.Fatal("pc2 should be trained")
	}
	if b[0] != 0x80000+7*128 {
		t.Fatalf("pc2 candidate %#x", b[0])
	}
}

func TestPrefetcherZeroStride(t *testing.T) {
	p := NewPrefetcher(64, 2)
	for i := 0; i < 8; i++ {
		if out := p.Observe(0x3000, 0x5000, 64); len(out) != 0 {
			t.Fatalf("zero stride must not prefetch, got %v", out)
		}
	}
}

func TestPrefetcherTableSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two table must panic")
		}
	}()
	NewPrefetcher(100, 2)
}

func TestPrefetcherDegreeClamp(t *testing.T) {
	p := NewPrefetcher(16, 0) // clamped to 1
	for i := 0; i < 6; i++ {
		p.Observe(0x1000, uint64(0x4000+i*64), 64)
	}
	out := p.Observe(0x1000, 0x4000+6*64, 64)
	if len(out) != 1 {
		t.Fatalf("degree-1 prefetcher emitted %d candidates", len(out))
	}
}
