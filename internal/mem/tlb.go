package mem

// TLB is a small fully-associative translation lookaside buffer with LRU
// replacement. The microbenchmark's page-touch pass (Fig. 6, "perform
// page touch ... to avoid encountering page faults later") exists
// precisely because first access to a page costs translation work; the
// model charges a fixed page-walk penalty on each TLB miss.
type TLB struct {
	entries []tlbEntry
	stamp   uint64
	stats   TLBStats
}

type tlbEntry struct {
	page  uint64
	stamp uint64
	valid bool
}

// TLBStats counts translation events.
type TLBStats struct {
	Accesses uint64
	Misses   uint64
}

// NewTLB returns a TLB with n entries; n <= 0 returns nil (disabled).
func NewTLB(n int) *TLB {
	if n <= 0 {
		return nil
	}
	return &TLB{entries: make([]tlbEntry, n)}
}

// Lookup translates the page containing addr, returning true on a hit.
// On a miss the translation is installed (the page walk completes).
func (t *TLB) Lookup(page uint64) bool {
	t.stats.Accesses++
	t.stamp++
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.stamp = t.stamp
			return true
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.stamp < t.entries[victim].stamp {
			victim = i
		}
	}
	t.stats.Misses++
	t.entries[victim] = tlbEntry{page: page, stamp: t.stamp, valid: true}
	return false
}

// Insert installs a translation without counting an access (used when the
// OS touches a page on behalf of the program, e.g. fault handling).
func (t *TLB) Insert(page uint64) {
	t.stamp++
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.page == page {
			e.stamp = t.stamp
			return
		}
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.stamp < t.entries[victim].stamp {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{page: page, stamp: t.stamp, valid: true}
}

// Stats returns the counters.
func (t *TLB) Stats() TLBStats { return t.stats }
