// Package mem composes the cache hierarchy and DRAM into the memory system
// seen by the processor model: split L1 caches over a unified LLC, a miss
// status holding register (MSHR) file bounding miss-level parallelism, an
// optional stride prefetcher, and ground-truth recording of every LLC miss
// (the paper validates EMPROF against exactly this information: in which
// cycle each miss is detected and when the resulting stall begins and
// ends).
package mem

import (
	"fmt"
	"math/bits"

	"emprof/internal/mem/cache"
	"emprof/internal/mem/dram"
	"emprof/internal/sim"
)

// Config assembles a complete memory system.
type Config struct {
	L1I cache.Config
	L1D cache.Config
	LLC cache.Config
	// MSHRs bounds the number of outstanding LLC misses (MLP). The paper's
	// IoT-class cores "send more than one memory request on multiple read
	// channels to multi-banked LLC".
	MSHRs int
	// TLBEntries sizes the data TLB (0 disables translation modelling);
	// TLBPenalty is the page-walk cost in cycles charged per TLB miss.
	// The microbenchmark's page-touch pass exists to pre-warm exactly
	// this state.
	TLBEntries int
	TLBPenalty int
	// PageBytes is the translation granule (default 4096 when TLB on).
	PageBytes int
	// LLCFillLatency is the extra latency from DRAM completion to the data
	// reaching the core, in cycles.
	LLCFillLatency int
	// Prefetch enables the stride prefetcher (Samsung device).
	Prefetch bool
	// PrefetchDegree is the number of lines fetched ahead when a stride is
	// confirmed.
	PrefetchDegree int
	DRAM           dram.Config
}

// Validate checks the composed configuration.
func (c Config) Validate() error {
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.LLC} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	if c.L1I.LineBytes != c.LLC.LineBytes || c.L1D.LineBytes != c.LLC.LineBytes {
		return fmt.Errorf("mem: L1/LLC line sizes must match")
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("mem: MSHRs %d < 1", c.MSHRs)
	}
	if c.TLBEntries < 0 || c.TLBPenalty < 0 {
		return fmt.Errorf("mem: negative TLB parameters")
	}
	if c.TLBEntries > 0 && c.PageBytes != 0 && (c.PageBytes < 1024 || c.PageBytes&(c.PageBytes-1) != 0) {
		return fmt.Errorf("mem: page size %d not a power of two >= 1024", c.PageBytes)
	}
	if c.LLCFillLatency < 0 {
		return fmt.Errorf("mem: negative fill latency")
	}
	return c.DRAM.Validate()
}

// AccessKind labels the requester of a memory access.
type AccessKind uint8

const (
	// KindInst is an instruction fetch.
	KindInst AccessKind = iota
	// KindLoad is a data load.
	KindLoad
	// KindStore is a data store.
	KindStore
)

// String returns the access kind name.
func (k AccessKind) String() string {
	switch k {
	case KindInst:
		return "inst"
	case KindLoad:
		return "load"
	default:
		return "store"
	}
}

// MissRecord is the ground truth for one LLC miss. StallStart/StallEnd are
// filled in by the processor model when (and only when) the miss produces
// fully-stalled cycles; Stalled distinguishes misses whose latency was
// entirely hidden by ILP/MLP (paper Fig. 3a).
type MissRecord struct {
	// Detect is the cycle in which the access that missed was issued.
	Detect uint64
	// Complete is the cycle in which the line reached the core.
	Complete uint64
	// PC and Addr identify the access.
	PC, Addr uint64
	// Kind is the requester type.
	Kind AccessKind
	// RefreshHit is true when DRAM refresh delayed this miss (Fig. 5).
	RefreshHit bool
	// Region is the workload region executing at detect time.
	Region uint16
	// Stalled, StallStart, StallEnd are written by the processor model.
	Stalled    bool
	StallStart uint64
	StallEnd   uint64
}

// Result describes the outcome of one access.
type Result struct {
	// Ready is the cycle at which the data is available to the core.
	Ready uint64
	// L1Hit, LLCHit report where the access was satisfied.
	L1Hit  bool
	LLCHit bool
	// LLCMiss is true for a *new* LLC miss (one MSHR allocation).
	LLCMiss bool
	// Coalesced is true when the access attached to an already
	// outstanding miss for the same line (overlapped misses, Fig. 3b).
	Coalesced bool
	// RefreshHit mirrors the DRAM refresh collision for new misses.
	RefreshHit bool
	// MissID indexes Misses() for new LLC misses; -1 otherwise.
	MissID int
}

type mshr struct {
	lineAddr uint64
	complete uint64
	busy     bool
}

// System is the composed memory system.
type System struct {
	cfg  Config
	l1i  *cache.Cache
	l1d  *cache.Cache
	llc  *cache.Cache
	dram *dram.DRAM
	pf   *cache.Prefetcher

	mshrs []mshr
	// mshrMaxComplete is a high-water mark over every completion time an
	// MSHR was ever assigned; once now reaches it, no entry can satisfy
	// busy && complete > now, so the scans below exit on one compare.
	mshrMaxComplete uint64
	misses          []MissRecord
	dtlb            *TLB
	pageShift       uint

	// Hot-path hoists: per-level hit latencies, the shared line geometry
	// and the TLB penalty, so Access never copies a cache.Config (it
	// carries a string name) just to read a latency.
	l1iLat     uint64
	l1dLat     uint64
	llcLat     uint64
	llcFillLat uint64
	lineBytes  int
	lineMask   uint64
	tlbPenalty uint64

	// CurrentRegion is stamped into miss records; the CPU model updates it
	// as region markers flow through.
	CurrentRegion uint16

	stats SystemStats
}

// SystemStats aggregates hierarchy-level counters.
type SystemStats struct {
	InstAccesses  uint64
	DataAccesses  uint64
	LLCMisses     uint64
	Coalesced     uint64
	MSHRStalls    uint64 // allocations that had to wait for a free MSHR
	PrefetchFills uint64
	TLBMisses     uint64
}

// NewSystem builds a memory system; rng drives random replacement.
func NewSystem(cfg Config, rng *sim.RNG, recordBursts bool) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1i, err := cache.New(cfg.L1I, rng.Fork())
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cfg.L1D, rng.Fork())
	if err != nil {
		return nil, err
	}
	llc, err := cache.New(cfg.LLC, rng.Fork())
	if err != nil {
		return nil, err
	}
	d, err := dram.New(cfg.DRAM, recordBursts)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:        cfg,
		l1i:        l1i,
		l1d:        l1d,
		llc:        llc,
		dram:       d,
		mshrs:      make([]mshr, cfg.MSHRs),
		l1iLat:     uint64(cfg.L1I.HitLatency),
		l1dLat:     uint64(cfg.L1D.HitLatency),
		llcLat:     uint64(cfg.LLC.HitLatency),
		llcFillLat: uint64(cfg.LLCFillLatency),
		lineBytes:  cfg.LLC.LineBytes,
		lineMask:   uint64(cfg.LLC.LineBytes - 1),
		tlbPenalty: uint64(cfg.TLBPenalty),
	}
	if cfg.TLBEntries > 0 {
		s.dtlb = NewTLB(cfg.TLBEntries)
		pb := cfg.PageBytes
		if pb == 0 {
			pb = 4096
		}
		s.pageShift = uint(bits.TrailingZeros(uint(pb)))
	}
	if cfg.Prefetch {
		deg := cfg.PrefetchDegree
		if deg < 1 {
			deg = 2
		}
		s.pf = cache.NewPrefetcher(256, deg)
	}
	return s, nil
}

// MustNewSystem is NewSystem but panics on configuration errors.
func MustNewSystem(cfg Config, rng *sim.RNG, recordBursts bool) *System {
	s, err := NewSystem(cfg, rng, recordBursts)
	if err != nil {
		panic(err)
	}
	return s
}

// Misses returns the ground-truth miss records. The slice is owned by the
// system; the processor model writes stall attribution into it via
// MissRecordAt.
func (s *System) Misses() []MissRecord { return s.misses }

// MissRecordAt returns a pointer to miss record id for stall attribution.
func (s *System) MissRecordAt(id int) *MissRecord { return &s.misses[id] }

// Stats returns hierarchy-level counters.
func (s *System) Stats() SystemStats { return s.stats }

// DRAM exposes the DRAM model (for burst traces and refresh queries).
func (s *System) DRAM() *dram.DRAM { return s.dram }

// L1I, L1D and LLC expose the individual cache levels.
func (s *System) L1I() *cache.Cache { return s.l1i }

// L1D returns the L1 data cache.
func (s *System) L1D() *cache.Cache { return s.l1d }

// LLC returns the last-level cache.
func (s *System) LLC() *cache.Cache { return s.llc }

// Prefetcher returns the stride prefetcher, or nil when disabled.
func (s *System) Prefetcher() *cache.Prefetcher { return s.pf }

// OutstandingMisses returns the number of MSHRs busy at cycle now.
func (s *System) OutstandingMisses(now uint64) int {
	if now >= s.mshrMaxComplete {
		return 0
	}
	n := 0
	for i := range s.mshrs {
		if s.mshrs[i].busy && s.mshrs[i].complete > now {
			n++
		}
	}
	return n
}

// OldestOutstanding returns the earliest completion among busy MSHRs.
func (s *System) OldestOutstanding(now uint64) (complete uint64, ok bool) {
	if now >= s.mshrMaxComplete {
		return 0, false
	}
	for i := range s.mshrs {
		m := &s.mshrs[i]
		if m.busy && m.complete > now {
			if !ok || m.complete < complete {
				complete, ok = m.complete, true
			}
		}
	}
	return complete, ok
}

// lookupMSHR returns the completion cycle when lineAddr is outstanding.
func (s *System) lookupMSHR(now, lineAddr uint64) (uint64, bool) {
	if now >= s.mshrMaxComplete {
		return 0, false
	}
	for i := range s.mshrs {
		m := &s.mshrs[i]
		if m.busy && m.complete > now && m.lineAddr == lineAddr {
			return m.complete, true
		}
	}
	return 0, false
}

// allocMSHR reserves an MSHR from cycle `when`, waiting for the earliest
// completion when all are busy. It returns the entry and the (possibly
// delayed) start cycle.
func (s *System) allocMSHR(when, lineAddr uint64) (*mshr, uint64) {
	var free *mshr
	var earliest *mshr
	for i := range s.mshrs {
		m := &s.mshrs[i]
		if !m.busy || m.complete <= when {
			free = m
			break
		}
		if earliest == nil || m.complete < earliest.complete {
			earliest = m
		}
	}
	start := when
	if free == nil {
		// All MSHRs busy: the request waits for the earliest completion.
		s.stats.MSHRStalls++
		start = earliest.complete
		free = earliest
	}
	free.busy = true
	free.lineAddr = lineAddr
	return free, start
}

// Access services one memory request issued at cycle now.
func (s *System) Access(now uint64, pc, addr uint64, kind AccessKind) Result {
	var l1 *cache.Cache
	var l1Lat uint64
	if kind == KindInst {
		l1 = s.l1i
		l1Lat = s.l1iLat
		s.stats.InstAccesses++
	} else {
		l1 = s.l1d
		l1Lat = s.l1dLat
		s.stats.DataAccesses++
	}
	write := kind == KindStore
	lineAddr := addr &^ s.lineMask

	// Address translation: a data-side TLB miss pays the page-walk
	// penalty before the cache access proceeds.
	if s.dtlb != nil && kind != KindInst {
		if !s.dtlb.Lookup(addr >> s.pageShift) {
			now += s.tlbPenalty
			s.stats.TLBMisses++
		}
	}

	// Hit-under-miss: an access to a line already being fetched attaches
	// to the outstanding MSHR.
	if complete, ok := s.lookupMSHR(now, lineAddr); ok {
		s.stats.Coalesced++
		return Result{Ready: complete, Coalesced: true, MissID: -1}
	}

	if l1.Lookup(addr, write) {
		return Result{Ready: now + l1Lat, L1Hit: true, MissID: -1}
	}

	llcLat := s.llcLat
	// Stride prefetch trains on L1D demand misses, like the A5's unit.
	if s.pf != nil && kind != KindInst {
		for _, cand := range s.pf.Observe(pc, addr, s.lineBytes) {
			s.issuePrefetch(now, cand)
		}
	}

	if s.llc.Lookup(addr, false) {
		s.fillL1(l1, addr, write)
		return Result{Ready: now + l1Lat + llcLat, LLCHit: true, MissID: -1}
	}

	// New LLC miss: allocate an MSHR and go to DRAM.
	entry, start := s.allocMSHR(now+l1Lat+llcLat, lineAddr)
	done, refreshHit := s.dram.Access(start, lineAddr, dram.BurstRead)
	complete := done + s.llcFillLat
	entry.complete = complete
	if complete > s.mshrMaxComplete {
		s.mshrMaxComplete = complete
	}
	s.stats.LLCMisses++

	// Fill state immediately; timing is carried by the MSHR entry.
	s.fillLLC(lineAddr, complete)
	s.fillL1(l1, addr, write)

	s.misses = append(s.misses, MissRecord{
		Detect:     now,
		Complete:   complete,
		PC:         pc,
		Addr:       addr,
		Kind:       kind,
		RefreshHit: refreshHit,
		Region:     s.CurrentRegion,
	})
	return Result{
		Ready:      complete,
		LLCMiss:    true,
		RefreshHit: refreshHit,
		MissID:     len(s.misses) - 1,
	}
}

// fillL1 inserts addr into the given L1, spilling dirty victims into the
// LLC (or to memory as non-stalling background writes when absent).
func (s *System) fillL1(l1 *cache.Cache, addr uint64, dirty bool) {
	ev := l1.Fill(addr, dirty)
	if ev.Valid && ev.Dirty {
		if !s.llc.MarkDirty(ev.Addr) {
			// Victim not in LLC (e.g. already evicted): background
			// writeback straight to DRAM; does not stall the core.
			s.dram.Access(0, ev.Addr, dram.BurstWrite)
		}
	}
}

// fillLLC inserts a line into the LLC, issuing writebacks for dirty
// victims as background traffic at the fill time.
func (s *System) fillLLC(lineAddr, when uint64) {
	ev := s.llc.Fill(lineAddr, false)
	if ev.Valid && ev.Dirty {
		s.dram.Access(when, ev.Addr, dram.BurstWrite)
	}
}

// issuePrefetch fetches cand into the LLC without blocking the core.
func (s *System) issuePrefetch(now, cand uint64) {
	lineAddr := s.llc.LineAddr(cand)
	if s.llc.Contains(lineAddr) {
		s.pf.NoteRedundant()
		return
	}
	if _, ok := s.lookupMSHR(now, lineAddr); ok {
		s.pf.NoteRedundant()
		return
	}
	done, _ := s.dram.Access(now, lineAddr, dram.BurstPrefetch)
	s.fillLLC(lineAddr, done)
	s.stats.PrefetchFills++
}

// WarmLine installs a line in LLC (and optionally L1D) without timing or
// ground-truth side effects. Workload page-touch phases and the perf
// baseline use it.
func (s *System) WarmLine(addr uint64, alsoL1 bool) {
	lineAddr := s.llc.LineAddr(addr)
	s.llc.Fill(lineAddr, false)
	if alsoL1 {
		s.l1d.Fill(addr, false)
	}
	if s.dtlb != nil {
		s.dtlb.Insert(addr >> s.pageShift)
	}
}

// DTLB exposes the data TLB (nil when disabled).
func (s *System) DTLB() *TLB { return s.dtlb }
