package mem

import (
	"testing"

	"emprof/internal/mem/cache"
	"emprof/internal/mem/dram"
	"emprof/internal/sim"
)

func testConfig(prefetch bool) Config {
	return Config{
		L1I:            cache.Config{Name: "L1I", SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, Policy: cache.LRU, HitLatency: 1},
		L1D:            cache.Config{Name: "L1D", SizeBytes: 4 << 10, LineBytes: 64, Ways: 2, Policy: cache.LRU, HitLatency: 2},
		LLC:            cache.Config{Name: "LLC", SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, Policy: cache.LRU, HitLatency: 10},
		MSHRs:          2,
		LLCFillLatency: 4,
		Prefetch:       prefetch,
		PrefetchDegree: 2,
		DRAM: dram.Config{
			Banks: 4, RowBytes: 2048, RowHit: 50, RowMiss: 200,
			BusOccupancy: 20, RefreshInterval: 1 << 20, RefreshDuration: 2000,
		},
	}
}

func newSystem(t *testing.T, prefetch bool) *System {
	t.Helper()
	s, err := NewSystem(testConfig(prefetch), sim.NewRNG(1), false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(false)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := testConfig(false)
	bad.L1D.LineBytes = 32
	if err := bad.Validate(); err == nil {
		t.Fatal("line-size mismatch accepted")
	}
	bad2 := testConfig(false)
	bad2.MSHRs = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero MSHRs accepted")
	}
	bad3 := testConfig(false)
	bad3.LLCFillLatency = -1
	if err := bad3.Validate(); err == nil {
		t.Fatal("negative fill latency accepted")
	}
}

func TestL1HitPath(t *testing.T) {
	s := newSystem(t, false)
	s.Access(100, 0x100, 0x8000, KindLoad) // miss, fills L1
	r := s.Access(10000, 0x100, 0x8000, KindLoad)
	if !r.L1Hit || r.Ready != 10002 {
		t.Fatalf("L1 hit result %+v", r)
	}
}

func TestLLCHitPath(t *testing.T) {
	s := newSystem(t, false)
	// Warm the LLC only.
	s.WarmLine(0x8000, false)
	r := s.Access(100, 0x100, 0x8000, KindLoad)
	if r.L1Hit || !r.LLCHit || r.LLCMiss {
		t.Fatalf("LLC hit result %+v", r)
	}
	if r.Ready != 100+2+10 {
		t.Fatalf("LLC hit ready %d, want 112", r.Ready)
	}
}

func TestMissPathTiming(t *testing.T) {
	s := newSystem(t, false)
	r := s.Access(1000, 0x100, 0x8000, KindLoad)
	if !r.LLCMiss || r.MissID != 0 {
		t.Fatalf("miss result %+v", r)
	}
	// L1(2) + LLC(10) -> DRAM row miss 200 -> fill 4.
	want := uint64(1000 + 2 + 10 + 200 + 4)
	if r.Ready != want {
		t.Fatalf("miss ready %d, want %d", r.Ready, want)
	}
	m := s.Misses()
	if len(m) != 1 || m[0].Detect != 1000 || m[0].Complete != want || m[0].Kind != KindLoad {
		t.Fatalf("miss record %+v", m)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	s := newSystem(t, false)
	r1 := s.Access(1000, 0x100, 0x8000, KindLoad)
	// Access to the same line while outstanding attaches to the MSHR.
	r2 := s.Access(1010, 0x104, 0x8020, KindLoad)
	if !r2.Coalesced || r2.LLCMiss {
		t.Fatalf("coalesced result %+v", r2)
	}
	if r2.Ready != r1.Ready {
		t.Fatalf("coalesced ready %d, want %d", r2.Ready, r1.Ready)
	}
	if s.Stats().Coalesced != 1 || s.Stats().LLCMisses != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestMSHRExhaustionDelays(t *testing.T) {
	s := newSystem(t, false)
	// Two MSHRs: three distinct-line misses in the same cycle. Use
	// different banks to isolate the MSHR effect from bank conflicts.
	r1 := s.Access(1000, 0x100, 0x10000, KindLoad)
	r2 := s.Access(1000, 0x104, 0x20800, KindLoad)
	r3 := s.Access(1000, 0x108, 0x31000, KindLoad)
	if r3.Ready <= r1.Ready && r3.Ready <= r2.Ready {
		t.Fatalf("third miss %d did not wait for an MSHR (r1=%d r2=%d)", r3.Ready, r1.Ready, r2.Ready)
	}
	if s.Stats().MSHRStalls != 1 {
		t.Fatalf("MSHR stalls %d, want 1", s.Stats().MSHRStalls)
	}
}

func TestOutstandingAndOldest(t *testing.T) {
	s := newSystem(t, false)
	r1 := s.Access(1000, 0x100, 0x10000, KindLoad)
	s.Access(1005, 0x104, 0x20800, KindLoad)
	if got := s.OutstandingMisses(1010); got != 2 {
		t.Fatalf("outstanding %d, want 2", got)
	}
	complete, ok := s.OldestOutstanding(1010)
	if !ok || complete != r1.Ready {
		t.Fatalf("oldest (%d,%v), want (%d,true)", complete, ok, r1.Ready)
	}
	if got := s.OutstandingMisses(r1.Ready + 1000); got != 0 {
		t.Fatalf("outstanding after completion %d, want 0", got)
	}
}

func TestStoreMarksDirtyAndWritesBack(t *testing.T) {
	s := newSystem(t, false)
	// Store-miss allocates in L1 dirty.
	s.Access(1000, 0x100, 0x8000, KindStore)
	// Evict it by filling conflicting lines in the same L1 set (2-way).
	// L1 is 4 KB 2-way: sets = 32; conflict stride = 32*64 = 2 KB.
	s.Access(5000, 0x104, 0x8000+2048, KindLoad)
	s.Access(9000, 0x108, 0x8000+4096, KindLoad)
	// The dirty L1 victim should be marked dirty in the LLC (it is
	// present there after the original fill).
	// Evicting it from the LLC must produce a DRAM write.
	writesBefore := s.DRAM().Stats().Writes
	// Flood the LLC set of 0x8000. LLC 64 KB 4-way: sets = 256; stride 16 KB.
	for i := 1; i <= 6; i++ {
		s.Access(uint64(10000+i*1000), 0x200, uint64(0x8000+i*16384), KindLoad)
	}
	if s.DRAM().Stats().Writes == writesBefore {
		t.Fatal("dirty LLC eviction produced no DRAM write")
	}
}

func TestInstAccessesUseL1I(t *testing.T) {
	s := newSystem(t, false)
	s.Access(100, 0x4000, 0x4000, KindInst)
	if s.L1I().Stats().Accesses != 1 || s.L1D().Stats().Accesses != 0 {
		t.Fatal("instruction access did not use L1I")
	}
	if s.Stats().InstAccesses != 1 || s.Stats().DataAccesses != 0 {
		t.Fatalf("system stats %+v", s.Stats())
	}
}

func TestPrefetcherReducesStreamMisses(t *testing.T) {
	withPf := newSystem(t, true)
	withoutPf := newSystem(t, false)
	count := func(s *System) uint64 {
		now := uint64(0)
		pc := uint64(0x1000)
		addr := uint64(0x100000)
		for i := 0; i < 2048; i++ {
			s.Access(now, pc, addr, KindLoad)
			addr += 8
			now += 100
		}
		return s.Stats().LLCMisses
	}
	mWith, mWithout := count(withPf), count(withoutPf)
	if mWith*4 > mWithout {
		t.Fatalf("prefetcher ineffective: %d vs %d misses", mWith, mWithout)
	}
	if withPf.Stats().PrefetchFills == 0 {
		t.Fatal("no prefetch fills recorded")
	}
	if withPf.Prefetcher() == nil || withoutPf.Prefetcher() != nil {
		t.Fatal("prefetcher wiring wrong")
	}
}

func TestWarmLine(t *testing.T) {
	s := newSystem(t, false)
	s.WarmLine(0xdead40, true)
	r := s.Access(10, 0x100, 0xdead44, KindLoad)
	if !r.L1Hit {
		t.Fatalf("warmed line should L1-hit: %+v", r)
	}
	if len(s.Misses()) != 0 {
		t.Fatal("warming must not create miss records")
	}
}

func TestRegionStamping(t *testing.T) {
	s := newSystem(t, false)
	s.CurrentRegion = 7
	s.Access(100, 0x100, 0x40000, KindLoad)
	if s.Misses()[0].Region != 7 {
		t.Fatalf("miss region %d, want 7", s.Misses()[0].Region)
	}
}

func TestAccessKindString(t *testing.T) {
	if KindInst.String() != "inst" || KindLoad.String() != "load" || KindStore.String() != "store" {
		t.Fatal("access kind names wrong")
	}
}
