package profstore

import (
	"testing"

	"emprof/internal/core"
)

func benchWindow(nStalls int) *core.ProfileWindow {
	w := &core.ProfileWindow{
		Index: 3, StartSample: 60000, EndSample: 80000,
		StartS: 1.5e-3, EndS: 2.0e-3,
		Misses: nStalls, StallCycles: float64(nStalls) * 120,
	}
	for i := 0; i < nStalls; i++ {
		w.Stalls = append(w.Stalls, core.Stall{
			StartSample: 60000 + i*100, StartS: 1.5e-3 + float64(i)*2.5e-6,
			DurationS: 4.2e-7, Cycles: 120.5, Depth: 0.43, Confidence: 0.91,
		})
	}
	return w
}

func BenchmarkAppendMem(b *testing.B) {
	st, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	w := benchWindow(170)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Index = int64(i)
		if err := st.Append("bench-session", w); err != nil {
			b.Fatal(err)
		}
	}
}
