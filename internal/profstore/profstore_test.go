package profstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"emprof/internal/core"
)

func testWindow(idx int64, widthS float64) *core.ProfileWindow {
	w := &core.ProfileWindow{
		Index:       idx,
		StartSample: idx * 1000,
		EndSample:   (idx + 1) * 1000,
		StartS:      float64(idx) * widthS,
		EndS:        float64(idx+1) * widthS,
		Stalls:      []core.Stall{},
	}
	for k := 0; k < int(idx%4); k++ {
		st := core.Stall{
			StartSample: int(w.StartSample) + 10*k,
			EndSample:   int(w.StartSample) + 10*k + 5,
			Cycles:      125,
			Confidence:  0.9,
		}
		w.Stalls = append(w.Stalls, st)
		w.Misses++
		w.StallCycles += st.Cycles
	}
	return w
}

func openTest(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	opt.Dir = dir
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestRoundTripAndRangeQuery(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		st := openTest(t, dir, Options{})
		const width = 1e-3
		var want []core.ProfileWindow
		for i := int64(0); i < 20; i++ {
			w := testWindow(i, width)
			want = append(want, *w)
			if err := st.Append("sess", w); err != nil {
				t.Fatal(err)
			}
		}
		res, err := st.Query("sess", Query{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Windows, want) {
			t.Fatalf("dir=%q: full query diverged", dir)
		}
		if res.LatestIndex != 19 || res.More || res.Truncated {
			t.Fatalf("dir=%q: unexpected result flags %+v", dir, res)
		}
		// Range [5ms, 8ms) → windows 5,6,7.
		res, err = st.Query("sess", Query{FromS: 5 * width, ToS: 8 * width})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Windows) != 3 || res.Windows[0].Index != 5 || res.Windows[2].Index != 7 {
			t.Fatalf("dir=%q: range query returned %d windows (first %v)", dir, len(res.Windows), res.Windows)
		}
		// Unknown session: empty, no error (caller decides 404).
		res, err = st.Query("nope", Query{})
		if err != nil || len(res.Windows) != 0 || res.LatestIndex != -1 {
			t.Fatalf("dir=%q: unknown session: %v %+v", dir, err, res)
		}
	}
}

func TestPagination(t *testing.T) {
	st := openTest(t, "", Options{})
	for i := int64(0); i < 25; i++ {
		if err := st.Append("s", testWindow(i, 1e-3)); err != nil {
			t.Fatal(err)
		}
	}
	var got []core.ProfileWindow
	q := Query{Limit: 7}
	pages := 0
	for {
		res, err := st.Query("s", q)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Windows...)
		pages++
		if !res.More {
			break
		}
		q.HasAfter, q.AfterIndex = true, res.NextAfter
	}
	if len(got) != 25 || pages != 4 {
		t.Fatalf("pagination returned %d windows over %d pages", len(got), pages)
	}
	for i, w := range got {
		if w.Index != int64(i) {
			t.Fatalf("page order broken at %d: index %d", i, w.Index)
		}
	}
	// Last=3 tails the sequence.
	res, err := st.Query("s", Query{Last: 3})
	if err != nil || len(res.Windows) != 3 || res.Windows[0].Index != 22 {
		t.Fatalf("Last query: %v %+v", err, res.Windows)
	}
}

// TestQueryZeroValueAndCursorZero pins two cursor edge cases: the zero
// Query has no cursor (window 0 is included, not silently skipped), and
// a page that ends at window 0 (Limit 1) hands back NextAfter 0, which
// HasAfter turns into a real "after window 0" cursor.
func TestQueryZeroValueAndCursorZero(t *testing.T) {
	st := openTest(t, "", Options{})
	for i := int64(0); i < 3; i++ {
		if err := st.Append("s", testWindow(i, 1e-3)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Query("s", Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 || res.Windows[0].Index != 0 {
		t.Fatalf("zero-value query returned %+v, want windows 0..2", res.Windows)
	}
	page, err := st.Query("s", Query{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Windows) != 1 || page.Windows[0].Index != 0 || !page.More || page.NextAfter != 0 {
		t.Fatalf("first Limit=1 page %+v, want window 0 with More and NextAfter 0", page)
	}
	next, err := st.Query("s", Query{HasAfter: true, AfterIndex: page.NextAfter, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Windows) != 1 || next.Windows[0].Index != 1 {
		t.Fatalf("HasAfter cursor at 0 returned %+v, want window 1", next.Windows)
	}
}

// TestCrashReopenProperty appends records, then truncates or corrupts
// the newest segment's tail at random byte positions: reopening must
// recover every record before the damage and keep the store appendable,
// for any cut point.
func TestCrashReopenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		dir := t.TempDir()
		st := openTest(t, dir, Options{SegmentBytes: 1 << 20})
		n := 5 + rng.Intn(20)
		for i := 0; i < n; i++ {
			if err := st.Append("s", testWindow(int64(i), 1e-3)); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()

		segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
		if len(segs) == 0 {
			t.Fatal("no segment written")
		}
		last := segs[len(segs)-1]
		info, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		cut := rng.Int63n(info.Size() + 1)
		if trial%2 == 0 {
			// Torn append: the tail bytes simply never hit disk.
			if err := os.Truncate(last, cut); err != nil {
				t.Fatal(err)
			}
		} else if cut < info.Size() {
			// Bit rot / partial overwrite at the cut point.
			f, err := os.OpenFile(last, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteAt([]byte{0xFF}, cut)
			f.Close()
		}

		st2 := openTest(t, dir, Options{SegmentBytes: 1 << 20})
		res, err := st2.Query("s", Query{Limit: 1000})
		if err != nil {
			t.Fatalf("trial %d: query after reopen: %v", trial, err)
		}
		// Every recovered window is intact and the sequence is a prefix
		// (records after the damage are allowed to be lost, never mangled).
		for i, w := range res.Windows {
			if w.Index != int64(i) {
				t.Fatalf("trial %d: recovered sequence broken at %d (index %d)", trial, i, w.Index)
			}
			if !reflect.DeepEqual(&w, testWindow(w.Index, 1e-3)) {
				t.Fatalf("trial %d: recovered window %d corrupted: %+v", trial, w.Index, w)
			}
		}
		// The reopened store accepts appends continuing the sequence.
		next := int64(len(res.Windows))
		if err := st2.Append("s", testWindow(next, 1e-3)); err != nil {
			t.Fatalf("trial %d: append after reopen: %v", trial, err)
		}
		res2, err := st2.Query("s", Query{Limit: 1000})
		if err != nil || len(res2.Windows) != len(res.Windows)+1 {
			t.Fatalf("trial %d: post-reopen append not visible: %v", trial, err)
		}
	}
}

// TestRetentionEvictionProperty drives the store far past its byte
// budget and asserts the invariants: footprint stays within budget plus
// one segment of slack, eviction is oldest-first and whole-segment, a
// fully-evicted range answers ErrNotRetained, and a partially-evicted
// range returns the retained suffix flagged Truncated.
func TestRetentionEvictionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		dir := ""
		if trial%2 == 0 {
			dir = t.TempDir()
		}
		segBytes := int64(4<<10 + rng.Intn(8<<10))
		maxBytes := 4 * segBytes
		st := openTest(t, dir, Options{SegmentBytes: segBytes, MaxBytes: maxBytes})
		const width = 1e-3
		n := 200 + rng.Intn(300)
		for i := 0; i < n; i++ {
			if err := st.Append("s", testWindow(int64(i), width)); err != nil {
				t.Fatal(err)
			}
			if stats := st.Stats(); stats.Bytes > maxBytes+segBytes {
				t.Fatalf("trial %d: store at %d bytes exceeds budget %d + slack %d", trial, stats.Bytes, maxBytes, segBytes)
			}
		}
		if st.Stats().Evictions == 0 {
			t.Fatalf("trial %d: no segment evicted after %d appends", trial, n)
		}
		res, err := st.Query("s", Query{Limit: n + 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Windows) == 0 || len(res.Windows) == n {
			t.Fatalf("trial %d: retention retained %d of %d", trial, len(res.Windows), n)
		}
		// The retained set is exactly the newest suffix.
		first := res.Windows[0].Index
		for i, w := range res.Windows {
			if w.Index != first+int64(i) {
				t.Fatalf("trial %d: retained sequence has a hole at %d", trial, i)
			}
		}
		if res.Windows[len(res.Windows)-1].Index != int64(n-1) {
			t.Fatalf("trial %d: newest window missing", trial)
		}
		// Query entirely inside the evicted prefix → ErrNotRetained.
		if first > 0 {
			_, err := st.Query("s", Query{FromS: 0, ToS: float64(first) * width})
			if !errors.Is(err, ErrNotRetained) {
				t.Fatalf("trial %d: evicted-range query: %v", trial, err)
			}
			// Query spanning the eviction boundary → Truncated.
			res, err := st.Query("s", Query{FromS: 0, Limit: n + 1})
			if err != nil || !res.Truncated {
				t.Fatalf("trial %d: spanning query not truncated: %v %+v", trial, err, res)
			}
		}

		// Eviction watermarks survive a restart in disk mode.
		if dir != "" {
			st.Close()
			st2 := openTest(t, dir, Options{SegmentBytes: segBytes, MaxBytes: maxBytes})
			if first > 0 {
				_, err := st2.Query("s", Query{FromS: 0, ToS: float64(first) * width})
				if !errors.Is(err, ErrNotRetained) {
					t.Fatalf("trial %d: eviction watermark lost across reopen: %v", trial, err)
				}
			}
		}
	}
}

func TestAgeEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	st := openTest(t, t.TempDir(), Options{SegmentBytes: 2 << 10, MaxAge: time.Minute, Now: clock})
	for i := int64(0); i < 40; i++ {
		if err := st.Append("s", testWindow(i, 1e-3)); err != nil {
			t.Fatal(err)
		}
	}
	before := st.Stats()
	// Nothing is old yet.
	if before.Evictions != 0 {
		t.Fatalf("premature age eviction: %+v", before)
	}
	now = now.Add(2 * time.Minute)
	if err := st.Append("s", testWindow(40, 1e-3)); err != nil {
		t.Fatal(err)
	}
	after := st.Stats()
	if after.Evictions == 0 {
		t.Fatal("aged segments not evicted")
	}
	if after.Segments > 2 {
		t.Fatalf("expected only fresh segments to survive, have %d", after.Segments)
	}
	res, err := st.Query("s", Query{Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows[len(res.Windows)-1].Index != 40 {
		t.Fatal("fresh window lost to age eviction")
	}
}

func TestClosedStore(t *testing.T) {
	st := openTest(t, "", Options{})
	st.Close()
	if err := st.Append("s", testWindow(0, 1e-3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed store: %v", err)
	}
	if _, err := st.Query("s", Query{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed store: %v", err)
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{SegmentBytes: 1 << 10})
	for i := int64(0); i < 30; i++ {
		if err := st.Append(fmt.Sprintf("s%d", i%3), testWindow(i, 1e-3)); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, have %d", len(segs))
	}
	// All three sessions are indexed across segments after reopen.
	st.Close()
	st2 := openTest(t, dir, Options{SegmentBytes: 1 << 10})
	for s := 0; s < 3; s++ {
		res, err := st2.Query(fmt.Sprintf("s%d", s), Query{Limit: 100})
		if err != nil || len(res.Windows) != 10 {
			t.Fatalf("session s%d after reopen: %v, %d windows", s, err, len(res.Windows))
		}
	}
}
