// Package profstore persists rolling profile windows — the on-disk half
// of the continuous-profiling pipeline. Sealed windows append to
// length+CRC-framed records in numbered segment files; an in-memory
// index (rebuilt on open) serves time-range queries without scanning
// disk; retention evicts whole segments, oldest first, by byte budget
// and age. Reopening after a crash truncates a torn tail record and
// resumes appending — everything already sealed survives a daemon
// restart.
//
// The store is deliberately simple: one writer lock, no background
// compaction, no fsync per record (a crash loses at most the OS write-
// behind window; the framing makes the loss clean, never corrupt).
package profstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"emprof/internal/core"
	"emprof/internal/jsonfast"
)

// ErrNotRetained marks a query whose whole range lies in windows the
// retention policy has already evicted: the data existed but is gone for
// good (HTTP 410, not 404). A partially-evicted range is not an error —
// the retained windows return with Result.Truncated set.
var ErrNotRetained = errors.New("profstore: requested windows no longer retained")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("profstore: store closed")

// Options tunes a store.
type Options struct {
	// Dir is the segment directory; empty means a memory-only store with
	// the same retention semantics (windows then do not survive a
	// restart, but the query surface is identical).
	Dir string
	// MaxBytes bounds the summed segment payload; the oldest whole
	// segments are evicted past it. 0 means the default (256 MiB);
	// negative means unbounded.
	MaxBytes int64
	// MaxAge evicts segments whose newest record is older; 0 disables
	// age-based eviction.
	MaxAge time.Duration
	// SegmentBytes is the roll threshold for the active segment. 0 means
	// the default (4 MiB). Smaller segments evict at finer granularity.
	SegmentBytes int64
	// Now overrides the clock, for tests; nil means time.Now.
	Now func() time.Time
}

// Defaults for Options zero values.
const (
	DefaultMaxBytes     = 256 << 20
	DefaultSegmentBytes = 4 << 20
)

func (o Options) withDefaults() Options {
	if o.MaxBytes == 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// record is the persisted document: one sealed window plus its session
// and seal wall time.
type record struct {
	Session  string             `json:"session"`
	SealedNs int64              `json:"sealed_ns"`
	Window   core.ProfileWindow `json:"window"`
}

// Frame layout: magic, payload length, payload CRC32 (IEEE), payload.
var frameMagic = [4]byte{'E', 'M', 'P', 'W'}

const frameHeader = 4 + 4 + 4

// maxRecordBytes bounds one framed payload (a window's stall list for
// any sane window width sits far below this).
const maxRecordBytes = 64 << 20

type segment struct {
	name        string
	f           *os.File // nil in memory mode
	mem         []byte   // memory-mode backing
	size        int64    // framed bytes written
	maxSealedNs int64
}

type entry struct {
	seg      *segment
	off, n   int64 // payload position within the segment
	idx      int64
	startS   float64
	endS     float64
	sealedNs int64
}

// Store is an append-only window store with an in-memory index.
type Store struct {
	opt Options

	mu      sync.Mutex
	segs    []*segment // oldest first; the last is the active one
	index   map[string][]entry
	evicted map[string]int64 // session -> window indexes < this are gone
	total   int64
	nextSeg int
	closed  bool
	scratch []byte // reused append frame buffer; guarded by mu

	metricEvictions int64
}

// Open opens (or creates) a store. With a directory, existing segments
// are scanned, a torn tail record on the newest segment is truncated
// away, and appending resumes where the last clean record ended.
func Open(opt Options) (*Store, error) {
	st := &Store{
		opt:     opt.withDefaults(),
		index:   make(map[string][]entry),
		evicted: make(map[string]int64),
	}
	if st.opt.Dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(st.opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profstore: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(st.opt.Dir, "*.seg"))
	if err != nil {
		return nil, fmt.Errorf("profstore: %w", err)
	}
	sort.Strings(names)
	for i, name := range names {
		seg, err := st.openSegment(name, i == len(names)-1)
		if err != nil {
			return nil, err
		}
		if n := segNumber(name); n >= st.nextSeg {
			st.nextSeg = n + 1
		}
		st.segs = append(st.segs, seg)
		st.total += seg.size
	}
	st.loadEvictions()
	for s := range st.index {
		sort.Slice(st.index[s], func(i, j int) bool { return st.index[s][i].idx < st.index[s][j].idx })
	}
	return st, nil
}

func segNumber(path string) int {
	base := filepath.Base(path)
	var n int
	fmt.Sscanf(base, "%d.seg", &n)
	return n
}

// openSegment scans one segment file, indexing every clean record. A
// record that fails its frame check ends the scan: on the newest
// segment the file is truncated there (a torn append from a crash);
// elsewhere the remainder is simply ignored.
func (st *Store) openSegment(name string, newest bool) (*segment, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("profstore: %w", err)
	}
	seg := &segment{name: name, f: f}
	var off int64
	hdr := make([]byte, frameHeader)
	var payload []byte
	for {
		if _, err := f.ReadAt(hdr, off); err != nil {
			break // io.EOF or a short tail: end of clean data
		}
		if [4]byte(hdr[:4]) != frameMagic {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		want := binary.LittleEndian.Uint32(hdr[8:12])
		if n <= 0 || n > maxRecordBytes {
			break
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := f.ReadAt(payload, off+frameHeader); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		st.indexRecord(seg, off+frameHeader, n, &rec)
		off += frameHeader + n
		seg.size = off
	}
	if newest {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("profstore: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("profstore: %w", err)
		}
	}
	return seg, nil
}

func (st *Store) indexRecord(seg *segment, payloadOff, payloadLen int64, rec *record) {
	st.index[rec.Session] = append(st.index[rec.Session], entry{
		seg: seg, off: payloadOff, n: payloadLen,
		idx: rec.Window.Index, startS: rec.Window.StartS, endS: rec.Window.EndS,
		sealedNs: rec.SealedNs,
	})
	if rec.SealedNs > seg.maxSealedNs {
		seg.maxSealedNs = rec.SealedNs
	}
}

// evictionsFile persists the per-session eviction watermarks so a query
// for evicted windows still answers "gone for good" (410) across a
// restart, not "never existed".
func (st *Store) evictionsFile() string { return filepath.Join(st.opt.Dir, "evictions.json") }

func (st *Store) loadEvictions() {
	data, err := os.ReadFile(st.evictionsFile())
	if err != nil {
		return
	}
	var m map[string]int64
	if json.Unmarshal(data, &m) == nil {
		for s, v := range m {
			st.evicted[s] = v
		}
	}
}

func (st *Store) saveEvictions() {
	if st.opt.Dir == "" {
		return
	}
	data, err := json.Marshal(st.evicted)
	if err != nil {
		return
	}
	tmp := st.evictionsFile() + ".tmp"
	if os.WriteFile(tmp, data, 0o644) == nil {
		os.Rename(tmp, st.evictionsFile())
	}
}

// Append persists one sealed window and applies retention. It is safe
// for concurrent use with Query. It runs on the session's analysis
// worker, so the record is framed into a scratch buffer the store reuses
// across appends (hand-rolled window codec, no reflection walk) — the
// seal path costs no per-window garbage beyond segment growth.
func (st *Store) Append(session string, w *core.ProfileWindow) error {
	if session == "" {
		return fmt.Errorf("profstore: empty session ID")
	}
	sealedNs := st.opt.Now().UnixNano()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	// Frame and payload share one buffer: magic + length + CRC header,
	// then the record JSON appended in place.
	b := append(st.scratch[:0], frameMagic[:]...)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = append(b, `{"session":`...)
	b = jsonfast.AppendString(b, session)
	b = append(b, `,"sealed_ns":`...)
	b = strconv.AppendInt(b, sealedNs, 10)
	b = append(b, `,"window":`...)
	b, err := w.AppendJSON(b)
	if err != nil {
		return fmt.Errorf("profstore: %w", err)
	}
	b = append(b, '}')
	st.scratch = b
	payload := b[frameHeader:]
	if int64(len(payload)) > maxRecordBytes {
		return fmt.Errorf("profstore: window record of %d bytes exceeds the %d-byte frame bound", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[8:12], crc32.ChecksumIEEE(payload))

	seg, err := st.activeSegmentLocked(int64(len(b)))
	if err != nil {
		return err
	}
	if seg.f != nil {
		if _, err := seg.f.Write(b); err != nil {
			return fmt.Errorf("profstore: %w", err)
		}
	} else {
		seg.mem = append(seg.mem, b...)
	}
	rec := record{Session: session, SealedNs: sealedNs, Window: *w}
	st.indexRecord(seg, seg.size+frameHeader, int64(len(payload)), &rec)
	seg.size += int64(len(b))
	st.total += int64(len(b))
	st.applyRetentionLocked()
	return nil
}

// activeSegmentLocked returns the segment the next frame appends to,
// rolling a new one when the active segment would overflow.
func (st *Store) activeSegmentLocked(frameLen int64) (*segment, error) {
	if n := len(st.segs); n > 0 && st.segs[n-1].size+frameLen <= st.opt.SegmentBytes {
		return st.segs[n-1], nil
	}
	seg := &segment{}
	if st.opt.Dir != "" {
		seg.name = filepath.Join(st.opt.Dir, fmt.Sprintf("%08d.seg", st.nextSeg))
		f, err := os.OpenFile(seg.name, os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
		if err != nil {
			return nil, fmt.Errorf("profstore: %w", err)
		}
		seg.f = f
	} else {
		// Memory mode: size the backing to the roll threshold up front —
		// the segment fills to it before rolling, and appends land on the
		// analysis worker, where doubling-growth copies would tax ingest.
		if cap := st.opt.SegmentBytes; frameLen <= cap {
			seg.mem = make([]byte, 0, cap)
		}
	}
	st.nextSeg++
	st.segs = append(st.segs, seg)
	return seg, nil
}

// applyRetentionLocked evicts whole oldest segments past the byte
// budget or age bound. The active (newest) segment is never evicted.
func (st *Store) applyRetentionLocked() {
	now := st.opt.Now().UnixNano()
	changed := false
	for len(st.segs) > 1 {
		oldest := st.segs[0]
		overBytes := st.opt.MaxBytes > 0 && st.total > st.opt.MaxBytes
		overAge := st.opt.MaxAge > 0 && oldest.maxSealedNs > 0 && now-oldest.maxSealedNs > int64(st.opt.MaxAge)
		if !overBytes && !overAge {
			break
		}
		st.evictSegmentLocked(oldest)
		st.segs = st.segs[1:]
		changed = true
	}
	if changed {
		st.saveEvictions()
	}
}

func (st *Store) evictSegmentLocked(seg *segment) {
	for session, entries := range st.index {
		keep := entries[:0]
		for _, e := range entries {
			if e.seg == seg {
				if e.idx+1 > st.evicted[session] {
					st.evicted[session] = e.idx + 1
				}
				continue
			}
			keep = append(keep, e)
		}
		if len(keep) == 0 {
			delete(st.index, session)
		} else {
			st.index[session] = keep
		}
	}
	st.total -= seg.size
	if seg.f != nil {
		seg.f.Close()
		os.Remove(seg.name)
	}
	st.metricEvictions++
}

// Query selects a session's retained windows overlapping the given
// range.
type Query struct {
	// FromS and ToS bound the stream-time range [FromS, ToS); ToS <= 0
	// means unbounded.
	FromS, ToS float64
	// HasAfter engages the pagination cursor: only windows with an index
	// strictly greater than AfterIndex are returned. The zero Query has
	// no cursor — every retained window in range matches. As a
	// convenience a bare AfterIndex > 0 also engages the cursor, so
	// copying Result.NextAfter straight into AfterIndex pages correctly
	// except across a page ending at window 0; cursor loops should set
	// HasAfter, which expresses "after window 0" unambiguously.
	HasAfter   bool
	AfterIndex int64
	// Limit caps the returned windows (<= 0 means the default 512).
	Limit int
	// Last, when > 0, keeps only the newest Last matching windows before
	// Limit applies — how `emprof top` tails a session.
	Last int
}

// DefaultQueryLimit caps windows per response when the query names none.
const DefaultQueryLimit = 512

// Result is one query page.
type Result struct {
	Windows []core.ProfileWindow `json:"windows"`
	// Truncated reports that part of the requested range existed but was
	// evicted by retention: the returned windows are the retained part.
	Truncated bool `json:"truncated,omitempty"`
	// More/NextAfter page: pass NextAfter as the next AfterIndex.
	More      bool  `json:"more,omitempty"`
	NextAfter int64 `json:"next_after,omitempty"`
	// LatestIndex is the newest retained window index for the session
	// (-1 when it has none).
	LatestIndex int64 `json:"latest_index"`
}

// HasSession reports whether the store retains (or remembers evicting)
// any window of the session.
func (st *Store) HasSession(session string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.index[session]) > 0 || st.evicted[session] > 0
}

// Query returns the session's retained windows overlapping the range,
// oldest first. A range that lies entirely in evicted windows is
// ErrNotRetained; a session the store has never seen returns an empty
// result (the caller decides whether that is a 404 — the store cannot
// know about live sessions that have not sealed a window yet).
func (st *Store) Query(session string, q Query) (Result, error) {
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultQueryLimit
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	res := Result{Windows: []core.ProfileWindow{}, LatestIndex: -1}
	if st.closed {
		return res, ErrClosed
	}
	entries := st.index[session]
	evictedThrough := st.evicted[session]
	if len(entries) > 0 {
		res.LatestIndex = entries[len(entries)-1].idx
	}
	inRange := func(e entry) bool {
		if q.ToS > 0 && e.startS >= q.ToS {
			return false
		}
		return e.endS > q.FromS || (e.startS == e.endS && e.startS >= q.FromS)
	}
	if len(entries) == 0 {
		if evictedThrough > 0 {
			return res, fmt.Errorf("%w: session %q windows 0..%d evicted", ErrNotRetained, session, evictedThrough-1)
		}
		return res, nil
	}
	if evictedThrough > 0 && q.FromS < entries[0].startS {
		// The range reaches below the oldest retained window, into
		// territory retention reclaimed.
		if q.ToS > 0 && q.ToS <= entries[0].startS {
			return res, fmt.Errorf("%w: session %q range [%g, %g) precedes the oldest retained window at %g s",
				ErrNotRetained, session, q.FromS, q.ToS, entries[0].startS)
		}
		res.Truncated = true
	}
	cursor := q.HasAfter || q.AfterIndex > 0
	var picked []entry
	for _, e := range entries {
		if cursor && e.idx <= q.AfterIndex {
			continue
		}
		if inRange(e) {
			picked = append(picked, e)
		}
	}
	if q.Last > 0 && len(picked) > q.Last {
		picked = picked[len(picked)-q.Last:]
	}
	if len(picked) > limit {
		picked = picked[:limit]
		res.More = true
	}
	for _, e := range picked {
		w, err := st.readWindowLocked(e)
		if err != nil {
			return res, err
		}
		res.Windows = append(res.Windows, w)
		res.NextAfter = e.idx
	}
	return res, nil
}

func (st *Store) readWindowLocked(e entry) (core.ProfileWindow, error) {
	var payload []byte
	if e.seg.f != nil {
		payload = make([]byte, e.n)
		if _, err := e.seg.f.ReadAt(payload, e.off); err != nil {
			return core.ProfileWindow{}, fmt.Errorf("profstore: %w", err)
		}
	} else {
		payload = e.seg.mem[e.off : e.off+e.n]
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return core.ProfileWindow{}, fmt.Errorf("profstore: %w", err)
	}
	return rec.Window, nil
}

// Stats is the store's observable footprint.
type Stats struct {
	Segments  int
	Bytes     int64
	Sessions  int
	Evictions int64
}

// Stats snapshots the store's footprint.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Segments:  len(st.segs),
		Bytes:     st.total,
		Sessions:  len(st.index),
		Evictions: st.metricEvictions,
	}
}

// Close releases segment handles. Appends and queries fail afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	for _, seg := range st.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
	return nil
}
