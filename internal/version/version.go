// Package version holds the single build-version constant shared by every
// emprof command (emprof, emsim, embench, emprofd) and reported by the
// profiling service's /metrics endpoint.
package version

// Version is the repository build version. Bump it when the capture
// format, the service API, or the profiler's default configuration
// changes in a way callers can observe.
const Version = "0.3.0"
