package core

import (
	"testing"

	"emprof/internal/em"
	"emprof/internal/sim"
)

// profileBoth runs the batch and streaming analyzers on the same capture.
func profileBoth(t *testing.T, c *em.Capture) (*Profile, *Profile) {
	t.Helper()
	batch := MustNewAnalyzer(DefaultConfig()).Profile(c)
	stream, err := ProfileStream(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return batch, stream
}

// assertSameStalls compares the two profiles' event lists, allowing ±1
// sample of boundary skew per event (the batch analyzer's end-of-signal
// clamping differs slightly from the stream's drain).
func assertSameStalls(t *testing.T, batch, stream *Profile) {
	t.Helper()
	if len(batch.Stalls) != len(stream.Stalls) {
		t.Fatalf("event counts differ: batch=%d stream=%d", len(batch.Stalls), len(stream.Stalls))
	}
	for i := range batch.Stalls {
		b, s := batch.Stalls[i], stream.Stalls[i]
		if d := b.StartSample - s.StartSample; d < -1 || d > 1 {
			t.Fatalf("event %d start: batch=%d stream=%d", i, b.StartSample, s.StartSample)
		}
		if d := b.EndSample - s.EndSample; d < -1 || d > 1 {
			t.Fatalf("event %d end: batch=%d stream=%d", i, b.EndSample, s.EndSample)
		}
		if b.Refresh != s.Refresh {
			t.Fatalf("event %d refresh flag differs", i)
		}
	}
	if batch.Misses != stream.Misses || batch.RefreshStalls != stream.RefreshStalls {
		t.Fatalf("counts differ: batch %d/%d stream %d/%d",
			batch.Misses, batch.RefreshStalls, stream.Misses, stream.RefreshStalls)
	}
}

func TestStreamMatchesBatchOnSyntheticDips(t *testing.T) {
	dips := map[int]int{}
	for i := 0; i < 40; i++ {
		dips[3000+i*600] = 10 + i%6
	}
	dips[30000] = 100 // refresh-class event
	c := synthCapture(40000, dips, 0.1, 1.3, 0, 5)
	batch, stream := profileBoth(t, c)
	assertSameStalls(t, batch, stream)
}

func TestStreamMatchesBatchUnderNoise(t *testing.T) {
	dips := map[int]int{5000: 12, 12000: 14, 25000: 11, 33000: 12}
	c := synthCapture(40000, dips, 0.12, 0.9, 0.05, 11)
	batch, stream := profileBoth(t, c)
	assertSameStalls(t, batch, stream)
}

func TestStreamMatchesBatchOnRandomSignals(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 5; trial++ {
		dips := map[int]int{}
		for i := 0; i < 10+trial*5; i++ {
			dips[2000+rng.Intn(30000)] = 8 + rng.Intn(20)
		}
		c := synthCapture(36000, dips, 0.1+0.02*float64(trial), 1, 0.03, uint64(trial)+21)
		batch, stream := profileBoth(t, c)
		assertSameStalls(t, batch, stream)
	}
}

func TestStreamCallback(t *testing.T) {
	c := synthCapture(20000, map[int]int{6000: 12, 12000: 12}, 0.1, 1, 0, 1)
	s, err := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	var live []Stall
	s.OnStall = func(st Stall) { live = append(live, st) }
	for i, x := range c.Samples {
		s.Push(x)
		// Decisions lag by half the normalisation window (~4000 samples
		// at 40 MHz with the 200 µs default): the stall ending at ~6012
		// must be delivered by ~11000.
		if i == 11000 && len(live) == 0 {
			t.Fatal("first stall (at ~6000) not delivered within the pipeline latency")
		}
	}
	prof := s.Finalize()
	if len(live) != len(prof.Stalls) {
		t.Fatalf("callback saw %d events, profile has %d", len(live), len(prof.Stalls))
	}
}

func TestStreamEmptyAndTiny(t *testing.T) {
	s, err := NewStreamAnalyzer(DefaultConfig(), 40e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Finalize()
	if len(p.Stalls) != 0 || p.ExecCycles != 0 {
		t.Fatal("empty stream must yield empty profile")
	}

	s2, _ := NewStreamAnalyzer(DefaultConfig(), 40e6, 1e9)
	for i := 0; i < 5; i++ {
		s2.Push(1)
	}
	p2 := s2.Finalize()
	if len(p2.Stalls) != 0 {
		t.Fatal("tiny stream must not fabricate stalls")
	}
}

func TestStreamInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnterThreshold = 0
	if _, err := NewStreamAnalyzer(cfg, 40e6, 1e9); err == nil {
		t.Fatal("invalid config accepted")
	}
}
