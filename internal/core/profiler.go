// Package core implements EMPROF itself (Section IV of the paper): given
// the magnitude of an EM side-channel signal captured around the processor
// clock frequency, it (1) normalises the signal against probe-position and
// supply-voltage effects by tracking a moving minimum and maximum of the
// magnitude, (2) identifies every significant dip whose duration exceeds a
// threshold chosen to be "significantly shorter than the LLC latency but
// significantly longer than typical on-chip latencies", and (3) reports
// each dip as one LLC-miss-induced stall with its measured duration in
// processor cycles. Refresh-coincident stalls (2–3 µs, Fig. 5) are
// classified separately, as the paper's reporting does.
package core

import (
	"fmt"
	"time"

	"emprof/internal/dsp"
	"emprof/internal/em"
	"emprof/internal/trace"
)

// Config holds the profiler's tuning knobs. DefaultConfig returns the
// values used throughout the paper reproduction; the ablation benchmarks
// sweep them.
type Config struct {
	// NormWindowS is the moving min/max window, in seconds. It must be
	// much longer than any stall (so the minimum tracks the stall floor
	// without the maximum collapsing) and much shorter than supply-drift
	// periods (so normalisation tracks the drift).
	NormWindowS float64
	// EnterThreshold and ExitThreshold implement hysteresis on the
	// normalised magnitude: a dip begins when the signal falls below
	// EnterThreshold and ends when it rises above ExitThreshold.
	EnterThreshold float64
	ExitThreshold  float64
	// MinStallS is the minimum dip duration reported as an LLC-miss
	// stall.
	MinStallS float64
	// RefreshMinS is the duration at or above which a stall is classified
	// as refresh-coincident (the paper observes 2–3 µs for these).
	RefreshMinS float64
	// SmoothSamples applies a short moving average before detection to
	// suppress single-sample noise; 0 or 1 disables it.
	SmoothSamples int
	// MaxDipDepth is the deepest normalised value a dip must reach to be
	// reported. A fully-stalled core sits at the power floor (normalised
	// ≈ 0), while clusters of on-chip-latency stalls (LLC *hits*) only
	// reduce average activity part-way; depth separates the two even when
	// such a cluster lasts longer than MinStallS. It also reproduces the
	// paper's Fig. 12 low-bandwidth behaviour: at 20 MHz a short stall
	// spans under two samples, never reaches the floor after band-
	// limiting, and is therefore not detected.
	MaxDipDepth float64
	// MaxDipDepthLong and LongStallS relax the depth requirement for long
	// dips: acquisition noise can keep a dip's floor above MaxDipDepth,
	// but a dip that stays down for LongStallS or more cannot be an
	// on-chip-latency cluster, so a looser depth bound suffices.
	MaxDipDepthLong float64
	LongStallS      float64
	// MinRangeFrac guards normalisation in windows without genuine stall
	// contrast: when (max-min) < MinRangeFrac*max the sample is treated
	// as non-dipping. A fully-stalled core draws a small fraction of its
	// busy power, so windows containing a real stall always have a large
	// relative range; windows whose "range" is just busy-IPC ripple
	// (marker loops, cache-resident code) stay below the guard.
	MinRangeFrac float64
	// ProbeShiftRatio, when > 1, arms the position-adaptive resync: a
	// busy-level shift sustained beyond the stall ceiling whose ratio
	// exceeds this value (or falls below its inverse) re-seeds the
	// normalisation state, flagging the straddling half-window so a probe
	// bump costs one bounded resync instead of a run of phantom stalls.
	// It covers the band below the gain-step detector (ratio 2.5), where
	// a 1–2 mm probe bump lands. 0 (the default) disables the detector;
	// it is opt-in because workload phase changes legitimately move the
	// busy level by up to ~2.2×, so values that low trade spurious
	// resyncs on phase-heavy workloads for probe robustness. 1.4 works
	// well when the probe is expected to move.
	ProbeShiftRatio float64
}

// DefaultConfig returns the profiler configuration used for all paper
// experiments.
func DefaultConfig() Config {
	return Config{
		NormWindowS:     200e-6,
		EnterThreshold:  0.32,
		ExitThreshold:   0.42,
		MinStallS:       90e-9,
		RefreshMinS:     1.5e-6,
		SmoothSamples:   3,
		MaxDipDepth:     0.18,
		MaxDipDepthLong: 0.32,
		LongStallS:      170e-9,
		MinRangeFrac:    0.40,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NormWindowS <= 0 {
		return fmt.Errorf("core: norm window %v <= 0", c.NormWindowS)
	}
	if c.EnterThreshold <= 0 || c.EnterThreshold >= 1 {
		return fmt.Errorf("core: enter threshold %v out of (0,1)", c.EnterThreshold)
	}
	if c.ExitThreshold < c.EnterThreshold || c.ExitThreshold >= 1 {
		return fmt.Errorf("core: exit threshold %v invalid (enter=%v)", c.ExitThreshold, c.EnterThreshold)
	}
	if c.MinStallS < 0 || c.RefreshMinS < c.MinStallS {
		return fmt.Errorf("core: invalid duration thresholds min=%v refresh=%v", c.MinStallS, c.RefreshMinS)
	}
	if c.MaxDipDepth <= 0 || c.MaxDipDepth >= 1 {
		return fmt.Errorf("core: max dip depth %v out of (0,1)", c.MaxDipDepth)
	}
	if c.MaxDipDepthLong < c.MaxDipDepth || c.MaxDipDepthLong >= 1 {
		return fmt.Errorf("core: long-dip depth %v invalid (short=%v)", c.MaxDipDepthLong, c.MaxDipDepth)
	}
	if c.LongStallS < c.MinStallS {
		return fmt.Errorf("core: long-stall threshold %v below min stall %v", c.LongStallS, c.MinStallS)
	}
	if c.MinRangeFrac < 0 || c.MinRangeFrac >= 1 {
		return fmt.Errorf("core: min range fraction %v out of [0,1)", c.MinRangeFrac)
	}
	if c.ProbeShiftRatio != 0 && c.ProbeShiftRatio <= 1 {
		return fmt.Errorf("core: probe shift ratio %v invalid (0 disables, else > 1)", c.ProbeShiftRatio)
	}
	return nil
}

// Stall is one detected LLC-miss-induced processor stall.
type Stall struct {
	// StartSample and EndSample delimit the dip in the capture
	// (half-open).
	StartSample, EndSample int
	// StartS is the dip onset in seconds from the capture start.
	StartS float64
	// DurationS is the dip duration in seconds (Δt in the paper's
	// Fig. 1).
	DurationS float64
	// Cycles is DurationS × clock: the stall cost in processor cycles.
	Cycles float64
	// Depth is the minimum normalised magnitude inside the dip.
	Depth float64
	// Refresh is true for refresh-coincident stalls.
	Refresh bool
	// Confidence scores the detection in [0, 1] from the dip's depth
	// margin, the normalisation contrast (a local-SNR proxy) around it,
	// and its distance from the nearest detected acquisition impairment.
	// Clean, deep, well-contrasted dips score near 1.
	Confidence float64
}

// Profile is the outcome of analysing one capture.
type Profile struct {
	// Stalls lists every detected stall in time order. StallList carries
	// fast JSON codecs wire-compatible with a plain []Stall.
	Stalls StallList
	// Misses is the reported LLC miss count: one per non-refresh stall
	// (the paper counts refresh-coincident events separately).
	Misses int
	// RefreshStalls counts refresh-coincident events.
	RefreshStalls int
	// StallCycles is the summed cost of all stalls, in cycles.
	StallCycles float64
	// ExecCycles is the capture length in cycles.
	ExecCycles float64
	// SampleRate and ClockHz echo the capture metadata.
	SampleRate, ClockHz float64
	// Normalized optionally retains the normalised signal for debugging
	// and display experiments (set Analyzer.KeepNormalized).
	Normalized []float64
	// Quality aggregates the signal-quality monitor's findings: counts of
	// corrupt/dropped/clipped/burst samples, normalisation resyncs, and
	// dips aborted across impairments. Clean captures report Clean().
	Quality Quality
}

// MeanConfidence returns the mean per-stall confidence (1 when no stalls
// were detected, so a clean empty profile is not penalised).
func (p *Profile) MeanConfidence() float64 {
	if len(p.Stalls) == 0 {
		return 1
	}
	sum := 0.0
	for _, s := range p.Stalls {
		sum += s.Confidence
	}
	return sum / float64(len(p.Stalls))
}

// StallFraction returns stall cycles as a fraction of execution time —
// the "Miss Latency (%Total Time)" column of Table IV when multiplied by
// 100.
func (p *Profile) StallFraction() float64 {
	if p.ExecCycles == 0 {
		return 0
	}
	return p.StallCycles / p.ExecCycles
}

// AvgStallCycles returns the mean stall duration in cycles.
func (p *Profile) AvgStallCycles() float64 {
	if len(p.Stalls) == 0 {
		return 0
	}
	return p.StallCycles / float64(len(p.Stalls))
}

// LatencyHistogram bins stall durations (in cycles) into a histogram with
// the given range, reproducing Fig. 11.
func (p *Profile) LatencyHistogram(lo, hi float64, bins int) *dsp.Histogram {
	h := dsp.NewHistogram(lo, hi, bins)
	for _, s := range p.Stalls {
		h.Add(s.Cycles)
	}
	return h
}

// MissRateSeries returns the number of detected misses per time bin of
// binS seconds across the capture — the boot-profiling view of Fig. 13.
func (p *Profile) MissRateSeries(binS float64) []int {
	if binS <= 0 {
		panic("core: bin width must be positive")
	}
	durS := p.ExecCycles / p.ClockHz
	n := int(durS/binS) + 1
	out := make([]int, n)
	for _, s := range p.Stalls {
		b := int(s.StartS / binS)
		if b >= 0 && b < n {
			out[b]++
		}
	}
	return out
}

// StallsBetween returns the stalls whose onset lies in [loS, hiS) seconds.
func (p *Profile) StallsBetween(loS, hiS float64) []Stall {
	var out []Stall
	for _, s := range p.Stalls {
		if s.StartS >= loS && s.StartS < hiS {
			out = append(out, s)
		}
	}
	return out
}

// Analyzer applies EMPROF to captures.
type Analyzer struct {
	cfg Config
	// KeepNormalized retains the normalised signal in the Profile.
	KeepNormalized bool
	// Observer, when non-nil, receives one trace event per analyzer
	// decision (dip candidates, accepted/rejected stalls, resyncs,
	// quality flags, stage timings). Leaving it nil keeps the pipeline on
	// its original path: output is bit-identical and the per-sample hot
	// path allocation-free, and no clock is ever read. Observers never
	// influence the produced Profile. With ProfileParallel the observer
	// is invoked from multiple goroutines and must be safe for concurrent
	// use (all sinks in internal/trace are).
	Observer trace.Observer
}

// NewAnalyzer returns an analyzer; it returns an error for invalid
// configurations.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Analyzer{cfg: cfg}, nil
}

// MustNewAnalyzer is NewAnalyzer but panics on configuration errors.
func MustNewAnalyzer(cfg Config) *Analyzer {
	a, err := NewAnalyzer(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the analyzer configuration.
func (a *Analyzer) Config() Config { return a.cfg }

// Normalize maps the capture's magnitude into [0,1] against a moving
// minimum and maximum, compensating probe coupling and supply drift
// (Section IV: "EMPROF compensates for these effects by tracking a moving
// minimum and maximum of the signal's magnitude").
//
// The min/max windows are centred on each sample (implemented as trailing
// windows read with a half-window lead), so a dip is normalised against
// the busy level on both sides. The input is first passed through the
// signal-quality monitor, which sanitises corrupt and dropped samples and
// re-seeds the min/max state after gaps and gain discontinuities; on a
// clean capture the output is bit-identical to the unhardened pipeline.
func (a *Analyzer) Normalize(c *em.Capture) []float64 {
	mon := newMonitor(a.cfg, c.SampleRate)
	san, _, resyncs := mon.scan(c.Samples)
	norm, _, _, _ := a.normalize(c, san, resyncs)
	return norm
}

// normalize maps the sanitised samples into [0, 1] against the moving
// min/max, resetting the window state at each resync position. It returns
// the normalised signal, the raw trailing min/max series (for confidence
// scoring), and the half-window in samples.
func (a *Analyzer) normalize(c *em.Capture, x []float64, resyncs []int) (norm, mins, maxs []float64, half int) {
	n := len(x)
	if n == 0 {
		return nil, nil, nil, 0
	}
	w := int(a.cfg.NormWindowS * c.SampleRate)
	if w < 8 {
		w = 8
	}
	if w > n {
		w = n
	}
	if a.cfg.SmoothSamples > 1 {
		ma := dsp.NewMovingAverage(a.cfg.SmoothSamples)
		sm := make([]float64, n)
		ma.ProcessBlock(x, sm)
		// Compensate the moving average's (k-1)/2-sample group delay so
		// dips stay aligned with the raw timeline.
		lead := (a.cfg.SmoothSamples - 1) / 2
		for i := 0; i < n-lead; i++ {
			sm[i] = sm[i+lead]
		}
		x = sm
	}

	mins = make([]float64, n)
	maxs = make([]float64, n)
	mmin := dsp.NewMovingMin(w)
	mmax := dsp.NewMovingMax(w)
	ri := 0
	for i := 0; i < n; i++ {
		if ri < len(resyncs) && resyncs[ri] == i {
			mmin.Reset()
			mmax.Reset()
			ri++
		}
		mins[i] = mmin.Process(x[i])
		maxs[i] = mmax.Process(x[i])
	}

	norm = make([]float64, n)
	half = w / 2
	for i := 0; i < n; i++ {
		// Centre the window: read the trailing stats half a window ahead.
		j := i + half
		if j >= n {
			j = n - 1
		}
		lo, hi := mins[j], maxs[j]
		r := hi - lo
		if hi <= 0 || r < a.cfg.MinRangeFrac*hi {
			// Nearly-constant signal: no dip information here.
			norm[i] = 1
			continue
		}
		v := (x[i] - lo) / r
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		norm[i] = v
	}
	return norm, mins, maxs, half
}

// Profile runs the full EMPROF pipeline on a capture: quality monitoring,
// normalisation, and stall detection.
func (a *Analyzer) Profile(c *em.Capture) *Profile {
	n := len(c.Samples)
	p := &Profile{
		ExecCycles: float64(n) * c.CyclesPerSample(),
		SampleRate: c.SampleRate,
		ClockHz:    c.ClockHz,
	}
	if n == 0 {
		return p
	}
	obs := a.Observer
	mon := newMonitor(a.cfg, c.SampleRate)
	mon.obs = obs

	// Stage timings are measured only when tracing: the nil-observer path
	// never reads the clock.
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	san, mask, resyncs := mon.scan(c.Samples)
	if obs != nil {
		now := time.Now()
		obs.StageTiming(trace.StageTiming{Stage: trace.StageScan, DurationNs: now.Sub(t0).Nanoseconds(), Samples: int64(n)})
		t0 = now
	}
	norm, mins, maxs, half := a.normalize(c, san, resyncs)
	if obs != nil {
		now := time.Now()
		obs.StageTiming(trace.StageTiming{Stage: trace.StageNormalize, DurationNs: now.Sub(t0).Nanoseconds(), Samples: int64(n)})
		t0 = now
	}
	if a.KeepNormalized {
		p.Normalized = norm
	}

	d := newDetector(a.cfg, c.SampleRate, c.ClockHz, half, p, &mon.q, nil)
	d.obs = obs
	for i, v := range norm {
		var fl qflag
		if mask != nil {
			fl = mask[i]
		}
		j := i + half
		if j >= n {
			j = n - 1
		}
		d.decide(int64(i), v, fl, mins[j], maxs[j])
	}
	d.finish(int64(n))
	if obs != nil {
		obs.StageTiming(trace.StageTiming{Stage: trace.StageDetect, DurationNs: time.Since(t0).Nanoseconds(), Samples: int64(n)})
	}
	p.Quality = mon.q
	return p
}
