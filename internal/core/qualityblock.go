package core

import (
	"math"

	"emprof/internal/trace"
)

// processBlock is the block form of process: it consumes len(xs) raw
// samples and writes the sanitised value and impairment flags of each to
// san and flags (both at least len(xs) long). Retroactive flag patches
// that land inside the block are applied to flags directly; patches that
// reach positions before the block are reported through patchOlder(back,
// f), where back counts positions before the block start (1 = the
// position immediately preceding it) — patchOlder returns false when the
// position has already been decided, which stops the patch run exactly
// where the per-sample path's queue-bounds check would. Resyncs are
// reported through onResync with the block-relative sample index.
//
// The per-sample path (process/processInner/track/trackShift) is the
// behavioural reference: this function is a transcription of it with the
// monitor's hot state hoisted into locals for the duration of the block,
// removing the per-sample field loads, store-backs and call overhead
// that dominate the monitor on streaming ingest. The Push≡PushBlock
// property tests compare the two implementations sample-for-sample,
// including the full quality record and every piece of exported state.
//
// An attached trace observer receives exactly the Resync and QualityFlag
// events process would emit, in the same order and with the same
// payloads; the nil-observer fast path pays one predictable branch per
// sample, as process does.
func (m *monitor) processBlock(xs, san []float64, flags []qflag, patchOlder func(back int, f qflag) bool, onResync func(i int)) {
	// Structural parameters (never written).
	persist := m.persist
	resyncGap := m.resyncGap
	clipRun := m.clipRun
	half := m.half
	stepRatio := m.stepRatio
	shiftRatio := m.shiftRatio
	burstK := m.burstK
	clipMinFrac := m.clipMinFrac
	refAlpha := m.refAlpha
	distinctAlpha := m.distinctAlpha
	obs := m.obs

	// The busy tracker's moving max, inlined: the deque step is a
	// faithful copy of dsp.MovingExtremum.Process (max polarity) with
	// the front candidate cached in registers — it reloads only on the
	// at-most-one expiry per sample, or when back-pops empty the deque
	// and the pushed sample becomes the front.
	sq := m.smax.Deque()
	sIdx, sVal := sq.Idx, sq.Val
	sHead, sTail := sq.Head, sq.Tail
	sCount := sq.Count
	sMask := len(sVal) - 1
	sW := sq.W
	var sFrontIdx int64
	var sFrontVal float64
	if sHead != sTail {
		sFrontIdx = sIdx[sHead&(len(sIdx)-1)]
		sFrontVal = sVal[sHead&(len(sVal)-1)]
	}

	// Hot mutable state, written back after the block.
	samples := m.q.Samples
	stepPending := m.stepResyncPending
	pendingCause := m.pendingCause
	resyncCause := m.resyncCause
	lastGood := m.lastGood
	zeroRun := m.zeroRun
	runVal := m.runVal
	runLen := m.runLen
	clipActive := m.clipActive
	distinct := m.distinct
	prevX := m.prevX
	havePrev := m.havePrev
	ref := m.ref
	refReady := m.refReady
	warm := m.warm
	sinceHigh := m.sinceHigh
	stepDir := m.stepDir
	stepLen := m.stepLen
	sinceShiftHigh := m.sinceShiftHigh
	shiftDir := m.shiftDir
	shiftLen := m.shiftLen

	for ii, x := range xs {
		samples++
		var fl qflag
		var retro int
		resync := false
		if stepPending {
			resync = true
			stepPending = false
			resyncCause = pendingCause
		}

		var y float64
		trackRaw := false // burst: the busy tracker sees the raw excursion
		discard := false  // NaN/gap: the tracker runs but its verdict is dropped
		if math.IsNaN(x) || math.IsInf(x, 0) {
			m.q.NaNSamples++
			runLen, zeroRun = 0, 0
			clipActive = false
			y = lastGood
			fl = qNaN
			discard = true
		} else if x == 0 {
			zeroRun++
			m.q.DroppedSamples++
			runLen = 0
			clipActive = false
			y = lastGood
			fl = qGap
			discard = true
		} else {
			if zeroRun >= resyncGap {
				resync = true
				resyncCause = trace.ResyncGap
				m.q.Resyncs++
			}
			zeroRun = 0

			if havePrev {
				d := 0.0
				if x != prevX {
					d = 1
				}
				distinct += distinctAlpha * (d - distinct)
			}
			prevX, havePrev = x, true

			if x == runVal {
				runLen++
			} else {
				runVal, runLen = x, 1
				clipActive = false
			}
			if refReady && distinct > 0.9 && runLen >= clipRun && x >= clipMinFrac*ref {
				fl |= qClip
				if !clipActive {
					retro = runLen - 1
					if retro > half-1 {
						retro = half - 1
					}
					m.q.ClippedSamples += int64(retro) + 1
					clipActive = true
				} else {
					m.q.ClippedSamples++
				}
			}

			if refReady && x > burstK*ref && fl == 0 {
				m.q.BurstSamples++
				y = lastGood
				fl = qBurst
				trackRaw = true
			} else {
				y = x
				lastGood = y
			}
		}

		// ---- track(tx), inlined with hoisted state ----
		tx := y
		if trackRaw {
			tx = x
		}
		si := sCount
		sCount++
		for sHead != sTail {
			t := (sTail - 1) & sMask
			if sVal[t&(len(sVal)-1)] > tx {
				break
			}
			sTail = t
		}
		if sHead == sTail {
			sFrontIdx, sFrontVal = si, tx
		}
		sIdx[sTail&(len(sIdx)-1)] = si
		sVal[sTail&(len(sVal)-1)] = tx
		sTail = (sTail + 1) & sMask
		if sFrontIdx <= si-sW {
			sHead = (sHead + 1) & sMask
			sFrontIdx = sIdx[sHead&(len(sIdx)-1)]
			sFrontVal = sVal[sHead&(len(sVal)-1)]
		}
		sm := sFrontVal
		stepped := false
		stepRetro := 0
		if !refReady {
			warm++
			if warm >= persist {
				ref = sm
				refReady = true
			}
		} else if ref <= 0 {
			ref = sm
		} else {
			if tx > stepRatio*ref {
				sinceHigh = 0
			} else if sinceHigh < 1<<30 {
				sinceHigh++
			}
			ratio := sm / ref
			dir := 0
			if ratio > stepRatio {
				dir = 1
			} else if ratio < 1/stepRatio {
				dir = -1
			}
			sdir := 0
			if shiftRatio > 0 {
				if tx > shiftRatio*ref {
					sinceShiftHigh = 0
				} else if sinceShiftHigh < 1<<30 {
					sinceShiftHigh++
				}
				if ratio > shiftRatio {
					sdir = 1
				} else if ratio < 1/shiftRatio {
					sdir = -1
				}
			}
			if dir == 1 && sinceHigh > persist/2 {
				// Dead excursion the moving max is still holding.
				stepDir, stepLen = 0, 0
			} else {
				switch {
				case dir == 0:
					stepDir, stepLen = 0, 0
					if sdir == 0 {
						ref += refAlpha * (sm - ref)
					}
				case dir == stepDir:
					stepLen++
				default:
					stepDir, stepLen = dir, 1
				}
				if stepLen >= persist {
					m.q.Resyncs++
					stepRetro = half - 1
					if stepRetro < 0 {
						stepRetro = 0
					}
					m.q.StepSamples += int64(stepRetro) + 1
					ref = sm
					stepDir, stepLen = 0, 0
					shiftDir, shiftLen = 0, 0
					pendingCause = trace.ResyncGainStep
					stepped = true
				}
			}
			if !stepped && shiftRatio > 0 {
				// ---- trackShift(sdir, sm), inlined ----
				if sdir == 1 && sinceShiftHigh > persist/2 {
					shiftDir, shiftLen = 0, 0
				} else {
					switch {
					case sdir == 0:
						shiftDir, shiftLen = 0, 0
					case sdir == shiftDir:
						shiftLen++
					default:
						shiftDir, shiftLen = sdir, 1
					}
					if shiftLen >= persist {
						m.q.Resyncs++
						stepRetro = half - 1
						if stepRetro < 0 {
							stepRetro = 0
						}
						m.q.StepSamples += int64(stepRetro) + 1
						ref = sm
						shiftDir, shiftLen = 0, 0
						stepDir, stepLen = 0, 0
						pendingCause = trace.ResyncProbeShift
						stepped = true
					}
				}
			}
		}
		if stepped && !discard {
			stepPending = true
			fl |= qStep
			retro = stepRetro
		}

		if obs != nil {
			pos := samples - 1
			if resync {
				obs.Resync(trace.Resync{Pos: pos, Cause: resyncCause})
			}
			if fl != 0 {
				obs.QualityFlag(trace.QualityFlag{Pos: pos, Flags: fl, Retro: retro})
			}
		}

		san[ii] = y
		flags[ii] = fl
		if fl != 0 {
			for k := 1; k <= retro; k++ {
				if j := ii - k; j >= 0 {
					flags[j] |= fl
				} else if !patchOlder(k-ii, fl) {
					break
				}
			}
		}
		if resync {
			onResync(ii)
		}
	}

	m.smax.SetDeque(sHead, sTail, sCount)
	m.q.Samples = samples
	m.stepResyncPending = stepPending
	m.pendingCause = pendingCause
	m.resyncCause = resyncCause
	m.lastGood = lastGood
	m.zeroRun = zeroRun
	m.runVal = runVal
	m.runLen = runLen
	m.clipActive = clipActive
	m.distinct = distinct
	m.prevX = prevX
	m.havePrev = havePrev
	m.ref = ref
	m.refReady = refReady
	m.warm = warm
	m.sinceHigh = sinceHigh
	m.stepDir = stepDir
	m.stepLen = stepLen
	m.sinceShiftHigh = sinceShiftHigh
	m.shiftDir = shiftDir
	m.shiftLen = shiftLen
}
