package core

import (
	"encoding/json"
	"strconv"

	"emprof/internal/jsonfast"
)

// AppendJSON appends the profile encoded exactly as encoding/json
// renders a Profile value — same field order, float formatting, and
// null/array conventions — so handlers can serialize profile responses
// without the stdlib's reflection walk and compaction re-scan. The
// byte-identity is property-tested against the stdlib in
// profilejson_test.go.
func (p *Profile) AppendJSON(b []byte) ([]byte, error) {
	var err error
	b = append(b, `{"Stalls":`...)
	if b, err = p.Stalls.appendJSON(b); err != nil {
		return nil, err
	}
	b = append(b, `,"Misses":`...)
	b = strconv.AppendInt(b, int64(p.Misses), 10)
	b = append(b, `,"RefreshStalls":`...)
	b = strconv.AppendInt(b, int64(p.RefreshStalls), 10)
	b = append(b, `,"StallCycles":`...)
	if b, err = jsonfast.AppendFloat(b, p.StallCycles); err != nil {
		return nil, err
	}
	b = append(b, `,"ExecCycles":`...)
	if b, err = jsonfast.AppendFloat(b, p.ExecCycles); err != nil {
		return nil, err
	}
	b = append(b, `,"SampleRate":`...)
	if b, err = jsonfast.AppendFloat(b, p.SampleRate); err != nil {
		return nil, err
	}
	b = append(b, `,"ClockHz":`...)
	if b, err = jsonfast.AppendFloat(b, p.ClockHz); err != nil {
		return nil, err
	}
	b = append(b, `,"Normalized":`...)
	if p.Normalized == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, v := range p.Normalized {
			if i > 0 {
				b = append(b, ',')
			}
			if b, err = jsonfast.AppendFloat(b, v); err != nil {
				return nil, err
			}
		}
		b = append(b, ']')
	}
	b = append(b, `,"Quality":`...)
	if b, err = p.Quality.appendJSON(b); err != nil {
		return nil, err
	}
	return append(b, '}'), nil
}

func (q *Quality) appendJSON(b []byte) ([]byte, error) {
	b = append(b, `{"Samples":`...)
	b = strconv.AppendInt(b, q.Samples, 10)
	b = append(b, `,"NaNSamples":`...)
	b = strconv.AppendInt(b, q.NaNSamples, 10)
	b = append(b, `,"DroppedSamples":`...)
	b = strconv.AppendInt(b, q.DroppedSamples, 10)
	b = append(b, `,"ClippedSamples":`...)
	b = strconv.AppendInt(b, q.ClippedSamples, 10)
	b = append(b, `,"BurstSamples":`...)
	b = strconv.AppendInt(b, q.BurstSamples, 10)
	b = append(b, `,"StepSamples":`...)
	b = strconv.AppendInt(b, q.StepSamples, 10)
	b = append(b, `,"Resyncs":`...)
	b = strconv.AppendInt(b, int64(q.Resyncs), 10)
	b = append(b, `,"AbortedDips":`...)
	b = strconv.AppendInt(b, int64(q.AbortedDips), 10)
	return append(b, '}'), nil
}

// UnmarshalJSON decodes a profile. The fast path parses exactly the
// compact shape AppendJSON (and reflection-driven encoding/json) emits;
// anything else — whitespace, reordered or unknown fields — falls back
// to the stdlib decoder, so the codec stays tolerant to every input the
// plain struct accepted.
func (p *Profile) UnmarshalJSON(data []byte) error {
	data = jsonfast.TrimSpace(data)
	if out, i, ok := parseProfileSpan(data, 0); ok && i == len(data) {
		*p = out
		return nil
	}
	// plainProfile shadows Profile without its methods so the fallback
	// cannot recurse; the StallList field keeps its own tolerant codec.
	// Decoding starts from the current value to preserve the stdlib's
	// merge semantics for partial objects.
	type plainProfile Profile
	out := plainProfile(*p)
	if err := json.Unmarshal(data, &out); err != nil {
		return err
	}
	*p = Profile(out)
	return nil
}

// ParseProfileJSON parses a compact profile object starting at data[i],
// returning the index just past its closing brace. It accepts exactly
// the shape AppendJSON emits; callers embedding profiles in larger fast
// codecs (service.Snapshot) use it to decode the nested object in one
// pass, falling back to the stdlib on !ok.
func ParseProfileJSON(data []byte, i int) (Profile, int, bool) {
	return parseProfileSpan(data, i)
}

// parseProfileSpan parses a compact profile object starting at data[i],
// returning the index just past its closing brace.
func parseProfileSpan(data []byte, i int) (Profile, int, bool) {
	var p Profile
	var ok bool
	var n int64
	if i, ok = jsonfast.Eat(data, i, `{"Stalls":`); !ok {
		return p, i, false
	}
	if p.Stalls, i, ok = parseStallsSpan(data, i); !ok {
		return p, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Misses":`); !ok {
		return p, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return p, i, false
	}
	p.Misses = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"RefreshStalls":`); !ok {
		return p, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return p, i, false
	}
	p.RefreshStalls = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"StallCycles":`); !ok {
		return p, i, false
	}
	if p.StallCycles, i, ok = jsonfast.Float(data, i); !ok {
		return p, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"ExecCycles":`); !ok {
		return p, i, false
	}
	if p.ExecCycles, i, ok = jsonfast.Float(data, i); !ok {
		return p, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"SampleRate":`); !ok {
		return p, i, false
	}
	if p.SampleRate, i, ok = jsonfast.Float(data, i); !ok {
		return p, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"ClockHz":`); !ok {
		return p, i, false
	}
	if p.ClockHz, i, ok = jsonfast.Float(data, i); !ok {
		return p, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Normalized":`); !ok {
		return p, i, false
	}
	if p.Normalized, i, ok = parseFloatArraySpan(data, i); !ok {
		return p, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Quality":`); !ok {
		return p, i, false
	}
	if p.Quality, i, ok = parseQualitySpan(data, i); !ok {
		return p, i, false
	}
	if i >= len(data) || data[i] != '}' {
		return p, i, false
	}
	return p, i + 1, true
}

func parseFloatArraySpan(data []byte, i int) ([]float64, int, bool) {
	if j, ok := jsonfast.Eat(data, i, "null"); ok {
		return nil, j, true
	}
	if i >= len(data) || data[i] != '[' {
		return nil, i, false
	}
	i++
	if i < len(data) && data[i] == ']' {
		return []float64{}, i + 1, true
	}
	out := make([]float64, 0, 64)
	for {
		v, j, ok := jsonfast.Float(data, i)
		if !ok {
			return nil, i, false
		}
		out = append(out, v)
		i = j
		if i < len(data) && data[i] == ']' {
			return out, i + 1, true
		}
		if i >= len(data) || data[i] != ',' {
			return nil, i, false
		}
		i++
	}
}

func parseQualitySpan(data []byte, i int) (Quality, int, bool) {
	var q Quality
	var ok bool
	var n int64
	if i, ok = jsonfast.Eat(data, i, `{"Samples":`); !ok {
		return q, i, false
	}
	if q.Samples, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"NaNSamples":`); !ok {
		return q, i, false
	}
	if q.NaNSamples, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"DroppedSamples":`); !ok {
		return q, i, false
	}
	if q.DroppedSamples, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"ClippedSamples":`); !ok {
		return q, i, false
	}
	if q.ClippedSamples, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"BurstSamples":`); !ok {
		return q, i, false
	}
	if q.BurstSamples, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"StepSamples":`); !ok {
		return q, i, false
	}
	if q.StepSamples, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Resyncs":`); !ok {
		return q, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	q.Resyncs = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"AbortedDips":`); !ok {
		return q, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return q, i, false
	}
	q.AbortedDips = int(n)
	if i >= len(data) || data[i] != '}' {
		return q, i, false
	}
	return q, i + 1, true
}
