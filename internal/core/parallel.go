package core

// This file implements the parallel batch analyzer: ProfileParallel shards
// a long capture across a bounded worker pool and produces a Profile that
// is bit-identical to Analyzer.Profile on the same capture — stalls,
// confidences, quality counters and all. It exists because a single
// sequential pass caps profiling throughput far below what multi-core
// hardware allows, while production deployments (long boot traces,
// multi-minute SPEC captures, sweep grids) routinely analyse hundreds of
// millions of samples.
//
// Exact equivalence dictates the decomposition. The pipeline's stages
// differ in how much history they carry:
//
//   - The signal-quality monitor holds infinite-memory state (busy-level
//     and distinctness EMAs, last-good sample), so it cannot be restarted
//     mid-capture without changing its decisions. It stays sequential.
//   - The smoothing moving average keeps a running sum whose floating-
//     point rounding depends on the entire prefix, so a freshly seeded
//     window would differ in final bits. It also stays sequential — and is
//     by far the cheapest stage.
//   - The moving min/max normalisation windows are finite (NormWindowS):
//     the stats at position j depend only on the last window of smoothed
//     values and the resync points inside it. Chunks overlapping by one
//     window reproduce them exactly. This is the expensive stage, and it
//     parallelises.
//   - The dip detector is a cheap state machine over the normalised
//     values; replaying it sequentially over the chunk results in order
//     reproduces hysteresis, abort and confidence behaviour exactly.
//
// The stages are therefore run as a pipeline rather than as barriers: a
// producer goroutine scans the capture once (monitor + smoothing),
// dispatching each chunk to the worker pool as soon as the scan passes the
// chunk's read horizon; workers normalise chunks concurrently; the caller
// replays the detector over results in chunk order, freeing each chunk as
// it is consumed. Wall time approaches max(scan, normalise/workers)
// instead of their sum.

import (
	"runtime"
	"time"

	"emprof/internal/dsp"
	"emprof/internal/em"
	"emprof/internal/trace"
)

// ParallelOptions tunes ProfileParallel. The zero value auto-sizes
// everything; no setting changes the analysis result, only its speed and
// memory footprint.
type ParallelOptions struct {
	// Workers bounds the normalisation worker pool; <= 0 uses
	// runtime.GOMAXPROCS(0). Workers == 1 runs the plain sequential
	// analyzer.
	Workers int
	// ChunkSamples is the shard length in samples; <= 0 picks a default
	// large enough that the one-window warm-up overlap each worker redoes
	// stays a small fraction of its chunk. Any positive value is valid and
	// produces the same profile.
	ChunkSamples int
	// MaxInFlight bounds how many chunks may be dispatched but not yet
	// merged (memory control); <= 0 uses Workers+2.
	MaxInFlight int
}

// chunkJob describes one shard handed to a normalisation worker. All
// sample indices are absolute capture positions.
type chunkJob struct {
	idx    int
	lo, hi int // owned positions [lo, hi)
	// resyncs are the normalisation re-seed positions falling inside this
	// chunk's deque feed range (a snapshot: the producer may append more
	// for later chunks concurrently).
	resyncs []int
	// mask is the impairment-mask snapshot; entries for [lo, hi) are final
	// by the time the job is dispatched. Nil when no impairment has been
	// flagged yet.
	mask []qflag
}

// chunkResult is a normalised shard awaiting detector replay.
type chunkResult struct {
	chunkJob
	// norm holds the normalised values of positions [lo, hi).
	norm []float64
	// statLo/statHi hold the (min, max) normalisation stats each decision
	// was taken against — the detector records them on dip entry.
	statLo, statHi []float64
}

// ProfileParallel runs the full EMPROF pipeline over the capture using a
// bounded worker pool. The returned profile is deterministic and
// bit-identical to Profile(c) for every option setting: worker count and
// chunk size only affect speed. Captures too short to shard profitably
// (or Workers == 1) fall through to the sequential path.
func (a *Analyzer) ProfileParallel(c *em.Capture, opts ParallelOptions) *Profile {
	n := len(c.Samples)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Window geometry, exactly as Analyzer.normalize derives it.
	w := int(a.cfg.NormWindowS * c.SampleRate)
	if w < 8 {
		w = 8
	}
	if w > n {
		w = n
	}
	half := w / 2
	lead := 0
	if a.cfg.SmoothSamples > 1 {
		lead = (a.cfg.SmoothSamples - 1) / 2
	}

	chunk := opts.ChunkSamples
	if chunk <= 0 {
		// Default: large enough that the one-window overlap redone per
		// chunk stays a small fraction of the chunk's own work.
		chunk = 1 << 16
		if min := 2 * w; chunk < min {
			chunk = min
		}
	}
	numChunks := 0
	if chunk > 0 {
		numChunks = (n + chunk - 1) / chunk
	}
	if workers < 2 || numChunks < 2 {
		return a.Profile(c)
	}

	p := &Profile{
		ExecCycles: float64(n) * c.CyclesPerSample(),
		SampleRate: c.SampleRate,
		ClockHz:    c.ClockHz,
	}

	// Tracing: the producer goroutine emits the monitor's resync/flag
	// events and the scan timing, workers emit per-chunk normalize
	// timings, and the merge loop emits detection events and ChunkMerged
	// — concurrently, which is why Analyzer.Observer must be
	// goroutine-safe when used with ProfileParallel.
	obs := a.Observer
	mon := newMonitor(a.cfg, c.SampleRate)
	mon.obs = obs
	san := make([]float64, n)
	// x is the normalisation input: the smoothed series when smoothing is
	// enabled, otherwise the sanitised samples themselves.
	x := san
	var sm []float64
	if a.cfg.SmoothSamples > 1 {
		sm = make([]float64, n)
		x = sm
	}

	inFlight := opts.MaxInFlight
	if inFlight <= 0 {
		inFlight = workers + 2
	}
	sem := make(chan struct{}, inFlight)
	jobs := make(chan chunkJob, numChunks)
	results := make([]chan chunkResult, numChunks)
	for i := range results {
		results[i] = make(chan chunkResult, 1)
	}

	// Producer: the sequential scan (quality monitor + smoothing). Chunk c
	// may be dispatched once the scan has passed its read horizon: the
	// last smoothed value its worker reads (hi-1+half, written `lead`
	// positions later) and the last scan position that can retroactively
	// flag one of its samples (hi-1 + the monitor's half-window).
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		defer close(jobs)
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
			defer func() {
				obs.StageTiming(trace.StageTiming{Stage: trace.StageScan, DurationNs: time.Since(t0).Nanoseconds(), Samples: int64(n)})
			}()
		}
		var ma *dsp.MovingAverage
		if a.cfg.SmoothSamples > 1 {
			ma = dsp.NewMovingAverage(a.cfg.SmoothSamples)
		}
		var mask []qflag
		var resyncs []int
		next := 0
		dispatch := func() {
			lo := next * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			feedStart := lo + half - w + 1
			if feedStart < 0 {
				feedStart = 0
			}
			statsEnd := hi - 1 + half
			if statsEnd > n-1 {
				statsEnd = n - 1
			}
			// Snapshot the resync positions inside the feed range; the
			// shared slice keeps growing behind us.
			var rs []int
			for _, r := range resyncs {
				if r > statsEnd {
					break
				}
				if r >= feedStart {
					rs = append(rs, r)
				}
			}
			sem <- struct{}{}
			jobs <- chunkJob{idx: next, lo: lo, hi: hi, resyncs: rs, mask: mask}
			next++
		}
		for pos := 0; pos < n; pos++ {
			y, fl, retro, rs := mon.process(c.Samples[pos])
			san[pos] = y
			if fl != 0 {
				if mask == nil {
					mask = make([]qflag, n)
				}
				mask[pos] |= fl
				for k := 1; k <= retro && pos-k >= 0; k++ {
					mask[pos-k] |= fl
				}
			}
			if rs {
				resyncs = append(resyncs, pos)
			}
			if ma != nil {
				// The centred smoothing of Analyzer.normalize: position
				// pos-lead takes the trailing average ending at pos, and
				// the last `lead` positions keep their uncompensated
				// trailing values.
				tm := ma.Process(y)
				if pos >= lead {
					sm[pos-lead] = tm
				}
				if pos >= n-lead {
					sm[pos] = tm
				}
			}
			for next < numChunks {
				hiC := next*chunk + chunk
				if hiC > n {
					hiC = n
				}
				horizon := hiC + half + lead
				if horizon > n {
					horizon = n
				}
				if pos+1 < horizon {
					break
				}
				dispatch()
			}
		}
		for next < numChunks {
			dispatch()
		}
	}()

	// Workers: normalise chunks independently. Each worker re-derives the
	// moving min/max stats from one window before its chunk, which is
	// exactly the history the finite windows remember.
	for wk := 0; wk < workers; wk++ {
		go func() {
			for job := range jobs {
				var t0 time.Time
				if obs != nil {
					t0 = time.Now()
				}
				res := a.normalizeChunk(x, n, w, half, job)
				if obs != nil {
					obs.StageTiming(trace.StageTiming{Stage: trace.StageNormalize, DurationNs: time.Since(t0).Nanoseconds(), Samples: int64(job.hi - job.lo)})
				}
				results[job.idx] <- res
			}
		}()
	}

	// Merge: replay the dip detector over the chunks in capture order.
	// The detector's cross-chunk state (open dips, hysteresis, last
	// impairment distance for confidence) carries over naturally because
	// the replay is a single sequential pass over bit-identical inputs.
	var detQ Quality
	var norm []float64
	if a.KeepNormalized {
		norm = make([]float64, 0, n)
	}
	d := newDetector(a.cfg, c.SampleRate, c.ClockHz, half, p, &detQ, nil)
	d.obs = obs
	var mergeT0 time.Time
	if obs != nil {
		mergeT0 = time.Now()
	}
	for ci := 0; ci < numChunks; ci++ {
		res := <-results[ci]
		stallsBefore := len(p.Stalls)
		for i := res.lo; i < res.hi; i++ {
			var fl qflag
			if res.mask != nil {
				fl = res.mask[i]
			}
			k := i - res.lo
			d.decide(int64(i), res.norm[k], fl, res.statLo[k], res.statHi[k])
		}
		if obs != nil {
			obs.ChunkMerged(trace.ChunkMerged{
				Chunk: res.idx, Lo: int64(res.lo), Hi: int64(res.hi),
				Stalls: len(p.Stalls) - stallsBefore,
			})
		}
		if norm != nil {
			norm = append(norm, res.norm...)
		}
		<-sem
	}
	d.finish(int64(n))
	if obs != nil {
		obs.StageTiming(trace.StageTiming{Stage: trace.StageMerge, DurationNs: time.Since(mergeT0).Nanoseconds(), Samples: int64(n)})
	}
	<-scanDone
	p.Normalized = norm
	p.Quality = mon.q
	p.Quality.AbortedDips += detQ.AbortedDips
	return p
}

// normalizeChunk computes the normalised values and decision stats for the
// chunk's owned positions [lo, hi), warming the moving min/max windows up
// from one full window before the first read stat so every value matches
// the sequential pass bit-for-bit.
func (a *Analyzer) normalizeChunk(x []float64, n, w, half int, job chunkJob) chunkResult {
	feedStart := job.lo + half - w + 1
	if feedStart < 0 {
		feedStart = 0
	}
	statsEnd := job.hi - 1 + half
	if statsEnd > n-1 {
		statsEnd = n - 1
	}
	mmin := dsp.NewMovingMin(w)
	mmax := dsp.NewMovingMax(w)
	lows := make([]float64, statsEnd-feedStart+1)
	highs := make([]float64, statsEnd-feedStart+1)
	ri := 0
	for t := feedStart; t <= statsEnd; t++ {
		if ri < len(job.resyncs) && job.resyncs[ri] == t {
			mmin.Reset()
			mmax.Reset()
			ri++
		}
		lows[t-feedStart] = mmin.Process(x[t])
		highs[t-feedStart] = mmax.Process(x[t])
	}

	cn := job.hi - job.lo
	res := chunkResult{
		chunkJob: job,
		norm:     make([]float64, cn),
		statLo:   make([]float64, cn),
		statHi:   make([]float64, cn),
	}
	for i := job.lo; i < job.hi; i++ {
		j := i + half
		if j > n-1 {
			j = n - 1
		}
		lo, hi := lows[j-feedStart], highs[j-feedStart]
		k := i - job.lo
		res.statLo[k], res.statHi[k] = lo, hi
		r := hi - lo
		if hi <= 0 || r < a.cfg.MinRangeFrac*hi {
			res.norm[k] = 1
			continue
		}
		v := (x[i] - lo) / r
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		res.norm[k] = v
	}
	return res
}
