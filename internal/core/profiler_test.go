package core

import (
	"math"
	"testing"
	"testing/quick"

	"emprof/internal/em"
	"emprof/internal/sim"
)

// synthCapture builds a capture at 40 MHz / 1 GHz clock: busy level 1.0
// with small ripple, and dips to dipLevel at the given sample positions
// with the given sample lengths.
func synthCapture(n int, dips map[int]int, dipLevel float64, gain float64, noise float64, seed uint64) *em.Capture {
	rng := sim.NewRNG(seed)
	s := make([]float64, n)
	for i := range s {
		s[i] = 1.0 + 0.08*math.Sin(float64(i)/3)
	}
	for start, length := range dips {
		for i := start; i < start+length && i < n; i++ {
			s[i] = dipLevel
		}
	}
	for i := range s {
		s[i] = gain * (s[i] + noise*rng.NormFloat64())
		if s[i] < 0 {
			s[i] = 0
		}
	}
	return &em.Capture{Samples: s, SampleRate: 40e6, ClockHz: 1e9}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.NormWindowS = 0 },
		func(c *Config) { c.EnterThreshold = 0 },
		func(c *Config) { c.EnterThreshold = 1 },
		func(c *Config) { c.ExitThreshold = c.EnterThreshold - 0.1 },
		func(c *Config) { c.MinStallS = -1 },
		func(c *Config) { c.RefreshMinS = c.MinStallS - 1e-9 },
		func(c *Config) { c.MaxDipDepth = 0 },
		func(c *Config) { c.MaxDipDepthLong = c.MaxDipDepth / 2 },
		func(c *Config) { c.LongStallS = c.MinStallS / 2 },
		func(c *Config) { c.MinRangeFrac = 1 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestDetectsSingleDip(t *testing.T) {
	// One 12-sample dip (= 300 ns = 300 cycles).
	c := synthCapture(20000, map[int]int{10000: 12}, 0.1, 1, 0, 1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) != 1 {
		t.Fatalf("stalls %d, want 1", len(p.Stalls))
	}
	s := p.Stalls[0]
	if s.StartSample < 9995 || s.StartSample > 10005 {
		t.Fatalf("dip located at %d, want ~10000", s.StartSample)
	}
	if s.Cycles < 200 || s.Cycles > 450 {
		t.Fatalf("stall cycles %v, want ~300", s.Cycles)
	}
	if s.Refresh {
		t.Fatal("300-cycle stall misclassified as refresh")
	}
	if p.Misses != 1 || p.RefreshStalls != 0 {
		t.Fatalf("profile counts %d/%d", p.Misses, p.RefreshStalls)
	}
}

func TestCountsManyDips(t *testing.T) {
	dips := map[int]int{}
	for i := 0; i < 50; i++ {
		dips[2000+i*400] = 10
	}
	c := synthCapture(40000, dips, 0.12, 1, 0, 1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) != 50 {
		t.Fatalf("stalls %d, want 50", len(p.Stalls))
	}
}

func TestIgnoresShortDips(t *testing.T) {
	// 2 samples = 50 ns < MinStallS (90 ns): must be ignored.
	c := synthCapture(20000, map[int]int{10000: 2}, 0.1, 1, 0, 1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) != 0 {
		t.Fatalf("stalls %d, want 0 for sub-threshold dip", len(p.Stalls))
	}
}

func TestIgnoresShallowDips(t *testing.T) {
	// With a genuine full stall in the same normalisation window (which
	// anchors the moving minimum at the power floor), a co-located long
	// but shallow dip — an on-chip-latency cluster at ~0.55 of busy —
	// must be rejected by the depth criterion, while the real stall is
	// kept.
	c := synthCapture(20000, map[int]int{9000: 12}, 0.1, 1, 0, 1)
	for i := 10000; i < 10012; i++ {
		c.Samples[i] = 0.55
	}
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) != 1 {
		t.Fatalf("stalls %d, want only the deep dip", len(p.Stalls))
	}
	if p.Stalls[0].StartSample > 9020 {
		t.Fatalf("kept the wrong dip: %+v", p.Stalls[0])
	}
}

func TestClassifiesRefreshStall(t *testing.T) {
	// 100 samples = 2.5 µs >= RefreshMinS: refresh-coincident.
	c := synthCapture(40000, map[int]int{20000: 100, 5000: 12}, 0.1, 1, 0, 1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if p.RefreshStalls != 1 || p.Misses != 1 {
		t.Fatalf("refresh=%d misses=%d, want 1/1", p.RefreshStalls, p.Misses)
	}
}

func TestGainInvariance(t *testing.T) {
	// The normalisation stage must make detection invariant to the
	// probe-coupling factor (paper Section IV).
	f := func(gRaw uint8) bool {
		gain := 0.1 + float64(gRaw)/32
		c := synthCapture(20000, map[int]int{6000: 12, 12000: 15}, 0.1, gain, 0, 1)
		p := MustNewAnalyzer(DefaultConfig()).Profile(c)
		return len(p.Stalls) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDriftTolerance(t *testing.T) {
	// A slow multiplicative drift (power-supply variation) must not break
	// detection.
	c := synthCapture(60000, map[int]int{10000: 12, 30000: 12, 50000: 12}, 0.1, 1, 0, 1)
	for i := range c.Samples {
		c.Samples[i] *= 1 + 0.3*math.Sin(2*math.Pi*float64(i)/55000)
	}
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) != 3 {
		t.Fatalf("stalls %d under drift, want 3", len(p.Stalls))
	}
}

func TestNoiseRobustness(t *testing.T) {
	c := synthCapture(40000, map[int]int{10000: 12, 20000: 12, 30000: 12}, 0.15, 1, 0.06, 3)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) != 3 {
		t.Fatalf("stalls %d under noise, want 3", len(p.Stalls))
	}
}

func TestQuietSignalNoFalsePositives(t *testing.T) {
	// Busy ripple with no dips, moderate noise: nothing to report.
	c := synthCapture(60000, nil, 0, 1, 0.05, 9)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) > 1 {
		t.Fatalf("false positives on quiet signal: %d", len(p.Stalls))
	}
}

func TestEmptyCapture(t *testing.T) {
	p := MustNewAnalyzer(DefaultConfig()).Profile(&em.Capture{SampleRate: 40e6, ClockHz: 1e9})
	if len(p.Stalls) != 0 || p.ExecCycles != 0 {
		t.Fatal("empty capture must yield empty profile")
	}
}

func TestProfileStats(t *testing.T) {
	c := synthCapture(40000, map[int]int{10000: 12, 20000: 12}, 0.1, 1, 0, 1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if p.StallFraction() <= 0 || p.StallFraction() > 0.01 {
		t.Fatalf("stall fraction %v implausible", p.StallFraction())
	}
	if p.AvgStallCycles() < 200 || p.AvgStallCycles() > 500 {
		t.Fatalf("avg stall %v, want ~300", p.AvgStallCycles())
	}
	h := p.LatencyHistogram(0, 1000, 10)
	if h.Total() != 2 {
		t.Fatalf("histogram total %d, want 2", h.Total())
	}
}

func TestMissRateSeries(t *testing.T) {
	c := synthCapture(40000, map[int]int{2000: 12, 3000: 12, 30000: 12}, 0.1, 1, 0, 1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	// Capture is 1 ms; bins of 250 µs.
	series := p.MissRateSeries(250e-6)
	if len(series) < 4 {
		t.Fatalf("series too short: %d", len(series))
	}
	if series[0] != 2 {
		t.Fatalf("bin 0 = %d, want 2", series[0])
	}
	if series[3] != 1 {
		t.Fatalf("bin 3 = %d, want 1", series[3])
	}
}

func TestStallsBetween(t *testing.T) {
	c := synthCapture(40000, map[int]int{10000: 12, 30000: 12}, 0.1, 1, 0, 1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	// 10000 samples at 40 MHz = 250 µs.
	out := p.StallsBetween(0, 500e-6)
	if len(out) != 1 {
		t.Fatalf("stalls in first half: %d, want 1", len(out))
	}
}

func TestKeepNormalized(t *testing.T) {
	a := MustNewAnalyzer(DefaultConfig())
	a.KeepNormalized = true
	c := synthCapture(20000, map[int]int{10000: 12}, 0.1, 1, 0, 1)
	p := a.Profile(c)
	if len(p.Normalized) != len(c.Samples) {
		t.Fatal("normalized signal not retained")
	}
	for _, v := range p.Normalized {
		if v < 0 || v > 1 {
			t.Fatalf("normalized value %v out of [0,1]", v)
		}
	}
}

func TestHysteresisMergesJitter(t *testing.T) {
	// A dip whose middle sample bounces to just above the enter threshold
	// but below the exit threshold must stay one stall.
	c := synthCapture(20000, map[int]int{10000: 12}, 0.05, 1, 0, 1)
	// Compute approximately where normalised ~0.38 lands in raw units:
	// busy ~1, floor 0.05 -> raw ~0.42.
	c.Samples[10006] = 0.42
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if len(p.Stalls) != 1 {
		t.Fatalf("stalls %d, want 1 merged dip", len(p.Stalls))
	}
}
