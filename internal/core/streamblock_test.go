package core

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"emprof/internal/sim"
)

// blockConfigs are the configurations the block path must match the
// per-sample path under: smoothing on and off, wider smoothing (bigger
// group delay), probe-shift armed (extra resync source), and a tiny
// normalisation window (half-window of 4, so retroactive flag patches
// and pending drains hit their boundaries constantly).
func blockConfigs() map[string]Config {
	configs := map[string]Config{}
	configs["default"] = DefaultConfig()
	raw := DefaultConfig()
	raw.SmoothSamples = 1
	configs["unsmoothed"] = raw
	wide := DefaultConfig()
	wide.SmoothSamples = 5
	configs["wide-smooth"] = wide
	shift := DefaultConfig()
	shift.ProbeShiftRatio = 1.4
	configs["probe-shift"] = shift
	tiny := DefaultConfig()
	tiny.NormWindowS = 8 / 40e6 // w == 8, the floor
	configs["tiny-window"] = tiny
	return configs
}

// blockSeries builds an impaired stream: genuine stalls plus dropped
// runs, clipping bursts, a gain step, a probe displacement, and NaN
// spikes — every path that sets flags, patches them retroactively, or
// schedules resyncs.
func blockSeries(n int, seed uint64) []float64 {
	c := synthCapture(n, map[int]int{n / 8: 12, n / 3: 40, 2 * n / 3: 12}, 0.1, 1, 0.02, seed)
	s := c.Samples
	rng := sim.NewRNG(seed + 99)
	for i := n / 6; i < n/6+300 && i < n; i++ {
		s[i] = 0 // dropped-sample run
	}
	for i := n / 2; i < n/2+4 && i < n; i++ {
		s[i] = 6.0 // clipping burst
	}
	for i := 3 * n / 4; i < n; i++ {
		s[i] *= 2.5 // gain step (resync)
	}
	if n > 40 {
		s[n/4] = math.NaN()
		s[n/4+1] = math.Inf(1)
	}
	// Sporadic single-sample corruption.
	for k := 0; k < n/500; k++ {
		s[int(rng.Uint64()%uint64(n))] = 0
	}
	return s
}

// pushSplits feeds xs via PushBlock over the given split points (each
// entry is a block length; 0 means an empty block) and finalizes.
func blockProfile(t *testing.T, cfg Config, xs []float64, splits []int) (*Profile, *StreamState) {
	t.Helper()
	s, err := NewStreamAnalyzer(cfg, 40e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	rest := xs
	for _, k := range splits {
		if k > len(rest) {
			k = len(rest)
		}
		s.PushBlock(rest[:k])
		rest = rest[k:]
	}
	s.PushBlock(rest)
	mid := s.ExportState()
	return s.Finalize(), mid
}

// TestPushBlockEquivalentToPushLoop is the tentpole property: PushBlock
// over ANY split of the stream — including single-sample, empty, and
// larger-than-chunk blocks — produces a profile bit-identical to a Push
// loop, across smoothing, probe-shift, and window configurations, on an
// impaired stream exercising flags and resyncs.
func TestPushBlockEquivalentToPushLoop(t *testing.T) {
	const n = 30000
	for name, cfg := range blockConfigs() {
		t.Run(name, func(t *testing.T) {
			xs := blockSeries(n, 21)
			ref, err := NewStreamAnalyzer(cfg, 40e6, 1e9)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				ref.Push(x)
			}
			refState := ref.ExportState()
			want := ref.Finalize()

			rng := sim.NewRNG(77)
			cases := [][]int{
				{},                    // one giant block (> pushBlockN)
				{0, 1, 0, 2, 3},       // tiny and empty blocks up front
				{pushBlockN},          // exactly one chunk
				{pushBlockN - 1, 2},   // chunk boundary straddles
				{pushBlockN + 1, 500}, // just past a chunk
			}
			for c := 0; c < 4; c++ {
				var sp []int
				for tot := 0; tot < n/2; {
					k := int(rng.Uint64() % 1000)
					sp = append(sp, k)
					tot += k
				}
				cases = append(cases, sp)
			}
			for ci, sp := range cases {
				got, midState := blockProfile(t, cfg, xs, sp)
				if !reflect.DeepEqual(got, want) {
					gb, _ := json.Marshal(got)
					wb, _ := json.Marshal(want)
					t.Fatalf("case %d: block profile differs\n got: %s\nwant: %s", ci, gb, wb)
				}
				// The internal state at end-of-stream must match too, so a
				// hand-off from a block-fed analyzer resumes identically.
				if !reflect.DeepEqual(midState, refState) {
					t.Fatalf("case %d: exported state differs", ci)
				}
			}
		})
	}
}

// TestPushBlockInterleavedWithPush pins that per-sample and block pushes
// can be mixed freely on one analyzer — the service falls back to Push
// for partial-word tails mid-stream.
func TestPushBlockInterleavedWithPush(t *testing.T) {
	const n = 20000
	xs := blockSeries(n, 5)
	cfg := DefaultConfig()
	ref, err := NewStreamAnalyzer(cfg, 40e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		ref.Push(x)
	}
	want := ref.Finalize()

	s, err := NewStreamAnalyzer(cfg, 40e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(123)
	for i := 0; i < n; {
		if rng.Uint64()%2 == 0 {
			k := int(rng.Uint64() % 700)
			if i+k > n {
				k = n - i
			}
			s.PushBlock(xs[i : i+k])
			i += k
		} else {
			s.Push(xs[i])
			i++
		}
	}
	got := s.Finalize()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("interleaved Push/PushBlock profile differs from Push loop")
	}
}

// TestPushBlockHandoffMidBlock pins the fleet property on the block
// path: exporting after a block push and resuming elsewhere continues
// bit-identically, including through a JSON round trip of the state.
func TestPushBlockHandoffMidBlock(t *testing.T) {
	const n = 24000
	xs := blockSeries(n, 9)
	for name, cfg := range blockConfigs() {
		t.Run(name, func(t *testing.T) {
			ref, err := NewStreamAnalyzer(cfg, 40e6, 1e9)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				ref.Push(x)
			}
			want := ref.Finalize()

			for _, k := range []int{1, 37, n / 3, n / 2, n - 1} {
				a, err := NewStreamAnalyzer(cfg, 40e6, 1e9)
				if err != nil {
					t.Fatal(err)
				}
				a.PushBlock(xs[:k])
				blob, err := json.Marshal(a.ExportState())
				if err != nil {
					t.Fatal(err)
				}
				var wire StreamState
				if err := json.Unmarshal(blob, &wire); err != nil {
					t.Fatal(err)
				}
				b, err := ResumeStreamAnalyzer(&wire)
				if err != nil {
					t.Fatalf("resume at k=%d: %v", k, err)
				}
				b.PushBlock(xs[k:])
				if got := b.Finalize(); !reflect.DeepEqual(got, want) {
					t.Fatalf("hand-off at k=%d: block profile differs", k)
				}
			}
		})
	}
}
