package core

import (
	"encoding/json"
	"strconv"

	"emprof/internal/jsonfast"
)

// AppendJSON appends the window encoded exactly as encoding/json renders
// a ProfileWindow value — same tag-derived keys, field order, omitempty
// elisions, and float formatting. Sealing a window JSON-encodes it into
// the profile store on the session's analysis worker, so this codec is
// what keeps continuous profiling off the ingest path's reflection
// budget. Byte-identity is property-tested in windowjson_test.go.
func (w *ProfileWindow) AppendJSON(b []byte) ([]byte, error) {
	var err error
	b = append(b, `{"index":`...)
	b = strconv.AppendInt(b, w.Index, 10)
	b = append(b, `,"start_sample":`...)
	b = strconv.AppendInt(b, w.StartSample, 10)
	b = append(b, `,"end_sample":`...)
	b = strconv.AppendInt(b, w.EndSample, 10)
	b = append(b, `,"start_s":`...)
	if b, err = jsonfast.AppendFloat(b, w.StartS); err != nil {
		return nil, err
	}
	b = append(b, `,"end_s":`...)
	if b, err = jsonfast.AppendFloat(b, w.EndS); err != nil {
		return nil, err
	}
	if w.Final {
		b = append(b, `,"final":true`...)
	}
	b = append(b, `,"stalls":`...)
	if b, err = StallList(w.Stalls).appendJSON(b); err != nil {
		return nil, err
	}
	b = append(b, `,"misses":`...)
	b = strconv.AppendInt(b, int64(w.Misses), 10)
	b = append(b, `,"refresh_stalls":`...)
	b = strconv.AppendInt(b, int64(w.RefreshStalls), 10)
	b = append(b, `,"stall_cycles":`...)
	if b, err = jsonfast.AppendFloat(b, w.StallCycles); err != nil {
		return nil, err
	}
	b = append(b, `,"mean_confidence":`...)
	if b, err = jsonfast.AppendFloat(b, w.MeanConfidence); err != nil {
		return nil, err
	}
	b = append(b, `,"quality":`...)
	if b, err = w.Quality.appendJSON(b); err != nil {
		return nil, err
	}
	if len(w.Regions) > 0 {
		b = append(b, `,"regions":[`...)
		for i := range w.Regions {
			if i > 0 {
				b = append(b, ',')
			}
			r := &w.Regions[i]
			b = append(b, `{"region":`...)
			b = strconv.AppendInt(b, int64(r.Region), 10)
			if r.Name != "" {
				b = append(b, `,"name":`...)
				b = jsonfast.AppendString(b, r.Name)
			}
			b = append(b, `,"misses":`...)
			b = strconv.AppendInt(b, int64(r.Misses), 10)
			b = append(b, `,"stall_cycles":`...)
			if b, err = jsonfast.AppendFloat(b, r.StallCycles); err != nil {
				return nil, err
			}
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}'), nil
}

// MarshalJSON encodes the window via AppendJSON, so every path that
// serialises windows — the profiles endpoint, the router fan-in, the
// store — gets the hand-rolled codec through plain json.Marshal too.
func (w ProfileWindow) MarshalJSON() ([]byte, error) {
	return w.AppendJSON(make([]byte, 0, 256+len(w.Stalls)*176))
}

// UnmarshalJSON decodes a window. The fast path parses exactly the
// compact shape AppendJSON (and reflection-driven encoding/json) emits;
// anything else — whitespace, reordered or unknown fields — falls back
// to the stdlib decoder, so every input the plain struct accepted is
// still accepted.
func (w *ProfileWindow) UnmarshalJSON(data []byte) error {
	data = jsonfast.TrimSpace(data)
	if out, i, ok := ParseWindowJSON(data, 0); ok && i == len(data) {
		*w = out
		return nil
	}
	// plainWindow shadows ProfileWindow without its methods so the
	// fallback cannot recurse; decoding starts from the current value to
	// keep the stdlib's merge semantics for partial objects.
	type plainWindow ProfileWindow
	out := plainWindow(*w)
	if err := json.Unmarshal(data, &out); err != nil {
		return err
	}
	*w = ProfileWindow(out)
	return nil
}

// ParseWindowJSON parses a compact window object starting at data[i],
// returning the index just past its closing brace. It accepts exactly
// the shape AppendJSON emits; callers embedding windows in larger fast
// codecs use it to decode the nested object in one pass, falling back to
// the stdlib on !ok.
func ParseWindowJSON(data []byte, i int) (ProfileWindow, int, bool) {
	var w ProfileWindow
	var ok bool
	var n int64
	if i, ok = jsonfast.Eat(data, i, `{"index":`); !ok {
		return w, i, false
	}
	if w.Index, i, ok = jsonfast.Int(data, i); !ok {
		return w, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"start_sample":`); !ok {
		return w, i, false
	}
	if w.StartSample, i, ok = jsonfast.Int(data, i); !ok {
		return w, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"end_sample":`); !ok {
		return w, i, false
	}
	if w.EndSample, i, ok = jsonfast.Int(data, i); !ok {
		return w, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"start_s":`); !ok {
		return w, i, false
	}
	if w.StartS, i, ok = jsonfast.Float(data, i); !ok {
		return w, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"end_s":`); !ok {
		return w, i, false
	}
	if w.EndS, i, ok = jsonfast.Float(data, i); !ok {
		return w, i, false
	}
	if j, present := jsonfast.Eat(data, i, `,"final":`); present {
		if w.Final, i, ok = jsonfast.Bool(data, j); !ok {
			return w, i, false
		}
	}
	if i, ok = jsonfast.Eat(data, i, `,"stalls":`); !ok {
		return w, i, false
	}
	var stalls StallList
	if stalls, i, ok = parseStallsSpan(data, i); !ok {
		return w, i, false
	}
	w.Stalls = stalls
	if i, ok = jsonfast.Eat(data, i, `,"misses":`); !ok {
		return w, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return w, i, false
	}
	w.Misses = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"refresh_stalls":`); !ok {
		return w, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return w, i, false
	}
	w.RefreshStalls = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"stall_cycles":`); !ok {
		return w, i, false
	}
	if w.StallCycles, i, ok = jsonfast.Float(data, i); !ok {
		return w, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"mean_confidence":`); !ok {
		return w, i, false
	}
	if w.MeanConfidence, i, ok = jsonfast.Float(data, i); !ok {
		return w, i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"quality":`); !ok {
		return w, i, false
	}
	if w.Quality, i, ok = parseQualitySpan(data, i); !ok {
		return w, i, false
	}
	if j, present := jsonfast.Eat(data, i, `,"regions":[`); present {
		i = j
		for {
			var r WindowRegion
			if r, i, ok = parseRegionSpan(data, i); !ok {
				return w, i, false
			}
			w.Regions = append(w.Regions, r)
			if i < len(data) && data[i] == ']' {
				i++
				break
			}
			if i >= len(data) || data[i] != ',' {
				return w, i, false
			}
			i++
		}
	}
	if i >= len(data) || data[i] != '}' {
		return w, i, false
	}
	return w, i + 1, true
}

func parseRegionSpan(data []byte, i int) (WindowRegion, int, bool) {
	var r WindowRegion
	var ok bool
	var n int64
	if i, ok = jsonfast.Eat(data, i, `{"region":`); !ok {
		return r, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return r, i, false
	}
	r.Region = uint16(n)
	if j, present := jsonfast.Eat(data, i, `,"name":`); present {
		if r.Name, i, ok = jsonfast.String(data, j); !ok {
			return r, i, false
		}
	}
	if i, ok = jsonfast.Eat(data, i, `,"misses":`); !ok {
		return r, i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return r, i, false
	}
	r.Misses = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"stall_cycles":`); !ok {
		return r, i, false
	}
	if r.StallCycles, i, ok = jsonfast.Float(data, i); !ok {
		return r, i, false
	}
	if i >= len(data) || data[i] != '}' {
		return r, i, false
	}
	return r, i + 1, true
}
