package core

import (
	"fmt"
	"math"
	"testing"

	"emprof/internal/em"
	"emprof/internal/faults"
	"emprof/internal/sim"
)

// syntheticCapture builds a busy-level trace with periodic stall dips and
// optional acquisition nastiness (dropouts, NaN corruption) so equivalence
// is exercised on impaired signals, not just clean ones.
func syntheticCapture(n int, seed uint64, nasty bool) *em.Capture {
	rng := sim.NewRNG(seed)
	s := make([]float64, n)
	for i := range s {
		v := 1.0 + 0.1*rng.NormFloat64()
		switch {
		case i%4973 < 10:
			v = 0.05 + 0.01*rng.NormFloat64() // LLC-miss dip
		case i%50021 < 90 && i%50021 >= 60:
			v = 0.06 + 0.01*rng.NormFloat64() // refresh-length dip
		}
		if nasty {
			if i%40009 == 77 {
				v = 0 // digitizer dropout
			}
			if i%30011 == 5 {
				v = math.NaN()
			}
			if i%25013 == 11 {
				v = 40 // RF burst
			}
		}
		s[i] = math.Abs(v)
	}
	return &em.Capture{Samples: s, SampleRate: 50e6, ClockHz: 1e9}
}

// assertProfilesIdentical fails unless the two profiles are bit-identical
// in every reported field (Normalized is compared only when both kept it).
func assertProfilesIdentical(t *testing.T, want, got *Profile, ctx string) {
	t.Helper()
	if got.Misses != want.Misses || got.RefreshStalls != want.RefreshStalls {
		t.Fatalf("%s: misses/refresh %d/%d, want %d/%d", ctx,
			got.Misses, got.RefreshStalls, want.Misses, want.RefreshStalls)
	}
	if got.StallCycles != want.StallCycles || got.ExecCycles != want.ExecCycles {
		t.Fatalf("%s: cycles %v/%v, want %v/%v", ctx,
			got.StallCycles, got.ExecCycles, want.StallCycles, want.ExecCycles)
	}
	if got.Quality != want.Quality {
		t.Fatalf("%s: quality\n got %+v\nwant %+v", ctx, got.Quality, want.Quality)
	}
	if len(got.Stalls) != len(want.Stalls) {
		t.Fatalf("%s: %d stalls, want %d", ctx, len(got.Stalls), len(want.Stalls))
	}
	for i := range want.Stalls {
		if got.Stalls[i] != want.Stalls[i] {
			t.Fatalf("%s: stall %d\n got %+v\nwant %+v", ctx, i, got.Stalls[i], want.Stalls[i])
		}
	}
	if want.Normalized != nil && got.Normalized != nil {
		if len(got.Normalized) != len(want.Normalized) {
			t.Fatalf("%s: normalized length %d, want %d", ctx, len(got.Normalized), len(want.Normalized))
		}
		for i := range want.Normalized {
			if got.Normalized[i] != want.Normalized[i] {
				t.Fatalf("%s: normalized[%d] = %v, want %v", ctx, i, got.Normalized[i], want.Normalized[i])
			}
		}
	}
}

// TestParallelMatchesSequential sweeps worker counts and chunk sizes —
// including a prime chunk length that never aligns with dip or fault
// periods — over clean and impaired captures, requiring bit-identical
// profiles throughout.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NormWindowS = 40e-6 // 2000-sample window: real sharding on modest captures
	a := MustNewAnalyzer(cfg)
	a.KeepNormalized = true
	for _, nasty := range []bool{false, true} {
		c := syntheticCapture(1<<18, 11, nasty)
		want := a.Profile(c)
		if nasty && want.Quality.Clean() {
			t.Fatal("nasty capture reported clean quality; test is not exercising impairments")
		}
		if len(want.Stalls) == 0 {
			t.Fatal("sequential profile found no stalls; test is vacuous")
		}
		for _, workers := range []int{1, 2, 3, 8} {
			for _, chunk := range []int{0, 4099, 30011, 1 << 16} {
				got := a.ProfileParallel(c, ParallelOptions{Workers: workers, ChunkSamples: chunk})
				assertProfilesIdentical(t, want, got,
					sprintf("nasty=%v workers=%d chunk=%d", nasty, workers, chunk))
			}
		}
	}
}

// TestParallelMatchesOnInjectedFaults covers every injector impairment
// class at once: the parallel analyzer must reproduce the hardened
// sequential profile exactly, resyncs and aborted dips included.
func TestParallelMatchesOnInjectedFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NormWindowS = 40e-6
	a := MustNewAnalyzer(cfg)
	clean := syntheticCapture(1<<18, 3, false)
	spec := faults.Spec{
		DropoutRate:   0.002,
		ClipLevel:     1.6,
		GainStepsPerS: 200,
		BurstRate:     0.0005,
		NaNRate:       0.0002,
		Seed:          9,
	}
	c, _, err := faults.Apply(clean, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := a.Profile(c)
	if want.Quality.Resyncs == 0 {
		t.Fatal("fault spec produced no resyncs; gain-step path untested")
	}
	for _, workers := range []int{2, 5} {
		for _, chunk := range []int{8191, 1 << 15} {
			got := a.ProfileParallel(c, ParallelOptions{Workers: workers, ChunkSamples: chunk})
			assertProfilesIdentical(t, want, got, sprintf("workers=%d chunk=%d", workers, chunk))
		}
	}
}

// TestParallelConfigSweep exercises the window/smoothing corners the
// fuzzer also visits: no smoothing, wide smoothing, short windows.
func TestParallelConfigSweep(t *testing.T) {
	c := syntheticCapture(1<<17, 5, true)
	base := DefaultConfig()
	for name, mutate := range map[string]func(*Config){
		"raw":    func(c *Config) { c.SmoothSamples = 1 },
		"wide":   func(c *Config) { c.SmoothSamples = 7 },
		"narrow": func(c *Config) { c.NormWindowS = 5e-6 },
		"even":   func(c *Config) { c.SmoothSamples = 4 },
	} {
		cfg := base
		mutate(&cfg)
		a := MustNewAnalyzer(cfg)
		want := a.Profile(c)
		got := a.ProfileParallel(c, ParallelOptions{Workers: 4, ChunkSamples: 10007})
		assertProfilesIdentical(t, want, got, name)
	}
}

// TestParallelDegenerateInputs: empty, tiny, constant and all-garbage
// captures must neither panic nor diverge from the sequential result.
func TestParallelDegenerateInputs(t *testing.T) {
	a := MustNewAnalyzer(DefaultConfig())
	cases := map[string]*em.Capture{
		"empty": {Samples: nil, SampleRate: 50e6, ClockHz: 1e9},
		"one":   {Samples: []float64{1}, SampleRate: 50e6, ClockHz: 1e9},
		"tiny":  syntheticCapture(64, 1, false),
		"const": {Samples: make([]float64, 20000), SampleRate: 50e6, ClockHz: 1e9},
		"nan": {Samples: func() []float64 {
			s := make([]float64, 20000)
			for i := range s {
				s[i] = math.NaN()
			}
			return s
		}(), SampleRate: 50e6, ClockHz: 1e9},
	}
	for name, c := range cases {
		want := a.Profile(c)
		got := a.ProfileParallel(c, ParallelOptions{Workers: 4, ChunkSamples: 512})
		assertProfilesIdentical(t, want, got, name)
	}
}

// TestParallelAutoOptions: the zero options value must auto-size workers
// and chunks and still match, and Workers=1 must take the sequential path.
func TestParallelAutoOptions(t *testing.T) {
	a := MustNewAnalyzer(DefaultConfig())
	c := syntheticCapture(1<<17, 21, false)
	want := a.Profile(c)
	assertProfilesIdentical(t, want, a.ProfileParallel(c, ParallelOptions{}), "zero options")
	assertProfilesIdentical(t, want, a.ProfileParallel(c, ParallelOptions{Workers: 1}), "one worker")
	assertProfilesIdentical(t, want,
		a.ProfileParallel(c, ParallelOptions{Workers: 3, ChunkSamples: 1 << 14, MaxInFlight: 1}), "inflight=1")
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
