package core

import (
	"testing"

	"emprof/internal/cpu"
)

func TestAccuracyMath(t *testing.T) {
	cases := []struct {
		det, act float64
		want     float64
	}{
		{100, 100, 100},
		{99, 100, 99},
		{101, 100, 99},
		{0, 0, 100},
		{5, 0, 0},
		{300, 100, 0}, // clamped
	}
	for _, c := range cases {
		if got := accuracy(c.det, c.act).Percent; got != c.want {
			t.Errorf("accuracy(%v,%v) = %v, want %v", c.det, c.act, got, c.want)
		}
	}
}

func TestCountAccuracy(t *testing.T) {
	p := &Profile{Stalls: make([]Stall, 1020)}
	if got := p.CountAccuracy(1024).Percent; got < 99.5 || got > 100 {
		t.Fatalf("count accuracy %v", got)
	}
}

func mkProfile(stalls []Stall) *Profile {
	p := &Profile{SampleRate: 40e6, ClockHz: 1e9}
	for _, s := range stalls {
		s.Cycles = float64(s.EndSample-s.StartSample) * 25
		p.Stalls = append(p.Stalls, s)
		p.StallCycles += s.Cycles
	}
	return p
}

func TestValidateAgainstPerfectMatch(t *testing.T) {
	// Detected stalls exactly covering the truth intervals.
	truth := []cpu.StallInterval{
		{Start: 10000, End: 10300, Stalled: 300, Misses: 1},
		{Start: 50000, End: 50250, Stalled: 250, Misses: 1},
	}
	p := mkProfile([]Stall{
		{StartSample: 400, EndSample: 412}, // 10000..10300 cycles
		{StartSample: 2000, EndSample: 2010},
	})
	v := p.ValidateAgainst(truth)
	if v.MissCount.Percent != 100 {
		t.Fatalf("miss accuracy %v, want 100", v.MissCount.Percent)
	}
	if v.Matched != 2 || v.Spurious != 0 || v.MissedTruth != 0 {
		t.Fatalf("matching %+v", v)
	}
	if v.StallCycles.Percent < 90 {
		t.Fatalf("stall accuracy %v", v.StallCycles.Percent)
	}
}

func TestValidateAgainstMissedAndSpurious(t *testing.T) {
	truth := []cpu.StallInterval{
		{Start: 10000, End: 10300, Stalled: 300, Misses: 1},
		{Start: 200000, End: 200300, Stalled: 300, Misses: 1},
	}
	p := mkProfile([]Stall{
		{StartSample: 400, EndSample: 412},   // matches first
		{StartSample: 4000, EndSample: 4012}, // 100000: matches nothing
	})
	v := p.ValidateAgainst(truth)
	if v.Matched != 1 || v.MissedTruth != 1 || v.Spurious != 1 {
		t.Fatalf("matching %+v", v)
	}
}

func TestValidateAgainstEmpty(t *testing.T) {
	p := mkProfile(nil)
	v := p.ValidateAgainst(nil)
	if v.MissCount.Percent != 100 || v.StallCycles.Percent != 100 {
		t.Fatalf("empty-vs-empty should be perfect: %+v", v)
	}
}

func TestValidationUsesStalledCycles(t *testing.T) {
	// Merged truth carries Stalled < span; stall-cycle accuracy must use
	// the stalled count, not the span.
	truth := []cpu.StallInterval{{Start: 10000, End: 10500, Stalled: 300, Misses: 2}}
	p := mkProfile([]Stall{{StartSample: 400, EndSample: 412}}) // 300 cycles
	v := p.ValidateAgainst(truth)
	if v.StallCycles.Percent < 95 {
		t.Fatalf("stall accuracy %v, want ~100 (300 vs 300)", v.StallCycles.Percent)
	}
}
