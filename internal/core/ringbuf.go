package core

// fifo is a growable ring-buffer FIFO. The streaming analyzer's pending
// and flag queues used to be plain slices advanced with s = s[1:]; because
// append can never reclaim the popped prefix, every half-window of
// steady-state streaming reallocated and re-copied the queue. The ring
// reuses its storage forever, which is what lets sustained ingest run at
// zero allocations per sample once the pipeline is warm.
type fifo[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *fifo[T]) len() int { return r.n }

func (r *fifo[T]) push(x T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = x
	r.n++
}

// pushSlice appends all of xs in order, equivalent to pushing each
// element; the copies happen in at most two bulk moves.
func (r *fifo[T]) pushSlice(xs []T) {
	for r.n+len(xs) > len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	first := len(r.buf) - i
	if first > len(xs) {
		first = len(xs)
	}
	copy(r.buf[i:], xs[:first])
	copy(r.buf, xs[first:])
	r.n += len(xs)
}

func (r *fifo[T]) pop() T {
	x := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return x
}

// popOrZero pops the front element, or returns the zero value on an
// empty queue (the flag queue's historical slice semantics).
func (r *fifo[T]) popOrZero() T {
	var zero T
	if r.n == 0 {
		return zero
	}
	return r.pop()
}

// ptr returns the address of the i-th element from the front, for
// in-place updates (retroactive flag patching).
func (r *fifo[T]) ptr(i int) *T {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return &r.buf[j]
}

func (r *fifo[T]) grow() {
	nb := make([]T, maxInt(8, 2*len(r.buf)))
	r.copyTo(nb)
	r.buf, r.head = nb, 0
}

// copyTo linearizes the queue contents into dst (which must hold at
// least r.n elements).
func (r *fifo[T]) copyTo(dst []T) {
	first := len(r.buf) - r.head
	if first > r.n {
		first = r.n
	}
	copy(dst, r.buf[r.head:r.head+first])
	copy(dst[first:], r.buf[:r.n-first])
}

// items returns a linearized copy of the queue, nil when empty — the
// shape the hand-off state format has always serialized.
func (r *fifo[T]) items() []T {
	if r.n == 0 {
		return nil
	}
	out := make([]T, r.n)
	r.copyTo(out)
	return out
}

// load replaces the queue contents.
func (r *fifo[T]) load(xs []T) {
	r.head, r.n = 0, 0
	for _, x := range xs {
		r.push(x)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
