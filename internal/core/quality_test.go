package core

import (
	"math"
	"testing"

	"emprof/internal/em"
)

// Quality-monitor hardening tests. The synthetic captures run at 40 MHz
// (synthCapture), so with DefaultConfig the norm window is 8000 samples
// (half = 4000), the gap-resync threshold is 500 samples and the
// gain-step persistence is 150 samples.

// overlaps reports whether any stall intersects [lo, hi).
func overlaps(p *Profile, lo, hi int) *Stall {
	for i := range p.Stalls {
		s := &p.Stalls[i]
		if s.StartSample < hi && s.EndSample > lo {
			return s
		}
	}
	return nil
}

func TestCleanCaptureQuality(t *testing.T) {
	c := synthCapture(40000, map[int]int{10000: 12, 25000: 12}, 0.1, 1, 0.02, 7)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if !p.Quality.Clean() {
		t.Fatalf("clean capture reported impaired: %v", p.Quality)
	}
	if p.Quality.Samples != 40000 {
		t.Fatalf("Samples = %d, want 40000", p.Quality.Samples)
	}
	if f := p.Quality.UsableFraction(); f != 1 {
		t.Fatalf("UsableFraction = %v, want 1", f)
	}
	if p.Misses != 2 {
		t.Fatalf("misses = %d, want 2", p.Misses)
	}
	for _, s := range p.Stalls {
		if s.Confidence < 0.5 || s.Confidence > 1 {
			t.Fatalf("clean-dip confidence %v out of [0.5, 1]", s.Confidence)
		}
	}
	if mc := p.MeanConfidence(); mc < 0.5 || mc > 1 {
		t.Fatalf("mean confidence %v out of [0.5, 1]", mc)
	}
}

func TestNoPhantomStallOverGap(t *testing.T) {
	// Dips before the gap, a 600-sample zero-filled dropout (15 µs — far
	// beyond RefreshMinS, so an unhardened pipeline would report it as a
	// giant refresh stall), and dips after it, the first only 400 samples
	// past the gap end — well within one normalisation window.
	c := synthCapture(40000, map[int]int{5000: 12, 15000: 12, 21000: 12, 30000: 12}, 0.1, 1, 0.02, 3)
	for i := 20000; i < 20600; i++ {
		c.Samples[i] = 0
	}
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)

	if s := overlaps(p, 19990, 20610); s != nil {
		t.Fatalf("phantom stall %+v spans the dropout gap", *s)
	}
	if p.Misses != 4 {
		t.Fatalf("misses = %d, want 4 (detection must recover after the gap)", p.Misses)
	}
	if p.RefreshStalls != 0 {
		t.Fatalf("refresh stalls = %d, want 0", p.RefreshStalls)
	}
	q := p.Quality
	if q.DroppedSamples != 600 {
		t.Fatalf("DroppedSamples = %d, want 600", q.DroppedSamples)
	}
	if q.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1", q.Resyncs)
	}
	if q.Clean() {
		t.Fatal("quality reported clean despite dropout")
	}
	if f := q.UsableFraction(); f >= 1 || f < 0.97 {
		t.Fatalf("UsableFraction = %v, want ~0.985", f)
	}
}

func TestNoPhantomStallOverGainStep(t *testing.T) {
	for _, tc := range []struct {
		name   string
		factor float64
	}{
		{"up3x", 3.0},
		{"down3x", 1.0 / 3.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Dips well clear of the step on both sides (≥ one half-window),
			// receiver gain jumps by 3× at sample 20000.
			c := synthCapture(40000, map[int]int{5000: 12, 10000: 12, 28000: 12, 34000: 12}, 0.1, 1, 0.02, 11)
			for i := 20000; i < len(c.Samples); i++ {
				c.Samples[i] *= tc.factor
			}
			p := MustNewAnalyzer(DefaultConfig()).Profile(c)

			// No stall may span the discontinuity: stalls must end before
			// the step or start after the transition region.
			if s := overlaps(p, 19850, 20160); s != nil {
				t.Fatalf("phantom stall %+v spans the gain step", *s)
			}
			if p.Misses != 4 {
				t.Fatalf("misses = %d, want 4 (both gain regimes must profile)", p.Misses)
			}
			if p.RefreshStalls != 0 {
				t.Fatalf("refresh stalls = %d, want 0", p.RefreshStalls)
			}
			q := p.Quality
			if q.Resyncs < 1 {
				t.Fatalf("Resyncs = %d, want >= 1 after a 3x gain step", q.Resyncs)
			}
			if q.StepSamples == 0 {
				t.Fatal("StepSamples = 0, want > 0")
			}
		})
	}
}

func TestNaNGuard(t *testing.T) {
	mk := func() *em.Capture {
		return synthCapture(40000, map[int]int{10000: 12, 25000: 12}, 0.1, 1, 0.02, 5)
	}
	clean := MustNewAnalyzer(DefaultConfig()).Profile(mk())

	c := mk()
	c.Samples[15000] = math.NaN()
	c.Samples[16000] = math.Inf(1)
	c.Samples[17000] = math.Inf(-1)
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)

	if p.Quality.NaNSamples != 3 {
		t.Fatalf("NaNSamples = %d, want 3", p.Quality.NaNSamples)
	}
	if p.Misses != clean.Misses || p.RefreshStalls != clean.RefreshStalls {
		t.Fatalf("stall counts changed under NaN corruption: got %d/%d, want %d/%d",
			p.Misses, p.RefreshStalls, clean.Misses, clean.RefreshStalls)
	}
	for i, s := range p.Stalls {
		cs := clean.Stalls[i]
		if s.StartSample != cs.StartSample || s.EndSample != cs.EndSample {
			t.Fatalf("stall %d moved under NaN corruption: %+v vs %+v", i, s, cs)
		}
	}
	// The corrupt samples are isolated (held, not structural), so no dip
	// is aborted and no resync fires.
	if p.Quality.Resyncs != 0 || p.Quality.AbortedDips != 0 {
		t.Fatalf("unexpected resyncs/aborts: %v", p.Quality)
	}
}

func TestClipFlagging(t *testing.T) {
	// A flat-top at the busy level in an otherwise noisy capture can only
	// be ADC saturation: consecutive exactly-equal samples do not happen
	// by chance in noise.
	c := synthCapture(40000, map[int]int{10000: 12, 30000: 12}, 0.1, 1, 0.02, 9)
	for i := 15000; i < 15300; i++ {
		c.Samples[i] = 1.05
	}
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if p.Quality.ClippedSamples < 4 {
		t.Fatalf("ClippedSamples = %d, want >= 4", p.Quality.ClippedSamples)
	}
	if p.Misses != 2 || p.RefreshStalls != 0 {
		t.Fatalf("stall counts %d/%d, want 2/0", p.Misses, p.RefreshStalls)
	}

	// A noise-free constant capture (the SESC power proxy flat-lines
	// legitimately on busy plateaus) must NOT be flagged as clipped: the
	// distinctness arm only enables the detector on demonstrably noisy
	// signals.
	flat := make([]float64, 20000)
	for i := range flat {
		flat[i] = 1.0
	}
	pf := MustNewAnalyzer(DefaultConfig()).Profile(&em.Capture{Samples: flat, SampleRate: 40e6, ClockHz: 1e9})
	if !pf.Quality.Clean() {
		t.Fatalf("noise-free constant capture flagged: %v", pf.Quality)
	}
}

func TestBurstNoPhantom(t *testing.T) {
	mk := func() *em.Capture {
		return synthCapture(40000, map[int]int{6000: 12, 15000: 12, 21000: 12, 30000: 12}, 0.1, 1, 0.02, 13)
	}
	clean := MustNewAnalyzer(DefaultConfig()).Profile(mk())

	// 3-sample impulsive bursts at ~6x the busy level. Unguarded, each
	// spike would inflate the moving max and push the busy level below the
	// dip-entry threshold for up to a full window — a phantom stall.
	c := mk()
	for _, at := range []int{12000, 18000, 24000} {
		for i := at; i < at+3; i++ {
			c.Samples[i] = 6.0
		}
	}
	p := MustNewAnalyzer(DefaultConfig()).Profile(c)
	if p.Quality.BurstSamples != 9 {
		t.Fatalf("BurstSamples = %d, want 9", p.Quality.BurstSamples)
	}
	if p.Misses != clean.Misses || p.RefreshStalls != clean.RefreshStalls {
		t.Fatalf("stall counts changed under bursts: got %d/%d, want %d/%d",
			p.Misses, p.RefreshStalls, clean.Misses, clean.RefreshStalls)
	}
}

func TestConfidencePenalisedNearImpairment(t *testing.T) {
	// Same dip shape twice; in the second capture a dropout gap ends 400
	// samples before the dip, so its confidence must drop (distance-to-
	// impairment term) while the far dip keeps a high score.
	mkDip := func(gap bool) *em.Capture {
		c := synthCapture(40000, map[int]int{11000: 12}, 0.1, 1, 0, 1)
		if gap {
			for i := 10000; i < 10600; i++ {
				c.Samples[i] = 0
			}
		}
		return c
	}
	pa := MustNewAnalyzer(DefaultConfig()).Profile(mkDip(false))
	pb := MustNewAnalyzer(DefaultConfig()).Profile(mkDip(true))
	if len(pa.Stalls) != 1 || len(pb.Stalls) != 1 {
		t.Fatalf("stall counts %d/%d, want 1/1", len(pa.Stalls), len(pb.Stalls))
	}
	ca, cb := pa.Stalls[0].Confidence, pb.Stalls[0].Confidence
	if ca <= cb+0.1 {
		t.Fatalf("confidence not penalised near impairment: clean=%v near-gap=%v", ca, cb)
	}
	if cb <= 0 || ca > 1 {
		t.Fatalf("confidence out of range: clean=%v near-gap=%v", ca, cb)
	}
}

func TestBatchStreamEquivalentUnderFaults(t *testing.T) {
	// One capture carrying every impairment class at once: dropout gap,
	// gain step, burst, and NaN corruption. Batch and streaming must agree
	// exactly — stalls, confidence, and quality record.
	c := synthCapture(40000, map[int]int{4000: 12, 12000: 12, 24500: 12, 32000: 12}, 0.1, 1, 0.02, 17)
	for i := 8000; i < 8600; i++ {
		c.Samples[i] = 0
	}
	for i := 14000; i < 14003; i++ {
		c.Samples[i] = 6.0
	}
	for i := 20000; i < len(c.Samples); i++ {
		c.Samples[i] *= 3.0
	}
	c.Samples[26000] = math.NaN()

	cfg := DefaultConfig()
	pb := MustNewAnalyzer(cfg).Profile(c)
	ps, err := ProfileStream(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Quality != ps.Quality {
		t.Fatalf("quality diverged:\nbatch:  %v\nstream: %v", pb.Quality, ps.Quality)
	}
	if len(pb.Stalls) != len(ps.Stalls) {
		t.Fatalf("stall counts diverged: batch %d, stream %d", len(pb.Stalls), len(ps.Stalls))
	}
	for i := range pb.Stalls {
		if pb.Stalls[i] != ps.Stalls[i] {
			t.Fatalf("stall %d diverged:\nbatch:  %+v\nstream: %+v", i, pb.Stalls[i], ps.Stalls[i])
		}
	}
	if pb.Misses != ps.Misses || pb.RefreshStalls != ps.RefreshStalls {
		t.Fatalf("counts diverged: batch %d/%d, stream %d/%d",
			pb.Misses, pb.RefreshStalls, ps.Misses, ps.RefreshStalls)
	}
	// Sanity: impairments were actually seen, and genuine dips survived.
	if pb.Quality.Clean() {
		t.Fatal("quality reported clean despite injected faults")
	}
	if pb.Misses < 3 {
		t.Fatalf("misses = %d, want >= 3 under faults", pb.Misses)
	}
}

func TestStreamQualitySnapshot(t *testing.T) {
	cfg := DefaultConfig()
	s, err := NewStreamAnalyzer(cfg, 40e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	s.Push(1.0)
	s.Push(math.NaN())
	s.Push(1.0)
	q := s.Quality()
	if q.Samples != 3 || q.NaNSamples != 1 {
		t.Fatalf("snapshot = %v, want 3 samples / 1 NaN", q)
	}
}
