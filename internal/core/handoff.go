package core

import (
	"fmt"
	"math"

	"emprof/internal/dsp"
	"emprof/internal/trace"
)

// This file implements replay-free streaming hand-off: a StreamAnalyzer
// can export its complete mid-stream state (ExportState), ship it to
// another process as JSON, and be resumed there (ResumeStreamAnalyzer)
// such that pushing the remaining samples produces a profile bit-
// identical to one analyzer having seen the whole stream. The fleet
// layer uses this to move live profiling sessions between shards during
// rebalance without re-ingesting a single sample.
//
// Everything derivable from (Config, sampleRate, clockHz) — window
// widths, monitor thresholds, detector durations — is NOT part of the
// state: the resuming side rebuilds it through NewStreamAnalyzer and
// Restore validates the buffer shapes against it, so a state forged for
// a different configuration is rejected instead of silently corrupting
// the pipeline. All retained floats are finite (the monitor sanitises
// the stream before anything is buffered), so the state survives a JSON
// round trip exactly: Go marshals float64 at full round-trip precision,
// and the only non-finite internal value (the detector's +Inf dip-depth
// sentinel) is re-derived from InDip on restore.

// monitorState is the serializable mid-stream state of the quality
// monitor (quality.go); derived thresholds are omitted.
type monitorState struct {
	SMax              dsp.MovingExtremumState `json:"smax"`
	Ref               float64                 `json:"ref"`
	RefReady          bool                    `json:"ref_ready"`
	Warm              int                     `json:"warm"`
	LastGood          float64                 `json:"last_good"`
	ZeroRun           int                     `json:"zero_run"`
	RunVal            float64                 `json:"run_val"`
	RunLen            int                     `json:"run_len"`
	ClipActive        bool                    `json:"clip_active"`
	StepDir           int                     `json:"step_dir"`
	StepLen           int                     `json:"step_len"`
	StepResyncPending bool                    `json:"step_resync_pending"`
	SinceHigh         int                     `json:"since_high"`
	ShiftDir          int                     `json:"shift_dir"`
	ShiftLen          int                     `json:"shift_len"`
	SinceShiftHigh    int                     `json:"since_shift_high"`
	PendingCause      trace.ResyncCause       `json:"pending_cause,omitempty"`
	Distinct          float64                 `json:"distinct"`
	PrevX             float64                 `json:"prev_x"`
	HavePrev          bool                    `json:"have_prev"`
	Quality           Quality                 `json:"quality"`
}

// detectorState is the serializable mid-stream state of the dip state
// machine. Depth is meaningful only while InDip (outside a dip the
// detector holds a +Inf sentinel that JSON cannot carry).
type detectorState struct {
	InDip        bool    `json:"in_dip"`
	Start        int64   `json:"start"`
	Depth        float64 `json:"depth"`
	EntryLo      float64 `json:"entry_lo"`
	EntryHi      float64 `json:"entry_hi"`
	LastImpaired int64   `json:"last_impaired"`
}

// StreamState is a complete, serializable snapshot of a StreamAnalyzer
// mid-stream. It is produced by ExportState and consumed by
// ResumeStreamAnalyzer; the profiling service wraps it (with session
// metadata and decoder state) as the hand-off wire format.
type StreamState struct {
	Config     Config  `json:"config"`
	SampleRate float64 `json:"sample_rate"`
	ClockHz    float64 `json:"clock_hz"`

	Pushed  int64 `json:"pushed"`
	Decided int64 `json:"decided"`
	Fed     int64 `json:"fed"`

	FlagBuf  []trace.Flag `json:"flag_buf,omitempty"`
	ResyncAt []int64      `json:"resync_at,omitempty"`
	SmTail   []float64    `json:"sm_tail,omitempty"`
	Pending  []float64    `json:"pending,omitempty"`

	LastMin   float64 `json:"last_min"`
	LastMax   float64 `json:"last_max"`
	HaveStats bool    `json:"have_stats"`

	// Smoother is nil when the configuration disables smoothing
	// (SmoothSamples <= 1).
	Smoother *dsp.MovingAverageState `json:"smoother,omitempty"`
	MMin     dsp.MovingExtremumState `json:"mmin"`
	MMax     dsp.MovingExtremumState `json:"mmax"`

	Monitor  monitorState  `json:"monitor"`
	Detector detectorState `json:"detector"`

	// Profile is the profile accumulated so far (stalls whose end was
	// decided before the export).
	Profile *Profile `json:"profile"`
}

// ExportState snapshots the analyzer's complete mid-stream state. The
// analyzer itself is left untouched and may keep being pushed to; the
// returned state shares no memory with it. Callbacks (OnStall) and
// observers are deliberately not part of the state — they are process-
// local and must be re-attached after ResumeStreamAnalyzer.
func (s *StreamAnalyzer) ExportState() *StreamState {
	st := &StreamState{
		Config:     s.cfg,
		SampleRate: s.sampleRate,
		ClockHz:    s.clockHz,
		Pushed:     s.n,
		Decided:    s.emitted,
		Fed:        s.fed,
		FlagBuf:    s.flagBuf.items(),
		ResyncAt:   append([]int64(nil), s.resyncAt...),
		SmTail:     append([]float64(nil), s.smTail...),
		Pending:    s.pending.items(),
		LastMin:    s.lastMin,
		LastMax:    s.lastMax,
		HaveStats:  s.haveStats,
		MMin:       s.mmin.State(),
		MMax:       s.mmax.State(),
	}
	if s.smoother != nil {
		sm := s.smoother.State()
		st.Smoother = &sm
	}
	m := s.mon
	st.Monitor = monitorState{
		SMax:              m.smax.State(),
		Ref:               m.ref,
		RefReady:          m.refReady,
		Warm:              m.warm,
		LastGood:          m.lastGood,
		ZeroRun:           m.zeroRun,
		RunVal:            m.runVal,
		RunLen:            m.runLen,
		ClipActive:        m.clipActive,
		StepDir:           m.stepDir,
		StepLen:           m.stepLen,
		StepResyncPending: m.stepResyncPending,
		SinceHigh:         m.sinceHigh,
		ShiftDir:          m.shiftDir,
		ShiftLen:          m.shiftLen,
		SinceShiftHigh:    m.sinceShiftHigh,
		PendingCause:      m.pendingCause,
		Distinct:          m.distinct,
		PrevX:             m.prevX,
		HavePrev:          m.havePrev,
		Quality:           m.q,
	}
	d := s.det
	st.Detector = detectorState{
		InDip:        d.inDip,
		Start:        d.start,
		EntryLo:      d.entryLo,
		EntryHi:      d.entryHi,
		LastImpaired: d.lastImpaired,
	}
	if d.inDip {
		st.Detector.Depth = d.depth
	}
	prof := *s.prof
	prof.Stalls = append([]Stall(nil), s.prof.Stalls...)
	st.Profile = &prof
	return st
}

// ResumeStreamAnalyzer rebuilds a StreamAnalyzer from an exported state.
// Pushing the remaining samples of the original stream (and finalizing)
// produces output bit-identical to the exporting analyzer having seen
// the whole stream. OnStall and the trace observer start out unset; the
// caller re-attaches them before the next Push.
func ResumeStreamAnalyzer(st *StreamState) (*StreamAnalyzer, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil stream state")
	}
	s, err := NewStreamAnalyzer(st.Config, st.SampleRate, st.ClockHz)
	if err != nil {
		return nil, err
	}
	if st.Pushed < 0 || st.Decided < 0 || st.Fed < 0 || st.Decided > st.Pushed || st.Fed > st.Pushed {
		return nil, fmt.Errorf("core: inconsistent stream state counters pushed=%d fed=%d decided=%d",
			st.Pushed, st.Fed, st.Decided)
	}
	if len(st.SmTail) > s.lead+1 {
		return nil, fmt.Errorf("core: smoother tail %d exceeds group delay %d", len(st.SmTail), s.lead)
	}
	if len(st.Pending) > s.half {
		return nil, fmt.Errorf("core: %d pending positions exceed half-window %d", len(st.Pending), s.half)
	}
	if (st.Smoother == nil) != (s.smoother == nil) {
		return nil, fmt.Errorf("core: smoother state does not match config (SmoothSamples=%d)", st.Config.SmoothSamples)
	}
	if s.smoother != nil {
		if err := s.smoother.Restore(*st.Smoother); err != nil {
			return nil, err
		}
	}
	if err := s.mmin.Restore(st.MMin); err != nil {
		return nil, err
	}
	if err := s.mmax.Restore(st.MMax); err != nil {
		return nil, err
	}
	s.n = st.Pushed
	s.emitted = st.Decided
	s.fed = st.Fed
	s.flagBuf.load(st.FlagBuf)
	s.resyncAt = append(s.resyncAt[:0], st.ResyncAt...)
	s.smTail = append(s.smTail[:0], st.SmTail...)
	s.pending.load(st.Pending)
	s.lastMin, s.lastMax, s.haveStats = st.LastMin, st.LastMax, st.HaveStats

	m := s.mon
	ms := st.Monitor
	if err := m.smax.Restore(ms.SMax); err != nil {
		return nil, err
	}
	m.ref = ms.Ref
	m.refReady = ms.RefReady
	m.warm = ms.Warm
	m.lastGood = ms.LastGood
	m.zeroRun = ms.ZeroRun
	m.runVal = ms.RunVal
	m.runLen = ms.RunLen
	m.clipActive = ms.ClipActive
	m.stepDir, m.stepLen = ms.StepDir, ms.StepLen
	m.stepResyncPending = ms.StepResyncPending
	m.sinceHigh = ms.SinceHigh
	m.shiftDir, m.shiftLen = ms.ShiftDir, ms.ShiftLen
	m.sinceShiftHigh = ms.SinceShiftHigh
	m.pendingCause = ms.PendingCause
	m.distinct = ms.Distinct
	m.prevX, m.havePrev = ms.PrevX, ms.HavePrev
	m.q = ms.Quality

	d := s.det
	ds := st.Detector
	d.inDip = ds.InDip
	d.start = ds.Start
	d.depth = math.Inf(1)
	if ds.InDip {
		d.depth = ds.Depth
	}
	d.entryLo, d.entryHi = ds.EntryLo, ds.EntryHi
	d.lastImpaired = ds.LastImpaired

	if st.Profile == nil {
		return nil, fmt.Errorf("core: stream state carries no profile")
	}
	// The detector and monitor keep their pointers into s.prof / s.mon.q;
	// overwrite the pointees rather than the pointers.
	prof := *st.Profile
	prof.Stalls = append([]Stall(nil), st.Profile.Stalls...)
	prof.SampleRate, prof.ClockHz = st.SampleRate, st.ClockHz
	*s.prof = prof
	// Re-derive the aggregate counters from the stall list so a tampered
	// state cannot desynchronise them.
	s.prof.Misses, s.prof.RefreshStalls, s.prof.StallCycles = 0, 0, 0
	for _, stall := range s.prof.Stalls {
		if stall.Refresh {
			s.prof.RefreshStalls++
		} else {
			s.prof.Misses++
		}
		s.prof.StallCycles += stall.Cycles
	}
	return s, nil
}
