package core

import (
	"math"

	"emprof/internal/cpu"
)

// Accuracy is the paper's validation metric: how closely EMPROF's reported
// counts track the ground truth. The paper reports "Miss Accuracy" (the
// detected event count vs the true count of stall-producing misses) and
// "Stall Accuracy" (total reported stall cycles vs true fully-stalled
// cycles); both are symmetric percentage errors clamped at 0.
type Accuracy struct {
	// Detected and Actual are the compared quantities.
	Detected, Actual float64
	// Percent is 100 × (1 − |Detected−Actual| / Actual), clamped to
	// [0, 100]; 100 when both are zero.
	Percent float64
}

// accuracy computes the clamped percentage agreement.
func accuracy(detected, actual float64) Accuracy {
	a := Accuracy{Detected: detected, Actual: actual}
	switch {
	case actual == 0 && detected == 0:
		a.Percent = 100
	case actual == 0:
		a.Percent = 0
	default:
		a.Percent = 100 * (1 - math.Abs(detected-actual)/actual)
		if a.Percent < 0 {
			a.Percent = 0
		}
	}
	return a
}

// CountAccuracy scores a profile's miss count against an expected count
// (Table II: the microbenchmark's engineered TM). Refresh-coincident
// stalls are included, since each refresh-lengthened event still wraps a
// real LLC miss — they are only *reported* separately.
func (p *Profile) CountAccuracy(expected int) Accuracy {
	return accuracy(float64(len(p.Stalls)), float64(expected))
}

// Validation compares a profile against simulator ground truth.
type Validation struct {
	// MissCount compares detected stall events to ground-truth stall
	// intervals (the unit the paper calls a MISS).
	MissCount Accuracy
	// StallCycles compares total reported stall cycles to ground truth.
	StallCycles Accuracy
	// Matched counts ground-truth intervals overlapped by ≥1 detected
	// stall; Spurious counts detections overlapping no interval.
	Matched, Spurious, MissedTruth int
	// MeanAbsLatencyError is the mean |detected − true| duration over
	// matched pairs, in cycles.
	MeanAbsLatencyError float64
}

// ValidateAgainst scores the profile against the ground-truth stall
// intervals recorded by the processor model. Detected stall positions are
// converted to cycles through the capture metadata; matching is by
// interval overlap with a tolerance of one sample period on each side
// (the signal cannot resolve time finer than a sample, Section III-B).
func (p *Profile) ValidateAgainst(truth []cpu.StallInterval) Validation {
	var v Validation

	trueCycles := 0.0
	for _, t := range truth {
		trueCycles += float64(t.StalledCycles())
	}
	v.MissCount = accuracy(float64(len(p.Stalls)), float64(len(truth)))
	v.StallCycles = accuracy(p.StallCycles, trueCycles)

	cps := p.ClockHz / p.SampleRate // cycles per sample
	tol := cps

	// Two-pointer sweep over both time-ordered interval lists.
	type span struct{ lo, hi float64 }
	det := make([]span, len(p.Stalls))
	for i, s := range p.Stalls {
		lo := float64(s.StartSample) * cps
		det[i] = span{lo - tol, lo + s.Cycles + tol}
	}
	matchedDet := make([]bool, len(det))
	var absErr float64
	pairs := 0
	j := 0
	for _, t := range truth {
		tlo, thi := float64(t.Start), float64(t.End)
		for j < len(det) && det[j].hi < tlo {
			j++
		}
		found := false
		for k := j; k < len(det) && det[k].lo <= thi; k++ {
			if det[k].hi >= tlo {
				if !found {
					found = true
					d := (det[k].hi - det[k].lo) - 2*tol
					absErr += math.Abs(d - (thi - tlo))
					pairs++
				}
				matchedDet[k] = true
			}
		}
		if found {
			v.Matched++
		} else {
			v.MissedTruth++
		}
	}
	for _, m := range matchedDet {
		if !m {
			v.Spurious++
		}
	}
	if pairs > 0 {
		v.MeanAbsLatencyError = absErr / float64(pairs)
	}
	return v
}
