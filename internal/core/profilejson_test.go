package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"emprof/internal/sim"
)

// rawProfile mirrors Profile with the stall codec replaced by the plain
// struct slice, so encoding/json's reflection path produces reference
// bytes untouched by any custom marshaler.
type rawProfile struct {
	Stalls              []rawStall
	Misses              int
	RefreshStalls       int
	StallCycles         float64
	ExecCycles          float64
	SampleRate, ClockHz float64
	Normalized          []float64
	Quality             Quality
}

func toRawProfile(p *Profile) rawProfile {
	return rawProfile{
		Stalls:        toRaw(p.Stalls),
		Misses:        p.Misses,
		RefreshStalls: p.RefreshStalls,
		StallCycles:   p.StallCycles,
		ExecCycles:    p.ExecCycles,
		SampleRate:    p.SampleRate,
		ClockHz:       p.ClockHz,
		Normalized:    p.Normalized,
		Quality:       p.Quality,
	}
}

func randomProfile(rng *sim.RNG) *Profile {
	pick := func() float64 {
		if rng.Uint64()%4 == 0 {
			return edgeFloats[rng.Uint64()%uint64(len(edgeFloats))]
		}
		for {
			v := math.Float64frombits(rng.Uint64())
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				return v
			}
		}
	}
	p := &Profile{
		Stalls:        randomStalls(rng, int(rng.Uint64()%5)),
		Misses:        int(int32(rng.Uint64())),
		RefreshStalls: int(int32(rng.Uint64())),
		StallCycles:   pick(),
		ExecCycles:    pick(),
		SampleRate:    pick(),
		ClockHz:       pick(),
		Quality: Quality{
			Samples:        int64(rng.Uint64() % (1 << 40)),
			NaNSamples:     int64(int32(rng.Uint64())),
			DroppedSamples: int64(int32(rng.Uint64())),
			ClippedSamples: int64(int32(rng.Uint64())),
			BurstSamples:   int64(int32(rng.Uint64())),
			StepSamples:    int64(int32(rng.Uint64())),
			Resyncs:        int(int32(rng.Uint64())),
			AbortedDips:    int(int32(rng.Uint64())),
		},
	}
	switch rng.Uint64() % 3 {
	case 0: // nil Normalized
	case 1:
		p.Normalized = []float64{}
	default:
		p.Normalized = make([]float64, rng.Uint64()%7)
		for i := range p.Normalized {
			p.Normalized[i] = pick()
		}
	}
	return p
}

// TestProfileAppendJSONMatchesStdlib pins the wire-compatibility of the
// hand-rolled profile encoder: AppendJSON must be byte-identical to
// encoding/json over the equivalent plain struct for any profile,
// including nil/empty stall lists, nil/empty Normalized, and edge-case
// floats.
func TestProfileAppendJSONMatchesStdlib(t *testing.T) {
	rng := sim.NewRNG(99)
	for i := 0; i < 300; i++ {
		p := randomProfile(rng)
		got, err := p.AppendJSON(nil)
		if err != nil {
			t.Fatalf("profile %d: %v", i, err)
		}
		want, err := json.Marshal(toRawProfile(p))
		if err != nil {
			t.Fatalf("profile %d: stdlib: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("profile %d: wire bytes differ\n got: %s\nwant: %s", i, got, want)
		}
	}
	var zero Profile
	got, err := zero.AppendJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(toRawProfile(&zero))
	if !bytes.Equal(got, want) {
		t.Fatalf("zero profile: got %s want %s", got, want)
	}
}

// TestProfileUnmarshalRoundTrip pins that decoding recovers every field
// bit-exactly on the fast path and that the stdlib fallback engages for
// whitespace, reordered fields, and unknown fields.
func TestProfileUnmarshalRoundTrip(t *testing.T) {
	rng := sim.NewRNG(123)
	for i := 0; i < 300; i++ {
		p := randomProfile(rng)
		blob, err := p.AppendJSON(nil)
		if err != nil {
			t.Fatal(err)
		}
		// The compact shape must take the fast path outright.
		if _, end, ok := parseProfileSpan(blob, 0); !ok || end != len(blob) {
			t.Fatalf("profile %d: fast path rejected its own encoder's output: %s", i, blob)
		}
		var back Profile
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("profile %d: %v", i, err)
		}
		if !profilesBitEqual(p, &back) {
			t.Fatalf("profile %d: round trip not bit-exact\nin:  %+v\nout: %+v", i, p, &back)
		}
		// And with a trailing newline, as the service frames responses.
		var back2 Profile
		if err := back2.UnmarshalJSON(append(blob, '\n')); err != nil {
			t.Fatalf("profile %d: newline-framed: %v", i, err)
		}
		if !profilesBitEqual(p, &back2) {
			t.Fatalf("profile %d: newline-framed round trip differs", i)
		}
	}

	// Tolerant fallback: inputs only the stdlib path accepts.
	want := Profile{Misses: 7, SampleRate: 4e7, Quality: Quality{Samples: 9}}
	for _, in := range []string{
		`{ "Misses" : 7 , "SampleRate" : 4e+07 , "Quality" : { "Samples" : 9 } }`,
		`{"Quality":{"Samples":9},"SampleRate":4e+07,"Misses":7}`,
		`{"Misses":7,"SampleRate":4e+07,"Quality":{"Samples":9},"FutureField":[1,2]}`,
	} {
		var got Profile
		if err := json.Unmarshal([]byte(in), &got); err != nil {
			t.Fatalf("fallback input %q: %v", in, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback input %q: got %+v want %+v", in, got, want)
		}
	}
}

func profilesBitEqual(a, b *Profile) bool {
	if len(a.Stalls) != len(b.Stalls) || (a.Stalls == nil) != (b.Stalls == nil) {
		return false
	}
	for i := range a.Stalls {
		x, y := a.Stalls[i], b.Stalls[i]
		if x.StartSample != y.StartSample || x.EndSample != y.EndSample || x.Refresh != y.Refresh ||
			math.Float64bits(x.StartS) != math.Float64bits(y.StartS) ||
			math.Float64bits(x.DurationS) != math.Float64bits(y.DurationS) ||
			math.Float64bits(x.Cycles) != math.Float64bits(y.Cycles) ||
			math.Float64bits(x.Depth) != math.Float64bits(y.Depth) ||
			math.Float64bits(x.Confidence) != math.Float64bits(y.Confidence) {
			return false
		}
	}
	if len(a.Normalized) != len(b.Normalized) || (a.Normalized == nil) != (b.Normalized == nil) {
		return false
	}
	for i := range a.Normalized {
		if math.Float64bits(a.Normalized[i]) != math.Float64bits(b.Normalized[i]) {
			return false
		}
	}
	return a.Misses == b.Misses && a.RefreshStalls == b.RefreshStalls &&
		math.Float64bits(a.StallCycles) == math.Float64bits(b.StallCycles) &&
		math.Float64bits(a.ExecCycles) == math.Float64bits(b.ExecCycles) &&
		math.Float64bits(a.SampleRate) == math.Float64bits(b.SampleRate) &&
		math.Float64bits(a.ClockHz) == math.Float64bits(b.ClockHz) &&
		a.Quality == b.Quality
}
