package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"emprof/internal/sim"
)

// rawRegion and rawWindow mirror WindowRegion and ProfileWindow without
// the custom codecs in reach, so encoding/json's reflection path
// produces the reference bytes.
type rawRegion struct {
	Region      uint16  `json:"region"`
	Name        string  `json:"name,omitempty"`
	Misses      int     `json:"misses"`
	StallCycles float64 `json:"stall_cycles"`
}

type rawWindow struct {
	Index          int64       `json:"index"`
	StartSample    int64       `json:"start_sample"`
	EndSample      int64       `json:"end_sample"`
	StartS         float64     `json:"start_s"`
	EndS           float64     `json:"end_s"`
	Final          bool        `json:"final,omitempty"`
	Stalls         []rawStall  `json:"stalls"`
	Misses         int         `json:"misses"`
	RefreshStalls  int         `json:"refresh_stalls"`
	StallCycles    float64     `json:"stall_cycles"`
	MeanConfidence float64     `json:"mean_confidence"`
	Quality        Quality     `json:"quality"`
	Regions        []rawRegion `json:"regions,omitempty"`
}

func toRawWindow(w ProfileWindow) rawWindow {
	out := rawWindow{
		Index: w.Index, StartSample: w.StartSample, EndSample: w.EndSample,
		StartS: w.StartS, EndS: w.EndS, Final: w.Final,
		Stalls: toRaw(w.Stalls), Misses: w.Misses, RefreshStalls: w.RefreshStalls,
		StallCycles: w.StallCycles, MeanConfidence: w.MeanConfidence,
		Quality: w.Quality,
	}
	for _, r := range w.Regions {
		out.Regions = append(out.Regions, rawRegion(r))
	}
	return out
}

func randomWindow(rng *sim.RNG) ProfileWindow {
	w := ProfileWindow{
		Index:          int64(int32(rng.Uint64())),
		StartSample:    int64(int32(rng.Uint64())),
		EndSample:      int64(int32(rng.Uint64())),
		StartS:         edgeFloats[rng.Uint64()%uint64(len(edgeFloats))],
		EndS:           edgeFloats[rng.Uint64()%uint64(len(edgeFloats))],
		Final:          rng.Uint64()%2 == 0,
		Stalls:         randomStalls(rng, int(rng.Uint64()%5)),
		Misses:         int(int32(rng.Uint64())),
		RefreshStalls:  int(int32(rng.Uint64())),
		StallCycles:    edgeFloats[rng.Uint64()%uint64(len(edgeFloats))],
		MeanConfidence: edgeFloats[rng.Uint64()%uint64(len(edgeFloats))],
		Quality: Quality{
			Samples: int64(int32(rng.Uint64())), NaNSamples: int64(int32(rng.Uint64())),
			Resyncs: int(int32(rng.Uint64())), AbortedDips: int(int32(rng.Uint64())),
		},
	}
	switch rng.Uint64() % 4 {
	case 0:
		w.Stalls = nil
	case 1:
		w.Stalls = []Stall{}
	}
	for i := uint64(0); i < rng.Uint64()%3; i++ {
		name := ""
		if rng.Uint64()%2 == 0 {
			name = "region<&>\"x\""
		}
		w.Regions = append(w.Regions, WindowRegion{
			Region: uint16(rng.Uint64()), Name: name,
			Misses:      int(int32(rng.Uint64())),
			StallCycles: edgeFloats[rng.Uint64()%uint64(len(edgeFloats))],
		})
	}
	return w
}

// TestWindowMarshalMatchesStdlib is the window codec's wire-compat
// property: for any window — nil/empty stalls, omitted and present
// final/regions/name, edge-case floats — MarshalJSON must produce
// byte-identical output to encoding/json over the equivalent plain
// struct, and decoding those bytes must reproduce the value.
func TestWindowMarshalMatchesStdlib(t *testing.T) {
	rng := sim.NewRNG(11)
	for trial := 0; trial < 2000; trial++ {
		w := randomWindow(rng)
		got, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		want, err := json.Marshal(toRawWindow(w))
		if err != nil {
			t.Fatalf("trial %d: stdlib marshal: %v", trial, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: encoding diverged\n got: %s\nwant: %s", trial, got, want)
		}
		var back ProfileWindow
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !reflect.DeepEqual(back, w) {
			t.Fatalf("trial %d: round trip diverged\n got: %+v\nwant: %+v", trial, back, w)
		}
	}
}

// TestWindowUnmarshalFallback pins the decoder's tolerance: inputs the
// fast path rejects — whitespace, reordered fields — must still decode
// through the stdlib fallback exactly as a plain struct would.
func TestWindowUnmarshalFallback(t *testing.T) {
	in := `{
	  "start_sample": 10, "index": 2, "end_sample": 20,
	  "start_s": 0.5, "end_s": 1.0, "final": true,
	  "stalls": [], "misses": 1, "refresh_stalls": 0,
	  "stall_cycles": 42.5, "mean_confidence": 0.9,
	  "quality": {"Samples": 7, "NaNSamples": 0, "DroppedSamples": 0,
	    "ClippedSamples": 0, "BurstSamples": 0, "StepSamples": 0,
	    "Resyncs": 0, "AbortedDips": 0},
	  "regions": [{"region": 3, "name": "hot", "misses": 1, "stall_cycles": 42.5}]
	}`
	var w ProfileWindow
	if err := json.Unmarshal([]byte(in), &w); err != nil {
		t.Fatal(err)
	}
	if w.Index != 2 || w.StartSample != 10 || !w.Final || w.StallCycles != 42.5 {
		t.Fatalf("fallback decode wrong: %+v", w)
	}
	if len(w.Regions) != 1 || w.Regions[0].Name != "hot" {
		t.Fatalf("fallback regions wrong: %+v", w.Regions)
	}
}
