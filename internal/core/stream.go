package core

import (
	"time"

	"emprof/internal/dsp"
	"emprof/internal/em"
	"emprof/internal/trace"
)

// StreamAnalyzer applies EMPROF incrementally, in bounded memory, as
// samples arrive — the deployment mode the paper implies, where a
// software-defined receiver streams for minutes (most SPEC runs exceed
// the spectrum analyzer's record length, which is why the authors moved
// to a streaming digitizer, Section VI). Push samples with Push, then
// call Finalize for the profile. Its output matches Analyzer.Profile on
// the same capture.
//
// Every pushed sample first passes through the same causal signal-quality
// monitor the batch analyzer uses: corrupt and dropped samples are
// sanitised, gain discontinuities re-seed the normalisation windows, and
// impairment flags ride alongside each position so the dip detector can
// suppress phantom stalls. Because the monitor is causal and identically
// constructed, batch and streaming remain equivalent under faults too.
type StreamAnalyzer struct {
	cfg        Config
	sampleRate float64
	clockHz    float64

	// Quality monitor stage (runs on raw samples, before smoothing).
	mon *monitor
	// flagBuf holds the impairment flags of positions not yet decided;
	// its front belongs to the next position decide will consume.
	flagBuf fifo[qflag]
	// resyncAt holds positions at which the min/max state must be reset
	// before that position is folded in.
	resyncAt []int64
	// fed counts positions folded into the min/max windows so far.
	fed int64

	// Smoothing stage with centre compensation: the moving average of
	// input j describes position j-lead.
	smoother *dsp.MovingAverage
	lead     int
	// recent raw smoother outputs, to reproduce the batch analyzer's
	// uncompensated tail.
	smTail []float64

	// Normalisation stage: trailing min/max over smoothed positions; the
	// decision for position i is taken half a window later.
	mmin, mmax *dsp.MovingExtremum
	half       int
	window     int
	// pending holds smoothed values awaiting their (delayed) decision.
	pending fifo[float64]

	// Detection state.
	n       int64 // raw samples pushed
	emitted int64 // positions decided
	det     *detector

	prof *Profile
	// OnStall, when set, is invoked for each detected stall as soon as
	// its end is decided.
	OnStall func(Stall)
	// obs receives decision-trace events when set via SetObserver.
	obs trace.Observer

	// scratch backs PushBlock's staged processing; nil until the first
	// block push.
	scratch *blockScratch

	lastMin, lastMax float64
	haveStats        bool
}

// NewStreamAnalyzer returns a streaming analyzer for a signal with the
// given acquisition metadata.
func NewStreamAnalyzer(cfg Config, sampleRate, clockHz float64) (*StreamAnalyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &StreamAnalyzer{
		cfg:        cfg,
		sampleRate: sampleRate,
		clockHz:    clockHz,
		mon:        newMonitor(cfg, sampleRate),
		prof: &Profile{
			SampleRate: sampleRate,
			ClockHz:    clockHz,
		},
	}
	w := int(cfg.NormWindowS * sampleRate)
	if w < 8 {
		w = 8
	}
	s.window = w
	s.half = w / 2
	s.mmin = dsp.NewMovingMin(w)
	s.mmax = dsp.NewMovingMax(w)
	if cfg.SmoothSamples > 1 {
		s.smoother = dsp.NewMovingAverage(cfg.SmoothSamples)
		s.lead = (cfg.SmoothSamples - 1) / 2
	}
	s.det = newDetector(cfg, sampleRate, clockHz, s.half, s.prof, &s.mon.q, func(st Stall) {
		if s.OnStall != nil {
			s.OnStall(st)
		}
	})
	return s, nil
}

// SetObserver attaches a decision-trace observer: it receives one event
// per analyzer decision (dip candidates, accepted/rejected stalls,
// resyncs, quality flags, and a drain timing at Finalize) as each
// decision is taken. Call it before the first Push; attaching an
// observer never changes the produced profile. A nil observer restores
// the original, emission-free path.
func (s *StreamAnalyzer) SetObserver(o trace.Observer) {
	s.obs = o
	s.mon.obs = o
	s.det.obs = o
}

// Push feeds one magnitude sample.
func (s *StreamAnalyzer) Push(x float64) {
	p := s.n
	s.n++
	y, fl, retro, rs := s.mon.process(x)
	s.flagBuf.push(fl)
	if fl != 0 {
		for k := 1; k <= retro; k++ {
			idx := s.flagBuf.len() - 1 - k
			if idx < 0 {
				break
			}
			*s.flagBuf.ptr(idx) |= fl
		}
	}
	if rs {
		s.resyncAt = append(s.resyncAt, p)
	}
	if s.smoother == nil {
		s.feedPosition(y)
		return
	}
	sm := s.smoother.Process(y)
	if len(s.smTail) == s.lead+1 {
		copy(s.smTail, s.smTail[1:])
		s.smTail = s.smTail[:s.lead]
	}
	s.smTail = append(s.smTail, sm)
	// The smoothed value for position n-1-lead is available now.
	if s.n > int64(s.lead) {
		s.feedPosition(sm)
	}
}

// feedPosition advances the normalisation stage with the smoothed value
// of the next position, resetting the window state first if the quality
// monitor requested a resync at this position.
func (s *StreamAnalyzer) feedPosition(x float64) {
	if len(s.resyncAt) > 0 && s.resyncAt[0] == s.fed {
		s.mmin.Reset()
		s.mmax.Reset()
		s.resyncAt = s.resyncAt[1:]
	}
	s.fed++
	s.lastMin = s.mmin.Process(x)
	s.lastMax = s.mmax.Process(x)
	s.haveStats = true
	s.pending.push(x)
	// Positions up to (#fed - 1) - half can now be decided.
	for s.pending.len() > s.half {
		s.decide(s.pending.pop())
	}
}

// decide normalises one position against the current stats and runs the
// dip detector.
func (s *StreamAnalyzer) decide(x float64) {
	s.decideAt(x, s.flagBuf.popOrZero(), s.lastMin, s.lastMax)
}

// decideAt is decide with the position's flags and normalisation stats
// supplied by the caller — the block path computes stats per position
// up front instead of reading them from the analyzer at decision time.
func (s *StreamAnalyzer) decideAt(x float64, fl qflag, lo, hi float64) {
	i := s.emitted
	s.emitted++
	r := hi - lo
	var v float64
	if hi <= 0 || r < s.cfg.MinRangeFrac*hi {
		v = 1
	} else {
		v = (x - lo) / r
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
	}
	s.det.decide(i, v, fl, lo, hi)
}

// Finalize drains the pipeline and returns the profile. The analyzer must
// not be pushed to afterwards.
func (s *StreamAnalyzer) Finalize() *Profile {
	var t0 time.Time
	if s.obs != nil {
		t0 = time.Now()
	}
	drainFrom := s.emitted
	// Feed the smoother's uncompensated tail, as the batch analyzer keeps
	// the last `lead` positions unshifted.
	if s.smoother != nil {
		emit := int(s.n) - int(s.lead)
		if emit < 0 {
			emit = 0
		}
		// Positions already fed: emit; remaining positions take the tail
		// values (the trailing averages ending at those positions).
		for p := emit; p < int(s.n); p++ {
			idx := len(s.smTail) - (int(s.n) - p)
			if idx < 0 {
				idx = 0
			}
			s.feedPosition(s.smTail[idx])
		}
	}
	// Decide the trailing half-window with the final stats.
	for s.pending.len() > 0 && s.haveStats {
		s.decide(s.pending.pop())
	}
	s.det.finish(s.emitted)
	if s.obs != nil {
		s.obs.StageTiming(trace.StageTiming{
			Stage:      trace.StageDrain,
			DurationNs: time.Since(t0).Nanoseconds(),
			Samples:    s.emitted - drainFrom,
		})
	}
	s.prof.ExecCycles = float64(s.n) * (s.clockHz / s.sampleRate)
	s.prof.Quality = s.mon.q
	return s.prof
}

// Quality returns a snapshot of the signal-quality record accumulated so
// far; it is also available on the profile after Finalize.
func (s *StreamAnalyzer) Quality() Quality { return s.mon.q }

// Pushed returns the number of raw samples pushed so far.
func (s *StreamAnalyzer) Pushed() int64 { return s.n }

// Decided returns the number of positions whose detection decision is
// final. It trails Pushed by the pipeline latency (smoother group delay +
// half a normalisation window); only stalls ending at or before this
// position can appear in a Snapshot.
func (s *StreamAnalyzer) Decided() int64 { return s.emitted }

// Snapshot returns the profile of the samples analysed so far without
// disturbing the stream: the analyzer may keep being pushed to afterwards
// and Finalize still produces its usual result. The snapshot is strictly
// causal — it contains exactly the stalls whose end had been decided when
// it was taken (each a prefix of the eventual Finalize output on the same
// stream), the quality record to date, and ExecCycles covering every
// pushed sample. Dips still open, or buffered behind the normalisation
// half-window, are not speculated about.
//
// The returned profile shares nothing with the analyzer's internal state;
// StreamAnalyzer itself is still not safe for concurrent use, so callers
// interleaving Push and Snapshot from different goroutines must serialise
// them (the profiling service's session lock does exactly this).
func (s *StreamAnalyzer) Snapshot() *Profile {
	p := *s.prof
	p.Stalls = append([]Stall(nil), s.prof.Stalls...)
	if s.sampleRate > 0 {
		p.ExecCycles = float64(s.n) * (s.clockHz / s.sampleRate)
	}
	p.Quality = s.mon.q
	return &p
}

// SnapshotView is Snapshot without the stall-list clone: the returned
// profile's Stalls alias the analyzer's live list. It exists for callers
// that hold the analyzer's external serialisation lock across both the
// call and every read of the result (the profiling service encodes the
// snapshot to JSON under its session lock); the view must not be
// retained or read after that lock is released. All scalar fields match
// Snapshot exactly.
func (s *StreamAnalyzer) SnapshotView() Profile {
	p := *s.prof
	if s.sampleRate > 0 {
		p.ExecCycles = float64(s.n) * (s.clockHz / s.sampleRate)
	}
	p.Quality = s.mon.q
	return p
}

// ProfileStream runs the streaming analyzer over a whole capture; it is
// the streaming counterpart of Analyzer.Profile and produces the same
// result.
func ProfileStream(c *em.Capture, cfg Config) (*Profile, error) {
	s, err := NewStreamAnalyzer(cfg, c.SampleRate, c.ClockHz)
	if err != nil {
		return nil, err
	}
	for _, x := range c.Samples {
		s.Push(x)
	}
	return s.Finalize(), nil
}
