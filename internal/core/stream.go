package core

import (
	"math"

	"emprof/internal/dsp"
	"emprof/internal/em"
)

// StreamAnalyzer applies EMPROF incrementally, in bounded memory, as
// samples arrive — the deployment mode the paper implies, where a
// software-defined receiver streams for minutes (most SPEC runs exceed
// the spectrum analyzer's record length, which is why the authors moved
// to a streaming digitizer, Section VI). Push samples with Push, then
// call Finalize for the profile. Its output matches Analyzer.Profile on
// the same capture.
type StreamAnalyzer struct {
	cfg        Config
	sampleRate float64
	clockHz    float64

	// Smoothing stage with centre compensation: the moving average of
	// input j describes position j-lead.
	smoother *dsp.MovingAverage
	lead     int
	// recent raw smoother outputs, to reproduce the batch analyzer's
	// uncompensated tail.
	smTail []float64

	// Normalisation stage: trailing min/max over smoothed positions; the
	// decision for position i is taken half a window later.
	mmin, mmax *dsp.MovingExtremum
	half       int
	window     int
	// pending holds smoothed values awaiting their (delayed) decision.
	pending []float64

	// Detection state.
	n          int64 // raw samples pushed
	emitted    int64 // positions decided
	minSamples float64
	inDip      bool
	dipStart   int64
	depth      float64

	prof *Profile
	// OnStall, when set, is invoked for each detected stall as soon as
	// its end is decided.
	OnStall func(Stall)

	lastMin, lastMax float64
	haveStats        bool
}

// NewStreamAnalyzer returns a streaming analyzer for a signal with the
// given acquisition metadata.
func NewStreamAnalyzer(cfg Config, sampleRate, clockHz float64) (*StreamAnalyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &StreamAnalyzer{
		cfg:        cfg,
		sampleRate: sampleRate,
		clockHz:    clockHz,
		prof: &Profile{
			SampleRate: sampleRate,
			ClockHz:    clockHz,
		},
		depth: math.Inf(1),
	}
	w := int(cfg.NormWindowS * sampleRate)
	if w < 8 {
		w = 8
	}
	s.window = w
	s.half = w / 2
	s.mmin = dsp.NewMovingMin(w)
	s.mmax = dsp.NewMovingMax(w)
	if cfg.SmoothSamples > 1 {
		s.smoother = dsp.NewMovingAverage(cfg.SmoothSamples)
		s.lead = (cfg.SmoothSamples - 1) / 2
	}
	s.minSamples = cfg.MinStallS * sampleRate
	return s, nil
}

// Push feeds one magnitude sample.
func (s *StreamAnalyzer) Push(x float64) {
	s.n++
	if s.smoother == nil {
		s.feedPosition(x)
		return
	}
	y := s.smoother.Process(x)
	if len(s.smTail) == s.lead+1 {
		copy(s.smTail, s.smTail[1:])
		s.smTail = s.smTail[:s.lead]
	}
	s.smTail = append(s.smTail, y)
	// The smoothed value for position n-1-lead is available now.
	if s.n > int64(s.lead) {
		s.feedPosition(y)
	}
}

// feedPosition advances the normalisation stage with the smoothed value
// of the next position.
func (s *StreamAnalyzer) feedPosition(x float64) {
	s.lastMin = s.mmin.Process(x)
	s.lastMax = s.mmax.Process(x)
	s.haveStats = true
	s.pending = append(s.pending, x)
	// Positions up to (#fed - 1) - half can now be decided.
	for len(s.pending) > s.half {
		v := s.pending[0]
		s.pending = s.pending[1:]
		s.decide(v)
	}
}

// decide normalises one position against the current stats and runs the
// dip detector.
func (s *StreamAnalyzer) decide(x float64) {
	i := s.emitted
	s.emitted++
	lo, hi := s.lastMin, s.lastMax
	r := hi - lo
	var v float64
	if hi <= 0 || r < s.cfg.MinRangeFrac*hi {
		v = 1
	} else {
		v = (x - lo) / r
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
	}

	if !s.inDip {
		if v < s.cfg.EnterThreshold {
			s.inDip = true
			s.dipStart = i
			s.depth = v
		}
		return
	}
	if v < s.depth {
		s.depth = v
	}
	if v > s.cfg.ExitThreshold {
		s.flush(i)
		s.inDip = false
		s.depth = math.Inf(1)
	}
}

// flush closes the current dip ending (exclusive) at position end.
func (s *StreamAnalyzer) flush(end int64) {
	durSamples := end - s.dipStart
	durS := float64(durSamples) / s.sampleRate
	if float64(durSamples) < s.minSamples {
		return
	}
	maxDepth := s.cfg.MaxDipDepth
	if durS >= s.cfg.LongStallS {
		maxDepth = s.cfg.MaxDipDepthLong
	}
	if s.depth > maxDepth {
		return
	}
	st := Stall{
		StartSample: int(s.dipStart),
		EndSample:   int(end),
		StartS:      float64(s.dipStart) / s.sampleRate,
		DurationS:   durS,
		Cycles:      durS * s.clockHz,
		Depth:       s.depth,
		Refresh:     durS >= s.cfg.RefreshMinS,
	}
	s.prof.Stalls = append(s.prof.Stalls, st)
	if st.Refresh {
		s.prof.RefreshStalls++
	} else {
		s.prof.Misses++
	}
	s.prof.StallCycles += st.Cycles
	if s.OnStall != nil {
		s.OnStall(st)
	}
}

// Finalize drains the pipeline and returns the profile. The analyzer must
// not be pushed to afterwards.
func (s *StreamAnalyzer) Finalize() *Profile {
	// Feed the smoother's uncompensated tail, as the batch analyzer keeps
	// the last `lead` positions unshifted.
	if s.smoother != nil {
		emit := int(s.n) - int(s.lead)
		if emit < 0 {
			emit = 0
		}
		// Positions already fed: emit; remaining positions take the tail
		// values (the trailing averages ending at those positions).
		for p := emit; p < int(s.n); p++ {
			idx := len(s.smTail) - (int(s.n) - p)
			if idx < 0 {
				idx = 0
			}
			s.feedPosition(s.smTail[idx])
		}
	}
	// Decide the trailing half-window with the final stats.
	for len(s.pending) > 0 && s.haveStats {
		v := s.pending[0]
		s.pending = s.pending[1:]
		s.decide(v)
	}
	if s.inDip {
		s.flush(s.emitted)
		s.inDip = false
	}
	s.prof.ExecCycles = float64(s.n) * (s.clockHz / s.sampleRate)
	return s.prof
}

// ProfileStream runs the streaming analyzer over a whole capture; it is
// the streaming counterpart of Analyzer.Profile and produces the same
// result.
func ProfileStream(c *em.Capture, cfg Config) (*Profile, error) {
	s, err := NewStreamAnalyzer(cfg, c.SampleRate, c.ClockHz)
	if err != nil {
		return nil, err
	}
	for _, x := range c.Samples {
		s.Push(x)
	}
	return s.Finalize(), nil
}
