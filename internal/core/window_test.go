package core

import (
	"math/rand"
	"reflect"
	"testing"

	"emprof/internal/em"
)

// windowedRun streams a capture through an analyzer with a windower
// attached (the continuous-profiling wiring the service uses) and
// returns the emitted window sequence plus the finalize profile.
func windowedRun(t *testing.T, c *em.Capture, widthS, strideS float64, chunk int) ([]ProfileWindow, *Profile) {
	t.Helper()
	an, err := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindower(widthS, strideS, c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	var wins []ProfileWindow
	w.OnWindow = func(pw *ProfileWindow) {
		pw.Quality = an.Quality()
		wins = append(wins, *pw)
	}
	an.OnStall = w.Observe
	for off := 0; off < len(c.Samples); off += chunk {
		end := off + chunk
		if end > len(c.Samples) {
			end = len(c.Samples)
		}
		an.PushBlock(c.Samples[off:end])
		w.Advance(an.Frontier())
	}
	prof := an.Finalize()
	w.Flush(an.Pushed())
	return wins, prof
}

func TestWindowMergeMatchesFinalize(t *testing.T) {
	dips := map[int]int{}
	for i := 0; i < 40; i++ {
		dips[2500+i*900] = 9 + i%7
	}
	dips[30000] = 110 // refresh-class event
	c := synthCapture(42000, dips, 0.1, 1.2, 0.02, 7)

	for _, widthS := range []float64{2e-4, 3.7e-4, 1.05e-3, 2e-3} {
		wins, want := windowedRun(t, c, widthS, 0, 4096)
		merged, err := MergeWindows(wins, c.SampleRate, c.ClockHz)
		if err != nil {
			t.Fatalf("width %v: merge: %v", widthS, err)
		}
		if !reflect.DeepEqual(merged, want) {
			t.Fatalf("width %v: merged windows diverge from Finalize:\nmerged: %+v\nwant:   %+v",
				widthS, merged, want)
		}
		// The window sequence tiles the stream.
		if wins[0].StartSample != 0 {
			t.Fatalf("width %v: first window starts at %d", widthS, wins[0].StartSample)
		}
		last := wins[len(wins)-1]
		if !last.Final || last.EndSample != int64(len(c.Samples)) {
			t.Fatalf("width %v: final window %+v does not close the stream of %d samples", widthS, last, len(c.Samples))
		}
	}
}

func TestWindowMergeMatchesFinalizeRandomChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dips := map[int]int{}
	for i := 0; i < 25; i++ {
		dips[2000+rng.Intn(30000)] = 8 + rng.Intn(18)
	}
	c := synthCapture(36000, dips, 0.12, 1, 0.04, 13)
	want, err := ProfileStream(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		chunk := 1 + rng.Intn(9000)
		wins, prof := windowedRun(t, c, 5e-4, 0, chunk)
		if !reflect.DeepEqual(prof, want) {
			t.Fatalf("chunk %d: windowed analyzer diverged from plain stream", chunk)
		}
		merged, err := MergeWindows(wins, c.SampleRate, c.ClockHz)
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !reflect.DeepEqual(merged, want) {
			t.Fatalf("chunk %d: merged windows diverge from Finalize", chunk)
		}
	}
}

func TestFrontierMonotonicCausal(t *testing.T) {
	c := synthCapture(30000, map[int]int{5000: 12, 9000: 300, 15000: 14, 22000: 11}, 0.1, 1, 0.03, 3)
	an, err := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	var lastFrontier int64
	an.OnStall = func(st Stall) {
		if int64(st.StartSample) < lastFrontier {
			t.Fatalf("stall onset %d emitted behind the frontier %d", st.StartSample, lastFrontier)
		}
	}
	for i, x := range c.Samples {
		an.Push(x)
		f := an.Frontier()
		if f < lastFrontier {
			t.Fatalf("frontier went backwards at sample %d: %d -> %d", i, lastFrontier, f)
		}
		if f > an.Decided() {
			t.Fatalf("frontier %d ahead of decided %d", f, an.Decided())
		}
		lastFrontier = f
	}
	an.Finalize()
}

func TestOverlappingWindows(t *testing.T) {
	c := synthCapture(24000, map[int]int{4000: 12, 10000: 12, 16000: 12}, 0.1, 1, 0, 9)
	// stride = width/2: each stall should land in (up to) two windows.
	wins, prof := windowedRun(t, c, 4e-4, 2e-4, 3000)
	total := 0
	for _, w := range wins {
		total += len(w.Stalls)
	}
	if want := 2 * len(prof.Stalls); total != want && total != want-1 {
		// The very first stall can fall in window 0 only if its onset is
		// within the first stride.
		t.Fatalf("overlapping windows hold %d stall entries, want about %d (2x%d)", total, want, len(prof.Stalls))
	}
	if _, err := MergeWindows(wins, c.SampleRate, c.ClockHz); err == nil {
		t.Fatal("merging overlapping windows should fail")
	}
}

func TestWindowerResume(t *testing.T) {
	c := synthCapture(32000, map[int]int{3000: 12, 8000: 14, 14000: 11, 20000: 300, 27000: 12}, 0.1, 1, 0.02, 5)
	wantWins, wantProf := windowedRun(t, c, 3e-4, 0, 2048)

	// Split the stream mid-way: run, export analyzer + windower, resume
	// both, continue — the window sequence must be seamless.
	split := 13777
	an, _ := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
	w, _ := NewWindower(3e-4, 0, c.SampleRate, c.ClockHz)
	var wins []ProfileWindow
	attach := func(an *StreamAnalyzer, w *Windower) {
		w.OnWindow = func(pw *ProfileWindow) {
			pw.Quality = an.Quality()
			wins = append(wins, *pw)
		}
		an.OnStall = w.Observe
	}
	attach(an, w)
	an.PushBlock(c.Samples[:split])
	w.Advance(an.Frontier())

	an2, err := ResumeStreamAnalyzer(an.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ResumeWindower(w.ExportState(), c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	attach(an2, w2)
	an2.PushBlock(c.Samples[split:])
	w2.Advance(an2.Frontier())
	prof := an2.Finalize()
	w2.Flush(an2.Pushed())

	if !reflect.DeepEqual(prof, wantProf) {
		t.Fatal("resumed analyzer profile diverged")
	}
	// Mid-stream windows carry the cumulative quality at seal time, which
	// legitimately depends on when the seal ran relative to the pushes;
	// only the Final window's quality is deterministic. Compare the rest.
	clearMidQuality := func(ws []ProfileWindow) {
		for i := range ws {
			if !ws[i].Final {
				ws[i].Quality = Quality{}
			}
		}
	}
	clearMidQuality(wins)
	clearMidQuality(wantWins)
	if !reflect.DeepEqual(wins, wantWins) {
		t.Fatalf("resumed window sequence diverged:\ngot:  %+v\nwant: %+v", wins, wantWins)
	}
}

func TestWindowerValidation(t *testing.T) {
	if _, err := NewWindower(0, 0, 40e6, 1e9); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewWindower(1e-3, 2e-3, 40e6, 1e9); err == nil {
		t.Fatal("stride > width accepted")
	}
	if _, err := NewWindower(1e-3, 0, 0, 1e9); err == nil {
		t.Fatal("zero sample rate accepted")
	}
	if _, err := ResumeWindower(nil, 40e6, 1e9); err == nil {
		t.Fatal("nil state accepted")
	}
	if _, err := ResumeWindower(&WindowerState{WidthSamples: 4, StrideSamples: 8}, 40e6, 1e9); err == nil {
		t.Fatal("bad geometry accepted")
	}
}
