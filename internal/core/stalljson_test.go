package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"emprof/internal/sim"
)

// rawStall mirrors Stall without the StallList codec in reach, so
// encoding/json's reflection path produces the reference bytes.
type rawStall struct {
	StartSample, EndSample int
	StartS                 float64
	DurationS              float64
	Cycles                 float64
	Depth                  float64
	Refresh                bool
	Confidence             float64
}

func toRaw(sl StallList) []rawStall {
	if sl == nil {
		return nil
	}
	out := make([]rawStall, len(sl))
	for i, s := range sl {
		out[i] = rawStall(s)
	}
	return out
}

// edgeFloats are values that stress the encoder's format selection:
// the f/e switchover thresholds, subnormals, negative zero, shortest-
// round-trip ties, and typical profile magnitudes.
var edgeFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0,
	1e-6, 9.999999e-7, 1e-7, 1e21, 9.999999e20, 1e22, -1e21, -1e-7,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	1e-9, 2.5e-15, 123456789.123456789, 5e-324, 1.7976931348623157e308,
	0.30000000000000004, 42.125, 1e20, 1e6,
}

func randomStalls(rng *sim.RNG, n int) StallList {
	pick := func() float64 {
		if rng.Uint64()%4 == 0 {
			return edgeFloats[rng.Uint64()%uint64(len(edgeFloats))]
		}
		// A random finite float64 via random bits.
		for {
			v := math.Float64frombits(rng.Uint64())
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				return v
			}
		}
	}
	out := make(StallList, n)
	for i := range out {
		out[i] = Stall{
			StartSample: int(int32(rng.Uint64())),
			EndSample:   int(int32(rng.Uint64())),
			StartS:      pick(),
			DurationS:   pick(),
			Cycles:      pick(),
			Depth:       pick(),
			Refresh:     rng.Uint64()%2 == 0,
			Confidence:  pick(),
		}
	}
	return out
}

// TestStallListMarshalMatchesStdlib is the codec's wire-compatibility
// property: for any stall list — including nil, empty, and edge-case
// floats — MarshalJSON must produce byte-identical output to
// encoding/json over the equivalent plain struct slice, and a whole
// Profile must encode identically to one whose stalls went through
// reflection.
func TestStallListMarshalMatchesStdlib(t *testing.T) {
	rng := sim.NewRNG(42)
	lists := []StallList{nil, {}}
	for i := 0; i < 200; i++ {
		lists = append(lists, randomStalls(rng, int(rng.Uint64()%5)))
	}
	for i, sl := range lists {
		got, err := json.Marshal(sl)
		if err != nil {
			t.Fatalf("list %d: %v", i, err)
		}
		want, err := json.Marshal(toRaw(sl))
		if err != nil {
			t.Fatalf("list %d: stdlib: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("list %d: wire bytes differ\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestStallListUnmarshalRoundTrip pins that decoding recovers every
// value bit-exactly on the fast path, and that the stdlib fallback
// engages for whitespace, reordered fields, and unknown fields.
func TestStallListUnmarshalRoundTrip(t *testing.T) {
	rng := sim.NewRNG(7)
	for i := 0; i < 200; i++ {
		sl := randomStalls(rng, int(rng.Uint64()%6))
		blob, err := json.Marshal(sl)
		if err != nil {
			t.Fatal(err)
		}
		var back StallList
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("list %d: %v", i, err)
		}
		if len(back) != len(sl) {
			t.Fatalf("list %d: length %d != %d", i, len(back), len(sl))
		}
		for j := range sl {
			if sl[j].Refresh != back[j].Refresh ||
				sl[j].StartSample != back[j].StartSample || sl[j].EndSample != back[j].EndSample ||
				math.Float64bits(sl[j].StartS) != math.Float64bits(back[j].StartS) ||
				math.Float64bits(sl[j].DurationS) != math.Float64bits(back[j].DurationS) ||
				math.Float64bits(sl[j].Cycles) != math.Float64bits(back[j].Cycles) ||
				math.Float64bits(sl[j].Depth) != math.Float64bits(back[j].Depth) ||
				math.Float64bits(sl[j].Confidence) != math.Float64bits(back[j].Confidence) {
				t.Fatalf("list %d stall %d: round trip not bit-exact\nin:  %+v\nout: %+v", i, j, sl[j], back[j])
			}
		}
	}

	// Tolerant fallback: inputs only the stdlib path accepts.
	want := StallList{{StartSample: 3, EndSample: 9, DurationS: 0.5, Refresh: true, Confidence: 1}}
	for _, in := range []string{
		` [ { "StartSample" : 3 , "EndSample" : 9 , "DurationS" : 0.5 , "Refresh" : true , "Confidence" : 1 } ] `,
		`[{"Confidence":1,"Refresh":true,"DurationS":0.5,"EndSample":9,"StartSample":3}]`,
		`[{"StartSample":3,"EndSample":9,"DurationS":0.5,"Refresh":true,"Confidence":1,"FutureField":"x"}]`,
	} {
		var got StallList
		if err := json.Unmarshal([]byte(in), &got); err != nil {
			t.Fatalf("fallback input %q: %v", in, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback input %q: got %+v want %+v", in, got, want)
		}
	}
	// Nil round-trips as null.
	var nilList StallList
	blob, _ := json.Marshal(nilList)
	if string(blob) != "null" {
		t.Fatalf("nil list encodes as %s", blob)
	}
	var back StallList
	if err := json.Unmarshal(blob, &back); err != nil || back != nil {
		t.Fatalf("null decodes to %v (%v)", back, err)
	}
}
