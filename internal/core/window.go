package core

import (
	"fmt"
	"sort"
)

// This file implements rolling profile windows — the continuous-profiling
// face of the streaming analyzer. A long-running session does not only
// accumulate one ever-growing profile: a Windower slices the decided
// stream into fixed-width windows (tumbling by default, overlapping when
// the stride is shorter than the width) and emits each one as soon as no
// future decision can add a stall to it. Tumbling windows concatenate
// exactly: MergeWindows over a session's full window sequence reproduces
// the Finalize profile of the same stream bit for bit.

// Frontier returns the stream position (in decided-sample space) below
// which the stall list is final: every stall whose onset precedes the
// frontier has already been emitted, and no stall with an earlier onset
// can ever be emitted. While a dip candidate is open the frontier holds
// at its onset — the dip may yet become a stall starting there; otherwise
// it is the decided count. Stalls are emitted in onset order, which is
// what makes the frontier a single watermark rather than a set.
func (s *StreamAnalyzer) Frontier() int64 {
	if s.det.inDip {
		return s.det.start
	}
	return s.emitted
}

// WindowRegion is one code region's share of a window's stalls, filled
// in by the continuous attribution stage when the session carries a
// trained model (see internal/attrib).
type WindowRegion struct {
	Region uint16 `json:"region"`
	Name   string `json:"name,omitempty"`
	// Misses counts the window's stalls attributed to the region.
	Misses int `json:"misses"`
	// StallCycles is their summed cost in cycles.
	StallCycles float64 `json:"stall_cycles"`
}

// ProfileWindow is one rolling window of a continuously-profiled
// stream: the stalls whose onset falls in [StartSample, EndSample), with
// the same aggregate counters a Profile carries, scoped to the window.
type ProfileWindow struct {
	// Index numbers windows from 0 in stride steps; window i spans
	// [i*stride, i*stride+width) except the final partial one.
	Index       int64 `json:"index"`
	StartSample int64 `json:"start_sample"`
	EndSample   int64 `json:"end_sample"`
	// StartS and EndS are the window bounds in stream seconds.
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
	// Final marks the trailing (possibly partial, possibly empty) window
	// emitted at Finalize; its Quality is the stream's final quality.
	Final bool `json:"final,omitempty"`

	Stalls        []Stall `json:"stalls"`
	Misses        int     `json:"misses"`
	RefreshStalls int     `json:"refresh_stalls"`
	StallCycles   float64 `json:"stall_cycles"`
	// MeanConfidence averages the window's per-stall confidence (0 when
	// the window has no stalls).
	MeanConfidence float64 `json:"mean_confidence"`
	// Quality is the cumulative signal-quality record at seal time; on
	// the Final window it equals the Finalize profile's quality.
	Quality Quality `json:"quality"`
	// Regions carries the window's live stall→code-region attribution
	// when the session has a trained model; empty otherwise.
	Regions []WindowRegion `json:"regions,omitempty"`
}

// Windower slices a stream's stall sequence into rolling profile
// windows. Feed it every accepted stall via Observe (hook it into
// StreamAnalyzer.OnStall), advance it with the analyzer's Frontier after
// each push, and Flush it at finalize. It is not internally synchronised:
// serialise it with the analyzer it observes.
type Windower struct {
	width, stride int64
	sampleRate    float64
	clockHz       float64

	next    int64 // start of the next unsealed window
	idx     int64
	pending []Stall // stalls with onset >= next, in onset order

	// OnWindow receives each sealed window. The callback owns the value;
	// the windower retains nothing of it.
	OnWindow func(*ProfileWindow)
}

// NewWindower builds a windower with the given width and stride in
// stream seconds. strideS <= 0 means tumbling (stride = width); a stride
// shorter than the width yields overlapping windows (which no longer
// merge — MergeWindows requires tumbling geometry).
func NewWindower(widthS, strideS, sampleRate, clockHz float64) (*Windower, error) {
	if !(widthS > 0) {
		return nil, fmt.Errorf("core: window width %v s must be positive", widthS)
	}
	if !(sampleRate > 0) || !(clockHz > 0) {
		return nil, fmt.Errorf("core: windower needs acquisition metadata (rate=%v clock=%v)", sampleRate, clockHz)
	}
	if strideS <= 0 {
		strideS = widthS
	}
	if strideS > widthS {
		return nil, fmt.Errorf("core: window stride %v s exceeds width %v s (gaps would drop stalls)", strideS, widthS)
	}
	width := int64(widthS * sampleRate)
	if width < 1 {
		width = 1
	}
	stride := int64(strideS * sampleRate)
	if stride < 1 {
		stride = 1
	}
	if stride > width {
		stride = width
	}
	return &Windower{width: width, stride: stride, sampleRate: sampleRate, clockHz: clockHz}, nil
}

// WidthSamples returns the window width in samples.
func (w *Windower) WidthSamples() int64 { return w.width }

// StrideSamples returns the window stride in samples.
func (w *Windower) StrideSamples() int64 { return w.stride }

// Tumbling reports whether stride equals width (windows concatenate).
func (w *Windower) Tumbling() bool { return w.stride == w.width }

// NextIndex returns the index the next sealed window will carry.
func (w *Windower) NextIndex() int64 { return w.idx }

// NextStart returns the stream position where the next unsealed window
// begins — nothing below it can appear in a future window, which is what
// lets downstream stages (the streaming attributor) release state.
func (w *Windower) NextStart() int64 { return w.next }

// Observe records one accepted stall. Stalls arrive in onset order (the
// detector emits them that way); one with an onset before the sealing
// watermark would belong to an already-sealed window and is dropped —
// it cannot happen when Advance is driven by the analyzer's Frontier.
func (w *Windower) Observe(st Stall) {
	if int64(st.StartSample) < w.next {
		return
	}
	w.pending = append(w.pending, st)
}

// Advance seals every window that the frontier proves complete: window
// [next, next+width) is final once no stall with onset < next+width can
// still be emitted.
func (w *Windower) Advance(frontier int64) {
	for frontier >= w.next+w.width {
		w.seal(w.next, w.next+w.width, false)
	}
}

// Flush seals everything up to end-of-stream at position total: the
// remaining complete windows, then one trailing Final window covering
// [next, total). The trailing window may be partial or even empty (the
// stream ended exactly on a boundary) — it is always emitted, because it
// carries the stream's final cumulative quality, which is what lets
// MergeWindows reproduce Finalize exactly.
func (w *Windower) Flush(total int64) {
	w.Advance(total)
	end := total
	if end < w.next {
		end = w.next
	}
	w.seal(w.next, end, true)
}

func (w *Windower) seal(lo, hi int64, final bool) {
	pw := &ProfileWindow{
		Index:       w.idx,
		StartSample: lo,
		EndSample:   hi,
		StartS:      float64(lo) / w.sampleRate,
		EndS:        float64(hi) / w.sampleRate,
		Final:       final,
	}
	var confSum float64
	for _, st := range w.pending {
		if int64(st.StartSample) < lo || int64(st.StartSample) >= hi {
			continue
		}
		pw.Stalls = append(pw.Stalls, st)
		if st.Refresh {
			pw.RefreshStalls++
		} else {
			pw.Misses++
		}
		pw.StallCycles += st.Cycles
		confSum += st.Confidence
	}
	if pw.Stalls == nil {
		pw.Stalls = []Stall{}
	}
	if n := len(pw.Stalls); n > 0 {
		pw.MeanConfidence = confSum / float64(n)
	}
	w.idx++
	w.next += w.stride
	// Drop stalls no future window can contain (onset below the new
	// watermark); with overlapping strides later windows still need the
	// rest.
	keep := w.pending[:0]
	for _, st := range w.pending {
		if int64(st.StartSample) >= w.next {
			keep = append(keep, st)
		}
	}
	w.pending = keep
	if w.OnWindow != nil {
		w.OnWindow(pw)
	}
}

// WindowerState is the hand-off form of a windower: enough to resume
// window emission seamlessly on another shard.
type WindowerState struct {
	WidthSamples  int64   `json:"width_samples"`
	StrideSamples int64   `json:"stride_samples"`
	Next          int64   `json:"next"`
	Index         int64   `json:"index"`
	Pending       []Stall `json:"pending,omitempty"`
}

// ExportState snapshots the windower for hand-off.
func (w *Windower) ExportState() *WindowerState {
	return &WindowerState{
		WidthSamples:  w.width,
		StrideSamples: w.stride,
		Next:          w.next,
		Index:         w.idx,
		Pending:       append([]Stall(nil), w.pending...),
	}
}

// ResumeWindower reconstructs a windower from an exported state.
func ResumeWindower(st *WindowerState, sampleRate, clockHz float64) (*Windower, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil windower state")
	}
	if st.WidthSamples < 1 || st.StrideSamples < 1 || st.StrideSamples > st.WidthSamples {
		return nil, fmt.Errorf("core: windower state geometry %d/%d invalid", st.WidthSamples, st.StrideSamples)
	}
	if !(sampleRate > 0) || !(clockHz > 0) {
		return nil, fmt.Errorf("core: windower needs acquisition metadata (rate=%v clock=%v)", sampleRate, clockHz)
	}
	if st.Next < 0 || st.Index < 0 {
		return nil, fmt.Errorf("core: windower state position %d/%d invalid", st.Next, st.Index)
	}
	return &Windower{
		width:      st.WidthSamples,
		stride:     st.StrideSamples,
		sampleRate: sampleRate,
		clockHz:    clockHz,
		next:       st.Next,
		idx:        st.Index,
		pending:    append([]Stall(nil), st.Pending...),
	}, nil
}

// MergeWindows reassembles a full-stream profile from a session's
// complete tumbling window sequence — the query-side inverse of the
// windower. The windows must tile the stream (each starts where the
// previous ended); the result is bit-identical to Finalize on the same
// stream: stalls concatenate in onset order, the counters sum, and
// ExecCycles/Quality come from the Final window's end position and
// cumulative quality record.
func MergeWindows(ws []ProfileWindow, sampleRate, clockHz float64) (*Profile, error) {
	if !(sampleRate > 0) || !(clockHz > 0) {
		return nil, fmt.Errorf("core: merge needs acquisition metadata (rate=%v clock=%v)", sampleRate, clockHz)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("core: no windows to merge")
	}
	sorted := append([]ProfileWindow(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	p := &Profile{SampleRate: sampleRate, ClockHz: clockHz, Stalls: []Stall{}}
	for i, win := range sorted {
		if i > 0 {
			prev := sorted[i-1]
			if win.Index == prev.Index {
				return nil, fmt.Errorf("core: duplicate window index %d", win.Index)
			}
			if win.Index != prev.Index+1 {
				return nil, fmt.Errorf("core: window sequence gap between index %d and %d", prev.Index, win.Index)
			}
			if win.StartSample != prev.EndSample {
				return nil, fmt.Errorf("core: windows %d and %d do not tile (overlapping strides cannot be merged)", prev.Index, win.Index)
			}
		}
		p.Stalls = append(p.Stalls, win.Stalls...)
		p.Misses += win.Misses
		p.RefreshStalls += win.RefreshStalls
	}
	// Accumulate StallCycles per stall in emit order — not by summing the
	// per-window subtotals — to reproduce the analyzer's own running sum
	// bit for bit (float addition is not associative; grouping the terms
	// by window can differ in the last ulp when cycles-per-sample is not
	// an integer).
	for _, st := range p.Stalls {
		p.StallCycles += st.Cycles
	}
	last := sorted[len(sorted)-1]
	if !last.Final {
		return nil, fmt.Errorf("core: window sequence is incomplete (no final window)")
	}
	p.ExecCycles = float64(last.EndSample) * (clockHz / sampleRate)
	p.Quality = last.Quality
	return p, nil
}
