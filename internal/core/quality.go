package core

import (
	"fmt"
	"math"

	"emprof/internal/dsp"
	"emprof/internal/trace"
)

// This file implements the signal-quality side of the profiler: a causal
// per-sample monitor that detects acquisition impairments (corrupt
// samples, dropouts, ADC saturation, receiver gain steps, impulsive RF
// bursts), sanitises the sample stream so the normalisation windows are
// never poisoned, re-seeds the min/max state after discontinuities, and a
// shared dip detector that suppresses phantom stalls across impaired
// regions and annotates every reported stall with a confidence score.
//
// The monitor is used identically by Analyzer (batch) and StreamAnalyzer:
// it is strictly causal, so feeding the same raw samples in the same order
// produces the same flags, sanitised values and resync points in both —
// which keeps batch and streaming output equivalent, faults or not. On a
// clean capture every sample passes through bit-identically and no flag or
// resync ever fires, so hardened profiles match the pre-hardening ones
// exactly.

// Quality aggregates per-capture signal-health metrics. A fully clean
// acquisition reports zero in every counter; each counter is a count of
// samples (or events for Resyncs/AbortedDips) affected by one impairment
// class. A sample can contribute to more than one counter when
// impairments overlap, so Impaired is an upper bound on distinct bad
// samples.
type Quality struct {
	// Samples is the total number of raw samples seen.
	Samples int64
	// NaNSamples counts non-finite (NaN/±Inf) samples, replaced by the
	// last good value.
	NaNSamples int64
	// DroppedSamples counts exact-zero samples — the signature of
	// digitizer dropouts/gaps (a Rician noise floor is almost surely
	// nonzero, and even noise-free power-proxy captures stay strictly
	// positive because of the core's baseline power).
	DroppedSamples int64
	// ClippedSamples counts flat-lined samples at the top of the range
	// (ADC saturation).
	ClippedSamples int64
	// BurstSamples counts impulsive spikes implausibly far above the
	// busy-level reference (RF interference).
	BurstSamples int64
	// StepSamples counts samples inside confirmed gain-step (or, with
	// ProbeShiftRatio armed, probe-shift) transition regions.
	StepSamples int64
	// Resyncs counts normalisation re-seeds: the min/max windows were
	// reset after a long gap or a receiver gain discontinuity.
	Resyncs int
	// AbortedDips counts candidate dips discarded because an impairment
	// overlapped them (each would otherwise risk becoming a phantom
	// stall).
	AbortedDips int
}

// Impaired returns the total impaired-sample tally across all classes.
func (q Quality) Impaired() int64 {
	return q.NaNSamples + q.DroppedSamples + q.ClippedSamples + q.BurstSamples + q.StepSamples
}

// UsableFraction is the fraction of samples unaffected by any detected
// impairment (1 for an empty or clean capture).
func (q Quality) UsableFraction() float64 {
	if q.Samples == 0 {
		return 1
	}
	u := 1 - float64(q.Impaired())/float64(q.Samples)
	if u < 0 {
		u = 0
	}
	return u
}

// Clean reports whether no impairment of any kind was detected.
func (q Quality) Clean() bool { return q.Impaired() == 0 && q.Resyncs == 0 }

// String summarises the quality record.
func (q Quality) String() string {
	if q.Clean() {
		return fmt.Sprintf("clean (%d samples)", q.Samples)
	}
	return fmt.Sprintf("%.2f%% usable (%d samples: %d NaN, %d dropped, %d clipped, %d burst, %d step; %d resyncs, %d aborted dips)",
		100*q.UsableFraction(), q.Samples, q.NaNSamples, q.DroppedSamples,
		q.ClippedSamples, q.BurstSamples, q.StepSamples, q.Resyncs, q.AbortedDips)
}

// qflag marks the impairment classes a sample belongs to. It aliases the
// trace package's Flag so per-sample masks flow into decision events
// without conversion.
type qflag = trace.Flag

const (
	qNaN   = trace.FlagNaN
	qGap   = trace.FlagGap
	qClip  = trace.FlagClip
	qBurst = trace.FlagBurst
	qStep  = trace.FlagStep
)

// qStructural are the impairments that invalidate dip evidence outright: a
// dip overlapping one is aborted rather than reported, and no dip may
// begin on such a sample. NaN and burst samples are reconstructed by
// holding the last good value, so a dip may continue across them (at
// reduced confidence).
const qStructural = qGap | qClip | qStep

// monitor is the causal signal-quality stage. All thresholds are derived
// from the profiler configuration and sample rate so that the batch and
// streaming analyzers construct identical monitors.
type monitor struct {
	// persist is both the busy-tracker window and the number of samples a
	// gain-step condition must persist before a resync is declared. It is
	// sized to 2.5× the refresh-stall ceiling so that even the longest
	// genuine stall (which depresses the short moving max only after
	// persist samples, and then only for its remaining duration) can
	// never masquerade as a gain step.
	persist int
	// resyncGap is the dropout length at or beyond which the
	// normalisation state is re-seeded when the gap ends.
	resyncGap int
	// clipRun is the flat-line run length that confirms saturation.
	clipRun int
	// half is the normalisation half-window; retroactive flagging is
	// clamped below it so batch and stream apply identical retro flags.
	half int

	// stepRatio is the smax/ref band edge for gain-step suspicion. It is
	// deliberately far above any workload-induced busy-level shift
	// (phase changes move the envelope by up to ~2.2× in practice):
	// gain changes below it are exactly what the moving min/max
	// normalisation absorbs by design — a down-step of less than ~2.8×
	// cannot push the busy level under the dip-entry threshold — so only
	// steps large enough to fake a stall need an explicit resync.
	stepRatio float64
	// shiftRatio, when > 0, arms the opt-in probe-shift detector (the
	// config's ProbeShiftRatio): a sustained band departure smaller than a
	// gain step but larger than this ratio re-seeds the normalisation with
	// cause probe_shift. It shares the persist discipline — and the
	// retroactive half-window flagging — with the step detector, so a
	// probe bump costs exactly one bounded resync. 0 leaves every code
	// path bit-identical to the shift-free monitor.
	shiftRatio    float64
	burstK        float64 // spike threshold as a multiple of ref
	clipMinFrac   float64 // flat-lines below this fraction of ref are ignored
	refAlpha      float64 // busy-reference EMA coefficient
	distinctAlpha float64 // EMA coefficient of the sample-distinctness arm

	smax     *dsp.MovingExtremum // busy-level tracker (moving max, persist wide)
	ref      float64             // busy-level reference
	refReady bool
	warm     int

	lastGood float64
	zeroRun  int
	runVal   float64
	runLen   int
	// clipActive is set once the current flat-line run has been flagged,
	// so the run's tail increments counters one sample at a time.
	clipActive bool
	stepDir    int
	stepLen    int
	// stepResyncPending delays a confirmed step's resync to the next
	// position: the first post-reset normalisation stat is then read by
	// the first retro-flagged decision, so a phantom dip induced by
	// straddling stats is aborted rather than flushed one position early.
	stepResyncPending bool
	// sinceHigh counts samples since the raw input last exceeded the
	// step band. The moving max holds an excursion for a full persist
	// window after it ends; this distinguishes a live step (raw highs
	// keep re-asserting) from a dead burst tail.
	sinceHigh int
	// shiftDir/shiftLen/sinceShiftHigh mirror the step-candidacy state at
	// the shift band edge; maintained only when shiftRatio > 0.
	shiftDir       int
	shiftLen       int
	sinceShiftHigh int
	// pendingCause is the resync cause reported when stepResyncPending
	// fires (gain-step or probe-shift).
	pendingCause trace.ResyncCause
	// distinct is an EMA of "this sample differs from the previous one".
	// Noise-free captures (the SESC power proxy) legitimately flat-line
	// on busy plateaus; the clip detector is armed only while the signal
	// is demonstrably noisy, where consecutive equality cannot happen by
	// chance.
	distinct float64
	prevX    float64
	havePrev bool

	// obs, when non-nil, receives a Resync event for every normalisation
	// re-seed and a QualityFlag event for every flagged sample;
	// resyncCause remembers what armed the pending resync. Nil keeps the
	// monitor on its original, emission-free path.
	obs         trace.Observer
	resyncCause trace.ResyncCause

	q Quality
}

// newMonitor derives the quality-monitor parameters from the profiler
// configuration and the acquisition sample rate.
func newMonitor(cfg Config, sampleRate float64) *monitor {
	win := int(cfg.NormWindowS * sampleRate)
	if win < 8 {
		win = 8
	}
	p := int(math.Ceil(2.5 * cfg.RefreshMinS * sampleRate))
	if p < 4 {
		p = 4
	}
	if p > 1<<14 {
		p = 1 << 14
	}
	refWin := 2 * p
	if w4 := win / 4; w4 > refWin {
		refWin = w4
	}
	return &monitor{
		persist:    p,
		resyncGap:  max(8, win/16),
		clipRun:    4,
		half:       win / 2,
		stepRatio:  2.5,
		shiftRatio: cfg.ProbeShiftRatio,
		// burstK matches stepRatio so the two detectors partition all
		// upward excursions: everything above the band is held out of the
		// sanitised stream as a burst, while the raw value still drives
		// gain-step tracking (see process). A gap between the thresholds
		// would let a spike below burstK poison the moving max for a
		// whole persist window and fake a step.
		burstK:        2.5,
		clipMinFrac:   0.5,
		refAlpha:      1.0 / float64(refWin),
		distinctAlpha: 1.0 / 256,
		smax:          dsp.NewMovingMax(p),
		distinct:      1,
	}
}

// process consumes one raw sample and returns the sanitised value, the
// impairment flags for this sample, how many immediately preceding samples
// must retroactively receive the same flags (always < half, so pending
// stream positions can still absorb them), and whether the normalisation
// state must be re-seeded before this position is folded in.
//
// It wraps processInner with the trace emission points so that the
// nil-observer path pays exactly one predictable branch per sample.
func (m *monitor) process(x float64) (y float64, fl qflag, retro int, resync bool) {
	y, fl, retro, resync = m.processInner(x)
	if m.obs != nil {
		pos := m.q.Samples - 1
		if resync {
			m.obs.Resync(trace.Resync{Pos: pos, Cause: m.resyncCause})
		}
		if fl != 0 {
			m.obs.QualityFlag(trace.QualityFlag{Pos: pos, Flags: fl, Retro: retro})
		}
	}
	return y, fl, retro, resync
}

func (m *monitor) processInner(x float64) (y float64, fl qflag, retro int, resync bool) {
	m.q.Samples++
	if m.stepResyncPending {
		resync = true
		m.stepResyncPending = false
		m.resyncCause = m.pendingCause
	}

	// Non-finite corruption: hold the last good value so a single NaN can
	// no longer poison a full min/max window.
	if math.IsNaN(x) || math.IsInf(x, 0) {
		m.q.NaNSamples++
		m.runLen, m.zeroRun = 0, 0
		m.clipActive = false
		y = m.lastGood
		m.track(y)
		return y, qNaN, 0, resync
	}

	// Exact-zero samples: dropped by the digitizer (gaps are zero-filled).
	if x == 0 {
		m.zeroRun++
		m.q.DroppedSamples++
		m.runLen = 0
		m.clipActive = false
		y = m.lastGood
		m.track(y)
		return y, qGap, 0, resync
	}
	if m.zeroRun >= m.resyncGap {
		// A long gap just ended: the coupling or gain may have moved while
		// we were blind, so re-seed the normalisation windows here.
		resync = true
		m.resyncCause = trace.ResyncGap
		m.q.Resyncs++
	}
	m.zeroRun = 0

	// Distinctness arm for the flat-line detector.
	if m.havePrev {
		d := 0.0
		if x != m.prevX {
			d = 1
		}
		m.distinct += m.distinctAlpha * (d - m.distinct)
	}
	m.prevX, m.havePrev = x, true

	// Flat-line run at the top of the range: ADC saturation. Runs near the
	// signal floor are left alone — a noise-free stall legitimately sits
	// at a constant level.
	if x == m.runVal {
		m.runLen++
	} else {
		m.runVal, m.runLen = x, 1
		m.clipActive = false
	}
	if m.refReady && m.distinct > 0.9 && m.runLen >= m.clipRun && x >= m.clipMinFrac*m.ref {
		fl |= qClip
		if !m.clipActive {
			retro = m.runLen - 1
			if retro > m.half-1 {
				retro = m.half - 1
			}
			m.q.ClippedSamples += int64(retro) + 1
			m.clipActive = true
		} else {
			m.q.ClippedSamples++
		}
	}

	// An excursion implausibly far above the busy level: an impulsive RF
	// burst, or the onset of an upward gain step. The sample is held so
	// neither the normalisation windows nor the sanitised stream are
	// poisoned, but the RAW value still drives the busy tracker: a
	// transient excursion can never confirm a step (track's raw-high
	// recency gate), while a sustained one re-references within a persist
	// window and then passes normally against the new reference.
	if m.refReady && x > m.burstK*m.ref && fl == 0 {
		m.q.BurstSamples++
		y = m.lastGood
		fl = qBurst
		if stepped, stepRetro := m.track(x); stepped {
			m.stepResyncPending = true
			fl |= qStep
			retro = stepRetro
		}
		return y, fl, retro, resync
	}

	y = x
	m.lastGood = y
	if stepped, stepRetro := m.track(y); stepped {
		// The resync itself is deferred to the next position (see
		// stepResyncPending); this position and the trailing half-window
		// carry the step flag now.
		m.stepResyncPending = true
		fl |= qStep
		retro = stepRetro
	}
	return y, fl, retro, resync
}

// track feeds the busy-level tracker with a sanitised sample and runs
// gain-step detection: a sustained departure of the short moving max from
// the busy reference in either direction is a receiver gain discontinuity
// (dips never move the max; the reference EMA absorbs slow drift).
func (m *monitor) track(y float64) (resync bool, retro int) {
	sm := m.smax.Process(y)
	if !m.refReady {
		m.warm++
		if m.warm >= m.persist {
			m.ref = sm
			m.refReady = true
		}
		return false, 0
	}
	if m.ref <= 0 {
		m.ref = sm
		return false, 0
	}
	if y > m.stepRatio*m.ref {
		m.sinceHigh = 0
	} else if m.sinceHigh < 1<<30 {
		m.sinceHigh++
	}
	ratio := sm / m.ref
	dir := 0
	if ratio > m.stepRatio {
		dir = 1
	} else if ratio < 1/m.stepRatio {
		dir = -1
	}
	sdir := 0
	if m.shiftRatio > 0 {
		if y > m.shiftRatio*m.ref {
			m.sinceShiftHigh = 0
		} else if m.sinceShiftHigh < 1<<30 {
			m.sinceShiftHigh++
		}
		if ratio > m.shiftRatio {
			sdir = 1
		} else if ratio < 1/m.shiftRatio {
			sdir = -1
		}
	}
	// An up-candidacy whose raw highs stopped more than half a persist
	// window ago is a dead excursion the moving max is still holding (a
	// burst tail), not a gain step: drop it and leave the reference
	// untouched. A genuine step re-asserts raw highs at least once per
	// stall, and stalls are bounded by 0.4 persist (RefreshMinS).
	if dir == 1 && m.sinceHigh > m.persist/2 {
		m.stepDir, m.stepLen = 0, 0
		if m.shiftRatio > 0 {
			return m.trackShift(sdir, sm)
		}
		return false, 0
	}
	switch {
	case dir == 0:
		m.stepDir, m.stepLen = 0, 0
		// A live shift candidacy freezes the reference: with refWin ≥
		// 2×persist the EMA would otherwise absorb a moderate shift
		// before it can persist long enough to confirm.
		if sdir == 0 {
			m.ref += m.refAlpha * (sm - m.ref)
		}
	case dir == m.stepDir:
		m.stepLen++
	default:
		m.stepDir, m.stepLen = dir, 1
	}
	if m.stepLen >= m.persist {
		m.q.Resyncs++
		// Flag the whole trailing half-window, not just the transition:
		// every position decided against stats that straddle the
		// discontinuity is unreliable. An up-step in particular inflates
		// the moving max seen by the preceding half-window, which would
		// otherwise read as a deep phantom dip ending at the resync.
		retro = m.half - 1
		if retro < 0 {
			retro = 0
		}
		m.q.StepSamples += int64(retro) + 1
		m.ref = sm
		m.stepDir, m.stepLen = 0, 0
		m.shiftDir, m.shiftLen = 0, 0
		m.pendingCause = trace.ResyncGainStep
		return true, retro
	}
	if m.shiftRatio > 0 {
		return m.trackShift(sdir, sm)
	}
	return false, 0
}

// trackShift advances the probe-shift candidacy (the shift-band twin of
// the step detector, active only when shiftRatio > 0). A shift departs
// the band less violently than a step, so the step detector keeps
// priority: track calls this only when no step confirmed this sample.
func (m *monitor) trackShift(sdir int, sm float64) (resync bool, retro int) {
	// Same dead-excursion gate as the step detector, at the shift band
	// edge: an up-shift whose raw highs stopped re-asserting is a held
	// burst tail, not the probe moving back toward the sweet spot.
	if sdir == 1 && m.sinceShiftHigh > m.persist/2 {
		m.shiftDir, m.shiftLen = 0, 0
		return false, 0
	}
	switch {
	case sdir == 0:
		m.shiftDir, m.shiftLen = 0, 0
	case sdir == m.shiftDir:
		m.shiftLen++
	default:
		m.shiftDir, m.shiftLen = sdir, 1
	}
	if m.shiftLen >= m.persist {
		m.q.Resyncs++
		// Same retroactive half-window discipline as a confirmed step:
		// every decision straddling the shift is unreliable, and the
		// flags bound the phantom stalls a bump can cause.
		retro = m.half - 1
		if retro < 0 {
			retro = 0
		}
		m.q.StepSamples += int64(retro) + 1
		m.ref = sm
		m.shiftDir, m.shiftLen = 0, 0
		m.stepDir, m.stepLen = 0, 0
		m.pendingCause = trace.ResyncProbeShift
		return true, retro
	}
	return false, 0
}

// scan runs the monitor over a whole capture (the batch path): it returns
// the sanitised copy of the samples, the per-sample impairment mask (nil
// when the capture is clean), and the positions at which the normalisation
// state must be re-seeded.
func (m *monitor) scan(samples []float64) (san []float64, mask []qflag, resyncs []int) {
	san = make([]float64, len(samples))
	for i, x := range samples {
		y, fl, retro, rs := m.process(x)
		san[i] = y
		if fl != 0 {
			if mask == nil {
				mask = make([]qflag, len(samples))
			}
			mask[i] |= fl
			for k := 1; k <= retro && i-k >= 0; k++ {
				mask[i-k] |= fl
			}
		}
		if rs {
			resyncs = append(resyncs, i)
		}
	}
	return san, mask, resyncs
}

// detector is the dip state machine shared by the batch and streaming
// analyzers. It consumes one normalised value per position together with
// that position's impairment flags and the normalisation stats in force,
// and emits Stalls with confidence annotations into the profile.
type detector struct {
	cfg        Config
	sampleRate float64
	clockHz    float64
	minSamples float64
	half       int

	inDip            bool
	start            int64
	depth            float64
	entryLo, entryHi float64
	lastImpaired     int64

	prof    *Profile
	q       *Quality
	onStall func(Stall)
	// obs, when non-nil, receives DipCandidate / StallAccepted /
	// StallRejected events at the corresponding decision points. All
	// emissions sit on branches the detector takes rarely, so the
	// per-sample fast path is untouched when tracing is off.
	obs trace.Observer
}

// newDetector builds the shared dip detector; half is the normalisation
// half-window in samples (used only for confidence distance scaling).
func newDetector(cfg Config, sampleRate, clockHz float64, half int, prof *Profile, q *Quality, onStall func(Stall)) *detector {
	return &detector{
		cfg:          cfg,
		sampleRate:   sampleRate,
		clockHz:      clockHz,
		minSamples:   cfg.MinStallS * sampleRate,
		half:         half,
		depth:        math.Inf(1),
		lastImpaired: math.MinInt64 / 2,
		prof:         prof,
		q:            q,
		onStall:      onStall,
	}
}

// decide processes the normalised value v of position i with impairment
// flags fl and the (lo, hi) normalisation stats used for it.
func (d *detector) decide(i int64, v float64, fl qflag, lo, hi float64) {
	if fl != 0 {
		d.lastImpaired = i
		if fl&qStructural != 0 {
			// The sample carries no dip evidence: suppress entry, and
			// abort rather than report a dip that spans the impairment.
			if d.inDip {
				if d.obs != nil {
					d.obs.StallRejected(trace.StallRejected{
						Start: d.start, End: i,
						DurationS: float64(i-d.start) / d.sampleRate,
						Depth:     d.depth,
						Reason:    trace.RejectImpaired,
					})
				}
				d.inDip = false
				d.depth = math.Inf(1)
				d.q.AbortedDips++
			}
			return
		}
	}
	if !d.inDip {
		if v < d.cfg.EnterThreshold {
			d.inDip = true
			d.start = i
			d.depth = v
			d.entryLo, d.entryHi = lo, hi
			if d.obs != nil {
				d.obs.DipCandidate(trace.DipCandidate{Pos: i, Value: v, Lo: lo, Hi: hi})
			}
		}
		return
	}
	if v < d.depth {
		d.depth = v
	}
	if v > d.cfg.ExitThreshold {
		d.flush(i)
		d.inDip = false
		d.depth = math.Inf(1)
	}
}

// finish closes any dip still open at end-of-signal position end.
func (d *detector) finish(end int64) {
	if d.inDip {
		d.flush(end)
		d.inDip = false
	}
}

// flush closes the current dip ending (exclusive) at position end and
// reports it if it passes the duration and depth criteria.
func (d *detector) flush(end int64) {
	durSamples := end - d.start
	durS := float64(durSamples) / d.sampleRate
	if float64(durSamples) < d.minSamples {
		if d.obs != nil {
			d.obs.StallRejected(trace.StallRejected{
				Start: d.start, End: end, DurationS: durS,
				Depth: d.depth, Reason: trace.RejectTooShort,
			})
		}
		return
	}
	maxDepth := d.cfg.MaxDipDepth
	if durS >= d.cfg.LongStallS {
		maxDepth = d.cfg.MaxDipDepthLong
	}
	if d.depth > maxDepth {
		if d.obs != nil {
			d.obs.StallRejected(trace.StallRejected{
				Start: d.start, End: end, DurationS: durS,
				Depth: d.depth, Reason: trace.RejectTooShallow,
			})
		}
		return
	}
	st := Stall{
		StartSample: int(d.start),
		EndSample:   int(end),
		StartS:      float64(d.start) / d.sampleRate,
		DurationS:   durS,
		Cycles:      durS * d.clockHz,
		Depth:       d.depth,
		Refresh:     durS >= d.cfg.RefreshMinS,
		Confidence:  d.confidence(maxDepth),
	}
	d.prof.Stalls = append(d.prof.Stalls, st)
	if st.Refresh {
		d.prof.RefreshStalls++
	} else {
		d.prof.Misses++
	}
	d.prof.StallCycles += st.Cycles
	if d.obs != nil {
		d.obs.StallAccepted(trace.StallAccepted{
			Start: d.start, End: end, StartS: st.StartS,
			DurationS: st.DurationS, Cycles: st.Cycles, Depth: st.Depth,
			Confidence: st.Confidence, Refresh: st.Refresh,
		})
	}
	if d.onStall != nil {
		d.onStall(st)
	}
}

// confidence scores the dip being flushed in [0, 1] from three margins:
// how far below the depth threshold its floor reached, how much
// normalisation contrast (a local-SNR proxy) the surrounding window had,
// and how far the dip sits from the nearest detected impairment.
func (d *detector) confidence(maxDepth float64) float64 {
	depthTerm := clamp01((maxDepth - d.depth) / maxDepth)
	contrast := 0.0
	if d.entryHi > 0 {
		rangeFrac := (d.entryHi - d.entryLo) / d.entryHi
		contrast = clamp01((rangeFrac - d.cfg.MinRangeFrac) / (1 - d.cfg.MinRangeFrac))
	}
	cleanTerm := 1.0
	if d.half > 0 {
		dist := d.start - d.lastImpaired
		if dist < 0 {
			dist = 0
		}
		cleanTerm = clamp01(float64(dist) / float64(d.half))
	}
	return 0.45*depthTerm + 0.30*contrast + 0.25*cleanTerm
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
