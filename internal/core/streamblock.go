package core

import "emprof/internal/dsp"

// pushBlockN bounds how many samples one staged pass processes; blocks
// larger than this are split. 4096 samples keeps the four scratch lanes
// (sanitised, smoothed, min, max) around 128 KiB — resident in L2 —
// while still amortising the per-stage state hoisting over thousands of
// samples.
const pushBlockN = 4096

// blockScratch backs PushBlock's staged processing. It belongs to one
// StreamAnalyzer and is reused across blocks, so the steady-state block
// path performs no allocations at all.
type blockScratch struct {
	san []float64 // monitor-sanitised samples
	sm  []float64 // smoother outputs
	lo  []float64 // per-position moving minimum
	hi  []float64 // per-position moving maximum
	fl  []qflag   // per-sample impairment flags
}

func newBlockScratch() *blockScratch {
	return &blockScratch{
		san: make([]float64, pushBlockN),
		sm:  make([]float64, pushBlockN),
		lo:  make([]float64, pushBlockN),
		hi:  make([]float64, pushBlockN),
		fl:  make([]qflag, pushBlockN),
	}
}

// PushBlock feeds a batch of magnitude samples. It is bit-identical to
// calling Push on each sample in order — the pipeline has no feedback
// between its stages, so each stage can run over the whole block before
// the next starts, hoisting per-stage state out of the per-sample loop.
// The block is processed in bounded chunks; xs is not retained.
func (s *StreamAnalyzer) PushBlock(xs []float64) {
	for len(xs) > 0 {
		n := len(xs)
		if n > pushBlockN {
			n = pushBlockN
		}
		s.pushChunk(xs[:n])
		xs = xs[n:]
	}
}

func (s *StreamAnalyzer) pushChunk(chunk []float64) {
	if s.scratch == nil {
		s.scratch = newBlockScratch()
	}
	sc := s.scratch
	san := sc.san[:len(chunk)]

	// Stage 1: quality monitor. Retroactive flag patches reach at most
	// half-1 positions back (the monitor clamps them so pending stream
	// positions can still absorb them), which is always shallower than
	// the oldest undecided position — so patching through the flag queue
	// applies exactly the per-sample ORs.
	// The block-hoisted monitor writes the sanitised values and flags
	// into the scratch lanes; the chunk's flags enter the queue in one
	// bulk move afterwards, so in-block retro patches land on the scratch
	// array and only patches reaching before the chunk touch the queue.
	// qLen is the queue length at chunk start, i.e. the index one past
	// the newest pre-chunk position.
	n0 := s.n
	flags := sc.fl[:len(chunk)]
	qLen := s.flagBuf.len()
	s.mon.processBlock(chunk, san, flags,
		func(back int, f qflag) bool {
			idx := qLen - back
			if idx < 0 {
				return false
			}
			*s.flagBuf.ptr(idx) |= f
			return true
		},
		func(i int) {
			s.resyncAt = append(s.resyncAt, n0+int64(i))
		})
	s.flagBuf.pushSlice(flags)
	s.n = n0 + int64(len(chunk))

	// Stage 2: smoothing with centre compensation. Without a smoother
	// every sanitised sample is a position; with one, the smoother output
	// for input j describes position j-lead, so the first lead outputs of
	// the stream are discarded and the last lead+1 outputs are kept as
	// the uncompensated tail Finalize replays.
	vals := san
	if s.smoother != nil {
		sm := s.smoother.ProcessBlock(san, sc.sm[:len(chunk)])
		k := s.lead + 1
		if len(sm) >= k {
			s.smTail = append(s.smTail[:0], sm[len(sm)-k:]...)
		} else {
			if drop := len(s.smTail) + len(sm) - k; drop > 0 {
				copy(s.smTail, s.smTail[drop:])
				s.smTail = s.smTail[:len(s.smTail)-drop]
			}
			s.smTail = append(s.smTail, sm...)
		}
		skip := s.lead - int(n0)
		if skip < 0 {
			skip = 0
		}
		if skip > len(sm) {
			skip = len(sm)
		}
		vals = sm[skip:]
	}
	s.feedBlock(vals)
}

// feedBlock advances the normalisation stage over a run of positions,
// splitting at monitor-requested resync positions, then drains the
// decisions that became final. It is the block form of feedPosition and
// produces identical state and detector calls.
func (s *StreamAnalyzer) feedBlock(vals []float64) {
	if len(vals) == 0 {
		return
	}
	sc := s.scratch
	los := sc.lo[:len(vals)]
	his := sc.hi[:len(vals)]
	fed0 := s.fed
	for i := 0; i < len(vals); {
		if len(s.resyncAt) > 0 && s.resyncAt[0] == fed0+int64(i) {
			s.mmin.Reset()
			s.mmax.Reset()
			s.resyncAt = s.resyncAt[1:]
		}
		end := len(vals)
		if len(s.resyncAt) > 0 {
			if e := int(s.resyncAt[0] - fed0); e < end {
				end = e
			}
		}
		if end <= i {
			// Defensive: resync entries are strictly ascending and >= fed,
			// so this cannot fire; keep the loop finite regardless.
			end = i + 1
		}
		dsp.ProcessBlockMinMax(s.mmin, s.mmax, vals[i:end], los[i:end], his[i:end])
		i = end
	}
	s.fed = fed0 + int64(len(vals))
	s.lastMin = los[len(vals)-1]
	s.lastMax = his[len(vals)-1]
	s.haveStats = true
	// Decide every position whose half-window delay has elapsed, using
	// the stats that were current when that position's delay ran out —
	// los/his[k] are exactly lastMin/lastMax after feeding position
	// fed0+k, which is the state the per-sample path decides under.
	// The body mirrors decideAt with the counter and config hoisted out
	// of the loop; decideAt remains the per-sample reference, and the
	// Push≡PushBlock property tests pin the two paths together.
	det := s.det
	emitted := s.emitted
	mrf := s.cfg.MinRangeFrac
	for k, x := range vals {
		s.pending.push(x)
		if s.pending.len() > s.half {
			xd := s.pending.pop()
			fl := s.flagBuf.popOrZero()
			lo, hi := los[k], his[k]
			r := hi - lo
			var v float64
			if hi <= 0 || r < mrf*hi {
				v = 1
			} else {
				v = (xd - lo) / r
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
			}
			det.decide(emitted, v, fl, lo, hi)
			emitted++
		}
	}
	s.emitted = emitted
}
