package core

import (
	"math"
	"testing"

	"emprof/internal/em"
	"emprof/internal/sim"
	"emprof/internal/trace"
)

// TestObserverAccountingBatch checks that the event stream reconciles
// exactly with the profile: every dip candidate is resolved by exactly one
// accept or reject, and the event counters match the profile's own.
func TestObserverAccountingBatch(t *testing.T) {
	c := syntheticCapture(1<<18, 7, true)
	a := MustNewAnalyzer(DefaultConfig())
	m := trace.NewMetrics()
	a.Observer = m
	p := a.Profile(c)
	s := m.Snapshot()

	if int(s.StallsAccepted) != len(p.Stalls) {
		t.Errorf("StallsAccepted events = %d, profile has %d stalls", s.StallsAccepted, len(p.Stalls))
	}
	if int(s.RefreshStalls) != p.RefreshStalls {
		t.Errorf("refresh events = %d, profile says %d", s.RefreshStalls, p.RefreshStalls)
	}
	if int(s.Rejected[trace.RejectImpaired]) != p.Quality.AbortedDips {
		t.Errorf("impaired rejects = %d, AbortedDips = %d", s.Rejected[trace.RejectImpaired], p.Quality.AbortedDips)
	}
	var rejected uint64
	for _, n := range s.Rejected {
		rejected += n
	}
	if s.DipCandidates != s.StallsAccepted+rejected {
		t.Errorf("candidates = %d, accepted+rejected = %d", s.DipCandidates, s.StallsAccepted+rejected)
	}
	if s.DipCandidates == 0 || s.StallsAccepted == 0 {
		t.Fatalf("degenerate trace: candidates=%d accepted=%d", s.DipCandidates, s.StallsAccepted)
	}
	for _, st := range []trace.Stage{trace.StageScan, trace.StageNormalize, trace.StageDetect} {
		if _, ok := s.StageNs[st]; !ok {
			t.Errorf("missing stage timing %q: %v", st, s.StageNs)
		}
	}
	// The nasty capture carries NaN and burst corruption; flag events must
	// reconcile with the quality counters (retro-inclusive).
	if int64(s.FlaggedSamples["nan"]) != p.Quality.NaNSamples {
		t.Errorf("nan flag events cover %d samples, quality says %d", s.FlaggedSamples["nan"], p.Quality.NaNSamples)
	}
	if int64(s.FlaggedSamples["burst"]) != p.Quality.BurstSamples {
		t.Errorf("burst flag events cover %d samples, quality says %d", s.FlaggedSamples["burst"], p.Quality.BurstSamples)
	}
}

// gapStepCapture builds a busy trace with one dip, one resync-length
// dropout and one sustained gain step, to exercise both resync causes.
func gapStepCapture(n int) *em.Capture {
	rng := sim.NewRNG(11)
	s := make([]float64, n)
	for i := range s {
		v := 1.0 + 0.05*rng.NormFloat64()
		if i >= n/2 {
			v *= 3.5 // sustained receiver gain step
		}
		switch {
		case i%9973 < 12:
			v = 0.04 + 0.005*rng.NormFloat64() // stall dip
		case i >= n/4 && i < n/4+800:
			v = 0 // long digitizer gap
		}
		s[i] = math.Abs(v)
	}
	return &em.Capture{Samples: s, SampleRate: 50e6, ClockHz: 1e9}
}

func TestObserverResyncCauses(t *testing.T) {
	c := gapStepCapture(1 << 17)
	a := MustNewAnalyzer(DefaultConfig())
	m := trace.NewMetrics()
	ring := trace.NewRing(1 << 16)
	a.Observer = trace.Multi(m, ring)
	p := a.Profile(c)
	s := m.Snapshot()

	if s.Resyncs[trace.ResyncGap] == 0 {
		t.Errorf("no gap resync event (quality: %+v)", p.Quality)
	}
	if s.Resyncs[trace.ResyncGainStep] == 0 {
		t.Errorf("no gain-step resync event (quality: %+v)", p.Quality)
	}
	var total int
	for _, n := range s.Resyncs {
		total += int(n)
	}
	if total != p.Quality.Resyncs {
		t.Errorf("resync events = %d, Quality.Resyncs = %d", total, p.Quality.Resyncs)
	}
	// The ring retained the same stream in record form.
	var rs int
	for _, r := range ring.Records() {
		if r.Type == trace.TypeResync {
			rs++
		}
	}
	if rs != total {
		t.Errorf("ring holds %d resync records, metrics counted %d", rs, total)
	}
}

// TestObserverEquivalenceAllPaths is the core half of the golden test:
// attaching observers leaves all three analyze paths bit-identical to the
// nil-observer run.
func TestObserverEquivalenceAllPaths(t *testing.T) {
	for _, nasty := range []bool{false, true} {
		c := syntheticCapture(1<<17, 3, nasty)
		plain := MustNewAnalyzer(DefaultConfig())
		want := plain.Profile(c)

		traced := MustNewAnalyzer(DefaultConfig())
		traced.Observer = trace.Multi(trace.NewMetrics(), trace.NewRing(4096))
		assertProfilesIdentical(t, want, traced.Profile(c), "batch+observer")
		assertProfilesIdentical(t, want,
			traced.ProfileParallel(c, ParallelOptions{Workers: 4, ChunkSamples: 20011}),
			"parallel+observer")

		s, err := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
		if err != nil {
			t.Fatal(err)
		}
		s.SetObserver(trace.NewMetrics())
		for _, x := range c.Samples {
			s.Push(x)
		}
		assertProfilesIdentical(t, want, s.Finalize(), "stream+observer")
	}
}

// TestObserverParallelChunks checks the parallel-only events: one
// ChunkMerged per chunk, chunk stall counts summing to the profile, and
// the scan/normalize/merge stage timings.
func TestObserverParallelChunks(t *testing.T) {
	c := syntheticCapture(1<<18, 5, true)
	a := MustNewAnalyzer(DefaultConfig())
	ring := trace.NewRing(1 << 17)
	m := trace.NewMetrics()
	a.Observer = trace.Multi(ring, m)
	chunk := 30011
	p := a.ProfileParallel(c, ParallelOptions{Workers: 4, ChunkSamples: chunk})

	wantChunks := (len(c.Samples) + chunk - 1) / chunk
	var got, stalls int
	for _, r := range ring.Records() {
		if r.Type == trace.TypeChunkMerged {
			got++
			stalls += r.Stalls
		}
	}
	if got != wantChunks {
		t.Errorf("ChunkMerged events = %d, want %d", got, wantChunks)
	}
	if stalls != len(p.Stalls) {
		t.Errorf("chunk stall counts sum to %d, profile has %d", stalls, len(p.Stalls))
	}
	s := m.Snapshot()
	for _, st := range []trace.Stage{trace.StageScan, trace.StageNormalize, trace.StageMerge} {
		if _, ok := s.StageNs[st]; !ok {
			t.Errorf("missing stage timing %q: %v", st, s.StageNs)
		}
	}
}

func TestObserverStreamDrainTiming(t *testing.T) {
	c := syntheticCapture(1<<15, 9, false)
	s, err := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	m := trace.NewMetrics()
	s.SetObserver(m)
	for _, x := range c.Samples {
		s.Push(x)
	}
	p := s.Finalize()
	snap := m.Snapshot()
	if _, ok := snap.StageNs[trace.StageDrain]; !ok {
		t.Fatalf("no drain timing: %v", snap.StageNs)
	}
	if int(snap.StallsAccepted) != len(p.Stalls) {
		t.Errorf("accepted events = %d, profile has %d stalls", snap.StallsAccepted, len(p.Stalls))
	}
}

// TestNilObserverSteadyStateAllocs proves the zero-overhead-when-off
// claim at the allocation level: the per-sample monitor + detector path
// with a nil observer performs no allocations. (The CI benchmark guard
// additionally bounds the time overhead; see internal/experiments.)
func TestNilObserverSteadyStateAllocs(t *testing.T) {
	// A dip-free busy trace: noise never reaches the entry threshold, so
	// the detector stays out of dips and Profile.Stalls never grows —
	// every allocation counted below would be hot-path overhead.
	rng := sim.NewRNG(13)
	samples := make([]float64, 1<<15)
	for i := range samples {
		samples[i] = math.Abs(1.0 + 0.05*rng.NormFloat64())
	}
	cfg := DefaultConfig()
	mon := newMonitor(cfg, 50e6)
	prof := &Profile{}
	det := newDetector(cfg, 50e6, 1e9, 5000, prof, &mon.q, nil)
	// Warm the monitor's moving-extremum ring and EMAs first so one-time
	// buffer growth is not attributed to the steady state.
	i := 0
	pos := int64(0)
	step := func() {
		x := samples[i]
		i = (i + 1) % len(samples)
		y, fl, _, _ := mon.process(x)
		det.decide(pos, y, fl, 0.02, 1.1)
		pos++
	}
	for k := 0; k < 1<<14; k++ {
		step()
	}
	allocs := testing.AllocsPerRun(2000, step)
	if allocs != 0 {
		t.Fatalf("nil-observer steady state allocates %.2f allocs/op, want 0", allocs)
	}
	if len(prof.Stalls) != 0 {
		t.Fatalf("busy-only trace produced %d stalls; alloc accounting invalid", len(prof.Stalls))
	}
}
