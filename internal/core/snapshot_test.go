package core

import (
	"reflect"
	"testing"
)

// TestSnapshotCausalAndNonPerturbing takes snapshots throughout a stream
// and checks the contract the profiling service depends on: every
// snapshot is strictly causal (only stalls already decided, each list a
// prefix of the next and of the final profile), snapshots never perturb
// the stream (the finalized profile is bit-identical to an undisturbed
// run), and bookkeeping (ExecCycles, Quality.Samples) tracks exactly the
// samples pushed.
func TestSnapshotCausalAndNonPerturbing(t *testing.T) {
	dips := map[int]int{}
	for i := 0; i < 25; i++ {
		dips[2500+i*1400] = 10 + i%7
	}
	c := synthCapture(40000, dips, 0.1, 1.1, 0.04, 9)

	ref, err := ProfileStream(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	var prev *Profile
	for i, x := range c.Samples {
		s.Push(x)
		if (i+1)%3000 != 0 {
			continue
		}
		snap := s.Snapshot()
		if s.Decided() > s.Pushed() {
			t.Fatalf("decided %d ahead of pushed %d", s.Decided(), s.Pushed())
		}
		if snap.Quality.Samples != s.Pushed() {
			t.Fatalf("quality saw %d samples, pushed %d", snap.Quality.Samples, s.Pushed())
		}
		wantCycles := float64(s.Pushed()) * (c.ClockHz / c.SampleRate)
		if snap.ExecCycles != wantCycles {
			t.Fatalf("snapshot ExecCycles %v, want %v", snap.ExecCycles, wantCycles)
		}
		for _, st := range snap.Stalls {
			if int64(st.EndSample) > s.Decided() {
				t.Fatalf("stall ending at %d reported with only %d positions decided",
					st.EndSample, s.Decided())
			}
		}
		if prev != nil {
			if len(snap.Stalls) < len(prev.Stalls) {
				t.Fatalf("stall list shrank: %d -> %d", len(prev.Stalls), len(snap.Stalls))
			}
			if len(prev.Stalls) > 0 && !reflect.DeepEqual(prev.Stalls, snap.Stalls[:len(prev.Stalls)]) {
				t.Fatal("earlier snapshot is not a prefix of the later one")
			}
		}
		prev = snap
	}
	if prev == nil || len(prev.Stalls) == 0 {
		t.Fatal("test signal produced no mid-stream stalls; snapshots unexercised")
	}

	final := s.Finalize()
	if !reflect.DeepEqual(final, ref) {
		t.Fatal("snapshotting perturbed the stream: finalized profile differs from undisturbed run")
	}
	if !reflect.DeepEqual(prev.Stalls, final.Stalls[:len(prev.Stalls)]) {
		t.Fatal("last snapshot is not a prefix of the final profile")
	}
	// The snapshot must not alias analyzer state: mutating it leaves the
	// final profile untouched.
	prev.Stalls[0].Cycles = -1
	if final.Stalls[0].Cycles == -1 {
		t.Fatal("snapshot aliases the live profile")
	}
}

// TestSnapshotEmptyStream checks snapshots before any data arrive.
func TestSnapshotEmptyStream(t *testing.T) {
	s, err := NewStreamAnalyzer(DefaultConfig(), 40e6, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap.Stalls) != 0 || snap.ExecCycles != 0 || snap.Misses != 0 {
		t.Fatalf("non-empty snapshot of empty stream: %+v", snap)
	}
	if snap.SampleRate != 40e6 || snap.ClockHz != 1e9 {
		t.Fatalf("snapshot metadata %v/%v", snap.SampleRate, snap.ClockHz)
	}
}
