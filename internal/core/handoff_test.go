package core

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"emprof/internal/em"
)

// handoffCapture builds a capture with genuine stalls plus (optionally)
// every impairment class the monitor knows, so a hand-off mid-fault
// exercises the full state machine.
func handoffCapture(faults bool) *em.Capture {
	c := synthCapture(40000, map[int]int{4000: 12, 12000: 12, 24500: 12, 32000: 100}, 0.1, 1, 0.02, 17)
	if faults {
		for i := 8000; i < 8600; i++ {
			c.Samples[i] = 0
		}
		for i := 14000; i < 14003; i++ {
			c.Samples[i] = 6.0
		}
		for i := 20000; i < len(c.Samples); i++ {
			c.Samples[i] *= 3.0
		}
		c.Samples[26000] = math.NaN()
	}
	return c
}

// splitProfile pushes the first k samples into one analyzer, exports its
// state through a JSON round trip (the hand-off wire encoding), resumes
// a second analyzer from it, pushes the rest, and finalizes.
func splitProfile(t *testing.T, c *em.Capture, cfg Config, k int) *Profile {
	t.Helper()
	a, err := NewStreamAnalyzer(cfg, c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range c.Samples[:k] {
		a.Push(x)
	}
	st := a.ExportState()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var wire StreamState
	if err := json.Unmarshal(blob, &wire); err != nil {
		t.Fatal(err)
	}
	b, err := ResumeStreamAnalyzer(&wire)
	if err != nil {
		t.Fatalf("resume at k=%d: %v", k, err)
	}
	for _, x := range c.Samples[k:] {
		b.Push(x)
	}
	return b.Finalize()
}

// TestHandoffBitIdentical is the property behind fleet rebalance: export
// + resume at ANY split point yields a profile bit-identical to one
// analyzer seeing the whole stream — across configurations (smoothing
// on/off, probe-shift armed) and clean/faulted captures alike.
func TestHandoffBitIdentical(t *testing.T) {
	configs := map[string]Config{}
	configs["default"] = DefaultConfig()
	raw := DefaultConfig()
	raw.SmoothSamples = 1
	configs["raw"] = raw
	shift := DefaultConfig()
	shift.ProbeShiftRatio = 1.4
	configs["shift"] = shift

	for name, cfg := range configs {
		for _, faults := range []bool{false, true} {
			c := handoffCapture(faults)
			want, err := ProfileStream(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := len(c.Samples)
			// Split points cover: virgin analyzer, warm-up, mid-gap,
			// mid-burst, post-step, and the degenerate full-stream export.
			for _, k := range []int{0, 1, 7, 4005, 8300, 14001, 20500, n / 2, 26000, n - 1, n} {
				got := splitProfile(t, c, cfg, k)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s faults=%v: profile diverged after hand-off at %d/%d:\nwant %+v\ngot  %+v",
						name, faults, k, n, want, got)
				}
			}
		}
	}
}

// TestHandoffExportDoesNotDisturb proves ExportState is a pure snapshot:
// the exporting analyzer keeps producing its normal output afterwards
// (the fleet keeps a session live until the import is acknowledged).
func TestHandoffExportDoesNotDisturb(t *testing.T) {
	c := handoffCapture(true)
	cfg := DefaultConfig()
	want, err := ProfileStream(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewStreamAnalyzer(cfg, c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range c.Samples {
		if i%5000 == 0 {
			_ = a.ExportState()
		}
		a.Push(x)
	}
	if got := a.Finalize(); !reflect.DeepEqual(want, got) {
		t.Fatalf("exports disturbed the exporting analyzer:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestHandoffRejectsMismatchedState: a state exported under one
// configuration must not resume into an analyzer built for another.
func TestHandoffRejectsMismatchedState(t *testing.T) {
	c := handoffCapture(false)
	a, err := NewStreamAnalyzer(DefaultConfig(), c.SampleRate, c.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range c.Samples[:1000] {
		a.Push(x)
	}

	if _, err := ResumeStreamAnalyzer(nil); err == nil {
		t.Fatal("nil state accepted")
	}

	// Different normalisation window ⇒ different extremum ring size.
	st := a.ExportState()
	st.Config.NormWindowS *= 2
	if _, err := ResumeStreamAnalyzer(st); err == nil {
		t.Fatal("state with mismatched window accepted")
	}

	// Smoothing disabled but smoother state present.
	st = a.ExportState()
	st.Config.SmoothSamples = 1
	if _, err := ResumeStreamAnalyzer(st); err == nil {
		t.Fatal("state with orphaned smoother accepted")
	}

	// Inconsistent counters.
	st = a.ExportState()
	st.Decided = st.Pushed + 1
	if _, err := ResumeStreamAnalyzer(st); err == nil {
		t.Fatal("state with decided > pushed accepted")
	}

	// Missing profile.
	st = a.ExportState()
	st.Profile = nil
	if _, err := ResumeStreamAnalyzer(st); err == nil {
		t.Fatal("state without profile accepted")
	}

	// Invalid config must be rejected by NewStreamAnalyzer's validation.
	st = a.ExportState()
	st.Config.EnterThreshold = 0
	if _, err := ResumeStreamAnalyzer(st); err == nil {
		t.Fatal("state with invalid config accepted")
	}
}

// TestDecoderHandoff: the wire decoder resumes mid-word and mid-header.
func TestDecoderHandoff(t *testing.T) {
	c := &em.Capture{Samples: make([]float64, 257), SampleRate: 40e6, ClockHz: 1e9}
	for i := range c.Samples {
		c.Samples[i] = 1 + float64(i)/100
	}

	// Raw decoder split at awkward byte offsets (including mid-float64).
	raw := make([]byte, 0, len(c.Samples)*8)
	for _, v := range c.Samples {
		var w [8]byte
		for b, u := 0, math.Float64bits(v); b < 8; b++ {
			w[b] = byte(u >> (8 * b))
		}
		raw = append(raw, w[:]...)
	}
	for _, cut := range []int{0, 1, 3, 8, 13, 800, len(raw) - 5, len(raw)} {
		d := em.NewRawDecoder()
		var got []float64
		emit := func(v float64) { got = append(got, v) }
		if err := d.Feed(raw[:cut], emit); err != nil {
			t.Fatal(err)
		}
		st, err := d.State()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var wire em.DecoderState
		if err := json.Unmarshal(blob, &wire); err != nil {
			t.Fatal(err)
		}
		d2, err := em.RestoreDecoder(wire)
		if err != nil {
			t.Fatal(err)
		}
		if err := d2.Feed(raw[cut:], emit); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, c.Samples) {
			t.Fatalf("raw decoder hand-off at byte %d corrupted the stream", cut)
		}
		if !d2.Complete() {
			t.Fatalf("raw decoder incomplete after hand-off at byte %d", cut)
		}
	}

	if _, err := em.RestoreDecoder(em.DecoderState{Partial: make([]byte, 8)}); err == nil {
		t.Fatal("decoder state with full-word fragment accepted")
	}
	if _, err := em.RestoreDecoder(em.DecoderState{Emitted: -1}); err == nil {
		t.Fatal("decoder state with negative counter accepted")
	}
}
