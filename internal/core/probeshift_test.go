package core

import (
	"testing"

	"emprof/internal/em"
	"emprof/internal/trace"
)

// Probe-shift detector tests. A mid-capture probe bump whose gain change
// sits below the step band (ratio < 2.5) is invisible to the gain-step
// detector, yet a down-shift past ~2.2× pins the post-bump busy level
// under the dip-exit threshold for the whole straddling half-window: any
// real dip there fails to exit and smears into one giant phantom refresh
// stall. ProbeShiftRatio arms a second detector in that band which trades
// the phantom for one bounded resync.

// shiftCapture builds a capture with five dips and a 2.35× downward gain
// bump at sample 20000 (inside the step detector's blind band). The dip
// at 20300 sits in the bump's transition region.
func shiftCapture(seed uint64) *em.Capture {
	c := synthCapture(40000, map[int]int{5000: 12, 10000: 12, 20300: 12, 28000: 12, 34000: 12}, 0.1, 1, 0.02, seed)
	for i := 20000; i < len(c.Samples); i++ {
		c.Samples[i] /= 2.35
	}
	return c
}

func shiftConfig() Config {
	cfg := DefaultConfig()
	cfg.ProbeShiftRatio = 1.4
	return cfg
}

// TestProbeShiftDefaultOffBitIdentical pins that the detector's plumbing
// changes nothing while disabled: with ProbeShiftRatio zero the profile of
// the bumped capture — stalls, confidences, quality — must match what the
// pre-shift-detector pipeline produced, which the snapshot and equivalence
// suites elsewhere already pin. Here we assert the sharper property that
// an armed detector on a *clean* capture is also a no-op: no shift ever
// persists, so output is bit-identical to the default configuration.
func TestProbeShiftDefaultOffBitIdentical(t *testing.T) {
	c := synthCapture(40000, map[int]int{10000: 12, 25000: 12}, 0.1, 1, 0.02, 7)
	pa := MustNewAnalyzer(DefaultConfig()).Profile(c)
	pb := MustNewAnalyzer(shiftConfig()).Profile(c)
	if pa.Quality != pb.Quality {
		t.Fatalf("quality diverged on clean capture:\noff: %v\non:  %v", pa.Quality, pb.Quality)
	}
	if len(pa.Stalls) != len(pb.Stalls) {
		t.Fatalf("stall counts diverged: %d vs %d", len(pa.Stalls), len(pb.Stalls))
	}
	for i := range pa.Stalls {
		if pa.Stalls[i] != pb.Stalls[i] {
			t.Fatalf("stall %d diverged:\noff: %+v\non:  %+v", i, pa.Stalls[i], pb.Stalls[i])
		}
	}
}

// TestProbeShiftBoundsPhantomStalls demonstrates the failure mode and the
// fix on the same capture: unarmed, the transition-region dip fails to
// exit and reads as a phantom refresh stall; armed, the shift confirms
// within one persist window, the straddling half-window is retro-flagged
// (aborting the unreliable dip), and profiling resumes cleanly after one
// resync.
func TestProbeShiftBoundsPhantomStalls(t *testing.T) {
	// Unarmed: the post-bump busy level normalises to ~0.40, below the
	// 0.42 exit threshold, so the 20300 dip smears until the pre-bump max
	// drains from the window — a phantom refresh stall.
	pd := MustNewAnalyzer(DefaultConfig()).Profile(shiftCapture(19))
	if pd.RefreshStalls == 0 {
		t.Fatalf("expected the unarmed pipeline to smear the transition dip into a refresh stall; got %d misses / %d refresh",
			pd.Misses, pd.RefreshStalls)
	}

	ring := trace.NewRing(256)
	a := MustNewAnalyzer(shiftConfig())
	a.Observer = ring
	p := a.Profile(shiftCapture(19))

	if p.RefreshStalls != 0 {
		t.Fatalf("refresh stalls = %d, want 0 with the shift detector armed", p.RefreshStalls)
	}
	// The four dips clear of the bump must all profile; the transition
	// dip may be either sacrificed to the retro flags (4) or recovered
	// after the resync (5) depending on where the confirmation lands.
	if p.Misses < 4 || p.Misses > 5 {
		t.Fatalf("misses = %d, want 4 or 5 (regions clear of the bump must profile)", p.Misses)
	}
	if p.Quality.Resyncs < 1 {
		t.Fatalf("Resyncs = %d, want >= 1", p.Quality.Resyncs)
	}
	// The phantom is bounded by the resync window: nothing may straddle
	// the bump itself, and any stall in the transition region must be a
	// true-to-duration detection (the real 12-sample dip at 20300), not a
	// smear that failed to exit.
	if s := overlaps(p, 19850, 20300); s != nil {
		t.Fatalf("stall %+v straddles the probe bump", *s)
	}
	if s := overlaps(p, 20300, 20600); s != nil && s.EndSample-s.StartSample > 50 {
		t.Fatalf("stall %+v in the transition region smeared past the resync bound", *s)
	}
	// The resync must be attributed to the probe shift in the trace.
	sawShift := false
	for _, r := range ring.Records() {
		if r.Type == trace.TypeResync && r.Cause == string(trace.ResyncProbeShift) {
			sawShift = true
		}
	}
	if !sawShift {
		t.Fatal("no resync with cause probe_shift in the trace")
	}
}

// TestProbeShiftBatchStreamParallelEquivalent extends the three-way
// equivalence discipline to the armed detector on a bumped capture.
func TestProbeShiftBatchStreamParallelEquivalent(t *testing.T) {
	cfg := shiftConfig()
	c := shiftCapture(23)
	pb := MustNewAnalyzer(cfg).Profile(c)
	ps, err := ProfileStream(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pp := MustNewAnalyzer(cfg).ProfileParallel(c, ParallelOptions{Workers: 4})
	for _, tc := range []struct {
		name string
		p    *Profile
	}{{"stream", ps}, {"parallel", pp}} {
		if pb.Quality != tc.p.Quality {
			t.Fatalf("%s quality diverged:\nbatch: %v\nother: %v", tc.name, pb.Quality, tc.p.Quality)
		}
		if len(pb.Stalls) != len(tc.p.Stalls) {
			t.Fatalf("%s stall count diverged: %d vs %d", tc.name, len(pb.Stalls), len(tc.p.Stalls))
		}
		for i := range pb.Stalls {
			if pb.Stalls[i] != tc.p.Stalls[i] {
				t.Fatalf("%s stall %d diverged:\nbatch: %+v\nother: %+v", tc.name, i, pb.Stalls[i], tc.p.Stalls[i])
			}
		}
	}
}

// TestProbeShiftConfigValidation pins the knob's contract.
func TestProbeShiftConfigValidation(t *testing.T) {
	for _, v := range []float64{-0.5, 0.5, 1} {
		cfg := DefaultConfig()
		cfg.ProbeShiftRatio = v
		if err := cfg.Validate(); err == nil {
			t.Errorf("ProbeShiftRatio %v accepted", v)
		}
	}
	cfg := DefaultConfig()
	cfg.ProbeShiftRatio = 1.4
	if err := cfg.Validate(); err != nil {
		t.Errorf("ProbeShiftRatio 1.4 rejected: %v", err)
	}
}
