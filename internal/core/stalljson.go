package core

import (
	"encoding/json"
	"strconv"

	"emprof/internal/jsonfast"
)

// StallList is the stall array of a Profile with hand-rolled JSON
// codecs. Profile responses — live snapshots every few pushes, finalize,
// hand-off state — are dominated by this array, and reflection-driven
// encoding/json spends most of its time walking it; the custom codecs
// keep the daemon's profile endpoints off the ingest path's critical
// core budget. The wire bytes are bit-identical to what encoding/json
// produces for a plain []Stall (property-tested in stalljson_test.go),
// so old and new clients and daemons interoperate freely.
type StallList []Stall

// MarshalJSON encodes the list exactly as encoding/json would: same
// field order, same float formatting (shortest round-trip, scientific
// notation outside [1e-6, 1e21)), no whitespace, "null" for nil.
func (sl StallList) MarshalJSON() ([]byte, error) {
	return sl.appendJSON(make([]byte, 0, 2+len(sl)*176))
}

func (sl StallList) appendJSON(b []byte) ([]byte, error) {
	if sl == nil {
		return append(b, "null"...), nil
	}
	b = append(b, '[')
	for i := range sl {
		if i > 0 {
			b = append(b, ',')
		}
		s := &sl[i]
		var err error
		b = append(b, `{"StartSample":`...)
		b = strconv.AppendInt(b, int64(s.StartSample), 10)
		b = append(b, `,"EndSample":`...)
		b = strconv.AppendInt(b, int64(s.EndSample), 10)
		b = append(b, `,"StartS":`...)
		if b, err = jsonfast.AppendFloat(b, s.StartS); err != nil {
			return nil, err
		}
		b = append(b, `,"DurationS":`...)
		if b, err = jsonfast.AppendFloat(b, s.DurationS); err != nil {
			return nil, err
		}
		b = append(b, `,"Cycles":`...)
		if b, err = jsonfast.AppendFloat(b, s.Cycles); err != nil {
			return nil, err
		}
		b = append(b, `,"Depth":`...)
		if b, err = jsonfast.AppendFloat(b, s.Depth); err != nil {
			return nil, err
		}
		b = append(b, `,"Refresh":`...)
		if s.Refresh {
			b = append(b, "true"...)
		} else {
			b = append(b, "false"...)
		}
		b = append(b, `,"Confidence":`...)
		if b, err = jsonfast.AppendFloat(b, s.Confidence); err != nil {
			return nil, err
		}
		b = append(b, '}')
	}
	return append(b, ']'), nil
}

// UnmarshalJSON decodes a stall array. The fast path parses exactly the
// compact shape both this codec and encoding/json emit (fields in
// declaration order, no whitespace); any other input — reordered or
// unknown fields, whitespace, hand-written JSON — falls back to the
// stdlib decoder, so everything encoding/json accepted before is still
// accepted.
func (sl *StallList) UnmarshalJSON(data []byte) error {
	data = jsonfast.TrimSpace(data)
	if out, i, ok := parseStallsSpan(data, 0); ok && i == len(data) {
		*sl = out
		return nil
	}
	var xs []Stall
	if err := json.Unmarshal(data, &xs); err != nil {
		return err
	}
	*sl = xs
	return nil
}

// parseStallsSpan parses a compact stall array (or null) starting at
// data[i], returning the index just past it.
func parseStallsSpan(data []byte, i int) (StallList, int, bool) {
	if j, ok := jsonfast.Eat(data, i, "null"); ok {
		return nil, j, true
	}
	if i >= len(data) || data[i] != '[' {
		return nil, i, false
	}
	i++
	if i < len(data) && data[i] == ']' {
		return StallList{}, i + 1, true
	}
	// Size the output from the remaining span: compact stalls run ~170
	// bytes each, and a snapshot's blob is dominated by this array, so
	// the estimate spares the doubling-growth garbage of large decodes.
	out := make(StallList, 0, (len(data)-i)/170+4)
	for {
		var s Stall
		var ok bool
		if i, ok = parseStallFast(data, i, &s); !ok {
			return nil, i, false
		}
		out = append(out, s)
		if i < len(data) && data[i] == ']' {
			return out, i + 1, true
		}
		if i >= len(data) || data[i] != ',' {
			return nil, i, false
		}
		i++
	}
}

// parseStallFast parses one compact stall object starting at data[i],
// returning the index just past its closing brace.
func parseStallFast(data []byte, i int, s *Stall) (int, bool) {
	var ok bool
	var n int64
	if i, ok = jsonfast.Eat(data, i, `{"StartSample":`); !ok {
		return i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return i, false
	}
	s.StartSample = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"EndSample":`); !ok {
		return i, false
	}
	if n, i, ok = jsonfast.Int(data, i); !ok {
		return i, false
	}
	s.EndSample = int(n)
	if i, ok = jsonfast.Eat(data, i, `,"StartS":`); !ok {
		return i, false
	}
	if s.StartS, i, ok = jsonfast.Float(data, i); !ok {
		return i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"DurationS":`); !ok {
		return i, false
	}
	if s.DurationS, i, ok = jsonfast.Float(data, i); !ok {
		return i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Cycles":`); !ok {
		return i, false
	}
	if s.Cycles, i, ok = jsonfast.Float(data, i); !ok {
		return i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Depth":`); !ok {
		return i, false
	}
	if s.Depth, i, ok = jsonfast.Float(data, i); !ok {
		return i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Refresh":`); !ok {
		return i, false
	}
	if s.Refresh, i, ok = jsonfast.Bool(data, i); !ok {
		return i, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"Confidence":`); !ok {
		return i, false
	}
	if s.Confidence, i, ok = jsonfast.Float(data, i); !ok {
		return i, false
	}
	if i >= len(data) || data[i] != '}' {
		return i, false
	}
	return i + 1, true
}
