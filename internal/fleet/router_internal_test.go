package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestProxyStatusSplit pins the 502/504 contract the client's retry
// table depends on: 502 strictly for failures before any byte is
// forwarded (shard marked down) — safe for even an untagged push to
// retry — and 504 when the shard connection fails, where the shard may
// hold a decoded prefix of the body and only idempotent requests may
// resend.
func TestProxyStatusSplit(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here anymore: every Do fails

	rt, err := NewRouter(Config{Shards: []string{deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sessions/abc/samples", strings.NewReader("xxxxxxxx")))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("unreachable shard: HTTP %d, want 504", rec.Code)
	}

	rt.mu.Lock()
	rt.health[deadURL].down = true
	rt.mu.Unlock()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/sessions/abc/samples", strings.NewReader("xxxxxxxx")))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("marked-down shard: HTTP %d, want 502", rec.Code)
	}
}

// TestFinalizeOverrideLifecycle checks that handleFinalize drops a
// session's routing override only once its shard confirms the session
// gone. Dropping it on a failed DELETE would route every later request
// — including the client's own retry — to the ring owner, which knows
// nothing of the session, stranding it and its profile forever.
func TestFinalizeOverrideLifecycle(t *testing.T) {
	// The ring owner never holds the session; with an override in place
	// it must never even be asked.
	ringOwner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such session")
	}))
	defer ringOwner.Close()

	newRouterWithOverride := func(t *testing.T, shard string) *Router {
		t.Helper()
		rt, err := NewRouter(Config{Shards: []string{ringOwner.URL}})
		if err != nil {
			t.Fatal(err)
		}
		rt.overrides["s1"] = shard
		return rt
	}
	finalize := func(rt *Router) int {
		rec := httptest.NewRecorder()
		rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/sessions/s1", nil))
		return rec.Code
	}
	hasOverride := func(rt *Router) bool {
		rt.mu.RLock()
		defer rt.mu.RUnlock()
		_, ok := rt.overrides["s1"]
		return ok
	}

	t.Run("failed DELETE keeps the override", func(t *testing.T) {
		gone := httptest.NewServer(http.NotFoundHandler())
		goneURL := gone.URL
		gone.Close() // unreachable: the session still lives there
		rt := newRouterWithOverride(t, goneURL)
		if code := finalize(rt); code != http.StatusGatewayTimeout {
			t.Fatalf("finalize against unreachable override shard: HTTP %d, want 504", code)
		}
		if !hasOverride(rt) {
			t.Fatal("override dropped although the DELETE never reached the shard")
		}
		if rt.owner("s1") != goneURL {
			t.Fatalf("session re-routed to %s, want override %s", rt.owner("s1"), goneURL)
		}
	})

	t.Run("successful DELETE drops the override", func(t *testing.T) {
		shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodDelete {
				writeError(w, http.StatusMethodNotAllowed, "unexpected %s", r.Method)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"misses": 0})
		}))
		defer shard.Close()
		rt := newRouterWithOverride(t, shard.URL)
		if code := finalize(rt); code != http.StatusOK {
			t.Fatalf("finalize against override shard: HTTP %d, want 200", code)
		}
		if hasOverride(rt) {
			t.Fatal("override kept after the shard finalized the session")
		}
	})

	t.Run("relayed 404 drops the override", func(t *testing.T) {
		shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeError(w, http.StatusNotFound, "no such session")
		}))
		defer shard.Close()
		rt := newRouterWithOverride(t, shard.URL)
		if code := finalize(rt); code != http.StatusNotFound {
			t.Fatalf("finalize of a gone session: HTTP %d, want 404", code)
		}
		if hasOverride(rt) {
			t.Fatal("override kept although its shard no longer knows the session")
		}
	})
}

// TestRebalanceTimeoutOnWedgedShard drives a membership change against
// a shard that accepts connections but never answers. MoveTimeout must
// fail the rebalance promptly — it runs under the membership lock, so
// without the bound one wedged shard would block the admin routes (and
// creates, which share the lock) forever.
func TestRebalanceTimeoutOnWedgedShard(t *testing.T) {
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer wedged.Close()
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []any{})
	}))
	defer healthy.Close()

	rt, err := NewRouter(Config{
		Shards:      []string{wedged.URL, healthy.URL},
		MoveTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := rt.RemoveShard(wedged.URL); err == nil {
		t.Fatal("rebalance off a wedged shard reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rebalance blocked %v despite MoveTimeout", elapsed)
	}
	// The listing failed before anything moved: membership is unchanged
	// and the next attempt is free to try again.
	if got := len(rt.Ring().Shards()); got != 2 {
		t.Fatalf("ring has %d shards after failed rebalance, want 2", got)
	}
}
