package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"

	"emprof/internal/service"
)

// Membership changes move live sessions with the shard-side hand-off
// protocol (internal/service/handoff.go): pin on the old owner — its
// ingest answers 503, which clients retry, so no sample can land twice
// — then export, import on the new owner, swap the ring, and finally
// forget on the old owner. The ring swaps only after every mover is
// imported, so a push racing the rebalance either reaches the old owner
// (pinned: 503, retried) or, after the swap, the new owner (which has
// the session). A session whose move fails is unpinned where it is and
// recorded in the override table so it keeps routing to its old shard
// until it finalizes.

// AddShard grows the fleet by one shard and hands it the sessions the
// new ring assigns to it.
func (rt *Router) AddShard(url string) error {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()
	cur := rt.Ring()
	next, err := cur.With(url)
	if err != nil {
		return err
	}
	return rt.rebalance(cur, next, cur.Shards())
}

// RemoveShard shrinks the fleet, streaming every session off the
// removed shard first. The shard must be reachable: hand-off reads its
// state (a dead shard's sessions are simply lost — there is no replica
// to recover them from).
func (rt *Router) RemoveShard(url string) error {
	rt.rebalanceMu.Lock()
	defer rt.rebalanceMu.Unlock()
	cur := rt.Ring()
	next, err := cur.Without(url)
	if err != nil {
		return err
	}
	// Only the removed shard's sessions move; no need to scan the rest.
	return rt.rebalance(cur, next, []string{url})
}

type mover struct {
	id       string
	from, to string
}

// rebalance migrates every session on the source shards whose owner
// changes from the current to the next ring, then installs next.
//
// Every shard call is individually bounded by cfg.MoveTimeout: the
// whole run happens under rebalanceMu, so an unbounded call to a
// wedged shard would block membership changes (and creates, which
// read-lock the same mutex) forever. A timed-out listing fails the
// rebalance before anything moved; a timed-out move fails just that
// session into the unpin + override path.
func (rt *Router) rebalance(cur, next *Ring, sources []string) error {
	var movers []mover
	for _, shard := range sources {
		infos, err := func() ([]service.SessionInfo, error) {
			ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.MoveTimeout)
			defer cancel()
			return rt.listShard(ctx, shard)
		}()
		if err != nil {
			return fmt.Errorf("fleet: listing %s for rebalance: %w", shard, err)
		}
		for _, info := range infos {
			if to := next.Owner(info.ID); to != shard {
				movers = append(movers, mover{id: info.ID, from: shard, to: to})
			}
		}
	}

	// Moves run concurrently (bounded) so a session is pinned only for
	// its own export+import, not the whole batch: its clients see 503s
	// for one move's duration, well inside their retry budget.
	oks := make([]bool, len(movers))
	errs := make([]error, len(movers))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := range movers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			oks[i], errs[i] = rt.moveSession(movers[i])
		}(i)
	}
	wg.Wait()

	var moved []mover
	var failed []error
	for i, m := range movers {
		switch {
		case errs[i] != nil:
			rt.movesFailed.Add(1)
			failed = append(failed, errs[i])
			// The session stays (unpinned) on its old shard; route it
			// there until it finalizes.
			rt.mu.Lock()
			rt.overrides[m.id] = m.from
			rt.mu.Unlock()
		case oks[i]:
			moved = append(moved, m)
		}
		// Neither: the session finalized between listing and pinning —
		// nothing moved, nothing to forget.
	}

	// Install the new ring. From here on the moved sessions route to
	// their importers; stragglers route via the override table.
	rt.mu.Lock()
	rt.ring = next
	seen := map[string]bool{}
	for _, s := range next.Shards() {
		seen[s] = true
		if rt.health[s] == nil {
			rt.health[s] = &shardHealth{}
		}
	}
	for s := range rt.health {
		if !seen[s] {
			delete(rt.health, s)
		}
	}
	// An override that now matches the ring is redundant.
	for id, s := range rt.overrides {
		if next.Owner(id) == s {
			delete(rt.overrides, id)
		}
	}
	rt.mu.Unlock()

	// Drop the moved sessions from their old owners. A failed forget is
	// benign: the session stays pinned there, untouchable, until the
	// shard's idle-TTL sweeper collects it.
	for _, m := range moved {
		fctx, cancel := context.WithTimeout(context.Background(), rt.cfg.MoveTimeout)
		rt.post(fctx, m.from, "/v1/sessions/"+m.id+"/forget", nil)
		cancel()
		rt.sessionsMoved.Add(1)
	}
	if len(failed) > 0 {
		return fmt.Errorf("fleet: %d of %d hand-offs failed (sessions kept on their old shards): first: %w",
			len(failed), len(movers), failed[0])
	}
	return nil
}

// moveSession runs pin → export → import for one session; moved
// reports whether the session actually changed shards. On any failure
// after the pin, the pin is lifted and the session keeps serving where
// it was. The whole pin→export→import chain shares one MoveTimeout
// deadline; the unpin rollback gets a fresh one, because the move's
// deadline may be the very thing that just expired.
func (rt *Router) moveSession(m mover) (moved bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.MoveTimeout)
	defer cancel()
	code, _, err := rt.post(ctx, m.from, "/v1/sessions/"+m.id+"/pin", nil)
	if err != nil {
		return false, fmt.Errorf("pinning %s on %s: %w", m.id, m.from, err)
	}
	if code == http.StatusNotFound {
		return false, nil // finalized while we were listing; nothing to move
	}
	if code != http.StatusOK {
		return false, fmt.Errorf("pinning %s on %s: HTTP %d", m.id, m.from, code)
	}
	unpin := func() {
		uctx, ucancel := context.WithTimeout(context.Background(), rt.cfg.MoveTimeout)
		defer ucancel()
		rt.post(uctx, m.from, "/v1/sessions/"+m.id+"/unpin", nil)
	}

	code, blob, err := rt.post(ctx, m.from, "/v1/sessions/"+m.id+"/export", nil)
	if err != nil || code != http.StatusOK {
		unpin()
		if err == nil {
			err = fmt.Errorf("HTTP %d", code)
		}
		return false, fmt.Errorf("exporting %s from %s: %w", m.id, m.from, err)
	}
	code, _, err = rt.post(ctx, m.to, "/v1/sessions/import", blob)
	if err != nil || code != http.StatusCreated {
		unpin()
		if err == nil {
			err = fmt.Errorf("HTTP %d", code)
		}
		return false, fmt.Errorf("importing %s into %s: %w", m.id, m.to, err)
	}
	return true, nil
}

// post issues one JSON POST to a shard and returns the status and body.
func (rt *Router) post(ctx context.Context, shard, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, shard+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}
