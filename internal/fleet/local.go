package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"emprof/internal/service"
)

// LocalFleet is an in-process fleet on loopback listeners: n emprofd
// shards plus one router, each on its own 127.0.0.1 port. It backs the
// emsim -fleet load harness and the e2e tests, and is exactly the
// topology `emprofd -router -shards=...` serves across machines — the
// router speaks to its shards over real HTTP either way.
type LocalFleet struct {
	Router    *Router
	RouterURL string
	ShardURLs []string

	shards     []*service.Server
	servers    []*http.Server
	stopHealth func()
	nextShard  int
	shardCfg   service.Config
}

// StartLocal boots a fleet of n shards behind a router. shardCfg
// configures every shard's registry; routerCfg.Shards is filled in by
// StartLocal (set the rest — seed, vnodes, health cadence — as needed).
// Health probing starts only when routerCfg.HealthInterval > 0.
func StartLocal(n int, shardCfg service.Config, routerCfg Config) (*LocalFleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("fleet: need at least one shard")
	}
	f := &LocalFleet{shardCfg: shardCfg}
	for i := 0; i < n; i++ {
		if _, err := f.startShard(); err != nil {
			f.Close()
			return nil, err
		}
	}
	routerCfg.Shards = f.ShardURLs
	rt, err := NewRouter(routerCfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Router = rt
	url, err := f.serve(rt.Handler())
	if err != nil {
		f.Close()
		return nil, err
	}
	f.RouterURL = url
	if routerCfg.HealthInterval > 0 {
		f.stopHealth = rt.Start()
	}
	return f, nil
}

// startShard boots one more shard server (without ring membership).
func (f *LocalFleet) startShard() (string, error) {
	srv := service.New(f.shardCfg)
	url, err := f.serve(srv.Handler())
	if err != nil {
		return "", err
	}
	f.shards = append(f.shards, srv)
	f.ShardURLs = append(f.ShardURLs, url)
	f.nextShard++
	return url, nil
}

func (f *LocalFleet) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go hs.Serve(ln)
	f.servers = append(f.servers, hs)
	return "http://" + ln.Addr().String(), nil
}

// AddShard boots one more local shard and joins it to the ring,
// triggering a live rebalance — the forced membership change the load
// harness uses to prove hand-off under traffic.
func (f *LocalFleet) AddShard() (string, error) {
	if f.Router == nil {
		return "", fmt.Errorf("fleet: no router")
	}
	url, err := f.startShard()
	if err != nil {
		return "", err
	}
	return url, f.Router.AddShard(url)
}

// Shards exposes the in-process shard registries (tests reach in to
// count sessions per shard).
func (f *LocalFleet) Shards() []*service.Server { return f.shards }

// Close shuts the fleet down: router first (no new traffic), then every
// shard, finalizing their in-flight sessions.
func (f *LocalFleet) Close() {
	if f.stopHealth != nil {
		f.stopHealth()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, hs := range f.servers {
		hs.Shutdown(ctx)
	}
	for _, s := range f.shards {
		s.Close()
	}
}
