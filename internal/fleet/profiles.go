package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"emprof/internal/core"
	"emprof/internal/service"
)

// Profiles fan-in. Rolling windows are the one per-session resource that
// a hand-off scatters: sealed windows stay in the exporting shard's
// store while the live tail accrues on the importer, so a session that
// moved N times has its window sequence spread over N+1 shards. A plain
// owner proxy would serve only the newest fragment. The router therefore
// fans GET /v1/sessions/{id}/profiles out to every up shard with the
// caller's query verbatim and reassembles: windows merge deduplicated by
// index and sorted, so core.MergeWindows on the router's answer works
// exactly as against a single shard.
//
// Status merge, mirroring the shard-side contract:
//
//   - any 400 is relayed (a malformed query is malformed fleet-wide);
//   - 404 only when every reachable shard answered 404;
//   - 410 when some shard answered 410 (evicted range) and no shard
//     contributed a window — if any windows survive elsewhere they are
//     served with Truncated set instead;
//   - shard transport failures are 502, like the session list.
//
// Pagination is re-applied after the merge: each shard enforced limit=
// and last= on its own fragment, so the union can overshoot; the router
// trims to the caller's bounds and recomputes More/NextAfter against the
// merged sequence, keeping the cursor loop ("pass next_after as after=")
// valid against a fleet. When a shard capped its fragment (at limit= or
// the store's default page size) the union can also jump past windows
// that shard still holds; the merge never serves across such a jump —
// see the discontinuity cut below.
func (rt *Router) handleProfiles(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	shards := rt.Ring().Shards()
	out := make([]shardProfiles, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		if rt.isDown(s) {
			out[i].skipped = true
			continue
		}
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			out[i] = rt.profilesShard(r.Context(), s, r.URL.Path, r.URL.RawQuery)
		}(i, s)
	}
	wg.Wait()

	merged := service.ProfilesResponse{ID: id, Windows: []core.ProfileWindow{}, LatestIndex: -1}
	seen := make(map[int64]bool)
	var reachable, notFound int
	var goneSeen, anyMore bool
	for i := range out {
		sp := &out[i]
		if sp.skipped {
			continue
		}
		if sp.err != nil {
			writeError(w, http.StatusBadGateway, "fleet: profiles from %s: %v", shards[i], sp.err)
			return
		}
		reachable++
		switch sp.status {
		case http.StatusOK:
		case http.StatusNotFound:
			notFound++
			continue
		case http.StatusGone:
			goneSeen = true
			continue
		case http.StatusBadRequest:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadRequest)
			w.Write(sp.body)
			return
		default:
			writeError(w, http.StatusBadGateway, "fleet: profiles from %s: HTTP %d", shards[i], sp.status)
			return
		}
		for _, win := range sp.resp.Windows {
			if seen[win.Index] {
				continue
			}
			seen[win.Index] = true
			merged.Windows = append(merged.Windows, win)
		}
		merged.Truncated = merged.Truncated || sp.resp.Truncated
		anyMore = anyMore || sp.resp.More
		if sp.resp.LatestIndex > merged.LatestIndex {
			merged.LatestIndex = sp.resp.LatestIndex
		}
		// The shard still holding the live session is authoritative for
		// state and acquisition metadata; store-only shards say "detached".
		if stateRank(sp.resp.State) > stateRank(merged.State) {
			merged.State = sp.resp.State
			merged.WindowS, merged.StrideS = sp.resp.WindowS, sp.resp.StrideS
			merged.SampleRate, merged.ClockHz = sp.resp.SampleRate, sp.resp.ClockHz
		}
	}
	if reachable == 0 {
		writeError(w, http.StatusBadGateway, "fleet: no shard reachable for session %s", id)
		return
	}
	if reachable == notFound {
		writeError(w, http.StatusNotFound, "fleet: unknown session %s", id)
		return
	}
	sort.Slice(merged.Windows, func(i, j int) bool {
		return merged.Windows[i].Index < merged.Windows[j].Index
	})
	if goneSeen && len(merged.Windows) == 0 {
		writeError(w, http.StatusGone, "fleet: requested windows for session %s no longer retained", id)
		return
	}
	// A 410 fragment means part of the sequence is gone even though other
	// shards still serve windows: surface it as a truncated range.
	merged.Truncated = merged.Truncated || goneSeen

	limit, last := pageBounds(r)
	// A shard that capped its fragment (at limit=, or at the store's
	// default page size when the caller named none) still holds windows
	// past its last served index, while a later shard may have served
	// higher indexes already. Serving the sorted union across that jump
	// would point NextAfter past the capped shard's remainder and strand
	// those windows behind the cursor forever. Cut the page at the first
	// index discontinuity instead: the next "pass next_after as after="
	// iteration re-fetches from the gap and walks the full sequence.
	// Tail (last=) queries keep the newest windows by design and are not
	// cursor-walked, so they are served uncut.
	if anyMore && last == 0 {
		for i := 1; i < len(merged.Windows); i++ {
			if merged.Windows[i].Index != merged.Windows[i-1].Index+1 {
				merged.Windows = merged.Windows[:i]
				break
			}
		}
	}
	if last > 0 && len(merged.Windows) > last {
		merged.Windows = merged.Windows[len(merged.Windows)-last:]
	}
	if limit > 0 && len(merged.Windows) > limit {
		merged.Windows = merged.Windows[:limit]
		anyMore = true
	}
	merged.More = anyMore
	merged.NextAfter = 0
	if anyMore && len(merged.Windows) > 0 {
		merged.NextAfter = merged.Windows[len(merged.Windows)-1].Index
	}
	writeJSON(w, http.StatusOK, &merged)
}

// shardProfiles is one shard's answer to the profiles fan-out.
type shardProfiles struct {
	skipped bool
	status  int
	resp    service.ProfilesResponse
	body    []byte
	err     error
}

func (rt *Router) profilesShard(ctx context.Context, shard, path, rawQuery string) shardProfiles {
	url := shard + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return shardProfiles{err: err}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return shardProfiles{err: err}
	}
	defer resp.Body.Close()
	sp := shardProfiles{status: resp.StatusCode}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return shardProfiles{err: err}
	}
	sp.body = body
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &sp.resp); err != nil {
			return shardProfiles{err: fmt.Errorf("decoding profiles: %w", err)}
		}
	}
	return sp
}

// stateRank orders session states by authority for the fan-in merge:
// the live owner (active/pinned/finalized) beats store-only shards.
func stateRank(state string) int {
	switch state {
	case "active":
		return 4
	case "pinned":
		return 3
	case "finalized":
		return 2
	case "detached":
		return 1
	}
	return 0
}

// pageBounds extracts the caller's limit=/last= so the fan-in can
// re-apply them to the merged sequence. Values the shards rejected never
// reach here (their 400 is relayed), so parse failures read as unset.
func pageBounds(r *http.Request) (limit, last int) {
	vals := r.URL.Query()
	if v, err := strconv.Atoi(vals.Get("limit")); err == nil && v > 0 {
		limit = v
	}
	if v, err := strconv.Atoi(vals.Get("last")); err == nil && v > 0 {
		last = v
	}
	return limit, last
}
