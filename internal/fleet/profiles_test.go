package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"emprof"
	"emprof/internal/core"
	"emprof/internal/fleet"
	"emprof/internal/service"
)

// TestFleetProfilesFanIn proves the router reassembles a window sequence
// a hand-off scattered: sealed windows stay in the exporting shard's
// store while the live tail accrues on the importer, so after a
// scale-out rebalance the session's windows live on two shards and only
// the fan-in serves the complete sequence. Merging the router's answer
// must reproduce the batch profile, and paging through it with the
// limit=/after= cursor must walk the same sequence.
func TestFleetProfilesFanIn(t *testing.T) {
	capture := fleetCapture(t, 11)
	want, err := emprof.Analyze(capture, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// ~8 windows across the capture, so both halves seal several.
	windowS := float64(len(capture.Samples)) / capture.SampleRate / 8

	f, err := fleet.StartLocal(1, service.Config{WindowS: windowS}, fleet.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	client := emprof.NewClient(f.RouterURL)
	client.ChunkSamples = len(capture.Samples)/6 + 1
	client.RetryBaseDelay = 1
	ctx := context.Background()

	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate, ClockHz: capture.ClockHz, Device: "olimex",
	})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(capture.Samples) / 2
	head := &emprof.Capture{Samples: capture.Samples[:cut], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
	tail := &emprof.Capture{Samples: capture.Samples[cut:], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
	if err := client.StreamCapture(ctx, id, head); err != nil {
		t.Fatal(err)
	}

	// Scale out until the rebalance moves the session off shard 0 — the
	// ID is random, so how many joins that takes varies.
	origin := f.Router.Ring().Owner(id)
	moved := false
	for i := 0; i < 8 && !moved; i++ {
		if _, err := f.AddShard(); err != nil {
			t.Fatalf("add shard: %v", err)
		}
		moved = f.Router.Ring().Owner(id) != origin
	}
	if !moved {
		t.Skip("session never rebalanced off its origin shard (unlucky ring placement)")
	}

	if err := client.StreamCapture(ctx, id, tail); err != nil {
		t.Fatal(err)
	}

	// While the session lives on the new owner, the fan-in reports the
	// owner's state — "active" beats the origin store's "detached" — and
	// echoes the acquisition metadata only the owner knows.
	var live service.ProfilesResponse
	getJSON(t, f.RouterURL+"/v1/sessions/"+id+"/profiles", &live)
	if live.State != "active" {
		t.Fatalf("live fan-in state %q, want active (owner authoritative over detached)", live.State)
	}
	if live.SampleRate != capture.SampleRate || live.ClockHz != capture.ClockHz {
		t.Fatalf("live fan-in metadata %g/%g, want %g/%g", live.SampleRate, live.ClockHz, capture.SampleRate, capture.ClockHz)
	}

	got, err := client.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fleet profile differs from batch Analyze")
	}

	var resp service.ProfilesResponse
	getJSON(t, f.RouterURL+"/v1/sessions/"+id+"/profiles", &resp)
	if resp.State != "detached" {
		t.Fatalf("fan-in state %q, want detached after finalize", resp.State)
	}
	if len(resp.Windows) < 2 {
		t.Fatalf("fan-in returned %d windows, want several", len(resp.Windows))
	}
	merged, err := core.MergeWindows(resp.Windows, capture.SampleRate, capture.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatal("fan-in merged windows differ from batch Analyze")
	}

	// The sequence really is scattered: every shard alone serves a proper
	// fragment (or none), never the whole.
	scattered := 0
	for _, su := range f.ShardURLs {
		sresp, err := http.Get(su + "/v1/sessions/" + id + "/profiles")
		if err != nil {
			t.Fatal(err)
		}
		var frag service.ProfilesResponse
		if sresp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(sresp.Body).Decode(&frag); err != nil {
				t.Fatal(err)
			}
		}
		sresp.Body.Close()
		if n := len(frag.Windows); n > 0 {
			scattered++
			if n == len(resp.Windows) {
				t.Fatalf("shard %s alone serves all %d windows — nothing was scattered", su, n)
			}
		}
	}
	if scattered < 2 {
		t.Fatalf("windows found on %d shards, want >= 2", scattered)
	}

	// Cursor loop through the router: limit= pages must walk the exact
	// same sequence the unpaged fan-in returned.
	var paged []core.ProfileWindow
	after := int64(-1)
	for {
		url := fmt.Sprintf("%s/v1/sessions/%s/profiles?limit=3", f.RouterURL, id)
		if after >= 0 {
			url = fmt.Sprintf("%s&after=%d", url, after)
		}
		var page service.ProfilesResponse
		getJSON(t, url, &page)
		paged = append(paged, page.Windows...)
		if !page.More {
			break
		}
		after = page.NextAfter
		if len(paged) > len(resp.Windows) {
			t.Fatalf("cursor loop runs past the sequence: %d > %d windows", len(paged), len(resp.Windows))
		}
	}
	if !reflect.DeepEqual(paged, resp.Windows) {
		t.Fatalf("paged fan-in walked %d windows, differs from unpaged %d", len(paged), len(resp.Windows))
	}
}
