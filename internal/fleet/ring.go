// Package fleet turns emprofd into a horizontally scalable profiling
// service: a stateless router maps session IDs onto shards with a
// consistent hash ring, proxies per-session traffic to the owning
// shard, aggregates fleet-wide views (session list, metrics), and moves
// live sessions between shards on membership change via the service
// hand-off protocol — replay-free, with the session pinned so no sample
// is double-ingested.
package fleet

import (
	"fmt"
	"sort"

	"emprof/internal/batch"
)

// DefaultVirtualNodes is the per-shard point count on the ring. 128
// points per shard keeps the max/mean load ratio within ~1.3 for
// realistic shard counts while the ring stays small enough to rebuild
// on every membership change.
const DefaultVirtualNodes = 128

// Ring is a consistent hash ring: every shard owns VirtualNodes points
// on a 64-bit circle and a session ID belongs to the shard whose point
// follows the ID's hash. Adding or removing one shard therefore moves
// only the sessions adjacent to that shard's points — about K/N of them
// — instead of rehashing the world. Hashing is deterministic (splitmix64
// over FNV-1a coordinates, seed-remixed like internal/batch seeds), so
// every router replica with the same shard set and seed agrees on
// ownership without coordination.
type Ring struct {
	seed   uint64
	vnodes int
	shards []string // sorted, deduplicated
	points []point  // sorted by hash
}

type point struct {
	hash  uint64
	shard string
}

// NewRing builds a ring over the given shard names (URLs). vnodes <= 0
// means DefaultVirtualNodes. Shard order does not matter; duplicates
// collapse. An empty shard set is valid (Owner returns "").
func NewRing(shards []string, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(shards))
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	r := &Ring{seed: seed, vnodes: vnodes, shards: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, s := range uniq {
		sh := batch.MixSeedString(s)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{batch.MixSeed(seed, sh, uint64(v)), s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode points is astronomically rare
		// but must still break deterministically.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Owner returns the shard owning a session ID, or "" on an empty ring.
func (r *Ring) Owner(id string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := batch.MixSeed(r.seed, batch.MixSeedString(id))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return r.points[i].shard
}

// Shards returns the ring's member set, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Has reports ring membership.
func (r *Ring) Has(shard string) bool {
	i := sort.SearchStrings(r.shards, shard)
	return i < len(r.shards) && r.shards[i] == shard
}

// With returns a new ring with one shard added (same seed and vnode
// count); adding an existing member errors rather than silently no-op,
// so membership bugs surface.
func (r *Ring) With(shard string) (*Ring, error) {
	if shard == "" {
		return nil, fmt.Errorf("fleet: empty shard name")
	}
	if r.Has(shard) {
		return nil, fmt.Errorf("fleet: shard %q already in ring", shard)
	}
	return NewRing(append(r.Shards(), shard), r.vnodes, r.seed), nil
}

// Without returns a new ring with one shard removed.
func (r *Ring) Without(shard string) (*Ring, error) {
	if !r.Has(shard) {
		return nil, fmt.Errorf("fleet: shard %q not in ring", shard)
	}
	rest := make([]string, 0, len(r.shards)-1)
	for _, s := range r.shards {
		if s != shard {
			rest = append(rest, s)
		}
	}
	return NewRing(rest, r.vnodes, r.seed), nil
}
