package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"emprof/internal/service"
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the initial shard membership: emprofd base URLs, e.g.
	// "http://10.0.0.1:7979". Membership can change at runtime via
	// AddShard/RemoveShard (or the /v1/fleet/shards admin routes), which
	// trigger live session hand-off.
	Shards []string
	// VirtualNodes is the per-shard ring point count; <= 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// Seed remixes the ring's hash space. Every router replica in front
	// of the same fleet must use the same seed.
	Seed uint64
	// HTTPClient issues shard requests; nil means http.DefaultClient.
	HTTPClient *http.Client
	// HealthInterval spaces the shard health probes started by Start;
	// <= 0 means 2 seconds.
	HealthInterval time.Duration
	// FailThreshold is how many consecutive probe failures mark a shard
	// down; <= 0 means 3. A down shard answers 502 for its sessions
	// (clients retry) until a probe succeeds again; it is NOT removed
	// from the ring — hand-off needs the source alive, so membership
	// changes are always explicit.
	FailThreshold int
	// ProbeTimeout bounds one health probe; <= 0 means 1 second.
	ProbeTimeout time.Duration
	// MoveTimeout bounds each shard call a rebalance makes (the source
	// listing and each session's pin/export/import/forget) and the
	// proxied delivery of a create; <= 0 means 30 seconds. Rebalancing
	// holds the membership lock, so without a bound one wedged shard —
	// an accepted connection that never answers — would block the admin
	// routes and all future membership changes forever. A timed-out move
	// fails into the normal unpin + override recovery path.
	MoveTimeout time.Duration
}

// Router is the stateless front of an emprofd fleet. All per-session
// state lives on the shards; the router only holds the ring, the health
// table, and a small override map for sessions stranded by a failed
// hand-off. Kill a router and start another with the same shard list
// and seed: every session routes identically.
type Router struct {
	cfg    Config
	client *http.Client

	mu        sync.RWMutex
	ring      *Ring
	health    map[string]*shardHealth
	overrides map[string]string // session ID -> shard, for failed moves

	// rebalanceMu serializes membership changes (writers); hand-off is
	// incremental and two concurrent rebalances would race pin/forget.
	// Creates take it as readers across owner resolution + delivery, so
	// every session either exists on its shard before a rebalance lists
	// the sources (and is considered for moving) or resolves its owner
	// from the post-rebalance ring — a create can never land on a source
	// shard after the listing and be stranded by the ring swap.
	rebalanceMu sync.RWMutex

	sessionsMoved  atomic.Int64
	movesFailed    atomic.Int64
	proxiedTotal   atomic.Int64
	proxyErrors    atomic.Int64
	sessionsRouted atomic.Int64
	deprecatedHits atomic.Int64
}

type shardHealth struct {
	fails int
	down  bool
}

// defaultRelayClient carries proxied traffic for routers that did not
// supply their own client. Relayed ingest bodies run to hundreds of
// kilobytes; the enlarged transport buffers move a full chunk per write
// syscall instead of the stock 4 KiB. Shared across routers so idle
// shard connections pool, as they did with http.DefaultClient.
var defaultRelayClient = &http.Client{
	Transport: &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
		WriteBufferSize:     256 << 10,
		ReadBufferSize:      256 << 10,
	},
}

// NewRouter builds a router over the configured shards.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: router needs at least one shard")
	}
	for _, s := range cfg.Shards {
		if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
			return nil, fmt.Errorf("fleet: shard %q is not an http(s) URL", s)
		}
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.MoveTimeout <= 0 {
		cfg.MoveTimeout = 30 * time.Second
	}
	rt := &Router{
		cfg:       cfg,
		client:    cfg.HTTPClient,
		ring:      NewRing(cfg.Shards, cfg.VirtualNodes, cfg.Seed),
		health:    make(map[string]*shardHealth),
		overrides: make(map[string]string),
	}
	if rt.client == nil {
		rt.client = defaultRelayClient
	}
	for _, s := range rt.ring.Shards() {
		rt.health[s] = &shardHealth{}
	}
	return rt, nil
}

// Ring returns the current ring (immutable; swapped atomically on
// membership change).
func (rt *Router) Ring() *Ring {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring
}

// Start launches the health-probe loop and returns a stop function.
func (rt *Router) Start() (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(rt.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				rt.ProbeShards()
			}
		}
	}()
	return func() { close(done) }
}

// ProbeShards runs one health-check round: GET /v1/sessions on every
// member; FailThreshold consecutive failures mark a shard down, one
// success marks it up.
func (rt *Router) ProbeShards() {
	for _, s := range rt.Ring().Shards() {
		ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, s+"/v1/sessions", nil)
		ok := false
		if err == nil {
			resp, derr := rt.client.Do(req)
			if derr == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				ok = resp.StatusCode < 500
			}
		}
		cancel()
		rt.noteProbe(s, ok)
	}
}

func (rt *Router) noteProbe(shard string, ok bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h := rt.health[shard]
	if h == nil {
		return // raced a membership change
	}
	if ok {
		h.fails = 0
		h.down = false
		return
	}
	h.fails++
	if h.fails >= rt.cfg.FailThreshold {
		h.down = true
	}
}

func (rt *Router) isDown(shard string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	h := rt.health[shard]
	return h != nil && h.down
}

// owner resolves a session ID to its shard: the override table first
// (sessions stranded where the ring no longer points by a failed
// hand-off), then the ring.
func (rt *Router) owner(id string) string {
	rt.mu.RLock()
	if s, ok := rt.overrides[id]; ok {
		rt.mu.RUnlock()
		return s
	}
	ring := rt.ring
	rt.mu.RUnlock()
	return ring.Owner(id)
}

func (rt *Router) dropOverride(id string) {
	rt.mu.Lock()
	delete(rt.overrides, id)
	rt.mu.Unlock()
}

// newFleetID mirrors the service's session IDs: 128-bit random hex. The
// router must assign IDs itself — ownership is computed from the ID, so
// it has to exist before any shard is picked.
func newFleetID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("fleet: rand: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Handler returns the router's HTTP surface: the emprofd session API
// (proxied per-session, aggregated fleet-wide) plus the /v1/fleet admin
// routes. Paths mirror the shard surface so emprof.Client works
// unchanged against a router.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /sessions", rt.handleCreate},
		{"GET /sessions", rt.handleList},
		{"POST /sessions/{id}/samples", rt.handleSession},
		{"GET /sessions/{id}/profile", rt.handleSession},
		{"GET /sessions/{id}/profiles", rt.handleProfiles},
		{"GET /sessions/{id}/trace", rt.handleSession},
		{"DELETE /sessions/{id}", rt.handleFinalize},
		{"GET /metrics", rt.handleMetrics},
		{"GET /fleet", rt.handleFleetStatus},
		{"POST /fleet/shards", rt.handleAddShard},
		{"POST /fleet/shards/remove", rt.handleRemoveShard},
	}
	for _, r := range routes {
		method, path, _ := strings.Cut(r.pattern, " ")
		mux.HandleFunc(method+" /v1"+path, r.h)
		// Bare aliases mirror the shards' deprecation contract: they keep
		// working, but answer with the successor-version headers and count
		// their traffic so operators can see who still needs to migrate.
		mux.HandleFunc(r.pattern, rt.deprecated(r.h))
	}
	return mux
}

// deprecated wraps a bare (unversioned) route alias: same handler, plus
// the Deprecation/Link headers pointing at the /v1 successor and a hit
// counter. /v1 is the only supported surface; the aliases exist for
// pre-/v1 clients and will be removed.
func (rt *Router) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
		rt.deprecatedHits.Add(1)
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, a ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, a...)})
}

// proxy forwards one request to a shard verbatim (path, query, headers —
// including the idempotency offset tag — and body) and relays the
// response.
//
// Shard trouble splits into two statuses by what the shard may have
// seen. 502 is reserved for failures *before* any byte is sent (shard
// marked down): it can never leave partial state behind, so even a
// plain untagged push retries it safely. A Do error is different — the
// connection can break mid-body after the shard decoded a prefix — so
// it surfaces as 504, which only idempotent (offset-tagged or GET)
// requests retry. Collapsing both to 502 would let an untagged push
// resend a body whose prefix already landed: a double ingest.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, shard string) {
	rt.proxiedTotal.Add(1)
	if rt.isDown(shard) {
		rt.proxyErrors.Add(1)
		writeError(w, http.StatusBadGateway, "fleet: shard %s marked down", shard)
		return
	}
	url := shard + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "fleet: %v", err)
		return
	}
	req.Header = r.Header.Clone()
	req.ContentLength = r.ContentLength
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.proxyErrors.Add(1)
		writeError(w, http.StatusGatewayTimeout, "fleet: shard %s unreachable: %v", shard, err)
		return
	}
	relay(w, resp)
}

// forward reissues a request against a shard with a replayable buffered
// body and returns the shard's response.
func (rt *Router) forward(r *http.Request, shard string, body []byte) (*http.Response, error) {
	url := shard + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.ContentLength = int64(len(body))
	return rt.client.Do(req)
}

// relayBufPool recycles the response-copy buffers relay uses; the copy
// is synchronous, so a buffer is always safe to return when it ends.
var relayBufPool = sync.Pool{
	New: func() any { b := make([]byte, 32*1024); return &b },
}

// relay copies a shard response — status, headers, body — to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	bp := relayBufPool.Get().(*[]byte)
	io.CopyBuffer(w, resp.Body, *bp)
	relayBufPool.Put(bp)
}

func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req service.CreateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "fleet: bad create body: %v", err)
		return
	}
	if req.ID == "" {
		req.ID = newFleetID()
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "fleet: %v", err)
		return
	}
	// The read-lock spans owner resolution AND delivery: released only
	// once the session exists on its shard (or the create failed), so a
	// rebalance that starts afterwards lists it, and one already holding
	// the write lock forces this create to resolve from the next ring.
	// Without it, a create resolved on the old ring could land on a
	// source shard after the rebalance listed it — the ring swap would
	// then route every request to the new owner, 404, forever.
	rt.rebalanceMu.RLock()
	defer rt.rebalanceMu.RUnlock()
	owner := rt.Ring().Owner(req.ID)
	rt.sessionsRouted.Add(1)
	// Bound the delivery so a wedged shard (or a client that never
	// cancels) cannot hold the read lock forever and wedge membership
	// changes with it. A timed-out create answers 504; the client
	// retries creates freely.
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.MoveTimeout)
	defer cancel()
	r2 := r.Clone(ctx)
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	rt.proxy(w, r2, owner)
}

// replaySessionBody bounds the bodies proxySession buffers for
// ownership-race replay. Bodies above it — and bodies of unknown
// length — are streamed straight through to the owner instead of being
// held in router memory (the old path io.ReadAll-buffered every proxied
// request, up to 256 MiB each).
const replaySessionBody = 4 << 20

// replayBufPool recycles the bounded replay buffers across proxied
// requests. A buffer is returned ONLY after the forwarded request
// succeeded end to end: on any error or non-2xx path the transport's
// write loop may still be draining the bytes.Reader asynchronously, so
// the buffer is dropped to the garbage collector instead.
var replayBufPool sync.Pool

// proxySession forwards a per-session route to its owner and returns
// the status written to the client. Bodies of known, bounded size are
// buffered (in a pooled buffer) so the request can be replayed: a
// hand-off can land between owner resolution and delivery — the request
// reaches the old shard after Forget and draws a 404 even though the
// session is alive on its new owner — so a 404 re-resolves ownership
// and retries once if it moved. A genuine unknown session resolves to
// the same owner twice and the 404 is relayed as-is. Oversized or
// length-less bodies skip the replay: they stream to the first resolved
// owner, and an ownership-race 404 is relayed for the client's own
// retry to resolve (the emprof client offset-tags its pushes, so its
// retry is loss- and duplicate-free either way).
//
// Like proxy, a Do failure answers 504 — the shard may have consumed
// part of the body — while the pre-send marked-down check answers 502,
// safe for even untagged pushes to retry.
func (rt *Router) proxySession(w http.ResponseWriter, r *http.Request, id string) int {
	if r.ContentLength < 0 || r.ContentLength > replaySessionBody {
		return rt.proxySessionStream(w, r, id)
	}
	var body []byte
	var bp *[]byte
	if r.ContentLength > 0 {
		bp, _ = replayBufPool.Get().(*[]byte)
		if bp == nil {
			bp = new([]byte)
		}
		if int64(cap(*bp)) < r.ContentLength {
			*bp = make([]byte, r.ContentLength)
		}
		body = (*bp)[:r.ContentLength]
		if _, err := io.ReadFull(r.Body, body); err != nil {
			writeError(w, http.StatusBadRequest, "fleet: reading body: %v", err)
			return http.StatusBadRequest
		}
	}
	rt.proxiedTotal.Add(1)
	shard := rt.owner(id)
	if rt.isDown(shard) {
		rt.proxyErrors.Add(1)
		writeError(w, http.StatusBadGateway, "fleet: shard %s marked down", shard)
		return http.StatusBadGateway
	}
	resp, err := rt.forward(r, shard, body)
	if err != nil {
		rt.proxyErrors.Add(1)
		writeError(w, http.StatusGatewayTimeout, "fleet: shard %s unreachable: %v", shard, err)
		return http.StatusGatewayTimeout
	}
	if resp.StatusCode == http.StatusNotFound {
		if again := rt.owner(id); again != shard && !rt.isDown(again) {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			resp, err = rt.forward(r, again, body)
			if err != nil {
				rt.proxyErrors.Add(1)
				writeError(w, http.StatusGatewayTimeout, "fleet: shard %s unreachable: %v", again, err)
				return http.StatusGatewayTimeout
			}
		}
	}
	relay(w, resp)
	if bp != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		replayBufPool.Put(bp)
	}
	return resp.StatusCode
}

// proxySessionStream forwards a session request without buffering its
// body: no replay is possible, so an ownership-race 404 is relayed
// as-is for the client to retry against the router (which re-resolves).
func (rt *Router) proxySessionStream(w http.ResponseWriter, r *http.Request, id string) int {
	rt.proxiedTotal.Add(1)
	shard := rt.owner(id)
	if rt.isDown(shard) {
		rt.proxyErrors.Add(1)
		writeError(w, http.StatusBadGateway, "fleet: shard %s marked down", shard)
		return http.StatusBadGateway
	}
	url := shard + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "fleet: %v", err)
		return http.StatusBadRequest
	}
	req.Header = r.Header.Clone()
	req.ContentLength = r.ContentLength
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.proxyErrors.Add(1)
		writeError(w, http.StatusGatewayTimeout, "fleet: shard %s unreachable: %v", shard, err)
		return http.StatusGatewayTimeout
	}
	relay(w, resp)
	return resp.StatusCode
}

func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	rt.proxySession(w, r, r.PathValue("id"))
}

func (rt *Router) handleFinalize(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	code := rt.proxySession(w, r, id)
	// The override routes a stranded session to its off-ring shard; it
	// may only be dropped once that shard says the session is gone — a
	// 2xx (finalized) or a relayed 404 (already gone; with an override
	// in place owner() resolves to the overridden shard, so the 404 is
	// its answer). Dropping it on a failed DELETE (502/504: shard down
	// or unreachable — the session still lives there) would re-route
	// the client's retry to the ring owner, which 404s, making the
	// session and its profile permanently unreachable.
	if (code >= 200 && code < 300) || code == http.StatusNotFound {
		rt.dropOverride(id)
	}
}

// handleList fans GET /v1/sessions out to every shard and merges the
// results into one fleet-wide view, sorted by creation time. Down
// shards are skipped (their sessions are unreachable anyway).
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type res struct {
		infos []service.SessionInfo
		err   error
	}
	shards := rt.Ring().Shards()
	out := make([]res, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		if rt.isDown(s) {
			continue
		}
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			out[i].infos, out[i].err = rt.listShard(r.Context(), s)
		}(i, s)
	}
	wg.Wait()
	var all []service.SessionInfo
	for i := range out {
		if out[i].err != nil {
			writeError(w, http.StatusBadGateway, "fleet: listing %s: %v", shards[i], out[i].err)
			return
		}
		all = append(all, out[i].infos...)
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].CreatedAt.Equal(all[j].CreatedAt) {
			return all[i].CreatedAt.Before(all[j].CreatedAt)
		}
		return all[i].ID < all[j].ID
	})
	if all == nil {
		all = []service.SessionInfo{}
	}
	writeJSON(w, http.StatusOK, all)
}

func (rt *Router) listShard(ctx context.Context, shard string) ([]service.SessionInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var infos []service.SessionInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// ShardStatus is one row of the fleet status document.
type ShardStatus struct {
	URL  string `json:"url"`
	Down bool   `json:"down"`
}

// FleetStatus is the GET /v1/fleet reply.
type FleetStatus struct {
	Shards        []ShardStatus `json:"shards"`
	SessionsMoved int64         `json:"sessions_moved"`
	MovesFailed   int64         `json:"moves_failed"`
}

func (rt *Router) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	st := FleetStatus{
		SessionsMoved: rt.sessionsMoved.Load(),
		MovesFailed:   rt.movesFailed.Load(),
	}
	for _, s := range rt.Ring().Shards() {
		st.Shards = append(st.Shards, ShardStatus{URL: s, Down: rt.isDown(s)})
	}
	writeJSON(w, http.StatusOK, st)
}

// ShardRequest is the body of the membership admin routes.
type ShardRequest struct {
	URL string `json:"url"`
}

func (rt *Router) handleAddShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "fleet: bad shard body: %v", err)
		return
	}
	if err := rt.AddShard(req.URL); err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.handleFleetStatus(w, r)
}

func (rt *Router) handleRemoveShard(w http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "fleet: bad shard body: %v", err)
		return
	}
	if err := rt.RemoveShard(req.URL); err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	rt.handleFleetStatus(w, r)
}

// handleMetrics aggregates /metrics across the fleet: counters and
// gauges with the same series identity are summed (sessions active,
// samples ingested, stalls detected — all meaningful fleet-wide), then
// the router appends its own emprofd_fleet_* series, including a
// per-shard liveness gauge and each shard's active-session count.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	shards := rt.Ring().Shards()
	bodies := make([]string, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		if rt.isDown(s) {
			continue
		}
		wg.Add(1)
		go func(i int, s string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, s+"/metrics", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			bodies[i] = string(b)
		}(i, s)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	perShardActive := writeAggregated(w, bodies)

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("emprofd_fleet_shards", "Shards in the ring.", int64(len(shards)))
	var down int64
	for _, s := range shards {
		if rt.isDown(s) {
			down++
		}
	}
	gauge("emprofd_fleet_shards_down", "Shards currently marked down.", down)
	counter("emprofd_fleet_sessions_moved_total", "Sessions handed off between shards by rebalancing.", rt.sessionsMoved.Load())
	counter("emprofd_fleet_moves_failed_total", "Session hand-offs that failed and were rolled back.", rt.movesFailed.Load())
	counter("emprofd_fleet_proxied_requests_total", "Per-session requests proxied to shards.", rt.proxiedTotal.Load())
	counter("emprofd_fleet_proxy_errors_total", "Proxied requests that failed to reach their shard.", rt.proxyErrors.Load())
	counter("emprofd_fleet_deprecated_route_hits_total", "Router requests served on deprecated unversioned route aliases.", rt.deprecatedHits.Load())
	fmt.Fprintf(w, "# HELP emprofd_fleet_shard_up Shard liveness, by shard.\n# TYPE emprofd_fleet_shard_up gauge\n")
	for _, s := range shards {
		up := 1
		if rt.isDown(s) {
			up = 0
		}
		fmt.Fprintf(w, "emprofd_fleet_shard_up{shard=%q} %d\n", s, up)
	}
	fmt.Fprintf(w, "# HELP emprofd_fleet_shard_sessions_active Open sessions, by shard.\n# TYPE emprofd_fleet_shard_sessions_active gauge\n")
	for i, s := range shards {
		fmt.Fprintf(w, "emprofd_fleet_shard_sessions_active{shard=%q} %d\n", s, perShardActive[i])
	}
}

// writeAggregated merges Prometheus text expositions by summing series
// with identical identity (name + labels), preserving first-seen order
// and each series' first HELP/TYPE comments. It returns every shard's
// emprofd_sessions_active reading for the per-shard gauge.
func writeAggregated(w io.Writer, bodies []string) []int64 {
	type series struct {
		comments []string
		sum      float64
	}
	var order []string
	bySeries := map[string]*series{}
	commentsSeen := map[string]bool{} // metric name -> comments captured
	perShardActive := make([]int64, len(bodies))

	for i, body := range bodies {
		var pending []string
		for _, line := range strings.Split(body, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				pending = append(pending, line)
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp <= 0 {
				pending = nil
				continue
			}
			key, valStr := line[:sp], line[sp+1:]
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				pending = nil
				continue
			}
			name := key
			if j := strings.IndexByte(name, '{'); j >= 0 {
				name = name[:j]
			}
			if name == "emprofd_sessions_active" {
				perShardActive[i] = int64(v)
			}
			s := bySeries[key]
			if s == nil {
				s = &series{}
				if !commentsSeen[name] {
					commentsSeen[name] = true
					s.comments = pending
				}
				bySeries[key] = s
				order = append(order, key)
			}
			s.sum += v
			pending = nil
		}
	}
	for _, key := range order {
		s := bySeries[key]
		for _, c := range s.comments {
			fmt.Fprintln(w, c)
		}
		fmt.Fprintf(w, "%s %s\n", key, formatSample(s.sum))
	}
	return perShardActive
}

// formatSample renders an aggregated sample: integral values (the
// common case — counters and gauges are int64 on the shards) print as
// integers so the output stays grep-able; anything else falls back to
// shortest float form.
func formatSample(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
