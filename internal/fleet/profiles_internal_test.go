package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"emprof/internal/core"
	"emprof/internal/service"
)

// TestProfilesFanInCutsAtGap pins the fan-in's discontinuity cut. When
// the caller passes no limit=, each shard still caps its fragment at the
// store's default page size; the router must not merge a later shard's
// higher-index windows past the truncated shard's cap — that would set
// NextAfter beyond the capped shard's remaining windows and strand them
// behind the cursor forever. The page has to end at the gap, with
// NextAfter pointing the documented "pass next_after as after=" loop
// back into it.
func TestProfilesFanInCutsAtGap(t *testing.T) {
	win := func(i int64) core.ProfileWindow {
		const w = 1e-3
		return core.ProfileWindow{Index: i, StartS: float64(i) * w, EndS: float64(i+1) * w}
	}
	// Shard A holds windows 0..4 but serves at most 3 per page — the
	// shape of a store enforcing its default limit on an unbounded query.
	shardA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		after := int64(-1)
		if raw := r.URL.Query().Get("after"); raw != "" {
			v, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad after=%q", raw)
				return
			}
			after = v
		}
		resp := service.ProfilesResponse{ID: "s1", State: "detached", Windows: []core.ProfileWindow{}, LatestIndex: 4}
		for i := after + 1; i <= 4 && len(resp.Windows) < 3; i++ {
			resp.Windows = append(resp.Windows, win(i))
		}
		if n := len(resp.Windows); n > 0 && resp.Windows[n-1].Index < 4 {
			resp.More, resp.NextAfter = true, resp.Windows[n-1].Index
		}
		writeJSON(w, http.StatusOK, &resp)
	}))
	defer shardA.Close()
	// Shard B holds the post-hand-off tail 5..7, well within its page.
	shardB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		after := int64(-1)
		if raw := r.URL.Query().Get("after"); raw != "" {
			after, _ = strconv.ParseInt(raw, 10, 64)
		}
		resp := service.ProfilesResponse{ID: "s1", State: "detached", Windows: []core.ProfileWindow{}, LatestIndex: 7}
		for i := int64(5); i <= 7; i++ {
			if i > after {
				resp.Windows = append(resp.Windows, win(i))
			}
		}
		writeJSON(w, http.StatusOK, &resp)
	}))
	defer shardB.Close()

	rt, err := NewRouter(Config{Shards: []string{shardA.URL, shardB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	h := rt.Handler()
	getPage := func(query string) service.ProfilesResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions/s1/profiles"+query, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("fan-in%s: HTTP %d: %s", query, rec.Code, rec.Body)
		}
		var resp service.ProfilesResponse
		if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	first := getPage("")
	if n := len(first.Windows); n != 3 || first.Windows[n-1].Index != 2 {
		t.Fatalf("first page spans windows %v, want exactly 0..2 (cut at shard A's cap)", first.Windows)
	}
	if !first.More || first.NextAfter != 2 {
		t.Fatalf("first page more=%v next_after=%d, want more with next_after=2", first.More, first.NextAfter)
	}

	// The cursor loop must then walk the complete gapless sequence.
	all := first.Windows
	for page := first; page.More; {
		page = getPage("?after=" + strconv.FormatInt(page.NextAfter, 10))
		all = append(all, page.Windows...)
		if len(all) > 8 {
			t.Fatalf("cursor loop runs past the sequence: %d windows", len(all))
		}
	}
	if len(all) != 8 {
		t.Fatalf("cursor walk collected %d windows, want 8", len(all))
	}
	for i, w := range all {
		if w.Index != int64(i) {
			t.Fatalf("cursor walk gapped at position %d: index %d", i, w.Index)
		}
	}
}
