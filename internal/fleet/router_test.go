package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"emprof"
	"emprof/internal/fleet"
	"emprof/internal/service"
)

func fleetCapture(t *testing.T, seed uint64) *emprof.Capture {
	t.Helper()
	wl, err := emprof.Microbenchmark(96, 8)
	if err != nil {
		t.Fatal(err)
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), wl, emprof.CaptureOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return run.Capture
}

func startFleet(t *testing.T, n int) *fleet.LocalFleet {
	t.Helper()
	f, err := fleet.StartLocal(n, service.Config{}, fleet.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestFleetEndToEndHandoff is the acceptance test for the fleet: a
// capture streamed through the router, with the owning shard removed
// from the ring mid-stream, must finalize on the new owner with a
// profile bit-identical to emprof.Analyze over the same capture.
func TestFleetEndToEndHandoff(t *testing.T) {
	capture := fleetCapture(t, 4)
	want, err := emprof.Analyze(capture, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	f := startFleet(t, 2)
	client := emprof.NewClient(f.RouterURL)
	client.ChunkSamples = len(capture.Samples)/6 + 1
	client.RetryBaseDelay = 1
	ctx := context.Background()

	id, err := client.CreateSession(ctx, emprof.SessionSpec{
		SampleRate: capture.SampleRate, ClockHz: capture.ClockHz, Device: "olimex",
	})
	if err != nil {
		t.Fatal(err)
	}
	owner := f.Router.Ring().Owner(id)
	ownerIdx := -1
	for i, u := range f.ShardURLs {
		if u == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %s not a shard", owner)
	}
	if n := f.Shards()[ownerIdx].Registry().ActiveSessions(); n != 1 {
		t.Fatalf("owner shard holds %d sessions, want 1", n)
	}

	cut := len(capture.Samples) / 2
	head := &emprof.Capture{Samples: capture.Samples[:cut], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
	tail := &emprof.Capture{Samples: capture.Samples[cut:], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
	if err := client.StreamCapture(ctx, id, head); err != nil {
		t.Fatal(err)
	}

	// Force the hand-off: take the owner out of the ring. The session
	// must stream-move to the surviving shard.
	if err := f.Router.RemoveShard(owner); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if n := f.Shards()[ownerIdx].Registry().ActiveSessions(); n != 0 {
		t.Fatalf("removed shard still holds %d sessions", n)
	}
	if n := f.Shards()[1-ownerIdx].Registry().ActiveSessions(); n != 1 {
		t.Fatalf("surviving shard holds %d sessions, want 1", n)
	}

	if err := client.StreamCapture(ctx, id, tail); err != nil {
		t.Fatal(err)
	}
	got, err := client.Finalize(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet profile differs from batch Analyze:\n got: misses=%d stalls=%d\nwant: misses=%d stalls=%d",
			got.Misses, len(got.Stalls), want.Misses, len(want.Stalls))
	}

	// The fleet observed exactly one move.
	var st fleet.FleetStatus
	getJSON(t, f.RouterURL+"/v1/fleet", &st)
	if st.SessionsMoved != 1 || st.MovesFailed != 0 {
		t.Fatalf("fleet status: moved=%d failed=%d, want 1/0", st.SessionsMoved, st.MovesFailed)
	}
	if len(st.Shards) != 1 {
		t.Fatalf("ring still has %d shards, want 1", len(st.Shards))
	}
}

// TestFleetRebalanceUnderLoad streams many sessions concurrently while
// the fleet grows by one shard mid-flight. Zero sessions may be lost,
// zero samples double-ingested: every finalized profile must be
// bit-identical to the batch analysis of its capture.
func TestFleetRebalanceUnderLoad(t *testing.T) {
	capture := fleetCapture(t, 9)
	want, err := emprof.Analyze(capture, emprof.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	f := startFleet(t, 2)
	const sessions = 8
	ctx := context.Background()
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	var once sync.Once
	rebalance := make(chan struct{})
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := emprof.NewClient(f.RouterURL)
			client.ChunkSamples = len(capture.Samples)/10 + 1
			client.RetryBaseDelay = 1
			id, err := client.CreateSession(ctx, emprof.SessionSpec{
				SampleRate: capture.SampleRate, ClockHz: capture.ClockHz,
			})
			if err != nil {
				errs[i] = err
				return
			}
			cut := len(capture.Samples) / 2
			head := &emprof.Capture{Samples: capture.Samples[:cut], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
			tail := &emprof.Capture{Samples: capture.Samples[cut:], SampleRate: capture.SampleRate, ClockHz: capture.ClockHz}
			if err := client.StreamCapture(ctx, id, head); err != nil {
				errs[i] = fmt.Errorf("head: %w", err)
				return
			}
			// First session to reach midpoint triggers the membership
			// change; everyone else keeps streaming through it.
			once.Do(func() {
				if _, err := f.AddShard(); err != nil {
					errs[i] = fmt.Errorf("add shard: %w", err)
				}
				close(rebalance)
			})
			<-rebalance
			if err := client.StreamCapture(ctx, id, tail); err != nil {
				errs[i] = fmt.Errorf("tail: %w", err)
				return
			}
			got, err := client.Finalize(ctx, id)
			if err != nil {
				errs[i] = fmt.Errorf("finalize: %w", err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs[i] = fmt.Errorf("profile diverged after rebalance")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	// Nothing lost: all sessions finalized, none left anywhere.
	for i, s := range f.Shards() {
		if n := s.Registry().ActiveSessions(); n != 0 {
			t.Fatalf("shard %d still holds %d sessions", i, n)
		}
	}
	// No sample double-ingested anywhere: the fleet-wide ingest counter
	// equals sessions × samples exactly (hand-off replays nothing; the
	// importing shard's counter only advances for post-import pushes).
	total := int64(0)
	for _, s := range f.Shards() {
		total += s.Registry().Metrics().SamplesIngested.Load()
	}
	if wantTotal := int64(sessions * len(capture.Samples)); total != wantTotal {
		t.Fatalf("fleet ingested %d samples, want exactly %d", total, wantTotal)
	}
}

// TestFleetCreateDuringRebalance hammers session creation while
// membership changes are in flight, then requires every created session
// to be reachable through the router. A create must either complete
// before the rebalance lists its shard (and be moved with the rest) or
// resolve its owner from the post-swap ring — a create that resolved on
// the old ring but landed after the listing would be stranded on a
// shard the ring no longer points at.
func TestFleetCreateDuringRebalance(t *testing.T) {
	f := startFleet(t, 2)
	ctx := context.Background()
	stop := make(chan struct{})
	var mu sync.Mutex
	var ids []string
	var createErr error
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := emprof.NewClient(f.RouterURL)
			client.RetryBaseDelay = 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := client.CreateSession(ctx, emprof.SessionSpec{SampleRate: 40e6, ClockHz: 1e9})
				mu.Lock()
				if err != nil {
					createErr = err
					mu.Unlock()
					return
				}
				ids = append(ids, id)
				mu.Unlock()
			}
		}()
	}
	// Let creates flow, then force two ring swaps underneath them.
	time.Sleep(20 * time.Millisecond)
	url, err := f.AddShard()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Router.RemoveShard(url); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if createErr != nil {
		t.Fatalf("create during rebalance: %v", createErr)
	}
	if len(ids) == 0 {
		t.Fatal("no sessions created")
	}
	client := emprof.NewClient(f.RouterURL)
	client.RetryBaseDelay = 1
	for _, id := range ids {
		if _, err := client.Profile(ctx, id); err != nil {
			t.Fatalf("session %s unreachable after rebalance: %v", id, err)
		}
	}
}

// TestFleetListAndMetricsAggregation checks the fan-out views: the
// router's session list is the union of the shards' lists, and its
// /metrics sums per-shard counters into fleet-wide series.
func TestFleetListAndMetricsAggregation(t *testing.T) {
	f := startFleet(t, 3)
	client := emprof.NewClient(f.RouterURL)
	ctx := context.Background()

	const n = 12
	ids := make([]string, n)
	for i := range ids {
		id, err := client.CreateSession(ctx, emprof.SessionSpec{SampleRate: 40e6, ClockHz: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := client.PushSamples(ctx, id, make([]float64, 50)); err != nil {
			t.Fatal(err)
		}
	}

	list, err := client.ListSessions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != n {
		t.Fatalf("router lists %d sessions, want %d", len(list), n)
	}
	perShard := 0
	for _, s := range f.Shards() {
		perShard += s.Registry().ActiveSessions()
	}
	if perShard != n {
		t.Fatalf("shards hold %d sessions, want %d", perShard, n)
	}

	resp, err := http.Get(f.RouterURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	if v := metricValue(t, body, "emprofd_sessions_active"); v != n {
		t.Fatalf("aggregated sessions_active = %d, want %d", v, n)
	}
	if v := metricValue(t, body, "emprofd_samples_ingested_total"); v != n*50 {
		t.Fatalf("aggregated samples_ingested = %d, want %d", v, n*50)
	}
	if v := metricValue(t, body, "emprofd_fleet_shards"); v != 3 {
		t.Fatalf("fleet shards gauge = %d, want 3", v)
	}
	// Per-shard session gauges reconcile with the aggregate.
	re := regexp.MustCompile(`(?m)^emprofd_fleet_shard_sessions_active\{shard="[^"]+"\} (\d+)$`)
	sum := 0
	matches := re.FindAllStringSubmatch(body, -1)
	if len(matches) != 3 {
		t.Fatalf("found %d per-shard session gauges, want 3", len(matches))
	}
	for _, m := range matches {
		v, _ := strconv.Atoi(m[1])
		sum += v
	}
	if sum != n {
		t.Fatalf("per-shard gauges sum to %d, want %d", sum, n)
	}
}

// TestFleetAdminRoutes drives membership over HTTP the way an operator
// would, and checks misuse answers.
func TestFleetAdminRoutes(t *testing.T) {
	f := startFleet(t, 2)
	victim := f.ShardURLs[0]

	code, body := postJSON(t, f.RouterURL+"/v1/fleet/shards/remove", fleet.ShardRequest{URL: victim})
	if code != http.StatusOK {
		t.Fatalf("remove shard: HTTP %d: %s", code, body)
	}
	var st fleet.FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 1 || st.Shards[0].URL == victim {
		t.Fatalf("ring after remove: %+v", st.Shards)
	}
	// Removing it again is an error, not a crash.
	if code, _ := postJSON(t, f.RouterURL+"/v1/fleet/shards/remove", fleet.ShardRequest{URL: victim}); code == http.StatusOK {
		t.Fatal("double remove accepted")
	}
	// Adding it back rejoins the ring.
	if code, body := postJSON(t, f.RouterURL+"/v1/fleet/shards", fleet.ShardRequest{URL: victim}); code != http.StatusOK {
		t.Fatalf("re-add shard: HTTP %d: %s", code, body)
	}
	getJSON(t, f.RouterURL+"/v1/fleet", &st)
	if len(st.Shards) != 2 {
		t.Fatalf("ring after re-add has %d shards", len(st.Shards))
	}
}

func metricValue(t *testing.T, body, name string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s absent from aggregated exposition", name)
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
