package fleet

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		// Hex-ish IDs shaped like newSessionID output.
		ids[i] = fmt.Sprintf("%032x", i*0x9e3779b9+7)
	}
	return ids
}

func shardNames(n int) []string {
	shards := make([]string, n)
	for i := range shards {
		shards[i] = fmt.Sprintf("http://10.0.0.%d:7979", i+1)
	}
	return shards
}

// TestRingBalance is the load-distribution property: for every fleet
// size 1..64, hashing 10k session IDs must spread within a constant
// factor of the mean — no shard starves, none melts.
func TestRingBalance(t *testing.T) {
	ids := ringIDs(10000)
	for n := 1; n <= 64; n++ {
		ring := NewRing(shardNames(n), 0, 42)
		load := map[string]int{}
		for _, id := range ids {
			load[ring.Owner(id)]++
		}
		if len(load) != n {
			t.Fatalf("n=%d: only %d shards received load", n, len(load))
		}
		mean := float64(len(ids)) / float64(n)
		for s, c := range load {
			if r := float64(c) / mean; r > 1.45 || r < 0.55 {
				t.Fatalf("n=%d: shard %s holds %d of %d IDs (%.2fx mean)", n, s, c, len(ids), r)
			}
		}
	}
}

// TestRingMinimalDisruption is the membership-change property: growing
// the fleet from n to n+1 shards moves close to K/(n+1) of K sessions
// — and every move lands on the new shard; removing a shard moves
// exactly its own sessions and nobody else's.
func TestRingMinimalDisruption(t *testing.T) {
	ids := ringIDs(10000)
	for _, n := range []int{1, 2, 3, 7, 16, 63} {
		shards := shardNames(n + 1)
		small := NewRing(shards[:n], 0, 42)
		grown, err := small.With(shards[n])
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, id := range ids {
			before, after := small.Owner(id), grown.Owner(id)
			if before != after {
				moved++
				if after != shards[n] {
					t.Fatalf("n=%d: id moved %s -> %s, not to the new shard", n, before, after)
				}
			}
		}
		expect := float64(len(ids)) / float64(n+1)
		if f := float64(moved); f > 2*expect || (n > 1 && f < expect/2) {
			t.Fatalf("n=%d->%d: moved %d IDs, expected about %.0f", n, n+1, moved, expect)
		}

		// Removal is the exact inverse: only the removed shard's IDs move.
		shrunk, err := grown.Without(shards[n])
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if shrunk.Owner(id) != small.Owner(id) {
				t.Fatalf("n=%d: remove is not the inverse of add for id %s", n, id)
			}
			if grown.Owner(id) != shards[n] && shrunk.Owner(id) != grown.Owner(id) {
				t.Fatalf("n=%d: removing %s moved a session it did not own", n, shards[n])
			}
		}
	}
}

// TestRingDeterminism: ownership depends only on (shard set, vnodes,
// seed) — not on insertion order or which replica computes it.
func TestRingDeterminism(t *testing.T) {
	shards := shardNames(5)
	reversed := make([]string, len(shards))
	for i, s := range shards {
		reversed[len(shards)-1-i] = s
	}
	a := NewRing(shards, 64, 99)
	b := NewRing(reversed, 64, 99)
	other := NewRing(shards, 64, 100)
	diff := 0
	for _, id := range ringIDs(2000) {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("shard order changed ownership of %s", id)
		}
		if a.Owner(id) != other.Owner(id) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed does not influence placement")
	}
}

// TestRingEdges covers the degenerate and error paths.
func TestRingEdges(t *testing.T) {
	empty := NewRing(nil, 0, 1)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	one := NewRing([]string{"a", "a", "a"}, 0, 1)
	if got := one.Shards(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("duplicates not collapsed: %v", got)
	}
	if one.Owner("anything") != "a" {
		t.Fatal("single-shard ring must own everything")
	}
	if _, err := one.With("a"); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if _, err := one.With(""); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := one.Without("b"); err == nil {
		t.Fatal("removing a non-member accepted")
	}
}
