package dsp

import (
	"math"
	"testing"
)

// rms measures a tone through a filter after settling.
func rmsThrough(process func(float64) float64, freq float64, n int) float64 {
	var sumSq float64
	count := 0
	for i := 0; i < n; i++ {
		y := process(math.Sin(2 * math.Pi * freq * float64(i)))
		if i >= n/3 {
			sumSq += y * y
			count++
		}
	}
	return math.Sqrt(sumSq / float64(count))
}

func TestLowpassBiquadResponse(t *testing.T) {
	const fc = 0.05
	pass := rmsThrough(LowpassBiquad(fc).Process, 0.005, 4000)
	stop := rmsThrough(LowpassBiquad(fc).Process, 0.25, 4000)
	want := 1 / math.Sqrt2
	if math.Abs(pass-want) > 0.05 {
		t.Fatalf("passband RMS %v, want ~%v", pass, want)
	}
	if stop > 0.05*pass {
		t.Fatalf("stopband RMS %v not attenuated (pass %v)", stop, pass)
	}
}

func TestHighpassBiquadResponse(t *testing.T) {
	const fc = 0.05
	stop := rmsThrough(HighpassBiquad(fc).Process, 0.005, 4000)
	pass := rmsThrough(HighpassBiquad(fc).Process, 0.25, 4000)
	if stop > 0.12*pass {
		t.Fatalf("low-frequency RMS %v not attenuated (pass %v)", stop, pass)
	}
}

func TestLowpassBiquadDCGain(t *testing.T) {
	f := LowpassBiquad(0.1)
	var y float64
	for i := 0; i < 2000; i++ {
		y = f.Process(1)
	}
	if math.Abs(y-1) > 1e-6 {
		t.Fatalf("DC gain %v, want 1", y)
	}
}

func TestBiquadReset(t *testing.T) {
	f := LowpassBiquad(0.1)
	f.Process(100)
	f.Reset()
	a := f.Process(1)
	g := LowpassBiquad(0.1)
	b := g.Process(1)
	if a != b {
		t.Fatalf("reset state differs: %v vs %v", a, b)
	}
}

func TestBiquadBlock(t *testing.T) {
	f := LowpassBiquad(0.1)
	out := f.ProcessBlock([]float64{1, 1, 1}, nil)
	if len(out) != 3 || out[0] == 0 {
		t.Fatalf("block output %v", out)
	}
}

func TestBiquadCutoffValidation(t *testing.T) {
	for _, fc := range []float64{0, 0.5, 0.7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cutoff %v accepted", fc)
				}
			}()
			LowpassBiquad(fc)
		}()
	}
}

func TestDCBlockerRemovesMean(t *testing.T) {
	d := NewDCBlocker(0.995)
	// Constant input: output must stay ~0 from the very first sample.
	for i := 0; i < 100; i++ {
		if y := d.Process(5); math.Abs(y) > 1e-9 {
			t.Fatalf("constant input leaked %v at sample %d", y, i)
		}
	}
	// A tone riding on DC keeps its AC component.
	d.Reset()
	var sumSq float64
	n := 0
	for i := 0; i < 6000; i++ {
		y := d.Process(3 + math.Sin(2*math.Pi*0.05*float64(i)))
		if i > 2000 {
			sumSq += y * y
			n++
		}
	}
	rms := math.Sqrt(sumSq / float64(n))
	if math.Abs(rms-1/math.Sqrt2) > 0.08 {
		t.Fatalf("AC RMS through blocker %v, want ~0.707", rms)
	}
}

func TestDCBlockerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pole 1 accepted")
		}
	}()
	NewDCBlocker(1)
}
