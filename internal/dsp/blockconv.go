package dsp

import "fmt"

// FFTTapThreshold is the tap count at which NewBlockFIR switches from
// direct flat-array convolution to FFT overlap-save. Direct convolution is
// O(taps) per sample; overlap-save is O(log fftLen) amortised, which wins
// once the tap count clears the FFT's constant factor. 64 is conservative
// for this codebase's tap counts (the receiver RBW filter has 9 taps and
// always takes the exact direct path; decimator anti-aliasing filters reach
// 8·factor+1).
const FFTTapThreshold = 64

// BlockFilter is a streaming filter with a block interface: ProcessBlock
// filters in into out (allocated when nil, may alias in) carrying state
// across calls, and Reset clears that state. *FIR and *OverlapSave both
// implement it.
type BlockFilter interface {
	ProcessBlock(in, out []float64) []float64
	Reset()
}

// NewBlockFIR returns a streaming block convolver for the given taps:
// an exact direct-form *FIR below FFTTapThreshold taps, an *OverlapSave
// FFT convolver at or above it. The direct path is bit-identical to a
// per-sample Process loop; the FFT path agrees to floating-point rounding
// (relative error ~1e-12). Callers that need bit-exactness regardless of
// tap count should construct NewFIR directly.
func NewBlockFIR(taps []float64) BlockFilter {
	if len(taps) >= FFTTapThreshold {
		return NewOverlapSave(taps)
	}
	return NewFIR(taps)
}

// OverlapSave convolves a streamed signal with a fixed tap vector using the
// overlap-save method: each FFT block reuses the last taps-1 inputs as
// overlap, multiplies in the frequency domain against the pre-transformed
// taps, and keeps only the alias-free output region. State (the overlap
// history) carries across ProcessBlock calls, so arbitrary block splits
// produce the same stream.
type OverlapSave struct {
	taps []float64
	m    int          // FFT length (power of two)
	step int          // alias-free outputs per transform: m - len(taps) + 1
	h    []complex128 // FFT of the zero-padded taps
	hist []float64    // last len(taps)-1 inputs, chronological
	buf  []complex128 // reusable transform workspace
}

// NewOverlapSave builds an overlap-save convolver for taps. The FFT length
// is chosen at ≥4× the tap count (minimum 256) so at least three quarters
// of every transform yields usable output.
func NewOverlapSave(taps []float64) *OverlapSave {
	if len(taps) == 0 {
		panic("dsp: overlap-save with no taps")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	m := NextPow2(4 * len(t))
	if m < 256 {
		m = 256
	}
	h := make([]complex128, m)
	for i, v := range t {
		h[i] = complex(v, 0)
	}
	FFT(h)
	return &OverlapSave{
		taps: t,
		m:    m,
		step: m - len(t) + 1,
		h:    h,
		hist: make([]float64, len(t)-1),
		buf:  make([]complex128, m),
	}
}

// Taps returns a copy of the filter coefficients.
func (o *OverlapSave) Taps() []float64 {
	t := make([]float64, len(o.taps))
	copy(t, o.taps)
	return t
}

// FFTLen returns the transform length used per block.
func (o *OverlapSave) FFTLen() int { return o.m }

// Reset clears the overlap history.
func (o *OverlapSave) Reset() {
	for i := range o.hist {
		o.hist[i] = 0
	}
}

// ProcessBlock convolves in with the taps, writing len(in) outputs into out
// (allocated if nil or too small; may alias in). Equivalent to streaming
// FIR filtering up to floating-point rounding.
func (o *OverlapSave) ProcessBlock(in, out []float64) []float64 {
	n := len(in)
	if out == nil || cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if n == 0 {
		return out
	}
	h := len(o.hist)
	sp := getScratch(h + n)
	ext := *sp
	copy(ext, o.hist)
	copy(ext[h:], in)
	for off := 0; off < n; off += o.step {
		l := o.step
		if off+l > n {
			l = n - off
		}
		seg := ext[off : off+h+l]
		for i, v := range seg {
			o.buf[i] = complex(v, 0)
		}
		for i := len(seg); i < o.m; i++ {
			o.buf[i] = 0
		}
		FFT(o.buf)
		for i := range o.buf {
			o.buf[i] *= o.h[i]
		}
		IFFT(o.buf)
		// The first h outputs of each block are circularly aliased; the
		// next l are the valid linear-convolution samples.
		for i := 0; i < l; i++ {
			out[off+i] = real(o.buf[h+i])
		}
	}
	copy(o.hist, ext[n:])
	putScratch(sp)
	return out
}

// String describes the convolver configuration.
func (o *OverlapSave) String() string {
	return fmt.Sprintf("OverlapSave{taps: %d, fft: %d, step: %d}", len(o.taps), o.m, o.step)
}
