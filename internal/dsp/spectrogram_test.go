package dsp

import (
	"math"
	"testing"
)

func TestWindowShapes(t *testing.T) {
	for _, c := range []struct {
		name string
		w    []float64
		ends float64
	}{
		{"hann", Hann(33), 0},
		{"hamming", Hamming(33), 0.08},
		{"blackman", Blackman(33), 0},
	} {
		n := len(c.w)
		if n != 33 {
			t.Fatalf("%s length %d", c.name, n)
		}
		if math.Abs(c.w[0]-c.ends) > 1e-9 || math.Abs(c.w[n-1]-c.ends) > 1e-9 {
			t.Errorf("%s endpoints %v/%v, want %v", c.name, c.w[0], c.w[n-1], c.ends)
		}
		// Symmetric, peak at the centre.
		for i := 0; i < n/2; i++ {
			if math.Abs(c.w[i]-c.w[n-1-i]) > 1e-9 {
				t.Errorf("%s asymmetric at %d", c.name, i)
			}
		}
		if math.Abs(c.w[n/2]-1) > 1e-9 {
			t.Errorf("%s centre %v, want 1", c.name, c.w[n/2])
		}
	}
	if w := Rectangular(5); w[0] != 1 || w[4] != 1 {
		t.Error("rectangular window must be all ones")
	}
	if w := Hann(1); w[0] != 1 {
		t.Error("single-point window must be 1")
	}
}

func TestWindowPower(t *testing.T) {
	if got := WindowPower(Rectangular(8)); !almostEqual(got, 8, 1e-12) {
		t.Fatalf("rectangular power %v, want 8", got)
	}
}

func TestSTFTGeometry(t *testing.T) {
	x := make([]float64, 1000)
	sg := STFT(x, 1000, 128, 64)
	wantFrames := (1000-128)/64 + 1
	if sg.NumFrames() != wantFrames {
		t.Fatalf("frames %d, want %d", sg.NumFrames(), wantFrames)
	}
	if got := sg.FrameTime(0); !almostEqual(got, 64.0/1000, 1e-12) {
		t.Fatalf("frame 0 time %v", got)
	}
	if got := sg.BinFrequency(1); !almostEqual(got, 1000.0/128, 1e-12) {
		t.Fatalf("bin 1 frequency %v", got)
	}
}

func TestSTFTDetectsFrequencyChange(t *testing.T) {
	// First half: 50 Hz tone; second half: 200 Hz tone at fs = 1 kHz.
	const fs = 1000.0
	n := 2048
	x := make([]float64, n)
	for i := range x {
		f := 50.0
		if i >= n/2 {
			f = 200.0
		}
		x[i] = math.Sin(2 * math.Pi * f * float64(i) / fs)
	}
	sg := STFT(x, fs, 256, 128)
	peak := func(frame []float64) int {
		best := 1
		for k := 2; k < len(frame); k++ {
			if frame[k] > frame[best] {
				best = k
			}
		}
		return best
	}
	early := peak(sg.Frames[0])
	late := peak(sg.Frames[sg.NumFrames()-1])
	if fe := sg.BinFrequency(early); math.Abs(fe-50) > 10 {
		t.Fatalf("early peak at %v Hz, want ~50", fe)
	}
	if fl := sg.BinFrequency(late); math.Abs(fl-200) > 10 {
		t.Fatalf("late peak at %v Hz, want ~200", fl)
	}
}

func TestNormalizeFrames(t *testing.T) {
	sg := &Spectrogram{Frames: [][]float64{{1, 3}, {0, 0}, {10, 10}}}
	sg.NormalizeFrames()
	if sum := sg.Frames[0][0] + sg.Frames[0][1]; !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("frame 0 sum %v, want 1", sum)
	}
	// All-zero frames stay zero rather than dividing by zero.
	if sg.Frames[1][0] != 0 {
		t.Fatal("zero frame modified")
	}
}

func TestSpectralDistance(t *testing.T) {
	a := []float64{1, 2, 3}
	if d := SpectralDistance(a, a); d != 0 {
		t.Fatalf("self distance %v, want 0", d)
	}
	b := []float64{1, 2, 30}
	c := []float64{1, 2, 3000}
	if SpectralDistance(a, b) >= SpectralDistance(a, c) {
		t.Fatal("distance must grow with spectral difference")
	}
	if d1, d2 := SpectralDistance(a, b), SpectralDistance(b, a); !almostEqual(d1, d2, 1e-12) {
		t.Fatal("distance must be symmetric")
	}
}

func TestMeanSpectrum(t *testing.T) {
	m := MeanSpectrum([][]float64{{1, 2}, {3, 4}})
	if !almostEqual(m[0], 2, 1e-12) || !almostEqual(m[1], 3, 1e-12) {
		t.Fatalf("mean %v, want [2 3]", m)
	}
	if MeanSpectrum(nil) != nil {
		t.Fatal("mean of no frames must be nil")
	}
}
