package dsp

import (
	"math"
	"testing"
)

// blockRand is a tiny deterministic generator for test signals (kept local
// so dsp tests do not depend on internal/sim).
type blockRand uint64

func (r *blockRand) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(int32(uint64(*r)>>33)) / (1 << 24)
}

func randSignal(seed uint64, n int) []float64 {
	r := blockRand(seed)
	s := make([]float64, n)
	for i := range s {
		s[i] = r.next()
	}
	return s
}

// splitSizes turns a signal into a deterministic sequence of block lengths
// covering empty blocks, size-1 blocks, and large uneven chunks.
func splitSizes(seed uint64, total int) []int {
	r := blockRand(seed)
	var sizes []int
	left := total
	for left > 0 {
		c := int(uint64(r.next()*1e9)) % 17 // 0..16, including empty blocks
		if c > left {
			c = left
		}
		sizes = append(sizes, c)
		left -= c
	}
	return sizes
}

// TestFIRProcessBlockBitIdentical drives the same signal through a scalar
// Process loop and through ProcessBlock with many different block splits;
// every output must match bit for bit, for every tap count, including when
// Process and ProcessBlock calls interleave on one filter.
func TestFIRProcessBlockBitIdentical(t *testing.T) {
	for _, taps := range [][]float64{
		{1.5},
		{0.25, 0.5},
		{0.25, 0.5, -0.125},
		LowpassFIR(0.3, 9).Taps(),
		LowpassFIR(0.1, 31).Taps(),
		LowpassFIR(0.05, 64).Taps(),
	} {
		in := randSignal(uint64(len(taps)), 700)
		ref := NewFIR(taps)
		want := make([]float64, len(in))
		for i, x := range in {
			want[i] = ref.Process(x)
		}
		for split := uint64(1); split <= 5; split++ {
			f := NewFIR(taps)
			var got []float64
			pos := 0
			for _, sz := range splitSizes(split, len(in)) {
				blk := in[pos : pos+sz]
				if sz%2 == 1 {
					// Odd blocks go through the scalar path to prove
					// state interchanges exactly.
					for _, x := range blk {
						got = append(got, f.Process(x))
					}
				} else {
					got = append(got, f.ProcessBlock(blk, nil)...)
				}
				pos += sz
			}
			if len(got) != len(want) {
				t.Fatalf("taps=%d split=%d: %d outputs, want %d", len(taps), split, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("taps=%d split=%d sample %d: got %v, want %v (bitwise)",
						len(taps), split, i, got[i], want[i])
				}
			}
		}
	}
}

// TestProcessBlockEdgeCases is the table-driven aliasing / empty-input
// audit across every ProcessBlock implementation in the package.
func TestProcessBlockEdgeCases(t *testing.T) {
	taps := []float64{0.25, 0.5, -0.125, 0.0625, 0.5}
	in := randSignal(7, 64)

	t.Run("fir-empty", func(t *testing.T) {
		f := NewFIR(taps)
		f.Process(1)
		if out := f.ProcessBlock(nil, nil); len(out) != 0 {
			t.Fatalf("empty block produced %d outputs", len(out))
		}
		// State must be untouched by the empty call.
		g := NewFIR(taps)
		g.Process(1)
		if a, b := f.Process(2), g.Process(2); a != b {
			t.Fatalf("empty block disturbed state: %v vs %v", a, b)
		}
	})
	t.Run("fir-aliased", func(t *testing.T) {
		f, g := NewFIR(taps), NewFIR(taps)
		buf := append([]float64(nil), in...)
		want := g.ProcessBlock(in, nil)
		got := f.ProcessBlock(buf, buf)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("aliased output %d: got %v, want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("fir-out-too-small", func(t *testing.T) {
		f, g := NewFIR(taps), NewFIR(taps)
		small := make([]float64, 3)
		got := f.ProcessBlock(in, small)
		want := g.ProcessBlock(in, nil)
		if len(got) != len(in) {
			t.Fatalf("grown output has %d samples, want %d", len(got), len(in))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("grown output %d: got %v, want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("movavg-empty", func(t *testing.T) {
		m := NewMovingAverage(4)
		m.Process(3)
		if out := m.ProcessBlock(nil, nil); len(out) != 0 {
			t.Fatalf("empty block produced %d outputs", len(out))
		}
		n := NewMovingAverage(4)
		n.Process(3)
		if a, b := m.Process(5), n.Process(5); a != b {
			t.Fatalf("empty block disturbed state: %v vs %v", a, b)
		}
	})
	t.Run("movavg-aliased", func(t *testing.T) {
		m, n := NewMovingAverage(5), NewMovingAverage(5)
		buf := append([]float64(nil), in...)
		want := n.ProcessBlock(in, nil)
		got := m.ProcessBlock(buf, buf)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("aliased output %d: got %v, want %v", i, got[i], want[i])
			}
		}
	})
	t.Run("decimator-empty", func(t *testing.T) {
		d := NewDecimator(3)
		d.Process(1)
		if out := d.ProcessBlock(nil, nil); len(out) != 0 {
			t.Fatalf("empty block produced %d outputs", len(out))
		}
		if _, ok := d.Process(1); !ok {
			// phase was 1 after the first Process; second sample must not
			// emit, third must.
			if _, ok := d.Process(1); !ok {
				t.Fatal("decimator phase lost by empty block")
			}
		} else {
			t.Fatal("decimator emitted early after empty block")
		}
	})
	t.Run("decimator-ragged", func(t *testing.T) {
		// len(in) % factor != 0 split unevenly across calls must equal the
		// scalar stream exactly.
		const factor = 4
		d, ref := NewDecimator(factor), NewDecimator(factor)
		sig := randSignal(9, 103) // 103 % 4 == 3
		var want []float64
		for _, x := range sig {
			if y, ok := ref.Process(x); ok {
				want = append(want, y)
			}
		}
		var got []float64
		got = d.ProcessBlock(sig[:13], got)
		got = d.ProcessBlock(sig[13:13], got)
		got = d.ProcessBlock(sig[13:70], got)
		got = d.ProcessBlock(sig[70:], got)
		if len(got) != len(want) {
			t.Fatalf("ragged blocks gave %d outputs, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ragged output %d: got %v, want %v", i, got[i], want[i])
			}
		}
	})
}

// TestMovingAverageBlockBitIdentical mirrors the FIR split test for the
// moving average, interleaving scalar and block calls.
func TestMovingAverageBlockBitIdentical(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 17} {
		in := randSignal(uint64(w)*31, 400)
		ref := NewMovingAverage(w)
		want := make([]float64, len(in))
		for i, x := range in {
			want[i] = ref.Process(x)
		}
		for split := uint64(1); split <= 5; split++ {
			m := NewMovingAverage(w)
			var got []float64
			pos := 0
			for _, sz := range splitSizes(split+100, len(in)) {
				blk := in[pos : pos+sz]
				if sz%3 == 1 {
					for _, x := range blk {
						got = append(got, m.Process(x))
					}
				} else {
					got = append(got, m.ProcessBlock(blk, nil)...)
				}
				pos += sz
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("window=%d split=%d sample %d: got %v, want %v", w, split, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDecimatorBlockBitIdentical checks block decimation across factors and
// arbitrary splits, including splits that leave the phase mid-window.
func TestDecimatorBlockBitIdentical(t *testing.T) {
	for _, factor := range []int{1, 2, 5, 8, 13} {
		in := randSignal(uint64(factor)*17, 500)
		ref := NewDecimator(factor)
		var want []float64
		for _, x := range in {
			if y, ok := ref.Process(x); ok {
				want = append(want, y)
			}
		}
		for split := uint64(1); split <= 5; split++ {
			d := NewDecimator(factor)
			var got []float64
			pos := 0
			for _, sz := range splitSizes(split+200, len(in)) {
				got = d.ProcessBlock(in[pos:pos+sz], got)
				pos += sz
			}
			if len(got) != len(want) {
				t.Fatalf("factor=%d split=%d: %d outputs, want %d", factor, split, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("factor=%d split=%d output %d: got %v, want %v", factor, split, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOverlapSaveMatchesDirect compares the FFT overlap-save convolver to
// the exact direct FIR over streaming splits, to floating-point tolerance.
func TestOverlapSaveMatchesDirect(t *testing.T) {
	for _, nt := range []int{64, 101, 257} {
		taps := LowpassFIR(0.07, nt).Taps()
		in := randSignal(uint64(nt), 3000)
		ref := NewFIR(taps)
		want := ref.ProcessBlock(in, nil)
		os := NewOverlapSave(taps)
		var got []float64
		pos := 0
		for _, sz := range splitSizes(uint64(nt)+5, len(in)) {
			got = append(got, os.ProcessBlock(in[pos:pos+sz], nil)...)
			pos += sz
		}
		if len(got) != len(want) {
			t.Fatalf("taps=%d: %d outputs, want %d", nt, len(got), len(want))
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("taps=%d output %d: got %v, want %v (|Δ|=%v)", nt, i, got[i], want[i], d)
			}
		}
	}
}

// TestOverlapSaveEdgeCases covers aliasing, empty blocks, and Reset.
func TestOverlapSaveEdgeCases(t *testing.T) {
	taps := LowpassFIR(0.1, 65).Taps()
	in := randSignal(3, 512)
	a, b := NewOverlapSave(taps), NewOverlapSave(taps)
	want := a.ProcessBlock(in, nil)
	buf := append([]float64(nil), in...)
	got := b.ProcessBlock(buf, buf)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aliased overlap-save output %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if out := a.ProcessBlock(nil, nil); len(out) != 0 {
		t.Fatalf("empty block produced %d outputs", len(out))
	}
	a.Reset()
	fresh := NewOverlapSave(taps)
	x := randSignal(4, 64)
	ra, rf := a.ProcessBlock(x, nil), fresh.ProcessBlock(x, nil)
	for i := range rf {
		if ra[i] != rf[i] {
			t.Fatalf("Reset left state behind at output %d: %v vs %v", i, ra[i], rf[i])
		}
	}
}

// TestNewBlockFIRSelectsByTapCount pins the threshold behaviour.
func TestNewBlockFIRSelectsByTapCount(t *testing.T) {
	if _, ok := NewBlockFIR(LowpassFIR(0.1, FFTTapThreshold-1).Taps()).(*FIR); !ok {
		t.Fatalf("below threshold must pick the exact direct FIR")
	}
	if _, ok := NewBlockFIR(LowpassFIR(0.1, FFTTapThreshold+1).Taps()).(*OverlapSave); !ok {
		t.Fatalf("above threshold must pick overlap-save")
	}
}

// TestLowpassFIRCached verifies that the tap cache returns equal designs
// with fully independent streaming state, and that Taps() copies stay safe
// to mutate.
func TestLowpassFIRCached(t *testing.T) {
	a := LowpassFIR(0.11, 21)
	b := LowpassFIR(0.11, 21)
	ta, tb := a.Taps(), b.Taps()
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("cached design differs at tap %d: %v vs %v", i, ta[i], tb[i])
		}
	}
	// Mutating a returned copy must not poison the cache.
	ta[0] = 1e9
	c := LowpassFIR(0.11, 21)
	if c.Taps()[0] == 1e9 {
		t.Fatal("Taps() exposed the cached tap vector")
	}
	// Independent state: feeding a leaves b at rest.
	a.Process(123)
	if y := b.Process(0); y != 0 {
		t.Fatalf("cached filters share streaming state: got %v, want 0", y)
	}
}

// TestPowerSpectrumIntoMatches confirms the scratch variant reproduces
// PowerSpectrum exactly and survives workspace reuse across sizes.
func TestPowerSpectrumIntoMatches(t *testing.T) {
	var cbuf []complex128
	var out []float64
	for _, n := range []int{16, 100, 33, 256, 7} {
		x := randSignal(uint64(n), n)
		w := Hann(n)
		want := PowerSpectrum(x, w)
		out, cbuf = PowerSpectrumInto(x, w, cbuf, out)
		if len(out) != len(want) {
			t.Fatalf("n=%d: %d bins, want %d", n, len(out), len(want))
		}
		for k := range want {
			if out[k] != want[k] {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, k, out[k], want[k])
			}
		}
	}
}

// TestHannCachedSharedAndEqual verifies the cached window equals a fresh
// build and is shared between calls.
func TestHannCachedSharedAndEqual(t *testing.T) {
	w1, w2 := HannCached(129), HannCached(129)
	if &w1[0] != &w2[0] {
		t.Fatal("HannCached did not share the window")
	}
	fresh := Hann(129)
	for i := range fresh {
		if w1[i] != fresh[i] {
			t.Fatalf("cached window differs at %d", i)
		}
	}
}

// BenchmarkFIRProcessBlock contrasts the scalar loop with the flat block
// kernel for the receiver-sized 9-tap RBW filter.
func BenchmarkFIRProcessBlock(b *testing.B) {
	taps := LowpassFIR(0.4, 9).Taps()
	in := randSignal(1, 4096)
	b.Run("scalar", func(b *testing.B) {
		f := NewFIR(taps)
		out := make([]float64, len(in))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, x := range in {
				out[j] = f.Process(x)
			}
		}
		b.SetBytes(int64(8 * len(in)))
	})
	b.Run("block", func(b *testing.B) {
		f := NewFIR(taps)
		out := make([]float64, len(in))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.ProcessBlock(in, out)
		}
		b.SetBytes(int64(8 * len(in)))
	})
}

// BenchmarkOverlapSave contrasts direct block convolution with FFT
// overlap-save at a decimator-scale tap count.
func BenchmarkOverlapSave(b *testing.B) {
	taps := LowpassFIR(0.01, 257).Taps()
	in := randSignal(2, 1<<15)
	b.Run("direct", func(b *testing.B) {
		f := NewFIR(taps)
		out := make([]float64, len(in))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.ProcessBlock(in, out)
		}
		b.SetBytes(int64(8 * len(in)))
	})
	b.Run("fft", func(b *testing.B) {
		o := NewOverlapSave(taps)
		out := make([]float64, len(in))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.ProcessBlock(in, out)
		}
		b.SetBytes(int64(8 * len(in)))
	})
}
