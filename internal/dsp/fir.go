package dsp

import (
	"fmt"
	"math"
	"sync"
)

// FIR is a finite-impulse-response filter with streaming state, used by the
// EM receiver model to band-limit the synthesized emanation signal to the
// configured measurement bandwidth before decimation.
type FIR struct {
	taps []float64
	// hist is a circular delay line of the last len(taps)-1 inputs.
	hist []float64
	pos  int
}

// NewFIR returns a streaming filter with the given tap weights.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR with no taps")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, hist: make([]float64, len(taps))}
}

// Taps returns a copy of the filter coefficients.
func (f *FIR) Taps() []float64 {
	t := make([]float64, len(f.taps))
	copy(t, f.taps)
	return t
}

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// Process filters one input sample and returns the output sample.
func (f *FIR) Process(x float64) float64 {
	f.hist[f.pos] = x
	// Convolve: taps[0] multiplies the newest sample.
	acc := 0.0
	idx := f.pos
	for _, t := range f.taps {
		acc += t * f.hist[idx]
		idx--
		if idx < 0 {
			idx = len(f.hist) - 1
		}
	}
	f.pos++
	if f.pos == len(f.hist) {
		f.pos = 0
	}
	return acc
}

// ProcessBlock filters the block in, writing outputs to out (allocated if
// nil or too small) and returning it. out may alias in (in-place filtering
// of the same slice is supported); partially-overlapping slices are not.
//
// The block kernel convolves against a flat [history | block] scratch
// buffer instead of per-sample ring indexing, with the inner loop unrolled
// over a single accumulator so the floating-point addition order — and
// therefore every output bit — matches a sample-by-sample Process loop
// exactly. Streaming state carries across blocks: mixing Process and
// ProcessBlock calls on one filter yields the same stream either way.
func (f *FIR) ProcessBlock(in, out []float64) []float64 {
	n := len(in)
	if out == nil || cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if n == 0 {
		return out
	}
	t := f.taps
	nt := len(t)
	if nt == 1 {
		c := t[0]
		last := in[n-1]
		for i, x := range in {
			out[i] = c * x
		}
		f.hist[0], f.pos = last, 0
		return out
	}
	h := nt - 1
	sp := getScratch(h + n)
	ext := *sp
	// Lay the last h inputs down chronologically (oldest first), then the
	// block, so x[i-k] is ext[h+i-k] with no wrapping anywhere.
	idx := f.pos
	for k := h - 1; k >= 0; k-- {
		idx--
		if idx < 0 {
			idx = len(f.hist) - 1
		}
		ext[k] = f.hist[idx]
	}
	copy(ext[h:], in)
	// Four outputs per iteration, one accumulator each. Every output keeps
	// its own serial addition chain in tap order — bit-identical to the
	// scalar path — but the four independent chains overlap in the FP
	// pipeline instead of serialising on a single accumulator's latency.
	i := 0
	h4 := h + 4
	for ; i+4 <= n; i += 4 {
		// win holds the h+4 samples feeding outputs i..i+3; the fixed-length
		// reslices let the compiler drop every inner-loop bounds check.
		win := ext[i:][:h4]
		var a0, a1, a2, a3 float64
		// m runs h..0 so tap index h-m runs 0..h: same per-output addition
		// order as the scalar path, but with loop bounds the compiler can
		// prove for win[m..m+3].
		for m := h; m >= 0; m-- {
			tk := t[h-m]
			a0 += tk * win[m]
			a1 += tk * win[m+1]
			a2 += tk * win[m+2]
			a3 += tk * win[m+3]
		}
		o := out[i : i+4 : i+4]
		o[0], o[1], o[2], o[3] = a0, a1, a2, a3
	}
	for ; i < n; i++ {
		e := h + i
		acc := 0.0
		for k := 0; k < nt; k++ {
			acc += t[k] * ext[e-k]
		}
		out[i] = acc
	}
	// Rebuild the delay line for subsequent Process/ProcessBlock calls:
	// the last len(hist) inputs in chronological order with pos = 0, so
	// the next write lands on the oldest slot.
	copy(f.hist, ext[h+n-len(f.hist):h+n])
	f.pos = 0
	putScratch(sp)
	return out
}

// GroupDelay returns the filter's group delay in samples for linear-phase
// (symmetric) designs: (N-1)/2.
func (f *FIR) GroupDelay() float64 {
	return float64(len(f.taps)-1) / 2
}

// lowpassKey identifies one windowed-sinc design in the tap cache.
type lowpassKey struct {
	cutoff float64
	taps   int
}

// lowpassCache memoises LowpassFIR tap vectors. Sweeps (bandwidth grids,
// per-job receivers) build the identical filter thousands of times; the
// design loop with its sin/normalise passes is pure, so the computed taps
// are shared read-only across all FIR instances with that design.
var lowpassCache sync.Map // lowpassKey -> []float64

// LowpassFIR designs a windowed-sinc lowpass filter with the given
// normalized cutoff (cutoff = fc / fs, in (0, 0.5)) and tap count. Odd tap
// counts give a type-I linear-phase filter. The Hamming window keeps
// stopband ripple below ~-53 dB, ample for the receiver model. Tap vectors
// are cached per (cutoff, taps) key, so repeated identical designs cost one
// map lookup; each returned filter still owns independent streaming state.
func LowpassFIR(cutoff float64, taps int) *FIR {
	if cutoff <= 0 || cutoff >= 0.5 {
		panic(fmt.Sprintf("dsp: lowpass cutoff %v out of (0, 0.5)", cutoff))
	}
	if taps < 3 {
		panic("dsp: lowpass needs at least 3 taps")
	}
	key := lowpassKey{cutoff: cutoff, taps: taps}
	if v, ok := lowpassCache.Load(key); ok {
		return newFIRShared(v.([]float64))
	}
	h := make([]float64, taps)
	w := Hamming(taps)
	mid := float64(taps-1) / 2
	sum := 0.0
	for i := range h {
		t := float64(i) - mid
		var v float64
		if t == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*t) / (math.Pi * t)
		}
		h[i] = v * w[i]
		sum += h[i]
	}
	// Normalise to unity DC gain so the filter preserves signal level.
	for i := range h {
		h[i] /= sum
	}
	lowpassCache.Store(key, h)
	return newFIRShared(h)
}

// newFIRShared wraps taps the caller guarantees are never mutated (FIR
// itself only reads them; Taps() hands out copies).
func newFIRShared(taps []float64) *FIR {
	return &FIR{taps: taps, hist: make([]float64, len(taps))}
}

// MovingAverage is an O(1)-per-sample boxcar filter. The paper's Fig. 1
// overlays exactly this on the raw magnitude to make the stall dip visible.
type MovingAverage struct {
	buf  []float64
	pos  int
	n    int
	sum  float64
	full bool
}

// NewMovingAverage returns a moving average over a window of n samples.
func NewMovingAverage(n int) *MovingAverage {
	if n <= 0 {
		panic("dsp: moving average window must be positive")
	}
	return &MovingAverage{buf: make([]float64, n), n: n}
}

// Process pushes x and returns the average of the last min(count, n)
// samples.
func (m *MovingAverage) Process(x float64) float64 {
	old := m.buf[m.pos]
	m.buf[m.pos] = x
	m.pos++
	if m.pos == m.n {
		m.pos = 0
		m.full = true
	}
	if m.full {
		m.sum += x - old
		return m.sum / float64(m.n)
	}
	m.sum += x
	return m.sum / float64(m.pos)
}

// Reset clears the window.
func (m *MovingAverage) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.pos, m.sum, m.full = 0, 0, false
}

// MovingAverageState is a serializable snapshot of a MovingAverage's
// ring and running sum, for streaming hand-off (core.StreamAnalyzer
// state export). The window width is re-derived by the restoring side;
// Restore rejects a state of a different width.
type MovingAverageState struct {
	Buf  []float64 `json:"buf"`
	Pos  int       `json:"pos"`
	Sum  float64   `json:"sum"`
	Full bool      `json:"full"`
}

// State returns a deep copy of the filter state.
func (m *MovingAverage) State() MovingAverageState {
	return MovingAverageState{
		Buf:  append([]float64(nil), m.buf...),
		Pos:  m.pos,
		Sum:  m.sum,
		Full: m.full,
	}
}

// Restore overwrites the filter with a state captured by State on an
// average of the same window width; processing continues bit-identically
// to the exporting instance.
func (m *MovingAverage) Restore(st MovingAverageState) error {
	if len(st.Buf) != m.n {
		return fmt.Errorf("dsp: moving-average state for window %d, have %d", len(st.Buf), m.n)
	}
	if st.Pos < 0 || st.Pos >= m.n {
		return fmt.Errorf("dsp: moving-average state position %d out of range", st.Pos)
	}
	copy(m.buf, st.Buf)
	m.pos, m.sum, m.full = st.Pos, st.Sum, st.Full
	return nil
}

// ProcessBlock applies the moving average to a block, writing into out
// (allocated if nil or too small). out may alias in; partially-overlapping
// slices are not supported. Output is bit-identical to calling Process per
// sample: the prefix (warm-up, or lookback still inside the ring buffer)
// runs the scalar step, then the steady state reads the outgoing sample
// straight from the input block with no ring indexing, performing the same
// sum update in the same order.
func (m *MovingAverage) ProcessBlock(in, out []float64) []float64 {
	n := len(in)
	if out == nil || cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if n == 0 {
		return out
	}
	src := in
	if &in[0] == &out[0] {
		// In-place call: the steady-state loop reads in[i-window] after
		// out[i-window] was written, so keep a pristine copy of the input.
		sp := getScratch(n)
		copy(*sp, in)
		src = *sp
		defer putScratch(sp)
	}
	w := m.n
	i := 0
	for ; i < n && (!m.full || i < w); i++ {
		out[i] = m.Process(src[i])
	}
	if i < n {
		// Steady state: the sample leaving the window is src[i-w].
		sum := m.sum
		den := float64(w)
		for ; i < n; i++ {
			x := src[i]
			sum += x - src[i-w]
			out[i] = sum / den
		}
		m.sum = sum
		// Rebuild the ring with the last w inputs, oldest at pos 0.
		copy(m.buf, src[n-w:])
		m.pos = 0
	}
	return out
}
