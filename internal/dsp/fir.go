package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with streaming state, used by the
// EM receiver model to band-limit the synthesized emanation signal to the
// configured measurement bandwidth before decimation.
type FIR struct {
	taps []float64
	// hist is a circular delay line of the last len(taps)-1 inputs.
	hist []float64
	pos  int
}

// NewFIR returns a streaming filter with the given tap weights.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: FIR with no taps")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, hist: make([]float64, len(taps))}
}

// Taps returns a copy of the filter coefficients.
func (f *FIR) Taps() []float64 {
	t := make([]float64, len(f.taps))
	copy(t, f.taps)
	return t
}

// Reset clears the delay line.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// Process filters one input sample and returns the output sample.
func (f *FIR) Process(x float64) float64 {
	f.hist[f.pos] = x
	// Convolve: taps[0] multiplies the newest sample.
	acc := 0.0
	idx := f.pos
	for _, t := range f.taps {
		acc += t * f.hist[idx]
		idx--
		if idx < 0 {
			idx = len(f.hist) - 1
		}
	}
	f.pos++
	if f.pos == len(f.hist) {
		f.pos = 0
	}
	return acc
}

// ProcessBlock filters the block in, writing outputs to out (allocated if
// nil) and returning it.
func (f *FIR) ProcessBlock(in, out []float64) []float64 {
	if out == nil || len(out) < len(in) {
		out = make([]float64, len(in))
	}
	out = out[:len(in)]
	for i, x := range in {
		out[i] = f.Process(x)
	}
	return out
}

// GroupDelay returns the filter's group delay in samples for linear-phase
// (symmetric) designs: (N-1)/2.
func (f *FIR) GroupDelay() float64 {
	return float64(len(f.taps)-1) / 2
}

// LowpassFIR designs a windowed-sinc lowpass filter with the given
// normalized cutoff (cutoff = fc / fs, in (0, 0.5)) and tap count. Odd tap
// counts give a type-I linear-phase filter. The Hamming window keeps
// stopband ripple below ~-53 dB, ample for the receiver model.
func LowpassFIR(cutoff float64, taps int) *FIR {
	if cutoff <= 0 || cutoff >= 0.5 {
		panic(fmt.Sprintf("dsp: lowpass cutoff %v out of (0, 0.5)", cutoff))
	}
	if taps < 3 {
		panic("dsp: lowpass needs at least 3 taps")
	}
	h := make([]float64, taps)
	w := Hamming(taps)
	mid := float64(taps-1) / 2
	sum := 0.0
	for i := range h {
		t := float64(i) - mid
		var v float64
		if t == 0 {
			v = 2 * cutoff
		} else {
			v = math.Sin(2*math.Pi*cutoff*t) / (math.Pi * t)
		}
		h[i] = v * w[i]
		sum += h[i]
	}
	// Normalise to unity DC gain so the filter preserves signal level.
	for i := range h {
		h[i] /= sum
	}
	return NewFIR(h)
}

// MovingAverage is an O(1)-per-sample boxcar filter. The paper's Fig. 1
// overlays exactly this on the raw magnitude to make the stall dip visible.
type MovingAverage struct {
	buf  []float64
	pos  int
	n    int
	sum  float64
	full bool
}

// NewMovingAverage returns a moving average over a window of n samples.
func NewMovingAverage(n int) *MovingAverage {
	if n <= 0 {
		panic("dsp: moving average window must be positive")
	}
	return &MovingAverage{buf: make([]float64, n), n: n}
}

// Process pushes x and returns the average of the last min(count, n)
// samples.
func (m *MovingAverage) Process(x float64) float64 {
	old := m.buf[m.pos]
	m.buf[m.pos] = x
	m.pos++
	if m.pos == m.n {
		m.pos = 0
		m.full = true
	}
	if m.full {
		m.sum += x - old
		return m.sum / float64(m.n)
	}
	m.sum += x
	return m.sum / float64(m.pos)
}

// Reset clears the window.
func (m *MovingAverage) Reset() {
	for i := range m.buf {
		m.buf[i] = 0
	}
	m.pos, m.sum, m.full = 0, 0, false
}

// ProcessBlock applies the moving average to a block.
func (m *MovingAverage) ProcessBlock(in, out []float64) []float64 {
	if out == nil || len(out) < len(in) {
		out = make([]float64, len(in))
	}
	out = out[:len(in)]
	for i, x := range in {
		out[i] = m.Process(x)
	}
	return out
}
