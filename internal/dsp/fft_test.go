package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestFFTImpulse(t *testing.T) {
	// The FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if !almostEqual(real(v), 1, 1e-12) || !almostEqual(imag(v), 0, 1e-12) {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSinusoidPeak(t *testing.T) {
	// A pure sinusoid at bin k concentrates its energy at bins k and N-k.
	const n = 256
	const k = 19
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*float64(k)*float64(i)/n), 0)
	}
	FFT(x)
	for i, v := range x {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if !almostEqual(mag, n/2, 1e-6) {
				t.Errorf("bin %d magnitude = %v, want %v", i, mag, n/2)
			}
		} else if mag > 1e-6 {
			t.Errorf("bin %d magnitude = %v, want ~0", i, mag)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	a := []complex128{1, 2i, 3, -1}
	b := []complex128{0.5, -2, 1i, 4}
	sum := make([]complex128, 4)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	FFT(fa)
	FFT(fb)
	FFT(sum)
	for i := range sum {
		if cmplx.Abs(sum[i]-(fa[i]+fb[i])) > 1e-12 {
			t.Fatalf("bin %d: FFT(a+b)=%v != FFT(a)+FFT(b)=%v", i, sum[i], fa[i]+fb[i])
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := 64
		x := make([]complex128, n)
		s := uint64(seed)
		for i := range x {
			s = s*6364136223846793005 + 1442695040888963407
			re := float64(int32(s>>33)) / (1 << 30)
			s = s*6364136223846793005 + 1442695040888963407
			im := float64(int32(s>>33)) / (1 << 30)
			x[i] = complex(re, im)
		}
		orig := append([]complex128(nil), x...)
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	// Sum |x|^2 == (1/N) Sum |X|^2.
	x := []complex128{1, 2, 3, 4, 5, 6, 7, 8}
	timeEnergy := 0.0
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	FFT(x)
	freqEnergy := 0.0
	for _, v := range x {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(len(x))
	if !almostEqual(timeEnergy, freqEnergy, 1e-9) {
		t.Fatalf("Parseval violated: time=%v freq=%v", timeEnergy, freqEnergy)
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length 12")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPowerSpectrumDCAndTone(t *testing.T) {
	const n = 128
	x := make([]float64, n)
	for i := range x {
		x[i] = 2 + math.Sin(2*math.Pi*8*float64(i)/n)
	}
	spec := PowerSpectrum(x, nil)
	if len(spec) != n/2+1 {
		t.Fatalf("spectrum length %d, want %d", len(spec), n/2+1)
	}
	// DC bin should dominate, bin 8 should be the largest non-DC bin.
	best := 1
	for k := 2; k < len(spec); k++ {
		if spec[k] > spec[best] {
			best = k
		}
	}
	if best != 8 {
		t.Fatalf("dominant non-DC bin %d, want 8", best)
	}
	if spec[0] < spec[8] {
		t.Fatalf("DC power %v below tone power %v", spec[0], spec[8])
	}
}

func TestMagnitudes(t *testing.T) {
	x := []complex128{3 + 4i, 0, -1}
	m := Magnitudes(x, nil)
	want := []float64{5, 0, 1}
	for i := range want {
		if !almostEqual(m[i], want[i], 1e-12) {
			t.Errorf("magnitude %d = %v, want %v", i, m[i], want[i])
		}
	}
}
