// Package dsp is the signal-processing substrate for the EMPROF
// reproduction. The paper's receiver chain and profiler need band-limiting
// filters, decimation, sliding-window statistics, envelopes, and short-time
// spectra; Go's standard library provides none of these, so they are
// implemented here from scratch on top of math and math/cmplx only.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N
// normalisation. len(x) must be a power of two.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Magnitudes writes |x[i]| into out (allocated if nil) and returns it.
func Magnitudes(x []complex128, out []float64) []float64 {
	if out == nil || len(out) < len(x) {
		out = make([]float64, len(x))
	}
	out = out[:len(x)]
	for i, v := range x {
		out[i] = math.Hypot(real(v), imag(v))
	}
	return out
}

// PowerSpectrum returns |X[k]|^2 / N for the first N/2+1 bins of the FFT of
// the windowed real signal x zero-padded to a power of two. It is the
// workhorse behind the spectrogram used for code attribution. Hot loops
// that compute many spectra should use PowerSpectrumInto with reused
// scratch instead.
func PowerSpectrum(x []float64, window []float64) []float64 {
	out, _ := PowerSpectrumInto(x, window, nil, nil)
	return out
}

// PowerSpectrumInto is PowerSpectrum with caller-provided scratch: cbuf is
// the complex FFT workspace and out the result buffer, both grown only when
// too small. It returns the spectrum and the (possibly re-allocated) cbuf
// so the caller can thread both through a loop — the STFT hot path computes
// one spectrum per hop and would otherwise allocate an FFT buffer per
// frame. Passing nil for either buffer allocates it.
func PowerSpectrumInto(x, window []float64, cbuf []complex128, out []float64) ([]float64, []complex128) {
	n := len(x)
	if window != nil && len(window) != n {
		panic("dsp: window length mismatch")
	}
	m := NextPow2(n)
	if cap(cbuf) < m {
		cbuf = make([]complex128, m)
	}
	cbuf = cbuf[:m]
	for i := 0; i < n; i++ {
		v := x[i]
		if window != nil {
			v *= window[i]
		}
		cbuf[i] = complex(v, 0)
	}
	// Zero the padding explicitly: the workspace is reused across calls.
	for i := n; i < m; i++ {
		cbuf[i] = 0
	}
	FFT(cbuf)
	half := m/2 + 1
	if cap(out) < half {
		out = make([]float64, half)
	}
	out = out[:half]
	inv := 1 / float64(m)
	for k := 0; k < half; k++ {
		re, im := real(cbuf[k]), imag(cbuf[k])
		out[k] = (re*re + im*im) * inv
	}
	return out, cbuf
}
