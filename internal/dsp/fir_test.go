package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFIRIdentity(t *testing.T) {
	f := NewFIR([]float64{1})
	for i, x := range []float64{1, -2, 3.5, 0} {
		if y := f.Process(x); y != x {
			t.Fatalf("sample %d: got %v, want %v", i, y, x)
		}
	}
}

func TestFIRDelay(t *testing.T) {
	// taps [0,1] delay the input by one sample.
	f := NewFIR([]float64{0, 1})
	in := []float64{1, 2, 3, 4}
	want := []float64{0, 1, 2, 3}
	for i, x := range in {
		if y := f.Process(x); y != want[i] {
			t.Fatalf("sample %d: got %v, want %v", i, y, want[i])
		}
	}
}

func TestFIRConvolutionMatchesReference(t *testing.T) {
	taps := []float64{0.25, 0.5, -0.125, 0.0625}
	f := NewFIR(taps)
	in := []float64{1, 0, -1, 2, 3, -2, 0.5, 0}
	for i, x := range in {
		got := f.Process(x)
		want := 0.0
		for k, tap := range taps {
			if i-k >= 0 {
				want += tap * in[i-k]
			}
		}
		if !almostEqual(got, want, 1e-12) {
			t.Fatalf("sample %d: got %v, want %v", i, got, want)
		}
	}
}

func TestFIRReset(t *testing.T) {
	f := NewFIR([]float64{0.5, 0.5})
	f.Process(10)
	f.Reset()
	if y := f.Process(2); !almostEqual(y, 1, 1e-12) {
		t.Fatalf("after reset got %v, want 1", y)
	}
}

func TestLowpassFIRDCGain(t *testing.T) {
	f := LowpassFIR(0.1, 63)
	// Feed a long DC signal; the steady-state output must be ~1.
	var y float64
	for i := 0; i < 200; i++ {
		y = f.Process(1)
	}
	if !almostEqual(y, 1, 1e-9) {
		t.Fatalf("DC gain %v, want 1", y)
	}
}

func TestLowpassFIRAttenuatesStopband(t *testing.T) {
	const cutoff = 0.05
	f := LowpassFIR(cutoff, 101)
	// Pass a tone well into the stopband (0.25 cycles/sample) and measure
	// output RMS over the steady state.
	var sumSq float64
	n := 0
	for i := 0; i < 1200; i++ {
		y := f.Process(math.Sin(2 * math.Pi * 0.25 * float64(i)))
		if i >= 200 {
			sumSq += y * y
			n++
		}
	}
	rms := math.Sqrt(sumSq / float64(n))
	if rms > 0.01 {
		t.Fatalf("stopband RMS %v, want < 0.01", rms)
	}
}

func TestLowpassFIRPassesPassband(t *testing.T) {
	f := LowpassFIR(0.2, 101)
	var sumSq float64
	n := 0
	for i := 0; i < 1200; i++ {
		y := f.Process(math.Sin(2 * math.Pi * 0.02 * float64(i)))
		if i >= 200 {
			sumSq += y * y
			n++
		}
	}
	rms := math.Sqrt(sumSq / float64(n))
	want := 1 / math.Sqrt2
	if math.Abs(rms-want) > 0.05 {
		t.Fatalf("passband RMS %v, want ~%v", rms, want)
	}
}

func TestLowpassFIRValidation(t *testing.T) {
	for _, c := range []struct {
		cutoff float64
		taps   int
	}{{0, 11}, {0.5, 11}, {0.6, 11}, {0.1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LowpassFIR(%v, %d) did not panic", c.cutoff, c.taps)
				}
			}()
			LowpassFIR(c.cutoff, c.taps)
		}()
	}
}

func TestFIRGroupDelay(t *testing.T) {
	f := LowpassFIR(0.1, 41)
	if got := f.GroupDelay(); got != 20 {
		t.Fatalf("group delay %v, want 20", got)
	}
}

func TestMovingAverageExact(t *testing.T) {
	m := NewMovingAverage(3)
	in := []float64{3, 6, 9, 12, 0}
	want := []float64{3, 4.5, 6, 9, 7}
	for i, x := range in {
		if y := m.Process(x); !almostEqual(y, want[i], 1e-12) {
			t.Fatalf("sample %d: got %v, want %v", i, y, want[i])
		}
	}
}

func TestMovingAverageMatchesNaive(t *testing.T) {
	f := func(seed int64, wRaw uint8) bool {
		w := int(wRaw%16) + 1
		m := NewMovingAverage(w)
		s := uint64(seed)
		var hist []float64
		for i := 0; i < 100; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			x := float64(int32(s>>33)) / (1 << 24)
			hist = append(hist, x)
			got := m.Process(x)
			lo := len(hist) - w
			if lo < 0 {
				lo = 0
			}
			sum := 0.0
			for _, v := range hist[lo:] {
				sum += v
			}
			want := sum / float64(len(hist)-lo)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverageReset(t *testing.T) {
	m := NewMovingAverage(4)
	m.Process(100)
	m.Process(200)
	m.Reset()
	if y := m.Process(8); !almostEqual(y, 8, 1e-12) {
		t.Fatalf("after reset got %v, want 8", y)
	}
}
