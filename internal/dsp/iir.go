package dsp

import (
	"fmt"
	"math"
)

// Biquad is a direct-form-II-transposed second-order IIR section:
//
//	y[n] = b0·x[n] + b1·x[n-1] + b2·x[n-2] − a1·y[n-1] − a2·y[n-2]
//
// Used where a cheap recursive response beats a long FIR: DC blocking
// before spectral analysis and single-knob smoothing of display series.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	z1, z2     float64
}

// NewBiquad returns a section with explicit coefficients (a0 normalised
// to 1).
func NewBiquad(b0, b1, b2, a1, a2 float64) *Biquad {
	return &Biquad{b0: b0, b1: b1, b2: b2, a1: a1, a2: a2}
}

// Process filters one sample.
func (f *Biquad) Process(x float64) float64 {
	y := f.b0*x + f.z1
	f.z1 = f.b1*x - f.a1*y + f.z2
	f.z2 = f.b2*x - f.a2*y
	return y
}

// Reset clears the delay state.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// ProcessBlock filters a block in place into out (allocated if nil).
func (f *Biquad) ProcessBlock(in, out []float64) []float64 {
	if out == nil || len(out) < len(in) {
		out = make([]float64, len(in))
	}
	out = out[:len(in)]
	for i, x := range in {
		out[i] = f.Process(x)
	}
	return out
}

// LowpassBiquad designs a Butterworth-style lowpass biquad with cutoff
// fc (normalised to the sample rate, in (0, 0.5)).
func LowpassBiquad(fc float64) *Biquad {
	if fc <= 0 || fc >= 0.5 {
		panic(fmt.Sprintf("dsp: biquad cutoff %v out of (0, 0.5)", fc))
	}
	const q = math.Sqrt2 / 2
	w := 2 * math.Pi * fc
	alpha := math.Sin(w) / (2 * q)
	cosw := math.Cos(w)
	a0 := 1 + alpha
	return NewBiquad(
		(1-cosw)/2/a0,
		(1-cosw)/a0,
		(1-cosw)/2/a0,
		-2*cosw/a0,
		(1-alpha)/a0,
	)
}

// HighpassBiquad designs a Butterworth-style highpass biquad with cutoff
// fc (normalised, in (0, 0.5)).
func HighpassBiquad(fc float64) *Biquad {
	if fc <= 0 || fc >= 0.5 {
		panic(fmt.Sprintf("dsp: biquad cutoff %v out of (0, 0.5)", fc))
	}
	const q = math.Sqrt2 / 2
	w := 2 * math.Pi * fc
	alpha := math.Sin(w) / (2 * q)
	cosw := math.Cos(w)
	a0 := 1 + alpha
	return NewBiquad(
		(1+cosw)/2/a0,
		-(1+cosw)/a0,
		(1+cosw)/2/a0,
		-2*cosw/a0,
		(1-alpha)/a0,
	)
}

// DCBlocker is a one-pole/one-zero highpass that removes the mean of a
// signal while passing everything else: y[n] = x[n] − x[n-1] + r·y[n-1].
// Spectral attribution uses it so frame spectra compare modulation
// structure rather than the (probe-gain-dependent) DC level.
type DCBlocker struct {
	r      float64
	xPrev  float64
	yPrev  float64
	primed bool
}

// NewDCBlocker returns a blocker with pole radius r in (0, 1); values
// near 1 give a narrower notch at DC.
func NewDCBlocker(r float64) *DCBlocker {
	if r <= 0 || r >= 1 {
		panic(fmt.Sprintf("dsp: DC blocker pole %v out of (0, 1)", r))
	}
	return &DCBlocker{r: r}
}

// Process filters one sample.
func (d *DCBlocker) Process(x float64) float64 {
	if !d.primed {
		// Prime on the first sample so a constant input yields zero
		// immediately instead of a step transient.
		d.xPrev = x
		d.primed = true
	}
	y := x - d.xPrev + d.r*d.yPrev
	d.xPrev = x
	d.yPrev = y
	return y
}

// Reset clears the state.
func (d *DCBlocker) Reset() { d.xPrev, d.yPrev, d.primed = 0, 0, false }
