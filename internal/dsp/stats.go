package dsp

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Sum    float64
}

// Summarize computes descriptive statistics of xs. An empty input yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.N = len(xs)
	s.Min = xs[0]
	s.Max = xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside
// the range are clamped into the first/last bin so no event is lost (tail
// latencies matter in the paper's Fig. 11).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("dsp: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fractions returns counts normalised by the total (zeros if empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	inv := 1 / float64(h.total)
	for i, c := range h.Counts {
		out[i] = float64(c) * inv
	}
	return out
}

// TailFraction returns the fraction of observations at or above x.
func (h *Histogram) TailFraction(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	first := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if first < 0 {
		first = 0
	}
	n := 0
	for i := first; i < len(h.Counts); i++ {
		n += h.Counts[i]
	}
	return float64(n) / float64(h.total)
}
