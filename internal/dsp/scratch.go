package dsp

import "sync"

// scratchPool recycles float64 work buffers across block-kernel calls so the
// hot synthesis path (FIR/decimator blocks arriving every few thousand
// cycles) settles to zero steady-state allocations. Buffers are pooled via
// pointer-to-slice to avoid the allocation sync.Pool would otherwise do for
// the slice header itself.
var scratchPool = sync.Pool{
	New: func() any {
		s := make([]float64, 0, 4096)
		return &s
	},
}

// getScratch returns a pooled buffer of length n. The contents are
// unspecified; callers must fully overwrite the range they read.
func getScratch(n int) *[]float64 {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

// putScratch returns a buffer obtained from getScratch to the pool.
func putScratch(p *[]float64) {
	scratchPool.Put(p)
}
