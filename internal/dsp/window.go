package dsp

import "math"

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	return cosineWindow(n, []float64{0.5, -0.5})
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	return cosineWindow(n, []float64{0.54, -0.46})
}

// Blackman returns an n-point Blackman window.
func Blackman(n int) []float64 {
	return cosineWindow(n, []float64{0.42, -0.5, 0.08})
}

// Rectangular returns an n-point all-ones window.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func cosineWindow(n int, coeffs []float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := 0; i < n; i++ {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		v := 0.0
		for k, c := range coeffs {
			v += c * math.Cos(float64(k)*x)
		}
		w[i] = v
	}
	return w
}

// WindowPower returns the sum of squared window coefficients, used to
// normalise power spectra computed with that window.
func WindowPower(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v * v
	}
	return s
}
