package dsp

import (
	"math"
	"sync"
)

// Hann returns an n-point Hann window.
func Hann(n int) []float64 {
	return cosineWindow(n, []float64{0.5, -0.5})
}

// hannCache memoises Hann windows by length for the spectrogram and sweep
// hot paths, which rebuild the identical window per STFT / per job.
var hannCache sync.Map // int -> []float64

// HannCached returns an n-point Hann window shared across callers. The
// returned slice is cached and MUST NOT be mutated; use Hann for a private
// copy.
func HannCached(n int) []float64 {
	if v, ok := hannCache.Load(n); ok {
		return v.([]float64)
	}
	w := Hann(n)
	hannCache.Store(n, w)
	return w
}

// Hamming returns an n-point Hamming window.
func Hamming(n int) []float64 {
	return cosineWindow(n, []float64{0.54, -0.46})
}

// Blackman returns an n-point Blackman window.
func Blackman(n int) []float64 {
	return cosineWindow(n, []float64{0.42, -0.5, 0.08})
}

// Rectangular returns an n-point all-ones window.
func Rectangular(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func cosineWindow(n int, coeffs []float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := 0; i < n; i++ {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		v := 0.0
		for k, c := range coeffs {
			v += c * math.Cos(float64(k)*x)
		}
		w[i] = v
	}
	return w
}

// WindowPower returns the sum of squared window coefficients, used to
// normalise power spectra computed with that window.
func WindowPower(w []float64) float64 {
	s := 0.0
	for _, v := range w {
		s += v * v
	}
	return s
}
