package dsp

import (
	"testing"
	"testing/quick"
)

func TestMovingMinBasic(t *testing.T) {
	m := NewMovingMin(3)
	in := []float64{5, 3, 4, 1, 6, 7, 8}
	want := []float64{5, 3, 3, 1, 1, 1, 6}
	for i, x := range in {
		if y := m.Process(x); y != want[i] {
			t.Fatalf("sample %d: got %v, want %v", i, y, want[i])
		}
	}
}

func TestMovingMaxBasic(t *testing.T) {
	m := NewMovingMax(2)
	in := []float64{1, 3, 2, 0, -1}
	want := []float64{1, 3, 3, 2, 0}
	for i, x := range in {
		if y := m.Process(x); y != want[i] {
			t.Fatalf("sample %d: got %v, want %v", i, y, want[i])
		}
	}
}

// TestMovingExtremumMatchesNaive is the central correctness property: the
// monotonic-deque implementation must agree with the O(w) rescan baseline
// on arbitrary inputs and window sizes.
func TestMovingExtremumMatchesNaive(t *testing.T) {
	f := func(seed int64, wRaw uint8, isMin bool) bool {
		w := int(wRaw%32) + 1
		var fast *MovingExtremum
		var slow *NaiveMovingExtremum
		if isMin {
			fast, slow = NewMovingMin(w), NewNaiveMovingMin(w)
		} else {
			fast, slow = NewMovingMax(w), NewNaiveMovingMax(w)
		}
		s := uint64(seed)
		for i := 0; i < 300; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			x := float64(int32(s >> 33))
			if fast.Process(x) != slow.Process(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingExtremumWindowExpiry(t *testing.T) {
	m := NewMovingMin(2)
	m.Process(1) // window {1}
	m.Process(5) // window {1,5} -> 1
	// 1 must expire now.
	if y := m.Process(7); y != 5 {
		t.Fatalf("got %v, want 5 after expiry", y)
	}
}

func TestMovingExtremumReset(t *testing.T) {
	m := NewMovingMax(4)
	m.Process(100)
	m.Reset()
	if y := m.Process(3); y != 3 {
		t.Fatalf("after reset got %v, want 3", y)
	}
}

func TestMovingExtremumMonotoneInput(t *testing.T) {
	// Strictly increasing input: min lags by w-1 samples, max tracks.
	const w = 5
	min, max := NewMovingMin(w), NewMovingMax(w)
	for i := 0; i < 50; i++ {
		x := float64(i)
		gotMin, gotMax := min.Process(x), max.Process(x)
		wantMin := x - (w - 1)
		if wantMin < 0 {
			wantMin = 0
		}
		if gotMin != wantMin || gotMax != x {
			t.Fatalf("i=%d: min=%v (want %v) max=%v (want %v)", i, gotMin, wantMin, gotMax, x)
		}
	}
}

func TestMovingExtremumPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for window 0")
		}
	}()
	NewMovingMin(0)
}

func TestProcessBlock(t *testing.T) {
	m := NewMovingMin(2)
	out := m.ProcessBlock([]float64{3, 1, 2, 0}, nil)
	want := []float64{3, 1, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("block output %v, want %v", out, want)
		}
	}
}
