package dsp

import "fmt"

// Decimator band-limits and downsamples a stream by an integer factor. The
// receiver model uses it to go from the per-cycle activity rate (= the
// processor clock) down to the measurement sample rate implied by the
// configured bandwidth.
type Decimator struct {
	factor int
	filter *FIR
	phase  int
}

// NewDecimator returns a decimator by factor with an anti-aliasing lowpass
// whose cutoff sits at 80% of the post-decimation Nyquist frequency. A tap
// count of 8*factor+1 gives a transition band narrow enough that aliased
// energy is negligible for the factors used here (6..50).
func NewDecimator(factor int) *Decimator {
	if factor < 1 {
		panic(fmt.Sprintf("dsp: decimation factor %d < 1", factor))
	}
	var f *FIR
	if factor > 1 {
		cutoff := 0.8 * 0.5 / float64(factor)
		taps := 8*factor + 1
		f = LowpassFIR(cutoff, taps)
	}
	return &Decimator{factor: factor, filter: f}
}

// Factor returns the decimation factor.
func (d *Decimator) Factor() int { return d.factor }

// Process pushes one input sample; it returns (y, true) when an output
// sample is produced (every factor-th input) and (0, false) otherwise.
func (d *Decimator) Process(x float64) (float64, bool) {
	y := x
	if d.filter != nil {
		y = d.filter.Process(x)
	}
	d.phase++
	if d.phase == d.factor {
		d.phase = 0
		return y, true
	}
	return 0, false
}

// ProcessBlock decimates a whole block, appending outputs to out and
// returning it. The anti-aliasing filter runs as one FIR block kernel over
// pooled scratch and the kept samples are stride-picked from the filtered
// block, so output is bit-identical to per-sample Process calls (including
// across blocks whose length is not a multiple of the factor — the phase
// carries over).
func (d *Decimator) ProcessBlock(in []float64, out []float64) []float64 {
	n := len(in)
	if n == 0 {
		return out
	}
	if d.factor == 1 {
		// Factor-1 decimators have no filter: pure pass-through.
		return append(out, in...)
	}
	sp := getScratch(n)
	tmp := *sp
	if d.filter != nil {
		d.filter.ProcessBlock(in, tmp)
	} else {
		copy(tmp, in)
	}
	// Process emits after phase reaches factor: input i is kept iff
	// phase+i+1 ≡ 0 (mod factor), so the first kept index is
	// factor-1-phase.
	for i := d.factor - 1 - d.phase; i < n; i += d.factor {
		out = append(out, tmp[i])
	}
	d.phase = (d.phase + n) % d.factor
	putScratch(sp)
	return out
}

// Reset clears filter state and phase.
func (d *Decimator) Reset() {
	if d.filter != nil {
		d.filter.Reset()
	}
	d.phase = 0
}

// LinearResample resamples x from srcRate to dstRate by linear
// interpolation. It is used for display-style series (e.g. aligning the
// simulator power proxy with the receiver signal in the Fig. 8 comparison),
// not in the detection path.
func LinearResample(x []float64, srcRate, dstRate float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	if srcRate <= 0 || dstRate <= 0 {
		panic("dsp: resample rates must be positive")
	}
	n := int(float64(len(x)) * dstRate / srcRate)
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	ratio := srcRate / dstRate
	for i := range out {
		t := float64(i) * ratio
		j := int(t)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := t - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}
