package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("bad summary: %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev %v, want %v", s.StdDev, math.Sqrt(32.0/7))
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if s := Summarize([]float64{3}); s.N != 1 || s.Mean != 3 || s.StdDev != 0 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {120, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("percentile of empty input should be NaN")
	}
	// Percentile must not reorder the caller's slice.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Errorf("percentile mutated input: %v", orig)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 9.9, 10, 11, -1} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d, want 7", h.Total())
	}
	// Bin 0 gets {0, 1.9, -1(clamped)}, bin 1 gets {2},
	// bin 4 gets {9.9, 10(clamped), 11(clamped)}.
	want := []int{3, 1, 0, 0, 3}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("counts %v, want %v", h.Counts, want)
		}
	}
}

func TestHistogramFractionsAndTail(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i * 10))
	}
	fr := h.Fractions()
	for i, f := range fr {
		if !almostEqual(f, 0.1, 1e-12) {
			t.Fatalf("fraction %d = %v, want 0.1", i, f)
		}
	}
	if got := h.TailFraction(50); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("tail(50) = %v, want 0.5", got)
	}
	if got := h.TailFraction(-10); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("tail(-10) = %v, want 1", got)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("bin 0 centre %v, want 1", got)
	}
	if got := h.BinCenter(4); !almostEqual(got, 9, 1e-12) {
		t.Fatalf("bin 4 centre %v, want 9", got)
	}
}

func TestHistogramPropertyTotalPreserved(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 17)
		added := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			added++
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == added && h.Total() == added
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		bins   int
	}{{0, 0, 5}, {1, 0, 5}, {0, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", c.lo, c.hi, c.bins)
				}
			}()
			NewHistogram(c.lo, c.hi, c.bins)
		}()
	}
}
