package dsp

import "math"

// Spectrogram is a short-time power spectrum of a real signal: Frames[t][k]
// is the power in frequency bin k during frame t. It is the input to the
// Spectral Profiling-style code attribution (paper Section VI-D, Fig. 14).
type Spectrogram struct {
	// Frames holds one power spectrum per hop.
	Frames [][]float64
	// SampleRate is the rate of the analysed signal in Hz.
	SampleRate float64
	// FrameLen and Hop are in samples of the analysed signal.
	FrameLen int
	Hop      int
}

// STFT computes a spectrogram with Hann-windowed frames of frameLen
// samples, advancing hop samples per frame. The window comes from the
// shared cache and one complex FFT workspace is reused across all frames,
// so per-frame allocation is limited to the retained spectrum itself.
func STFT(x []float64, sampleRate float64, frameLen, hop int) *Spectrogram {
	if frameLen <= 0 || hop <= 0 {
		panic("dsp: STFT frame and hop must be positive")
	}
	w := HannCached(frameLen)
	var frames [][]float64
	var cbuf []complex128
	for start := 0; start+frameLen <= len(x); start += hop {
		var frame []float64
		frame, cbuf = PowerSpectrumInto(x[start:start+frameLen], w, cbuf, nil)
		frames = append(frames, frame)
	}
	return &Spectrogram{
		Frames:     frames,
		SampleRate: sampleRate,
		FrameLen:   frameLen,
		Hop:        hop,
	}
}

// NumFrames returns the number of time frames.
func (s *Spectrogram) NumFrames() int { return len(s.Frames) }

// FrameTime returns the time in seconds of the centre of frame t.
func (s *Spectrogram) FrameTime(t int) float64 {
	return (float64(t*s.Hop) + float64(s.FrameLen)/2) / s.SampleRate
}

// BinFrequency returns the frequency in Hz of bin k.
func (s *Spectrogram) BinFrequency(k int) float64 {
	n := NextPow2(s.FrameLen)
	return float64(k) * s.SampleRate / float64(n)
}

// NormalizeFrames scales each frame to unit total power so that spectral
// matching compares shape rather than level (level varies with probe gain
// and supply voltage, which is exactly what must be factored out).
func (s *Spectrogram) NormalizeFrames() {
	for _, f := range s.Frames {
		sum := 0.0
		for _, v := range f {
			sum += v
		}
		if sum <= 0 {
			continue
		}
		inv := 1 / sum
		for i := range f {
			f[i] *= inv
		}
	}
}

// SpectralDistance returns the Hellinger distance between two equal-length
// non-negative spectra: the Euclidean distance between their element-wise
// square roots. On frame-normalised spectra it is bounded, insensitive to
// the near-empty bins that dominate log-spectral measures, and driven by
// where the energy actually sits — which is what distinguishes two loops'
// signatures.
func SpectralDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := math.Sqrt(math.Abs(a[i])) - math.Sqrt(math.Abs(b[i]))
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MeanSpectrum averages a set of spectra element-wise. Used to build
// per-region training signatures.
func MeanSpectrum(frames [][]float64) []float64 {
	if len(frames) == 0 {
		return nil
	}
	out := make([]float64, len(frames[0]))
	for _, f := range frames {
		for i := range out {
			if i < len(f) {
				out[i] += f[i]
			}
		}
	}
	inv := 1 / float64(len(frames))
	for i := range out {
		out[i] *= inv
	}
	return out
}
