package dsp

import (
	"math"
	"testing"
)

func TestDecimatorFactorOne(t *testing.T) {
	d := NewDecimator(1)
	for i := 0; i < 5; i++ {
		y, ok := d.Process(float64(i))
		if !ok || y != float64(i) {
			t.Fatalf("factor-1 decimator must pass through; got (%v,%v)", y, ok)
		}
	}
}

func TestDecimatorOutputRate(t *testing.T) {
	d := NewDecimator(4)
	outs := 0
	for i := 0; i < 100; i++ {
		if _, ok := d.Process(1); ok {
			outs++
		}
	}
	if outs != 25 {
		t.Fatalf("got %d outputs for 100 inputs at factor 4, want 25", outs)
	}
}

func TestDecimatorDCPreserved(t *testing.T) {
	d := NewDecimator(8)
	var last float64
	for i := 0; i < 1000; i++ {
		if y, ok := d.Process(2.5); ok {
			last = y
		}
	}
	if math.Abs(last-2.5) > 1e-9 {
		t.Fatalf("DC level %v, want 2.5", last)
	}
}

func TestDecimatorSuppressesAlias(t *testing.T) {
	// A tone just below the input Nyquist would alias into the output band;
	// the anti-aliasing filter must suppress it.
	const factor = 5
	d := NewDecimator(factor)
	var sumSq float64
	n := 0
	for i := 0; i < 5000; i++ {
		x := math.Sin(2 * math.Pi * 0.45 * float64(i))
		if y, ok := d.Process(x); ok {
			if n > 50 {
				sumSq += y * y
			}
			n++
		}
	}
	rms := math.Sqrt(sumSq / float64(n-51))
	if rms > 0.02 {
		t.Fatalf("aliased tone RMS %v, want < 0.02", rms)
	}
}

func TestDecimatorPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for factor 0")
		}
	}()
	NewDecimator(0)
}

func TestDecimatorBlockAndReset(t *testing.T) {
	d := NewDecimator(2)
	out := d.ProcessBlock([]float64{1, 1, 1, 1, 1, 1}, nil)
	if len(out) != 3 {
		t.Fatalf("block produced %d outputs, want 3", len(out))
	}
	d.Reset()
	out2 := d.ProcessBlock([]float64{1, 1}, nil)
	if len(out2) != 1 {
		t.Fatalf("after reset block produced %d outputs, want 1", len(out2))
	}
}

func TestLinearResampleIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := LinearResample(x, 100, 100)
	if len(y) != 4 {
		t.Fatalf("length %d, want 4", len(y))
	}
	for i := range x {
		if !almostEqual(y[i], x[i], 1e-12) {
			t.Fatalf("identity resample mismatch at %d: %v", i, y[i])
		}
	}
}

func TestLinearResampleUpsampleInterpolates(t *testing.T) {
	x := []float64{0, 2}
	y := LinearResample(x, 1, 2)
	// 4 output samples at positions 0, 0.5, 1.0, 1.5 of the input.
	if len(y) != 4 {
		t.Fatalf("length %d, want 4", len(y))
	}
	want := []float64{0, 1, 2, 2}
	for i := range want {
		if !almostEqual(y[i], want[i], 1e-12) {
			t.Fatalf("upsample %v, want %v", y, want)
		}
	}
}

func TestLinearResampleDownsampleLength(t *testing.T) {
	x := make([]float64, 100)
	y := LinearResample(x, 100, 25)
	if len(y) != 25 {
		t.Fatalf("length %d, want 25", len(y))
	}
	if out := LinearResample(nil, 10, 5); out != nil {
		t.Fatalf("resampling empty input should be nil, got %v", out)
	}
}
