package dsp

import "fmt"

// MovingExtremum tracks the minimum or maximum over a sliding window of the
// last w samples in amortised O(1) per sample using a monotonic deque.
// EMPROF's normalisation stage (Section IV of the paper) runs one moving
// minimum and one moving maximum over the signal magnitude; with receiver
// sample rates in the tens of MHz, a naive O(w) rescan per sample would
// dominate profiling cost, so the deque is the load-bearing data structure
// here (see BenchmarkMovingMinMax for the ablation).
type MovingExtremum struct {
	w     int
	isMin bool
	// ring buffer of (index, value) candidates, front = current extremum.
	idx   []int64
	val   []float64
	head  int
	tail  int // one past last
	count int64
}

// NewMovingMin returns a sliding-window minimum over w samples.
func NewMovingMin(w int) *MovingExtremum { return newMovingExtremum(w, true) }

// NewMovingMax returns a sliding-window maximum over w samples.
func NewMovingMax(w int) *MovingExtremum { return newMovingExtremum(w, false) }

func newMovingExtremum(w int, isMin bool) *MovingExtremum {
	if w <= 0 {
		panic("dsp: moving extremum window must be positive")
	}
	// The ring is sized to the next power of two above the maximum
	// occupancy (w candidates plus one spare slot) so position wrapping
	// is a mask — the i&(len-1) form also lets the compiler drop the
	// bounds checks inside the per-sample loops.
	ring := 1
	for ring < w+1 {
		ring <<= 1
	}
	return &MovingExtremum{
		w:     w,
		isMin: isMin,
		idx:   make([]int64, ring),
		val:   make([]float64, ring),
	}
}

// Process pushes x and returns the extremum of the last min(count, w)
// samples. The deque state is hoisted into locals — this runs once per
// raw sample inside the quality monitor's busy tracker, where the
// pointer loads and store-backs of the field-access version were
// measurable on streaming ingest. Positions wrap with a mask (the ring
// is a power of two), which also lets the compiler drop the bounds
// checks.
func (m *MovingExtremum) Process(x float64) float64 {
	idx, val := m.idx, m.val
	head, tail := m.head, m.tail
	mask := len(val) - 1
	i := m.count
	m.count = i + 1
	// Drop dominated candidates from the back.
	if m.isMin {
		for head != tail {
			t := (tail - 1) & mask
			if val[t&(len(val)-1)] < x {
				break
			}
			tail = t
		}
	} else {
		for head != tail {
			t := (tail - 1) & mask
			if val[t&(len(val)-1)] > x {
				break
			}
			tail = t
		}
	}
	idx[tail&(len(idx)-1)] = i
	val[tail&(len(val)-1)] = x
	tail = (tail + 1) & mask
	// Expire the front if it fell out of the window.
	if idx[head&(len(idx)-1)] <= i-int64(m.w) {
		head = (head + 1) & mask
	}
	m.head, m.tail = head, tail
	return val[head&(len(val)-1)]
}

// Reset clears the window.
func (m *MovingExtremum) Reset() {
	m.head, m.tail, m.count = 0, 0, 0
}

// DequeView is a mutable view of a MovingExtremum's internals for
// callers that inline the per-sample extremum step into their own block
// loops — the quality monitor's busy tracker interleaves a moving max
// with branchy per-sample state and cannot use ProcessBlock, and the
// call boundary of Process costs more than the deque step itself there.
// The rings are power-of-two sized, so positions wrap with len-1 masks
// exactly as in Process, which remains the behavioural reference for
// any inlined copy of the step.
type DequeView struct {
	Idx        []int64
	Val        []float64
	Head, Tail int
	Count      int64
	W          int64
}

// Deque returns the current deque view. The caller owns the extremum
// until it calls SetDeque with the advanced positions; Process,
// ProcessBlock, State and Restore must not run in between.
func (m *MovingExtremum) Deque() DequeView {
	return DequeView{Idx: m.idx, Val: m.val, Head: m.head, Tail: m.tail, Count: m.count, W: int64(m.w)}
}

// SetDeque commits positions advanced by an inlined block loop.
func (m *MovingExtremum) SetDeque(head, tail int, count int64) {
	m.head, m.tail, m.count = head, tail, count
}

// MovingExtremumState is a serializable snapshot of a MovingExtremum's
// deque, for streaming hand-off (core.StreamAnalyzer state export). The
// min/max polarity is not part of the state: it is a structural
// parameter the restoring side re-derives from its own configuration.
//
// State exports only the deque's live candidates — a monotonic deque
// over a noisy signal typically holds a few dozen entries regardless of
// window width, and serializing the full w+1 ring used to dominate
// hand-off wire size and encode/decode time. W carries the window width
// for validation; states from builds that predate it (W == 0) ship the
// full ring, whose capacity implies the window instead.
type MovingExtremumState struct {
	W     int       `json:"w,omitempty"`
	Idx   []int64   `json:"idx"`
	Val   []float64 `json:"val"`
	Head  int       `json:"head"`
	Tail  int       `json:"tail"`
	Count int64     `json:"count"`
}

// State returns the deque's live candidates in logical order (front
// first), as a ring of exactly their number plus one spare slot.
func (m *MovingExtremum) State() MovingExtremumState {
	n := len(m.idx)
	cnt := m.tail - m.head
	if cnt < 0 {
		cnt += n
	}
	idx := make([]int64, cnt+1)
	val := make([]float64, cnt+1)
	p := m.head
	for k := 0; k < cnt; k++ {
		idx[k] = m.idx[p]
		val[k] = m.val[p]
		p++
		if p == n {
			p = 0
		}
	}
	return MovingExtremumState{
		W:     m.w,
		Idx:   idx,
		Val:   val,
		Head:  0,
		Tail:  cnt,
		Count: m.count,
	}
}

// Restore overwrites the deque with a state captured by State on an
// extremum of the same window width. The live candidates are rebased to
// the front of the ring; processing after Restore continues
// bit-identically to the exporting instance, whose outputs depend only
// on the deque's logical content.
func (m *MovingExtremum) Restore(st MovingExtremumState) error {
	n := len(st.Idx)
	if len(st.Val) != n || n == 0 {
		return fmt.Errorf("dsp: extremum state buffers inconsistent (%d idx, %d val)", n, len(st.Val))
	}
	if st.W != 0 && st.W != m.w {
		return fmt.Errorf("dsp: extremum state for window %d, have %d", st.W, m.w)
	}
	if st.W == 0 && n != len(m.idx) {
		// Legacy full-ring states carry no window tag; their ring
		// capacity is the window check.
		return fmt.Errorf("dsp: extremum state for window %d, have %d", n-1, m.w)
	}
	if st.Head < 0 || st.Head >= n || st.Tail < 0 || st.Tail >= n || st.Count < 0 {
		return fmt.Errorf("dsp: extremum state out of range (head=%d tail=%d count=%d)", st.Head, st.Tail, st.Count)
	}
	cnt := st.Tail - st.Head
	if cnt < 0 {
		cnt += n
	}
	if cnt > m.w {
		return fmt.Errorf("dsp: extremum state holds %d candidates for window %d", cnt, m.w)
	}
	p := st.Head
	for k := 0; k < cnt; k++ {
		m.idx[k] = st.Idx[p]
		m.val[k] = st.Val[p]
		p++
		if p == n {
			p = 0
		}
	}
	m.head, m.tail, m.count = 0, cnt, st.Count
	return nil
}

// ProcessBlock applies the sliding extremum to a block, bit-identically
// to calling Process per sample. The deque state is hoisted into locals
// for the duration of the block, which removes the per-call pointer
// loads and store-backs that dominate Process on streaming ingest (see
// BenchmarkMovingMinMax).
func (m *MovingExtremum) ProcessBlock(in, out []float64) []float64 {
	if out == nil || len(out) < len(in) {
		out = make([]float64, len(in))
	}
	out = out[:len(in)]
	idx, val := m.idx, m.val
	head, tail := m.head, m.tail
	count := m.count
	mask := len(val) - 1
	w := int64(m.w)
	if m.isMin {
		for j, x := range in {
			i := count
			count++
			for head != tail {
				t := (tail - 1) & mask
				if val[t&(len(val)-1)] < x {
					break
				}
				tail = t
			}
			idx[tail&(len(idx)-1)] = i
			val[tail&(len(val)-1)] = x
			tail = (tail + 1) & mask
			if idx[head&(len(idx)-1)] <= i-w {
				head = (head + 1) & mask
			}
			out[j] = val[head&(len(val)-1)]
		}
	} else {
		for j, x := range in {
			i := count
			count++
			for head != tail {
				t := (tail - 1) & mask
				if val[t&(len(val)-1)] > x {
					break
				}
				tail = t
			}
			idx[tail&(len(idx)-1)] = i
			val[tail&(len(val)-1)] = x
			tail = (tail + 1) & mask
			if idx[head&(len(idx)-1)] <= i-w {
				head = (head + 1) & mask
			}
			out[j] = val[head&(len(val)-1)]
		}
	}
	m.head, m.tail, m.count = head, tail, count
	return out
}

// ProcessBlockMinMax advances a moving minimum and a moving maximum over
// the same block in one fused pass, bit-identically to calling each
// extremum's ProcessBlock separately. The normalisation stage always
// runs the two in lock-step over identical input; fusing them reads the
// block once instead of twice and shares the per-sample index
// bookkeeping, which is worth ~20% of the block path's deque cost.
func ProcessBlockMinMax(mn, mx *MovingExtremum, in, lo, hi []float64) {
	if !mn.isMin || mx.isMin {
		panic("dsp: ProcessBlockMinMax wants (min, max)")
	}
	if mn.w != mx.w || mn.count != mx.count {
		// Not in lock-step: run the un-fused block paths.
		mn.ProcessBlock(in, lo)
		mx.ProcessBlock(in, hi)
		return
	}
	lo = lo[:len(in)]
	hi = hi[:len(in)]
	nIdx, nVal := mn.idx, mn.val
	nHead, nTail := mn.head, mn.tail
	xIdx, xVal := mx.idx, mx.val
	xHead, xTail := mx.head, mx.tail
	count := mn.count
	mask := len(nVal) - 1
	w := int64(mn.w)
	// The front candidate is cached in registers: back-pops never touch
	// it (they stop before head or empty the deque, in which case the
	// pushed sample becomes the front), so it only reloads on the
	// at-most-one expiry per sample. The cache is dead whenever the deque
	// is empty, and the deque is never empty after a push.
	var nFrontIdx, xFrontIdx int64
	var nFrontVal, xFrontVal float64
	if nHead != nTail {
		nFrontIdx = nIdx[nHead&(len(nIdx)-1)]
		nFrontVal = nVal[nHead&(len(nVal)-1)]
	}
	if xHead != xTail {
		xFrontIdx = xIdx[xHead&(len(xIdx)-1)]
		xFrontVal = xVal[xHead&(len(xVal)-1)]
	}
	for j, x := range in {
		i := count
		count++
		for nHead != nTail {
			t := (nTail - 1) & mask
			if nVal[t&(len(nVal)-1)] < x {
				break
			}
			nTail = t
		}
		if nHead == nTail {
			nFrontIdx, nFrontVal = i, x
		}
		nIdx[nTail&(len(nIdx)-1)] = i
		nVal[nTail&(len(nVal)-1)] = x
		nTail = (nTail + 1) & mask
		if nFrontIdx <= i-w {
			nHead = (nHead + 1) & mask
			nFrontIdx = nIdx[nHead&(len(nIdx)-1)]
			nFrontVal = nVal[nHead&(len(nVal)-1)]
		}
		lo[j] = nFrontVal
		for xHead != xTail {
			t := (xTail - 1) & mask
			if xVal[t&(len(xVal)-1)] > x {
				break
			}
			xTail = t
		}
		if xHead == xTail {
			xFrontIdx, xFrontVal = i, x
		}
		xIdx[xTail&(len(xIdx)-1)] = i
		xVal[xTail&(len(xVal)-1)] = x
		xTail = (xTail + 1) & mask
		if xFrontIdx <= i-w {
			xHead = (xHead + 1) & mask
			xFrontIdx = xIdx[xHead&(len(xIdx)-1)]
			xFrontVal = xVal[xHead&(len(xVal)-1)]
		}
		hi[j] = xFrontVal
	}
	mn.head, mn.tail, mn.count = nHead, nTail, count
	mx.head, mx.tail, mx.count = xHead, xTail, count
}

// NaiveMovingExtremum recomputes the window extremum by rescanning the full
// window on every sample. It exists solely as the baseline for the
// moving-min/max ablation benchmark; the profiler never uses it.
type NaiveMovingExtremum struct {
	w     int
	isMin bool
	buf   []float64
	pos   int
	n     int
}

// NewNaiveMovingMin returns the O(w)-per-sample baseline minimum.
func NewNaiveMovingMin(w int) *NaiveMovingExtremum {
	return &NaiveMovingExtremum{w: w, isMin: true, buf: make([]float64, w)}
}

// NewNaiveMovingMax returns the O(w)-per-sample baseline maximum.
func NewNaiveMovingMax(w int) *NaiveMovingExtremum {
	return &NaiveMovingExtremum{w: w, isMin: false, buf: make([]float64, w)}
}

// Process pushes x and rescans the whole window.
func (m *NaiveMovingExtremum) Process(x float64) float64 {
	m.buf[m.pos] = x
	m.pos++
	if m.pos == m.w {
		m.pos = 0
	}
	if m.n < m.w {
		m.n++
	}
	// Scan the n valid entries.
	best := x
	seen := 0
	for i := 0; i < m.w && seen < m.n; i++ {
		v := m.buf[i]
		if i >= m.n && m.n < m.w {
			break
		}
		seen++
		if m.isMin && v < best {
			best = v
		}
		if !m.isMin && v > best {
			best = v
		}
	}
	return best
}
