package dsp

import "fmt"

// MovingExtremum tracks the minimum or maximum over a sliding window of the
// last w samples in amortised O(1) per sample using a monotonic deque.
// EMPROF's normalisation stage (Section IV of the paper) runs one moving
// minimum and one moving maximum over the signal magnitude; with receiver
// sample rates in the tens of MHz, a naive O(w) rescan per sample would
// dominate profiling cost, so the deque is the load-bearing data structure
// here (see BenchmarkMovingMinMax for the ablation).
type MovingExtremum struct {
	w     int
	isMin bool
	// ring buffer of (index, value) candidates, front = current extremum.
	idx   []int64
	val   []float64
	head  int
	tail  int // one past last
	count int64
}

// NewMovingMin returns a sliding-window minimum over w samples.
func NewMovingMin(w int) *MovingExtremum { return newMovingExtremum(w, true) }

// NewMovingMax returns a sliding-window maximum over w samples.
func NewMovingMax(w int) *MovingExtremum { return newMovingExtremum(w, false) }

func newMovingExtremum(w int, isMin bool) *MovingExtremum {
	if w <= 0 {
		panic("dsp: moving extremum window must be positive")
	}
	return &MovingExtremum{
		w:     w,
		isMin: isMin,
		idx:   make([]int64, w+1),
		val:   make([]float64, w+1),
	}
}

func (m *MovingExtremum) empty() bool { return m.head == m.tail }

func (m *MovingExtremum) pushBack(i int64, v float64) {
	m.idx[m.tail] = i
	m.val[m.tail] = v
	m.tail++
	if m.tail == len(m.idx) {
		m.tail = 0
	}
}

func (m *MovingExtremum) popBack() {
	m.tail--
	if m.tail < 0 {
		m.tail = len(m.idx) - 1
	}
}

func (m *MovingExtremum) popFront() {
	m.head++
	if m.head == len(m.idx) {
		m.head = 0
	}
}

func (m *MovingExtremum) back() (int64, float64) {
	t := m.tail - 1
	if t < 0 {
		t = len(m.idx) - 1
	}
	return m.idx[t], m.val[t]
}

// Process pushes x and returns the extremum of the last min(count, w)
// samples.
func (m *MovingExtremum) Process(x float64) float64 {
	i := m.count
	m.count++
	// Drop dominated candidates from the back.
	for !m.empty() {
		_, v := m.back()
		if (m.isMin && v >= x) || (!m.isMin && v <= x) {
			m.popBack()
		} else {
			break
		}
	}
	m.pushBack(i, x)
	// Expire the front if it fell out of the window.
	if m.idx[m.head] <= i-int64(m.w) {
		m.popFront()
	}
	return m.val[m.head]
}

// Reset clears the window.
func (m *MovingExtremum) Reset() {
	m.head, m.tail, m.count = 0, 0, 0
}

// MovingExtremumState is a serializable snapshot of a MovingExtremum's
// deque, for streaming hand-off (core.StreamAnalyzer state export). The
// window width and min/max polarity are not part of the state: they are
// structural parameters the restoring side re-derives from its own
// configuration, and Restore rejects a state whose deque capacity does
// not match them.
type MovingExtremumState struct {
	Idx   []int64   `json:"idx"`
	Val   []float64 `json:"val"`
	Head  int       `json:"head"`
	Tail  int       `json:"tail"`
	Count int64     `json:"count"`
}

// State returns a deep copy of the deque state.
func (m *MovingExtremum) State() MovingExtremumState {
	return MovingExtremumState{
		Idx:   append([]int64(nil), m.idx...),
		Val:   append([]float64(nil), m.val...),
		Head:  m.head,
		Tail:  m.tail,
		Count: m.count,
	}
}

// Restore overwrites the deque with a state captured by State on an
// extremum of the same window width. Processing after Restore continues
// bit-identically to the exporting instance.
func (m *MovingExtremum) Restore(st MovingExtremumState) error {
	if len(st.Idx) != len(m.idx) || len(st.Val) != len(m.val) {
		return fmt.Errorf("dsp: extremum state for window %d, have %d", len(st.Idx)-1, m.w)
	}
	if st.Head < 0 || st.Head >= len(m.idx) || st.Tail < 0 || st.Tail >= len(m.idx) || st.Count < 0 {
		return fmt.Errorf("dsp: extremum state out of range (head=%d tail=%d count=%d)", st.Head, st.Tail, st.Count)
	}
	copy(m.idx, st.Idx)
	copy(m.val, st.Val)
	m.head, m.tail, m.count = st.Head, st.Tail, st.Count
	return nil
}

// ProcessBlock applies the sliding extremum to a block.
func (m *MovingExtremum) ProcessBlock(in, out []float64) []float64 {
	if out == nil || len(out) < len(in) {
		out = make([]float64, len(in))
	}
	out = out[:len(in)]
	for i, x := range in {
		out[i] = m.Process(x)
	}
	return out
}

// NaiveMovingExtremum recomputes the window extremum by rescanning the full
// window on every sample. It exists solely as the baseline for the
// moving-min/max ablation benchmark; the profiler never uses it.
type NaiveMovingExtremum struct {
	w     int
	isMin bool
	buf   []float64
	pos   int
	n     int
}

// NewNaiveMovingMin returns the O(w)-per-sample baseline minimum.
func NewNaiveMovingMin(w int) *NaiveMovingExtremum {
	return &NaiveMovingExtremum{w: w, isMin: true, buf: make([]float64, w)}
}

// NewNaiveMovingMax returns the O(w)-per-sample baseline maximum.
func NewNaiveMovingMax(w int) *NaiveMovingExtremum {
	return &NaiveMovingExtremum{w: w, isMin: false, buf: make([]float64, w)}
}

// Process pushes x and rescans the whole window.
func (m *NaiveMovingExtremum) Process(x float64) float64 {
	m.buf[m.pos] = x
	m.pos++
	if m.pos == m.w {
		m.pos = 0
	}
	if m.n < m.w {
		m.n++
	}
	// Scan the n valid entries.
	best := x
	seen := 0
	for i := 0; i < m.w && seen < m.n; i++ {
		v := m.buf[i]
		if i >= m.n && m.n < m.w {
			break
		}
		seen++
		if m.isMin && v < best {
			best = v
		}
		if !m.isMin && v > best {
			best = v
		}
	}
	return best
}
