// Package power converts per-cycle pipeline activity into the power-proxy
// signal the paper uses for validation: "we collect the average power
// consumption for each 20-cycle interval, which corresponds to a 50 MHz
// sampling rate for a 1 GHz processor" (Section III-B). The unit-level
// weights follow the same intuition as SESC's accounting: switching
// activity in fetch, issue and the functional units dominates dynamic
// power, so a fully-stalled core draws only its baseline.
package power

// Weights are the per-unit dynamic power contributions, in arbitrary
// consistent units (the EM chain normalises levels away; only the contrast
// between busy and stalled matters to EMPROF, exactly as in the paper).
type Weights struct {
	// Base is static + clock-tree power, drawn every cycle even when
	// fully stalled.
	Base float64
	// Fetch is added on cycles when the front-end fetches instructions.
	Fetch float64
	// PerIssue is added per instruction issued in a cycle.
	PerIssue float64
	// IntALU, IntMulDiv, FPALU, FPMulDiv are added per instruction of the
	// corresponding class issued.
	IntALU    float64
	IntMulDiv float64
	FPALU     float64
	FPMulDiv  float64
	// MemAccess is added per data-cache access issued.
	MemAccess float64
	// MissWait is added per cycle while LLC misses are outstanding but the
	// core is still doing useful work (bus/MSHR activity).
	MissWait float64
}

// DefaultWeights is a reasonable unit-level model for an in-order
// superscalar embedded core. Busy cycles land around 1.0–2.5; a full stall
// draws Base = 0.25, giving the strong magnitude contrast shown in the
// paper's Figs. 1–4.
func DefaultWeights() Weights {
	return Weights{
		Base:      0.25,
		Fetch:     0.18,
		PerIssue:  0.22,
		IntALU:    0.08,
		IntMulDiv: 0.25,
		FPALU:     0.20,
		FPMulDiv:  0.35,
		MemAccess: 0.15,
		MissWait:  0.03,
	}
}

// Activity is the pipeline activity of one cycle. The counters are
// float64 rather than int because the simulator rebuilds an Activity
// every busy cycle and feeds it straight into CycleRef's weighted sum:
// float counters make the increments (exact: +1.0 on small counts) and
// the products conversion-free on the hottest path in the tree.
type Activity struct {
	FetchActive bool
	Issued      float64
	IntALU      float64
	IntMulDiv   float64
	FPALU       float64
	FPMulDiv    float64
	MemAccesses float64
	MissesOut   float64
}

// Cycle returns the instantaneous power for one cycle of activity.
func (w Weights) Cycle(a Activity) float64 {
	return w.CycleRef(&a)
}

// CycleRef is Cycle without the receiver and argument copies — the form
// the simulator's per-cycle loop calls (Weights is 9 float64s and
// Activity 8 fields; copying both per simulated cycle was measurable).
func (w *Weights) CycleRef(a *Activity) float64 {
	p := w.Base
	if a.FetchActive {
		p += w.Fetch
	}
	p += w.PerIssue * a.Issued
	p += w.IntALU * a.IntALU
	p += w.IntMulDiv * a.IntMulDiv
	p += w.FPALU * a.FPALU
	p += w.FPMulDiv * a.FPMulDiv
	p += w.MemAccess * a.MemAccesses
	if a.MissesOut > 0 {
		p += w.MissWait
	}
	return p
}

// Sink consumes the per-cycle power stream produced by the processor
// model. Implementations include the SESC-style interval sampler below and
// the EM receiver chain in internal/em.
type Sink interface {
	// PushCycle receives the power drawn in one clock cycle.
	PushCycle(p float64)
}

// BlockSink is implemented by sinks that can consume a whole block of
// consecutive per-cycle power values at once. A block push must be
// observationally identical to pushing every value through PushCycle in
// order — implementations batch purely for speed (amortising interface
// calls, filter state updates and noise draws over thousands of cycles).
type BlockSink interface {
	Sink
	// PushBlock receives the power drawn in len(ps) consecutive cycles.
	PushBlock(ps []float64)
}

// MultiSink fans one power stream out to several sinks.
type MultiSink []Sink

// PushCycle implements Sink.
func (m MultiSink) PushCycle(p float64) {
	for _, s := range m {
		s.PushCycle(p)
	}
}

// PushBlock implements BlockSink: block-capable sinks receive the whole
// slice, anything else gets the equivalent per-cycle stream.
func (m MultiSink) PushBlock(ps []float64) {
	for _, s := range m {
		if bs, ok := s.(BlockSink); ok {
			bs.PushBlock(ps)
			continue
		}
		for _, p := range ps {
			s.PushCycle(p)
		}
	}
}

// IntervalSampler averages power over fixed windows of CyclesPerSample
// cycles, reproducing the simulator-side signal of the paper (one sample
// per 20 cycles in the SESC experiments).
type IntervalSampler struct {
	cyclesPerSample int
	acc             float64
	n               int
	samples         []float64
}

// NewIntervalSampler returns a sampler averaging each window of
// cyclesPerSample cycles into one output sample.
func NewIntervalSampler(cyclesPerSample int) *IntervalSampler {
	if cyclesPerSample <= 0 {
		panic("power: cyclesPerSample must be positive")
	}
	return &IntervalSampler{cyclesPerSample: cyclesPerSample}
}

// PushCycle implements Sink.
func (s *IntervalSampler) PushCycle(p float64) {
	s.acc += p
	s.n++
	if s.n == s.cyclesPerSample {
		s.samples = append(s.samples, s.acc/float64(s.n))
		s.acc, s.n = 0, 0
	}
}

// PushBlock implements BlockSink. The windowed averages are bit-identical
// to the per-cycle path: each window keeps its own serial accumulation
// order, only the per-cycle call overhead is amortised.
func (s *IntervalSampler) PushBlock(ps []float64) {
	// Finish any open window cycle by cycle (at most one emitted sample).
	for len(ps) > 0 && s.n > 0 {
		s.PushCycle(ps[0])
		ps = ps[1:]
	}
	d := s.cyclesPerSample
	nw := len(ps) / d
	if nw > 0 {
		if free := cap(s.samples) - len(s.samples); free < nw {
			grown := make([]float64, len(s.samples), 2*cap(s.samples)+nw)
			copy(grown, s.samples)
			s.samples = grown
		}
		den := float64(d)
		for w := 0; w < nw; w++ {
			win := ps[w*d:][:d]
			acc := 0.0
			for _, v := range win {
				acc += v
			}
			s.samples = append(s.samples, acc/den)
		}
		ps = ps[nw*d:]
	}
	for _, v := range ps {
		s.acc += v
		s.n++
	}
}

// Flush emits any partial final window.
func (s *IntervalSampler) Flush() {
	if s.n > 0 {
		s.samples = append(s.samples, s.acc/float64(s.n))
		s.acc, s.n = 0, 0
	}
}

// Samples returns the accumulated power trace.
func (s *IntervalSampler) Samples() []float64 { return s.samples }

// CyclesPerSample returns the averaging window length.
func (s *IntervalSampler) CyclesPerSample() int { return s.cyclesPerSample }

// SampleRate returns the sample rate in Hz for a core clocked at clockHz.
func (s *IntervalSampler) SampleRate(clockHz float64) float64 {
	return clockHz / float64(s.cyclesPerSample)
}
