package power

import (
	"math"
	"testing"
)

func TestCyclePowerMonotone(t *testing.T) {
	w := DefaultWeights()
	idle := w.Cycle(Activity{})
	if idle != w.Base {
		t.Fatalf("idle power %v, want base %v", idle, w.Base)
	}
	stalled := w.Cycle(Activity{MissesOut: 2})
	if stalled <= idle {
		t.Fatal("miss-wait must add a little power")
	}
	busy := w.Cycle(Activity{FetchActive: true, Issued: 2, IntALU: 2})
	if busy <= 2*stalled {
		t.Fatalf("busy power %v not well above stalled %v", busy, stalled)
	}
	fp := w.Cycle(Activity{FetchActive: true, Issued: 2, FPMulDiv: 2})
	intOnly := w.Cycle(Activity{FetchActive: true, Issued: 2, IntALU: 2})
	if fp <= intOnly {
		t.Fatal("FP units must draw more than integer ALUs")
	}
}

func TestCyclePowerAdditive(t *testing.T) {
	w := DefaultWeights()
	a := Activity{Issued: 1, IntALU: 1}
	b := Activity{Issued: 1, MemAccesses: 1}
	pa, pb := w.Cycle(a), w.Cycle(b)
	combined := w.Cycle(Activity{Issued: 2, IntALU: 1, MemAccesses: 1})
	if math.Abs((pa+pb-w.Base)-combined) > 1e-12 {
		t.Fatalf("power not additive: %v + %v vs %v", pa, pb, combined)
	}
}

func TestIntervalSampler(t *testing.T) {
	s := NewIntervalSampler(4)
	for i := 0; i < 10; i++ {
		s.PushCycle(float64(i))
	}
	s.Flush()
	got := s.Samples()
	want := []float64{1.5, 5.5, 8.5} // (0+1+2+3)/4, (4..7)/4, (8+9)/2
	if len(got) != 3 {
		t.Fatalf("samples %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("samples %v, want %v", got, want)
		}
	}
}

func TestIntervalSamplerRate(t *testing.T) {
	s := NewIntervalSampler(20)
	if got := s.SampleRate(1e9); got != 50e6 {
		t.Fatalf("sample rate %v, want 50 MHz", got)
	}
	if s.CyclesPerSample() != 20 {
		t.Fatal("cycles per sample wrong")
	}
}

func TestIntervalSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window must panic")
		}
	}()
	NewIntervalSampler(0)
}

func TestMultiSinkFansOut(t *testing.T) {
	a := NewIntervalSampler(1)
	b := NewIntervalSampler(1)
	m := MultiSink{a, b}
	m.PushCycle(3)
	m.PushCycle(5)
	if len(a.Samples()) != 2 || len(b.Samples()) != 2 {
		t.Fatal("multisink did not fan out")
	}
	if a.Samples()[1] != 5 || b.Samples()[0] != 3 {
		t.Fatal("multisink values wrong")
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	s := NewIntervalSampler(4)
	s.Flush()
	if len(s.Samples()) != 0 {
		t.Fatal("flush of empty sampler emitted a sample")
	}
}
