package power

import (
	"math"
	"testing"
)

func TestCyclePowerMonotone(t *testing.T) {
	w := DefaultWeights()
	idle := w.Cycle(Activity{})
	if idle != w.Base {
		t.Fatalf("idle power %v, want base %v", idle, w.Base)
	}
	stalled := w.Cycle(Activity{MissesOut: 2})
	if stalled <= idle {
		t.Fatal("miss-wait must add a little power")
	}
	busy := w.Cycle(Activity{FetchActive: true, Issued: 2, IntALU: 2})
	if busy <= 2*stalled {
		t.Fatalf("busy power %v not well above stalled %v", busy, stalled)
	}
	fp := w.Cycle(Activity{FetchActive: true, Issued: 2, FPMulDiv: 2})
	intOnly := w.Cycle(Activity{FetchActive: true, Issued: 2, IntALU: 2})
	if fp <= intOnly {
		t.Fatal("FP units must draw more than integer ALUs")
	}
}

func TestCyclePowerAdditive(t *testing.T) {
	w := DefaultWeights()
	a := Activity{Issued: 1, IntALU: 1}
	b := Activity{Issued: 1, MemAccesses: 1}
	pa, pb := w.Cycle(a), w.Cycle(b)
	combined := w.Cycle(Activity{Issued: 2, IntALU: 1, MemAccesses: 1})
	if math.Abs((pa+pb-w.Base)-combined) > 1e-12 {
		t.Fatalf("power not additive: %v + %v vs %v", pa, pb, combined)
	}
}

func TestIntervalSampler(t *testing.T) {
	s := NewIntervalSampler(4)
	for i := 0; i < 10; i++ {
		s.PushCycle(float64(i))
	}
	s.Flush()
	got := s.Samples()
	want := []float64{1.5, 5.5, 8.5} // (0+1+2+3)/4, (4..7)/4, (8+9)/2
	if len(got) != 3 {
		t.Fatalf("samples %v", got)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("samples %v, want %v", got, want)
		}
	}
}

func TestIntervalSamplerRate(t *testing.T) {
	s := NewIntervalSampler(20)
	if got := s.SampleRate(1e9); got != 50e6 {
		t.Fatalf("sample rate %v, want 50 MHz", got)
	}
	if s.CyclesPerSample() != 20 {
		t.Fatal("cycles per sample wrong")
	}
}

func TestIntervalSamplerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window must panic")
		}
	}()
	NewIntervalSampler(0)
}

func TestMultiSinkFansOut(t *testing.T) {
	a := NewIntervalSampler(1)
	b := NewIntervalSampler(1)
	m := MultiSink{a, b}
	m.PushCycle(3)
	m.PushCycle(5)
	if len(a.Samples()) != 2 || len(b.Samples()) != 2 {
		t.Fatal("multisink did not fan out")
	}
	if a.Samples()[1] != 5 || b.Samples()[0] != 3 {
		t.Fatal("multisink values wrong")
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	s := NewIntervalSampler(4)
	s.Flush()
	if len(s.Samples()) != 0 {
		t.Fatal("flush of empty sampler emitted a sample")
	}
}

// recordSink is a plain per-cycle Sink (deliberately not a BlockSink) used
// to check the MultiSink fallback path.
type recordSink struct{ got []float64 }

func (r *recordSink) PushCycle(p float64) { r.got = append(r.got, p) }

// TestMultiSinkBlockFanout checks that PushBlock hands block-capable sinks
// the whole slice and replays a per-cycle stream into plain sinks, with
// both observing the identical sequence.
func TestMultiSinkBlockFanout(t *testing.T) {
	plain := &recordSink{}
	block := NewIntervalSampler(1) // cyclesPerSample 1: samples echo inputs
	m := MultiSink{plain, block}
	in := []float64{1, 2, 3, 4, 5, 6, 7}
	m.PushBlock(in[:3])
	m.PushBlock(nil)
	m.PushBlock(in[3:])
	if len(plain.got) != len(in) {
		t.Fatalf("plain sink saw %d cycles, want %d", len(plain.got), len(in))
	}
	for i, v := range in {
		if plain.got[i] != v {
			t.Fatalf("plain sink cycle %d = %v, want %v", i, plain.got[i], v)
		}
		if block.Samples()[i] != v {
			t.Fatalf("block sink sample %d = %v, want %v", i, block.Samples()[i], v)
		}
	}
}

// TestIntervalSamplerPushBlockBitIdentical drives the sampler through every
// mix of block and scalar pushes and requires bitwise equality with the
// pure per-cycle path, including partial windows left open across calls.
func TestIntervalSamplerPushBlockBitIdentical(t *testing.T) {
	in := make([]float64, 10007)
	x := 0.5
	for i := range in {
		x = 4 * x * (1 - x) // deterministic chaotic values
		in[i] = x
	}
	for _, cps := range []int{1, 3, 20, 64, 997} {
		ref := NewIntervalSampler(cps)
		for _, p := range in {
			ref.PushCycle(p)
		}
		ref.Flush()
		want := ref.Samples()

		s := NewIntervalSampler(cps)
		// Alternate scalar pushes and ragged block sizes.
		pos := 0
		for i := 0; pos < len(in); i++ {
			n := (i*i*31 + 7) % 400
			if n > len(in)-pos {
				n = len(in) - pos
			}
			if i%3 == 0 {
				for _, p := range in[pos : pos+n] {
					s.PushCycle(p)
				}
			} else {
				s.PushBlock(in[pos : pos+n])
			}
			pos += n
		}
		s.Flush()
		got := s.Samples()
		if len(got) != len(want) {
			t.Fatalf("cps %d: %d samples, want %d", cps, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cps %d sample %d: %v != %v", cps, i, got[i], want[i])
			}
		}
	}
}
