package attrib

import (
	"math"
	"testing"

	"emprof/internal/core"
	"emprof/internal/em"
	"emprof/internal/sim"
)

// synthRegions builds a capture whose signal alternates between regions
// with distinct modulation frequencies, plus the matching ground-truth
// spans. Each region lasts regLen samples.
func synthRegions(regLen int, freqs map[uint16]float64, order []uint16) (*em.Capture, []sim.RegionSpan) {
	const fs = 40e6
	const clock = 1e9
	cps := clock / fs
	var samples []float64
	var spans []sim.RegionSpan
	pos := 0
	for _, r := range order {
		f := freqs[r]
		for i := 0; i < regLen; i++ {
			tm := float64(pos+i) / fs
			samples = append(samples, 1.0+0.4*math.Sin(2*math.Pi*f*tm))
		}
		spans = append(spans, sim.RegionSpan{
			Region:     r,
			StartCycle: uint64(float64(pos) * cps),
			EndCycle:   uint64(float64(pos+regLen) * cps),
		})
		pos += regLen
	}
	return &em.Capture{Samples: samples, SampleRate: fs, ClockHz: clock}, spans
}

var testFreqs = map[uint16]float64{
	1: 1.2e6,
	2: 4.0e6,
	3: 9.5e6,
}

func TestTrainBuildsSignatures(t *testing.T) {
	cap, spans := synthRegions(4000, testFreqs, []uint16{1, 2, 3})
	m, err := Train(cap, spans, TrainConfig{Names: map[uint16]string{1: "a", 2: "b", 3: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Signatures) != 3 {
		t.Fatalf("signatures %d, want 3", len(m.Signatures))
	}
	for _, s := range m.Signatures {
		if s.Frames == 0 || len(s.Spectrum) == 0 {
			t.Fatalf("empty signature %+v", s.Region)
		}
	}
	if m.Signatures[0].Name != "a" {
		t.Fatal("signature names lost")
	}
}

func TestTrainErrors(t *testing.T) {
	cap, _ := synthRegions(1000, testFreqs, []uint16{1})
	if _, err := Train(cap, nil, TrainConfig{}); err == nil {
		t.Fatal("training without spans accepted")
	}
}

func TestAttributeRecoversRegions(t *testing.T) {
	trainCap, trainSpans := synthRegions(4000, testFreqs, []uint16{1, 2, 3})
	m, err := Train(trainCap, trainSpans, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A different execution order with different lengths.
	testCap, testSpans := synthRegions(3000, testFreqs, []uint16{3, 1, 2, 1})
	seg, err := m.Attribute(testCap, testSpans)
	if err != nil {
		t.Fatal(err)
	}
	if seg.FrameAccuracy < 0.85 {
		t.Fatalf("frame accuracy %v, want >= 0.85", seg.FrameAccuracy)
	}
	if len(seg.Segments) < 4 {
		t.Fatalf("segments %d, want >= 4", len(seg.Segments))
	}
	// Segments must tile the capture contiguously.
	for i := 1; i < len(seg.Segments); i++ {
		if seg.Segments[i].StartSample != seg.Segments[i-1].EndSample {
			t.Fatal("segments not contiguous")
		}
	}
}

func TestAttributeGainInvariance(t *testing.T) {
	trainCap, trainSpans := synthRegions(4000, testFreqs, []uint16{1, 2, 3})
	m, err := Train(trainCap, trainSpans, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	testCap, testSpans := synthRegions(3000, testFreqs, []uint16{2, 3, 1})
	// Scale the test capture: frame normalisation must absorb it.
	for i := range testCap.Samples {
		testCap.Samples[i] *= 4.2
	}
	seg, err := m.Attribute(testCap, testSpans)
	if err != nil {
		t.Fatal(err)
	}
	if seg.FrameAccuracy < 0.85 {
		t.Fatalf("frame accuracy %v under gain change", seg.FrameAccuracy)
	}
}

func TestAttributeErrors(t *testing.T) {
	m := &Model{}
	if _, err := m.Attribute(&em.Capture{}, nil); err == nil {
		t.Fatal("empty model accepted")
	}
	m2 := &Model{Signatures: []Signature{{Region: 1, Spectrum: []float64{1}}}, FrameLen: 256, Hop: 128}
	short := &em.Capture{Samples: make([]float64, 10), SampleRate: 40e6, ClockHz: 1e9}
	if _, err := m2.Attribute(short, nil); err == nil {
		t.Fatal("too-short capture accepted")
	}
}

func TestJoinProfile(t *testing.T) {
	seg := &Segmentation{Segments: []Segment{
		{Region: 1, Name: "f1", StartSample: 0, EndSample: 100, StartCycle: 0, EndCycle: 2500},
		{Region: 2, Name: "f2", StartSample: 100, EndSample: 200, StartCycle: 2500, EndCycle: 5000},
	}}
	prof := &core.Profile{
		SampleRate: 40e6, ClockHz: 1e9,
		Stalls: []core.Stall{
			{StartSample: 10, Cycles: 300},
			{StartSample: 20, Cycles: 200},
			{StartSample: 150, Cycles: 400},
		},
	}
	reports := seg.JoinProfile(prof)
	if len(reports) != 2 {
		t.Fatalf("reports %d, want 2", len(reports))
	}
	r1, r2 := reports[0], reports[1]
	if r1.Misses != 2 || r2.Misses != 1 {
		t.Fatalf("misses %d/%d, want 2/1", r1.Misses, r2.Misses)
	}
	if r1.StallCycles != 500 || r2.StallCycles != 400 {
		t.Fatalf("stall cycles %v/%v", r1.StallCycles, r2.StallCycles)
	}
	if r1.AvgMissLatency != 250 {
		t.Fatalf("avg latency %v, want 250", r1.AvgMissLatency)
	}
	if r1.MissRatePerMcycle == 0 || r1.StallPct == 0 {
		t.Fatal("rates not computed")
	}
}

func TestSmoothDecisions(t *testing.T) {
	d := []int{0, 0, 1, 0, 0, 2, 2, 2, 0, 2, 2}
	smoothDecisions(d, 2)
	// Isolated outliers must be voted away.
	if d[2] != 0 {
		t.Fatalf("outlier survived: %v", d)
	}
	if d[6] != 2 {
		t.Fatalf("majority run flipped: %v", d)
	}
}
