package attrib

import (
	"fmt"
	"math"
	"sort"

	"emprof/internal/core"
	"emprof/internal/dsp"
)

// StreamAttributor runs a trained attribution model continuously against
// a sample stream — the online face of Model.Attribute. Each completed
// STFT frame is matched to its nearest region signature as soon as its
// last sample arrives; the profiling service asks it to summarise the
// attributed regions of every rolling window it seals, so a live
// session's windows carry stall→code-region attribution without ever
// rerunning the batch segmentation.
//
// Frame spectra are computed with the same windowed-FFT primitive the
// batch path uses, so a frame decided online matches its batch decision
// exactly; only the majority-vote smoothing differs at the stream's
// moving edge, where future frames are not yet available (it catches up
// as they arrive — windows seal well behind the frame frontier, so
// sealed-window summaries see settled decisions in practice).
type StreamAttributor struct {
	m   *Model
	win []float64

	// Sliding raw-sample buffer: buf[0] is absolute sample index base.
	buf  []float64
	base int64
	n    int64 // absolute samples pushed

	// decisions[t-decBase] is the nearest-signature index of frame t
	// (frame t covers samples [t*hop, t*hop+frameLen)).
	decisions []int16
	decBase   int64
	nextFrame int64

	cbuf  []complex128
	frame []float64
}

// NewStreamAttributor wraps a trained model for continuous matching.
func NewStreamAttributor(m *Model) (*StreamAttributor, error) {
	if m == nil || len(m.Signatures) == 0 {
		return nil, fmt.Errorf("attrib: empty model")
	}
	if m.FrameLen <= 0 || m.Hop <= 0 {
		return nil, fmt.Errorf("attrib: model frame geometry %d/%d invalid", m.FrameLen, m.Hop)
	}
	if len(m.Signatures) > math.MaxInt16 {
		return nil, fmt.Errorf("attrib: %d signatures exceed the stream matcher's bound", len(m.Signatures))
	}
	return &StreamAttributor{m: m, win: dsp.HannCached(m.FrameLen)}, nil
}

// Push feeds raw magnitude samples, deciding every frame they complete.
func (a *StreamAttributor) Push(xs []float64) {
	a.buf = append(a.buf, xs...)
	a.n += int64(len(xs))
	hop, frameLen := int64(a.m.Hop), int64(a.m.FrameLen)
	for a.nextFrame*hop+frameLen <= a.n {
		start := a.nextFrame*hop - a.base
		a.decide(a.buf[start : start+frameLen])
		a.nextFrame++
	}
	// Keep only the samples the next (incomplete) frame needs.
	if keepFrom := a.nextFrame*hop - a.base; keepFrom > 0 {
		a.buf = append(a.buf[:0], a.buf[keepFrom:]...)
		a.base += keepFrom
	}
}

// decide matches one complete frame against the signatures.
func (a *StreamAttributor) decide(frame []float64) {
	a.frame, a.cbuf = dsp.PowerSpectrumInto(frame, a.win, a.cbuf, a.frame[:0])
	// Frame-normalise, as Spectrogram.NormalizeFrames does.
	sum := 0.0
	for _, v := range a.frame {
		sum += v
	}
	if sum > 0 {
		inv := 1 / sum
		for i := range a.frame {
			a.frame[i] *= inv
		}
	}
	best, bestD := 0, math.Inf(1)
	for i := range a.m.Signatures {
		d := dsp.SpectralDistance(a.frame, a.m.Signatures[i].Spectrum)
		if d < bestD {
			best, bestD = i, d
		}
	}
	a.decisions = append(a.decisions, int16(best))
}

// FramesDecided returns how many STFT frames have been matched so far.
func (a *StreamAttributor) FramesDecided() int64 { return a.nextFrame }

// regionAt returns the signature of the frame whose centre is nearest
// the given absolute sample, majority-smoothed over radius 2 as the
// batch path does (clamped at the retained/decided edges).
func (a *StreamAttributor) regionAt(sample int64) (Signature, bool) {
	if len(a.decisions) == 0 {
		return Signature{}, false
	}
	hop, frameLen := int64(a.m.Hop), int64(a.m.FrameLen)
	t := (sample - frameLen/2 + hop/2) / hop
	if t < a.decBase {
		t = a.decBase
	}
	if max := a.decBase + int64(len(a.decisions)) - 1; t > max {
		t = max
	}
	// Majority vote over frames t-2..t+2, as smoothDecisions(d, 2).
	counts := [5]struct {
		sig int16
		n   int
	}{}
	nc := 0
	lo, hi := t-2, t+2
	if lo < a.decBase {
		lo = a.decBase
	}
	if max := a.decBase + int64(len(a.decisions)) - 1; hi > max {
		hi = max
	}
	best, bestN := a.decisions[t-a.decBase], 0
	for j := lo; j <= hi; j++ {
		sig := a.decisions[j-a.decBase]
		found := false
		for i := 0; i < nc; i++ {
			if counts[i].sig == sig {
				counts[i].n++
				if counts[i].n > bestN {
					best, bestN = sig, counts[i].n
				}
				found = true
				break
			}
		}
		if !found && nc < len(counts) {
			counts[nc].sig = sig
			counts[nc].n = 1
			if 1 > bestN {
				best, bestN = sig, 1
			}
			nc++
		}
	}
	return a.m.Signatures[best], true
}

// Summarize attributes a sealed window's stalls to regions: each stall
// onset is matched to its nearest decided frame and the per-region
// miss/stall-cycle totals are returned, ordered by region ID. The
// service calls it under the same lock that serialises Push.
func (a *StreamAttributor) Summarize(stalls []core.Stall) []core.WindowRegion {
	if len(stalls) == 0 || len(a.decisions) == 0 {
		return nil
	}
	type agg struct {
		name    string
		misses  int
		stallCy float64
	}
	byRegion := make(map[uint16]*agg)
	for _, st := range stalls {
		sig, ok := a.regionAt(int64(st.StartSample))
		if !ok {
			continue
		}
		g := byRegion[sig.Region]
		if g == nil {
			g = &agg{name: sig.Name}
			byRegion[sig.Region] = g
		}
		g.misses++
		g.stallCy += st.Cycles
	}
	regions := make([]uint16, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	out := make([]core.WindowRegion, 0, len(regions))
	for _, r := range regions {
		g := byRegion[r]
		out = append(out, core.WindowRegion{
			Region: r, Name: g.name, Misses: g.misses, StallCycles: g.stallCy,
		})
	}
	return out
}

// Drop releases frame decisions no longer reachable by future windows:
// those whose smoothing neighbourhood lies entirely before the given
// absolute sample position. Sealed windows only ever look backwards, so
// the service calls it with the next unsealed window's start.
func (a *StreamAttributor) Drop(before int64) {
	hop, frameLen := int64(a.m.Hop), int64(a.m.FrameLen)
	// Frame t is needed while its centre can be nearest to a sample >=
	// before, or while it can vote in such a frame's neighbourhood.
	cut := (before-frameLen/2)/hop - 3
	if cut <= a.decBase {
		return
	}
	if max := a.decBase + int64(len(a.decisions)); cut > max {
		cut = max
	}
	n := cut - a.decBase
	a.decisions = append(a.decisions[:0], a.decisions[n:]...)
	a.decBase = cut
}
