// Package attrib implements Spectral Profiling-style code attribution
// (paper Section VI-D): short-term spectra of the EM signal are compared
// against per-region signatures learned from a training run, segmenting
// the signal timeline into code regions; EMPROF's detected stalls are then
// joined with the segmentation to produce per-function miss statistics
// like the paper's Table V.
//
// Different loops modulate the processor's activity with different
// periods, so their short-term spectra differ; signatures are frame-
// normalised so matching compares spectral *shape*, which survives probe
// gain and supply drift.
package attrib

import (
	"fmt"
	"math"
	"sort"

	"emprof/internal/core"
	"emprof/internal/dsp"
	"emprof/internal/em"
	"emprof/internal/sim"
)

// Signature is one region's trained spectral fingerprint.
type Signature struct {
	Region uint16
	Name   string
	// Spectrum is the mean normalised frame spectrum of the region.
	Spectrum []float64
	// Frames is how many training frames contributed.
	Frames int
}

// Model is a trained set of region signatures plus the STFT geometry they
// were trained with.
type Model struct {
	Signatures []Signature
	FrameLen   int
	Hop        int
}

// TrainConfig controls signature training.
type TrainConfig struct {
	// FrameLen and Hop are the STFT geometry in samples; defaults 256/128.
	FrameLen, Hop int
	// Names optionally maps region IDs to human-readable names.
	Names map[uint16]string
}

func (c *TrainConfig) setDefaults() {
	if c.FrameLen <= 0 {
		c.FrameLen = 1024
	}
	if c.Hop <= 0 {
		c.Hop = c.FrameLen / 2
	}
}

// Train learns per-region signatures from a capture with ground-truth
// region spans (a labelled training run, the analogue of Spectral
// Profiling's training phase).
func Train(c *em.Capture, spans []sim.RegionSpan, cfg TrainConfig) (*Model, error) {
	cfg.setDefaults()
	if len(spans) == 0 {
		return nil, fmt.Errorf("attrib: no region spans to train on")
	}
	sg := dsp.STFT(c.Samples, c.SampleRate, cfg.FrameLen, cfg.Hop)
	sg.NormalizeFrames()

	cps := c.CyclesPerSample()
	byRegion := make(map[uint16][][]float64)
	for t := 0; t < sg.NumFrames(); t++ {
		centreCycle := uint64((float64(t*cfg.Hop) + float64(cfg.FrameLen)/2) * cps)
		r, ok := regionAt(spans, centreCycle)
		if !ok {
			continue
		}
		byRegion[r] = append(byRegion[r], sg.Frames[t])
	}
	if len(byRegion) == 0 {
		return nil, fmt.Errorf("attrib: no frames fell inside labelled spans")
	}
	m := &Model{FrameLen: cfg.FrameLen, Hop: cfg.Hop}
	regions := make([]uint16, 0, len(byRegion))
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, r := range regions {
		frames := byRegion[r]
		m.Signatures = append(m.Signatures, Signature{
			Region:   r,
			Name:     cfg.Names[r],
			Spectrum: dsp.MeanSpectrum(frames),
			Frames:   len(frames),
		})
	}
	return m, nil
}

// regionAt returns the region executing at the given cycle.
func regionAt(spans []sim.RegionSpan, cycle uint64) (uint16, bool) {
	for _, sp := range spans {
		if cycle >= sp.StartCycle && cycle < sp.EndCycle {
			return sp.Region, true
		}
	}
	return 0, false
}

// Segment is one attributed span of the signal timeline.
type Segment struct {
	Region uint16
	Name   string
	// StartSample/EndSample delimit the span in the capture (half-open).
	StartSample, EndSample int
	// StartCycle/EndCycle are the same span in cycles.
	StartCycle, EndCycle uint64
}

// Cycles returns the segment's length in cycles.
func (s Segment) Cycles() uint64 { return s.EndCycle - s.StartCycle }

// Segmentation is a full attribution of a capture.
type Segmentation struct {
	Segments []Segment
	// FrameAccuracy is the fraction of frames whose nearest signature
	// matches ground truth, when Attribute was given truth spans.
	FrameAccuracy float64
}

// Attribute segments a capture by nearest-signature matching, applying a
// short median smoothing over frame decisions to suppress isolated
// mismatches. truthSpans may be nil; when provided it is used only to
// score FrameAccuracy, never to decide.
func (m *Model) Attribute(c *em.Capture, truthSpans []sim.RegionSpan) (*Segmentation, error) {
	if len(m.Signatures) == 0 {
		return nil, fmt.Errorf("attrib: empty model")
	}
	sg := dsp.STFT(c.Samples, c.SampleRate, m.FrameLen, m.Hop)
	sg.NormalizeFrames()
	n := sg.NumFrames()
	if n == 0 {
		return nil, fmt.Errorf("attrib: capture too short for frame length %d", m.FrameLen)
	}
	decisions := make([]int, n)
	for t := 0; t < n; t++ {
		best, bestD := 0, math.Inf(1)
		for i := range m.Signatures {
			d := dsp.SpectralDistance(sg.Frames[t], m.Signatures[i].Spectrum)
			if d < bestD {
				best, bestD = i, d
			}
		}
		decisions[t] = best
	}
	smoothDecisions(decisions, 2)

	cps := c.CyclesPerSample()
	var seg Segmentation
	// Score against truth if provided.
	if truthSpans != nil {
		correct, scored := 0, 0
		for t := 0; t < n; t++ {
			centreCycle := uint64((float64(t*m.Hop) + float64(m.FrameLen)/2) * cps)
			r, ok := regionAt(truthSpans, centreCycle)
			if !ok {
				continue
			}
			scored++
			if m.Signatures[decisions[t]].Region == r {
				correct++
			}
		}
		if scored > 0 {
			seg.FrameAccuracy = float64(correct) / float64(scored)
		}
	}

	// Collapse consecutive identical decisions into segments.
	frameStartSample := func(t int) int { return t * m.Hop }
	start := 0
	for t := 1; t <= n; t++ {
		if t < n && decisions[t] == decisions[start] {
			continue
		}
		sigIdx := decisions[start]
		lo := frameStartSample(start)
		hi := frameStartSample(t-1) + m.FrameLen
		if t == n && hi < len(c.Samples) {
			hi = len(c.Samples)
		}
		if hi > len(c.Samples) {
			hi = len(c.Samples)
		}
		seg.Segments = append(seg.Segments, Segment{
			Region:      m.Signatures[sigIdx].Region,
			Name:        m.Signatures[sigIdx].Name,
			StartSample: lo,
			EndSample:   hi,
			StartCycle:  uint64(float64(lo) * cps),
			EndCycle:    uint64(float64(hi) * cps),
		})
		start = t
	}
	// Make segments contiguous (each starts where the previous ended).
	for i := 1; i < len(seg.Segments); i++ {
		seg.Segments[i].StartSample = seg.Segments[i-1].EndSample
		seg.Segments[i].StartCycle = seg.Segments[i-1].EndCycle
	}
	return &seg, nil
}

// smoothDecisions applies a (2r+1)-point majority vote in place.
func smoothDecisions(d []int, r int) {
	if len(d) == 0 || r <= 0 {
		return
	}
	orig := make([]int, len(d))
	copy(orig, d)
	counts := make(map[int]int, 4)
	for i := range d {
		for k := range counts {
			delete(counts, k)
		}
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi >= len(orig) {
			hi = len(orig) - 1
		}
		best, bestN := orig[i], 0
		for j := lo; j <= hi; j++ {
			counts[orig[j]]++
			if counts[orig[j]] > bestN {
				best, bestN = orig[j], counts[orig[j]]
			}
		}
		d[i] = best
	}
}

// ManualSegmentation builds a segmentation directly from ground-truth
// region spans — the paper's Table V procedure: "we (manually) mark the
// transitions between these functions in the signal ... and attribute
// misses in each part of the signal to the corresponding function."
func ManualSegmentation(c *em.Capture, spans []sim.RegionSpan, names map[uint16]string) *Segmentation {
	cps := c.CyclesPerSample()
	seg := &Segmentation{FrameAccuracy: 1}
	for _, sp := range spans {
		if _, known := names[sp.Region]; !known {
			// Unlabelled startup/glue spans are not part of the report.
			continue
		}
		lo := int(float64(sp.StartCycle) / cps)
		hi := int(float64(sp.EndCycle) / cps)
		if hi > len(c.Samples) {
			hi = len(c.Samples)
		}
		if lo >= hi {
			continue
		}
		seg.Segments = append(seg.Segments, Segment{
			Region:      sp.Region,
			Name:        names[sp.Region],
			StartSample: lo,
			EndSample:   hi,
			StartCycle:  sp.StartCycle,
			EndCycle:    sp.EndCycle,
		})
	}
	return seg
}

// RegionReport is one row of the Table V-style attribution report.
type RegionReport struct {
	Region uint16
	Name   string
	// Cycles is the total attributed execution time.
	Cycles uint64
	// Misses is the number of EMPROF stalls attributed to the region.
	Misses int
	// MissRatePerMcycle is misses per million cycles.
	MissRatePerMcycle float64
	// StallCycles and StallPct account the attributed stall time.
	StallCycles float64
	StallPct    float64
	// AvgMissLatency is the mean attributed stall duration in cycles.
	AvgMissLatency float64
}

// JoinProfile attributes each EMPROF-detected stall to the segment
// containing its onset and aggregates per-region statistics (Table V).
func (s *Segmentation) JoinProfile(p *core.Profile) []RegionReport {
	type agg struct {
		cycles  uint64
		misses  int
		stallCy float64
		name    string
	}
	byRegion := make(map[uint16]*agg)
	order := []uint16{}
	for _, seg := range s.Segments {
		a := byRegion[seg.Region]
		if a == nil {
			a = &agg{name: seg.Name}
			byRegion[seg.Region] = a
			order = append(order, seg.Region)
		}
		a.cycles += seg.Cycles()
	}
	cps := p.ClockHz / p.SampleRate
	for _, st := range p.Stalls {
		onset := uint64(float64(st.StartSample) * cps)
		for _, seg := range s.Segments {
			if onset >= seg.StartCycle && onset < seg.EndCycle {
				a := byRegion[seg.Region]
				a.misses++
				a.stallCy += st.Cycles
				break
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]RegionReport, 0, len(order))
	for _, r := range order {
		a := byRegion[r]
		rep := RegionReport{
			Region:      r,
			Name:        a.name,
			Cycles:      a.cycles,
			Misses:      a.misses,
			StallCycles: a.stallCy,
		}
		if a.cycles > 0 {
			rep.MissRatePerMcycle = float64(a.misses) / (float64(a.cycles) / 1e6)
			rep.StallPct = 100 * a.stallCy / float64(a.cycles)
		}
		if a.misses > 0 {
			rep.AvgMissLatency = a.stallCy / float64(a.misses)
		}
		out = append(out, rep)
	}
	return out
}
