package attrib

import (
	"math/rand"
	"testing"

	"emprof/internal/core"
	"emprof/internal/dsp"
)

// streamFrames collects the raw (pre-smoothing) per-frame decisions of a
// StreamAttributor fed in the given chunk sizes.
func streamFrames(t *testing.T, m *Model, xs []float64, chunks []int) []int16 {
	t.Helper()
	a, err := NewStreamAttributor(m)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; off < len(xs); i++ {
		n := chunks[i%len(chunks)]
		if off+n > len(xs) {
			n = len(xs) - off
		}
		a.Push(xs[off : off+n])
		off += n
	}
	return append([]int16(nil), a.decisions...)
}

// batchFrames computes the batch path's raw frame decisions (Attribute
// before smoothing) directly.
func batchFrames(m *Model, xs []float64) []int16 {
	sg := dsp.STFT(xs, 40e6, m.FrameLen, m.Hop)
	sg.NormalizeFrames()
	out := make([]int16, sg.NumFrames())
	for t := 0; t < sg.NumFrames(); t++ {
		best, bestD := 0, 1e308
		for i := range m.Signatures {
			if d := dsp.SpectralDistance(sg.Frames[t], m.Signatures[i].Spectrum); d < bestD {
				best, bestD = i, d
			}
		}
		out[t] = int16(best)
	}
	return out
}

func TestStreamDecisionsMatchBatch(t *testing.T) {
	trainCap, trainSpans := synthRegions(4000, testFreqs, []uint16{1, 2, 3})
	m, err := Train(trainCap, trainSpans, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	testCap, _ := synthRegions(3000, testFreqs, []uint16{3, 1, 2, 1})
	want := batchFrames(m, testCap.Samples)
	if len(want) == 0 {
		t.Fatal("no batch frames")
	}
	rng := rand.New(rand.NewSource(11))
	for trial, chunks := range [][]int{
		{len(testCap.Samples)},
		{1000},
		{7, 513, 2048, 64},
		{1 + rng.Intn(3000), 1 + rng.Intn(3000), 1 + rng.Intn(3000)},
	} {
		got := streamFrames(t, m, testCap.Samples, chunks)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d stream frames, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: frame %d decided %d, batch decided %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestStreamSummarize(t *testing.T) {
	trainCap, trainSpans := synthRegions(4000, testFreqs, []uint16{1, 2, 3})
	m, err := Train(trainCap, trainSpans, TrainConfig{Names: map[uint16]string{1: "fa", 2: "fb", 3: "fc"}})
	if err != nil {
		t.Fatal(err)
	}
	// Regions 2,3 back to back, 6000 samples each.
	testCap, _ := synthRegions(6000, testFreqs, []uint16{2, 3})
	a, err := NewStreamAttributor(m)
	if err != nil {
		t.Fatal(err)
	}
	a.Push(testCap.Samples)
	// Stalls well inside each region (away from the boundary at 6000).
	stalls := []core.Stall{
		{StartSample: 2000, Cycles: 100},
		{StartSample: 3000, Cycles: 150},
		{StartSample: 9000, Cycles: 400},
	}
	regs := a.Summarize(stalls)
	if len(regs) != 2 {
		t.Fatalf("regions %d, want 2: %+v", len(regs), regs)
	}
	if regs[0].Region != 2 || regs[0].Misses != 2 || regs[0].StallCycles != 250 || regs[0].Name != "fb" {
		t.Fatalf("region 2 summary wrong: %+v", regs[0])
	}
	if regs[1].Region != 3 || regs[1].Misses != 1 || regs[1].StallCycles != 400 {
		t.Fatalf("region 3 summary wrong: %+v", regs[1])
	}
	if got := a.Summarize(nil); got != nil {
		t.Fatalf("empty stall list summarised to %+v", got)
	}
}

func TestStreamDrop(t *testing.T) {
	trainCap, trainSpans := synthRegions(4000, testFreqs, []uint16{1, 2, 3})
	m, err := Train(trainCap, trainSpans, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	testCap, _ := synthRegions(6000, testFreqs, []uint16{2, 3})

	full, _ := NewStreamAttributor(m)
	full.Push(testCap.Samples)
	wantLate := full.Summarize([]core.Stall{{StartSample: 9000, Cycles: 400}})

	a, _ := NewStreamAttributor(m)
	a.Push(testCap.Samples[:8000])
	a.Drop(7000)
	a.Push(testCap.Samples[8000:])
	if int(a.decBase) == 0 {
		t.Fatal("Drop retained everything")
	}
	if got := a.Summarize([]core.Stall{{StartSample: 9000, Cycles: 400}}); len(got) != 1 ||
		got[0].Region != wantLate[0].Region || got[0].StallCycles != wantLate[0].StallCycles {
		t.Fatalf("post-Drop summary %+v, want %+v", got, wantLate)
	}
	// Frames before the cut clamp to the retained edge rather than crash.
	if got := a.Summarize([]core.Stall{{StartSample: 10, Cycles: 1}}); len(got) != 1 {
		t.Fatalf("pre-cut stall not clamped: %+v", got)
	}
}

func TestStreamAttributorValidation(t *testing.T) {
	if _, err := NewStreamAttributor(nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewStreamAttributor(&Model{Signatures: []Signature{{Region: 1}}}); err == nil {
		t.Fatal("zero frame geometry accepted")
	}
}
