package em

// This file models the spatial side of the acquisition: what happens to
// the received signal when the near-field probe is not at the sweet spot
// found during setup. The paper itself observes that "even small changes
// in probe/antenna position can dramatically change the overall magnitude
// of the received signal", and follow-on work (probe-position-resilient
// profiling, SCNIFFER's automated probe-location search) shows placement
// is the dominant real-world failure mode for EM profiling. Three
// position-dependent effects matter for EMPROF:
//
//  1. Coupling gain. A small magnetic loop couples to the near field of
//     the processor's power-delivery loops; the field of such a source
//     falls off like a dipole, so amplitude decays as
//     1/(1+(r/r0)^2)^(3/2) with lateral offset r, and as the cosine of
//     the loop-plane misalignment. Because the receiver's own noise is
//     position-independent, the effective SNR drops by the same factor —
//     stall floors rise toward the noise floor.
//
//  2. Frequency-dependent attenuation. Higher-frequency envelope content
//     lives in smaller current loops whose near field decays faster with
//     distance, so a displaced probe sees a low-passed envelope: short
//     stalls smear out exactly as if the measurement bandwidth had
//     shrunk. Modelled as a one-pole smoothing of the envelope whose
//     corner tightens with offset.
//
//  3. Channel mixing. Away from the sweet spot the probe hangs over
//     other current loops (other SoC blocks, board regulators) whose
//     aggregate activity tracks the chip-wide mean rather than the
//     core's instantaneous activity. That bleed-through fills in stall
//     dips — the signal no longer reaches the quiescent floor — and is
//     modelled as mixing a running mean of the envelope into the sample.
//
// The zero position is exactly the existing acquisition path: when
// ProbePosition is the zero value no spatial stage is constructed at all,
// so captures are bit-identical to a receiver that predates this model
// (pinned by TestSpatialZeroPositionBitIdentical).

import (
	"fmt"
	"math"
)

// ProbePosition is the probe placement relative to the best-coupling
// reference point: a lateral offset in millimetres and a loop-plane
// misalignment in degrees. The zero value is the reference placement.
type ProbePosition struct {
	// XMM and YMM are the lateral displacement components in mm.
	XMM, YMM float64
	// OrientationDeg is the loop-plane rotation away from the optimal
	// orientation, in degrees (90 ≈ the loop plane parallel to the field,
	// near-zero coupling).
	OrientationDeg float64
}

// IsZero reports whether the probe sits at the reference placement.
func (p ProbePosition) IsZero() bool { return p == ProbePosition{} }

// OffsetMM returns the lateral displacement magnitude in mm.
func (p ProbePosition) OffsetMM() float64 { return math.Hypot(p.XMM, p.YMM) }

// Validate checks the position is physically sensible.
func (p ProbePosition) Validate() error {
	for _, v := range [...]float64{p.XMM, p.YMM, p.OrientationDeg} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("em: probe position %+v not finite", p)
		}
	}
	if p.OffsetMM() > 100 {
		return fmt.Errorf("em: probe offset %.1f mm out of range (near field is gone past 100 mm)", p.OffsetMM())
	}
	return nil
}

// String renders the position compactly, e.g. "(1.5,-0.5)mm/30°".
func (p ProbePosition) String() string {
	if p.OrientationDeg == 0 {
		return fmt.Sprintf("(%g,%g)mm", p.XMM, p.YMM)
	}
	return fmt.Sprintf("(%g,%g)mm/%g°", p.XMM, p.YMM, p.OrientationDeg)
}

// Spatial decay constants. couplingScaleMM is the effective standoff of
// the probe (the r0 of the dipole roll-off): a 2 mm standoff matches the
// paper's "probe touching the package" setup, where a millimetre of
// lateral slip already costs ~30% of the amplitude. leakScaleMM and
// leakMax shape how quickly unrelated-source bleed-through grows with
// offset; minOrientGain is the residual coupling of a fully misaligned
// loop (fields are never perfectly planar).
const (
	couplingScaleMM = 2.0
	leakScaleMM     = 4.0
	leakMax         = 0.6
	minOrientGain   = 0.05
)

// Coupling is the acquisition-path effect of one probe position.
type Coupling struct {
	// Gain is the amplitude attenuation relative to the reference
	// placement, in (0, 1]. Receiver noise is position-independent, so
	// the effective SNR scales by the same factor.
	Gain float64
	// BlurAlpha is the one-pole envelope smoothing coefficient in (0, 1]:
	// out += BlurAlpha*(in-out). 1 means no smearing.
	BlurAlpha float64
	// Leak is the fraction of the running mean envelope mixed into each
	// sample (bleed-through from unrelated current loops), in [0, leakMax).
	Leak float64
}

// CouplingAt maps a probe position to its acquisition effect. It is pure
// and deterministic; CouplingAt(zero) is the identity coupling
// {Gain: 1, BlurAlpha: 1, Leak: 0}.
func CouplingAt(p ProbePosition) Coupling {
	r := p.OffsetMM() / couplingScaleMM
	r2 := r * r
	g := 1 / math.Pow(1+r2, 1.5)
	if p.OrientationDeg != 0 {
		og := math.Abs(math.Cos(p.OrientationDeg * math.Pi / 180))
		if og < minOrientGain {
			og = minOrientGain
		}
		g *= og
	}
	lr := p.OffsetMM() / leakScaleMM
	return Coupling{
		Gain:      g,
		BlurAlpha: 1 / (1 + r),
		Leak:      leakMax * lr * lr / (1 + lr*lr),
	}
}

// PositionGain returns the coupling gain at a pure lateral offset of
// offsetMM millimetres (orientation unchanged). It is the single
// displacement→gain curve shared with internal/faults, whose probe-drift
// and probe-bump injectors modulate a capture's gain along it; the full
// blur/leak/SNR effect exists only in synthesis, where the signal is
// still complex-valued.
func PositionGain(offsetMM float64) float64 {
	return CouplingAt(ProbePosition{XMM: offsetMM}).Gain
}

// spatial is the streaming state of the position stage inside a Receiver.
// It runs on the envelope after RBW smoothing and before the impairment
// chain, in both the scalar and block paths (same per-sample order, so
// the two stay bit-identical). Constructed only for non-zero positions.
type spatial struct {
	gain      float64
	blurAlpha float64
	leak      float64
	meanAlpha float64

	blur, mean float64
	warm       bool
}

// newSpatial builds the position stage, or returns nil for the reference
// placement (the existing, position-free pipeline).
func newSpatial(p ProbePosition, sampleRate float64) *spatial {
	if p.IsZero() {
		return nil
	}
	c := CouplingAt(p)
	// The bleed-through mean tracks board-level activity, which moves on
	// supply/thermal timescales (~1 ms), far slower than any stall.
	meanWin := sampleRate * 1e-3
	if meanWin < 16 {
		meanWin = 16
	}
	return &spatial{
		gain:      c.Gain,
		blurAlpha: c.BlurAlpha,
		leak:      c.Leak,
		meanAlpha: 1 / meanWin,
	}
}

// apply transforms one envelope sample through the position stage.
func (s *spatial) apply(env float64) float64 {
	if !s.warm {
		s.blur, s.mean = env, env
		s.warm = true
	} else {
		s.blur += s.blurAlpha * (env - s.blur)
		s.mean += s.meanAlpha * (env - s.mean)
	}
	return s.gain * ((1-s.leak)*s.blur + s.leak*s.mean)
}
