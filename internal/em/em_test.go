package em

import (
	"math"
	"testing"
	"testing/quick"
)

func cleanConfig() ReceiverConfig {
	return ReceiverConfig{
		ClockHz:     1e9,
		BandwidthHz: 50e6,
		ProbeGain:   1,
		SNRdB:       math.Inf(1),
	}
}

func TestReceiverConfigValidation(t *testing.T) {
	if err := cleanConfig().Validate(); err != nil {
		t.Fatalf("clean config rejected: %v", err)
	}
	muts := []func(*ReceiverConfig){
		func(c *ReceiverConfig) { c.ClockHz = 0 },
		func(c *ReceiverConfig) { c.BandwidthHz = 0 },
		func(c *ReceiverConfig) { c.BandwidthHz = 2e9 },
		func(c *ReceiverConfig) { c.ProbeGain = 0 },
		func(c *ReceiverConfig) { c.DriftDepth = 1 },
		func(c *ReceiverConfig) { c.DriftDepth = 0.1; c.DriftPeriodS = 0 },
	}
	for i, mut := range muts {
		cfg := cleanConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestReceiverDecimation(t *testing.T) {
	r := MustNewReceiver(cleanConfig())
	if r.DecimationFactor() != 20 {
		t.Fatalf("decimation %d, want 20", r.DecimationFactor())
	}
	if r.SampleRate() != 50e6 {
		t.Fatalf("sample rate %v, want 50 MHz", r.SampleRate())
	}
	for i := 0; i < 1000; i++ {
		r.PushCycle(1)
	}
	if got := len(r.Capture().Samples); got != 50 {
		t.Fatalf("%d samples from 1000 cycles at factor 20, want 50", got)
	}
}

func TestReceiverDCLevelPreserved(t *testing.T) {
	r := MustNewReceiver(cleanConfig())
	for i := 0; i < 4000; i++ {
		r.PushCycle(1.5)
	}
	s := r.Capture().Samples
	// Steady state after filter warm-up.
	for _, v := range s[20:] {
		if math.Abs(v-1.5) > 1e-6 {
			t.Fatalf("steady-state level %v, want 1.5", v)
		}
	}
}

func TestReceiverSeesStallDip(t *testing.T) {
	r := MustNewReceiver(cleanConfig())
	// 2000 busy cycles, 300 stalled, 2000 busy.
	push := func(n int, p float64) {
		for i := 0; i < n; i++ {
			r.PushCycle(p)
		}
	}
	push(2000, 1.4)
	push(300, 0.25)
	push(2000, 1.4)
	r.Flush()
	s := r.Capture().Samples
	min := s[20]
	for _, v := range s[20:] {
		if v < min {
			min = v
		}
	}
	if min > 0.4 {
		t.Fatalf("stall dip bottom %v, want < 0.4", min)
	}
}

func TestProbeGainScalesSignal(t *testing.T) {
	cfg := cleanConfig()
	cfg.ProbeGain = 3
	r := MustNewReceiver(cfg)
	for i := 0; i < 2000; i++ {
		r.PushCycle(1)
	}
	s := r.Capture().Samples
	if got := s[len(s)-1]; math.Abs(got-3) > 1e-6 {
		t.Fatalf("gained level %v, want 3", got)
	}
}

func TestDriftModulatesSignal(t *testing.T) {
	cfg := cleanConfig()
	cfg.DriftDepth = 0.1
	cfg.DriftPeriodS = 1e-5 // short period so one test sees full swings
	r := MustNewReceiver(cfg)
	for i := 0; i < 60000; i++ {
		r.PushCycle(1)
	}
	s := r.Capture().Samples[50:]
	min, max := s[0], s[0]
	for _, v := range s {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max < 1.08 || min > 0.92 {
		t.Fatalf("drift swing [%v, %v], want ~[0.9, 1.1]", min, max)
	}
}

func TestNoiseProducesFloorAndSpread(t *testing.T) {
	cfg := cleanConfig()
	cfg.SNRdB = 20
	cfg.Seed = 7
	r := MustNewReceiver(cfg)
	for i := 0; i < 40000; i++ {
		r.PushCycle(0) // pure stall: output is the noise floor
	}
	s := r.Capture().Samples[50:]
	var sum float64
	for _, v := range s {
		if v < 0 {
			t.Fatal("magnitude must be non-negative")
		}
		sum += v
	}
	mean := sum / float64(len(s))
	if mean <= 0.01 || mean > 0.3 {
		t.Fatalf("noise floor mean %v, want a small positive level", mean)
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []float64 {
		cfg := cleanConfig()
		cfg.SNRdB = 25
		cfg.Seed = seed
		r := MustNewReceiver(cfg)
		for i := 0; i < 2000; i++ {
			r.PushCycle(1)
		}
		return r.Capture().Samples
	}
	a, b := run(1), run(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical captures")
		}
	}
	c := run(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must give different noise")
	}
}

func TestCaptureHelpers(t *testing.T) {
	c := &Capture{Samples: make([]float64, 100), SampleRate: 50e6, ClockHz: 1e9}
	if got := c.Duration(); math.Abs(got-2e-6) > 1e-15 {
		t.Fatalf("duration %v, want 2 µs", got)
	}
	if got := c.CyclesPerSample(); got != 20 {
		t.Fatalf("cycles/sample %v, want 20", got)
	}
	sl := c.Slice(10, 30)
	if len(sl.Samples) != 20 || sl.SampleRate != c.SampleRate {
		t.Fatal("slice wrong")
	}
	// Out-of-range slicing clamps.
	if got := c.Slice(-5, 1000); len(got.Samples) != 100 {
		t.Fatal("slice must clamp to bounds")
	}
	if got := c.Slice(50, 10); len(got.Samples) != 0 {
		t.Fatal("inverted slice must be empty")
	}
	empty := &Capture{}
	if empty.Duration() != 0 {
		t.Fatal("empty capture duration must be 0")
	}
}

// TestSliceDegenerateBounds pins the clamping cases the old partial clamp
// let through to a slice-bounds panic: lo beyond the capture end, and a
// negative hi combined with an in-range lo.
func TestSliceDegenerateBounds(t *testing.T) {
	c := &Capture{Samples: make([]float64, 10), SampleRate: 50e6, ClockHz: 1e9}
	cases := []struct {
		lo, hi, want int
	}{
		{200, 300, 0},   // lo > len
		{15, 5, 0},      // lo > len, hi in range
		{3, -2, 0},      // negative hi
		{-4, -1, 0},     // both negative
		{0, 10, 10},     // full range stays full
		{10, 10, 0},     // empty at the end
		{-100, 100, 10}, // wildly out of range on both sides
	}
	for _, tc := range cases {
		got := c.Slice(tc.lo, tc.hi)
		if len(got.Samples) != tc.want {
			t.Errorf("Slice(%d, %d) = %d samples, want %d", tc.lo, tc.hi, len(got.Samples), tc.want)
		}
		if got.SampleRate != c.SampleRate || got.ClockHz != c.ClockHz {
			t.Errorf("Slice(%d, %d) lost metadata", tc.lo, tc.hi)
		}
	}
}

// TestCyclesPerSampleDegenerate: missing sample-rate metadata must yield 0
// (like Duration), never ±Inf or NaN.
func TestCyclesPerSampleDegenerate(t *testing.T) {
	for _, rate := range []float64{0, -50e6} {
		c := &Capture{Samples: make([]float64, 4), SampleRate: rate, ClockHz: 1e9}
		if got := c.CyclesPerSample(); got != 0 {
			t.Errorf("CyclesPerSample with rate %v = %v, want 0", rate, got)
		}
	}
}

func TestSliceAliasesAndCloneCopies(t *testing.T) {
	c := &Capture{Samples: []float64{0, 1, 2, 3, 4}, SampleRate: 50e6, ClockHz: 1e9}

	// Slice is documented to alias the parent's backing array.
	sl := c.Slice(1, 4)
	sl.Samples[0] = 99
	if c.Samples[1] != 99 {
		t.Fatal("Slice must alias the parent samples")
	}

	// Clone must be fully independent in both directions.
	cl := c.Clone()
	if cl.SampleRate != c.SampleRate || cl.ClockHz != c.ClockHz || len(cl.Samples) != len(c.Samples) {
		t.Fatal("Clone metadata/length mismatch")
	}
	cl.Samples[0] = -1
	if c.Samples[0] != 0 {
		t.Fatal("mutating the clone changed the original")
	}
	c.Samples[2] = -2
	if cl.Samples[2] == -2 {
		t.Fatal("mutating the original changed the clone")
	}
}

func TestSynthesizeFromSeries(t *testing.T) {
	series := []float64{1, 1, 0, 0, 1, 1}
	cap, err := SynthesizeFromSeries(series, 20, cleanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Samples) != len(series) {
		t.Fatalf("synthesized %d samples from %d values", len(cap.Samples), len(series))
	}
	if _, err := SynthesizeFromSeries(series, 0, cleanConfig()); err == nil {
		t.Fatal("zero cyclesPerValue accepted")
	}
}

// TestGainInvarianceOfShape is the property EMPROF's normalisation relies
// on: scaling the probe gain scales the whole capture uniformly.
func TestGainInvarianceOfShape(t *testing.T) {
	f := func(gainRaw uint8) bool {
		gain := 0.5 + float64(gainRaw%40)/10
		base := MustNewReceiver(cleanConfig())
		cfg := cleanConfig()
		cfg.ProbeGain = gain
		scaled := MustNewReceiver(cfg)
		for i := 0; i < 3000; i++ {
			p := 1.0
			if i > 1000 && i < 1400 {
				p = 0.25
			}
			base.PushCycle(p)
			scaled.PushCycle(p)
		}
		a, b := base.Capture().Samples, scaled.Capture().Samples
		for i := range a {
			if math.Abs(b[i]-gain*a[i]) > 1e-9*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
