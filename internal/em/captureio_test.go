package em

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCaptureRoundTrip(t *testing.T) {
	orig := &Capture{
		Samples:    []float64{0, 1.5, -2.25, 3.125, 1e-9},
		SampleRate: 40e6,
		ClockHz:    1.008e9,
	}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != orig.SampleRate || got.ClockHz != orig.ClockHz {
		t.Fatalf("metadata %v/%v", got.SampleRate, got.ClockHz)
	}
	if len(got.Samples) != len(orig.Samples) {
		t.Fatalf("sample count %d", len(got.Samples))
	}
	for i := range orig.Samples {
		if got.Samples[i] != orig.Samples[i] {
			t.Fatalf("sample %d: %v != %v", i, got.Samples[i], orig.Samples[i])
		}
	}
}

func TestCaptureFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.cap")
	orig := &Capture{Samples: make([]float64, 1000), SampleRate: 50e6, ClockHz: 1e9}
	for i := range orig.Samples {
		orig.Samples[i] = float64(i) * 0.001
	}
	if err := SaveCapture(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCapture(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 1000 || got.Samples[999] != 0.999 {
		t.Fatal("file round trip corrupted data")
	}
}

func TestReadCaptureRejectsGarbage(t *testing.T) {
	if _, err := ReadCapture(strings.NewReader("not a capture file at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCapture(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadCaptureRejectsTruncated(t *testing.T) {
	orig := &Capture{Samples: make([]float64, 100), SampleRate: 50e6, ClockHz: 1e9}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, orig); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-13]
	if _, err := ReadCapture(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated capture accepted")
	}
}

func TestReadCaptureRejectsBadMetadata(t *testing.T) {
	bad := &Capture{Samples: []float64{1}, SampleRate: 0, ClockHz: 1e9}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCapture(&buf); err == nil {
		t.Fatal("zero sample rate accepted on read")
	}
}
