package em

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// captureMagic identifies the capture file format: a fixed header followed
// by little-endian float64 samples.
const captureMagic = "EMPROFCAP1"

// headerSize is the full EMPROFCAP header: magic, sample rate, clock
// frequency, declared sample count.
const headerSize = len(captureMagic) + 8 + 8 + 8

// MaxDeclaredSamples bounds the sample count a capture header may declare
// (2^34 samples = 128 GiB of float64s). Headers above it are rejected;
// below it, readers still allocate incrementally, so a hostile header
// never costs more memory than the bytes actually supplied.
const MaxDeclaredSamples = 1 << 34

// writeBlockSamples sizes WriteCapture's encode buffer: 8 KiSamples =
// 64 KiB per Write call, large enough that syscall and copy overhead
// amortise away.
const writeBlockSamples = 8192

// WriteCapture serialises a capture. Samples are encoded in 64 KiB blocks
// rather than one 8-byte write each, which keeps the per-sample cost to a
// single PutUint64 and amortised copy.
func WriteCapture(w io.Writer, c *Capture) error {
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, captureMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(c.SampleRate))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(c.ClockHz))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(int64(len(c.Samples))))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, writeBlockSamples*8)
	for off := 0; off < len(c.Samples); off += writeBlockSamples {
		end := off + writeBlockSamples
		if end > len(c.Samples) {
			end = len(c.Samples)
		}
		block := c.Samples[off:end]
		for i, v := range block {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:len(block)*8]); err != nil {
			return err
		}
	}
	return nil
}

// Decoder incrementally decodes a stream of capture bytes, in bounded
// memory, regardless of how the stream is chunked: bytes may arrive one
// at a time or in megabyte blocks, across any number of Feed calls, with
// words and the header split anywhere. It backs both ReadCapture and the
// profiling service's streaming ingest, where captures arrive over the
// network and must never be buffered whole.
//
// Two wire formats are supported:
//
//   - EMPROFCAP (NewStreamDecoder): the WriteCapture format — magic,
//     sample-rate and clock metadata, a declared sample count, then the
//     samples. The declared count is validated against
//     MaxDeclaredSamples but never pre-allocated.
//   - raw (NewRawDecoder): a headerless stream of little-endian float64
//     words, for callers that established the acquisition metadata out of
//     band (the service's session-create call).
type Decoder struct {
	raw bool

	// Header accumulation (EMPROFCAP only).
	hdr     []byte
	hdrDone bool

	sampleRate float64
	clockHz    float64
	declared   int64

	// Word reassembly across Feed boundaries.
	partial [8]byte
	np      int

	emitted  int64
	trailing int64
	err      error
}

// NewStreamDecoder returns a decoder for the EMPROFCAP format (header +
// samples).
func NewStreamDecoder() *Decoder {
	return &Decoder{hdr: make([]byte, 0, headerSize)}
}

// NewRawDecoder returns a decoder for a headerless little-endian float64
// stream.
func NewRawDecoder() *Decoder { return &Decoder{raw: true, hdrDone: true} }

// Feed consumes the next chunk of the stream, calling emit once per
// completed sample, in order. It returns a non-nil error on malformed
// input (bad magic, implausible metadata); once an error is returned the
// decoder is poisoned and every later Feed returns the same error.
func (d *Decoder) Feed(p []byte, emit func(float64)) error {
	if d.err != nil {
		return d.err
	}
	if !d.hdrDone {
		need := headerSize - len(d.hdr)
		if need > len(p) {
			need = len(p)
		}
		d.hdr = append(d.hdr, p[:need]...)
		p = p[need:]
		if len(d.hdr) < headerSize {
			return nil
		}
		if err := d.parseHeader(); err != nil {
			d.err = err
			return err
		}
		d.hdrDone = true
	}
	for len(p) > 0 {
		if !d.raw && d.emitted == d.declared {
			// The declared sample count has been satisfied; anything
			// further is trailing data the caller may treat as an error
			// (Trailing) — ReadCapture ignores it, as it always has.
			d.trailing += int64(len(p))
			return nil
		}
		if d.np > 0 || len(p) < 8 {
			n := copy(d.partial[d.np:], p)
			d.np += n
			p = p[n:]
			if d.np < 8 {
				return nil
			}
			d.np = 0
			d.emitted++
			emit(math.Float64frombits(binary.LittleEndian.Uint64(d.partial[:])))
			continue
		}
		// Fast path: whole words directly from the input chunk.
		words := len(p) / 8
		if !d.raw {
			if rem := d.declared - d.emitted; int64(words) > rem {
				words = int(rem)
			}
		}
		for i := 0; i < words; i++ {
			emit(math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:])))
		}
		d.emitted += int64(words)
		p = p[words*8:]
	}
	return nil
}

// decodeBlockSamples sizes FeedBlock's decode scratch: 8 KiSamples =
// 64 KiB per emit, matching the service's ingest chunk so one network
// read usually becomes one emit.
const decodeBlockSamples = 8192

// decodeBlockPool recycles FeedBlock scratch blocks across calls and
// decoders, so steady-state block decoding allocates nothing.
var decodeBlockPool = sync.Pool{
	New: func() any { b := make([]float64, decodeBlockSamples); return &b },
}

// FeedBlock consumes the next chunk of the stream like Feed, but hands
// completed samples to emit in batches decoded into a pooled scratch
// block: aligned whole words are decoded in bulk; only the header and
// word fragments spanning chunk boundaries take the byte-at-a-time
// path (those emit a one-sample block). The sequence of samples emitted
// is bit-identical to Feed's for any chunking of the stream.
//
// The slice passed to emit is only valid for the duration of the call
// and is reused afterwards — emit must consume it (e.g. feed it to
// StreamAnalyzer.PushBlock, which retains nothing) rather than keep it.
func (d *Decoder) FeedBlock(p []byte, emit func([]float64)) error {
	if d.err != nil {
		return d.err
	}
	if !d.hdrDone {
		need := headerSize - len(d.hdr)
		if need > len(p) {
			need = len(p)
		}
		d.hdr = append(d.hdr, p[:need]...)
		p = p[need:]
		if len(d.hdr) < headerSize {
			return nil
		}
		if err := d.parseHeader(); err != nil {
			d.err = err
			return err
		}
		d.hdrDone = true
	}
	var bp *[]float64
	var block []float64
	for len(p) > 0 {
		if !d.raw && d.emitted == d.declared {
			d.trailing += int64(len(p))
			break
		}
		if d.np > 0 || len(p) < 8 {
			n := copy(d.partial[d.np:], p)
			d.np += n
			p = p[n:]
			if d.np < 8 {
				break
			}
			d.np = 0
			d.emitted++
			if bp == nil {
				bp = decodeBlockPool.Get().(*[]float64)
				block = *bp
			}
			block[0] = math.Float64frombits(binary.LittleEndian.Uint64(d.partial[:]))
			emit(block[:1])
			continue
		}
		words := len(p) / 8
		if !d.raw {
			if rem := d.declared - d.emitted; int64(words) > rem {
				words = int(rem)
			}
		}
		if bp == nil {
			bp = decodeBlockPool.Get().(*[]float64)
			block = *bp
		}
		for words > 0 {
			run := words
			if run > decodeBlockSamples {
				run = decodeBlockSamples
			}
			for i := 0; i < run; i++ {
				block[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
			}
			d.emitted += int64(run)
			p = p[run*8:]
			words -= run
			emit(block[:run])
		}
	}
	if bp != nil {
		decodeBlockPool.Put(bp)
	}
	return nil
}

// parseHeader validates the accumulated EMPROFCAP header.
func (d *Decoder) parseHeader() error {
	if string(d.hdr[:len(captureMagic)]) != captureMagic {
		return fmt.Errorf("em: not a capture file (magic %q)", d.hdr[:len(captureMagic)])
	}
	off := len(captureMagic)
	d.sampleRate = math.Float64frombits(binary.LittleEndian.Uint64(d.hdr[off:]))
	d.clockHz = math.Float64frombits(binary.LittleEndian.Uint64(d.hdr[off+8:]))
	d.declared = int64(binary.LittleEndian.Uint64(d.hdr[off+16:]))
	if d.declared < 0 || d.declared > MaxDeclaredSamples {
		return fmt.Errorf("em: implausible sample count %d", d.declared)
	}
	if !(d.sampleRate > 0) || !(d.clockHz > 0) ||
		math.IsInf(d.sampleRate, 0) || math.IsInf(d.clockHz, 0) {
		return fmt.Errorf("em: invalid capture metadata rate=%v clock=%v", d.sampleRate, d.clockHz)
	}
	return nil
}

// DropFragment discards a half-assembled word left by an interrupted
// Feed. The profiling service calls it before replay-skipping a retried
// push body: the retry resends the fragmented sample whole, so the stale
// prefix bytes must not be prepended to the resent ones.
func (d *Decoder) DropFragment() { d.np = 0 }

// HeaderDone reports whether the metadata is available (always true for a
// raw decoder).
func (d *Decoder) HeaderDone() bool { return d.hdrDone }

// Meta returns the decoded acquisition metadata and declared sample count;
// valid once HeaderDone. Raw decoders report zeros.
func (d *Decoder) Meta() (sampleRate, clockHz float64, declared int64) {
	return d.sampleRate, d.clockHz, d.declared
}

// Emitted returns the number of samples decoded so far.
func (d *Decoder) Emitted() int64 { return d.emitted }

// Complete reports whether the stream forms a whole capture: header
// parsed, declared count reached, no word fragment pending. Raw streams
// are complete at any word boundary.
func (d *Decoder) Complete() bool {
	if d.err != nil || !d.hdrDone || d.np != 0 {
		return false
	}
	return d.raw || d.emitted == d.declared
}

// Trailing returns the number of bytes received beyond the declared
// sample count.
func (d *Decoder) Trailing() int64 { return d.trailing }

// DecoderState is a serializable snapshot of a Decoder mid-stream, part
// of the profiling service's session hand-off wire format: the receiving
// shard must resume word reassembly at the exact byte the old owner
// stopped at, or a float64 split across the hand-off boundary would be
// decoded wrong (or twice). A poisoned decoder has no state — sessions
// that failed to decode are not handed off.
type DecoderState struct {
	Raw        bool    `json:"raw"`
	Hdr        []byte  `json:"hdr,omitempty"`
	HdrDone    bool    `json:"hdr_done"`
	SampleRate float64 `json:"sample_rate,omitempty"`
	ClockHz    float64 `json:"clock_hz,omitempty"`
	Declared   int64   `json:"declared,omitempty"`
	Partial    []byte  `json:"partial,omitempty"`
	Emitted    int64   `json:"emitted"`
	Trailing   int64   `json:"trailing,omitempty"`
}

// State snapshots the decoder. It must not be called on a poisoned
// decoder (one whose Feed has returned an error).
func (d *Decoder) State() (DecoderState, error) {
	if d.err != nil {
		return DecoderState{}, fmt.Errorf("em: cannot snapshot poisoned decoder: %w", d.err)
	}
	return DecoderState{
		Raw:        d.raw,
		Hdr:        append([]byte(nil), d.hdr...),
		HdrDone:    d.hdrDone,
		SampleRate: d.sampleRate,
		ClockHz:    d.clockHz,
		Declared:   d.declared,
		Partial:    append([]byte(nil), d.partial[:d.np]...),
		Emitted:    d.emitted,
		Trailing:   d.trailing,
	}, nil
}

// RestoreDecoder rebuilds a decoder from a snapshot; feeding the
// remaining stream bytes continues bit-identically to the exporting
// instance.
func RestoreDecoder(st DecoderState) (*Decoder, error) {
	if len(st.Partial) >= 8 {
		return nil, fmt.Errorf("em: decoder state with %d-byte word fragment", len(st.Partial))
	}
	if st.Emitted < 0 || st.Trailing < 0 {
		return nil, fmt.Errorf("em: decoder state with negative counters")
	}
	if !st.Raw {
		if len(st.Hdr) > headerSize {
			return nil, fmt.Errorf("em: decoder state header overflows (%d bytes)", len(st.Hdr))
		}
		if st.HdrDone && len(st.Hdr) != headerSize {
			return nil, fmt.Errorf("em: decoder state header incomplete (%d bytes)", len(st.Hdr))
		}
		if st.Declared < 0 || st.Declared > MaxDeclaredSamples {
			return nil, fmt.Errorf("em: implausible sample count %d", st.Declared)
		}
		if st.HdrDone && st.Emitted > st.Declared {
			return nil, fmt.Errorf("em: decoder state emitted %d beyond declared %d", st.Emitted, st.Declared)
		}
	}
	d := &Decoder{
		raw:        st.Raw,
		hdr:        make([]byte, 0, headerSize),
		hdrDone:    st.HdrDone,
		sampleRate: st.SampleRate,
		clockHz:    st.ClockHz,
		declared:   st.Declared,
		emitted:    st.Emitted,
		trailing:   st.Trailing,
	}
	d.hdr = append(d.hdr, st.Hdr...)
	d.np = copy(d.partial[:], st.Partial)
	return d, nil
}

// readChunk sizes ReadCapture's transfer buffer (64 KiB).
const readChunk = 64 * 1024

// ReadCapture deserialises a capture written by WriteCapture. It reads in
// bounded chunks and grows the sample slice as data actually arrives, so
// a truncated or hostile header that declares billions of samples fails
// after a 64 KiB read, not a 128 GiB allocation.
func ReadCapture(r io.Reader) (*Capture, error) {
	d := NewStreamDecoder()
	var c Capture
	buf := make([]byte, readChunk)
	for !d.Complete() {
		n, err := r.Read(buf)
		if n > 0 {
			if ferr := d.Feed(buf[:n], func(v float64) { c.Samples = append(c.Samples, v) }); ferr != nil {
				return nil, ferr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if !d.HeaderDone() {
		if len(d.hdr) >= len(captureMagic) && string(d.hdr[:len(captureMagic)]) != captureMagic {
			return nil, fmt.Errorf("em: not a capture file (magic %q)", d.hdr[:len(captureMagic)])
		}
		return nil, fmt.Errorf("em: reading capture header: %w", io.ErrUnexpectedEOF)
	}
	if !d.Complete() {
		return nil, fmt.Errorf("em: truncated capture at sample %d: %w", d.Emitted(), io.ErrUnexpectedEOF)
	}
	c.SampleRate, c.ClockHz, _ = d.Meta()
	// A complete capture with zero samples decodes to a nil slice; keep
	// the round-trip exact for captures written from an empty non-nil
	// slice by leaving Samples as produced.
	return &c, nil
}

// SaveCapture writes a capture to a file.
func SaveCapture(path string, c *Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCapture(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCapture reads a capture from a file.
func LoadCapture(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCapture(f)
}
