package em

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// captureMagic identifies the capture file format: a fixed header followed
// by little-endian float64 samples.
const captureMagic = "EMPROFCAP1"

// WriteCapture serialises a capture.
func WriteCapture(w io.Writer, c *Capture) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(captureMagic); err != nil {
		return err
	}
	for _, v := range []float64{c.SampleRate, c.ClockHz} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(c.Samples))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range c.Samples {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCapture deserialises a capture written by WriteCapture.
func ReadCapture(r io.Reader) (*Capture, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(captureMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("em: reading capture header: %w", err)
	}
	if string(magic) != captureMagic {
		return nil, fmt.Errorf("em: not a capture file (magic %q)", magic)
	}
	var c Capture
	if err := binary.Read(br, binary.LittleEndian, &c.SampleRate); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &c.ClockHz); err != nil {
		return nil, err
	}
	var n int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("em: implausible sample count %d", n)
	}
	if c.SampleRate <= 0 || c.ClockHz <= 0 {
		return nil, fmt.Errorf("em: invalid capture metadata rate=%v clock=%v", c.SampleRate, c.ClockHz)
	}
	c.Samples = make([]float64, n)
	buf := make([]byte, 8)
	for i := range c.Samples {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("em: truncated capture at sample %d: %w", i, err)
		}
		c.Samples[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return &c, nil
}

// SaveCapture writes a capture to a file.
func SaveCapture(path string, c *Capture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCapture(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCapture reads a capture from a file.
func LoadCapture(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCapture(f)
}
