package em

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// testCapture builds a deterministic capture for codec tests.
func testCapture(n int) *Capture {
	c := &Capture{SampleRate: 40e6, ClockHz: 1.008e9, Samples: make([]float64, n)}
	for i := range c.Samples {
		c.Samples[i] = 1 + 0.25*math.Sin(float64(i)*0.01) + 1e-6*float64(i%97)
	}
	return c
}

// TestDecoderChunkInvariance feeds the same encoded capture through the
// stream decoder at every awkward chunking (1-byte, 7-byte, header-split,
// whole) and requires identical output each time.
func TestDecoderChunkInvariance(t *testing.T) {
	orig := testCapture(513)
	var buf bytes.Buffer
	if err := WriteCapture(&buf, orig); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	for _, chunk := range []int{1, 3, 7, 8, 13, headerSize - 1, headerSize + 5, 1000, len(enc)} {
		d := NewStreamDecoder()
		var got []float64
		for off := 0; off < len(enc); off += chunk {
			end := off + chunk
			if end > len(enc) {
				end = len(enc)
			}
			if err := d.Feed(enc[off:end], func(v float64) { got = append(got, v) }); err != nil {
				t.Fatalf("chunk=%d: %v", chunk, err)
			}
		}
		if !d.Complete() {
			t.Fatalf("chunk=%d: decoder not complete", chunk)
		}
		rate, clock, declared := d.Meta()
		if rate != orig.SampleRate || clock != orig.ClockHz || declared != int64(len(orig.Samples)) {
			t.Fatalf("chunk=%d: meta %v/%v/%d", chunk, rate, clock, declared)
		}
		if len(got) != len(orig.Samples) {
			t.Fatalf("chunk=%d: %d samples", chunk, len(got))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(orig.Samples[i]) {
				t.Fatalf("chunk=%d sample %d: %v != %v", chunk, i, got[i], orig.Samples[i])
			}
		}
	}
}

// TestRawDecoder checks the headerless float64 path, including words split
// across Feed calls.
func TestRawDecoder(t *testing.T) {
	want := []float64{0, 1.5, -2.25, math.Pi, 1e-300}
	var enc []byte
	for _, v := range want {
		var b [8]byte
		putFloat64(b[:], v)
		enc = append(enc, b[:]...)
	}
	d := NewRawDecoder()
	var got []float64
	for _, b := range enc { // worst case: one byte at a time
		if err := d.Feed([]byte{b}, func(v float64) { got = append(got, v) }); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Complete() {
		t.Fatal("raw decoder not complete at word boundary")
	}
	if len(got) != len(want) {
		t.Fatalf("%d samples", len(got))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
		}
	}
	// A dangling half-word leaves the stream incomplete.
	if err := d.Feed([]byte{1, 2, 3}, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if d.Complete() {
		t.Fatal("complete with a partial word pending")
	}
}

func putFloat64(b []byte, v float64) {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

// TestDecoderTrailing checks that bytes beyond the declared count are
// reported, not silently decoded.
func TestDecoderTrailing(t *testing.T) {
	orig := testCapture(4)
	var buf bytes.Buffer
	if err := WriteCapture(&buf, orig); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 24))
	d := NewStreamDecoder()
	n := 0
	if err := d.Feed(buf.Bytes(), func(float64) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("decoded %d samples past declared count", n)
	}
	if d.Trailing() != 24 {
		t.Fatalf("trailing = %d, want 24", d.Trailing())
	}
	if !d.Complete() {
		t.Fatal("declared count reached but not complete")
	}
}

// TestDecoderPoisonedAfterError checks that a malformed header fails every
// later Feed with the same error.
func TestDecoderPoisonedAfterError(t *testing.T) {
	d := NewStreamDecoder()
	err := d.Feed([]byte("XXXXXXXXXXxxxxxxxxxxxxxxxxxxxxxxxxxxxx"), func(float64) {})
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	if err2 := d.Feed([]byte{0}, func(float64) {}); err2 != err {
		t.Fatalf("poisoned decoder returned %v, want %v", err2, err)
	}
}

// TestReadCaptureHostileHeaderCheap proves the allocation bomb is gone: a
// header declaring 2^34 samples followed by almost no data must fail
// after reading what is actually there, allocating nowhere near 128 GiB.
// (Before the bounded-chunk rewrite this call attempted
// make([]float64, 1<<34) up front.)
func TestReadCaptureHostileHeaderCheap(t *testing.T) {
	var buf bytes.Buffer
	hdr := testCapture(0)
	if err := WriteCapture(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	// Patch the declared count to the maximum the format admits.
	for i := 0; i < 8; i++ {
		enc[headerSize-8+i] = byte(uint64(MaxDeclaredSamples) >> (8 * i))
	}
	enc = append(enc, make([]byte, 80)...) // ten real samples, billions declared
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := ReadCapture(bytes.NewReader(enc)); err == nil {
			t.Fatal("truncated hostile capture accepted")
		}
	})
	// Decoder + chunk buffer + a few appends; the old code's single
	// 128 GiB make() would abort the process, but keep a sanity bound.
	if allocs > 64 {
		t.Fatalf("hostile header cost %v allocations", allocs)
	}

	// One over the cap is rejected at header-parse time.
	for i := 0; i < 8; i++ {
		enc[headerSize-8+i] = byte(uint64(MaxDeclaredSamples+1) >> (8 * i))
	}
	if _, err := ReadCapture(bytes.NewReader(enc)); err == nil {
		t.Fatal("over-cap sample count accepted")
	}
}

// TestReadCaptureShortReads drives ReadCapture through a reader that
// returns one byte per Read call.
func TestReadCaptureShortReads(t *testing.T) {
	orig := testCapture(100)
	var buf bytes.Buffer
	if err := WriteCapture(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(iotest{r: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 100 || got.Samples[50] != orig.Samples[50] {
		t.Fatal("short-read decode corrupted data")
	}
}

// iotest is a one-byte-at-a-time reader (avoids importing testing/iotest
// for one helper).
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

// BenchmarkWriteCapture measures the block encoder; compare with
// BenchmarkWriteCaptureNaive (the seed's one-8-byte-write-per-sample
// loop) to see the win the block rewrite buys.
func BenchmarkWriteCapture(b *testing.B) {
	c := testCapture(1 << 20)
	b.SetBytes(int64(len(c.Samples) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteCapture(io.Discard, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteCaptureNaive reproduces the pre-rewrite encoder (bufio +
// one 8-byte Write per sample) as the baseline for BenchmarkWriteCapture.
func BenchmarkWriteCaptureNaive(b *testing.B) {
	c := testCapture(1 << 20)
	b.SetBytes(int64(len(c.Samples) * 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := writeCaptureNaive(io.Discard, c); err != nil {
			b.Fatal(err)
		}
	}
}

func writeCaptureNaive(w io.Writer, c *Capture) error {
	var hdr [headerSize]byte
	copy(hdr[:], captureMagic)
	putFloat64(hdr[len(captureMagic):], c.SampleRate)
	putFloat64(hdr[len(captureMagic)+8:], c.ClockHz)
	putFloat64(hdr[len(captureMagic)+16:], 0)
	for i := 0; i < 8; i++ {
		hdr[len(captureMagic)+16+i] = byte(uint64(len(c.Samples)) >> (8 * i))
	}
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range c.Samples {
		putFloat64(buf, v)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func BenchmarkReadCapture(b *testing.B) {
	c := testCapture(1 << 20)
	var buf bytes.Buffer
	if err := WriteCapture(&buf, c); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadCapture(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
}
