package em

import (
	"math"
	"testing"

	"emprof/internal/sim"
)

// blockConfigs are the receiver variants the block-equivalence tests sweep:
// the clean SESC-style proxy, a noisy receiver, drift-only, and the full
// impairment chain at a non-integer clock/bandwidth ratio.
func blockConfigs() []ReceiverConfig {
	clean := cleanConfig()
	noisy := clean
	noisy.SNRdB = 15
	noisy.Seed = 7
	drifty := clean
	drifty.DriftDepth = 0.2
	drifty.DriftPeriodS = 1e-4
	full := ReceiverConfig{
		ClockHz:      1e9,
		BandwidthHz:  40e6, // decim = round(25) — and 1e9/40e6 = 25 exactly; vary below
		ProbeGain:    3.3,
		SNRdB:        12,
		DriftPeriodS: 5e-5,
		DriftDepth:   0.15,
		Seed:         99,
	}
	ragged := full
	ragged.BandwidthHz = 37e6 // 1e9/37e6 ≈ 27.03 → decim 27, ragged windows
	return []ReceiverConfig{clean, noisy, drifty, full, ragged}
}

// stallySeries builds a busy/stall per-cycle power pattern.
func stallySeries(n int, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	s := make([]float64, n)
	busy := true
	left := 50
	for i := range s {
		if left == 0 {
			busy = !busy
			if busy {
				left = 30 + rng.Intn(120)
			} else {
				left = 5 + rng.Intn(40)
			}
		}
		left--
		if busy {
			s[i] = 1 + 0.3*rng.Float64()
		} else {
			s[i] = 0.25
		}
	}
	return s
}

// pushSplits feeds cycles through the receiver with a deterministic mix of
// PushCycle and PushBlock calls of varying sizes (including empty blocks).
func pushSplits(r *Receiver, cycles []float64, seed uint64) {
	rng := sim.NewRNG(seed)
	pos := 0
	for pos < len(cycles) {
		n := rng.Intn(2000) // 0..1999, empty blocks included
		if n > len(cycles)-pos {
			n = len(cycles) - pos
		}
		if rng.Intn(4) == 0 {
			for _, p := range cycles[pos : pos+n] {
				r.PushCycle(p)
			}
		} else {
			r.PushBlock(cycles[pos : pos+n])
		}
		pos += n
	}
}

// TestPushBlockBitIdenticalToPushCycle is the core tentpole property: for
// every receiver configuration and every block split — including splits
// that interleave scalar pushes, leave partial integration windows open,
// and cross RBW filter state — the capture must equal the pure per-cycle
// capture bit for bit.
func TestPushBlockBitIdenticalToPushCycle(t *testing.T) {
	cycles := stallySeries(60000, 3)
	for ci, cfg := range blockConfigs() {
		ref := MustNewReceiver(cfg)
		for _, p := range cycles {
			ref.PushCycle(p)
		}
		ref.Flush()
		want := ref.Capture().Samples

		for split := uint64(1); split <= 6; split++ {
			r := MustNewReceiver(cfg)
			pushSplits(r, cycles, split)
			r.Flush()
			got := r.Capture().Samples
			if len(got) != len(want) {
				t.Fatalf("cfg %d split %d: %d samples, want %d", ci, split, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cfg %d split %d sample %d: got %v, want %v (bitwise)",
						ci, split, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPushBlockImpairedSeries repeats the equivalence with a hostile input
// series: NaN, Inf, zeros and huge magnitudes (as a fault-impaired power
// proxy would contain). The block path must not diverge or panic.
func TestPushBlockImpairedSeries(t *testing.T) {
	n := 10000
	cycles := make([]float64, n)
	rng := sim.NewRNG(11)
	for i := range cycles {
		switch rng.Intn(8) {
		case 0:
			cycles[i] = math.NaN()
		case 1:
			cycles[i] = math.Inf(1)
		case 2:
			cycles[i] = 0
		case 3:
			cycles[i] = 1e300
		default:
			cycles[i] = rng.Float64()
		}
	}
	for ci, cfg := range blockConfigs() {
		ref := MustNewReceiver(cfg)
		for _, p := range cycles {
			ref.PushCycle(p)
		}
		ref.Flush()
		want := ref.Capture().Samples

		r := MustNewReceiver(cfg)
		pushSplits(r, cycles, 5)
		r.Flush()
		got := r.Capture().Samples
		if len(got) != len(want) {
			t.Fatalf("cfg %d: %d samples, want %d", ci, len(got), len(want))
		}
		for i := range want {
			same := got[i] == want[i] || (math.IsNaN(got[i]) && math.IsNaN(want[i]))
			if !same {
				t.Fatalf("cfg %d sample %d: got %v, want %v", ci, i, got[i], want[i])
			}
		}
	}
}

// TestSynthesizeFromSeriesMatchesPerCycle pins the block-batched series
// synthesis against a hand-rolled per-cycle receiver loop.
func TestSynthesizeFromSeriesMatchesPerCycle(t *testing.T) {
	series := stallySeries(3000, 17)
	for _, cpv := range []int{1, 7, 25, 5000} {
		for ci, cfg := range blockConfigs() {
			ref := MustNewReceiver(cfg)
			for _, v := range series {
				for c := 0; c < cpv; c++ {
					ref.PushCycle(v)
				}
			}
			ref.Flush()
			want := ref.Capture()

			got, err := SynthesizeFromSeries(series, cpv, cfg)
			if err != nil {
				t.Fatalf("cfg %d cpv %d: %v", ci, cpv, err)
			}
			if len(got.Samples) != len(want.Samples) {
				t.Fatalf("cfg %d cpv %d: %d samples, want %d", ci, cpv, len(got.Samples), len(want.Samples))
			}
			for i := range want.Samples {
				if got.Samples[i] != want.Samples[i] {
					t.Fatalf("cfg %d cpv %d sample %d: got %v, want %v",
						ci, cpv, i, got.Samples[i], want.Samples[i])
				}
			}
		}
	}
}

// BenchmarkSynthesisReceiver contrasts the per-cycle and block synthesis
// paths on the same noisy receiver configuration (the embench harness and
// CI regression gate measure the same pipeline end to end).
func BenchmarkSynthesisReceiver(b *testing.B) {
	cfg := ReceiverConfig{
		ClockHz:      1e9,
		BandwidthHz:  40e6,
		ProbeGain:    2,
		SNRdB:        15,
		DriftPeriodS: 1e-4,
		DriftDepth:   0.1,
		Seed:         1,
	}
	cycles := stallySeries(1<<20, 9)
	b.Run("push-cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := MustNewReceiver(cfg)
			for _, p := range cycles {
				r.PushCycle(p)
			}
			r.Flush()
		}
		b.SetBytes(int64(8 * len(cycles)))
	})
	b.Run("push-block", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := MustNewReceiver(cfg)
			for pos := 0; pos < len(cycles); pos += 4096 {
				end := pos + 4096
				if end > len(cycles) {
					end = len(cycles)
				}
				r.PushBlock(cycles[pos:end])
			}
			r.Flush()
		}
		b.SetBytes(int64(8 * len(cycles)))
	})
}
