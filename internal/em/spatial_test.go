package em

import (
	"math"
	"testing"
)

// testSeries builds a busy/stall envelope pattern for spatial tests.
func testSeries(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		v := 1.0
		if i%200 >= 150 && i%200 < 170 {
			v = 0.1 // stall dip
		}
		s[i] = v
	}
	return s
}

func captureAt(t *testing.T, cfg ReceiverConfig, series []float64) []float64 {
	t.Helper()
	r, err := NewReceiver(cfg)
	if err != nil {
		t.Fatalf("NewReceiver(%+v): %v", cfg, err)
	}
	r.PushBlock(series)
	r.Flush()
	return r.Capture().Samples
}

// TestSpatialZeroPositionBitIdentical pins the spatial model's most
// important contract (the same discipline as the block-kernel equivalence
// tests of the synthesis pipeline): a receiver configured with the
// explicit zero position produces byte-for-byte the same capture as one
// whose config predates the Position field, through both the scalar and
// block paths. The spatial stage must not exist at the reference
// placement — not even as multiplications by 1.0.
func TestSpatialZeroPositionBitIdentical(t *testing.T) {
	series := testSeries(200_000)
	base := ReceiverConfig{
		ClockHz:      1e9,
		BandwidthHz:  40e6,
		ProbeGain:    1.3,
		SNRdB:        18,
		DriftPeriodS: 1e-3,
		DriftDepth:   0.08,
		Seed:         7,
	}
	withPos := base
	withPos.Position = ProbePosition{} // explicit zero

	ref := captureAt(t, base, series)
	got := captureAt(t, withPos, series)
	if len(ref) != len(got) {
		t.Fatalf("lengths differ: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
			t.Fatalf("sample %d differs: %v vs %v", i, ref[i], got[i])
		}
	}

	// Scalar path too: zero position + PushCycle must match the block
	// path exactly (the existing scalar/block equivalence, preserved).
	r := MustNewReceiver(withPos)
	for _, p := range series {
		r.PushCycle(p)
	}
	r.Flush()
	cyc := r.Capture().Samples
	if len(cyc) != len(ref) {
		t.Fatalf("scalar path length %d vs %d", len(cyc), len(ref))
	}
	for i := range ref {
		if math.Float64bits(ref[i]) != math.Float64bits(cyc[i]) {
			t.Fatalf("scalar sample %d differs: %v vs %v", i, ref[i], cyc[i])
		}
	}
}

// TestSpatialScalarBlockEquivalent checks the displaced-probe pipeline
// keeps the scalar/block bit-identity promise: the spatial stage is
// stateful, so ordering bugs between emit and emitBlock would show here.
func TestSpatialScalarBlockEquivalent(t *testing.T) {
	series := testSeries(100_000)
	cfg := ReceiverConfig{
		ClockHz:     1e9,
		BandwidthHz: 40e6,
		ProbeGain:   1,
		SNRdB:       20,
		Position:    ProbePosition{XMM: 1.5, YMM: -0.5, OrientationDeg: 20},
		Seed:        3,
	}
	blk := captureAt(t, cfg, series)
	r := MustNewReceiver(cfg)
	for _, p := range series {
		r.PushCycle(p)
	}
	r.Flush()
	cyc := r.Capture().Samples
	if len(blk) != len(cyc) {
		t.Fatalf("lengths differ: %d vs %d", len(blk), len(cyc))
	}
	for i := range blk {
		if math.Float64bits(blk[i]) != math.Float64bits(cyc[i]) {
			t.Fatalf("sample %d differs: %v vs %v", i, blk[i], cyc[i])
		}
	}
}

// TestCouplingCurve checks the physics-shaped properties the rest of the
// system relies on: identity at zero, monotone decay with offset, cosine
// orientation loss, and growing blur/leak with displacement.
func TestCouplingCurve(t *testing.T) {
	if c := CouplingAt(ProbePosition{}); c.Gain != 1 || c.BlurAlpha != 1 || c.Leak != 0 {
		t.Fatalf("zero position not identity: %+v", c)
	}
	prevGain, prevLeak, prevBlur := 1.0, 0.0, 1.0
	for _, off := range []float64{0.5, 1, 2, 3, 5, 8} {
		c := CouplingAt(ProbePosition{XMM: off})
		if !(c.Gain < prevGain) || c.Gain <= 0 {
			t.Fatalf("gain not strictly decreasing at %v mm: %v (prev %v)", off, c.Gain, prevGain)
		}
		if !(c.Leak > prevLeak) || c.Leak >= leakMax {
			t.Fatalf("leak not growing (bounded) at %v mm: %v (prev %v)", off, c.Leak, prevLeak)
		}
		if !(c.BlurAlpha < prevBlur) || c.BlurAlpha <= 0 {
			t.Fatalf("blur alpha not tightening at %v mm: %v (prev %v)", off, c.BlurAlpha, prevBlur)
		}
		prevGain, prevLeak, prevBlur = c.Gain, c.Leak, c.BlurAlpha
	}
	// Orientation: 60° costs cos(60°) = half the amplitude; 90° floors at
	// the residual coupling rather than zero.
	g0 := CouplingAt(ProbePosition{XMM: 1}).Gain
	g60 := CouplingAt(ProbePosition{XMM: 1, OrientationDeg: 60}).Gain
	if math.Abs(g60-g0/2) > 1e-12 {
		t.Fatalf("60° gain %v, want %v", g60, g0/2)
	}
	g90 := CouplingAt(ProbePosition{XMM: 1, OrientationDeg: 90}).Gain
	if g90 <= 0 || g90 > g0*minOrientGain*1.01 {
		t.Fatalf("90° gain %v outside residual floor", g90)
	}
	if PositionGain(2) != CouplingAt(ProbePosition{XMM: 2}).Gain {
		t.Fatal("PositionGain disagrees with CouplingAt")
	}
}

// TestSpatialDegradesCapture checks the end-to-end effect the robustness
// experiments depend on: displacing the probe lowers amplitude and fills
// stall dips (dip floor rises relative to the busy level), rather than
// merely scaling the whole capture.
func TestSpatialDegradesCapture(t *testing.T) {
	series := testSeries(400_000)
	base := ReceiverConfig{ClockHz: 1e9, BandwidthHz: 40e6, ProbeGain: 1, SNRdB: math.Inf(1)}
	at := func(off float64) (busy, floor float64) {
		cfg := base
		cfg.Position = ProbePosition{XMM: off}
		s := captureAt(t, cfg, series)
		s = s[len(s)/2:] // steady state
		busy, floor = 0, math.Inf(1)
		for _, v := range s {
			if v > busy {
				busy = v
			}
			if v < floor {
				floor = v
			}
		}
		return busy, floor
	}
	b0, f0 := at(0)
	b3, f3 := at(3)
	if !(b3 < 0.5*b0) {
		t.Fatalf("3 mm offset barely attenuates: busy %v vs %v", b3, b0)
	}
	// Dip contrast: the floor/busy ratio must rise with offset (leak and
	// blur fill the dips), which is what eventually costs detections.
	if !(f3/b3 > f0/b0) {
		t.Fatalf("dip contrast did not degrade: %v/%v vs %v/%v", f3, b3, f0, b0)
	}
}

// TestPositionValidate exercises the config-level guards.
func TestPositionValidate(t *testing.T) {
	bad := []ProbePosition{
		{XMM: math.NaN()},
		{YMM: math.Inf(1)},
		{OrientationDeg: math.Inf(-1)},
		{XMM: 80, YMM: 80},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("position %+v validated", p)
		}
	}
	cfg := ReceiverConfig{ClockHz: 1e9, BandwidthHz: 40e6, ProbeGain: 1, SNRdB: 20,
		Position: ProbePosition{XMM: math.NaN()}}
	if _, err := NewReceiver(cfg); err == nil {
		t.Fatal("NewReceiver accepted NaN probe position")
	}
}
