package em

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadCapture exercises the capture codec with arbitrary bytes and
// with genuine round-trips. Invariants:
//
//   - ReadCapture must never panic, whatever the input;
//   - it must never allocate samples beyond what the input bytes can
//     actually encode (the pre-rewrite reader trusted the header's count
//     up to 2^34 — a 128 GiB allocation from a 34-byte input);
//   - the incremental Decoder fed the same bytes in arbitrary chunkings
//     must agree with ReadCapture exactly;
//   - a capture synthesised from the fuzz input must round-trip through
//     WriteCapture → ReadCapture bit-identically.
func FuzzReadCapture(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte(captureMagic), uint8(3))
	// A well-formed two-sample capture.
	var seed bytes.Buffer
	if err := WriteCapture(&seed, &Capture{
		Samples: []float64{1, 0.25}, SampleRate: 40e6, ClockHz: 1e9,
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes(), uint8(7))
	// A hostile header: valid magic/metadata, maximum declared count.
	hostile := append([]byte(nil), seed.Bytes()[:headerSize]...)
	for i := 0; i < 8; i++ {
		hostile[headerSize-8+i] = byte(uint64(MaxDeclaredSamples) >> (8 * i))
	}
	f.Add(hostile, uint8(5))

	f.Fuzz(func(t *testing.T, data []byte, chunkSel uint8) {
		// 1. Arbitrary bytes: no panic, bounded allocation.
		c, err := ReadCapture(bytes.NewReader(data))
		if err == nil {
			max := (len(data) - headerSize) / 8
			if max < 0 {
				max = 0
			}
			if len(c.Samples) > max {
				t.Fatalf("decoded %d samples from %d input bytes", len(c.Samples), len(data))
			}
		}

		// 2. Chunked Decoder agrees with ReadCapture.
		chunk := int(chunkSel%32) + 1
		d := NewStreamDecoder()
		var inc []float64
		var incErr error
		for off := 0; off < len(data) && incErr == nil; off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			incErr = d.Feed(data[off:end], func(v float64) { inc = append(inc, v) })
		}
		if err == nil {
			if incErr != nil {
				t.Fatalf("ReadCapture ok but Decoder failed: %v", incErr)
			}
			if len(inc) != len(c.Samples) {
				t.Fatalf("decoder emitted %d samples, ReadCapture %d", len(inc), len(c.Samples))
			}
			for i := range inc {
				if math.Float64bits(inc[i]) != math.Float64bits(c.Samples[i]) {
					t.Fatalf("sample %d: decoder %v, ReadCapture %v", i, inc[i], c.Samples[i])
				}
			}
		}

		// 3. Round-trip a capture synthesised from the input bytes.
		n := len(data) / 8
		if n > 4096 {
			n = 4096
		}
		rt := &Capture{SampleRate: 40e6, ClockHz: 1e9, Samples: make([]float64, n)}
		for i := range rt.Samples {
			bits := uint64(0)
			for j := 0; j < 8; j++ {
				bits |= uint64(data[i*8+j]) << (8 * j)
			}
			rt.Samples[i] = math.Float64frombits(bits)
		}
		var buf bytes.Buffer
		if err := WriteCapture(&buf, rt); err != nil {
			t.Fatalf("WriteCapture: %v", err)
		}
		got, err := ReadCapture(&buf)
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if len(got.Samples) != n || got.SampleRate != rt.SampleRate || got.ClockHz != rt.ClockHz {
			t.Fatalf("round-trip shape: %d samples %v/%v", len(got.Samples), got.SampleRate, got.ClockHz)
		}
		for i := range got.Samples {
			if math.Float64bits(got.Samples[i]) != math.Float64bits(rt.Samples[i]) {
				t.Fatalf("round-trip sample %d: %x != %x", i,
					math.Float64bits(got.Samples[i]), math.Float64bits(rt.Samples[i]))
			}
		}
	})
}

// FuzzDecoderFeedBlock pins the block decoder against the per-sample
// one: for any input bytes and any pair of chunkings — including both
// wire formats — FeedBlock must emit the exact sample sequence Feed
// does, agree on every counter (Emitted, Trailing, Complete, Meta),
// and return the same error at the same point. Chunk invariance of
// FeedBlock itself follows from comparing two different block
// chunkings against one Feed reference.
func FuzzDecoderFeedBlock(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(9), false)
	f.Add([]byte(captureMagic), uint8(3), uint8(1), false)
	var seed bytes.Buffer
	if err := WriteCapture(&seed, &Capture{
		Samples: []float64{1, 0.25, -3.5}, SampleRate: 40e6, ClockHz: 1e9,
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes(), uint8(7), uint8(31), false)
	f.Add(seed.Bytes(), uint8(16), uint8(2), true)
	// Declared count smaller than the payload → trailing bytes.
	short := append([]byte(nil), seed.Bytes()...)
	short[headerSize-8] = 1
	f.Add(short, uint8(5), uint8(13), false)

	f.Fuzz(func(t *testing.T, data []byte, chunkA, chunkB uint8, raw bool) {
		newDec := func() *Decoder {
			if raw {
				return NewRawDecoder()
			}
			return NewStreamDecoder()
		}
		feed := func(d *Decoder, chunk int, block bool) ([]float64, error) {
			var out []float64
			var err error
			for off := 0; off < len(data) && err == nil; off += chunk {
				end := off + chunk
				if end > len(data) {
					end = len(data)
				}
				if block {
					err = d.FeedBlock(data[off:end], func(vs []float64) {
						out = append(out, vs...)
					})
				} else {
					err = d.Feed(data[off:end], func(v float64) { out = append(out, v) })
				}
			}
			return out, err
		}
		check := func(name string, ref *Decoder, refOut []float64, refErr error, chunk int) {
			d := newDec()
			out, err := feed(d, chunk, true)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("%s: FeedBlock err=%v, Feed err=%v", name, err, refErr)
			}
			if len(out) != len(refOut) {
				t.Fatalf("%s: FeedBlock emitted %d samples, Feed %d", name, len(out), len(refOut))
			}
			for i := range out {
				if math.Float64bits(out[i]) != math.Float64bits(refOut[i]) {
					t.Fatalf("%s: sample %d: block %x, per-sample %x", name, i,
						math.Float64bits(out[i]), math.Float64bits(refOut[i]))
				}
			}
			if d.Emitted() != ref.Emitted() || d.Trailing() != ref.Trailing() ||
				d.Complete() != ref.Complete() || d.HeaderDone() != ref.HeaderDone() {
				t.Fatalf("%s: counters differ: emitted %d/%d trailing %d/%d complete %v/%v",
					name, d.Emitted(), ref.Emitted(), d.Trailing(), ref.Trailing(),
					d.Complete(), ref.Complete())
			}
			sr, ck, decl := d.Meta()
			rsr, rck, rdecl := ref.Meta()
			if math.Float64bits(sr) != math.Float64bits(rsr) ||
				math.Float64bits(ck) != math.Float64bits(rck) || decl != rdecl {
				t.Fatalf("%s: metadata differs", name)
			}
		}

		ca := int(chunkA%64) + 1
		cb := int(chunkB)*64 + 1
		ref := newDec()
		refOut, refErr := feed(ref, ca, false)
		check("same-chunking", ref, refOut, refErr, ca)
		check("cross-chunking", ref, refOut, refErr, cb)
		check("one-shot", ref, refOut, refErr, len(data)+1)
	})
}
