package em

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadCapture exercises the capture codec with arbitrary bytes and
// with genuine round-trips. Invariants:
//
//   - ReadCapture must never panic, whatever the input;
//   - it must never allocate samples beyond what the input bytes can
//     actually encode (the pre-rewrite reader trusted the header's count
//     up to 2^34 — a 128 GiB allocation from a 34-byte input);
//   - the incremental Decoder fed the same bytes in arbitrary chunkings
//     must agree with ReadCapture exactly;
//   - a capture synthesised from the fuzz input must round-trip through
//     WriteCapture → ReadCapture bit-identically.
func FuzzReadCapture(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte(captureMagic), uint8(3))
	// A well-formed two-sample capture.
	var seed bytes.Buffer
	if err := WriteCapture(&seed, &Capture{
		Samples: []float64{1, 0.25}, SampleRate: 40e6, ClockHz: 1e9,
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes(), uint8(7))
	// A hostile header: valid magic/metadata, maximum declared count.
	hostile := append([]byte(nil), seed.Bytes()[:headerSize]...)
	for i := 0; i < 8; i++ {
		hostile[headerSize-8+i] = byte(uint64(MaxDeclaredSamples) >> (8 * i))
	}
	f.Add(hostile, uint8(5))

	f.Fuzz(func(t *testing.T, data []byte, chunkSel uint8) {
		// 1. Arbitrary bytes: no panic, bounded allocation.
		c, err := ReadCapture(bytes.NewReader(data))
		if err == nil {
			max := (len(data) - headerSize) / 8
			if max < 0 {
				max = 0
			}
			if len(c.Samples) > max {
				t.Fatalf("decoded %d samples from %d input bytes", len(c.Samples), len(data))
			}
		}

		// 2. Chunked Decoder agrees with ReadCapture.
		chunk := int(chunkSel%32) + 1
		d := NewStreamDecoder()
		var inc []float64
		var incErr error
		for off := 0; off < len(data) && incErr == nil; off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			incErr = d.Feed(data[off:end], func(v float64) { inc = append(inc, v) })
		}
		if err == nil {
			if incErr != nil {
				t.Fatalf("ReadCapture ok but Decoder failed: %v", incErr)
			}
			if len(inc) != len(c.Samples) {
				t.Fatalf("decoder emitted %d samples, ReadCapture %d", len(inc), len(c.Samples))
			}
			for i := range inc {
				if math.Float64bits(inc[i]) != math.Float64bits(c.Samples[i]) {
					t.Fatalf("sample %d: decoder %v, ReadCapture %v", i, inc[i], c.Samples[i])
				}
			}
		}

		// 3. Round-trip a capture synthesised from the input bytes.
		n := len(data) / 8
		if n > 4096 {
			n = 4096
		}
		rt := &Capture{SampleRate: 40e6, ClockHz: 1e9, Samples: make([]float64, n)}
		for i := range rt.Samples {
			bits := uint64(0)
			for j := 0; j < 8; j++ {
				bits |= uint64(data[i*8+j]) << (8 * j)
			}
			rt.Samples[i] = math.Float64frombits(bits)
		}
		var buf bytes.Buffer
		if err := WriteCapture(&buf, rt); err != nil {
			t.Fatalf("WriteCapture: %v", err)
		}
		got, err := ReadCapture(&buf)
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if len(got.Samples) != n || got.SampleRate != rt.SampleRate || got.ClockHz != rt.ClockHz {
			t.Fatalf("round-trip shape: %d samples %v/%v", len(got.Samples), got.SampleRate, got.ClockHz)
		}
		for i := range got.Samples {
			if math.Float64bits(got.Samples[i]) != math.Float64bits(rt.Samples[i]) {
				t.Fatalf("round-trip sample %d: %x != %x", i,
					math.Float64bits(got.Samples[i]), math.Float64bits(rt.Samples[i]))
			}
		}
	})
}
