// Package em synthesizes the electromagnetic side-channel signal a
// near-field probe + receiver would acquire from the simulated device, and
// models the acquisition path of the paper's setup (magnetic probe into a
// spectrum analyzer / software-defined receiver tuned to the processor
// clock frequency with a selectable measurement bandwidth).
//
// The physical signal is the processor's switching activity amplitude-
// modulated onto the clock carrier and its harmonics; the receiver
// downconverts a band of width B around the carrier and records the
// complex baseband, whose magnitude tracks switching activity. Simulating
// the GHz carrier explicitly is pointless — the receiver output depends
// only on the band-limited activity envelope — so the chain here operates
// directly at baseband:
//
//	per-cycle activity → integrate-and-dump to the receiver rate (the
//	band-limited front end) → resolution-bandwidth smoothing FIR →
//	probe gain × supply drift × (envelope + complex AWGN) → magnitude.
//
// Everything EMPROF's normalisation stage must cope with on real hardware
// is reproduced: unknown multiplicative probe coupling, slow power-supply
// drift, a noise floor, and finite bandwidth that smears short stalls.
package em

import (
	"fmt"
	"math"

	"emprof/internal/dsp"
	"emprof/internal/sim"
)

// Capture is an acquired magnitude trace plus the metadata EMPROF needs to
// convert sample indices into cycles and seconds.
type Capture struct {
	// Samples is the received signal magnitude.
	Samples []float64
	// SampleRate is the receiver output rate in Hz (≈ the measurement
	// bandwidth).
	SampleRate float64
	// ClockHz is the profiled processor's clock frequency. EMPROF
	// multiplies detected stall durations by it to report cycles, exactly
	// as in the paper's Section III-A.
	ClockHz float64
}

// Duration returns the capture length in seconds.
func (c *Capture) Duration() float64 {
	if c.SampleRate <= 0 {
		return 0
	}
	return float64(len(c.Samples)) / c.SampleRate
}

// CyclesPerSample returns the number of processor cycles each sample
// spans, or 0 for a capture with no (or nonsensical) sample-rate
// metadata — mirroring Duration, and keeping the ±Inf/NaN a bare division
// would produce out of downstream index arithmetic.
func (c *Capture) CyclesPerSample() float64 {
	if c.SampleRate <= 0 {
		return 0
	}
	return c.ClockHz / c.SampleRate
}

// Clone returns a deep copy of the capture: the returned Samples slice
// has its own backing array, so mutating either capture never affects the
// other. Fault injection (internal/faults) always operates on clones.
func (c *Capture) Clone() *Capture {
	return &Capture{
		Samples:    append([]float64(nil), c.Samples...),
		SampleRate: c.SampleRate,
		ClockHz:    c.ClockHz,
	}
}

// Slice returns a sub-capture covering sample indices [lo, hi).
//
// The returned capture ALIASES the receiver's backing array — writes to
// either capture's samples in the shared range are visible through both.
// Use Clone (or Slice(...).Clone()) when an independent copy is needed.
// Out-of-range bounds are clamped into [0, len(Samples)] — including
// lo beyond the capture end and negative hi, both of which previously
// slipped through the partial clamping and panicked.
func (c *Capture) Slice(lo, hi int) *Capture {
	n := len(c.Samples)
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi < 0 {
		hi = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return &Capture{Samples: c.Samples[lo:hi], SampleRate: c.SampleRate, ClockHz: c.ClockHz}
}

// ReceiverConfig parameterises the acquisition chain.
type ReceiverConfig struct {
	// ClockHz is the device clock (input rate of the per-cycle stream).
	ClockHz float64
	// BandwidthHz is the measurement bandwidth; the output sample rate is
	// ClockHz / round(ClockHz/BandwidthHz), i.e. as close to BandwidthHz
	// as an integer decimation allows.
	BandwidthHz float64
	// ProbeGain is the multiplicative probe-coupling factor.
	ProbeGain float64
	// SNRdB sets the complex AWGN level relative to a unit-amplitude
	// envelope. +Inf disables noise (the SESC power-proxy path).
	SNRdB float64
	// DriftPeriodS / DriftDepth model slow supply-voltage variation as a
	// sinusoidal gain term.
	DriftPeriodS float64
	DriftDepth   float64
	// Position is the probe placement relative to the best-coupling
	// reference point (see ProbePosition and CouplingAt). The zero value
	// is the reference placement and leaves the acquisition chain exactly
	// as it was before the spatial model existed — captures are
	// bit-identical. A displaced or rotated probe attenuates the signal
	// (receiver noise stays put, so SNR drops with it), smears fast
	// envelope transitions, and mixes in unrelated-source bleed-through
	// that fills stall dips.
	Position ProbePosition
	// Seed drives the noise generator.
	Seed uint64
}

// Validate checks the receiver configuration.
func (c ReceiverConfig) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("em: clock %v <= 0", c.ClockHz)
	}
	if c.BandwidthHz <= 0 || c.BandwidthHz > c.ClockHz {
		return fmt.Errorf("em: bandwidth %v out of (0, clock]", c.BandwidthHz)
	}
	if c.ProbeGain <= 0 {
		return fmt.Errorf("em: probe gain %v <= 0", c.ProbeGain)
	}
	if c.DriftDepth < 0 || c.DriftDepth >= 1 {
		return fmt.Errorf("em: drift depth %v out of [0,1)", c.DriftDepth)
	}
	if c.DriftDepth > 0 && c.DriftPeriodS <= 0 {
		return fmt.Errorf("em: drift depth set with non-positive period")
	}
	if err := c.Position.Validate(); err != nil {
		return err
	}
	return nil
}

// Receiver is a streaming acquisition chain; it implements power.Sink so
// the processor model can feed it directly, cycle by cycle, without ever
// materialising a per-cycle trace.
type Receiver struct {
	cfg        ReceiverConfig
	decim      int
	sampleRate float64

	// integrate-and-dump state
	acc float64
	n   int

	// RBW smoothing filter at the output rate.
	rbw *dsp.FIR

	rng      *sim.RNG
	noiseSig float64
	driftW   float64 // radians per output sample
	phase    float64

	// sp is the probe-position stage (nil at the reference placement,
	// which keeps the pre-spatial pipeline bit-identical).
	sp *spatial

	samples []float64

	// Block-path scratch, reused across PushBlock calls so steady-state
	// synthesis allocates nothing per block.
	envBuf   []float64
	noiseBuf []float64
}

// NewReceiver builds a receiver; returns an error on invalid config.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := int(math.Round(cfg.ClockHz / cfg.BandwidthHz))
	if d < 1 {
		d = 1
	}
	sampleRate := cfg.ClockHz / float64(d)
	r := &Receiver{
		cfg:        cfg,
		decim:      d,
		sampleRate: sampleRate,
		rng:        sim.NewRNG(cfg.Seed ^ 0x5ca1ab1e),
	}
	if d > 1 {
		// Short resolution-bandwidth filter: smooths dump boundaries
		// without meaningfully widening the response.
		r.rbw = dsp.LowpassFIR(0.4, 9)
	}
	if !math.IsInf(cfg.SNRdB, 1) {
		r.noiseSig = math.Pow(10, -cfg.SNRdB/20)
	}
	if cfg.DriftDepth > 0 {
		r.driftW = 2 * math.Pi / (cfg.DriftPeriodS * sampleRate)
	}
	r.sp = newSpatial(cfg.Position, sampleRate)
	return r, nil
}

// MustNewReceiver is NewReceiver but panics on configuration errors.
func MustNewReceiver(cfg ReceiverConfig) *Receiver {
	r, err := NewReceiver(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// SampleRate returns the actual output rate in Hz.
func (r *Receiver) SampleRate() float64 { return r.sampleRate }

// DecimationFactor returns cycles per output sample.
func (r *Receiver) DecimationFactor() int { return r.decim }

// PushCycle implements power.Sink: p is the switching activity (power) of
// one clock cycle.
func (r *Receiver) PushCycle(p float64) {
	r.acc += p
	r.n++
	if r.n == r.decim {
		r.emit(r.acc / float64(r.n))
		r.acc, r.n = 0, 0
	}
}

// PushBlock implements power.BlockSink: it consumes a whole block of
// per-cycle power values at once. The integrate-and-dump window state
// (acc, n) carries across block boundaries, the RBW filter runs as one FIR
// block kernel, and the noise draws are batched — but every floating-point
// operation happens in the same order as the scalar path, so the recorded
// capture is bit-identical to feeding the same cycles through PushCycle.
// This is the synthesis fast path: the per-cycle route costs an interface
// call plus filter ring indexing per clock cycle, the block route amortises
// all of that over thousands of cycles.
func (r *Receiver) PushBlock(ps []float64) {
	// Finish any partial integration window sample by sample (at most
	// decim-1 iterations, and at most one emitted sample).
	for len(ps) > 0 && r.n > 0 {
		r.PushCycle(ps[0])
		ps = ps[1:]
	}
	d := r.decim
	nw := len(ps) / d
	if nw > 0 {
		if cap(r.envBuf) < nw {
			r.envBuf = make([]float64, nw)
		}
		env := r.envBuf[:nw]
		den := float64(d)
		// Dump eight windows at a time: each window keeps its own serial
		// accumulator (so its addition order — and result bits — match the
		// scalar acc += p chain exactly), but the eight independent chains
		// interleave, hiding FP-add latency the scalar path cannot.
		w := 0
		for ; w+8 <= nw; w += 8 {
			// Reslicing each window to exactly d lets the compiler prove
			// b?[j] in bounds for j < d, keeping the inner loop check-free.
			base := ps[w*d:]
			b0 := base[:d]
			b1 := base[d:][:d]
			b2 := base[2*d:][:d]
			b3 := base[3*d:][:d]
			b4 := base[4*d:][:d]
			b5 := base[5*d:][:d]
			b6 := base[6*d:][:d]
			b7 := base[7*d:][:d]
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			for j := 0; j < d; j++ {
				a0 += b0[j]
				a1 += b1[j]
				a2 += b2[j]
				a3 += b3[j]
				a4 += b4[j]
				a5 += b5[j]
				a6 += b6[j]
				a7 += b7[j]
			}
			o := env[w : w+8 : w+8]
			o[0] = a0 / den
			o[1] = a1 / den
			o[2] = a2 / den
			o[3] = a3 / den
			o[4] = a4 / den
			o[5] = a5 / den
			o[6] = a6 / den
			o[7] = a7 / den
		}
		for ; w < nw; w++ {
			acc := 0.0
			for _, v := range ps[w*d : (w+1)*d] {
				acc += v
			}
			env[w] = acc / den
		}
		r.emitBlock(env)
		ps = ps[nw*d:]
	}
	// Leftover cycles open the next partial window.
	for _, v := range ps {
		r.acc += v
		r.n++
	}
}

// Flush emits any partial final integration window.
func (r *Receiver) Flush() {
	if r.n > 0 {
		r.emit(r.acc / float64(r.n))
		r.acc, r.n = 0, 0
	}
}

// impair applies probe gain, supply drift and complex AWGN to one envelope
// sample; n1/n2 are the I/Q noise draws (ignored when noise is disabled).
// It is the single impairment implementation shared by the scalar and
// block paths so the two cannot drift apart.
func (r *Receiver) impair(env, n1, n2 float64) float64 {
	gain := r.cfg.ProbeGain
	if r.driftW > 0 {
		gain *= 1 + r.cfg.DriftDepth*math.Sin(r.phase)
		r.phase += r.driftW
		if r.phase > 2*math.Pi {
			r.phase -= 2 * math.Pi
		}
	}
	mag := gain * env
	if r.noiseSig > 0 {
		// Complex AWGN on the baseband: the recorded magnitude is
		// |A + n_I + j n_Q|, which yields the Rician noise floor real
		// captures show during stalls.
		// sqrt(i*i+q*q) rather than math.Hypot: the envelope samples sit
		// comfortably inside float64 range, and Hypot's overflow-proof
		// scaling costs several times the plain form on this hot path.
		i := mag + gain*r.noiseSig*n1
		q := gain * r.noiseSig * n2
		mag = math.Sqrt(i*i + q*q)
	}
	return mag
}

// emit applies RBW smoothing and the acquisition impairments to one
// envelope sample, then records the received magnitude.
func (r *Receiver) emit(env float64) {
	if r.rbw != nil {
		env = r.rbw.Process(env)
	}
	if r.sp != nil {
		env = r.sp.apply(env)
	}
	var n1, n2 float64
	if r.noiseSig > 0 {
		n1 = r.rng.NormFloat64()
		n2 = r.rng.NormFloat64()
	}
	r.samples = append(r.samples, r.impair(env, n1, n2))
}

// emitBlock is emit over a whole envelope block: one RBW FIR block kernel
// (in place over the scratch), one batched noise draw, then the per-sample
// impairment chain. env is scratch owned by the receiver and is clobbered.
func (r *Receiver) emitBlock(env []float64) {
	if free := cap(r.samples) - len(r.samples); free < len(env) {
		// Grow geometrically but in one step, rather than letting append
		// re-copy the capture several times per large block.
		grown := make([]float64, len(r.samples), 2*cap(r.samples)+len(env))
		copy(grown, r.samples)
		r.samples = grown
	}
	if r.rbw != nil {
		r.rbw.ProcessBlock(env, env)
	}
	if r.sp != nil {
		// The position stage is stateful and sequential; running it here
		// keeps the block path's per-sample order identical to emit's.
		for i, e := range env {
			env[i] = r.sp.apply(e)
		}
	}
	if r.noiseSig > 0 {
		if cap(r.noiseBuf) < 2*len(env) {
			r.noiseBuf = make([]float64, 2*len(env))
		}
		noise := r.noiseBuf[:2*len(env)]
		r.rng.NormFloat64s(noise)
		for i, e := range env {
			env[i] = r.impair(e, noise[2*i], noise[2*i+1])
		}
	} else {
		for i, e := range env {
			env[i] = r.impair(e, 0, 0)
		}
	}
	r.samples = append(r.samples, env...)
}

// Capture returns the received signal acquired so far.
func (r *Receiver) Capture() *Capture {
	return &Capture{
		Samples:    r.samples,
		SampleRate: r.sampleRate,
		ClockHz:    r.cfg.ClockHz,
	}
}

// SynthesizeFromSeries runs a pre-computed activity series (one value per
// cyclesPerValue cycles) through an identical impairment chain. It is used
// for the memory-probe signal, which is rasterised from the DRAM burst
// trace rather than streamed per cycle. The per-cycle expansion is batched
// into blocks and fed through PushBlock, which is bit-identical to — and
// much faster than — pushing every cycle individually.
func SynthesizeFromSeries(series []float64, cyclesPerValue int, cfg ReceiverConfig) (*Capture, error) {
	if cyclesPerValue <= 0 {
		return nil, fmt.Errorf("em: cyclesPerValue %d <= 0", cyclesPerValue)
	}
	r, err := NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	const blockCycles = 4096
	buf := make([]float64, 0, blockCycles)
	for _, v := range series {
		left := cyclesPerValue
		for left > 0 {
			room := cap(buf) - len(buf)
			if room == 0 {
				r.PushBlock(buf)
				buf = buf[:0]
				room = cap(buf)
			}
			take := left
			if take > room {
				take = room
			}
			for i := 0; i < take; i++ {
				buf = append(buf, v)
			}
			left -= take
		}
	}
	if len(buf) > 0 {
		r.PushBlock(buf)
	}
	r.Flush()
	return r.Capture(), nil
}
