// Package em synthesizes the electromagnetic side-channel signal a
// near-field probe + receiver would acquire from the simulated device, and
// models the acquisition path of the paper's setup (magnetic probe into a
// spectrum analyzer / software-defined receiver tuned to the processor
// clock frequency with a selectable measurement bandwidth).
//
// The physical signal is the processor's switching activity amplitude-
// modulated onto the clock carrier and its harmonics; the receiver
// downconverts a band of width B around the carrier and records the
// complex baseband, whose magnitude tracks switching activity. Simulating
// the GHz carrier explicitly is pointless — the receiver output depends
// only on the band-limited activity envelope — so the chain here operates
// directly at baseband:
//
//	per-cycle activity → integrate-and-dump to the receiver rate (the
//	band-limited front end) → resolution-bandwidth smoothing FIR →
//	probe gain × supply drift × (envelope + complex AWGN) → magnitude.
//
// Everything EMPROF's normalisation stage must cope with on real hardware
// is reproduced: unknown multiplicative probe coupling, slow power-supply
// drift, a noise floor, and finite bandwidth that smears short stalls.
package em

import (
	"fmt"
	"math"

	"emprof/internal/dsp"
	"emprof/internal/sim"
)

// Capture is an acquired magnitude trace plus the metadata EMPROF needs to
// convert sample indices into cycles and seconds.
type Capture struct {
	// Samples is the received signal magnitude.
	Samples []float64
	// SampleRate is the receiver output rate in Hz (≈ the measurement
	// bandwidth).
	SampleRate float64
	// ClockHz is the profiled processor's clock frequency. EMPROF
	// multiplies detected stall durations by it to report cycles, exactly
	// as in the paper's Section III-A.
	ClockHz float64
}

// Duration returns the capture length in seconds.
func (c *Capture) Duration() float64 {
	if c.SampleRate <= 0 {
		return 0
	}
	return float64(len(c.Samples)) / c.SampleRate
}

// CyclesPerSample returns the number of processor cycles each sample
// spans, or 0 for a capture with no (or nonsensical) sample-rate
// metadata — mirroring Duration, and keeping the ±Inf/NaN a bare division
// would produce out of downstream index arithmetic.
func (c *Capture) CyclesPerSample() float64 {
	if c.SampleRate <= 0 {
		return 0
	}
	return c.ClockHz / c.SampleRate
}

// Clone returns a deep copy of the capture: the returned Samples slice
// has its own backing array, so mutating either capture never affects the
// other. Fault injection (internal/faults) always operates on clones.
func (c *Capture) Clone() *Capture {
	return &Capture{
		Samples:    append([]float64(nil), c.Samples...),
		SampleRate: c.SampleRate,
		ClockHz:    c.ClockHz,
	}
}

// Slice returns a sub-capture covering sample indices [lo, hi).
//
// The returned capture ALIASES the receiver's backing array — writes to
// either capture's samples in the shared range are visible through both.
// Use Clone (or Slice(...).Clone()) when an independent copy is needed.
// Out-of-range bounds are clamped into [0, len(Samples)] — including
// lo beyond the capture end and negative hi, both of which previously
// slipped through the partial clamping and panicked.
func (c *Capture) Slice(lo, hi int) *Capture {
	n := len(c.Samples)
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi < 0 {
		hi = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return &Capture{Samples: c.Samples[lo:hi], SampleRate: c.SampleRate, ClockHz: c.ClockHz}
}

// ReceiverConfig parameterises the acquisition chain.
type ReceiverConfig struct {
	// ClockHz is the device clock (input rate of the per-cycle stream).
	ClockHz float64
	// BandwidthHz is the measurement bandwidth; the output sample rate is
	// ClockHz / round(ClockHz/BandwidthHz), i.e. as close to BandwidthHz
	// as an integer decimation allows.
	BandwidthHz float64
	// ProbeGain is the multiplicative probe-coupling factor.
	ProbeGain float64
	// SNRdB sets the complex AWGN level relative to a unit-amplitude
	// envelope. +Inf disables noise (the SESC power-proxy path).
	SNRdB float64
	// DriftPeriodS / DriftDepth model slow supply-voltage variation as a
	// sinusoidal gain term.
	DriftPeriodS float64
	DriftDepth   float64
	// Seed drives the noise generator.
	Seed uint64
}

// Validate checks the receiver configuration.
func (c ReceiverConfig) Validate() error {
	if c.ClockHz <= 0 {
		return fmt.Errorf("em: clock %v <= 0", c.ClockHz)
	}
	if c.BandwidthHz <= 0 || c.BandwidthHz > c.ClockHz {
		return fmt.Errorf("em: bandwidth %v out of (0, clock]", c.BandwidthHz)
	}
	if c.ProbeGain <= 0 {
		return fmt.Errorf("em: probe gain %v <= 0", c.ProbeGain)
	}
	if c.DriftDepth < 0 || c.DriftDepth >= 1 {
		return fmt.Errorf("em: drift depth %v out of [0,1)", c.DriftDepth)
	}
	if c.DriftDepth > 0 && c.DriftPeriodS <= 0 {
		return fmt.Errorf("em: drift depth set with non-positive period")
	}
	return nil
}

// Receiver is a streaming acquisition chain; it implements power.Sink so
// the processor model can feed it directly, cycle by cycle, without ever
// materialising a per-cycle trace.
type Receiver struct {
	cfg        ReceiverConfig
	decim      int
	sampleRate float64

	// integrate-and-dump state
	acc float64
	n   int

	// RBW smoothing filter at the output rate.
	rbw *dsp.FIR

	rng      *sim.RNG
	noiseSig float64
	driftW   float64 // radians per output sample
	phase    float64

	samples []float64
}

// NewReceiver builds a receiver; returns an error on invalid config.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := int(math.Round(cfg.ClockHz / cfg.BandwidthHz))
	if d < 1 {
		d = 1
	}
	sampleRate := cfg.ClockHz / float64(d)
	r := &Receiver{
		cfg:        cfg,
		decim:      d,
		sampleRate: sampleRate,
		rng:        sim.NewRNG(cfg.Seed ^ 0x5ca1ab1e),
	}
	if d > 1 {
		// Short resolution-bandwidth filter: smooths dump boundaries
		// without meaningfully widening the response.
		r.rbw = dsp.LowpassFIR(0.4, 9)
	}
	if !math.IsInf(cfg.SNRdB, 1) {
		r.noiseSig = math.Pow(10, -cfg.SNRdB/20)
	}
	if cfg.DriftDepth > 0 {
		r.driftW = 2 * math.Pi / (cfg.DriftPeriodS * sampleRate)
	}
	return r, nil
}

// MustNewReceiver is NewReceiver but panics on configuration errors.
func MustNewReceiver(cfg ReceiverConfig) *Receiver {
	r, err := NewReceiver(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// SampleRate returns the actual output rate in Hz.
func (r *Receiver) SampleRate() float64 { return r.sampleRate }

// DecimationFactor returns cycles per output sample.
func (r *Receiver) DecimationFactor() int { return r.decim }

// PushCycle implements power.Sink: p is the switching activity (power) of
// one clock cycle.
func (r *Receiver) PushCycle(p float64) {
	r.acc += p
	r.n++
	if r.n == r.decim {
		r.emit(r.acc / float64(r.n))
		r.acc, r.n = 0, 0
	}
}

// Flush emits any partial final integration window.
func (r *Receiver) Flush() {
	if r.n > 0 {
		r.emit(r.acc / float64(r.n))
		r.acc, r.n = 0, 0
	}
}

// emit applies RBW smoothing and the acquisition impairments to one
// envelope sample, then records the received magnitude.
func (r *Receiver) emit(env float64) {
	if r.rbw != nil {
		env = r.rbw.Process(env)
	}
	gain := r.cfg.ProbeGain
	if r.driftW > 0 {
		gain *= 1 + r.cfg.DriftDepth*math.Sin(r.phase)
		r.phase += r.driftW
		if r.phase > 2*math.Pi {
			r.phase -= 2 * math.Pi
		}
	}
	mag := gain * env
	if r.noiseSig > 0 {
		// Complex AWGN on the baseband: the recorded magnitude is
		// |A + n_I + j n_Q|, which yields the Rician noise floor real
		// captures show during stalls.
		i := mag + gain*r.noiseSig*r.rng.NormFloat64()
		q := gain * r.noiseSig * r.rng.NormFloat64()
		mag = math.Hypot(i, q)
	}
	r.samples = append(r.samples, mag)
}

// Capture returns the received signal acquired so far.
func (r *Receiver) Capture() *Capture {
	return &Capture{
		Samples:    r.samples,
		SampleRate: r.sampleRate,
		ClockHz:    r.cfg.ClockHz,
	}
}

// SynthesizeFromSeries runs a pre-computed activity series (one value per
// cyclesPerValue cycles) through an identical impairment chain. It is used
// for the memory-probe signal, which is rasterised from the DRAM burst
// trace rather than streamed per cycle.
func SynthesizeFromSeries(series []float64, cyclesPerValue int, cfg ReceiverConfig) (*Capture, error) {
	if cyclesPerValue <= 0 {
		return nil, fmt.Errorf("em: cyclesPerValue %d <= 0", cyclesPerValue)
	}
	r, err := NewReceiver(cfg)
	if err != nil {
		return nil, err
	}
	for _, v := range series {
		for c := 0; c < cyclesPerValue; c++ {
			r.PushCycle(v)
		}
	}
	r.Flush()
	return r.Capture(), nil
}
