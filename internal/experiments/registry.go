package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is any experiment result that can print itself.
type Renderer interface {
	Render(w io.Writer)
}

// Runner executes one named experiment.
type Runner func(o Options) (Renderer, error)

// Registry maps experiment names ("table2", "fig11", "perf", ...) to
// runners; cmd/embench dispatches through it.
var Registry = map[string]Runner{
	"table1": func(o Options) (Renderer, error) { return renderFunc(Table1), nil },
	"table2": wrap(RunTable2),
	"table3": wrap(RunTable3),
	"table4": wrap(RunTable4),
	"table5": wrap(RunTable5),
	"fig1":   wrap(RunFig1),
	"fig2":   wrap(RunFig2),
	"fig3":   wrap(RunFig3),
	"fig4":   wrap(RunFig4),
	"fig5":   wrap(RunFig5),
	"fig7":   wrap(RunFig7),
	"fig8":   wrap(RunFig8),
	"fig10":  wrap(RunFig10),
	"fig11":  wrap(RunFig11),
	"fig12":  wrap(RunFig12),
	"fig13":  wrap(RunFig13),
	"fig14":  wrap(RunAttribution),
	"perf":   wrap(RunPerfBaseline),
	// stability and robustness are this repository's extensions: EMPROF vs
	// perf variance, and miss-count accuracy under acquisition faults.
	"stability":  wrap(RunStability),
	"robustness": wrap(RunRobustness),
	"position":   wrap(RunPosition),
	// simquick verifies the event-driven simulator against its per-cycle
	// reference, bitwise, on every device shape.
	"simquick": wrap(RunSimQuick),
}

// Names returns the registry keys in sorted order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment and renders it to w.
func Run(name string, o Options, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	res, err := r(o)
	if err != nil {
		return err
	}
	res.Render(w)
	return nil
}

// wrap adapts a typed runner to the Runner signature.
func wrap[T Renderer](f func(Options) (T, error)) Runner {
	return func(o Options) (Renderer, error) {
		res, err := f(o)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

// renderFunc adapts a plain printing function to Renderer.
type renderFunc func(w io.Writer)

// Render implements Renderer.
func (f renderFunc) Render(w io.Writer) { f(w) }
