package experiments

import (
	"fmt"
	"io"
	"reflect"
	"text/tabwriter"

	"emprof"
	"emprof/internal/device"
)

// SimQuick is the skip-ahead smoke check: for each core shape it runs the
// event-driven simulator and the per-cycle reference over the same
// workload and verifies the runs are bit-identical — the CI-facing form
// of the equivalence property tests, cheap enough for every push.
type SimQuick struct {
	Cases []SimQuickCase
}

// SimQuickCase is one verified device/shape combination.
type SimQuickCase struct {
	Name    string
	Cycles  uint64
	Samples int
	Stalls  int
}

// RunSimQuick runs Simulate vs SimulateExact across both modelled devices
// plus an out-of-order variant and fails on any bitwise difference in
// capture, power proxy or ground truth.
func RunSimQuick(o Options) (*SimQuick, error) {
	o = o.withDefaults()
	tm, cm := 64, 8
	if o.Quick {
		tm, cm = 16, 4
	}
	ooo := device.Olimex()
	ooo.Name = "Olimex-OoO8"
	ooo.CPU.OoOWindow = 8
	devs := []emprof.Device{device.Olimex(), device.Samsung(), ooo}

	out := &SimQuick{}
	for _, dev := range devs {
		w, err := emprof.Microbenchmark(tm, cm)
		if err != nil {
			return nil, err
		}
		opts := emprof.CaptureOptions{Seed: o.Seed, PowerProxy: true}
		fast, err := emprof.Simulate(dev, w, opts)
		if err != nil {
			return nil, fmt.Errorf("simquick %s: %w", dev.Name, err)
		}
		exact, err := emprof.SimulateExact(dev, w, opts)
		if err != nil {
			return nil, fmt.Errorf("simquick %s (exact): %w", dev.Name, err)
		}
		if !reflect.DeepEqual(fast.Truth, exact.Truth) {
			return nil, fmt.Errorf("simquick %s: ground truth diverges between skip-ahead and per-cycle", dev.Name)
		}
		if !reflect.DeepEqual(fast.Capture, exact.Capture) {
			return nil, fmt.Errorf("simquick %s: captures diverge between skip-ahead and per-cycle", dev.Name)
		}
		if !reflect.DeepEqual(fast.PowerTrace, exact.PowerTrace) {
			return nil, fmt.Errorf("simquick %s: power proxies diverge between skip-ahead and per-cycle", dev.Name)
		}
		if fast.Truth.Cycles == 0 || len(fast.Truth.Stalls) == 0 {
			return nil, fmt.Errorf("simquick %s: degenerate run (cycles=%d stalls=%d)",
				dev.Name, fast.Truth.Cycles, len(fast.Truth.Stalls))
		}
		out.Cases = append(out.Cases, SimQuickCase{
			Name:    dev.Name,
			Cycles:  fast.Truth.Cycles,
			Samples: len(fast.Capture.Samples),
			Stalls:  len(fast.Truth.Stalls),
		})
	}
	return out, nil
}

// Render implements Renderer.
func (s *SimQuick) Render(w io.Writer) {
	fmt.Fprintln(w, "simquick: skip-ahead vs per-cycle reference, bit-identical runs")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "device\tcycles\tsamples\tstalls\tstatus")
	for _, c := range s.Cases {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\tidentical\n", c.Name, c.Cycles, c.Samples, c.Stalls)
	}
	tw.Flush()
}
