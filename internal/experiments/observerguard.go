package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"testing"

	"emprof"
	"emprof/internal/sim"
)

// ObserverGuardMaxOverhead is the ns/cycle ratio the no-op-observer run
// may cost over the nil-observer run. The trace layer's contract is that
// instrumentation sits on rare branches, so even a wired-up observer that
// discards every event must stay within noise of the untraced path.
const ObserverGuardMaxOverhead = 0.03

// RunObserverGuard benchmarks the analyzer's nil-observer fast path
// against the same analysis with a no-op observer attached, and verifies
// the trace layer's two performance promises:
//
//  1. The per-sample steady state of the nil-observer path performs zero
//     heap allocations.
//  2. Attaching an observer costs under ObserverGuardMaxOverhead ns/cycle
//     relative to the nil path (measured as min-over-count interleaved
//     runs, the same noise discipline as RunSynthBench).
//
// It prints a small report to w and returns an error when either promise
// is broken, so embench (and CI) can gate on it.
func RunObserverGuard(count int, quick bool, w io.Writer) error {
	if count < 1 {
		count = 1
	}
	tm := 128
	if quick {
		tm = 32
	}
	wl, err := emprof.Microbenchmark(tm, 8)
	if err != nil {
		return err
	}
	run, err := emprof.Simulate(emprof.DeviceOlimex(), wl, emprof.CaptureOptions{Seed: 1})
	if err != nil {
		return err
	}
	capture := run.Capture
	cfg := emprof.DefaultConfig()

	bench := func(opts ...emprof.Option) func(b *testing.B) {
		return func(b *testing.B) {
			an, err := emprof.NewAnalyzer(cfg, opts...)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := an.Run(context.Background(), capture); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// Interleave the two measurements so slow drift in machine load hits
	// both sides; keep the minimum of each.
	nilNs, nopNs := math.Inf(1), math.Inf(1)
	for i := 0; i < count; i++ {
		r := testing.Benchmark(bench())
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < nilNs {
			nilNs = ns
		}
		r = testing.Benchmark(bench(emprof.WithObserver(emprof.NopObserver{})))
		if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < nopNs {
			nopNs = ns
		}
	}
	cycles := float64(run.Truth.Cycles)
	overhead := nopNs/nilNs - 1
	fmt.Fprintf(w, "observer guard: nil %.3f ns/cycle, no-op observer %.3f ns/cycle (%+.2f%%)\n",
		nilNs/cycles, nopNs/cycles, 100*overhead)
	if overhead > ObserverGuardMaxOverhead {
		return fmt.Errorf("observer overhead %.2f%% exceeds the %.0f%% budget (nil %.0f ns/op, no-op %.0f ns/op)",
			100*overhead, 100*ObserverGuardMaxOverhead, nilNs, nopNs)
	}

	// Steady-state allocation check, through the public streaming API: a
	// warmed-up push loop over a dip-free busy signal must never touch the
	// heap when no observer is attached.
	an, err := emprof.NewAnalyzer(cfg)
	if err != nil {
		return err
	}
	s, err := an.Stream(capture.SampleRate, capture.ClockHz)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(7)
	busy := make([]float64, 4096)
	for i := range busy {
		busy[i] = 1 + 0.1*rng.Float64()
	}
	pos := 0
	step := func() {
		s.Push(busy[pos&(len(busy)-1)])
		pos++
	}
	for i := 0; i < 1<<14; i++ {
		step() // warm past the one-time ring-buffer growth
	}
	allocs := testing.AllocsPerRun(2000, step)
	fmt.Fprintf(w, "observer guard: nil-observer steady state %.1f allocs/op\n", allocs)
	if allocs != 0 {
		return fmt.Errorf("nil-observer steady state allocates (%.1f allocs/op, want 0)", allocs)
	}
	return nil
}
