package experiments

import (
	"io"
	"strings"
	"testing"
)

func gateReports(curNs, baseNs, curAllocs, baseAllocs float64) (*SynthBenchReport, *SynthBenchReport) {
	cur := &SynthBenchReport{Entries: []SynthBenchEntry{
		{Name: "case", NsPerCycle: curNs, AllocsPerOp: curAllocs},
	}}
	base := &SynthBenchReport{Entries: []SynthBenchEntry{
		{Name: "case", NsPerCycle: baseNs, AllocsPerOp: baseAllocs},
	}}
	return cur, base
}

func TestGateDefaultsPassWithinRatio(t *testing.T) {
	cur, base := gateReports(12.0, 10.0, 100, 100) // 1.2x < 1.3x
	if err := CompareSynthBench(cur, base, GateOptions{}, io.Discard); err != nil {
		t.Fatalf("1.2x flagged under default 1.3x gate: %v", err)
	}
}

func TestGateDefaultsCatchTimeRegression(t *testing.T) {
	cur, base := gateReports(15.0, 10.0, 100, 100) // 1.5x > 1.3x, above floor
	err := CompareSynthBench(cur, base, GateOptions{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "ns/cycle") {
		t.Fatalf("1.5x not flagged: %v", err)
	}
}

func TestGateNoiseFloorAbsorbsFastCases(t *testing.T) {
	// 5x ratio, but both sides are deep in timer-noise territory: the
	// absolute excess (0.4 ns/cycle) is under the default 0.5 floor.
	cur, base := gateReports(0.5, 0.1, 10, 10)
	if err := CompareSynthBench(cur, base, GateOptions{}, io.Discard); err != nil {
		t.Fatalf("sub-floor case flagged: %v", err)
	}
	// Disabling the floor makes the same ratio fatal.
	if err := CompareSynthBench(cur, base, GateOptions{NoiseFloorNsPerCycle: -1}, io.Discard); err == nil {
		t.Fatal("floorless gate let a 5x ratio pass")
	}
}

func TestGateCatchesAllocRegression(t *testing.T) {
	// Time is fine; allocations exploded (the hot-loop map/batch bug).
	cur, base := gateReports(10.0, 10.0, 220000, 110)
	err := CompareSynthBench(cur, base, GateOptions{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc explosion not flagged: %v", err)
	}
	// A negative ratio disables the alloc gate.
	if err := CompareSynthBench(cur, base, GateOptions{MaxAllocRatio: -1}, io.Discard); err != nil {
		t.Fatalf("disabled alloc gate still failed: %v", err)
	}
}

func TestGateAllocFloorAbsorbsSmallCounts(t *testing.T) {
	// 4 -> 40 allocs/op is an 10x ratio but only 36 allocations — under
	// the default absolute floor of 64.
	cur, base := gateReports(10.0, 10.0, 40, 4)
	if err := CompareSynthBench(cur, base, GateOptions{}, io.Discard); err != nil {
		t.Fatalf("small-count alloc jitter flagged: %v", err)
	}
}

func TestGateCustomRatio(t *testing.T) {
	cur, base := gateReports(17.0, 10.0, 100, 100)
	if err := CompareSynthBench(cur, base, GateOptions{MaxRatio: 1.8}, io.Discard); err != nil {
		t.Fatalf("1.7x flagged under 1.8x gate: %v", err)
	}
	if err := CompareSynthBench(cur, base, GateOptions{MaxRatio: 1.5}, io.Discard); err == nil {
		t.Fatal("1.7x passed under 1.5x gate")
	}
}

func TestSimQuickQuick(t *testing.T) {
	res, err := RunSimQuick(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 3 {
		t.Fatalf("simquick covered %d shapes, want 3", len(res.Cases))
	}
	for _, c := range res.Cases {
		if c.Cycles == 0 || c.Samples == 0 || c.Stalls == 0 {
			t.Fatalf("degenerate simquick case %+v", c)
		}
	}
}

func TestGateNewCaseNotFatal(t *testing.T) {
	cur := &SynthBenchReport{Entries: []SynthBenchEntry{{Name: "brand-new", NsPerCycle: 99}}}
	base := &SynthBenchReport{}
	if err := CompareSynthBench(cur, base, GateOptions{}, io.Discard); err != nil {
		t.Fatalf("new case without baseline must not fail the gate: %v", err)
	}
}
