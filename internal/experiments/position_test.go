package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPositionQuick is the acceptance test for the probe-displacement
// experiment: near-exact detection at the reference placement, graceful
// (not cliff-like) degradation with displacement, and — under the
// mid-capture bump — the position-adaptive profiler bounding the phantom
// refresh smear the default profiler suffers.
func TestPositionQuick(t *testing.T) {
	r, err := RunPosition(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("grid rows = %d, want >= 3", len(r.Rows))
	}
	if r.Rows[0].OffsetMM != 0 {
		t.Fatalf("first row offset = %v, want reference placement", r.Rows[0].OffsetMM)
	}
	if math.Abs(r.Rows[0].ErrPct) > 5 {
		t.Errorf("reference placement: detected %d vs engineered %d (%.1f%%)",
			r.Rows[0].Detected, r.TrueMisses, r.Rows[0].ErrPct)
	}
	for i, row := range r.Rows {
		if i == 0 {
			continue
		}
		prev := r.Rows[i-1]
		if row.OffsetMM <= prev.OffsetMM {
			t.Errorf("offsets not increasing: %.2f after %.2f", row.OffsetMM, prev.OffsetMM)
		}
		if row.Gain >= prev.Gain {
			t.Errorf("coupling gain %.3f at %.1f mm did not fall from %.3f",
				row.Gain, row.OffsetMM, prev.Gain)
		}
		if math.Abs(row.ErrPct) < math.Abs(prev.ErrPct)-1e-9 {
			t.Errorf("miss-count error |%.1f%%| at %.1f mm improved on |%.1f%%| at %.1f mm",
				row.ErrPct, row.OffsetMM, prev.ErrPct, prev.OffsetMM)
		}
	}

	b := r.Bump
	if b == nil {
		t.Fatal("no bump comparison")
	}
	// The bump is sized to sit in the gain-step detector's blind band, so
	// the default profiler's worst refresh stall smears far past the clean
	// capture's scale while the adaptive profiler resyncs and stays there.
	if b.BaseLongestRefreshUs < 10*b.CleanLongestRefreshUs {
		t.Errorf("default profiler worst refresh %.3gus does not show the phantom smear (clean %.3gus)",
			b.BaseLongestRefreshUs, b.CleanLongestRefreshUs)
	}
	if b.AdaptLongestRefreshUs > 2*b.CleanLongestRefreshUs {
		t.Errorf("adaptive profiler worst refresh %.3gus exceeds 2x the clean capture's %.3gus",
			b.AdaptLongestRefreshUs, b.CleanLongestRefreshUs)
	}
	if b.AdaptResyncs < 1 {
		t.Error("adaptive profiler recorded no probe-shift resync")
	}
	// Misses lost to the bump must be bounded: the adaptive profiler
	// sacrifices at most the resync window, not the whole post-bump tail.
	if b.AdaptMisses <= b.BaseMisses {
		t.Errorf("adaptive misses %d not above default's %d", b.AdaptMisses, b.BaseMisses)
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"probe displacement", "probe bump", "position-adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}
