package experiments

import (
	"context"
	"fmt"
	"io"

	"emprof"
	"emprof/internal/core"
	"emprof/internal/device"
	"emprof/internal/em"
	"emprof/internal/faults"
	"emprof/internal/workloads"
)

// Position is this repository's probe-placement experiment, the scenario
// axis the paper's setup notes motivate ("even small changes in
// probe/antenna position can dramatically change the overall magnitude of
// the received signal"). It has two parts: a static displacement grid —
// the same engineered microbenchmark profiled with the probe parked at
// increasing lateral offsets, run through RunSweep — and a mid-capture
// probe bump comparing the default profiler against the position-adaptive
// configuration (ProbeShiftRatio armed).
type Position struct {
	Device     string
	Workload   string
	TrueMisses int
	Rows       []PositionRow
	Bump       *PositionBump
}

// PositionRow is one static displacement of the grid.
type PositionRow struct {
	// OffsetMM is the lateral probe displacement; Gain the resulting
	// coupling gain (em.PositionGain).
	OffsetMM float64
	Gain     float64
	Detected int
	// ErrPct is the signed miss-count error vs the engineered truth.
	ErrPct    float64
	MeanConf  float64
	UsablePct float64
}

// PositionBump is the mid-capture bump comparison: the same bumped
// capture analysed without and with the position-adaptive resync.
type PositionBump struct {
	// BumpMM is the step displacement; GainFactor the coupling-gain drop
	// it causes (inside the gain-step detector's blind band).
	BumpMM     float64
	GainFactor float64
	TrueMisses int
	// Clean* profile the same capture without the bump.
	CleanMisses, CleanRefresh int
	CleanLongestRefreshUs     float64
	// Base* is the default profiler on the bumped capture, Adapt* the
	// ProbeShiftRatio-armed one. The phantom-stall cascade shows up as
	// LongestRefreshUs: unarmed, the post-bump busy level pins below the
	// dip-exit threshold and one "refresh stall" smears over the whole
	// remaining capture; armed, the worst refresh stays at the clean
	// capture's scale and the loss is bounded by the resync window.
	BaseMisses, BaseRefresh   int
	BaseLongestRefreshUs      float64
	AdaptMisses, AdaptRefresh int
	AdaptLongestRefreshUs     float64
	AdaptResyncs              int
}

// longestRefreshUs returns the longest refresh-classified stall in µs.
func longestRefreshUs(p *core.Profile) float64 {
	worst := 0.0
	for _, s := range p.Stalls {
		if s.Refresh && s.DurationS > worst {
			worst = s.DurationS
		}
	}
	return worst * 1e6
}

// RunPosition profiles the microbenchmark across probe displacements and
// under a mid-capture probe bump.
func RunPosition(o Options) (*Position, error) {
	o = o.withDefaults()
	tm, cm := 256, 8
	offsets := []float64{0, 0.5, 1, 1.5, 2, 3, 4}
	if o.Quick {
		tm = 128
		offsets = []float64{0, 1, 2, 4}
	}
	dev := device.Olimex()
	wl := fmt.Sprintf("micro:%d:%d", tm, cm)

	grid := emprof.SweepGrid{
		Devices:        []string{dev.Name},
		Workloads:      []string{wl},
		Seeds:          []uint64{o.Seed},
		ProbeOffsetsMM: offsets,
	}
	results, err := emprof.RunSweep(context.Background(), grid.Jobs(), emprof.SweepOptions{})
	if err != nil {
		return nil, err
	}

	res := &Position{Device: dev.Name, Workload: wl, TrueMisses: tm}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("experiments: position cell %+v: %w", r.Job.Probe, r.Err)
		}
		res.Rows = append(res.Rows, PositionRow{
			OffsetMM:  r.Job.Probe.OffsetMM(),
			Gain:      em.PositionGain(r.Job.Probe.OffsetMM()),
			Detected:  r.Profile.Misses,
			ErrPct:    100 * float64(r.Profile.Misses-tm) / float64(tm),
			MeanConf:  r.Profile.MeanConfidence(),
			UsablePct: 100 * r.Profile.Quality.UsableFraction(),
		})
	}

	bump, err := runPositionBump(dev, tm, cm, o.Seed)
	if err != nil {
		return nil, err
	}
	res.Bump = bump
	return res, nil
}

// runPositionBump injects a mid-capture probe bump sized to land inside
// the gain-step detector's blind band (coupling drop ~2.35×, below the
// 2.5× step ratio) and compares the default and position-adaptive
// profiler configurations on the identical impaired capture.
func runPositionBump(dev device.Device, tm, cm int, seed uint64) (*PositionBump, error) {
	mp := workloads.DefaultMicroParams(tm, cm)
	_, slice, err := simulateMicro(dev, mp, emprof.CaptureOptions{Seed: seed})
	if err != nil {
		return nil, err
	}
	const bumpMM = 1.75
	spec := faults.Spec{
		ProbeBumpMM:  bumpMM,
		ProbeBumpAtS: slice.Duration() / 2,
		Seed:         seed,
	}
	impaired, _, err := faults.Apply(slice, spec)
	if err != nil {
		return nil, err
	}

	clean := analyze(slice)
	base := analyze(impaired)
	adaptCfg := core.DefaultConfig()
	adaptCfg.ProbeShiftRatio = 1.4
	adapt := core.MustNewAnalyzer(adaptCfg).Profile(impaired)

	return &PositionBump{
		BumpMM:                bumpMM,
		GainFactor:            em.PositionGain(bumpMM),
		TrueMisses:            tm,
		CleanMisses:           clean.Misses,
		CleanRefresh:          clean.RefreshStalls,
		CleanLongestRefreshUs: longestRefreshUs(clean),
		BaseMisses:            base.Misses,
		BaseRefresh:           base.RefreshStalls,
		BaseLongestRefreshUs:  longestRefreshUs(base),
		AdaptMisses:           adapt.Misses,
		AdaptRefresh:          adapt.RefreshStalls,
		AdaptLongestRefreshUs: longestRefreshUs(adapt),
		AdaptResyncs:          adapt.Quality.Resyncs,
	}, nil
}

// Render writes the grid and the bump comparison as tables.
func (p *Position) Render(w io.Writer) {
	fmt.Fprintf(w, "miss detection vs probe displacement (%s, %s, engineered misses: %d):\n",
		p.Device, p.Workload, p.TrueMisses)
	fmt.Fprintf(w, "  %-10s %6s %9s %8s %6s %8s\n",
		"offset", "gain", "detected", "err", "conf", "usable")
	for _, row := range p.Rows {
		fmt.Fprintf(w, "  %7.1f mm %6.3f %9d %7.1f%% %6.2f %7.2f%%\n",
			row.OffsetMM, row.Gain, row.Detected, row.ErrPct, row.MeanConf, row.UsablePct)
	}
	fmt.Fprintln(w, "  coupling gain falls off as a near-field dipole; detection degrades as")
	fmt.Fprintln(w, "  dips blur and leak toward the chip-wide mean, not as a cliff.")
	if p.Bump == nil {
		return
	}
	fmt.Fprintf(w, "mid-capture probe bump (%.2f mm step, coupling ×%.2f at half-run):\n",
		p.Bump.BumpMM, p.Bump.GainFactor)
	fmt.Fprintf(w, "  %-24s %8s %9s %16s\n", "profiler", "misses", "refresh", "worst refresh")
	fmt.Fprintf(w, "  %-24s %8d %9d %13.3gus\n",
		"clean (no bump)", p.Bump.CleanMisses, p.Bump.CleanRefresh, p.Bump.CleanLongestRefreshUs)
	fmt.Fprintf(w, "  %-24s %8d %9d %13.3gus\n",
		"default", p.Bump.BaseMisses, p.Bump.BaseRefresh, p.Bump.BaseLongestRefreshUs)
	fmt.Fprintf(w, "  %-24s %8d %9d %13.3gus   (%d resync)\n",
		"position-adaptive (1.4)", p.Bump.AdaptMisses, p.Bump.AdaptRefresh,
		p.Bump.AdaptLongestRefreshUs, p.Bump.AdaptResyncs)
	fmt.Fprintln(w, "  unarmed, the post-bump busy level pins under the dip-exit threshold and")
	fmt.Fprintln(w, "  one phantom refresh stall smears across the remaining capture; armed,")
	fmt.Fprintln(w, "  the shift detector trades it for one resync bounded by a half-window.")
}
