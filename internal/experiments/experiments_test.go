package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpts keeps experiment smoke tests fast.
func quickOpts() Options {
	return Options{Scale: 0.25, Seed: 1, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig7", "fig8",
		"fig10", "fig11", "fig12", "fig13", "fig14", "perf", "stability",
		"robustness", "position", "simquick",
	}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
	if len(names) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(names), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table99", quickOpts(), &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable2Quick(t *testing.T) {
	res, err := RunTable2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("quick grid rows %d, want 2", len(res.Rows))
	}
	// The headline claim: high counting accuracy on every device.
	if res.AveragePct < 95 {
		t.Fatalf("average accuracy %.2f%%, want >= 95%% (paper: 99.52%%)", res.AveragePct)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "average accuracy") {
		t.Fatal("render missing summary")
	}
}

func TestTable3Quick(t *testing.T) {
	res, err := RunTable3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Micro {
		if r.MissPct < 95 {
			t.Errorf("micro %s miss accuracy %.1f%%, want >= 95%%", r.Name, r.MissPct)
		}
		if r.StallPct < 90 {
			t.Errorf("micro %s stall accuracy %.1f%%, want >= 90%%", r.Name, r.StallPct)
		}
	}
	for _, r := range res.SPEC {
		if r.MissPct < 85 {
			t.Errorf("SPEC %s miss accuracy %.1f%%, want >= 85%% (paper >= 93.2%%)", r.Name, r.MissPct)
		}
	}
}

func TestTable4Quick(t *testing.T) {
	res, err := RunTable4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Micro rows: detected counts close to TM on every device.
	for i, r := range res.Micro {
		tm := quickOpts().microGrid()[i].TM
		for d := 0; d < 3; d++ {
			if r.Misses[d] < tm*9/10 || r.Misses[d] > tm*11/10 {
				t.Errorf("%s on %s: %d misses, want ~%d", r.Name, res.Devices[d], r.Misses[d], tm)
			}
		}
	}
	// Olimex (highest clock, no prefetcher, slow DRAM) must show the
	// highest average stall percentage — the paper's headline ordering.
	if !(res.Average.LatencyPct[2] > res.Average.LatencyPct[0] &&
		res.Average.LatencyPct[2] > res.Average.LatencyPct[1]) {
		t.Errorf("Olimex stall%% %.2f not highest (%v)", res.Average.LatencyPct[2], res.Average.LatencyPct)
	}
}

func TestPerfBaselineQuick(t *testing.T) {
	res, err := RunPerfBaseline(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean < 5*float64(res.TrueMisses) {
		t.Fatalf("perf mean %v vs true %d: overcount too small", res.Mean, res.TrueMisses)
	}
	if res.StdDev <= 0 {
		t.Fatal("perf stddev must be positive")
	}
	if res.MechanisticReported <= res.MechanisticTrue {
		t.Fatal("handler injection must inflate counted misses")
	}
	if res.Dilation <= 1 {
		t.Fatal("profiling must dilate execution time")
	}
}

func TestFig3Quick(t *testing.T) {
	res, err := RunFig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupMissesPerStall < 1.5 {
		t.Fatalf("misses per stall %.2f: MLP hiding not demonstrated", res.GroupMissesPerStall)
	}
	if res.DualStalls >= res.DualMisses {
		t.Fatalf("dual-miss kernel: %d stalls for %d misses, want fewer stalls", res.DualStalls, res.DualMisses)
	}
	if res.OverlapFraction < 0.5 {
		t.Fatalf("only %.0f%% of dual stalls overlapped", 100*res.OverlapFraction)
	}
}

func TestFig5Quick(t *testing.T) {
	res, err := RunFig5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.RefreshStalls == 0 {
		t.Fatal("no refresh-coincident stalls detected")
	}
	if res.AvgRefreshNS < 1500 || res.AvgRefreshNS > 4000 {
		t.Fatalf("refresh stall %v ns, want 2000-3000 (paper: 2-3 µs)", res.AvgRefreshNS)
	}
	if res.AvgNormalNS > 600 {
		t.Fatalf("normal stall %v ns, want a few hundred (paper: ~300)", res.AvgNormalNS)
	}
	if res.MeanRefreshSpacingUS < 40 || res.MeanRefreshSpacingUS > 160 {
		t.Fatalf("refresh spacing %v µs, want ~70 (paper Fig. 5)", res.MeanRefreshSpacingUS)
	}
}

func TestFig12Quick(t *testing.T) {
	res, err := RunFig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("quick sweep rows %d, want 2", len(res.Rows))
	}
	low, high := res.Rows[0], res.Rows[len(res.Rows)-1]
	// At 20 MHz the Alcatel (fast, short stalls) detects far fewer stalls
	// than at 60 MHz, and the ones it sees are the very long ones.
	if low.Detected[0] >= high.Detected[0] {
		t.Errorf("Alcatel detections %d@20MHz vs %d@60MHz: low bandwidth should miss stalls",
			low.Detected[0], high.Detected[0])
	}
	if low.Detected[0] > 0 && low.AvgLat[0] < high.AvgLat[0] {
		t.Errorf("Alcatel 20MHz avg latency %v below 60MHz %v: only long stalls should survive",
			low.AvgLat[0], high.AvgLat[0])
	}
}

func TestFig13Quick(t *testing.T) {
	res, err := RunFig13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Run1) < 4 || len(res.Run2) < 4 {
		t.Fatal("boot series too short")
	}
	if res.Correlation < 0.3 {
		t.Fatalf("boot-to-boot correlation %.2f: coarse structure should repeat", res.Correlation)
	}
}

func TestSignalFigureExperiments(t *testing.T) {
	for _, name := range []string{"fig1", "fig2", "fig4"} {
		var buf bytes.Buffer
		if err := Run(name, quickOpts(), &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

func TestFig7And8AndFig10(t *testing.T) {
	f7, err := RunFig7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// A CM group's dips must be individually visible (paper Fig. 7b).
	if f7.GroupStalls < f7.CM-2 || f7.GroupStalls > f7.CM+2 {
		t.Errorf("group stalls %d, want ~CM=%d", f7.GroupStalls, f7.CM)
	}

	f8, err := RunFig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Simulator proxy and device EM signal must agree on the count.
	if f8.SimStalls < f8.TM*9/10 || f8.DevStalls < f8.TM*9/10 {
		t.Errorf("fig8 counts sim=%d dev=%d, want ~%d in both", f8.SimStalls, f8.DevStalls, f8.TM)
	}

	f10, err := RunFig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if f10.CoincidenceFraction < 0.9 {
		t.Errorf("only %.0f%% of stalls coincide with memory activity", 100*f10.CoincidenceFraction)
	}
	if f10.StallActivity <= f10.BaselineActivity {
		t.Error("memory activity inside stalls must exceed baseline")
	}
	// Both probes record simultaneously with the same receiver settings, so
	// their sample rates must match exactly; sample-index alignment between
	// the two captures depends on it.
	if f10.CPUSampleRate != f10.MemSampleRate {
		t.Errorf("probe sample rates diverge: cpu=%v mem=%v", f10.CPUSampleRate, f10.MemSampleRate)
	}
	if f10.CPUSampleRate <= 0 {
		t.Errorf("cpu sample rate %v not positive", f10.CPUSampleRate)
	}
}

func TestFig11Quick(t *testing.T) {
	res, err := RunFig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hists) != 3 {
		t.Fatalf("histograms %d, want 3", len(res.Hists))
	}
	for i, h := range res.Hists {
		if h.Total() == 0 {
			t.Errorf("%s histogram empty", res.Devices[i])
		}
	}
}

func TestSparklineAndDownsample(t *testing.T) {
	if s := sparkline([]float64{0, 1, 2, 3}); len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q", s)
	}
	if s := sparkline(nil); s != "" {
		t.Fatal("empty sparkline")
	}
	d := downsample(make([]float64, 1000), 10)
	if len(d) != 10 {
		t.Fatalf("downsample length %d", len(d))
	}
}

func TestFig2HitMissContrast(t *testing.T) {
	res, err := RunFig2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	hit, miss := res.Series["llc-hit"], res.Series["llc-miss"]
	if len(hit) == 0 || len(miss) == 0 {
		t.Fatal("series missing")
	}
	// The miss kernel's signal must dip far lower (relative to its own
	// busy level) than the hit kernel's.
	rng := func(xs []float64) float64 {
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if max == 0 {
			return 0
		}
		return (max - min) / max
	}
	if rng(miss) < 0.4 {
		t.Fatalf("miss kernel relative range %.2f, want deep dips", rng(miss))
	}
}

func TestFig1MeasuresDeltaT(t *testing.T) {
	res, err := RunFig1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stalls) != 1 {
		t.Fatalf("fig1 should isolate one stall, got %d", len(res.Stalls))
	}
	s := res.Stalls[0]
	// Δt × clock must land in the plausible LLC-miss band for the Olimex
	// model (row-hit to refresh-free row-miss latency plus drain).
	if s.Cycles < 80 || s.Cycles > 800 {
		t.Fatalf("stall of %.0f cycles outside the LLC-miss band", s.Cycles)
	}
	if len(res.Series["magnitude"]) == 0 || len(res.Series["movavg"]) == 0 {
		t.Fatal("fig1 series missing")
	}
}

func TestTable5Shape(t *testing.T) {
	res, err := RunTable5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 3 {
		t.Fatalf("regions %d, want 3", len(res.Regions))
	}
	var batch, dict RegionRow
	for _, r := range res.Regions {
		switch r.Function {
		case "batch_process":
			batch = r
		case "read_dictionary":
			dict = r
		}
	}
	if batch.Function == "" || dict.Function == "" {
		t.Fatalf("missing functions in %+v", res.Regions)
	}
	// The paper's Table V conclusion: batch_process dominates misses and
	// stall share.
	if batch.TotalMiss <= dict.TotalMiss {
		t.Fatalf("batch misses %d not above read_dictionary %d", batch.TotalMiss, dict.TotalMiss)
	}
	if batch.StallPct <= dict.StallPct {
		t.Fatalf("batch stall%% %.2f not above read_dictionary %.2f", batch.StallPct, dict.StallPct)
	}
}

func TestStabilityQuick(t *testing.T) {
	res, err := RunStability(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// EMPROF must be near the truth and far tighter than perf.
	if res.EMProf.Mean < float64(res.TrueMisses)*0.9 || res.EMProf.Mean > float64(res.TrueMisses)*1.1 {
		t.Fatalf("EMPROF mean %.1f far from true %d", res.EMProf.Mean, res.TrueMisses)
	}
	relEM := res.EMProf.StdDev / res.EMProf.Mean
	relPerf := res.Perf.StdDev / res.Perf.Mean
	if relEM > relPerf/3 {
		t.Fatalf("EMPROF rel-stddev %.3f not well below perf %.3f", relEM, relPerf)
	}
	if res.Perf.Mean < 3*float64(res.TrueMisses) {
		t.Fatalf("perf mean %.0f should overcount", res.Perf.Mean)
	}
}
