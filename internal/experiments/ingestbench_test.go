package experiments

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// TestIngestBenchSmall runs the fleet load harness at test scale with a
// forced rebalance: it must complete every session, verify the
// no-loss/no-double-ingest invariants internally, and produce sane
// statistics; the baseline round-trips through JSON and self-compares
// clean.
func TestIngestBenchSmall(t *testing.T) {
	var metrics strings.Builder
	rep, err := RunIngestBench(IngestBenchOptions{
		Shards:            2,
		Sessions:          4,
		SamplesPerSession: 30000,
		ChunkSamples:      4000,
		Rebalance:         true,
		MetricsTo:         &metrics,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rebalanced {
		t.Fatal("forced rebalance did not run")
	}
	if rep.Ingest.Count != 4*8 {
		t.Fatalf("ingest count %d, want %d pushes", rep.Ingest.Count, 4*8)
	}
	if rep.Snapshot.Count == 0 || rep.SamplesPerSecPerShard <= 0 || rep.SamplesPerSecPerCore <= 0 {
		t.Fatalf("empty stats: %+v", rep)
	}
	if rep.AllocsPerSample <= 0 {
		t.Fatalf("allocs/sample not recorded: %+v", rep)
	}
	// 32 pushes cannot support a p99 or p999 estimate: both must be
	// omitted, with the max recorded explicitly instead.
	if rep.Ingest.P99Ms != 0 || rep.Ingest.P999Ms != 0 {
		t.Fatalf("tail quantiles emitted for count=%d: %+v", rep.Ingest.Count, rep.Ingest)
	}
	if rep.Ingest.P50Ms <= 0 || rep.Ingest.P50Ms > rep.Ingest.MaxMs {
		t.Fatalf("non-monotone percentiles: %+v", rep.Ingest)
	}
	for _, series := range []string{
		"emprofd_samples_ingested_total 120000",
		"emprofd_fleet_sessions_moved_total",
		"emprofd_fleet_shards 3",
	} {
		if !strings.Contains(metrics.String(), series) {
			t.Fatalf("fleet metrics excerpt missing %q:\n%s", series, metrics.String())
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_ingest.json")
	if err := WriteIngestBench(rep, path); err != nil {
		t.Fatal(err)
	}
	base, err := LoadIngestBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareIngestBench(rep, base, GateOptions{}, io.Discard); err != nil {
		t.Fatalf("self-compare regressed: %v", err)
	}

	// A run far above baseline trips the gate.
	slow := *rep
	slow.Ingest.P50Ms = base.Ingest.P50Ms*10 + 100
	if err := CompareIngestBench(&slow, base, GateOptions{}, io.Discard); err == nil {
		t.Fatal("10x latency regression passed the gate")
	}
	starved := *rep
	starved.SamplesPerSecPerShard = base.SamplesPerSecPerShard / 10
	if err := CompareIngestBench(&starved, base, GateOptions{}, io.Discard); err == nil {
		t.Fatal("10x throughput collapse passed the gate")
	}
	leaky := *rep
	leaky.AllocsPerSample = base.AllocsPerSample*10 + 1
	if err := CompareIngestBench(&leaky, base, GateOptions{}, io.Discard); err == nil {
		t.Fatal("10x allocation regression passed the gate")
	}
	// A quantile unsupported on either side is skipped, not gated: a
	// current run too small to emit p99 must still self-compare clean
	// against a legacy baseline that recorded one.
	legacy := *base
	legacy.Ingest.P999Ms = legacy.Ingest.MaxMs
	if err := CompareIngestBench(rep, &legacy, GateOptions{}, io.Discard); err != nil {
		t.Fatalf("unsupported quantile was gated: %v", err)
	}
}
