package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestRobustnessQuick is the acceptance test for the hardened profiler:
// exact miss count on the clean capture, ≤ ±10% miss-count error at up to
// 1% random sample dropout, monotonically degrading quality metrics, and
// an explicit resync on gain steps.
func TestRobustnessQuick(t *testing.T) {
	r, err := RunRobustness(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]RobustnessRow{}
	for _, row := range r.Rows {
		rows[row.Label] = row
	}

	// The clean row must match the unhardened pipeline's own accuracy on
	// this benchmark (Table 3 reports >= 95%); exact equality with the
	// engineered count is not guaranteed by the seed detector either.
	clean := rows["clean"]
	if math.Abs(clean.ErrPct) > 5 {
		t.Errorf("clean capture: detected %d vs engineered %d (%.1f%%)",
			clean.Detected, r.TrueMisses, clean.ErrPct)
	}
	if clean.Detected != r.Baseline {
		t.Errorf("clean row %d != baseline %d", clean.Detected, r.Baseline)
	}
	if clean.UsablePct != 100 || clean.Resyncs != 0 {
		t.Errorf("clean capture not reported clean: %+v", clean)
	}

	prevUsable := 101.0
	for _, label := range []string{"clean", "dropout 0.2%", "dropout 0.5%", "dropout 1.0%", "dropout 2.0%"} {
		row, ok := rows[label]
		if !ok {
			t.Fatalf("missing row %q", label)
		}
		if row.UsablePct >= prevUsable && label != "clean" {
			t.Errorf("%s: usable %.2f%% did not degrade from %.2f%%", label, row.UsablePct, prevUsable)
		}
		prevUsable = row.UsablePct
		if label == "dropout 2.0%" {
			continue // beyond the accuracy guarantee; only quality must degrade
		}
		if math.Abs(row.ErrPct) > 10 {
			t.Errorf("%s: miss-count error %.1f%% exceeds ±10%%", label, row.ErrPct)
		}
	}

	for label, row := range rows {
		if strings.HasPrefix(label, "gain steps") && row.Resyncs < 1 {
			t.Errorf("%s: no resync recorded", label)
		}
		if row.MeanConf < 0 || row.MeanConf > 1 {
			t.Errorf("%s: mean confidence %v out of [0,1]", label, row.MeanConf)
		}
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{"robustness", "dropout 1.0%", "usable", "resyncs"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
