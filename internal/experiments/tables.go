package experiments

import (
	"fmt"
	"io"

	"emprof"
	"emprof/internal/core"
	"emprof/internal/device"
	"emprof/internal/perfsim"
	"emprof/internal/sim"
	"emprof/internal/workloads"
)

// Table1 renders the device specifications (paper Table I).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table I: specifications of experimental devices")
	rule(w, 72)
	fmt.Fprintf(w, "%-12s %-28s %-10s %-6s %s\n", "Device", "Processor", "Frequency", "#Cores", "ARM Core")
	for _, d := range device.All() {
		fmt.Fprintf(w, "%-12s %-28s %-10s %-6d %s\n",
			d.Name, d.SoC, fmt.Sprintf("%.3g GHz", d.CPU.ClockHz/1e9), d.Cores, d.CoreName)
	}
}

// Table2Row is one cell grid row of Table II.
type Table2Row struct {
	TM, CM int
	// AccuracyPct is EMPROF's miss-count accuracy per device, in the
	// paper's column order (Alcatel, Samsung, Olimex).
	AccuracyPct [3]float64
	// Detected is the raw detected count per device.
	Detected [3]int
}

// Table2 is the microbenchmark count-accuracy experiment on the three
// physical-device models (paper Table II; paper average 99.52%).
type Table2 struct {
	Rows    []Table2Row
	Devices [3]string
	// AveragePct is the grand mean accuracy.
	AveragePct float64
}

// RunTable2 reproduces Table II: for each (TM, CM) and device, run the
// Fig. 6 microbenchmark through the full EM chain, isolate the engineered
// miss section, and compare EMPROF's count to TM.
func RunTable2(o Options) (*Table2, error) {
	o = o.withDefaults()
	t := &Table2{}
	devs := device.All()
	for i, d := range devs {
		t.Devices[i] = d.Name
	}
	sum, n := 0.0, 0
	for _, mp := range o.microGrid() {
		row := Table2Row{TM: mp.TM, CM: mp.CM}
		for i, d := range devs {
			_, slice, err := simulateMicro(d, mp, emprof.CaptureOptions{Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			prof := analyze(slice)
			row.Detected[i] = len(prof.Stalls)
			row.AccuracyPct[i] = prof.CountAccuracy(mp.TM).Percent
			sum += row.AccuracyPct[i]
			n++
		}
		t.Rows = append(t.Rows, row)
	}
	if n > 0 {
		t.AveragePct = sum / float64(n)
	}
	return t, nil
}

// Render writes the table.
func (t *Table2) Render(w io.Writer) {
	fmt.Fprintln(w, "Table II: EMPROF miss-count accuracy for microbenchmarks (full EM chain)")
	rule(w, 64)
	fmt.Fprintf(w, "%-6s %-6s %10s %10s %10s\n", "#TM", "#CM", t.Devices[0], t.Devices[1], t.Devices[2])
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-6d %-6d %9.2f%% %9.2f%% %9.2f%%\n",
			r.TM, r.CM, r.AccuracyPct[0], r.AccuracyPct[1], r.AccuracyPct[2])
	}
	rule(w, 64)
	fmt.Fprintf(w, "average accuracy: %.2f%% (paper: 99.52%%)\n", t.AveragePct)
}

// Table3Row is one benchmark row of Table III.
type Table3Row struct {
	Name     string
	MissPct  float64
	StallPct float64
	// Detected/TrueEvents and DetectedCycles/TrueCycles are the raw
	// quantities behind the accuracies.
	Detected, TrueEvents       int
	DetectedCycles, TrueCycles float64
}

// Table3 is the cycle-accurate-simulator validation (paper Table III):
// EMPROF applied to the noise-free power-proxy signal versus simulator
// ground truth.
type Table3 struct {
	Micro []Table3Row
	SPEC  []Table3Row
}

// RunTable3 reproduces Table III on the SESC-style device: the signal is
// the simulator's own power trace (one sample per 20 cycles, 50 MHz at
// 1 GHz) and the ground truth is the simulator's stall-interval record.
func RunTable3(o Options) (*Table3, error) {
	o = o.withDefaults()
	dev := device.SESC()
	t := &Table3{}

	score := func(run *emprof.Run, prof *core.Profile, lo, hi uint64) Table3Row {
		truth := mergedTruthBetween(run, lo, hi)
		v := prof.ValidateAgainst(truth)
		return Table3Row{
			MissPct:        v.MissCount.Percent,
			StallPct:       v.StallCycles.Percent,
			Detected:       int(v.MissCount.Detected),
			TrueEvents:     int(v.MissCount.Actual),
			DetectedCycles: v.StallCycles.Detected,
			TrueCycles:     v.StallCycles.Actual,
		}
	}

	for _, mp := range o.microGrid() {
		run, slice, err := simulateMicro(dev, mp, emprof.CaptureOptions{
			Seed: o.Seed, NoiseFree: true, BandwidthHz: 50e6,
		})
		if err != nil {
			return nil, err
		}
		prof := analyze(slice)
		lo, hi, _ := run.RegionWindow(workloads.RegionMisses)
		row := scoreRegion(prof, run, lo, hi)
		row.Name = fmt.Sprintf("TM=%d CM=%d", mp.TM, mp.CM)
		t.Micro = append(t.Micro, row)
	}

	for _, name := range o.specNames() {
		wl, err := emprof.SPECWorkload(name, o.Scale)
		if err != nil {
			return nil, err
		}
		run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{
			Seed: o.Seed, NoiseFree: true, BandwidthHz: 50e6,
		})
		if err != nil {
			return nil, err
		}
		prof := analyze(run.Capture)
		row := score(run, prof, 0, run.Truth.Cycles)
		row.Name = name
		t.SPEC = append(t.SPEC, row)
	}
	return t, nil
}

// scoreRegion validates a region-sliced profile: the profile's sample
// positions are region-relative, so the ground-truth intervals are
// shifted to the region origin before matching.
func scoreRegion(prof *core.Profile, run *emprof.Run, lo, hi uint64) Table3Row {
	truth := mergedTruthBetween(run, lo, hi)
	rel := truth[:0:0]
	for _, s := range truth {
		s.Start -= lo
		s.End -= lo
		rel = append(rel, s)
	}
	v := prof.ValidateAgainst(rel)
	return Table3Row{
		MissPct:        v.MissCount.Percent,
		StallPct:       v.StallCycles.Percent,
		Detected:       int(v.MissCount.Detected),
		TrueEvents:     int(v.MissCount.Actual),
		DetectedCycles: v.StallCycles.Detected,
		TrueCycles:     v.StallCycles.Actual,
	}
}

// Render writes the table.
func (t *Table3) Render(w io.Writer) {
	fmt.Fprintln(w, "Table III: EMPROF accuracy on simulator (power-proxy) data")
	rule(w, 66)
	fmt.Fprintf(w, "%-14s %16s %16s\n", "Benchmark", "Miss Accuracy(%)", "Stall Accuracy(%)")
	fmt.Fprintln(w, "Microbenchmark")
	for _, r := range t.Micro {
		fmt.Fprintf(w, "%-14s %15.1f%% %15.1f%%\n", r.Name, r.MissPct, r.StallPct)
	}
	fmt.Fprintln(w, "SPEC CPU2000")
	for _, r := range t.SPEC {
		fmt.Fprintf(w, "%-14s %15.1f%% %15.1f%%\n", r.Name, r.MissPct, r.StallPct)
	}
}

// Table4Row is one benchmark row of Table IV.
type Table4Row struct {
	Name string
	// Misses and LatencyPct are per device in paper column order
	// (Alcatel, Samsung, Olimex).
	Misses     [3]int
	LatencyPct [3]float64
}

// Table4 is the headline profiling result (paper Table IV): total LLC
// misses reported by EMPROF and miss latency as a percentage of execution
// time, per benchmark per device.
type Table4 struct {
	Devices [3]string
	Micro   []Table4Row
	SPEC    []Table4Row
	Average Table4Row
}

// RunTable4 reproduces Table IV through the full EM chain on all three
// device models.
func RunTable4(o Options) (*Table4, error) {
	o = o.withDefaults()
	devs := device.All()
	t := &Table4{}
	for i, d := range devs {
		t.Devices[i] = d.Name
	}

	for _, mp := range o.microGrid() {
		row := Table4Row{Name: fmt.Sprintf("TM=%d CM=%d", mp.TM, mp.CM)}
		for i, d := range devs {
			run, slice, err := simulateMicro(d, mp, emprof.CaptureOptions{Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			prof := analyze(slice)
			whole := analyze(run.Capture)
			row.Misses[i] = len(prof.Stalls)
			row.LatencyPct[i] = 100 * whole.StallFraction()
		}
		t.Micro = append(t.Micro, row)
	}

	var sums Table4Row
	n := 0
	for _, name := range o.specNames() {
		row := Table4Row{Name: name}
		for i, d := range devs {
			wl, err := emprof.SPECWorkload(name, o.Scale)
			if err != nil {
				return nil, err
			}
			run, err := emprof.Simulate(d, wl, emprof.CaptureOptions{Seed: o.Seed})
			if err != nil {
				return nil, err
			}
			prof := analyze(run.Capture)
			row.Misses[i] = len(prof.Stalls)
			row.LatencyPct[i] = 100 * prof.StallFraction()
			sums.Misses[i] += row.Misses[i]
			sums.LatencyPct[i] += row.LatencyPct[i]
		}
		n++
		t.SPEC = append(t.SPEC, row)
	}
	if n > 0 {
		t.Average.Name = "Average"
		for i := range sums.Misses {
			t.Average.Misses[i] = sums.Misses[i] / n
			t.Average.LatencyPct[i] = sums.LatencyPct[i] / float64(n)
		}
	}
	return t, nil
}

// Render writes the table.
func (t *Table4) Render(w io.Writer) {
	fmt.Fprintln(w, "Table IV: total LLC misses and miss latency (% total time), from EMPROF")
	rule(w, 88)
	fmt.Fprintf(w, "%-14s | %8s %8s %8s | %8s %8s %8s\n", "Benchmark",
		t.Devices[0], t.Devices[1], t.Devices[2], t.Devices[0], t.Devices[1], t.Devices[2])
	fmt.Fprintf(w, "%-14s | %26s | %26s\n", "", "Total LLC Misses", "Miss Latency (%Time)")
	rule(w, 88)
	rows := append(append([]Table4Row{}, t.Micro...), t.SPEC...)
	rows = append(rows, t.Average)
	for _, r := range rows {
		if r.Name == "" {
			continue
		}
		fmt.Fprintf(w, "%-14s | %8d %8d %8d | %8.2f %8.2f %8.2f\n", r.Name,
			r.Misses[0], r.Misses[1], r.Misses[2],
			r.LatencyPct[0], r.LatencyPct[1], r.LatencyPct[2])
	}
}

// Table5 is the parser code-attribution experiment (paper Table V +
// Fig. 14).
type Table5 struct {
	Regions []RegionRow
	// FrameAccuracy is the spectral segmentation's frame-level accuracy
	// against ground truth.
	FrameAccuracy float64
}

// RegionRow is one attributed function's statistics.
type RegionRow struct {
	Region            string
	Function          string
	TotalMiss         int
	MissRatePerMcycle float64
	StallPct          float64
	AvgLatency        float64
}

// RunTable5 reproduces Table V: train spectral signatures on one parser
// run, attribute a second run's signal, and join EMPROF's stalls with the
// segmentation.
func RunTable5(o Options) (*Table5, error) {
	o = o.withDefaults()
	res, err := RunAttribution(o)
	if err != nil {
		return nil, err
	}
	t := &Table5{FrameAccuracy: res.Segmentation.FrameAccuracy}
	labels := []string{"A", "B", "C"}
	for i, rep := range res.Reports {
		lbl := "?"
		if i < len(labels) {
			lbl = labels[i]
		}
		t.Regions = append(t.Regions, RegionRow{
			Region:            lbl,
			Function:          rep.Name,
			TotalMiss:         rep.Misses,
			MissRatePerMcycle: rep.MissRatePerMcycle,
			StallPct:          rep.StallPct,
			AvgLatency:        rep.AvgMissLatency,
		})
	}
	return t, nil
}

// Render writes the table.
func (t *Table5) Render(w io.Writer) {
	fmt.Fprintln(w, "Table V: EMPROF results with spectral code attribution (parser)")
	rule(w, 96)
	fmt.Fprintf(w, "%-7s %-16s %10s %22s %18s %20s\n",
		"Region", "Function", "Total Miss", "Miss Rate(/Mcycles)", "Mem Stall (%)", "Avg Latency (cyc)")
	for _, r := range t.Regions {
		fmt.Fprintf(w, "%-7s %-16s %10d %22.2f %18.2f %20.2f\n",
			r.Region, r.Function, r.TotalMiss, r.MissRatePerMcycle, r.StallPct, r.AvgLatency)
	}
	rule(w, 96)
	fmt.Fprintf(w, "spectral segmentation frame accuracy: %.1f%%\n", 100*t.FrameAccuracy)
}

// PerfBaseline is the Section V perf-counter motivation study.
type PerfBaseline struct {
	TrueMisses int
	// Mean and StdDev summarise the reported counts over Runs runs
	// (paper: 32768 mean, 14543 stddev for 1024 true misses).
	Mean, StdDev float64
	Runs         int
	// MechanisticReported is the miss count from actually executing a
	// handler-instrumented run on the device simulator; Dilation is the
	// execution-time inflation it caused.
	MechanisticReported int
	MechanisticTrue     int
	Dilation            float64
}

// RunPerfBaseline reproduces the perf observation: an engineered
// 1024-miss microbenchmark whose perf-reported miss counts are wildly
// inflated and unstable, plus a mechanistic handler-injection run showing
// the observer effect on the device model itself.
func RunPerfBaseline(o Options) (*PerfBaseline, error) {
	o = o.withDefaults()
	tm := 1024
	if o.Quick {
		tm = 256
	}
	dev := device.Olimex()

	// Reference (unprofiled) run for true miss count and duration.
	mp := workloads.DefaultMicroParams(tm, 10)
	run, _, err := simulateMicro(dev, mp, emprof.CaptureOptions{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	trueMisses := len(run.Truth.Misses)
	durS := dev.Seconds(run.Truth.Cycles)

	nRuns := 20
	if o.Quick {
		nRuns = 5
	}
	sampler := perfsim.MustNewSampler(perfsim.DefaultConfig(), sim.NewRNG(o.Seed))
	study := sampler.Repeat(nRuns, trueMisses, durS)

	// Mechanistic run: inject sampling-handler bursts into the same
	// workload and execute it on the device model.
	wl, err := workloads.Microbenchmark(mp)
	if err != nil {
		return nil, err
	}
	iopts := perfsim.DefaultInstrumentOptions()
	iopts.EveryInsts = 60_000
	inst := perfsim.NewInstrumentedStream(wl, iopts)
	irun, err := emprof.Simulate(dev, inst, emprof.CaptureOptions{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	return &PerfBaseline{
		TrueMisses:          trueMisses,
		Mean:                study.Summary.Mean,
		StdDev:              study.Summary.StdDev,
		Runs:                nRuns,
		MechanisticReported: len(irun.Truth.Misses),
		MechanisticTrue:     trueMisses,
		Dilation:            float64(irun.Truth.Cycles) / float64(run.Truth.Cycles),
	}, nil
}

// Render writes the study.
func (p *PerfBaseline) Render(w io.Writer) {
	fmt.Fprintln(w, "perf-counter baseline (paper Section V):")
	fmt.Fprintf(w, "  engineered misses:            %d\n", p.TrueMisses)
	fmt.Fprintf(w, "  perf-reported over %d runs:   mean=%.0f stddev=%.0f (paper: 32768 / 14543)\n",
		p.Runs, p.Mean, p.StdDev)
	fmt.Fprintf(w, "  mechanistic handler-injected run: counted misses=%d (true %d), exec dilation=%.2fx\n",
		p.MechanisticReported, p.MechanisticTrue, p.Dilation)
}
