package experiments

import (
	"fmt"
	"io"

	"emprof"
	"emprof/internal/attrib"
	"emprof/internal/device"
	"emprof/internal/workloads"
)

// Attribution is the spectral code-attribution experiment behind Fig. 14
// and Table V.
type Attribution struct {
	Model *attrib.Model
	// Segmentation is the automated Spectral Profiling-style result;
	// Reports joins EMPROF's stalls with the paper's *manual* transition
	// marks, as Table V does ("we (manually) mark the transitions").
	Segmentation *attrib.Segmentation
	Reports      []attrib.RegionReport
	// DominantBins maps time chunks to their dominant spectral bin,
	// summarising the Fig. 14 spectrogram.
	DominantBins []int
}

// RunAttribution trains per-function spectral signatures on one parser
// run (seeded with the experiment seed) and attributes a second,
// independently seeded run, exactly as Spectral Profiling trains on one
// execution and recognises another.
func RunAttribution(o Options) (*Attribution, error) {
	o = o.withDefaults()
	dev := device.Olimex()
	names := map[uint16]string{
		workloads.RegionReadDictionary: "read_dictionary",
		workloads.RegionInitRandtable:  "init_randtable",
		workloads.RegionBatchProcess:   "batch_process",
	}

	// Attribution needs enough frames per region for stable signatures, so
	// it runs parser at a larger instruction budget than the counting
	// experiments.
	scale := 3 * o.Scale
	if o.Quick {
		scale = o.Scale
	}
	makeRun := func(seed uint64) (*emprof.Run, error) {
		p, err := workloads.SPECProgram("parser", scale)
		if err != nil {
			return nil, err
		}
		p.Seed ^= seed * 0x9e3779b9
		return emprof.Simulate(dev, p.Stream(), emprof.CaptureOptions{Seed: seed})
	}

	train, err := makeRun(o.Seed)
	if err != nil {
		return nil, err
	}
	model, err := attrib.Train(train.Capture, train.Truth.RegionSpans, attrib.TrainConfig{Names: names})
	if err != nil {
		return nil, err
	}

	test, err := makeRun(o.Seed + 17)
	if err != nil {
		return nil, err
	}
	seg, err := model.Attribute(test.Capture, test.Truth.RegionSpans)
	if err != nil {
		return nil, err
	}
	prof := analyze(test.Capture)
	// Table V uses the manual transition marks, exactly as the paper did;
	// the automated segmentation above is reported as its accuracy.
	manual := attrib.ManualSegmentation(test.Capture, test.Truth.RegionSpans, names)
	reports := manual.JoinProfile(prof)

	// Summarise the spectrogram: dominant non-DC bin per time chunk.
	res := &Attribution{Model: model, Segmentation: seg, Reports: reports}
	res.DominantBins = dominantBins(test, 40)
	return res, nil
}

// dominantBins computes the strongest non-DC spectral bin for n time
// chunks of the run's capture — a text rendering of Fig. 14's three
// visually distinct regions.
func dominantBins(run *emprof.Run, n int) []int {
	samples := run.Capture.Samples
	if len(samples) < 512 || n <= 0 {
		return nil
	}
	out := make([]int, 0, n)
	chunk := len(samples) / n
	for i := 0; i < n; i++ {
		seg := samples[i*chunk : (i+1)*chunk]
		if len(seg) > 4096 {
			seg = seg[:4096]
		}
		spec := powerSpectrum(seg)
		best, bestV := 1, 0.0
		for k := 2; k < len(spec)/2; k++ {
			if spec[k] > bestV {
				best, bestV = k, spec[k]
			}
		}
		out = append(out, best)
	}
	return out
}

// Render writes the attribution summary.
func (a *Attribution) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 14: parser spectrogram dominant bins over time (three regions):")
	xs := make([]float64, len(a.DominantBins))
	for i, b := range a.DominantBins {
		xs[i] = float64(b)
	}
	fmt.Fprintf(w, "  %s\n", sparkline(xs))
	fmt.Fprintf(w, "  segments: %d, frame accuracy %.1f%%\n",
		len(a.Segmentation.Segments), 100*a.Segmentation.FrameAccuracy)
}
