package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"emprof"
	"emprof/internal/fleet"
	"emprof/internal/service"
)

// The fleet ingest benchmark drives concurrent capture streams through
// a router + shards fleet — the emprofd scale-out deployment — and
// records ingest/snapshot latency percentiles and per-shard throughput.
// It doubles as the hand-off correctness harness: with Rebalance set it
// forces one membership change mid-run and then requires every session
// to finalize bit-identical to the batch analysis of its capture, with
// the fleet-wide ingest counter exactly sessions × samples (no sample
// lost, none double-ingested).

// IngestBenchOptions sizes the load harness. Zero fields pick the
// defaults noted per field.
type IngestBenchOptions struct {
	// Shards is the in-process fleet size (default 2). Ignored when
	// RouterURL points at an external fleet.
	Shards int
	// Sessions is the number of concurrent capture streams (default 16).
	Sessions int
	// SamplesPerSession sizes each stream (default 240000); ignored when
	// Capture is set.
	SamplesPerSession int
	// ChunkSamples is the per-push block size (default 24000).
	ChunkSamples int
	// Rebalance forces one shard addition mid-run (in-process fleets
	// only; default off — set it explicitly).
	Rebalance bool
	// RouterURL targets an external router instead of booting an
	// in-process fleet. The registry-counter cross-check is skipped (the
	// bench cannot reach external registries); bit-identity still holds.
	RouterURL string
	// Capture, when set, is streamed by every session instead of the
	// synthetic busy/stall series (emsim -fleet streams a simulated
	// device capture).
	Capture *emprof.Capture
	// Seed varies the synthetic series (default 1).
	Seed uint64
	// WindowS, when positive, enables continuous profiling on the
	// in-process shards — rolling windows of this width in stream
	// seconds — measuring the windowing + store cost under the same
	// load, and additionally requires every session's merged window
	// sequence (fetched through the router fan-in after finalize) to be
	// bit-identical to the batch profile. Ignored with RouterURL (the
	// external fleet's windowing is its own configuration).
	WindowS float64
	// MetricsTo, when set, receives the router's aggregated fleet
	// metrics (PrintFleetMetrics) after the run, while the in-process
	// fleet is still alive.
	MetricsTo io.Writer
}

func (o IngestBenchOptions) withDefaults() IngestBenchOptions {
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Sessions <= 0 {
		o.Sessions = 16
	}
	if o.SamplesPerSession <= 0 {
		o.SamplesPerSession = 240000
	}
	if o.ChunkSamples <= 0 {
		o.ChunkSamples = 24000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// LatencyStats summarizes one request population in milliseconds. A
// tail quantile is reported only when the sample count supports it —
// p99 needs at least 100 observations and p999 at least 1000; below
// that the estimator collapses onto the max and gating it just compares
// noise. Unsupported quantiles are zero (and omitted from the JSON);
// the max is always recorded explicitly instead.
type LatencyStats struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms,omitempty"`
	P999Ms float64 `json:"p999_ms,omitempty"`
	MaxMs  float64 `json:"max_ms"`
}

// IngestBenchReport is the committed BENCH_ingest.json shape.
type IngestBenchReport struct {
	Note                  string  `json:"note"`
	Shards                int     `json:"shards"`
	Sessions              int     `json:"sessions"`
	SamplesPerSession     int     `json:"samples_per_session"`
	Rebalanced            bool    `json:"rebalanced"`
	WindowS               float64 `json:"window_s,omitempty"`
	SamplesPerSecPerShard float64 `json:"samples_per_sec_per_shard"`
	// SamplesPerSecPerCore normalizes total throughput by the host's
	// logical CPU count, making runs comparable across machine sizes
	// (the per-shard number rewards wide hosts).
	SamplesPerSecPerCore float64 `json:"samples_per_sec_per_core,omitempty"`
	// AllocsPerSample is the whole-harness heap-allocation count per
	// ingested sample — client, router, shards, and harness goroutines
	// all run in this process, so it bounds the full ingest spine. The
	// analyzer's steady-state 0 allocs/sample is pinned separately by
	// the service AllocsPerRun test.
	AllocsPerSample float64      `json:"allocs_per_sample,omitempty"`
	Ingest          LatencyStats `json:"ingest"`
	Snapshot        LatencyStats `json:"snapshot"`
}

// RunIngestBench executes the fleet load harness and returns the
// report. Any lost session, diverged profile, or ingest-counter
// mismatch is an error, not a statistic.
func RunIngestBench(opts IngestBenchOptions, w io.Writer) (*IngestBenchReport, error) {
	opts = opts.withDefaults()
	capture := opts.Capture
	if capture == nil {
		capture = &emprof.Capture{
			Samples:    synthSeries(opts.SamplesPerSession, opts.Seed),
			SampleRate: 40e6,
			ClockHz:    1e9,
		}
	}
	want, err := emprof.Analyze(capture, emprof.DefaultConfig())
	if err != nil {
		return nil, err
	}

	routerURL := opts.RouterURL
	var lf *fleet.LocalFleet
	if routerURL == "" {
		lf, err = fleet.StartLocal(opts.Shards,
			service.Config{MaxSessions: opts.Sessions + 16, WindowS: opts.WindowS},
			fleet.Config{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		defer lf.Close()
		routerURL = lf.RouterURL
	}

	type timings struct {
		ingest, snapshot []time.Duration
		id               string
		err              error
	}
	ctx := context.Background()
	results := make([]timings, opts.Sessions)
	var wg sync.WaitGroup
	var rebalanceOnce sync.Once
	var rebalanceErr error
	rebalanced := false
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < opts.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tm := &results[i]
			client := emprof.NewClient(routerURL)
			// Hand-off pauses are part of what the harness measures: the
			// pinned window answers 503 until the move lands, so give the
			// streams a retry budget (~5s expected) that rides it out
			// rather than aborting the run.
			client.RetryBaseDelay = 10 * time.Millisecond
			client.MaxRetries = 10
			id, err := client.CreateSession(ctx, emprof.SessionSpec{
				SampleRate: capture.SampleRate, ClockHz: capture.ClockHz, Device: "bench",
			})
			if err != nil {
				tm.err = err
				return
			}
			n := len(capture.Samples)
			for off, pushes := 0, 0; off < n; off += opts.ChunkSamples {
				end := off + opts.ChunkSamples
				if end > n {
					end = n
				}
				t0 := time.Now()
				if _, err := client.PushSamplesAt(ctx, id, int64(off), capture.Samples[off:end]); err != nil {
					tm.err = fmt.Errorf("push at %d: %w", off, err)
					return
				}
				tm.ingest = append(tm.ingest, time.Since(t0))
				pushes++
				if pushes%4 == 0 {
					t0 = time.Now()
					if _, err := client.Profile(ctx, id); err != nil {
						tm.err = fmt.Errorf("snapshot: %w", err)
						return
					}
					tm.snapshot = append(tm.snapshot, time.Since(t0))
				}
				// Halfway through the first session's stream, grow the
				// fleet by one shard: every later push rides through (or
				// around) a live hand-off.
				if opts.Rebalance && lf != nil && off >= n/2 {
					rebalanceOnce.Do(func() {
						if _, err := lf.AddShard(); err != nil {
							rebalanceErr = err
						}
						rebalanced = true
					})
				}
			}
			got, err := client.Finalize(ctx, id)
			if err != nil {
				tm.err = fmt.Errorf("finalize: %w", err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				tm.err = fmt.Errorf("profile diverged from batch Analyze (samples lost or double-ingested)")
				return
			}
			tm.id = id
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if rebalanceErr != nil {
		return nil, fmt.Errorf("forced rebalance: %w", rebalanceErr)
	}
	if opts.WindowS > 0 && lf != nil {
		// Continuous-profiling correctness under the same load, checked
		// after the clock stops: the windowing work itself happened during
		// the timed ingest (the shards seal and store windows inline), but
		// re-fetching every session's full window timeline through the
		// router fan-in is a test assertion, not ingest, so it must not
		// count against throughput. The fan-in reassembles whatever the
		// rebalance scattered, and the merged sequence must equal the
		// batch profile bit for bit.
		var vg sync.WaitGroup
		for i := range results {
			if results[i].err != nil || results[i].id == "" {
				continue
			}
			vg.Add(1)
			go func(i int) {
				defer vg.Done()
				tm := &results[i]
				client := emprof.NewClient(routerURL)
				resp, err := client.Profiles(ctx, tm.id, emprof.ProfilesRequest{})
				if err != nil {
					tm.err = fmt.Errorf("profiles: %w", err)
					return
				}
				merged, err := emprof.MergeWindows(resp.Windows, capture.SampleRate, capture.ClockHz)
				if err != nil {
					tm.err = fmt.Errorf("merging %d windows: %w", len(resp.Windows), err)
					return
				}
				if !reflect.DeepEqual(merged, want) {
					tm.err = fmt.Errorf("merged window sequence diverged from batch Analyze")
				}
			}(i)
		}
		vg.Wait()
	}
	var ingest, snapshot []time.Duration
	for i := range results {
		if results[i].err != nil {
			return nil, fmt.Errorf("session %d: %w", i, results[i].err)
		}
		ingest = append(ingest, results[i].ingest...)
		snapshot = append(snapshot, results[i].snapshot...)
	}

	totalSamples := int64(opts.Sessions) * int64(len(capture.Samples))
	if lf != nil {
		// The decisive no-double-ingest check: hand-off must not replay a
		// single sample into any shard's counters.
		var counted int64
		for _, s := range lf.Shards() {
			counted += s.Registry().Metrics().SamplesIngested.Load()
		}
		if counted != totalSamples {
			return nil, fmt.Errorf("fleet ingested %d samples, want exactly %d (double ingest or loss)", counted, totalSamples)
		}
		for i, s := range lf.Shards() {
			if n := s.Registry().ActiveSessions(); n != 0 {
				return nil, fmt.Errorf("shard %d still holds %d sessions (lost sessions)", i, n)
			}
		}
	}

	if opts.MetricsTo != nil {
		if err := PrintFleetMetrics(routerURL, opts.MetricsTo); err != nil {
			return nil, fmt.Errorf("fetching fleet metrics: %w", err)
		}
	}

	rep := &IngestBenchReport{
		Note: "emprofd fleet ingest benchmark; latencies are per-request wall time through the router, " +
			"throughput is total samples over wall clock per starting shard",
		Shards:                opts.Shards,
		Sessions:              opts.Sessions,
		SamplesPerSession:     len(capture.Samples),
		Rebalanced:            rebalanced,
		WindowS:               opts.WindowS,
		SamplesPerSecPerShard: float64(totalSamples) / elapsed.Seconds() / float64(opts.Shards),
		SamplesPerSecPerCore:  float64(totalSamples) / elapsed.Seconds() / float64(runtime.NumCPU()),
		AllocsPerSample:       float64(m1.Mallocs-m0.Mallocs) / float64(totalSamples),
		Ingest:                summarize(ingest),
		Snapshot:              summarize(snapshot),
	}
	windowed := ""
	if opts.WindowS > 0 {
		windowed = fmt.Sprintf(", windows %gs", opts.WindowS)
	}
	fmt.Fprintf(w, "fleet ingest: %d sessions x %d samples on %d shards (rebalanced=%v%s) in %v\n",
		rep.Sessions, rep.SamplesPerSession, rep.Shards, rep.Rebalanced, windowed, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  throughput  %.2f Msamples/s/shard  (%.2f Msamples/s/core, %.3f allocs/sample)\n",
		rep.SamplesPerSecPerShard/1e6, rep.SamplesPerSecPerCore/1e6, rep.AllocsPerSample)
	fmt.Fprintf(w, "  ingest      %s  (%d pushes)\n", rep.Ingest.line(), rep.Ingest.Count)
	fmt.Fprintf(w, "  snapshot    %s  (%d snapshots)\n", rep.Snapshot.line(), rep.Snapshot.Count)
	return rep, nil
}

// line renders the stats row, skipping quantiles the count cannot
// support.
func (s LatencyStats) line() string {
	out := fmt.Sprintf("p50 %.2fms", s.P50Ms)
	if s.P99Ms > 0 {
		out += fmt.Sprintf("  p99 %.2fms", s.P99Ms)
	}
	if s.P999Ms > 0 {
		out += fmt.Sprintf("  p999 %.2fms", s.P999Ms)
	}
	return out + fmt.Sprintf("  max %.2fms", s.MaxMs)
}

// summarize sorts one latency population and reads its percentiles.
func summarize(ds []time.Duration) LatencyStats {
	if len(ds) == 0 {
		return LatencyStats{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	pct := func(q float64) float64 {
		i := int(q * float64(len(ds)))
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return ms(ds[i])
	}
	st := LatencyStats{
		Count: len(ds),
		P50Ms: pct(0.50),
		MaxMs: ms(ds[len(ds)-1]),
	}
	// A quantile needs enough observations to be distinguishable from
	// the max; below these counts it is pure tail noise and is omitted.
	if len(ds) >= 100 {
		st.P99Ms = pct(0.99)
	}
	if len(ds) >= 1000 {
		st.P999Ms = pct(0.999)
	}
	return st
}

// WriteIngestBench writes the report as committed-baseline JSON.
func WriteIngestBench(rep *IngestBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadIngestBench reads a baseline written by WriteIngestBench.
func LoadIngestBench(path string) (*IngestBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep IngestBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("ingest baseline %s: %w", path, err)
	}
	return &rep, nil
}

// CompareIngestBench gates a run against the committed baseline using
// the same ratio discipline as the synthesis gate: a latency metric
// regresses when it exceeds baseline·MaxRatio plus the absolute
// LatencyFloorMs (sub-millisecond baselines flip large ratios from
// scheduler jitter alone), and throughput regresses when it drops below
// baseline/MaxRatio. Tail percentiles get proportionally more headroom
// (1.5× the ratio at p99, 2× at p999): with a few hundred requests per
// run those estimators carry large sampling variance, and the gate is
// here to catch order-of-magnitude regressions — retry storms, lost
// concurrency — not tail jitter.
func CompareIngestBench(cur, base *IngestBenchReport, opts GateOptions, w io.Writer) error {
	opts = opts.withDefaults()
	if cur.Sessions != base.Sessions || cur.SamplesPerSession != base.SamplesPerSession || cur.Shards != base.Shards {
		fmt.Fprintf(w, "note: run shape (%dx%d on %d shards) differs from baseline (%dx%d on %d) — comparing anyway\n",
			cur.Sessions, cur.SamplesPerSession, cur.Shards, base.Sessions, base.SamplesPerSession, base.Shards)
	}
	var regressions []string
	check := func(name string, got, want, tailFactor float64) {
		if got == 0 || want == 0 {
			// The quantile is unsupported by the sample count on one side
			// (old baselines recorded them regardless); comparing it would
			// gate on noise. The max is recorded but never gated for the
			// same reason.
			fmt.Fprintf(w, "%-16s skipped (unsupported by sample count)\n", name)
			return
		}
		ratio := opts.MaxRatio * tailFactor
		status := "ok"
		if got > want*ratio+opts.LatencyFloorMs {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.2fms vs baseline %.2fms (> %.2fx + %.1fms)",
				name, got, want, ratio, opts.LatencyFloorMs))
		}
		fmt.Fprintf(w, "%-16s %8.2fms  baseline %8.2fms  %s\n", name, got, want, status)
	}
	check("ingest p50", cur.Ingest.P50Ms, base.Ingest.P50Ms, 1)
	check("ingest p99", cur.Ingest.P99Ms, base.Ingest.P99Ms, 1.5)
	check("ingest p999", cur.Ingest.P999Ms, base.Ingest.P999Ms, 2)
	check("snapshot p50", cur.Snapshot.P50Ms, base.Snapshot.P50Ms, 1)
	check("snapshot p99", cur.Snapshot.P99Ms, base.Snapshot.P99Ms, 1.5)
	check("snapshot p999", cur.Snapshot.P999Ms, base.Snapshot.P999Ms, 2)
	tpStatus := "ok"
	if base.SamplesPerSecPerShard > 0 && cur.SamplesPerSecPerShard < base.SamplesPerSecPerShard/opts.MaxRatio {
		tpStatus = "REGRESSION"
		regressions = append(regressions, fmt.Sprintf("throughput: %.2f Msamples/s/shard vs baseline %.2f (< 1/%.2fx)",
			cur.SamplesPerSecPerShard/1e6, base.SamplesPerSecPerShard/1e6, opts.MaxRatio))
	}
	fmt.Fprintf(w, "%-16s %7.2fMs/s  baseline %6.2fMs/s  %s\n",
		"throughput/shard", cur.SamplesPerSecPerShard/1e6, base.SamplesPerSecPerShard/1e6, tpStatus)
	if base.AllocsPerSample > 0 {
		// Allocation regressions show up long before they move wall-clock
		// throughput on a fast machine; gate them directly. The small
		// absolute floor absorbs run-to-run GC bookkeeping jitter.
		allocStatus := "ok"
		if cur.AllocsPerSample > base.AllocsPerSample*opts.MaxRatio+0.05 {
			allocStatus = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("allocs/sample: %.3f vs baseline %.3f (> %.2fx + 0.05)",
				cur.AllocsPerSample, base.AllocsPerSample, opts.MaxRatio))
		}
		fmt.Fprintf(w, "%-16s %11.3f  baseline %11.3f  %s\n",
			"allocs/sample", cur.AllocsPerSample, base.AllocsPerSample, allocStatus)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("fleet ingest benchmark regressions:\n%s", joinLines(regressions))
	}
	return nil
}

// PrintFleetMetrics fetches the router's aggregated /metrics and prints
// the fleet-relevant series (sessions, samples, hand-off counters) —
// what the CI smoke job greps after a load run.
func PrintFleetMetrics(routerURL string, w io.Writer) error {
	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "emprofd_sessions_") ||
			strings.HasPrefix(line, "emprofd_samples_") ||
			strings.HasPrefix(line, "emprofd_fleet_") {
			fmt.Fprintln(w, line)
		}
	}
	return nil
}
