package experiments

import (
	"fmt"
	"io"

	"emprof"
	"emprof/internal/device"
	"emprof/internal/dsp"
	"emprof/internal/perfsim"
	"emprof/internal/sim"
	"emprof/internal/workloads"
)

// Stability contrasts run-to-run variance of EMPROF's reported miss count
// against the perf baseline for the same engineered benchmark — the
// quantitative form of the paper's motivation: hardware-counter sampling
// is both inflated and unstable at this scale, while a zero-observer-
// effect profiler reports the engineered count tightly across repeated
// acquisitions (different noise, drift phase, and replacement
// randomness).
type Stability struct {
	TrueMisses int
	Runs       int
	// EMProf and Perf summarise the reported counts across runs.
	EMProf dsp.Summary
	Perf   dsp.Summary
}

// RunStability repeats the TM=1024 microbenchmark acquisition with
// varying seeds and summarises both profilers' reported counts.
func RunStability(o Options) (*Stability, error) {
	o = o.withDefaults()
	tm := 1024
	runs := 10
	if o.Quick {
		tm, runs = 256, 4
	}
	dev := device.Olimex()
	mp := workloads.DefaultMicroParams(tm, 10)

	var counts []float64
	var durS float64
	var trueMisses int
	for i := 0; i < runs; i++ {
		mp.Seed = 0x1234 + uint64(i)
		run, slice, err := simulateMicro(dev, mp, emprof.CaptureOptions{Seed: o.Seed + uint64(i)*131})
		if err != nil {
			return nil, err
		}
		prof := analyze(slice)
		counts = append(counts, float64(len(prof.Stalls)))
		durS = dev.Seconds(run.Truth.Cycles)
		trueMisses = len(run.Truth.Misses)
	}

	sampler := perfsim.MustNewSampler(perfsim.DefaultConfig(), sim.NewRNG(o.Seed))
	perfStudy := sampler.Repeat(runs, trueMisses, durS)

	return &Stability{
		TrueMisses: trueMisses,
		Runs:       runs,
		EMProf:     dsp.Summarize(counts),
		Perf:       perfStudy.Summary,
	}, nil
}

// Render writes the comparison.
func (s *Stability) Render(w io.Writer) {
	fmt.Fprintf(w, "profiler stability over %d runs (engineered misses: %d):\n", s.Runs, s.TrueMisses)
	fmt.Fprintf(w, "  EMPROF reported: mean=%.1f stddev=%.1f (%.2f%% of mean)\n",
		s.EMProf.Mean, s.EMProf.StdDev, 100*s.EMProf.StdDev/s.EMProf.Mean)
	fmt.Fprintf(w, "  perf   reported: mean=%.0f stddev=%.0f (%.0f%% of mean)\n",
		s.Perf.Mean, s.Perf.StdDev, 100*s.Perf.StdDev/s.Perf.Mean)
	fmt.Fprintln(w, "  the observer-effect-free profiler is both accurate and repeatable;")
	fmt.Fprintln(w, "  counter sampling is neither (paper Section V).")
}
