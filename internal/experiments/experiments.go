// Package experiments reproduces every table and figure of the paper's
// evaluation: each Run* function builds the workload, simulates the
// acquisition on the appropriate device(s), applies EMPROF, and returns a
// typed result that renders the same rows or series the paper reports.
// The per-experiment index lives in DESIGN.md; paper-vs-measured numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"

	"emprof"
	"emprof/internal/core"
	"emprof/internal/cpu"
	"emprof/internal/device"
	"emprof/internal/workloads"
)

// Options are shared experiment knobs.
type Options struct {
	// Scale is the SPEC/boot instruction budget in millions (default 1).
	Scale float64
	// Seed drives all run randomness (default 1).
	Seed uint64
	// Quick shrinks the microbenchmark grid and run lengths for smoke
	// tests and benchmarks.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// microGrid returns the paper's (TM, CM) grid, shrunk under Quick.
func (o Options) microGrid() []workloads.MicroParams {
	if o.Quick {
		return []workloads.MicroParams{
			workloads.DefaultMicroParams(128, 1),
			workloads.DefaultMicroParams(256, 8),
		}
	}
	return workloads.MicroTMCMGrid()
}

// specNames returns the benchmark list, shrunk under Quick.
func (o Options) specNames() []string {
	if o.Quick {
		return []string{"mcf", "bzip2"}
	}
	return workloads.SPECNames
}

// simulateMicro runs the microbenchmark on a device and returns the run
// plus the capture slice covering the engineered miss section (the paper
// isolates this section via the marker loops; the harness uses the
// simulator's region spans, which mark the same boundaries).
func simulateMicro(dev device.Device, mp workloads.MicroParams, opts emprof.CaptureOptions) (*emprof.Run, *emprof.Capture, error) {
	w, err := workloads.Microbenchmark(mp)
	if err != nil {
		return nil, nil, err
	}
	run, err := emprof.Simulate(dev, w, opts)
	if err != nil {
		return nil, nil, err
	}
	slice, err := run.SliceRegion(workloads.RegionMisses)
	if err != nil {
		return nil, nil, err
	}
	return run, slice, nil
}

// analyze applies EMPROF with the default configuration.
func analyze(c *emprof.Capture) *core.Profile {
	return core.MustNewAnalyzer(core.DefaultConfig()).Profile(c)
}

// mergedTruth returns the run's ground-truth stall events at the signal's
// resolution: raw intervals are merged across gaps below the sample
// period (the pipeline sometimes interrupts one physical stall for a
// cycle or two, which no band-limited signal can resolve), and intervals
// shorter than the detector's minimum-stall duration are dropped — those
// are on-chip-latency slivers, not the LLC-miss stalls the paper's MISS
// events denote ("the threshold is selected to be significantly shorter
// than the LLC latency but significantly longer than typical on-chip
// latencies").
func mergedTruth(run *emprof.Run) []cpu.StallInterval {
	gap := uint64(run.Capture.CyclesPerSample() * 2)
	if gap < 2 {
		gap = 2
	}
	merged := cpu.MergeStalls(run.Truth.Stalls, gap)
	minCycles := uint64(core.DefaultConfig().MinStallS * run.Device.CPU.ClockHz)
	out := merged[:0]
	for _, s := range merged {
		// A detectable event must contain enough genuinely stalled cycles
		// and be idle-dominated across its span; a string of slivers
		// bridged by busy gaps never depresses the signal.
		if s.StalledCycles() >= minCycles && 2*s.StalledCycles() >= s.Cycles() {
			out = append(out, s)
		}
	}
	return out
}

// mergedTruthBetween merges and then restricts to [lo, hi) cycles.
func mergedTruthBetween(run *emprof.Run, lo, hi uint64) []cpu.StallInterval {
	return cpu.FilterStalls(mergedTruth(run), lo, hi)
}

// rule writes a horizontal rule.
func rule(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}

// sparkline renders xs as a one-line unicode bar chart scaled to max.
func sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	max := xs[0]
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if max <= 0 {
		max = 1
	}
	out := make([]rune, len(xs))
	for i, x := range xs {
		k := int(x / max * float64(len(levels)-1))
		if k < 0 {
			k = 0
		}
		if k >= len(levels) {
			k = len(levels) - 1
		}
		out[i] = levels[k]
	}
	return string(out)
}

// downsample averages xs into at most n buckets for display.
func downsample(xs []float64, n int) []float64 {
	if len(xs) <= n || n <= 0 {
		return xs
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(xs) / n
		hi := (i + 1) * len(xs) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, x := range xs[lo:hi] {
			sum += x
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
