package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"testing"
	"text/tabwriter"

	"emprof"
	"emprof/internal/em"
	"emprof/internal/sim"
)

// SynthBenchEntry is one measured synthesis benchmark, in the units the
// regression gate compares: ns/op for the whole operation, ns per simulated
// clock cycle, and the synthesized output-sample throughput.
type SynthBenchEntry struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	Cycles        uint64  `json:"cycles"`
	NsPerCycle    float64 `json:"ns_per_cycle"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// SynthBenchReport is the serialised form of one synthesis benchmark run
// (the committed BENCH_synthesis.json baseline and the CI artifact).
type SynthBenchReport struct {
	// Note records what the numbers mean, for readers of the JSON file.
	Note    string            `json:"note"`
	Entries []SynthBenchEntry `json:"entries"`
}

// synthSeries builds the busy/stall per-cycle power pattern the synthesis
// benchmarks stream (same character as the profiler's target signals).
func synthSeries(n int, seed uint64) []float64 {
	rng := sim.NewRNG(seed)
	s := make([]float64, n)
	busy := true
	left := 50
	for i := range s {
		if left == 0 {
			busy = !busy
			if busy {
				left = 30 + rng.Intn(120)
			} else {
				left = 5 + rng.Intn(40)
			}
		}
		left--
		if busy {
			s[i] = 1 + 0.3*rng.Float64()
		} else {
			s[i] = 0.25
		}
	}
	return s
}

// synthBenchReceiverConfig is the realistic impaired receiver used by the
// synthesis benchmarks: 1 GHz clock, 40 MHz bandwidth (decimation 25),
// probe noise and supply drift enabled.
func synthBenchReceiverConfig() em.ReceiverConfig {
	return em.ReceiverConfig{
		ClockHz:      1e9,
		BandwidthHz:  40e6,
		ProbeGain:    2,
		SNRdB:        15,
		DriftPeriodS: 1e-4,
		DriftDepth:   0.1,
		Seed:         1,
	}
}

// synthCase is one benchmark: body is measured under testing.Benchmark and
// must consume exactly cycles simulated cycles per b.N iteration.
type synthCase struct {
	name    string
	cycles  uint64
	samples uint64 // synthesized output samples per op (0 = not a capture)
	body    func(b *testing.B)
}

// synthCases builds the benchmark set. quick shrinks the cycle counts for
// smoke runs (CI uses the full sizes so ns/cycle is stable).
func synthCases(quick bool) ([]synthCase, error) {
	cyc := 1 << 20
	if quick {
		cyc = 1 << 16
	}
	series := synthSeries(cyc, 9)
	cfg := synthBenchReceiverConfig()
	clean := em.ReceiverConfig{ClockHz: 1e9, BandwidthHz: 40e6, ProbeGain: 1, SNRdB: math.Inf(1)}

	countSamples := func(c em.ReceiverConfig) uint64 {
		r := em.MustNewReceiver(c)
		r.PushBlock(series)
		r.Flush()
		return uint64(len(r.Capture().Samples))
	}

	// The end-to-end case runs the full simulator into the receiver chain;
	// one dry run pins the deterministic cycle count.
	e2e := func(batch int) (*emprof.Run, error) {
		w, err := emprof.Microbenchmark(128, 8)
		if err != nil {
			return nil, err
		}
		return emprof.Simulate(emprof.DeviceOlimex(), w, emprof.CaptureOptions{Seed: 1, BatchCycles: batch})
	}
	dry, err := e2e(0)
	if err != nil {
		return nil, err
	}

	cases := []synthCase{
		{
			name:    "receiver-block",
			cycles:  uint64(cyc),
			samples: countSamples(cfg),
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := em.MustNewReceiver(cfg)
					for pos := 0; pos < len(series); pos += 4096 {
						end := pos + 4096
						if end > len(series) {
							end = len(series)
						}
						r.PushBlock(series[pos:end])
					}
					r.Flush()
				}
			},
		},
		{
			name:    "receiver-cycle",
			cycles:  uint64(cyc),
			samples: countSamples(cfg),
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := em.MustNewReceiver(cfg)
					for _, p := range series {
						r.PushCycle(p)
					}
					r.Flush()
				}
			},
		},
		{
			name:    "receiver-block-clean",
			cycles:  uint64(cyc),
			samples: countSamples(clean),
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := em.MustNewReceiver(clean)
					for pos := 0; pos < len(series); pos += 4096 {
						end := pos + 4096
						if end > len(series) {
							end = len(series)
						}
						r.PushBlock(series[pos:end])
					}
					r.Flush()
				}
			},
		},
		{
			name:    "series-synthesis",
			cycles:  uint64(cyc),
			samples: countSamples(cfg),
			body: func(b *testing.B) {
				// The memory-probe path: one value per 25 cycles, expanded
				// and synthesized through the block pipeline.
				vals := series[:len(series)/25]
				for i := 0; i < b.N; i++ {
					if _, err := em.SynthesizeFromSeries(vals, 25, cfg); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// The analysis side of the pipeline: batch EMPROF over the dry
			// run's capture, through the options API with no observer — the
			// fast path the trace layer must keep free.
			name:    "analyze-batch",
			cycles:  dry.Truth.Cycles,
			samples: uint64(len(dry.Capture.Samples)),
			body: func(b *testing.B) {
				cfg := emprof.DefaultConfig()
				an, err := emprof.NewAnalyzer(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					if _, err := an.Run(context.Background(), dry.Capture); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name:    "simulate-e2e",
			cycles:  dry.Truth.Cycles,
			samples: uint64(len(dry.Capture.Samples)),
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := e2e(0); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name:    "simulate-e2e-percycle",
			cycles:  dry.Truth.Cycles,
			samples: uint64(len(dry.Capture.Samples)),
			body: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := e2e(1); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// The probe-displacement axis: the same microbenchmark swept
			// across four placements through RunSweep, covering the spatial
			// coupling stage and the sweep pool in one number.
			name:    "position-sweep",
			cycles:  4 * dry.Truth.Cycles,
			samples: 4 * uint64(len(dry.Capture.Samples)),
			body: func(b *testing.B) {
				grid := emprof.SweepGrid{
					Devices:        []string{"olimex"},
					Workloads:      []string{"micro:128:8"},
					Seeds:          []uint64{1},
					ProbeOffsetsMM: []float64{0, 1, 2, 4},
				}
				jobs := grid.Jobs()
				for i := 0; i < b.N; i++ {
					res, err := emprof.RunSweep(context.Background(), jobs, emprof.SweepOptions{})
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range res {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			},
		},
	}
	return cases, nil
}

// RunSynthBench measures the synthesis pipeline count times per case and
// reports the fastest run of each (minimum ns/op — the standard way to
// strip scheduler noise from a throughput benchmark). It prints a table to
// w and returns the structured report.
func RunSynthBench(count int, quick bool, w io.Writer) (*SynthBenchReport, error) {
	if count < 1 {
		count = 1
	}
	cases, err := synthCases(quick)
	if err != nil {
		return nil, err
	}
	rep := &SynthBenchReport{
		Note: "emprof synthesis pipeline benchmarks; ns_per_cycle is wall time per simulated clock cycle, min over repeated runs",
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "name\tns/op\tns/cycle\tMsamples/s\tallocs/op")
	for _, c := range cases {
		best := SynthBenchEntry{Name: c.name, Cycles: c.cycles, NsPerOp: math.Inf(1)}
		for i := 0; i < count; i++ {
			r := testing.Benchmark(c.body)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if ns < best.NsPerOp {
				best.NsPerOp = ns
				best.NsPerCycle = ns / float64(c.cycles)
				if c.samples > 0 && ns > 0 {
					best.SamplesPerSec = float64(c.samples) / (ns * 1e-9)
				}
				best.AllocsPerOp = float64(r.MemAllocs) / float64(r.N)
			}
		}
		rep.Entries = append(rep.Entries, best)
		fmt.Fprintf(tw, "%s\t%.0f\t%.3f\t%.2f\t%.1f\n",
			best.Name, best.NsPerOp, best.NsPerCycle, best.SamplesPerSec/1e6, best.AllocsPerOp)
	}
	tw.Flush()
	return rep, nil
}

// WriteSynthBench writes the report as indented JSON.
func WriteSynthBench(rep *SynthBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadSynthBench reads a baseline report written by WriteSynthBench.
func LoadSynthBench(path string) (*SynthBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep SynthBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("synthbench baseline %s: %w", path, err)
	}
	return &rep, nil
}

// GateOptions configures the regression gate in CompareSynthBench. The
// zero value picks the defaults noted per field, so callers only set what
// they need to override.
type GateOptions struct {
	// MaxRatio is the allowed ns/cycle ratio over the baseline before a
	// case counts as a time regression. Default 1.3 — tight enough to
	// catch a real slowdown on a quiet machine; CI overrides it upward to
	// absorb shared-runner speed variance.
	MaxRatio float64
	// NoiseFloorNsPerCycle is an absolute slack added on top of the
	// ratio: a case only regresses when its ns/cycle exceeds
	// baseline*MaxRatio + floor. Sub-nanosecond-per-cycle cases flip
	// large ratios from timer granularity alone; the floor (default 0.5
	// ns/cycle) keeps those from tripping the gate. Set negative to
	// disable (treat as 0).
	NoiseFloorNsPerCycle float64
	// MaxAllocRatio gates allocs_per_op the same way ns/cycle is gated.
	// Allocation counts are near-deterministic, so the default slack is
	// smaller (1.25x); a hot-loop allocation regression multiplies the
	// count by orders of magnitude (the bug this gate exists for turned
	// ~100 allocs/op into ~220000). Set negative to disable the alloc
	// gate entirely.
	MaxAllocRatio float64
	// AllocFloor is the absolute allocs_per_op slack (default 64), so
	// single-digit baselines tolerate a few incidental allocations.
	AllocFloor float64
	// LatencyFloorMs is the absolute slack for the fleet ingest gate
	// (CompareIngestBench): a latency metric only regresses when it
	// exceeds baseline*MaxRatio + floor. Sub-millisecond baselines flip
	// large ratios from scheduler jitter alone; the floor (default 2 ms)
	// keeps those from tripping the gate. Set negative to disable.
	LatencyFloorMs float64
}

func (o GateOptions) withDefaults() GateOptions {
	if o.MaxRatio == 0 {
		o.MaxRatio = 1.3
	}
	if o.NoiseFloorNsPerCycle == 0 {
		o.NoiseFloorNsPerCycle = 0.5
	} else if o.NoiseFloorNsPerCycle < 0 {
		o.NoiseFloorNsPerCycle = 0
	}
	if o.MaxAllocRatio == 0 {
		o.MaxAllocRatio = 1.25
	}
	if o.AllocFloor == 0 {
		o.AllocFloor = 64
	} else if o.AllocFloor < 0 {
		o.AllocFloor = 0
	}
	if o.LatencyFloorMs == 0 {
		o.LatencyFloorMs = 2
	} else if o.LatencyFloorMs < 0 {
		o.LatencyFloorMs = 0
	}
	return o
}

// CompareSynthBench gates the current run against a committed baseline,
// per GateOptions: a case regresses when its ns/cycle (or allocs/op)
// exceeds the baseline by more than the configured ratio plus the
// absolute noise floor. Cases present on only one side are reported but
// not fatal, so the benchmark set can evolve.
func CompareSynthBench(cur, base *SynthBenchReport, opts GateOptions, w io.Writer) error {
	opts = opts.withDefaults()
	baseByName := make(map[string]SynthBenchEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseByName[e.Name] = e
	}
	var regressions []string
	for _, e := range cur.Entries {
		b, ok := baseByName[e.Name]
		if !ok {
			fmt.Fprintf(w, "%-24s new case (no baseline)\n", e.Name)
			continue
		}
		ratio := math.Inf(1)
		if b.NsPerCycle > 0 {
			ratio = e.NsPerCycle / b.NsPerCycle
		}
		status := "ok"
		if e.NsPerCycle > b.NsPerCycle*opts.MaxRatio+opts.NoiseFloorNsPerCycle {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f ns/cycle vs baseline %.3f (%.2fx > %.2fx)",
					e.Name, e.NsPerCycle, b.NsPerCycle, ratio, opts.MaxRatio))
		}
		if opts.MaxAllocRatio > 0 && e.AllocsPerOp > b.AllocsPerOp*opts.MaxAllocRatio+opts.AllocFloor {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f allocs/op vs baseline %.1f (> %.2fx + %.0f)",
					e.Name, e.AllocsPerOp, b.AllocsPerOp, opts.MaxAllocRatio, opts.AllocFloor))
		}
		fmt.Fprintf(w, "%-24s %.3f ns/cycle  baseline %.3f  (%.2fx)  %.1f allocs/op (baseline %.1f)  %s\n",
			e.Name, e.NsPerCycle, b.NsPerCycle, ratio, e.AllocsPerOp, b.AllocsPerOp, status)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("synthesis benchmark regressions:\n%s", joinLines(regressions))
	}
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n"
		}
		out += "  " + s
	}
	return out
}
