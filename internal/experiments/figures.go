package experiments

import (
	"fmt"
	"io"

	"emprof"
	"emprof/internal/core"
	"emprof/internal/device"
	"emprof/internal/dsp"
	"emprof/internal/workloads"
)

// powerSpectrum is a small Hann-windowed spectrum helper for figure
// summaries.
func powerSpectrum(x []float64) []float64 {
	return dsp.PowerSpectrum(x, dsp.HannCached(len(x)))
}

// SignalFigure is a generic signal-shape figure result: one or two series
// plus the stall events detected in them.
type SignalFigure struct {
	Title  string
	Series map[string][]float64
	// SampleRate of the series in Hz.
	SampleRate float64
	// Stalls are the EMPROF detections in the primary series.
	Stalls []core.Stall
	Notes  []string
}

// Render writes a text view: notes plus downsampled sparklines.
func (f *SignalFigure) Render(w io.Writer) {
	fmt.Fprintln(w, f.Title)
	for name, s := range f.Series {
		fmt.Fprintf(w, "  %-12s %s\n", name, sparkline(downsample(s, 100)))
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  - %s\n", n)
	}
}

// RunFig1 reproduces Fig. 1: the magnitude of the EM signal across one
// LLC-miss stall, with its moving average, and the measured Δt.
func RunFig1(o Options) (*SignalFigure, error) {
	o = o.withDefaults()
	dev := device.Olimex()
	wl, err := workloads.AccessKernel(workloads.DefaultAccessKernelParams(
		workloads.MissLLC, dev.Mem.L1D.SizeBytes, dev.Mem.LLC.SizeBytes))
	if err != nil {
		return nil, err
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	prof := analyze(run.Capture)
	f := &SignalFigure{
		Title:      "Fig. 1: EM magnitude across one LLC-miss stall (dashed: signal, solid: moving average)",
		Series:     map[string][]float64{},
		SampleRate: run.Capture.SampleRate,
	}
	if len(prof.Stalls) == 0 {
		return nil, fmt.Errorf("experiments: fig1 found no stalls")
	}
	// Window around the first comfortable stall.
	s := prof.Stalls[len(prof.Stalls)/2]
	lo := s.StartSample - 60
	hi := s.EndSample + 60
	win := run.Capture.Slice(lo, hi)
	ma := dsp.NewMovingAverage(9)
	f.Series["magnitude"] = win.Samples
	f.Series["movavg"] = ma.ProcessBlock(win.Samples, nil)
	f.Stalls = []core.Stall{s}
	f.Notes = append(f.Notes,
		fmt.Sprintf("Δt = %.0f ns → %.0f stall cycles at %.3f GHz",
			s.DurationS*1e9, s.Cycles, run.Device.CPU.ClockHz/1e9))
	return f, nil
}

// RunFig2 reproduces Fig. 2: the simulator power signal for an LLC-hit
// stall kernel versus an LLC-miss stall kernel.
func RunFig2(o Options) (*SignalFigure, error) {
	o = o.withDefaults()
	dev := device.SESC()
	f := &SignalFigure{
		Title:  "Fig. 2: (a) LLC-hit stalls vs (b) LLC-miss stalls in the simulator power signal",
		Series: map[string][]float64{},
	}
	for _, c := range []struct {
		level workloads.MissLevel
		name  string
	}{{workloads.MissL1, "llc-hit"}, {workloads.MissLLC, "llc-miss"}} {
		wl, err := workloads.AccessKernel(workloads.DefaultAccessKernelParams(
			c.level, dev.Mem.L1D.SizeBytes, dev.Mem.LLC.SizeBytes))
		if err != nil {
			return nil, err
		}
		run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{
			Seed: o.Seed, NoiseFree: true, BandwidthHz: 50e6, PowerProxy: true,
		})
		if err != nil {
			return nil, err
		}
		slice, err := run.SliceRegion(workloads.RegionKernelAccess)
		if err != nil {
			return nil, err
		}
		f.SampleRate = slice.SampleRate
		f.Series[c.name] = slice.Samples
		prof := analyze(slice)
		truth := mergedTruth(run)
		f.Notes = append(f.Notes, fmt.Sprintf("%s: detected stalls=%d avg=%.0f cycles (ground-truth LLC misses=%d)",
			c.name, len(prof.Stalls), prof.AvgStallCycles(), len(run.Truth.Misses)))
		_ = truth
	}
	return f, nil
}

// Fig3Result quantifies the hidden/overlapped-miss behaviour of Fig. 3.
type Fig3Result struct {
	// Independent-load groups (Fig. 3a): many misses, fewer stalls.
	GroupMisses, GroupStalls int
	GroupStallCycles         uint64
	GroupMissesPerStall      float64
	// Dual I$+D$ misses (Fig. 3b): two overlapping misses, one stall.
	DualMisses, DualStalls int
	OverlapFraction        float64
}

// RunFig3 reproduces Fig. 3: (a) grouped independent misses whose early
// members never stall the core individually and (b) overlapping
// instruction+data misses reported as a single stall.
func RunFig3(o Options) (*Fig3Result, error) {
	o = o.withDefaults()
	dev := device.SESC()

	groups := 80
	if o.Quick {
		groups = 20
	}
	wl, err := workloads.OverlapKernel(workloads.OverlapKernelParams{
		Groups: groups, GroupSize: 6, GapWork: 600,
		LineBytes: 64, LLCBytes: dev.Mem.LLC.SizeBytes, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: o.Seed, NoiseFree: true, BandwidthHz: 50e6})
	if err != nil {
		return nil, err
	}
	truth := mergedTruth(run)
	res := &Fig3Result{
		GroupMisses:      len(run.Truth.Misses),
		GroupStalls:      len(truth),
		GroupStallCycles: run.Truth.FullStallCycles,
	}
	if res.GroupStalls > 0 {
		res.GroupMissesPerStall = float64(res.GroupMisses) / float64(res.GroupStalls)
	}

	dual, err := workloads.DualMissKernel(groups, 600, 64, dev.Mem.LLC.SizeBytes)
	if err != nil {
		return nil, err
	}
	drun, err := emprof.Simulate(dev, dual, emprof.CaptureOptions{Seed: o.Seed, NoiseFree: true, BandwidthHz: 50e6})
	if err != nil {
		return nil, err
	}
	dtruth := mergedTruth(drun)
	res.DualMisses = len(drun.Truth.Misses)
	res.DualStalls = len(dtruth)
	overl := 0
	for _, s := range dtruth {
		if s.Misses >= 2 {
			overl++
		}
	}
	if len(dtruth) > 0 {
		res.OverlapFraction = float64(overl) / float64(len(dtruth))
	}
	return res, nil
}

// Render writes the Fig. 3 summary.
func (r *Fig3Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 3: misses hidden by MLP and overlapping I$/D$ misses")
	fmt.Fprintf(w, "  (a) grouped independent misses: %d LLC misses produced %d stall events (%.1f misses/stall);\n",
		r.GroupMisses, r.GroupStalls, r.GroupMissesPerStall)
	fmt.Fprintf(w, "      stall accounting still captures their cost: %d fully-stalled cycles\n", r.GroupStallCycles)
	fmt.Fprintf(w, "  (b) dual I$+D$ misses: %d misses -> %d stalls; %.0f%% of stalls cover >=2 overlapped misses\n",
		r.DualMisses, r.DualStalls, 100*r.OverlapFraction)
}

// RunFig4 reproduces Fig. 4: the hit/miss contrast of Fig. 2 observed in
// the synthesized physical EM signal of the Olimex board.
func RunFig4(o Options) (*SignalFigure, error) {
	o = o.withDefaults()
	dev := device.Olimex()
	f := &SignalFigure{
		Title:  "Fig. 4: LLC hit vs miss in the physical (synthesized EM) side-channel signal",
		Series: map[string][]float64{},
	}
	for _, c := range []struct {
		level workloads.MissLevel
		name  string
	}{{workloads.MissL1, "llc-hit"}, {workloads.MissLLC, "llc-miss"}} {
		wl, err := workloads.AccessKernel(workloads.DefaultAccessKernelParams(
			c.level, dev.Mem.L1D.SizeBytes, dev.Mem.LLC.SizeBytes))
		if err != nil {
			return nil, err
		}
		run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		slice, err := run.SliceRegion(workloads.RegionKernelAccess)
		if err != nil {
			return nil, err
		}
		f.SampleRate = slice.SampleRate
		f.Series[c.name] = slice.Samples
		prof := analyze(slice)
		avgNS := 0.0
		if len(prof.Stalls) > 0 {
			avgNS = prof.AvgStallCycles() / dev.CPU.ClockHz * 1e9
		}
		f.Notes = append(f.Notes, fmt.Sprintf("%s: detected stalls=%d avg=%.0f ns (paper: miss stalls last ~300 ns)",
			c.name, len(prof.Stalls), avgNS))
	}
	return f, nil
}

// Fig5Result is the refresh-collision study.
type Fig5Result struct {
	// Stalls and RefreshStalls are EMPROF's counts; refresh stalls are the
	// 2–3 µs events.
	Stalls, RefreshStalls int
	// AvgNormalNS and AvgRefreshNS are mean durations of the two classes.
	AvgNormalNS, AvgRefreshNS float64
	// MeanRefreshSpacingUS is the mean time between refresh-coincident
	// stalls (paper: at least every ~70 µs).
	MeanRefreshSpacingUS float64
	// TruthRefreshHits is the ground-truth count of refresh-delayed
	// misses.
	TruthRefreshHits int
}

// RunFig5 reproduces Fig. 5: LLC misses colliding with DRAM refresh stall
// for 2–3 µs and recur on the refresh period.
func RunFig5(o Options) (*Fig5Result, error) {
	o = o.withDefaults()
	dev := device.Olimex()
	misses := 3000
	if o.Quick {
		misses = 600
	}
	wl, err := workloads.RefreshKernel(misses, 160, 64, dev.Mem.LLC.SizeBytes, o.Seed)
	if err != nil {
		return nil, err
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	prof := analyze(run.Capture)
	res := &Fig5Result{Stalls: len(prof.Stalls), RefreshStalls: prof.RefreshStalls}
	var nNorm, nRef int
	var sumNorm, sumRef float64
	var lastRefresh float64
	var spacings []float64
	for _, s := range prof.Stalls {
		if s.Refresh {
			nRef++
			sumRef += s.DurationS
			if lastRefresh > 0 {
				spacings = append(spacings, s.StartS-lastRefresh)
			}
			lastRefresh = s.StartS
		} else {
			nNorm++
			sumNorm += s.DurationS
		}
	}
	if nNorm > 0 {
		res.AvgNormalNS = sumNorm / float64(nNorm) * 1e9
	}
	if nRef > 0 {
		res.AvgRefreshNS = sumRef / float64(nRef) * 1e9
	}
	if len(spacings) > 0 {
		res.MeanRefreshSpacingUS = dsp.Summarize(spacings).Mean * 1e6
	}
	for _, m := range run.Truth.Misses {
		if m.RefreshHit {
			res.TruthRefreshHits++
		}
	}
	return res, nil
}

// Render writes the Fig. 5 summary.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 5: memory-refresh-coincident stalls")
	fmt.Fprintf(w, "  detected stalls=%d, refresh-coincident=%d (ground truth refresh-delayed misses=%d)\n",
		r.Stalls, r.RefreshStalls, r.TruthRefreshHits)
	fmt.Fprintf(w, "  avg normal stall=%.0f ns, avg refresh stall=%.0f ns (paper: ~300 ns vs 2-3 us)\n",
		r.AvgNormalNS, r.AvgRefreshNS)
	fmt.Fprintf(w, "  mean spacing between refresh stalls=%.1f us (paper: at least every ~70 us)\n",
		r.MeanRefreshSpacingUS)
}

// Fig7Result is the microbenchmark whole-run signal study.
type Fig7Result struct {
	Whole *SignalFigure
	// GroupStalls is the number of dips detected inside one CM group
	// (paper Fig. 7b zooms into a CM=10 group showing its 10 misses).
	GroupStalls int
	CM          int
}

// RunFig7 reproduces Fig. 7: the full microbenchmark signal with its
// marker loops and a zoom into one group of CM consecutive misses.
func RunFig7(o Options) (*Fig7Result, error) {
	o = o.withDefaults()
	dev := device.Olimex()
	mp := workloads.DefaultMicroParams(1024, 10)
	if o.Quick {
		mp = workloads.DefaultMicroParams(256, 10)
	}
	run, slice, err := simulateMicro(dev, mp, emprof.CaptureOptions{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	prof := analyze(slice)
	f := &SignalFigure{
		Title:      "Fig. 7: EM signal of a full microbenchmark run (markers + memory-access section)",
		Series:     map[string][]float64{"whole-run": run.Capture.Samples},
		SampleRate: run.Capture.SampleRate,
	}
	res := &Fig7Result{Whole: f, CM: mp.CM}
	// Count dips inside one group: take stalls between the (CM)th and
	// (2·CM)th detected events and verify spacing; simpler: count
	// detections in the span of one group = CM consecutive stalls.
	if len(prof.Stalls) >= 2*mp.CM {
		start := prof.Stalls[mp.CM].StartS
		end := prof.Stalls[2*mp.CM-1].StartS
		res.GroupStalls = len(prof.StallsBetween(start, end)) + 1
	}
	f.Notes = append(f.Notes, fmt.Sprintf("detected %d stalls in the memory-access section (TM=%d)",
		len(prof.Stalls), mp.TM))
	return res, nil
}

// Render writes the Fig. 7 summary.
func (r *Fig7Result) Render(w io.Writer) {
	r.Whole.Render(w)
	fmt.Fprintf(w, "  zoom: one CM group contains %d individually visible dips (CM=%d)\n",
		r.GroupStalls, r.CM)
}

// Fig8Result compares the simulator power proxy and the synthesized EM
// signal for the same microbenchmark (paper Fig. 8).
type Fig8Result struct {
	Sim *SignalFigure
	Dev *SignalFigure
	// SimStalls/DevStalls are detected event counts in each signal's
	// memory-access section.
	SimStalls, DevStalls int
	TM                   int
}

// RunFig8 reproduces Fig. 8: the SESC power trace and the Olimex EM trace
// of the same microbenchmark carry the same EMPROF-relevant structure.
func RunFig8(o Options) (*Fig8Result, error) {
	o = o.withDefaults()
	mp := workloads.DefaultMicroParams(256, 10)
	res := &Fig8Result{TM: mp.TM}

	srun, sslice, err := simulateMicro(device.SESC(), mp, emprof.CaptureOptions{
		Seed: o.Seed, NoiseFree: true, BandwidthHz: 50e6,
	})
	if err != nil {
		return nil, err
	}
	res.Sim = &SignalFigure{
		Title:      "simulator power signal",
		Series:     map[string][]float64{"sesc": srun.Capture.Samples},
		SampleRate: srun.Capture.SampleRate,
	}
	res.SimStalls = len(analyze(sslice).Stalls)

	drun, dslice, err := simulateMicro(device.Olimex(), mp, emprof.CaptureOptions{Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	res.Dev = &SignalFigure{
		Title:      "Olimex EM signal",
		Series:     map[string][]float64{"olimex": drun.Capture.Samples},
		SampleRate: drun.Capture.SampleRate,
	}
	res.DevStalls = len(analyze(dslice).Stalls)
	return res, nil
}

// Render writes the Fig. 8 comparison.
func (r *Fig8Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8: simulator power signal vs device EM signal, same microbenchmark")
	r.Sim.Render(w)
	r.Dev.Render(w)
	fmt.Fprintf(w, "  detected in memory-access section: simulator=%d, device=%d (TM=%d)\n",
		r.SimStalls, r.DevStalls, r.TM)
}

// Fig10Result is the dual-probe (processor + memory) experiment.
type Fig10Result struct {
	// CoincidenceFraction is the fraction of detected CPU stalls whose
	// window contains elevated memory-probe activity.
	CoincidenceFraction float64
	Stalls              int
	// BaselineActivity and StallActivity compare the memory signal level
	// outside and inside stalls.
	BaselineActivity, StallActivity float64
	// CPUSampleRate and MemSampleRate are the two probes' output rates.
	// Time alignment of the probes assumes they are equal; the experiment
	// test asserts it (the memory probe once truncated its decimation
	// factor where the receiver rounds, skewing the rates apart).
	CPUSampleRate, MemSampleRate float64
}

// RunFig10 reproduces Fig. 10: CPU-signal dips coincide with bursts in
// the memory probe's signal.
func RunFig10(o Options) (*Fig10Result, error) {
	o = o.withDefaults()
	dev := device.Olimex()
	mp := workloads.DefaultMicroParams(120, 10)
	wl, err := workloads.Microbenchmark(mp)
	if err != nil {
		return nil, err
	}
	run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: o.Seed, MemoryProbe: true})
	if err != nil {
		return nil, err
	}
	slice, err := run.SliceRegion(workloads.RegionMisses)
	if err != nil {
		return nil, err
	}
	prof := analyze(slice)
	lo, _, _ := run.RegionWindow(workloads.RegionMisses)
	cps := run.Capture.CyclesPerSample()
	offset := int(float64(lo) / cps)

	mem := run.MemCapture.Samples
	inStall := make([]bool, len(mem))
	var stallSum, baseSum float64
	var stallN, baseN int
	coincide := 0
	for _, s := range prof.Stalls {
		hit := false
		for i := s.StartSample + offset; i < s.EndSample+offset && i < len(mem); i++ {
			if i >= 0 {
				inStall[i] = true
				stallSum += mem[i]
				stallN++
				if mem[i] > 0.05 {
					hit = true
				}
			}
		}
		if hit {
			coincide++
		}
	}
	for i, v := range mem {
		if !inStall[i] {
			baseSum += v
			baseN++
		}
	}
	res := &Fig10Result{
		Stalls:        len(prof.Stalls),
		CPUSampleRate: run.Capture.SampleRate,
		MemSampleRate: run.MemCapture.SampleRate,
	}
	if len(prof.Stalls) > 0 {
		res.CoincidenceFraction = float64(coincide) / float64(len(prof.Stalls))
	}
	if stallN > 0 {
		res.StallActivity = stallSum / float64(stallN)
	}
	if baseN > 0 {
		res.BaselineActivity = baseSum / float64(baseN)
	}
	return res, nil
}

// Render writes the Fig. 10 summary.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 10: simultaneous processor and memory probing")
	fmt.Fprintf(w, "  %d detected CPU stalls; %.1f%% coincide with memory-probe activity\n",
		r.Stalls, 100*r.CoincidenceFraction)
	fmt.Fprintf(w, "  memory-signal level inside stalls=%.3f vs outside=%.3f\n",
		r.StallActivity, r.BaselineActivity)
}

// Fig11Result is the mcf stall-latency histogram on the three devices.
type Fig11Result struct {
	Devices  []string
	Hists    []*dsp.Histogram
	TailPcts []float64 // fraction of stalls >= 300 cycles, per device
}

// RunFig11 reproduces Fig. 11: the histogram of detected stall latencies
// for mcf on each device; the phones show a thicker tail than the IoT
// board.
func RunFig11(o Options) (*Fig11Result, error) {
	o = o.withDefaults()
	res := &Fig11Result{}
	for _, d := range device.All() {
		wl, err := emprof.SPECWorkload("mcf", o.Scale)
		if err != nil {
			return nil, err
		}
		run, err := emprof.Simulate(d, wl, emprof.CaptureOptions{Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		prof := analyze(run.Capture)
		h := prof.LatencyHistogram(0, 1600, 32)
		res.Devices = append(res.Devices, d.Name)
		res.Hists = append(res.Hists, h)
		res.TailPcts = append(res.TailPcts, 100*h.TailFraction(300))
	}
	return res, nil
}

// Render writes the histograms.
func (r *Fig11Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 11: stall-latency histogram for mcf (bins of 50 cycles, 0-1600)")
	for i, d := range r.Devices {
		fmt.Fprintf(w, "  %-8s %s  tail(>=300cyc)=%.1f%% (n=%d)\n",
			d, sparkline(intsToFloats(r.Hists[i].Counts)), r.TailPcts[i], r.Hists[i].Total())
	}
}

// Fig12Row is one bandwidth point of the Fig. 12 sweep.
type Fig12Row struct {
	BandwidthMHz float64
	// Detected stalls and average stall latency (cycles) per device
	// (Alcatel, Olimex).
	Detected [2]int
	AvgLat   [2]float64
}

// Fig12Result is the measurement-bandwidth sweep.
type Fig12Result struct {
	Devices [2]string
	Rows    []Fig12Row
}

// RunFig12 reproduces Fig. 12: sweeping the measurement bandwidth over
// 20–160 MHz for mcf on the Alcatel phone and the Olimex board. At
// 20 MHz the Alcatel detects only very long stalls; statistics stabilise
// from 60 MHz (≈6% of the clock) upward.
func RunFig12(o Options) (*Fig12Result, error) {
	o = o.withDefaults()
	devs := [2]device.Device{device.Alcatel(), device.Olimex()}
	res := &Fig12Result{Devices: [2]string{devs[0].Name, devs[1].Name}}
	bws := []float64{20e6, 40e6, 60e6, 80e6, 160e6}
	if o.Quick {
		bws = []float64{20e6, 60e6}
	}
	for _, bw := range bws {
		row := Fig12Row{BandwidthMHz: bw / 1e6}
		for i, d := range devs {
			wl, err := emprof.SPECWorkload("mcf", o.Scale)
			if err != nil {
				return nil, err
			}
			run, err := emprof.Simulate(d, wl, emprof.CaptureOptions{Seed: o.Seed, BandwidthHz: bw})
			if err != nil {
				return nil, err
			}
			prof := analyze(run.Capture)
			row.Detected[i] = len(prof.Stalls)
			row.AvgLat[i] = prof.AvgStallCycles()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the sweep.
func (r *Fig12Result) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 12: effect of measurement bandwidth (mcf)")
	fmt.Fprintf(w, "  %-10s | %-10s stalls avg-lat | %-10s stalls avg-lat\n", "BW (MHz)", r.Devices[0], r.Devices[1])
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-10.0f | %-10s %6d %7.0f | %-10s %6d %7.0f\n",
			row.BandwidthMHz, "", row.Detected[0], row.AvgLat[0], "", row.Detected[1], row.AvgLat[1])
	}
}

// Fig13Result is the boot-profiling experiment.
type Fig13Result struct {
	// Series are misses per time bin for two boots.
	Run1, Run2 []int
	BinMS      float64
	// Correlation is the Pearson correlation between the two runs' series
	// (the coarse structure repeats boot to boot).
	Correlation float64
}

// RunFig13 reproduces Fig. 13: the LLC miss rate over time during two
// boots of the IoT device.
func RunFig13(o Options) (*Fig13Result, error) {
	o = o.withDefaults()
	dev := device.Olimex()
	scale := 4 * o.Scale
	if o.Quick {
		scale = o.Scale
	}
	series := make([][]int, 2)
	binS := 250e-6
	for i := 0; i < 2; i++ {
		wl := emprof.BootWorkload(scale, o.Seed+uint64(i)*31)
		run, err := emprof.Simulate(dev, wl, emprof.CaptureOptions{Seed: o.Seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		prof := analyze(run.Capture)
		if i == 0 {
			// ~60 bins across the boot regardless of its scaled length.
			binS = run.Capture.Duration() / 60
			if binS <= 0 {
				binS = 250e-6
			}
		}
		series[i] = prof.MissRateSeries(binS)
	}
	n := len(series[0])
	if len(series[1]) < n {
		n = len(series[1])
	}
	res := &Fig13Result{Run1: series[0], Run2: series[1], BinMS: binS * 1e3}
	res.Correlation = pearson(intsToFloats(series[0][:n]), intsToFloats(series[1][:n]))
	return res, nil
}

func pearson(a, b []float64) float64 {
	sa, sb := dsp.Summarize(a), dsp.Summarize(b)
	if sa.StdDev == 0 || sb.StdDev == 0 {
		return 0
	}
	num := 0.0
	for i := range a {
		num += (a[i] - sa.Mean) * (b[i] - sb.Mean)
	}
	return num / float64(len(a)-1) / (sa.StdDev * sb.StdDev)
}

// Render writes the boot series.
func (r *Fig13Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 13: boot-sequence LLC miss rate over time (bins of %.2f ms)\n", r.BinMS)
	fmt.Fprintf(w, "  boot 1: %s\n", sparkline(downsample(intsToFloats(r.Run1), 100)))
	fmt.Fprintf(w, "  boot 2: %s\n", sparkline(downsample(intsToFloats(r.Run2), 100)))
	fmt.Fprintf(w, "  run-to-run correlation of the miss-rate series: %.2f\n", r.Correlation)
}
