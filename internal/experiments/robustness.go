package experiments

import (
	"fmt"
	"io"

	"emprof"
	"emprof/internal/device"
	"emprof/internal/faults"
	"emprof/internal/workloads"
)

// Robustness is this repository's acquisition-robustness experiment,
// analogous in spirit to the paper's Fig. 12 bandwidth sweep: instead of
// degrading the receiver, it degrades the *acquisition* — random sample
// dropouts, ADC clipping, receiver gain steps, and RF bursts — and
// measures how the hardened profiler's miss count and reported signal
// quality respond. The engineered microbenchmark gives exact ground
// truth, so the miss-count error is exact too.
type Robustness struct {
	Device     string
	TrueMisses int
	// Baseline is the detected count on the clean capture.
	Baseline int
	Rows     []RobustnessRow
}

// RobustnessRow is one impairment level of the sweep.
type RobustnessRow struct {
	Label    string
	Detected int
	// ErrPct is the signed miss-count error vs the engineered truth.
	ErrPct float64
	// UsablePct is the profiler's reported usable-signal percentage.
	UsablePct float64
	Resyncs   int
	// MeanConf is the mean per-stall confidence.
	MeanConf float64
}

// RunRobustness sweeps impairment levels over one microbenchmark capture.
// The capture is simulated once; every row injects into a fresh copy, so
// rows differ only in the impairment applied.
func RunRobustness(o Options) (*Robustness, error) {
	o = o.withDefaults()
	// One simulation dominates the cost, so Quick changes nothing; TM=256
	// keeps the clean-capture detection exact while giving the dropout
	// draws a statistically meaningful number of gaps.
	tm := 256
	dev := device.Olimex()
	mp := workloads.DefaultMicroParams(tm, 8)
	_, slice, err := simulateMicro(dev, mp, emprof.CaptureOptions{Seed: o.Seed})
	if err != nil {
		return nil, err
	}

	clipLevel := 0.0
	for _, x := range slice.Samples {
		if x > clipLevel {
			clipLevel = x
		}
	}
	clipLevel *= 0.85

	stepsPerS := 3 / slice.Duration() // ~3 steps across the capture

	specs := []struct {
		label string
		spec  faults.Spec
	}{
		// Short, frequent gaps (mean 16 samples) rather than the injector's
		// default long gaps: at these rates the capture then sees enough
		// independent dropout events for the error trend to be meaningful.
		{"clean", faults.Spec{}},
		{"dropout 0.2%", faults.Spec{DropoutRate: 0.002, DropoutMeanLen: 16}},
		{"dropout 0.5%", faults.Spec{DropoutRate: 0.005, DropoutMeanLen: 16}},
		{"dropout 1.0%", faults.Spec{DropoutRate: 0.01, DropoutMeanLen: 16}},
		{"dropout 2.0%", faults.Spec{DropoutRate: 0.02, DropoutMeanLen: 16}},
		{fmt.Sprintf("clip @ %.3g", clipLevel), faults.Spec{ClipLevel: clipLevel}},
		{"gain steps ~3", faults.Spec{GainStepsPerS: stepsPerS}},
		{"bursts 0.5%", faults.Spec{BurstRate: 0.005}},
	}

	res := &Robustness{Device: dev.Name, TrueMisses: tm}
	for i, s := range specs {
		s.spec.Seed = o.Seed + uint64(i)*977
		impaired, _, err := faults.Apply(slice, s.spec)
		if err != nil {
			return nil, err
		}
		prof := analyze(impaired)
		if i == 0 {
			res.Baseline = prof.Misses
		}
		res.Rows = append(res.Rows, RobustnessRow{
			Label:     s.label,
			Detected:  prof.Misses,
			ErrPct:    100 * float64(prof.Misses-tm) / float64(tm),
			UsablePct: 100 * prof.Quality.UsableFraction(),
			Resyncs:   prof.Quality.Resyncs,
			MeanConf:  prof.MeanConfidence(),
		})
	}
	return res, nil
}

// Render writes the sweep as a table.
func (r *Robustness) Render(w io.Writer) {
	fmt.Fprintf(w, "miss-count robustness vs acquisition impairments (%s, engineered misses: %d):\n",
		r.Device, r.TrueMisses)
	fmt.Fprintf(w, "  %-16s %9s %8s %8s %8s %6s\n",
		"impairment", "detected", "err", "usable", "resyncs", "conf")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-16s %9d %7.1f%% %7.2f%% %8d %6.2f\n",
			row.Label, row.Detected, row.ErrPct, row.UsablePct, row.Resyncs, row.MeanConf)
	}
	fmt.Fprintln(w, "  the quality monitor suppresses phantom stalls across gaps and gain")
	fmt.Fprintln(w, "  steps; residual error tracks the fraction of signal actually lost.")
}
