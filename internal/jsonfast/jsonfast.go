// Package jsonfast holds the tiny append/parse primitives shared by the
// hand-rolled JSON codecs on the ingest hot path (core.StallList,
// core.Profile, service.Snapshot). Every appender replicates
// encoding/json's output byte for byte — same float formatting, same
// HTML-escaped strings — so handwritten and reflection-encoded values
// are indistinguishable on the wire; the parsers accept exactly the
// compact shape those appenders emit and report !ok for anything else,
// letting callers fall back to the stdlib decoder.
package jsonfast

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// AppendFloat appends f formatted exactly as encoding/json formats a
// float64: shortest round-trip decimal, switching to scientific notation
// with a minimal exponent outside [1e-6, 1e21).
func AppendFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("jsonfast: unsupported value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim the leading zero of a two-digit exponent ("e-09" → "e-9"),
		// as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// AppendString appends s as a JSON string exactly as encoding/json does
// with its default HTML escaping. Strings of plain printable ASCII take
// the fast path; anything needing escapes (control characters, quotes,
// backslashes, <, >, &, non-ASCII) routes through the stdlib encoder.
func AppendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			// json.Marshal on a string cannot fail.
			enc, _ := json.Marshal(s)
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// Eat matches the literal lit at data[i], returning the index past it.
func Eat(data []byte, i int, lit string) (int, bool) {
	if i+len(lit) > len(data) || string(data[i:i+len(lit)]) != lit {
		return i, false
	}
	return i + len(lit), true
}

// NumEnd scans the span of JSON number characters starting at i.
func NumEnd(data []byte, i int) int {
	for i < len(data) {
		switch c := data[i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			i++
		default:
			return i
		}
	}
	return i
}

// Int parses a decimal integer at data[i]. Plain runs of up to 18
// digits are decoded in place without the string conversion
// strconv.ParseInt needs; longer or signed-edge inputs take the strconv
// path.
func Int(data []byte, i int) (int64, int, bool) {
	j := i
	neg := false
	if j < len(data) && data[j] == '-' {
		neg = true
		j++
	}
	start := j
	var v int64
	for j < len(data) && j-start < 18 {
		c := data[j]
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int64(c-'0')
		j++
	}
	if j > start && (j == len(data) || !isNumChar(data[j])) {
		if neg {
			v = -v
		}
		return v, j, true
	}
	// 19+ digits (possible overflow) or a non-integer tail: let strconv
	// decide validity.
	j = NumEnd(data, i)
	if j == i {
		return 0, i, false
	}
	v, err := strconv.ParseInt(string(data[i:j]), 10, 64)
	if err != nil {
		return 0, i, false
	}
	return v, j, true
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
}

// Float parses a JSON number at data[i].
func Float(data []byte, i int) (float64, int, bool) {
	j := NumEnd(data, i)
	if j == i {
		return 0, i, false
	}
	v, err := strconv.ParseFloat(string(data[i:j]), 64)
	if err != nil {
		return 0, i, false
	}
	return v, j, true
}

// Bool parses a JSON boolean at data[i].
func Bool(data []byte, i int) (bool, int, bool) {
	if i+4 <= len(data) && string(data[i:i+4]) == "true" {
		return true, i + 4, true
	}
	if i+5 <= len(data) && string(data[i:i+5]) == "false" {
		return false, i + 5, true
	}
	return false, i, false
}

// String parses a JSON string at data[i]. Only escape-free printable
// ASCII takes the fast path; escaped or non-ASCII content reports !ok so
// the caller falls back to the stdlib decoder.
func String(data []byte, i int) (string, int, bool) {
	if i >= len(data) || data[i] != '"' {
		return "", i, false
	}
	for j := i + 1; j < len(data); j++ {
		c := data[j]
		if c == '"' {
			return string(data[i+1 : j]), j + 1, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return "", i, false
		}
	}
	return "", i, false
}

// TrimSpace strips leading/trailing JSON whitespace, so codecs accept
// the trailing newline http encoders append without losing the fast
// path.
func TrimSpace(data []byte) []byte {
	i, j := 0, len(data)
	for i < j && isSpace(data[i]) {
		i++
	}
	for j > i && isSpace(data[j-1]) {
		j--
	}
	return data[i:j]
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}
