package service

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"emprof/internal/core"
	"emprof/internal/sim"
)

func randomSnapshot(rng *sim.RNG) *Snapshot {
	ids := []string{"s1", "bench-0042", "", "weird id", `esc"ape`, "emoji-✓", "a<b&c>d", "tab\tchar"}
	s := &Snapshot{
		ID:              ids[rng.Uint64()%uint64(len(ids))],
		State:           "active",
		SamplesIngested: int64(rng.Uint64() % (1 << 40)),
		SamplesDecided:  int64(rng.Uint64() % (1 << 40)),
		BytesIngested:   int64(rng.Uint64() % (1 << 50)),
		MeanConfidence:  float64(rng.Uint64()%1000) / 1000,
	}
	if rng.Uint64()%2 == 0 {
		s.Device = ids[rng.Uint64()%uint64(len(ids))]
	}
	if rng.Uint64()%2 == 0 {
		s.State = "finalized"
	}
	for i := range s.ConfidenceHist {
		s.ConfidenceHist[i] = int(rng.Uint64() % 5000)
	}
	if rng.Uint64()%4 != 0 {
		prof := &core.Profile{
			Stalls:      core.StallList{},
			SampleRate:  4e7,
			ClockHz:     1e9,
			ExecCycles:  float64(rng.Uint64() % (1 << 30)),
			StallCycles: 1.0 / 3.0,
			Quality:     core.Quality{Samples: int64(rng.Uint64() % (1 << 32))},
		}
		for k := uint64(0); k < rng.Uint64()%4; k++ {
			prof.Stalls = append(prof.Stalls, core.Stall{
				StartSample: int(rng.Uint64() % 100000),
				EndSample:   int(rng.Uint64() % 100000),
				StartS:      float64(rng.Uint64()%100000) / 4e7,
				DurationS:   2.5e-7,
				Cycles:      250,
				Depth:       0.77,
				Refresh:     rng.Uint64()%2 == 0,
				Confidence:  0.9,
			})
		}
		if rng.Uint64()%5 == 0 {
			prof.Stalls = nil
		}
		s.Profile = prof
	}
	return s
}

// rawSnapshot mirrors Snapshot's tags with a reflection-only profile
// payload, so the stdlib produces reference bytes with no custom codec
// in reach (Stalls still routes through StallList, which is itself
// pinned byte-identical in core's tests).
type rawSnapshot struct {
	ID              string        `json:"id"`
	Device          string        `json:"device,omitempty"`
	State           string        `json:"state"`
	SamplesIngested int64         `json:"samples_ingested"`
	SamplesDecided  int64         `json:"samples_decided"`
	BytesIngested   int64         `json:"bytes_ingested"`
	Profile         *core.Profile `json:"profile"`
	MeanConfidence  float64       `json:"mean_confidence"`
	ConfidenceHist  [10]int       `json:"confidence_hist"`
}

// TestSnapshotAppendJSONMatchesStdlib pins the fast encoder's
// wire-compatibility: byte-identical to encoding/json for any snapshot,
// including omitted devices, nil profiles, and strings that need the
// stdlib's HTML escaping.
func TestSnapshotAppendJSONMatchesStdlib(t *testing.T) {
	rng := sim.NewRNG(4242)
	for i := 0; i < 300; i++ {
		s := randomSnapshot(rng)
		got, err := s.AppendJSON(nil)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		want, err := json.Marshal((*rawSnapshot)(s))
		if err != nil {
			t.Fatalf("snapshot %d: stdlib: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("snapshot %d: wire bytes differ\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestSnapshotUnmarshalRoundTrip pins decode correctness over both
// paths: the compact wire shape round-trips exactly (with and without
// the response framing newline), and whitespace or reordered fields
// fall back to the stdlib decoder.
func TestSnapshotUnmarshalRoundTrip(t *testing.T) {
	rng := sim.NewRNG(77)
	for i := 0; i < 300; i++ {
		s := randomSnapshot(rng)
		blob, err := s.AppendJSON(nil)
		if err != nil {
			t.Fatal(err)
		}
		var back Snapshot
		if err := back.UnmarshalJSON(append(blob, '\n')); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if !snapshotsEqual(s, &back) {
			t.Fatalf("snapshot %d: round trip differs\nin:  %+v\nout: %+v", i, s, &back)
		}
	}

	in := `{"state":"active","id":"x","samples_ingested":1,"samples_decided":2,` +
		`"bytes_ingested":3,"profile":null,"mean_confidence":0.5,` +
		`"confidence_hist":[0,1,2,3,4,5,6,7,8,9],"future_field":true}`
	var got Snapshot
	if err := json.Unmarshal([]byte(in), &got); err != nil {
		t.Fatalf("fallback: %v", err)
	}
	want := Snapshot{ID: "x", State: "active", SamplesIngested: 1, SamplesDecided: 2,
		BytesIngested: 3, MeanConfidence: 0.5,
		ConfidenceHist: [10]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback: got %+v want %+v", got, want)
	}
}

func snapshotsEqual(a, b *Snapshot) bool {
	if a.ID != b.ID || a.Device != b.Device || a.State != b.State ||
		a.SamplesIngested != b.SamplesIngested || a.SamplesDecided != b.SamplesDecided ||
		a.BytesIngested != b.BytesIngested || a.ConfidenceHist != b.ConfidenceHist ||
		math.Float64bits(a.MeanConfidence) != math.Float64bits(b.MeanConfidence) {
		return false
	}
	if (a.Profile == nil) != (b.Profile == nil) {
		return false
	}
	if a.Profile == nil {
		return true
	}
	ab, err1 := a.Profile.AppendJSON(nil)
	bb, err2 := b.Profile.AppendJSON(nil)
	return err1 == nil && err2 == nil && bytes.Equal(ab, bb)
}
