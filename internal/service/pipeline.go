package service

import (
	"fmt"
	"sync"

	"emprof/internal/core"
)

// This file is the staged half of the session: ingest decodes wire bytes
// synchronously (service.go), but the samples it produces are analysed
// asynchronously by a per-session worker goroutine, joined to the decode
// stage by a bounded block queue. Sealed windows leave the analysis
// stage through a second bounded queue to a store worker.
//
//	HTTP body ──decode (s.mu)──▶ queue ──worker (s.anMu)──▶ analyzer
//	                                │                         │ windower
//	             backpressure ◀─────┘                         │ attributor
//	                                                          ▼
//	                                winq ──worker (s.winMu)──▶ window store
//
// The queues are the backpressure contract: when analysis falls behind,
// enqueueBlock blocks, which stops the ingest body read, which fills the
// client's TCP window — load sheds at the transport instead of growing
// unbounded memory. Likewise when the store falls behind (a slow disk),
// winq fills, the analysis worker blocks on the seal, the block queue
// fills, and ingest stalls — bounded memory end to end. Block buffers
// circulate through the free channel (a fixed population of
// QueueBlocks+1), so the steady-state ingest path stays allocation-free.
//
// Result-serving paths call drainLocked first: it waits until the worker
// has analysed everything ingest enqueued, which is what keeps the
// pipelined service observably identical to the old synchronous one —
// a client that pushed samples and then asks for the profile sees them.
// Paths that then read the window store cross the second barrier,
// drainWindowsLocked, for the same read-your-writes guarantee.

// storeQueueWindows bounds the seal→store queue. Windows are sealed at
// the window stride — orders of magnitude slower than sample blocks —
// so a short queue absorbs disk latency jitter without meaningfully
// delaying the drain barriers.
const storeQueueWindows = 16

// startPipeline wires and launches a session's analysis stage. Called
// before the session is published in the registry.
func (r *Registry) startPipeline(s *session) {
	depth := r.cfg.QueueBlocks
	s.queue = make(chan []float64, depth)
	// One more block than queue slots: ingest can hold a block while the
	// queue is full, and the worker's return never blocks.
	s.free = make(chan []float64, depth+1)
	for i := 0; i < depth+1; i++ {
		s.free <- nil
	}
	s.cond = sync.NewCond(&s.anMu)
	s.workerDone = make(chan struct{})
	s.emit = s.enqueueBlock
	if s.win != nil {
		s.win.OnWindow = r.windowSink(s)
		if r.store != nil {
			s.winq = make(chan *core.ProfileWindow, storeQueueWindows)
			s.winqDone = make(chan struct{})
			s.winCond = sync.NewCond(&s.winMu)
			go s.storeWorker(r)
		}
	}
	go s.analysisWorker()
}

// enqueueBlock is the decode→analysis hand-off: it copies the decoder's
// scratch (the decoder reuses that buffer for the next chunk) into a
// recycled block and enqueues it. Runs under s.mu; blocks when the
// analysis stage is behind — that is the backpressure.
func (s *session) enqueueBlock(xs []float64) {
	if len(xs) == 0 {
		return
	}
	blk := <-s.free
	blk = append(blk[:0], xs...)
	s.queue <- blk
	s.enqueued += int64(len(blk))
}

// analysisWorker is the session's analysis stage: it owns the analyzer
// (and windower and attributor) between drains, under anMu. It never
// takes s.mu — ingest holds s.mu while blocking on a full queue, so the
// worker taking it would deadlock the session.
func (s *session) analysisWorker() {
	defer close(s.workerDone)
	for blk := range s.queue {
		s.anMu.Lock()
		s.analyzeBlock(blk)
		s.analyzed += int64(len(blk))
		s.anMu.Unlock()
		s.cond.Broadcast()
		s.free <- blk[:0]
	}
}

// analyzeBlock pushes one block through the analysis chain, converting a
// panic into a sticky pipeline error instead of killing the daemon: the
// worker keeps draining (so ingest never wedges on a full queue) but
// analyses nothing further, and the next ingest reports the session
// poisoned. Runs with anMu held.
func (s *session) analyzeBlock(blk []float64) {
	defer func() {
		if p := recover(); p != nil && s.workerErr == nil {
			s.workerErr = fmt.Errorf("service: analysis stage failed: %v", p)
		}
	}()
	if s.workerErr != nil {
		return
	}
	s.an.PushBlock(blk)
	if s.attr != nil {
		s.attr.Push(blk)
	}
	if s.win != nil {
		s.win.Advance(s.an.Frontier())
	}
}

// drainLocked blocks until the analysis stage has consumed everything
// the decode stage enqueued — the read-your-writes barrier every
// result-serving path crosses. Requires s.mu (so enqueued cannot move);
// the worker only needs anMu, which Wait releases, so it progresses.
func (s *session) drainLocked() {
	if s.queue == nil {
		return
	}
	target := s.enqueued
	s.anMu.Lock()
	for s.analyzed < target {
		s.cond.Wait()
	}
	s.anMu.Unlock()
}

// pipelineErr reports the sticky analysis-stage error, if any.
func (s *session) pipelineErr() error {
	if s.queue == nil {
		return nil
	}
	s.anMu.Lock()
	defer s.anMu.Unlock()
	return s.workerErr
}

// stopPipelineLocked drains the queue, stops the worker, and waits for
// it to exit; afterwards the caller owns the analyzer. Requires s.mu;
// idempotent.
func (s *session) stopPipelineLocked() {
	if s.queue == nil || s.queueClosed {
		return
	}
	s.drainLocked()
	s.queueClosed = true
	close(s.queue)
	<-s.workerDone
}

// windowSink decorates each sealed window and hands it to the store
// stage. It runs where the windower seals: on the analysis worker
// (Advance) or on the finalize path after the worker has stopped (Flush)
// — in both cases the analyzer is quiescent at the seal point, so the
// cumulative quality read is consistent. The seal point counts the
// window before enqueueing it, so a drain that starts after a seal
// always waits for that window.
func (r *Registry) windowSink(s *session) func(*core.ProfileWindow) {
	return func(pw *core.ProfileWindow) {
		pw.Quality = s.an.Quality()
		if s.attr != nil {
			pw.Regions = s.attr.Summarize(pw.Stalls)
			// Decisions below the next window's start can never be asked
			// for again.
			s.attr.Drop(s.win.NextStart())
		}
		if s.winq == nil {
			return
		}
		s.winMu.Lock()
		s.winSealed++
		s.winMu.Unlock()
		s.winq <- pw
	}
}

// storeWorker is the session's store stage: it persists sealed windows
// so encoding and disk writes never run on the analysis worker. It takes
// only winMu — never mu or anMu, which both sides hold while blocking on
// a full winq.
func (s *session) storeWorker(r *Registry) {
	defer close(s.winqDone)
	var dropLogged bool
	for pw := range s.winq {
		if err := r.store.Append(s.id, pw); err != nil {
			// The window is gone — profile history silently shrinks — so
			// make the loss observable: count every drop, and log the
			// first per session (a sick disk fails every append; one line
			// names the cause without flooding at window rate).
			r.metrics.WindowsDropped.Add(1)
			if !dropLogged {
				dropLogged = true
				r.cfg.Logf("service: session %s: window %d dropped, store append failed: %v", s.id, pw.Index, err)
			}
		} else {
			r.metrics.WindowsSealed.Add(1)
		}
		s.winMu.Lock()
		s.winStored++
		s.winMu.Unlock()
		s.winCond.Broadcast()
	}
}

// drainWindowsLocked blocks until the store stage has persisted every
// window sealed so far — the second read-your-writes barrier, crossed by
// paths that query the window store after drainLocked. Requires s.mu and
// a prior drainLocked (together they guarantee no seal is still in
// flight); the store worker only needs winMu, so it progresses.
func (s *session) drainWindowsLocked() {
	if s.winq == nil {
		return
	}
	s.winMu.Lock()
	for s.winStored < s.winSealed {
		s.winCond.Wait()
	}
	s.winMu.Unlock()
}

// stopStoreStageLocked closes the store queue and waits for the worker
// to persist everything still on it. Requires s.mu and a stopped
// analysis stage (nothing may seal after the close); idempotent.
func (s *session) stopStoreStageLocked() {
	if s.winq == nil || s.winqClosed {
		return
	}
	s.winqClosed = true
	close(s.winq)
	<-s.winqDone
}
