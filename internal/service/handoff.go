package service

import (
	"fmt"
	"time"

	"emprof/internal/core"
	"emprof/internal/em"
)

// This file implements the shard side of fleet session hand-off. The
// protocol, driven by the router (internal/fleet), is:
//
//	1. Pin(id) on the current owner — ingest/snapshot/finalize start
//	   answering 503 (ErrPinned), which clients retry; no sample can
//	   land while the state is in flight.
//	2. Export(id) on the owner — the complete session state (analyzer,
//	   wire decoder, metadata) as one JSON document.
//	3. Import(state) on the new owner — the session resumes replay-free;
//	   pushing the remaining samples yields a profile bit-identical to
//	   one shard having seen the whole stream.
//	4. Forget(id) on the old owner — the moved session is dropped
//	   without finalizing. On any failure the router calls Unpin(id)
//	   instead and the session keeps serving where it was.
//
// Per-session decision-trace rings deliberately do not travel: they are
// debugging state, unbounded-ish, and the new owner starts a fresh ring.

// SessionState is the hand-off wire format: everything a shard needs to
// resume a live session another shard started.
type SessionState struct {
	ID         string    `json:"id"`
	Device     string    `json:"device,omitempty"`
	SampleRate float64   `json:"sample_rate"`
	ClockHz    float64   `json:"clock_hz"`
	Created    time.Time `json:"created_at"`
	Bytes      int64     `json:"bytes_ingested"`

	Stream *core.StreamState `json:"stream"`
	// Decoder is nil when the session never ingested (no wire format
	// chosen yet).
	Decoder *em.DecoderState `json:"decoder,omitempty"`
	// Windows is the rolling-window emitter's position, so the new owner
	// continues the window sequence seamlessly (same indexes, no gap, no
	// overlap); nil when the exporting shard ran without windowing.
	// Already-sealed windows stay in the exporting shard's store — the
	// fleet router's profiles fan-in reassembles the full sequence.
	// Attribution state deliberately does not travel (like trace rings):
	// the streaming attributor's frame alignment cannot be rebuilt
	// mid-stream, so post-hand-off windows simply carry no Regions.
	Windows *core.WindowerState `json:"windows,omitempty"`
}

// Pin freezes a session for hand-off: until Unpin (or Forget), ingest,
// snapshot and finalize answer ErrPinned. Pinning is idempotent.
func (r *Registry) Pin(id string) error {
	s, err := r.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return ErrNotFound
	}
	s.pinned = true
	return nil
}

// Unpin lifts a hand-off pin after a failed move; the session resumes
// serving on this shard.
func (r *Registry) Unpin(id string) error {
	s, err := r.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pinned = false
	return nil
}

// Export snapshots a pinned session's complete state. The session must
// be pinned first — exporting a live session would race its ingest — and
// stays in the registry (still pinned) until Forget or Unpin.
func (r *Registry) Export(id string) (*SessionState, error) {
	s, err := r.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.pinned {
		return nil, fmt.Errorf("%w: session %q not pinned", ErrConflict, id)
	}
	if s.finalized {
		return nil, ErrNotFound
	}
	if s.poison != nil {
		return nil, fmt.Errorf("%w: %v", ErrPoisoned, s.poison)
	}
	// Pinning froze ingest; draining parks the analysis stage — the
	// exported analyzer and windower are then a consistent pair. The
	// store drain matters too: once the importer owns the session, a
	// fleet fan-in query expects every window sealed here to be readable
	// from this shard's store.
	s.drainLocked()
	s.drainWindowsLocked()
	st := &SessionState{
		ID:         s.id,
		Device:     s.device,
		SampleRate: s.sampleRate,
		ClockHz:    s.clockHz,
		Created:    s.created,
		Bytes:      s.bytes,
		Stream:     s.an.ExportState(),
	}
	if s.win != nil {
		st.Windows = s.win.ExportState()
	}
	if s.dec != nil {
		ds, err := s.dec.State()
		if err != nil {
			return nil, err
		}
		st.Decoder = &ds
	}
	r.metrics.SessionsExported.Add(1)
	return st, nil
}

// Import installs a session exported by another shard. The imported
// session is live (not pinned) immediately; its analyzer resumes exactly
// where the exporting shard stopped. ErrConflict if the ID already
// exists here, ErrFull under the session cap.
func (r *Registry) Import(st *SessionState) error {
	if st == nil || st.Stream == nil {
		return fmt.Errorf("service: import without stream state")
	}
	if err := validateSessionID(st.ID); err != nil {
		return err
	}
	if st.ID == "" {
		return fmt.Errorf("service: import without session ID")
	}
	if st.Bytes < 0 {
		return fmt.Errorf("service: import with negative byte count")
	}
	an, err := core.ResumeStreamAnalyzer(st.Stream)
	if err != nil {
		return err
	}
	// Resume the window sequence where the exporter stopped; an exporter
	// that ran without windowing leaves this shard's windowing off for
	// the session too (a fresh windower would re-emit indexes from 0 and
	// corrupt the fleet-merged sequence).
	var win *core.Windower
	if st.Windows != nil {
		win, err = core.ResumeWindower(st.Windows, st.SampleRate, st.ClockHz)
		if err != nil {
			return err
		}
	}
	r.attachObservers(an, win)
	var dec *em.Decoder
	if st.Decoder != nil {
		dec, err = em.RestoreDecoder(*st.Decoder)
		if err != nil {
			return err
		}
		if dec.Emitted() != an.Pushed() {
			return fmt.Errorf("service: import decoder at sample %d but analyzer at %d", dec.Emitted(), an.Pushed())
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.metrics.SessionsRejected.Add(1)
		return ErrFull
	}
	if _, ok := r.sessions[st.ID]; ok {
		return fmt.Errorf("%w: session %q already exists", ErrConflict, st.ID)
	}
	now := r.cfg.Now()
	created := st.Created
	if created.IsZero() {
		created = now
	}
	s := &session{
		id:         st.ID,
		device:     st.Device,
		sampleRate: st.SampleRate,
		clockHz:    st.ClockHz,
		created:    created,
		lastActive: now,
		an:         an,
		dec:        dec,
		bytes:      st.Bytes,
		ring:       r.newRing(an),
		win:        win,
	}
	r.startPipeline(s)
	r.sessions[s.id] = s
	r.metrics.SessionsImported.Add(1)
	return nil
}

// Forget drops a session without finalizing it — the completion of a
// hand-off, once the new owner has acknowledged the import. The profile
// lives on at the importing shard.
func (r *Registry) Forget(id string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	s, ok := r.sessions[id]
	if !ok {
		r.mu.Unlock()
		return ErrNotFound
	}
	delete(r.sessions, id)
	r.mu.Unlock()
	// The session is gone from the registry but its workers still run;
	// stop them without finalizing (the profile lives on at the importer).
	s.mu.Lock()
	s.stopPipelineLocked()
	s.stopStoreStageLocked()
	s.mu.Unlock()
	return nil
}
