package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"emprof/internal/attrib"
	"emprof/internal/core"
	"emprof/internal/em"
	"emprof/internal/profstore"
	"emprof/internal/sim"
)

func getProfiles(t *testing.T, ts *httptest.Server, id, query string) (*ProfilesResponse, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/profiles" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var pr ProfilesResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return &pr, resp.StatusCode
}

// TestWindowsEndpointMergeMatchesFinalize is the continuous-profiling
// e2e: a session streamed in chunks with windowing on serves its rolling
// windows at the profiles route, live and after finalize ("detached"),
// and merging the full window sequence reproduces the one-shot profile
// bit for bit.
func TestWindowsEndpointMergeMatchesFinalize(t *testing.T) {
	capture := testSignal(30000)
	want := core.MustNewAnalyzer(core.DefaultConfig()).Profile(capture)

	srv, ts := newTestServer(t, Config{WindowS: 1e-4})
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	enc := rawBytes(capture.Samples)
	for off := 0; off < len(enc); off += 40000 {
		end := off + 40000
		if end > len(enc) {
			end = len(enc)
		}
		if code, msg := postSamples(t, ts, id, enc[off:end], ContentTypeRaw); code != http.StatusOK {
			t.Fatalf("ingest: HTTP %d: %s", code, msg)
		}
	}

	// Live query: sealed windows are visible mid-session, tiling from 0.
	live, code := getProfiles(t, ts, id, "")
	if code != http.StatusOK {
		t.Fatalf("live profiles: HTTP %d", code)
	}
	if live.State != "active" || len(live.Windows) == 0 {
		t.Fatalf("live response: state %q, %d windows", live.State, len(live.Windows))
	}
	if live.WindowS != 1e-4 || live.SampleRate != capture.SampleRate {
		t.Fatalf("geometry echo wrong: %+v", live)
	}
	if live.Windows[0].StartSample != 0 {
		t.Fatalf("first window starts at %d", live.Windows[0].StartSample)
	}

	// Time-range query returns exactly the overlapping windows.
	ranged, _ := getProfiles(t, ts, id, "?from=0.0002&to=0.0004")
	for _, w := range ranged.Windows {
		if w.EndS <= 0.0002 || w.StartS >= 0.0004 {
			t.Fatalf("window [%g, %g) outside queried range", w.StartS, w.EndS)
		}
	}
	if len(ranged.Windows) >= len(live.Windows) {
		t.Fatalf("range query returned %d of %d windows", len(ranged.Windows), len(live.Windows))
	}

	// Finalize; the session leaves the registry but its windows remain
	// queryable from the store.
	got, err := srv.Registry().Finalize(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("windowed session's finalize profile differs from batch Analyze")
	}
	det, code := getProfiles(t, ts, id, "")
	if code != http.StatusOK {
		t.Fatalf("detached profiles: HTTP %d", code)
	}
	if det.State != "detached" {
		t.Fatalf("post-finalize state %q", det.State)
	}
	last := det.Windows[len(det.Windows)-1]
	if !last.Final || last.EndSample != int64(len(capture.Samples)) {
		t.Fatalf("final window %+v does not close the %d-sample stream", last, len(capture.Samples))
	}
	merged, err := core.MergeWindows(det.Windows, capture.SampleRate, capture.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatal("merged windows differ from batch Analyze")
	}
}

// TestProfilesPagination pages through a window sequence with after=.
func TestProfilesPagination(t *testing.T) {
	capture := testSignal(30000)
	_, ts := newTestServer(t, Config{WindowS: 2e-5})
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	if code, msg := postSamples(t, ts, id, rawBytes(capture.Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, msg)
	}
	all, _ := getProfiles(t, ts, id, "")
	if len(all.Windows) < 10 {
		t.Fatalf("only %d windows sealed", len(all.Windows))
	}
	var paged []core.ProfileWindow
	after := int64(-1)
	for {
		query := "?limit=7"
		if after >= 0 {
			query += "&after=" + strconv.FormatInt(after, 10)
		}
		page, _ := getProfiles(t, ts, id, query)
		paged = append(paged, page.Windows...)
		if !page.More {
			break
		}
		after = page.NextAfter
	}
	if !reflect.DeepEqual(paged, all.Windows) {
		t.Fatalf("pagination drops or reorders: %d vs %d windows", len(paged), len(all.Windows))
	}
	// last= tails the sequence.
	tail, _ := getProfiles(t, ts, id, "?last=3")
	if len(tail.Windows) != 3 || tail.Windows[2].Index != all.Windows[len(all.Windows)-1].Index {
		t.Fatalf("last=3 returned %d windows ending at %d", len(tail.Windows), tail.Windows[len(tail.Windows)-1].Index)
	}

	// A page ending at window 0 (limit=1, no cursor) answers NextAfter 0,
	// and resubmitting after=0 must advance to window 1 — index 0 is a
	// real cursor value, not "start at the front".
	page0, _ := getProfiles(t, ts, id, "?limit=1")
	if len(page0.Windows) != 1 || page0.Windows[0].Index != 0 || !page0.More || page0.NextAfter != 0 {
		t.Fatalf("limit=1 first page %+v, want window 0 with More and NextAfter 0", page0)
	}
	page1, _ := getProfiles(t, ts, id, "?limit=1&after=0")
	if len(page1.Windows) != 1 || page1.Windows[0].Index != 1 {
		t.Fatalf("after=0 returned %+v, want window 1", page1.Windows)
	}
}

// TestStoreAppendFailureObservable pins the store stage's failure
// accounting: when Append starts failing, dropped windows are counted
// (emprofd_windows_dropped_total) and the first loss is logged — not
// silently folded into a successful drain.
func TestStoreAppendFailureObservable(t *testing.T) {
	store, err := profstore.Open(profstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	srv, ts := newTestServer(t, Config{WindowS: 2e-5, Store: store, Logf: func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}})
	capture := testSignal(30000)
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	enc := rawBytes(capture.Samples)
	if code, msg := postSamples(t, ts, id, enc[:len(enc)/2], ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, msg)
	}
	before, _ := getProfiles(t, ts, id, "")
	if len(before.Windows) == 0 {
		t.Fatal("no windows sealed before the store failure")
	}
	sealed := srv.Registry().Metrics().WindowsSealed.Load()

	// Every Append now fails; the second half's windows are lost.
	store.Close()
	if code, msg := postSamples(t, ts, id, enc[len(enc)/2:], ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest after store close: HTTP %d: %s", code, msg)
	}
	// The profiles route drains both pipeline barriers before touching
	// the store, so after it returns (however unhappily) every sealed
	// window has been through the store worker.
	getProfiles(t, ts, id, "")

	m := srv.Registry().Metrics()
	if m.WindowsDropped.Load() == 0 {
		t.Fatal("store append failures left WindowsDropped at 0")
	}
	if m.WindowsSealed.Load() != sealed {
		t.Fatalf("WindowsSealed advanced from %d to %d across a dead store", sealed, m.WindowsSealed.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || !strings.Contains(lines[0], id) {
		t.Fatalf("store failure logged %q, want one line naming session %s", lines, id)
	}
}

// TestProfilesErrorContract pins the API redesign's error mapping: empty
// 200 for a live session with no windows, 404 for unknown IDs, 400 for
// bad query parameters, 410 for ranges evicted by retention.
func TestProfilesErrorContract(t *testing.T) {
	// Windowing disabled: the route still answers 200 with no windows.
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts, 40e6, 1e9)
	pr, code := getProfiles(t, ts, id, "")
	if code != http.StatusOK || len(pr.Windows) != 0 || pr.State != "active" {
		t.Fatalf("no-window session: HTTP %d, %+v", code, pr)
	}
	if _, code := getProfiles(t, ts, "nope", ""); code != http.StatusNotFound {
		t.Fatalf("unknown session: HTTP %d, want 404", code)
	}
	for _, q := range []string{"?from=-1", "?to=x", "?from=0.002&to=0.001", "?limit=-3", "?after=1.5"} {
		if _, code := getProfiles(t, ts, id, q); code != http.StatusBadRequest {
			t.Fatalf("query %q: HTTP %d, want 400", q, code)
		}
	}

	// Retention: a tiny store evicts early windows; asking for exactly
	// those is 410 Gone, and errors.Is sees ErrWindowNotRetained.
	store, err := profstore.Open(profstore.Options{MaxBytes: 4 << 10, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := newTestServer(t, Config{WindowS: 1e-5, Store: store})
	capture := testSignal(40000)
	id2 := createSession(t, ts2, capture.SampleRate, capture.ClockHz)
	if code, msg := postSamples(t, ts2, id2, rawBytes(capture.Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, msg)
	}
	all, _ := getProfiles(t, ts2, id2, "")
	if !all.Truncated {
		t.Fatalf("tiny store did not evict (retained %d windows; shrink MaxBytes)", len(all.Windows))
	}
	oldest := all.Windows[0].StartS
	if oldest <= 0 {
		t.Fatal("no windows evicted")
	}
	if _, code := getProfiles(t, ts2, id2, "?from=0&to="+floatQuery(oldest/2)); code != http.StatusGone {
		t.Fatalf("evicted range: HTTP %d, want 410", code)
	}
	_, err = srv2.Registry().Profiles(id2, profstore.Query{ToS: oldest / 2})
	if !errors.Is(err, ErrWindowNotRetained) {
		t.Fatalf("registry error %v does not wrap ErrWindowNotRetained", err)
	}
}

func floatQuery(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// TestDeprecatedAliasHeaders checks the unversioned alias surface: it
// still serves, but flags the move to /v1 and counts the traffic.
func TestDeprecatedAliasHeaders(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("bare alias served without Deprecation header")
	}
	if link := resp.Header.Get("Link"); link != `</v1/sessions>; rel="successor-version"` {
		t.Fatalf("Link header %q", link)
	}
	if n := srv.Registry().Metrics().DeprecatedRouteHits.Load(); n != 1 {
		t.Fatalf("deprecated hits %d, want 1", n)
	}
	resp, err = http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 route carries a Deprecation header")
	}
	if n := srv.Registry().Metrics().DeprecatedRouteHits.Load(); n != 1 {
		t.Fatalf("/v1 traffic counted as deprecated (%d hits)", n)
	}
}

// TestHandoffWindowContinuity moves a windowed session between two
// registries mid-stream and merges the windows each shard's store
// retained: the combined sequence must reassemble the batch profile
// exactly — no window lost, duplicated, or re-indexed by the move.
func TestHandoffWindowContinuity(t *testing.T) {
	capture := testSignal(30000)
	want := core.MustNewAnalyzer(core.DefaultConfig()).Profile(capture)
	cfg := Config{WindowS: 1e-4}
	regA := NewRegistry(cfg, nil)
	regB := NewRegistry(cfg, nil)

	id, err := regA.Create("dev", capture.SampleRate, capture.ClockHz, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sessA, _ := regA.get(id)
	enc := rawBytes(capture.Samples)
	split := (len(enc) / 2 / 8) * 8
	feed := func(reg *Registry, s *session, part []byte) {
		served := false
		next := func() ([]byte, error) {
			if served {
				return nil, io.EOF
			}
			served = true
			return part, io.EOF
		}
		if _, err := reg.ingest(s, formatRaw, int64(len(part)), -1, next); err != nil {
			t.Fatal(err)
		}
	}
	feed(regA, sessA, enc[:split])

	if err := regA.Pin(id); err != nil {
		t.Fatal(err)
	}
	st, err := regA.Export(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Windows == nil {
		t.Fatal("windower state did not travel")
	}
	if err := regB.Import(st); err != nil {
		t.Fatal(err)
	}
	if err := regA.Forget(id); err != nil {
		t.Fatal(err)
	}
	sessB, _ := regB.get(id)
	feed(regB, sessB, enc[split:])
	got, err := regB.Finalize(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("handed-off profile differs from batch Analyze")
	}

	// Each shard's store holds its half of the window sequence.
	resA, err := regA.Store().Query(id, profstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := regB.Store().Query(id, profstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Windows) == 0 || len(resB.Windows) == 0 {
		t.Fatalf("windows not split across shards: %d + %d", len(resA.Windows), len(resB.Windows))
	}
	merged, err := core.MergeWindows(append(resA.Windows, resB.Windows...), capture.SampleRate, capture.ClockHz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatal("cross-shard merged windows differ from batch Analyze")
	}
}

// TestWindowsCarryRegions attaches a trained attribution model and
// checks sealed windows attribute their stalls to the right regions.
func TestWindowsCarryRegions(t *testing.T) {
	const fs, clock = 40e6, 1e9
	// Training capture: two regions with distinct modulation.
	freqs := map[uint16]float64{1: 1.2e6, 2: 9.5e6}
	mkRegion := func(samples []float64, lo, hi int, f float64) {
		for i := lo; i < hi; i++ {
			samples[i] = 1 + 0.1*math.Sin(2*math.Pi*f*float64(i)/fs)
		}
	}
	train := make([]float64, 16000)
	mkRegion(train, 0, 8000, freqs[1])
	mkRegion(train, 8000, 16000, freqs[2])
	cps := clock / fs
	spans := []sim.RegionSpan{
		{Region: 1, StartCycle: 0, EndCycle: uint64(8000 * cps)},
		{Region: 2, StartCycle: uint64(8000 * cps), EndCycle: uint64(16000 * cps)},
	}
	model, err := attrib.Train(&em.Capture{Samples: train, SampleRate: fs, ClockHz: clock},
		spans, attrib.TrainConfig{Names: map[uint16]string{1: "fa", 2: "fb"}})
	if err != nil {
		t.Fatal(err)
	}

	// Test capture: region 1 then region 2, with one dip in each.
	samples := make([]float64, 24000)
	mkRegion(samples, 0, 12000, freqs[1])
	mkRegion(samples, 12000, 24000, freqs[2])
	for j := 0; j < 12; j++ {
		samples[5000+j] = 0.05
		samples[18000+j] = 0.05
	}

	reg := NewRegistry(Config{WindowS: 1e-4, Attrib: model}, nil)
	id, err := reg.Create("dev", fs, clock, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := reg.get(id)
	chunk := rawBytes(samples)
	served := false
	next := func() ([]byte, error) {
		if served {
			return nil, io.EOF
		}
		served = true
		return chunk, io.EOF
	}
	if _, err := reg.ingest(s, formatRaw, int64(len(chunk)), -1, next); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Finalize(id); err != nil {
		t.Fatal(err)
	}
	res, err := reg.Store().Query(id, profstore.Query{})
	if err != nil {
		t.Fatal(err)
	}
	byRegion := map[uint16]int{}
	stalls := 0
	for _, w := range res.Windows {
		stalls += len(w.Stalls)
		for _, reg := range w.Regions {
			byRegion[reg.Region] += reg.Misses
			if reg.Name == "" {
				t.Fatalf("region %d lost its name", reg.Region)
			}
		}
	}
	if stalls < 2 {
		t.Fatalf("only %d stalls detected", stalls)
	}
	if byRegion[1] == 0 || byRegion[2] == 0 {
		t.Fatalf("stalls not attributed to both regions: %v", byRegion)
	}
	if byRegion[1]+byRegion[2] != stalls {
		t.Fatalf("attributed %d+%d of %d stalls", byRegion[1], byRegion[2], stalls)
	}
}
