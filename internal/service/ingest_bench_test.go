package service

import (
	"fmt"
	"io"
	"testing"

	"emprof/internal/core"
	"emprof/internal/sim"
)

// BenchmarkIngestWindowed pins the continuous-profiling overhead at the
// registry layer: the same stall-bearing stream pushed through ingest
// with windowing off and on. The windowed path's budget is <10% over
// windowless (gated end to end by CI's windowed fleet ingest run).
func BenchmarkIngestWindowed(b *testing.B) {
	for _, windowS := range []float64{0, 0.0005} {
		name := "off"
		if windowS > 0 {
			name = fmt.Sprintf("%gs", windowS)
		}
		b.Run(name, func(b *testing.B) {
			srv := New(Config{WindowS: windowS, MaxSessionBytes: 1 << 62})
			defer srv.Close()
			reg := srv.Registry()
			id, err := reg.Create("bench", 40e6, 1e9, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			sess, err := reg.get(id)
			if err != nil {
				b.Fatal(err)
			}
			samples := benchStallSeries(1 << 16)
			chunk := rawBytes(samples)
			served := false
			next := func() ([]byte, error) {
				if served {
					return nil, io.EOF
				}
				served = true
				return chunk, io.EOF
			}
			b.SetBytes(int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				served = false
				if _, err := reg.ingest(sess, formatRaw, int64(len(chunk)), -1, next); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sess.mu.Lock()
			sess.drainLocked()
			sess.mu.Unlock()
		})
	}
}

// benchStallSeries is the busy/stall pattern the fleet ingest bench
// streams: frequent dips, so the windowed path actually observes and
// seals stalls rather than idling.
func benchStallSeries(n int) []float64 {
	rng := sim.NewRNG(1)
	s := make([]float64, n)
	busy, left := true, 50
	for i := range s {
		if left == 0 {
			busy = !busy
			if busy {
				left = 30 + rng.Intn(120)
			} else {
				left = 5 + rng.Intn(40)
			}
		}
		left--
		if busy {
			s[i] = 1 + 0.3*rng.Float64()
		} else {
			s[i] = 0.25
		}
	}
	return s
}
