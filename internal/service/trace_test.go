package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"emprof/internal/core"
	"emprof/internal/trace"
)

func getTrace(t *testing.T, ts *httptest.Server, id string) (*TraceResponse, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return &tr, resp.StatusCode
}

// TestTraceEndpoint streams a dip-bearing capture into a session and
// checks that GET /v1/sessions/{id}/trace returns the analyzer's decision
// events, reconciling with the profile snapshot.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	capture := testSignal(30000)
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	if code, msg := postSamples(t, ts, id, rawBytes(capture.Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, msg)
	}

	tr, code := getTrace(t, ts, id)
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d", code)
	}
	if !tr.Enabled {
		t.Fatal("tracing should be enabled by default")
	}
	if tr.ID != id {
		t.Errorf("trace ID %q, want %q", tr.ID, id)
	}
	counts := map[string]int{}
	for _, rec := range tr.Records {
		counts[rec.Type]++
	}
	if counts[trace.TypeDipCandidate] == 0 {
		t.Error("no dip_candidate events in trace")
	}

	// The snapshot's stall count must match the accepted events (the
	// default ring is far larger than this capture's event count).
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Dropped != 0 {
		t.Errorf("unexpected drops: %d (ring too small for test capture?)", tr.Dropped)
	}
	if got := counts[trace.TypeStallAccepted]; got != len(snap.Profile.Stalls) {
		t.Errorf("trace has %d stall_accepted events, snapshot has %d stalls",
			got, len(snap.Profile.Stalls))
	}
	if counts[trace.TypeStallAccepted] == 0 {
		t.Error("no stalls traced on a dip-bearing capture")
	}

	// Unknown sessions 404.
	if _, code := getTrace(t, ts, "nope"); code != http.StatusNotFound {
		t.Errorf("unknown session trace: HTTP %d, want 404", code)
	}
}

// TestTraceDisabled covers TraceRing < 0: the endpoint stays up but
// reports tracing disabled with no records.
func TestTraceDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: -1})
	capture := testSignal(8000)
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	if code, msg := postSamples(t, ts, id, rawBytes(capture.Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, msg)
	}
	tr, code := getTrace(t, ts, id)
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d", code)
	}
	if tr.Enabled || len(tr.Records) != 0 || tr.Total != 0 {
		t.Errorf("disabled trace: got %+v", tr)
	}
}

// TestTraceRingDrops forces a tiny ring and checks the drop accounting.
func TestTraceRingDrops(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: 4})
	capture := testSignal(30000)
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	if code, msg := postSamples(t, ts, id, rawBytes(capture.Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, msg)
	}
	tr, _ := getTrace(t, ts, id)
	if len(tr.Records) != 4 {
		t.Errorf("ring of 4 retained %d records", len(tr.Records))
	}
	if tr.Dropped == 0 || tr.Total != tr.Dropped+uint64(len(tr.Records)) {
		t.Errorf("drop accounting off: total %d dropped %d retained %d",
			tr.Total, tr.Dropped, len(tr.Records))
	}
}

// TestLegacyRouteAliases drives a whole session through the unversioned
// paths, which must behave identically to /v1.
func TestLegacyRouteAliases(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	capture := testSignal(20000)

	body, _ := json.Marshal(CreateRequest{SampleRate: capture.SampleRate, ClockHz: capture.ClockHz})
	resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var cr CreateResponse
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("legacy create: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	presp, err := http.Post(ts.URL+"/sessions/"+cr.ID+"/samples", ContentTypeRaw,
		strings.NewReader(string(rawBytes(capture.Samples))))
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("legacy ingest: HTTP %d", presp.StatusCode)
	}

	for _, path := range []string{
		"/sessions", "/sessions/" + cr.ID + "/profile", "/sessions/" + cr.ID + "/trace",
		"/metrics", "/v1/metrics",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+cr.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var prof core.Profile
	if err := json.NewDecoder(dresp.Body).Decode(&prof); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || len(prof.Stalls) == 0 {
		t.Errorf("legacy finalize: HTTP %d, %d stalls", dresp.StatusCode, len(prof.Stalls))
	}
}

// TestMetricsIncludeTrace checks that the shared registry aggregates
// analyzer decision events into the /metrics exposition.
func TestMetricsIncludeTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	capture := testSignal(30000)
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	if code, msg := postSamples(t, ts, id, rawBytes(capture.Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, msg)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"emprofd_trace_dip_candidates_total",
		"emprofd_trace_stalls_accepted_total",
		"emprofd_trace_stall_depth_bucket",
		"emprofd_trace_stall_depth_sum",
		"emprofd_trace_stall_depth_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if strings.Contains(text, "emprofd_trace_stalls_accepted_total 0\n") {
		t.Error("trace aggregator saw no accepted stalls after a dip-bearing ingest")
	}
}
