package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"emprof/internal/profstore"
	"emprof/internal/trace"
	"emprof/internal/version"
)

// Metrics aggregates the service's operational counters and renders them
// in the Prometheus text exposition format (stdlib only — no client
// library in the image, and the format is four line shapes).
type Metrics struct {
	SessionsTotal     atomic.Int64
	SessionsFinalized atomic.Int64
	SessionsGC        atomic.Int64
	SessionsRejected  atomic.Int64
	SessionsExported  atomic.Int64
	SessionsImported  atomic.Int64
	SamplesIngested   atomic.Int64
	IngestBytes       atomic.Int64
	StallsDetected    atomic.Int64
	// WindowsSealed counts rolling profile windows persisted to the
	// window store; WindowsDropped counts sealed windows the store
	// failed to persist (Append errors — profile history lost to a sick
	// disk, invisible except here and in the log); DeprecatedRouteHits
	// counts requests served on bare unversioned route aliases (the
	// pre-/v1 surface, kept for compatibility but scheduled for
	// removal).
	WindowsSealed       atomic.Int64
	WindowsDropped      atomic.Int64
	DeprecatedRouteHits atomic.Int64

	// Trace aggregates the decision-trace events of every session's
	// analyzer (stalls by reject reason, dip-depth distribution, resync
	// causes, flagged samples); rendered under the emprofd_trace_ prefix.
	// The same aggregator type backs embench's observer-overhead guard.
	Trace *trace.Metrics

	mu        sync.Mutex
	endpoints map[endpointKey]*endpointStats
}

type endpointKey struct {
	endpoint string
	code     int
}

type endpointStats struct {
	count      int64
	durSeconds float64
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{
		Trace:     trace.NewMetrics(),
		endpoints: make(map[endpointKey]*endpointStats),
	}
}

// ObserveRequest records one served request: its endpoint label, status
// code, and wall-clock duration in seconds.
func (m *Metrics) ObserveRequest(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := endpointKey{endpoint, code}
	st := m.endpoints[k]
	if st == nil {
		st = &endpointStats{}
		m.endpoints[k] = st
	}
	st.count++
	st.durSeconds += seconds
}

// WriteTo renders the metrics in Prometheus text format. activeSessions
// is sampled by the caller (it lives in the registry, not the sink).
func (m *Metrics) WriteTo(w io.Writer, activeSessions int) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP emprofd_build_info Build metadata.\n# TYPE emprofd_build_info gauge\nemprofd_build_info{version=%q} 1\n", version.Version)
	gauge("emprofd_sessions_active", "Sessions currently open.", int64(activeSessions))
	counter("emprofd_sessions_total", "Sessions ever created.", m.SessionsTotal.Load())
	counter("emprofd_sessions_finalized_total", "Sessions finalized by clients or shutdown.", m.SessionsFinalized.Load())
	counter("emprofd_sessions_gc_total", "Idle sessions collected by the TTL sweeper.", m.SessionsGC.Load())
	counter("emprofd_sessions_rejected_total", "Session creates rejected by the max-session cap.", m.SessionsRejected.Load())
	counter("emprofd_sessions_exported_total", "Sessions exported for hand-off to another shard.", m.SessionsExported.Load())
	counter("emprofd_sessions_imported_total", "Sessions imported mid-stream from another shard.", m.SessionsImported.Load())
	counter("emprofd_samples_ingested_total", "EM samples decoded into analyzers.", m.SamplesIngested.Load())
	counter("emprofd_ingest_bytes_total", "Capture bytes accepted for ingest.", m.IngestBytes.Load())
	counter("emprofd_stalls_detected_total", "LLC-miss stalls detected across all sessions.", m.StallsDetected.Load())
	counter("emprofd_windows_sealed_total", "Rolling profile windows sealed and persisted.", m.WindowsSealed.Load())
	counter("emprofd_windows_dropped_total", "Sealed windows lost to window-store append failures.", m.WindowsDropped.Load())
	counter("emprofd_deprecated_route_hits_total", "Requests served on deprecated unversioned route aliases.", m.DeprecatedRouteHits.Load())

	m.mu.Lock()
	keys := make([]endpointKey, 0, len(m.endpoints))
	for k := range m.endpoints {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	type row struct {
		k endpointKey
		s endpointStats
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{k, *m.endpoints[k]})
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP emprofd_http_requests_total Requests served, by endpoint and status code.\n# TYPE emprofd_http_requests_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "emprofd_http_requests_total{endpoint=%q,code=\"%d\"} %d\n", r.k.endpoint, r.k.code, r.s.count)
	}
	// Aggregate latency per endpoint across status codes.
	type agg struct {
		count int64
		sum   float64
	}
	byEndpoint := map[string]*agg{}
	var order []string
	for _, r := range rows {
		a := byEndpoint[r.k.endpoint]
		if a == nil {
			a = &agg{}
			byEndpoint[r.k.endpoint] = a
			order = append(order, r.k.endpoint)
		}
		a.count += r.s.count
		a.sum += r.s.durSeconds
	}
	fmt.Fprintf(w, "# HELP emprofd_http_request_duration_seconds Cumulative request wall time, by endpoint.\n# TYPE emprofd_http_request_duration_seconds summary\n")
	for _, ep := range order {
		a := byEndpoint[ep]
		fmt.Fprintf(w, "emprofd_http_request_duration_seconds_sum{endpoint=%q} %g\n", ep, a.sum)
		fmt.Fprintf(w, "emprofd_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, a.count)
	}

	if m.Trace != nil {
		m.Trace.WritePrometheus(w, "emprofd_trace")
	}
}

// WriteStoreStats renders the window store's footprint; the caller
// samples the stats (the store lives in the registry, not the sink).
func (m *Metrics) WriteStoreStats(w io.Writer, st profstore.Stats) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("emprofd_profstore_segments", "Window store segment files (or memory segments).", int64(st.Segments))
	gauge("emprofd_profstore_bytes", "Window store framed payload bytes retained.", st.Bytes)
	gauge("emprofd_profstore_sessions", "Sessions with retained windows.", int64(st.Sessions))
	fmt.Fprintf(w, "# HELP emprofd_profstore_evictions_total Segments evicted by retention.\n# TYPE emprofd_profstore_evictions_total counter\nemprofd_profstore_evictions_total %d\n", st.Evictions)
}
