// Package service implements emprofd, the concurrent profiling service:
// a session registry where each session wraps one core.StreamAnalyzer,
// an HTTP API for streaming capture ingest and live profile snapshots,
// and Prometheus-format metrics. It turns the push-one-sample streaming
// profiler into the deployment the paper implies — a probe ships EM
// samples to a collector continuously while the target runs untouched,
// and the profile is available live, not post-hoc from capture files.
//
// Session lifecycle (see DESIGN.md "Profiling service"):
//
//	created ──ingest──▶ active ──DELETE──▶ finalized (profile returned, session removed)
//	   │                   │
//	   └───────idle TTL────┴──▶ swept by GC (finalized and dropped)
//
// The registry is robust by construction: a max-session cap and a
// per-session byte budget (both answered with 429 so well-behaved
// clients back off), idle-session GC, per-request read deadlines, and a
// graceful Close that finalizes every in-flight session.
package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"emprof/internal/attrib"
	"emprof/internal/core"
	"emprof/internal/em"
	"emprof/internal/profstore"
	"emprof/internal/trace"
)

// Config tunes the service.
type Config struct {
	// MaxSessions caps concurrently-open sessions; creates beyond it are
	// rejected with 429. 0 means the default (64).
	MaxSessions int
	// MaxSessionBytes caps the bytes one session may ingest over its
	// lifetime; 0 means the default (1 GiB).
	MaxSessionBytes int64
	// IdleTTL is how long a session may sit without ingest or snapshot
	// traffic before the GC finalizes and drops it; 0 means the default
	// (5 minutes).
	IdleTTL time.Duration
	// ReadTimeout is the per-request read deadline applied to ingest
	// bodies; 0 means the default (30 seconds).
	ReadTimeout time.Duration
	// TraceRing is the per-session decision-trace ring capacity served at
	// GET /v1/sessions/{id}/trace: the last TraceRing analyzer decision
	// events (dip candidates, accepted/rejected stalls, resyncs, quality
	// flags) are retained per session. 0 means the default (4096);
	// negative disables per-session rings (the shared trace metrics keep
	// aggregating either way).
	TraceRing int
	// WindowS enables continuous profiling: every session emits rolling
	// profile windows of this width in stream seconds, persisted to the
	// window store and served at GET /v1/sessions/{id}/profiles. 0
	// disables windowing (sessions still profile; only the window surface
	// is absent).
	WindowS float64
	// WindowStrideS is the window stride in stream seconds; 0 means
	// tumbling (stride = width). Overlapping windows do not merge — see
	// core.MergeWindows.
	WindowStrideS float64
	// QueueBlocks bounds the per-session decode→analysis queue, in ingest
	// blocks. A full queue blocks further body reads — backpressure rides
	// the transport instead of growing memory. 0 means the default (8).
	QueueBlocks int
	// Store is the window sink; nil with WindowS > 0 means an internal
	// memory-only store (windows then do not survive a restart).
	Store *profstore.Store
	// Attrib optionally carries a trained attribution model applied to
	// every session: sealed windows then carry live stall→code-region
	// attribution (ProfileWindow.Regions). Per-session models via
	// CreateRequest.Attribution override it.
	Attrib *attrib.Model
	// Logf, when set, receives operational log lines the metrics alone
	// would bury (window-store append failures and the like); nil
	// discards them.
	Logf func(format string, args ...any)
	// Now overrides the clock, for tests; nil means time.Now.
	Now func() time.Time
}

// Defaults for Config zero values.
const (
	DefaultMaxSessions     = 64
	DefaultMaxSessionBytes = 1 << 30
	DefaultIdleTTL         = 5 * time.Minute
	DefaultReadTimeout     = 30 * time.Second
	DefaultTraceRing       = 4096
	DefaultQueueBlocks     = 8
)

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.MaxSessionBytes <= 0 {
		c.MaxSessionBytes = DefaultMaxSessionBytes
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = DefaultIdleTTL
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.TraceRing == 0 {
		c.TraceRing = DefaultTraceRing
	}
	if c.QueueBlocks <= 0 {
		c.QueueBlocks = DefaultQueueBlocks
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Typed registry errors; the HTTP layer maps them to status codes.
var (
	// ErrFull is returned when the registry holds MaxSessions sessions
	// (HTTP 429: back off and retry).
	ErrFull = errors.New("service: session registry full")
	// ErrBudget is returned when an ingest would exceed the session byte
	// budget before any of it is consumed (HTTP 429).
	ErrBudget = errors.New("service: session byte budget exhausted")
	// ErrClosed is returned after Close (HTTP 503).
	ErrClosed = errors.New("service: shutting down")
	// ErrNotFound is returned for unknown session IDs (HTTP 404).
	ErrNotFound = errors.New("service: no such session")
	// ErrPoisoned is returned when ingesting into a session whose stream
	// previously failed to decode (HTTP 400).
	ErrPoisoned = errors.New("service: session stream previously failed")
	// ErrPinned is returned while a session is pinned for hand-off to
	// another shard (HTTP 503: transient, retry — the router will direct
	// the retry to the new owner once the move completes).
	ErrPinned = errors.New("service: session pinned for hand-off")
	// ErrConflict is returned when a request contradicts session state: a
	// client-assigned session ID that already exists, or a push offset
	// beyond the ingested stream (HTTP 409: not retryable as-is).
	ErrConflict = errors.New("service: conflicting session state")
	// ErrWindowNotRetained is returned when a profiles query names a time
	// range whose windows existed but were evicted by the store's
	// retention policy (HTTP 410: gone for good, do not retry).
	ErrWindowNotRetained = errors.New("service: requested windows no longer retained")
)

// session is one live profiling stream, structured as two stages joined
// by a bounded queue (see pipeline.go): the decode stage (ingest, under
// mu) validates and decodes wire bytes and enqueues sample blocks; the
// analysis stage (one worker goroutine, under anMu) drains them through
// the analyzer, the windower, and the attributor. Result-serving paths
// first drain (analyzed catches up to enqueued) so every read observes
// its own session's completed writes.
type session struct {
	id         string
	device     string
	sampleRate float64
	clockHz    float64
	created    time.Time

	mu         sync.Mutex
	lastActive time.Time
	an         *core.StreamAnalyzer
	// emit is the decode→analysis boundary bound once at session
	// creation, so the hot ingest loop passes a prebuilt func value to
	// the decoder instead of allocating a closure per request.
	emit func([]float64)
	dec  *em.Decoder // nil until the first ingest chooses a wire format
	bytes      int64
	finalized  bool
	final      *core.Profile
	poison     error // first decode error; the session rejects further ingest
	// pinned marks the session frozen for hand-off: ingest, snapshot and
	// finalize answer ErrPinned (503) until the move completes, so no
	// sample can land on two shards.
	pinned bool
	// ring retains the session's most recent analyzer decision events
	// (GET /v1/sessions/{id}/trace); nil when per-session tracing is
	// disabled. The ring is internally synchronised.
	ring *trace.Ring

	// Analysis stage (pipeline.go). queue carries sample blocks decode →
	// worker; free recycles their backing arrays (a channel, not a
	// sync.Pool — Put/Get of a slice would box it and break the zero-
	// alloc ingest path). enqueued/queueClosed are guarded by mu;
	// analyzed/workerErr by anMu; the worker never takes mu (lock order
	// is mu → anMu).
	queue       chan []float64
	free        chan []float64
	workerDone  chan struct{}
	enqueued    int64
	queueClosed bool

	anMu      sync.Mutex
	cond      *sync.Cond // signals analyzed advancing
	analyzed  int64
	workerErr error

	// Store stage (pipeline.go). winq carries sealed windows from the
	// seal point (analysis worker, or the finalize path) to a per-session
	// store worker, so persisting a window — encoding plus, in disk mode,
	// the write — never runs on the analysis stage. winqClosed is guarded
	// by mu (like queueClosed); winSealed/winStored by winMu; the store
	// worker takes only winMu (lock order is mu → anMu → winMu).
	winq       chan *core.ProfileWindow
	winqDone   chan struct{}
	winqClosed bool

	winMu     sync.Mutex
	winCond   *sync.Cond // signals winStored advancing
	winSealed int64
	winStored int64

	// win slices the analyzed stream into rolling windows; attr attributes
	// them to code regions. Both live on the analysis stage (anMu); nil
	// when the feature is off.
	win  *core.Windower
	attr *attrib.StreamAttributor
}

// SessionInfo is the list-endpoint view of one session.
type SessionInfo struct {
	ID              string    `json:"id"`
	Device          string    `json:"device,omitempty"`
	State           string    `json:"state"`
	SampleRate      float64   `json:"sample_rate"`
	ClockHz         float64   `json:"clock_hz"`
	BytesIngested   int64     `json:"bytes_ingested"`
	SamplesIngested int64     `json:"samples_ingested"`
	Stalls          int       `json:"stalls"`
	CreatedAt       time.Time `json:"created_at"`
	LastActiveAt    time.Time `json:"last_active_at"`
}

// Registry manages the live sessions.
type Registry struct {
	cfg     Config
	metrics *Metrics
	// store receives sealed windows and serves Profiles queries; nil when
	// windowing is disabled. ownStore marks the internal memory store
	// (closed with the registry; a caller-supplied store is the caller's).
	store    *profstore.Store
	ownStore bool

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool
}

// NewRegistry builds a registry with the given limits.
func NewRegistry(cfg Config, m *Metrics) *Registry {
	if m == nil {
		m = NewMetrics()
	}
	r := &Registry{
		cfg:      cfg.withDefaults(),
		metrics:  m,
		sessions: make(map[string]*session),
	}
	r.store = r.cfg.Store
	if r.store == nil && r.cfg.WindowS > 0 {
		// Memory-mode open cannot fail (no directory to touch).
		r.store, _ = profstore.Open(profstore.Options{})
		r.ownStore = true
	}
	return r
}

// Metrics returns the registry's metrics sink.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Config returns the effective (defaulted) configuration.
func (r *Registry) Config() Config { return r.cfg }

// Store returns the window store (nil when windowing is disabled).
func (r *Registry) Store() *profstore.Store { return r.store }

// newSessionID returns a 128-bit random hex ID.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: rand: %v", err)) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Create opens a new session wrapping a streaming analyzer for a signal
// with the given acquisition metadata.
func (r *Registry) Create(device string, sampleRate, clockHz float64, cfg core.Config) (string, error) {
	return r.CreateWithID("", device, sampleRate, clockHz, cfg)
}

// CreateWithID opens a session under a client-assigned ID — the fleet
// router assigns IDs itself so that any node can recompute a session's
// owning shard from the ID alone. An empty id means server-assigned
// (Create). A duplicate ID is ErrConflict.
func (r *Registry) CreateWithID(id, device string, sampleRate, clockHz float64, cfg core.Config) (string, error) {
	return r.CreateSession(CreateOpts{ID: id, Device: device, SampleRate: sampleRate, ClockHz: clockHz, Config: cfg})
}

// CreateOpts parameterises CreateSession — the options-struct face of
// session creation, for callers that need more than the positional
// Create/CreateWithID surface.
type CreateOpts struct {
	// ID optionally assigns the session ID client-side; empty means
	// server-assigned.
	ID     string
	Device string
	// SampleRate and ClockHz are the signal's acquisition metadata
	// (required).
	SampleRate, ClockHz float64
	// Config is the profiler configuration (core.DefaultConfig for the
	// zero value — callers that want defaults must set it explicitly,
	// since the zero core.Config is not valid).
	Config core.Config
	// Attribution optionally attaches a trained model to this session,
	// overriding Config.Attrib; windows then carry Regions.
	Attribution *attrib.Model
}

// CreateSession opens a session from an options struct.
func (r *Registry) CreateSession(o CreateOpts) (string, error) {
	if err := validateSessionID(o.ID); err != nil {
		return "", err
	}
	if !(o.SampleRate > 0) || !(o.ClockHz > 0) {
		return "", fmt.Errorf("service: invalid acquisition metadata rate=%v clock=%v", o.SampleRate, o.ClockHz)
	}
	an, err := core.NewStreamAnalyzer(o.Config, o.SampleRate, o.ClockHz)
	if err != nil {
		return "", err
	}
	var win *core.Windower
	if r.cfg.WindowS > 0 {
		win, err = core.NewWindower(r.cfg.WindowS, r.cfg.WindowStrideS, o.SampleRate, o.ClockHz)
		if err != nil {
			return "", err
		}
	}
	var attr *attrib.StreamAttributor
	if model := firstModel(o.Attribution, r.cfg.Attrib); model != nil && win != nil {
		attr, err = attrib.NewStreamAttributor(model)
		if err != nil {
			return "", err
		}
	}
	r.attachObservers(an, win)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return "", ErrClosed
	}
	if len(r.sessions) >= r.cfg.MaxSessions {
		r.metrics.SessionsRejected.Add(1)
		return "", ErrFull
	}
	id := o.ID
	if id == "" {
		id = newSessionID()
	} else if _, ok := r.sessions[id]; ok {
		return "", fmt.Errorf("%w: session %q already exists", ErrConflict, id)
	}
	now := r.cfg.Now()
	s := &session{
		id:         id,
		device:     o.Device,
		sampleRate: o.SampleRate,
		clockHz:    o.ClockHz,
		created:    now,
		lastActive: now,
		an:         an,
		ring:       r.newRing(an),
		win:        win,
		attr:       attr,
	}
	r.startPipeline(s)
	r.sessions[s.id] = s
	r.metrics.SessionsTotal.Add(1)
	return s.id, nil
}

// firstModel picks the per-session attribution model over the daemon
// default.
func firstModel(models ...*attrib.Model) *attrib.Model {
	for _, m := range models {
		if m != nil {
			return m
		}
	}
	return nil
}

// validateSessionID bounds client-assigned IDs; empty means
// server-assigned and is always fine.
func validateSessionID(id string) error {
	if len(id) > 128 {
		return fmt.Errorf("service: session ID longer than 128 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '/' {
			return fmt.Errorf("service: session ID contains byte %q", c)
		}
	}
	return nil
}

// attachObservers wires a session analyzer into the shared metrics (the
// stall counter) and, when windowing is on, into the session's windower.
// The OnStall hook runs inside PushBlock on the analysis worker, so the
// windower needs no locking of its own.
func (r *Registry) attachObservers(an *core.StreamAnalyzer, win *core.Windower) {
	stalls := &r.metrics.StallsDetected
	if win == nil {
		an.OnStall = func(core.Stall) { stalls.Add(1) }
		return
	}
	an.OnStall = func(st core.Stall) {
		stalls.Add(1)
		win.Observe(st)
	}
}

// newRing assembles a session's decision-trace observers: the shared
// trace aggregator plus, unless disabled, a per-session ring retaining
// recent events for the trace endpoint. Observers are assembled as
// interfaces (never typed-nil pointers) so Multi can drop absent ones.
// It returns the ring (nil when disabled) after attaching the observer.
func (r *Registry) newRing(an *core.StreamAnalyzer) *trace.Ring {
	var sinks []trace.Observer
	var ring *trace.Ring
	if r.cfg.TraceRing > 0 {
		ring = trace.NewRing(r.cfg.TraceRing)
		sinks = append(sinks, ring)
	}
	if r.metrics.Trace != nil {
		sinks = append(sinks, r.metrics.Trace)
	}
	an.SetObserver(trace.Multi(sinks...))
	return ring
}

// get looks a session up.
func (r *Registry) get(id string) (*session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	s, ok := r.sessions[id]
	if !ok {
		return nil, ErrNotFound
	}
	return s, nil
}

// IngestResult reports the session totals after one ingest call.
type IngestResult struct {
	SamplesIngested int64 `json:"samples_ingested"`
	BytesIngested   int64 `json:"bytes_ingested"`
}

// wireFormat selects how an ingest body is decoded.
type wireFormat int

const (
	// formatRaw is a headerless stream of little-endian float64 samples;
	// the acquisition metadata came from session creation.
	formatRaw wireFormat = iota
	// formatCapture is the EMPROFCAP file format; its header metadata
	// must match the session's.
	formatCapture
)

// ingest feeds one body chunk-by-chunk into the session's decoder and
// analyzer. next returns successive byte chunks ((nil, io.EOF) at end);
// the caller owns transport concerns (deadlines, chunk sizing).
// declaredLen, when >= 0 (a Content-Length), is checked against the byte
// budget before anything is consumed, so a rejected request ingests
// nothing and is safe to retry. Bodies without a declared length are
// cut off mid-stream when the budget runs out.
//
// offset, when >= 0, is the session-stream index of the body's first
// sample (the X-Emprof-Offset header, raw format only): the portion of
// the body the session has already decoded — a retry of a push whose
// response was lost, or that died mid-body — is skipped instead of
// re-ingested, which is what makes client retries on 429/502/503 safe
// from double counting. An offset beyond the ingested stream is a
// conflict: samples in between were lost for good and the profile can
// no longer be trusted to match the capture.
func (r *Registry) ingest(s *session, format wireFormat, declaredLen, offset int64, next func() ([]byte, error)) (IngestResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return IngestResult{}, ErrNotFound
	}
	if s.pinned {
		return IngestResult{}, ErrPinned
	}
	if s.poison != nil {
		return IngestResult{}, fmt.Errorf("%w: %v", ErrPoisoned, s.poison)
	}
	if err := s.pipelineErr(); err != nil {
		s.poison = err
		return IngestResult{}, fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
	if offset >= 0 && format != formatRaw {
		return IngestResult{}, fmt.Errorf("service: push offsets apply to raw-format ingest only")
	}
	if declaredLen >= 0 {
		// Charge only the bytes this request can actually ingest: an
		// offset-tagged retry skips the already-decoded prefix, so that
		// prefix must not count against the budget again — otherwise a
		// retry of a push that mostly landed near MaxSessionBytes draws
		// 429 forever even though its effective new bytes fit.
		effective := declaredLen
		if offset >= 0 && s.dec != nil {
			if skip := (s.dec.Emitted() - offset) * 8; skip > 0 {
				if skip > effective {
					skip = effective
				}
				effective -= skip
			}
		}
		if s.bytes+effective > r.cfg.MaxSessionBytes {
			return IngestResult{}, ErrBudget
		}
	}
	if s.dec == nil {
		if format == formatCapture {
			s.dec = em.NewStreamDecoder()
		} else {
			s.dec = em.NewRawDecoder()
		}
	}
	var skip int64
	if offset >= 0 {
		cur := s.dec.Emitted()
		if offset > cur {
			return r.ingestTotals(s), fmt.Errorf("%w: push offset %d beyond ingested stream (%d samples)", ErrConflict, offset, cur)
		}
		// The already-decoded prefix of this body is skipped below. Any
		// half-assembled word left by an interrupted request is a prefix
		// of sample cur, which this body resends whole: drop it so the
		// resent bytes aren't appended to stale ones.
		skip = (cur - offset) * 8
		s.dec.DropFragment()
	}
	for {
		chunk, err := next()
		if skip > 0 && len(chunk) > 0 {
			n := int64(len(chunk))
			if n > skip {
				n = skip
			}
			chunk = chunk[n:]
			skip -= n
		}
		if len(chunk) > 0 {
			if s.bytes+int64(len(chunk)) > r.cfg.MaxSessionBytes {
				return r.ingestTotals(s), ErrBudget
			}
			before := s.dec.Emitted()
			if derr := s.dec.FeedBlock(chunk, s.emit); derr != nil {
				s.poison = derr
				return r.ingestTotals(s), derr
			}
			s.bytes += int64(len(chunk))
			r.metrics.IngestBytes.Add(int64(len(chunk)))
			r.metrics.SamplesIngested.Add(s.dec.Emitted() - before)
			if !s.headerOK() {
				s.poison = fmt.Errorf("capture header metadata does not match session (header %v/%v)",
					headerRate(s.dec), headerClock(s.dec))
				return r.ingestTotals(s), s.poison
			}
			if s.dec.Trailing() > 0 {
				s.poison = fmt.Errorf("stream continues past the capture's declared sample count")
				return r.ingestTotals(s), s.poison
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			// Transport failure (e.g. read deadline) mid-body: the decoded
			// prefix is kept and the session stays usable, but the caller
			// must know this request did not land completely.
			s.lastActive = r.cfg.Now()
			return r.ingestTotals(s), fmt.Errorf("service: reading ingest body: %w", err)
		}
	}
	s.lastActive = r.cfg.Now()
	return r.ingestTotals(s), nil
}

func (r *Registry) ingestTotals(s *session) IngestResult {
	return IngestResult{SamplesIngested: s.dec.Emitted(), BytesIngested: s.bytes}
}

// headerOK checks EMPROFCAP header metadata against the session's once
// the header is available.
func (s *session) headerOK() bool {
	if !s.dec.HeaderDone() {
		return true
	}
	rate, clock, _ := s.dec.Meta()
	if rate == 0 && clock == 0 {
		return true // raw decoder: no header to check
	}
	return rate == s.sampleRate && clock == s.clockHz
}

func headerRate(d *em.Decoder) float64  { r, _, _ := d.Meta(); return r }
func headerClock(d *em.Decoder) float64 { _, c, _ := d.Meta(); return c }

// Snapshot is the live-profile view of a session: only causal,
// already-decided stalls appear (core.StreamAnalyzer.Snapshot), alongside
// ingest progress and a per-stall confidence histogram.
type Snapshot struct {
	ID              string        `json:"id"`
	Device          string        `json:"device,omitempty"`
	State           string        `json:"state"`
	SamplesIngested int64         `json:"samples_ingested"`
	SamplesDecided  int64         `json:"samples_decided"`
	BytesIngested   int64         `json:"bytes_ingested"`
	Profile         *core.Profile `json:"profile"`
	MeanConfidence  float64       `json:"mean_confidence"`
	// ConfidenceHist buckets per-stall confidence into ten equal bins
	// over [0, 1]; bin 9 includes confidence 1.
	ConfidenceHist [10]int `json:"confidence_hist"`
}

// Snapshot returns the live profile of a session.
func (r *Registry) Snapshot(id string) (*Snapshot, error) {
	s, err := r.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pinned {
		return nil, ErrPinned
	}
	s.lastActive = r.cfg.Now()
	s.drainLocked()
	return s.snapshotLocked(), nil
}

// SnapshotJSON encodes the live profile of a session straight into buf,
// producing exactly the bytes Snapshot would marshal to. The encode runs
// under the session lock over a clone-free profile view, so a large
// stall list is serialised without first being copied (and zeroed) —
// the dominant cost of the profile endpoint on long sessions.
func (r *Registry) SnapshotJSON(id string, buf []byte) ([]byte, error) {
	s, err := r.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pinned {
		return nil, ErrPinned
	}
	s.lastActive = r.cfg.Now()
	s.drainLocked()
	var prof *core.Profile
	if s.final == nil {
		view := s.an.SnapshotView()
		prof = &view
	}
	snap := s.buildSnapshotLocked(prof)
	return snap.AppendJSON(buf)
}

func (s *session) snapshotLocked() *Snapshot {
	var prof *core.Profile
	if s.final == nil {
		prof = s.an.Snapshot()
	}
	return s.buildSnapshotLocked(prof)
}

// buildSnapshotLocked assembles the snapshot around a profile view of
// the analyzer (cloned or clone-free); finalized sessions pass nil and
// use the stored final profile instead.
func (s *session) buildSnapshotLocked(prof *core.Profile) *Snapshot {
	state := "active"
	if s.finalized {
		state = "finalized"
	}
	if prof == nil {
		prof = s.final
	}
	snap := &Snapshot{
		ID:              s.id,
		Device:          s.device,
		State:           state,
		SamplesIngested: s.an.Pushed(),
		SamplesDecided:  s.an.Decided(),
		BytesIngested:   s.bytes,
		Profile:         prof,
		MeanConfidence:  prof.MeanConfidence(),
	}
	for _, st := range prof.Stalls {
		bin := int(st.Confidence * 10)
		if bin > 9 {
			bin = 9
		}
		if bin < 0 {
			bin = 0
		}
		snap.ConfidenceHist[bin]++
	}
	return snap
}

// TraceResponse is the GET /v1/sessions/{id}/trace view of a session:
// the retained decision-trace events, oldest first, with drop
// accounting.
type TraceResponse struct {
	ID string `json:"id"`
	// Enabled is false when the daemon runs with per-session tracing
	// disabled (-trace-ring < 0); Records is then always empty.
	Enabled bool `json:"enabled"`
	// Total counts every decision event the session's analyzer ever
	// emitted; Dropped counts those that have rotated out of the ring.
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
	// Records holds the retained events, oldest first.
	Records []trace.Record `json:"records"`
}

// Trace returns the retained decision-trace events of a session.
func (r *Registry) Trace(id string) (*TraceResponse, error) {
	s, err := r.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.lastActive = r.cfg.Now()
	// Drain so the trace reflects every decision the ingested samples
	// produced — same read-your-writes contract as Snapshot.
	s.drainLocked()
	ring := s.ring
	s.mu.Unlock()
	resp := &TraceResponse{ID: s.id, Records: []trace.Record{}}
	if ring == nil {
		return resp, nil
	}
	resp.Enabled = true
	// Records and Total are read in two steps; events landing between
	// them only make Dropped conservative, never negative.
	resp.Records = ring.Records()
	resp.Total = ring.Total()
	resp.Dropped = resp.Total - uint64(len(resp.Records))
	return resp, nil
}

// Finalize drains a session's pipeline, removes it from the registry, and
// returns its final profile — the same profile a batch Analyze of the
// full capture would produce.
func (r *Registry) Finalize(id string) (*core.Profile, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	s, ok := r.sessions[id]
	if !ok {
		r.mu.Unlock()
		return nil, ErrNotFound
	}
	// Lock order r.mu → s.mu, as in Sweep. A pinned session must stay in
	// the registry: its state is mid-flight to another shard.
	s.mu.Lock()
	if s.pinned {
		s.mu.Unlock()
		r.mu.Unlock()
		return nil, ErrPinned
	}
	delete(r.sessions, id)
	r.mu.Unlock()
	defer s.mu.Unlock()
	s.finalizeLocked()
	r.metrics.SessionsFinalized.Add(1)
	return s.final, nil
}

func (s *session) finalizeLocked() {
	if s.finalized {
		return
	}
	// Stop the analysis stage first: drain the queue, close it, wait for
	// the worker — after this the analyzer is exclusively ours.
	s.stopPipelineLocked()
	s.final = s.an.Finalize()
	if s.win != nil {
		// Seal the trailing window; its OnWindow hook hands it to the
		// store stage with the stream's final quality, completing the
		// mergeable sequence.
		s.win.Flush(s.an.Pushed())
	}
	// Stop the store stage last: a finalized session leaves the registry,
	// after which the store is the only copy queries can reach — every
	// queued window must have landed before we let go.
	s.stopStoreStageLocked()
	s.finalized = true
}

// List returns every live session, oldest first.
func (r *Registry) List() []SessionInfo {
	r.mu.Lock()
	sessions := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		s.drainLocked()
		snap := s.an.Snapshot()
		info := SessionInfo{
			ID:              s.id,
			Device:          s.device,
			State:           "active",
			SampleRate:      snap.SampleRate,
			ClockHz:         snap.ClockHz,
			BytesIngested:   s.bytes,
			SamplesIngested: s.an.Pushed(),
			Stalls:          len(snap.Stalls),
			CreatedAt:       s.created,
			LastActiveAt:    s.lastActive,
		}
		if s.finalized {
			info.State = "finalized"
		} else if s.pinned {
			info.State = "pinned"
		}
		s.mu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out
}

// ActiveSessions returns the number of live sessions.
func (r *Registry) ActiveSessions() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Sweep finalizes and drops every session idle since before now-IdleTTL,
// returning how many it collected. The daemon calls it periodically; a
// swept session's profile is discarded (nobody was listening).
func (r *Registry) Sweep(now time.Time) int {
	cutoff := now.Add(-r.cfg.IdleTTL)
	r.mu.Lock()
	var idle []*session
	for id, s := range r.sessions {
		// Pinned sessions are swept too: a pin's lastActive is frozen, so
		// one still idle a full TTL later is an orphan of a hand-off that
		// never completed (router crash mid-move), not a live move.
		s.mu.Lock()
		stale := s.lastActive.Before(cutoff)
		s.mu.Unlock()
		if stale {
			idle = append(idle, s)
			delete(r.sessions, id)
		}
	}
	r.mu.Unlock()
	for _, s := range idle {
		s.mu.Lock()
		s.finalizeLocked()
		s.mu.Unlock()
		r.metrics.SessionsGC.Add(1)
	}
	return len(idle)
}

// Close finalizes every in-flight session and rejects all further
// requests with ErrClosed. It is idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	var open []*session
	for id, s := range r.sessions {
		open = append(open, s)
		delete(r.sessions, id)
	}
	r.mu.Unlock()
	for _, s := range open {
		s.mu.Lock()
		s.finalizeLocked()
		s.mu.Unlock()
		r.metrics.SessionsFinalized.Add(1)
	}
	// Finalize above flushed every session's trailing window into the
	// store; only the internal memory store is ours to close.
	if r.ownStore {
		r.store.Close()
	}
}
