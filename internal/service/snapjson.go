package service

import (
	"encoding/json"
	"strconv"

	"emprof/internal/core"
	"emprof/internal/jsonfast"
)

// AppendJSON appends the snapshot encoded exactly as encoding/json
// renders it — same tag-derived keys, omitempty device, HTML-escaped
// strings — so the profile endpoints can respond without the stdlib's
// reflection walk. Byte-identity is property-tested in snapjson_test.go.
func (s *Snapshot) AppendJSON(b []byte) ([]byte, error) {
	var err error
	b = append(b, `{"id":`...)
	b = jsonfast.AppendString(b, s.ID)
	if s.Device != "" {
		b = append(b, `,"device":`...)
		b = jsonfast.AppendString(b, s.Device)
	}
	b = append(b, `,"state":`...)
	b = jsonfast.AppendString(b, s.State)
	b = append(b, `,"samples_ingested":`...)
	b = strconv.AppendInt(b, s.SamplesIngested, 10)
	b = append(b, `,"samples_decided":`...)
	b = strconv.AppendInt(b, s.SamplesDecided, 10)
	b = append(b, `,"bytes_ingested":`...)
	b = strconv.AppendInt(b, s.BytesIngested, 10)
	b = append(b, `,"profile":`...)
	if s.Profile == nil {
		b = append(b, "null"...)
	} else if b, err = s.Profile.AppendJSON(b); err != nil {
		return nil, err
	}
	b = append(b, `,"mean_confidence":`...)
	if b, err = jsonfast.AppendFloat(b, s.MeanConfidence); err != nil {
		return nil, err
	}
	b = append(b, `,"confidence_hist":[`...)
	for i, v := range s.ConfidenceHist {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, "]}"...), nil
}

// UnmarshalJSON decodes a snapshot: the fast path accepts exactly the
// compact shape AppendJSON (and the stdlib) emits, everything else falls
// back to the reflection decoder.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	data = jsonfast.TrimSpace(data)
	if out, ok := parseSnapshotFast(data); ok {
		*s = out
		return nil
	}
	// plainSnapshot shadows Snapshot without its methods so the fallback
	// cannot recurse; decoding starts from the current value to keep the
	// stdlib's merge semantics for partial objects.
	type plainSnapshot Snapshot
	out := plainSnapshot(*s)
	if err := json.Unmarshal(data, &out); err != nil {
		return err
	}
	*s = Snapshot(out)
	return nil
}

func parseSnapshotFast(data []byte) (Snapshot, bool) {
	var s Snapshot
	var ok bool
	i := 0
	if i, ok = jsonfast.Eat(data, i, `{"id":`); !ok {
		return s, false
	}
	if s.ID, i, ok = jsonfast.String(data, i); !ok {
		return s, false
	}
	if j, present := jsonfast.Eat(data, i, `,"device":`); present {
		if s.Device, i, ok = jsonfast.String(data, j); !ok {
			return s, false
		}
	}
	if i, ok = jsonfast.Eat(data, i, `,"state":`); !ok {
		return s, false
	}
	if s.State, i, ok = jsonfast.String(data, i); !ok {
		return s, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"samples_ingested":`); !ok {
		return s, false
	}
	if s.SamplesIngested, i, ok = jsonfast.Int(data, i); !ok {
		return s, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"samples_decided":`); !ok {
		return s, false
	}
	if s.SamplesDecided, i, ok = jsonfast.Int(data, i); !ok {
		return s, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"bytes_ingested":`); !ok {
		return s, false
	}
	if s.BytesIngested, i, ok = jsonfast.Int(data, i); !ok {
		return s, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"profile":`); !ok {
		return s, false
	}
	if j, isNull := jsonfast.Eat(data, i, "null"); isNull {
		i = j
	} else {
		prof, j, ok := core.ParseProfileJSON(data, i)
		if !ok {
			return s, false
		}
		s.Profile = &prof
		i = j
	}
	if i, ok = jsonfast.Eat(data, i, `,"mean_confidence":`); !ok {
		return s, false
	}
	if s.MeanConfidence, i, ok = jsonfast.Float(data, i); !ok {
		return s, false
	}
	if i, ok = jsonfast.Eat(data, i, `,"confidence_hist":[`); !ok {
		return s, false
	}
	for k := range s.ConfidenceHist {
		if k > 0 {
			if i, ok = jsonfast.Eat(data, i, ","); !ok {
				return s, false
			}
		}
		var n int64
		if n, i, ok = jsonfast.Int(data, i); !ok {
			return s, false
		}
		s.ConfidenceHist[k] = int(n)
	}
	if i, ok = jsonfast.Eat(data, i, "]}"); !ok || i != len(data) {
		return s, false
	}
	return s, true
}
