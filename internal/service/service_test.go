package service

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"emprof/internal/core"
	"emprof/internal/em"
)

// fakeClock is a settable clock for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// testSignal synthesises a busy-level signal with evenly-spaced dips deep
// enough for the default config to detect.
func testSignal(n int) *em.Capture {
	c := &em.Capture{SampleRate: 40e6, ClockHz: 1.008e9, Samples: make([]float64, n)}
	for i := range c.Samples {
		c.Samples[i] = 1 + 0.02*math.Sin(float64(i)*0.003)
	}
	for start := 2000; start+12 < n; start += 1500 {
		for j := 0; j < 12; j++ {
			c.Samples[start+j] = 0.05
		}
	}
	return c
}

func rawBytes(samples []float64) []byte {
	out := make([]byte, len(samples)*8)
	for i, v := range samples {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func createSession(t *testing.T, ts *httptest.Server, rate, clock float64) string {
	t.Helper()
	id, code := tryCreateSession(t, ts, rate, clock)
	if code != http.StatusCreated {
		t.Fatalf("create: HTTP %d", code)
	}
	return id
}

func tryCreateSession(t *testing.T, ts *httptest.Server, rate, clock float64) (string, int) {
	t.Helper()
	body, _ := json.Marshal(CreateRequest{SampleRate: rate, ClockHz: clock})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", resp.StatusCode
	}
	var cr CreateResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr.ID, resp.StatusCode
}

func postSamples(t *testing.T, ts *httptest.Server, id string, body []byte, contentType string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/samples", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(msg)
}

// TestStreamedProfileMatchesBatch streams a capture in chunks (raw and
// EMPROFCAP wire formats) and requires the finalized profile to be
// bit-identical to the batch analyzer's.
func TestStreamedProfileMatchesBatch(t *testing.T) {
	capture := testSignal(30000)
	want := core.MustNewAnalyzer(core.DefaultConfig()).Profile(capture)
	if len(want.Stalls) < 5 {
		t.Fatalf("test signal yields only %d stalls", len(want.Stalls))
	}

	t.Run("raw", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{})
		id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
		enc := rawBytes(capture.Samples)
		third := (len(enc) / 3 / 8) * 8
		for _, part := range [][]byte{enc[:third], enc[third : 2*third], enc[2*third:]} {
			if code, msg := postSamples(t, ts, id, part, ContentTypeRaw); code != http.StatusOK {
				t.Fatalf("ingest: HTTP %d: %s", code, msg)
			}
		}
		got, err := srv.Registry().Finalize(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("streamed profile differs from batch Analyze")
		}
	})

	t.Run("emprofcap", func(t *testing.T) {
		srv, ts := newTestServer(t, Config{})
		id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
		var buf bytes.Buffer
		if err := em.WriteCapture(&buf, capture); err != nil {
			t.Fatal(err)
		}
		enc := buf.Bytes()
		// Deliberately misaligned chunks: the header and words split
		// across requests.
		for off := 0; off < len(enc); {
			end := off + 10001
			if end > len(enc) {
				end = len(enc)
			}
			if code, msg := postSamples(t, ts, id, enc[off:end], ContentTypeCapture); code != http.StatusOK {
				t.Fatalf("ingest at %d: HTTP %d: %s", off, code, msg)
			}
			off = end
		}
		got, err := srv.Registry().Finalize(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("EMPROFCAP-streamed profile differs from batch Analyze")
		}
	})
}

// TestSnapshotMidStreamIsCausal pushes half a capture and checks the live
// snapshot only reports already-decided stalls that form a prefix of the
// final result.
func TestSnapshotMidStreamIsCausal(t *testing.T) {
	capture := testSignal(30000)
	srv, ts := newTestServer(t, Config{})
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)

	half := len(capture.Samples) / 2
	if code, _ := postSamples(t, ts, id, rawBytes(capture.Samples[:half]), ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.SamplesIngested != int64(half) {
		t.Fatalf("ingested %d, want %d", snap.SamplesIngested, half)
	}
	if snap.SamplesDecided > snap.SamplesIngested {
		t.Fatalf("decided %d ahead of ingested %d", snap.SamplesDecided, snap.SamplesIngested)
	}
	if len(snap.Profile.Stalls) == 0 {
		t.Fatal("mid-stream snapshot found no stalls")
	}
	for _, st := range snap.Profile.Stalls {
		if int64(st.EndSample) > snap.SamplesDecided {
			t.Fatalf("stall ending at %d beyond decided position %d", st.EndSample, snap.SamplesDecided)
		}
	}
	histTotal := 0
	for _, n := range snap.ConfidenceHist {
		histTotal += n
	}
	if histTotal != len(snap.Profile.Stalls) {
		t.Fatalf("confidence histogram counts %d stalls, profile has %d", histTotal, len(snap.Profile.Stalls))
	}

	if code, _ := postSamples(t, ts, id, rawBytes(capture.Samples[half:]), ContentTypeRaw); code != http.StatusOK {
		t.Fatal("second ingest failed")
	}
	final, err := srv.Registry().Finalize(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Profile.Stalls, final.Stalls[:len(snap.Profile.Stalls)]) {
		t.Fatal("mid-stream stalls are not a prefix of the final profile")
	}
}

// TestSessionLimit429 fills the registry and checks backpressure.
func TestSessionLimit429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 2})
	createSession(t, ts, 40e6, 1e9)
	id2 := createSession(t, ts, 40e6, 1e9)
	if _, code := tryCreateSession(t, ts, 40e6, 1e9); code != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: HTTP %d, want 429", code)
	}
	// Finalizing one frees a slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+id2, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("finalize: %v %v", err, resp.Status)
	}
	if _, code := tryCreateSession(t, ts, 40e6, 1e9); code != http.StatusCreated {
		t.Fatalf("create after finalize: HTTP %d", code)
	}
}

// TestByteBudget429 checks the per-session ingest budget, including that
// a rejected request with a Content-Length ingests nothing (safe to
// retry).
func TestByteBudget429(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessionBytes: 1000 * 8})
	id := createSession(t, ts, 40e6, 1e9)
	if code, _ := postSamples(t, ts, id, rawBytes(make([]float64, 900)), ContentTypeRaw); code != http.StatusOK {
		t.Fatal("in-budget ingest rejected")
	}
	code, _ := postSamples(t, ts, id, rawBytes(make([]float64, 200)), ContentTypeRaw)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-budget ingest: HTTP %d, want 429", code)
	}
	snap, err := srv.Registry().Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SamplesIngested != 900 {
		t.Fatalf("rejected request ingested samples: %d", snap.SamplesIngested)
	}
	// A request that still fits goes through.
	if code, _ := postSamples(t, ts, id, rawBytes(make([]float64, 100)), ContentTypeRaw); code != http.StatusOK {
		t.Fatal("in-budget ingest after rejection failed")
	}
}

// postSamplesAt posts a raw block offset-tagged with its session-stream
// position, the way emprof.Client's PushSamplesAt does.
func postSamplesAt(t *testing.T, ts *httptest.Server, id string, offset int64, body []byte) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+id+"/samples", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeRaw)
	req.Header.Set(HeaderOffset, strconv.FormatInt(offset, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(msg)
}

// TestByteBudgetOffsetRetry checks that the budget pre-check charges an
// offset-tagged push only for its effective new bytes: the prefix the
// session already ingested will be skipped, so counting it again would
// 429 a retry of a push that landed near MaxSessionBytes — the client
// would then retry into the same 429 until it errors out, even though
// nothing new needs to fit.
func TestByteBudgetOffsetRetry(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessionBytes: 1000 * 8})
	id := createSession(t, ts, 40e6, 1e9)

	// Fill the budget exactly, then resend the whole block (a lost
	// response): every byte is an already-ingested prefix, effective
	// new bytes are zero, and the retry must succeed without ingesting
	// anything twice.
	block := rawBytes(testSignal(1000).Samples)
	if code, _ := postSamplesAt(t, ts, id, 0, block); code != http.StatusOK {
		t.Fatal("in-budget ingest rejected")
	}
	if code, msg := postSamplesAt(t, ts, id, 0, block); code != http.StatusOK {
		t.Fatalf("full retry at the budget edge: HTTP %d (%s), want 200", code, msg)
	}
	snap, err := srv.Registry().Snapshot(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SamplesIngested != 1000 || snap.BytesIngested != 1000*8 {
		t.Fatalf("retry double-ingested: %d samples / %d bytes, want 1000 / 8000",
			snap.SamplesIngested, snap.BytesIngested)
	}
	// An untagged push has no skippable prefix: still over budget.
	if code, _ := postSamples(t, ts, id, rawBytes(make([]float64, 1)), ContentTypeRaw); code != http.StatusTooManyRequests {
		t.Fatal("untagged over-budget push accepted")
	}

	// Partial overlap on a fresh session: 900 of 1000 samples landed,
	// then a push of [800, 1000) retries. Its declared 1600 bytes would
	// blow the pre-check, but 800 of them are skippable prefix — the
	// effective 800 fit exactly.
	id2 := createSession(t, ts, 40e6, 1e9)
	samples := testSignal(1000).Samples
	if code, _ := postSamplesAt(t, ts, id2, 0, rawBytes(samples[:900])); code != http.StatusOK {
		t.Fatal("first 900 samples rejected")
	}
	if code, msg := postSamplesAt(t, ts, id2, 800, rawBytes(samples[800:])); code != http.StatusOK {
		t.Fatalf("overlapping retry near the budget edge: HTTP %d (%s), want 200", code, msg)
	}
	snap, err = srv.Registry().Snapshot(id2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.SamplesIngested != 1000 || snap.BytesIngested != 1000*8 {
		t.Fatalf("overlapping retry mis-ingested: %d samples / %d bytes, want 1000 / 8000",
			snap.SamplesIngested, snap.BytesIngested)
	}
}

// TestIdleGC checks TTL-based collection with a fake clock.
func TestIdleGC(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1e9, 0)}
	srv := New(Config{IdleTTL: time.Minute, Now: clk.now})
	reg := srv.Registry()
	idOld, err := reg.Create("dev", 40e6, 1e9, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(45 * time.Second)
	idNew, err := reg.Create("dev", 40e6, 1e9, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(30 * time.Second) // idOld now 75s idle, idNew 30s
	if n := reg.Sweep(clk.now()); n != 1 {
		t.Fatalf("swept %d sessions, want 1", n)
	}
	if _, err := reg.Snapshot(idOld); err != ErrNotFound {
		t.Fatalf("stale session still reachable: %v", err)
	}
	if _, err := reg.Snapshot(idNew); err != nil {
		t.Fatalf("fresh session swept: %v", err)
	}
	if got := reg.Metrics().SessionsGC.Load(); got != 1 {
		t.Fatalf("gc metric %d", got)
	}
	// Snapshot traffic refreshes the TTL.
	clk.advance(50 * time.Second)
	if _, err := reg.Snapshot(idNew); err != nil {
		t.Fatal(err)
	}
	clk.advance(30 * time.Second)
	if n := reg.Sweep(clk.now()); n != 0 {
		t.Fatalf("recently-touched session swept (%d)", n)
	}
}

// TestGracefulClose checks shutdown finalizes in-flight sessions and
// later requests get 503.
func TestGracefulClose(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	id := createSession(t, ts, 40e6, 1e9)
	if code, _ := postSamples(t, ts, id, rawBytes(testSignal(5000).Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	srv.Close()
	if got := srv.Registry().Metrics().SessionsFinalized.Load(); got != 1 {
		t.Fatalf("close finalized %d sessions, want 1", got)
	}
	if _, code := tryCreateSession(t, ts, 40e6, 1e9); code != http.StatusServiceUnavailable {
		t.Fatalf("create after close: HTTP %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("profile after close: HTTP %d, want 503", resp.StatusCode)
	}
	srv.Close() // idempotent
}

// TestPoisonedSession checks a decode failure rejects further ingest but
// leaves other sessions untouched.
func TestPoisonedSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts, 40e6, 1e9)
	if code, _ := postSamples(t, ts, id, []byte("garbage!!! definitely not an EMPROFCAP header"), ContentTypeCapture); code != http.StatusBadRequest {
		t.Fatalf("bad magic: HTTP %d, want 400", code)
	}
	if code, _ := postSamples(t, ts, id, rawBytes([]float64{1}), ContentTypeRaw); code != http.StatusBadRequest {
		t.Fatal("poisoned session accepted more data")
	}
	// Metadata mismatch also poisons.
	id2 := createSession(t, ts, 40e6, 1e9)
	var buf bytes.Buffer
	if err := em.WriteCapture(&buf, &em.Capture{Samples: []float64{1}, SampleRate: 20e6, ClockHz: 1e9}); err != nil {
		t.Fatal(err)
	}
	if code, _ := postSamples(t, ts, id2, buf.Bytes(), ContentTypeCapture); code != http.StatusBadRequest {
		t.Fatal("mismatched capture header accepted")
	}
}

// TestMetricsPrometheusFormat scrapes /metrics and parses every line as
// Prometheus text exposition format, checking the core series exist with
// sane values.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts, 40e6, 1e9)
	if code, _ := postSamples(t, ts, id, rawBytes(testSignal(30000).Samples), ContentTypeRaw); code != http.StatusOK {
		t.Fatal("ingest failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	values := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "summary" && f[3] != "histogram") {
				t.Fatalf("bad TYPE line: %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") {
				t.Fatalf("unknown comment line: %q", line)
			}
			continue
		}
		// Sample line: name{labels} value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("no value separator in %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
			name = name[:i]
		}
		values[name] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"emprofd_sessions_active":        1,
		"emprofd_sessions_total":         1,
		"emprofd_samples_ingested_total": 30000,
		"emprofd_ingest_bytes_total":     240000,
	}
	for name, want := range checks {
		if got, ok := values[name]; !ok || got != want {
			t.Fatalf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	if values["emprofd_stalls_detected_total"] <= 0 {
		t.Fatal("no stalls counted")
	}
	if _, ok := values["emprofd_http_requests_total"]; !ok {
		t.Fatal("per-endpoint request counter missing")
	}
	for _, name := range []string{"emprofd_sessions_total", "emprofd_samples_ingested_total"} {
		if types[name] != "counter" {
			t.Fatalf("%s TYPE = %q", name, types[name])
		}
	}
}

// TestListSessions checks the list endpoint's shape and ordering.
func TestListSessions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1e9, 0)}
	srv := New(Config{Now: clk.now})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	idA := createSession(t, ts, 40e6, 1e9)
	clk.advance(time.Second)
	idB := createSession(t, ts, 20e6, 8e8)
	resp, err := http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []SessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != idA || list[1].ID != idB {
		t.Fatalf("list order wrong: %+v", list)
	}
	if list[1].SampleRate != 20e6 || list[1].ClockHz != 8e8 || list[1].State != "active" {
		t.Fatalf("list entry shape: %+v", list[1])
	}
}

// TestConcurrentSessions hammers the service from many goroutines (run
// under -race in CI): concurrent creates, interleaved ingest and
// snapshots on distinct sessions, list and metrics scrapes throughout.
func TestConcurrentSessions(t *testing.T) {
	capture := testSignal(12000)
	want := core.MustNewAnalyzer(core.DefaultConfig()).Profile(capture)
	srv, ts := newTestServer(t, Config{MaxSessions: 64})

	const n = 8
	var wg sync.WaitGroup
	profiles := make([]*core.Profile, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, code := tryCreateSession(t, ts, capture.SampleRate, capture.ClockHz)
			if code != http.StatusCreated {
				errs[i] = fmt.Errorf("create: HTTP %d", code)
				return
			}
			enc := rawBytes(capture.Samples)
			step := (len(enc) / 4 / 8) * 8
			for off := 0; off < len(enc); {
				end := off + step
				if end > len(enc) {
					end = len(enc)
				}
				if code, msg := postSamples(t, ts, id, enc[off:end], ContentTypeRaw); code != http.StatusOK {
					errs[i] = fmt.Errorf("ingest: HTTP %d: %s", code, msg)
					return
				}
				off = end
				if _, err := srv.Registry().Snapshot(id); err != nil {
					errs[i] = err
					return
				}
			}
			profiles[i], errs[i] = srv.Registry().Finalize(id)
		}(i)
	}
	// Concurrent scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			if resp, err := http.Get(ts.URL + "/v1/sessions"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if resp, err := http.Get(ts.URL + "/metrics"); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(profiles[i], want) {
			t.Fatalf("worker %d profile differs from batch", i)
		}
	}
	if got := srv.Registry().Metrics().SamplesIngested.Load(); got != int64(n*len(capture.Samples)) {
		t.Fatalf("samples metric %d, want %d", got, n*len(capture.Samples))
	}
}
