package service

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"emprof/internal/core"
	"emprof/internal/profstore"
)

// ProfilesResponse is the GET /v1/sessions/{id}/profiles view: the
// session's retained rolling windows overlapping the queried time range,
// oldest first, with pagination cursors. A session can be queried while
// live ("active"/"pinned") and after it ended, as long as the store
// retains its windows ("detached").
type ProfilesResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// WindowS/StrideS echo the windowing geometry in stream seconds (live
	// sessions only; 0 on detached ones).
	WindowS float64 `json:"window_s,omitempty"`
	StrideS float64 `json:"stride_s,omitempty"`
	// SampleRate/ClockHz echo the acquisition metadata (live sessions
	// only) — what core.MergeWindows needs to reassemble a full profile.
	SampleRate float64 `json:"sample_rate,omitempty"`
	ClockHz    float64 `json:"clock_hz,omitempty"`

	Windows []core.ProfileWindow `json:"windows"`
	// Truncated reports that part of the requested range was evicted by
	// retention; the returned windows are the retained part.
	Truncated bool `json:"truncated,omitempty"`
	// More/NextAfter page: pass NextAfter as the next request's after=.
	More      bool  `json:"more,omitempty"`
	NextAfter int64 `json:"next_after,omitempty"`
	// LatestIndex is the newest retained window index (-1: none yet).
	LatestIndex int64 `json:"latest_index"`
}

// Profiles answers a window range query for a session. The error
// contract, from the API redesign:
//
//   - a live session that has not sealed a window yet (or a daemon with
//     windowing disabled) answers an empty 200 list, never 404 — the
//     session exists, it just has no windows;
//   - an ID neither live nor remembered by the store is ErrNotFound;
//   - a range lying entirely in evicted windows is ErrWindowNotRetained
//     (410): the data existed and is gone for good.
//
// Unlike Snapshot, a pinned session still serves its persisted windows —
// reading the store cannot race the state hand-off.
func (r *Registry) Profiles(id string, q profstore.Query) (*ProfilesResponse, error) {
	r.mu.Lock()
	closed := r.closed
	s := r.sessions[id]
	r.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	resp := &ProfilesResponse{ID: id, Windows: []core.ProfileWindow{}, LatestIndex: -1}
	if s != nil {
		s.mu.Lock()
		s.lastActive = r.cfg.Now()
		// Read-your-writes: windows sealed by already-ingested samples are
		// in the store before we query it — first wait for analysis to
		// catch up (which seals), then for the store stage to persist.
		s.drainLocked()
		s.drainWindowsLocked()
		resp.State = "active"
		if s.finalized {
			resp.State = "finalized"
		} else if s.pinned {
			resp.State = "pinned"
		}
		resp.SampleRate, resp.ClockHz = s.sampleRate, s.clockHz
		if s.win != nil {
			resp.WindowS = float64(s.win.WidthSamples()) / s.sampleRate
			resp.StrideS = float64(s.win.StrideSamples()) / s.sampleRate
		}
		s.mu.Unlock()
	}
	if r.store == nil {
		if s == nil {
			return nil, ErrNotFound
		}
		return resp, nil
	}
	if s == nil {
		if !r.store.HasSession(id) {
			return nil, ErrNotFound
		}
		resp.State = "detached"
	}
	res, err := r.store.Query(id, q)
	if err != nil {
		if errors.Is(err, profstore.ErrNotRetained) {
			return nil, fmt.Errorf("%w: %v", ErrWindowNotRetained, err)
		}
		return nil, err
	}
	resp.Windows = res.Windows
	resp.Truncated = res.Truncated
	resp.More = res.More
	resp.NextAfter = res.NextAfter
	resp.LatestIndex = res.LatestIndex
	return resp, nil
}

// parseProfilesQuery maps the profiles route's query string onto a store
// query: from/to (stream seconds), limit, last, after (index cursor).
func parseProfilesQuery(r *http.Request) (profstore.Query, error) {
	q := profstore.Query{}
	vals := r.URL.Query()
	getFloat := func(key string) (float64, bool, error) {
		raw := vals.Get(key)
		if raw == "" {
			return 0, false, nil
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || v < 0 {
			return 0, false, fmt.Errorf("service: bad %s=%q (want seconds >= 0)", key, raw)
		}
		return v, true, nil
	}
	getInt := func(key string) (int64, bool, error) {
		raw := vals.Get(key)
		if raw == "" {
			return 0, false, nil
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			return 0, false, fmt.Errorf("service: bad %s=%q (want integer >= 0)", key, raw)
		}
		return v, true, nil
	}
	var err error
	var ok bool
	if q.FromS, _, err = getFloat("from"); err != nil {
		return q, err
	}
	var to float64
	if to, ok, err = getFloat("to"); err != nil {
		return q, err
	}
	if ok {
		if to <= q.FromS {
			return q, fmt.Errorf("service: empty range from=%g to=%g", q.FromS, to)
		}
		q.ToS = to
	}
	if v, ok, err := getInt("limit"); err != nil {
		return q, err
	} else if ok {
		q.Limit = int(v)
	}
	if v, ok, err := getInt("last"); err != nil {
		return q, err
	} else if ok {
		q.Last = int(v)
	}
	if v, ok, err := getInt("after"); err != nil {
		return q, err
	} else if ok {
		// after=0 is a real cursor (a page can end at window 0), so the
		// presence of the parameter, not its value, engages it.
		q.HasAfter = true
		q.AfterIndex = v
	}
	return q, nil
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	q, err := parseProfilesQuery(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.reg.Profiles(r.PathValue("id"), q)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
