package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"emprof/internal/attrib"
	"emprof/internal/core"
)

// ContentTypeCapture marks an ingest body in the EMPROFCAP file format
// (header + samples); anything else is treated as ContentTypeRaw.
const ContentTypeCapture = "application/x-emprofcap"

// ContentTypeRaw marks an ingest body as headerless little-endian float64
// samples.
const ContentTypeRaw = "application/octet-stream"

// ingestChunk sizes the per-read transfer buffer for sample ingest.
// 256 KiB keeps the read-syscall count low for the multi-hundred-KiB
// bodies streaming clients push while staying a modest per-connection
// cost (the buffers are pooled).
const ingestChunk = 256 * 1024

// ingestBufPool recycles the 64 KiB ingest transfer buffers across
// requests; handleIngest is the hot path of the whole daemon and used to
// allocate one per call.
var ingestBufPool = sync.Pool{
	New: func() any { b := make([]byte, ingestChunk); return &b },
}

// Server ties the registry, metrics, and HTTP handlers together.
type Server struct {
	reg *Registry
}

// New builds a service with the given limits.
func New(cfg Config) *Server {
	return &Server{reg: NewRegistry(cfg, NewMetrics())}
}

// Registry exposes the session registry (tests and the daemon's GC loop).
func (s *Server) Registry() *Registry { return s.reg }

// Close gracefully shuts the service down: every in-flight session is
// finalized and later requests are answered with 503.
func (s *Server) Close() { s.reg.Close() }

// StartGC launches the idle-session sweeper at the given interval and
// returns a function that stops it.
func (s *Server) StartGC(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = s.reg.cfg.IdleTTL / 4
		if interval < time.Second {
			interval = time.Second
		}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				s.reg.Sweep(now)
			}
		}
	}()
	return func() { close(done) }
}

// Handler returns the service's HTTP routes. Every route is served under
// the /v1 prefix (the stable, versioned surface) and, for compatibility
// with pre-versioning clients, at its bare unversioned path as an alias.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		pattern  string // method + path, without the version prefix
		endpoint string // metrics label
		h        http.HandlerFunc
	}{
		{"POST /sessions", "create", s.handleCreate},
		{"GET /sessions", "list", s.handleList},
		{"POST /sessions/{id}/samples", "ingest", s.handleIngest},
		{"GET /sessions/{id}/profile", "profile", s.handleProfile},
		{"GET /sessions/{id}/profiles", "profiles", s.handleProfiles},
		{"GET /sessions/{id}/trace", "trace", s.handleTrace},
		{"DELETE /sessions/{id}", "finalize", s.handleFinalize},
		{"GET /metrics", "metrics", s.handleMetrics},
		// Hand-off protocol (fleet-internal; see handoff.go for the state
		// machine the router drives).
		{"POST /sessions/{id}/pin", "pin", s.handlePin},
		{"POST /sessions/{id}/unpin", "unpin", s.handleUnpin},
		{"POST /sessions/{id}/export", "export", s.handleExport},
		{"POST /sessions/{id}/forget", "forget", s.handleForget},
		{"POST /sessions/import", "import", s.handleImport},
	}
	for _, rt := range routes {
		method, path, _ := strings.Cut(rt.pattern, " ")
		h := s.instrument(rt.endpoint, rt.h)
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(rt.pattern, s.deprecated(h))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// deprecated wraps a bare unversioned alias route: it keeps serving
// (pre-versioning clients must not break), but every response carries a
// Deprecation header plus a Link to the /v1 successor, and the
// emprofd_deprecated_route_hits_total counter records the traffic so
// operators can see who still needs migrating. /v1 is the only supported
// surface; the aliases are scheduled for removal.
func (s *Server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+r.URL.Path+">; rel=\"successor-version\"")
		s.reg.metrics.DeprecatedRouteHits.Add(1)
		h(w, r)
	}
}

// statusWriter captures the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// deadline hooks through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with per-endpoint request/latency metrics.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.reg.metrics.ObserveRequest(endpoint, sw.code, time.Since(start).Seconds())
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// jsonAppender is the fast-encode hook writeJSON looks for: types that
// can serialize themselves without the stdlib's reflection walk
// (Snapshot, core.Profile) implement it with byte-identical output.
type jsonAppender interface {
	AppendJSON(b []byte) ([]byte, error)
}

// respBufPool recycles response-encode buffers across requests; profile
// snapshots can run to hundreds of kilobytes and are requested every few
// pushes on the ingest hot path.
var respBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	if a, ok := v.(jsonAppender); ok {
		bp := respBufPool.Get().(*[]byte)
		if b, err := a.AppendJSON((*bp)[:0]); err == nil {
			// Same framing as json.Encoder.Encode, plus an explicit
			// Content-Length so the client can size its read buffer.
			b = append(b, '\n')
			w.Header().Set("Content-Length", strconv.Itoa(len(b)))
			w.WriteHeader(code)
			w.Write(b)
			*bp = b
			respBufPool.Put(bp)
			return
		}
		respBufPool.Put(bp)
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps registry errors onto status codes.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrFull), errors.Is(err, ErrBudget):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed), errors.Is(err, ErrPinned):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		code = http.StatusConflict
	case errors.Is(err, ErrWindowNotRetained):
		code = http.StatusGone
	}
	writeJSON(w, code, apiError{Error: err.Error()})
}

// CreateRequest is the POST /v1/sessions body.
type CreateRequest struct {
	// SampleRate and ClockHz are the acquisition metadata of the signal
	// about to be streamed (required).
	SampleRate float64 `json:"sample_rate"`
	ClockHz    float64 `json:"clock_hz"`
	// Device optionally labels the profiled target.
	Device string `json:"device,omitempty"`
	// Config optionally overrides the profiler configuration; omitted
	// means core.DefaultConfig.
	Config *core.Config `json:"config,omitempty"`
	// ID optionally assigns the session ID client-side. The fleet router
	// uses this so a session's owning shard is computable from its ID
	// alone; ordinary clients leave it empty (server-assigned).
	ID string `json:"id,omitempty"`
	// Attribution optionally attaches a trained attribution model to the
	// session (overriding any daemon-wide model): rolling windows then
	// carry live stall→code-region attribution.
	Attribution *attrib.Model `json:"attribution,omitempty"`
}

// CreateResponse is the POST /v1/sessions reply.
type CreateResponse struct {
	ID string `json:"id"`
	// MaxSessionBytes echoes the per-session ingest budget so clients can
	// size their streams.
	MaxSessionBytes int64 `json:"max_session_bytes"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("service: bad create body: %w", err))
		return
	}
	cfg := core.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	id, err := s.reg.CreateSession(CreateOpts{
		ID: req.ID, Device: req.Device,
		SampleRate: req.SampleRate, ClockHz: req.ClockHz,
		Config: cfg, Attribution: req.Attribution,
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, CreateResponse{ID: id, MaxSessionBytes: s.reg.cfg.MaxSessionBytes})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if s.closedErr(w) {
		return
	}
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) closedErr(w http.ResponseWriter) bool {
	s.reg.mu.Lock()
	closed := s.reg.closed
	s.reg.mu.Unlock()
	if closed {
		writeErr(w, ErrClosed)
	}
	return closed
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sess, err := s.reg.get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	// Per-request read deadline: a stalled or malicious uploader cannot
	// pin a session (and its lock) forever.
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Now().Add(s.reg.cfg.ReadTimeout))

	format := formatRaw
	if strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeCapture) {
		format = formatCapture
	}
	offset := int64(-1)
	if h := r.Header.Get(HeaderOffset); h != "" {
		v, perr := strconv.ParseInt(h, 10, 64)
		if perr != nil || v < 0 {
			writeErr(w, fmt.Errorf("service: bad %s header %q", HeaderOffset, h))
			return
		}
		offset = v
	}
	bp := ingestBufPool.Get().(*[]byte)
	defer ingestBufPool.Put(bp)
	buf := *bp
	next := func() ([]byte, error) {
		n, rerr := io.ReadFull(r.Body, buf)
		if rerr == io.ErrUnexpectedEOF {
			rerr = io.EOF
		}
		return buf[:n], rerr
	}
	res, err := s.reg.ingest(sess, format, r.ContentLength, offset, next)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// HeaderOffset is the ingest request header carrying the session-stream
// sample index of the body's first sample (raw format only). Offset-
// tagged pushes are idempotent: a retry whose predecessor partially (or
// fully, with the response lost) landed skips the already-ingested
// prefix instead of double-counting it.
const HeaderOffset = "X-Emprof-Offset"

func (s *Server) handlePin(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Pin(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleUnpin(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Unpin(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	st, err := s.reg.Export(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleForget(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Forget(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// maxImportBody bounds a hand-off import body (64 MiB: analyzer state is
// a few windows of float64s plus the stall list; far below this).
const maxImportBody = 64 << 20

func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	var st SessionState
	if err := json.NewDecoder(io.LimitReader(r.Body, maxImportBody)).Decode(&st); err != nil {
		writeErr(w, fmt.Errorf("service: bad import body: %w", err))
		return
	}
	if err := s.reg.Import(&st); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, struct{}{})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	// Encoded under the session lock into a pooled buffer (see
	// Registry.SnapshotJSON); the response bytes match what writeJSON
	// produces for a Registry.Snapshot result exactly.
	bp := respBufPool.Get().(*[]byte)
	b, err := s.reg.SnapshotJSON(r.PathValue("id"), (*bp)[:0])
	if err != nil {
		respBufPool.Put(bp)
		writeErr(w, err)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	w.Write(b)
	*bp = b
	respBufPool.Put(bp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, err := s.reg.Trace(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

func (s *Server) handleFinalize(w http.ResponseWriter, r *http.Request) {
	prof, err := s.reg.Finalize(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.metrics.WriteTo(w, s.reg.ActiveSessions())
	if st := s.reg.Store(); st != nil {
		s.reg.metrics.WriteStoreStats(w, st.Stats())
	}
}
