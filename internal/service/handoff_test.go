package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"emprof/internal/core"
)

// TestHandoffAcrossRegistries drives the full hand-off protocol over
// HTTP between two independent shards: stream half a capture into shard
// A, pin → export → import into shard B → forget, stream the rest into
// B, and require B's final profile bit-identical to batch Analyze.
func TestHandoffAcrossRegistries(t *testing.T) {
	capture := testSignal(30000)
	want := core.MustNewAnalyzer(core.DefaultConfig()).Profile(capture)

	srvA, tsA := newTestServer(t, Config{})
	srvB, tsB := newTestServer(t, Config{})
	id := createSession(t, tsA, capture.SampleRate, capture.ClockHz)

	enc := rawBytes(capture.Samples)
	// A split point that is NOT 8-byte aligned relative to nothing — keep
	// sample-aligned (clients push whole samples) but mid-stream.
	half := (len(enc) / 2 / 8) * 8
	if code, msg := postSamples(t, tsA, id, enc[:half], ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest A: HTTP %d: %s", code, msg)
	}

	post := func(ts string, path string, body []byte) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, msg := post(tsA.URL, "/v1/sessions/"+id+"/pin", nil); code != http.StatusOK {
		t.Fatalf("pin: HTTP %d: %s", code, msg)
	}
	// Pinned: ingest and profile answer 503.
	if code, _ := postSamples(t, tsA, id, enc[half:half+8], ContentTypeRaw); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest while pinned: HTTP %d, want 503", code)
	}
	resp, err := http.Get(tsA.URL + "/v1/sessions/" + id + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("profile while pinned: HTTP %d, want 503", resp.StatusCode)
	}

	code, blob := post(tsA.URL, "/v1/sessions/"+id+"/export", nil)
	if code != http.StatusOK {
		t.Fatalf("export: HTTP %d: %s", code, blob)
	}
	if code, msg := post(tsB.URL, "/v1/sessions/import", blob); code != http.StatusCreated {
		t.Fatalf("import: HTTP %d: %s", code, msg)
	}
	if code, msg := post(tsA.URL, "/v1/sessions/"+id+"/forget", nil); code != http.StatusOK {
		t.Fatalf("forget: HTTP %d: %s", code, msg)
	}
	if n := srvA.Registry().ActiveSessions(); n != 0 {
		t.Fatalf("old owner still holds %d sessions after forget", n)
	}

	if code, msg := postSamples(t, tsB, id, enc[half:], ContentTypeRaw); code != http.StatusOK {
		t.Fatalf("ingest B: HTTP %d: %s", code, msg)
	}
	got, err := srvB.Registry().Finalize(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("handed-off profile differs from batch Analyze")
	}

	// Counters moved on both sides.
	if srvA.Registry().Metrics().SessionsExported.Load() != 1 {
		t.Fatal("export not counted")
	}
	if srvB.Registry().Metrics().SessionsImported.Load() != 1 {
		t.Fatal("import not counted")
	}
}

// TestHandoffGuards covers the protocol's refusal paths.
func TestHandoffGuards(t *testing.T) {
	capture := testSignal(4000)
	srv, _ := newTestServer(t, Config{})
	reg := srv.Registry()
	id, err := reg.Create("", capture.SampleRate, capture.ClockHz, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Export without pin is a conflict.
	if _, err := reg.Export(id); !errors.Is(err, ErrConflict) {
		t.Fatalf("export unpinned: %v, want ErrConflict", err)
	}
	if err := reg.Pin(id); err != nil {
		t.Fatal(err)
	}
	// Pin is idempotent; finalize on pinned is ErrPinned and keeps it.
	if err := reg.Pin(id); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Finalize(id); !errors.Is(err, ErrPinned) {
		t.Fatalf("finalize pinned: %v, want ErrPinned", err)
	}
	st, err := reg.Export(id)
	if err != nil {
		t.Fatal(err)
	}
	// Import back into the same registry collides with the live session.
	if err := reg.Import(st); !errors.Is(err, ErrConflict) {
		t.Fatalf("import over live session: %v, want ErrConflict", err)
	}
	// Unpin rolls the move back; the session serves again.
	if err := reg.Unpin(id); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Snapshot(id); err != nil {
		t.Fatalf("snapshot after unpin: %v", err)
	}

	// Malformed imports.
	if err := reg.Import(nil); err == nil {
		t.Fatal("nil import accepted")
	}
	if err := reg.Import(&SessionState{ID: "x"}); err == nil {
		t.Fatal("import without stream state accepted")
	}
	bad := *st
	bad.ID = ""
	if err := reg.Import(&bad); err == nil {
		t.Fatal("import without ID accepted")
	}
}

// TestOffsetIdempotentPush proves the no-double-ingest property behind
// push retries: re-sending a body (fully or partially ingested before)
// with X-Emprof-Offset set skips the landed prefix.
func TestOffsetIdempotentPush(t *testing.T) {
	capture := testSignal(20000)
	want := core.MustNewAnalyzer(core.DefaultConfig()).Profile(capture)
	srv, ts := newTestServer(t, Config{})
	id := createSession(t, ts, capture.SampleRate, capture.ClockHz)
	enc := rawBytes(capture.Samples)
	half := (len(enc) / 2 / 8) * 8

	push := func(body []byte, offset int64) (int, string) {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/"+id+"/samples", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", ContentTypeRaw)
		req.Header.Set(HeaderOffset, fmt.Sprint(offset))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, msg := push(enc[:half], 0); code != http.StatusOK {
		t.Fatalf("push 1: HTTP %d: %s", code, msg)
	}
	// Retry the exact same push (lost-response scenario): a full skip.
	code, msg := push(enc[:half], 0)
	if code != http.StatusOK {
		t.Fatalf("retried push: HTTP %d: %s", code, msg)
	}
	var res IngestResult
	if err := json.Unmarshal([]byte(msg), &res); err != nil {
		t.Fatal(err)
	}
	if res.SamplesIngested != int64(half/8) {
		t.Fatalf("retry double-ingested: %d samples, want %d", res.SamplesIngested, half/8)
	}
	// Overlapping retry: body covers [quarter, end), half already landed.
	quarter := (half / 2 / 8) * 8
	if code, msg := push(enc[quarter:], int64(quarter/8)); code != http.StatusOK {
		t.Fatalf("overlapping push: HTTP %d: %s", code, msg)
	}
	// A gap is a conflict, not silently accepted.
	if code, _ := push(enc[:8], int64(len(enc)/8+5)); code != http.StatusConflict {
		t.Fatalf("gapped push: HTTP %d, want 409", code)
	}

	got, err := srv.Registry().Finalize(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("offset-deduplicated stream diverged from batch Analyze")
	}
}

// TestClientAssignedID covers router-style session creation.
func TestClientAssignedID(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	body, _ := json.Marshal(CreateRequest{SampleRate: 40e6, ClockHz: 1e9, ID: "fleet-abc123"})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr CreateResponse
	json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || cr.ID != "fleet-abc123" {
		t.Fatalf("create with ID: HTTP %d, id %q", resp.StatusCode, cr.ID)
	}
	// Duplicate is 409.
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate ID: HTTP %d, want 409", resp.StatusCode)
	}
	// Hostile IDs are rejected before touching the registry.
	if _, err := srv.Registry().CreateWithID("a/b", "", 40e6, 1e9, core.DefaultConfig()); err == nil {
		t.Fatal("ID with slash accepted")
	}
}
