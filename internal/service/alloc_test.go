package service

import (
	"io"
	"math"
	"testing"

	"emprof/internal/core"
)

// TestIngestSteadyStateZeroAllocs pins the tentpole of the zero-copy
// ingest work: once a session is warm (analyzer windows filled, pools
// populated), pushing a 64 KiB raw body through the registry's ingest
// path — block decode into pooled scratch, PushBlock through the staged
// analyzer — performs zero heap allocations, i.e. 0 allocs/sample at
// steady state.
func TestIngestSteadyStateZeroAllocs(t *testing.T) {
	srv := New(Config{})
	reg := srv.Registry()
	id, err := reg.Create("alloc-test", 40e6, 1e9, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := reg.get(id)
	if err != nil {
		t.Fatal(err)
	}

	// A clean busy-level signal: varies (so no stuck-value heuristics can
	// engage) but never dips, flags, or resyncs — no stall appends, so
	// steady state is pure pipeline work.
	samples := make([]float64, ingestChunk/8)
	for i := range samples {
		samples[i] = 1 + 0.02*math.Sin(float64(i)*0.003)
	}
	chunk := rawBytes(samples)

	served := false
	next := func() ([]byte, error) {
		if served {
			return nil, io.EOF
		}
		served = true
		return chunk, io.EOF
	}
	run := func() {
		served = false
		if _, err := reg.ingest(sess, formatRaw, int64(len(chunk)), -1, next); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: fill the normalisation window, the analyzer's queues and
	// scratch, the decode pools, and the pipeline's circulating blocks —
	// then drain so the warmup's one-time growth allocations land before
	// the measurement starts.
	for i := 0; i < 8; i++ {
		run()
	}
	sess.mu.Lock()
	sess.drainLocked()
	sess.mu.Unlock()
	allocs := testing.AllocsPerRun(50, run)
	if allocs != 0 {
		t.Fatalf("steady-state ingest allocates: %.2f allocs per %d-sample push (want 0)",
			allocs, len(samples))
	}
}
