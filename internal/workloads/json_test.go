package workloads

import (
	"os"
	"path/filepath"
	"testing"
)

const validJSON = `{
  "Name": "myapp",
  "Seed": 7,
  "Phases": [{
    "Name": "hot_loop", "Region": 1, "Insts": 50000,
    "LoadFrac": 0.28, "StoreFrac": 0.08,
    "LoopLen": 48, "CodeBytes": 16384,
    "WSBytes": 8388608, "HotBytes": 24576,
    "ColdFrac": 0.0005,
    "DepFrac": 0.4
  }]
}`

func TestProgramFromJSON(t *testing.T) {
	p, err := ProgramFromJSON([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "myapp" || len(p.Phases) != 1 || p.Phases[0].LoopLen != 48 {
		t.Fatalf("decoded %+v", p)
	}
	// The decoded program must actually generate instructions.
	n := 0
	var in = struct{}{}
	_ = in
	st := p.Stream()
	insts := drain(st)
	n = len(insts)
	if n < 50000 {
		t.Fatalf("generated %d instructions, want >= 50000", n)
	}
}

func TestProgramFromJSONRejectsBad(t *testing.T) {
	cases := []string{
		`{`,
		`{"Phases": []}`,
		`{"Phases": [{"Name": "x", "Insts": 0}]}`,
		`{"Phases": [{"Name": "x", "Insts": 1000, "LoopLen": 48, "CodeBytes": 4096, "WSBytes": 1048576, "HotBytes": 4096, "Bogus": 1}]}`,
	}
	for i, c := range cases {
		if _, err := ProgramFromJSON([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestProgramJSONRoundTrip(t *testing.T) {
	orig, err := SPECProgram("mcf", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ProgramFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(orig.Stream()), drain(back.Stream())
	if len(a) != len(b) {
		t.Fatal("round trip changed the program")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs after round trip", i)
		}
	}
}

func TestLoadProgram(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProgram(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "myapp" {
		t.Fatal("wrong program loaded")
	}
	if _, err := LoadProgram(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
